#include "dist/slots.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpbdc::dist {

JobSlotPool::JobSlotPool(sim::Comm& comm, DistConfig cfg, std::size_t slots,
                         sim::Dfs* dfs)
    : comm_(comm), cfg_(cfg), dfs_(dfs) {
  if (slots == 0) throw std::invalid_argument("JobSlotPool: zero slots");
  cfg_.node_mtbf = 0.0;  // per-slot injectors would fire independently
  node_state_.assign(comm.nranks(), NodeState{});
  for (std::size_t i = 0; i < slots; ++i) make_slot(i);
}

JobSlotPool::Slot& JobSlotPool::make_slot(std::size_t index) {
  DistConfig sc = cfg_;
  std::uint64_t s = cfg_.seed ^ ((index + 1) * 0x9e3779b97f4a7c15ULL);
  sc.seed = splitmix64(s);
  slots_.push_back(std::make_unique<Slot>(comm_, sc, dfs_));
  ++active_;
  Slot& slot = *slots_.back();
  if (metrics_ != nullptr) slot.rt.bind_metrics(*metrics_);
  return slot;
}

std::size_t JobSlotPool::add_slot() {
  if (!retired_.empty()) {
    const std::size_t i = retired_.back();
    retired_.pop_back();
    slots_[i]->retired = false;
    ++active_;
    return i;
  }
  const std::size_t i = slots_.size();
  Slot& slot = make_slot(i);
  // A new runtime starts with every node healthy; bring it up to the pool's
  // view. Current state applies at `now` (schedule_at refuses past times),
  // and injected events still in the future are replayed so the new slot
  // sees the same kills/recoveries/speed steps its siblings already have
  // scheduled.
  const sim::SimTime now = simulator().now();
  for (std::size_t n = 0; n < node_state_.size(); ++n) {
    const NodeState& ns = node_state_[n];
    if (ns.dead) slot.rt.kill_node_at(n, now);
    if (ns.speed != 1.0) slot.rt.set_node_speed_at(n, ns.speed, now);
    if (ns.draining) slot.rt.set_node_draining(n, true);
  }
  for (const FaultEvent& ev : fault_log_) {
    if (ev.t <= now) continue;
    switch (ev.kind) {
      case FaultEvent::Kind::kKill: slot.rt.kill_node_at(ev.node, ev.t); break;
      case FaultEvent::Kind::kRecover: slot.rt.recover_node_at(ev.node, ev.t); break;
      case FaultEvent::Kind::kSpeed:
        slot.rt.set_node_speed_at(ev.node, ev.speed, ev.t);
        break;
    }
  }
  return i;
}

bool JobSlotPool::retire_idle_slot() {
  if (active_ <= 1) return false;
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& slot = *slots_[i];
    if (slot.retired || slot.busy) continue;
    slot.retired = true;
    retired_.push_back(i);
    --active_;
    return true;
  }
  return false;
}

void JobSlotPool::submit(JobSpec job, DistRuntime::JobDoneFn done) {
  submit(std::move(job), RuntimeOptions{}, std::move(done));
}

void JobSlotPool::submit(JobSpec job, const RuntimeOptions& opts,
                         DistRuntime::JobDoneFn done) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    if (slot.busy || slot.retired) continue;
    slot.busy = true;
    ++busy_;
    slot.rt.submit(std::move(job), opts,
                   [this, i, done = std::move(done)](const JobResult& r) {
                     slots_[i]->busy = false;
                     --busy_;
                     if (done) done(r);
                   });
    return;
  }
  throw std::logic_error("JobSlotPool: saturated (check saturated() first)");
}

std::size_t JobSlotPool::reserve_slot() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->busy || slots_[i]->retired) continue;
    slots_[i]->busy = true;
    ++busy_;
    return i;
  }
  throw std::logic_error("JobSlotPool: saturated (check saturated() first)");
}

void JobSlotPool::release_slot(std::size_t i) {
  Slot& slot = *slots_.at(i);
  if (!slot.busy) throw std::logic_error("JobSlotPool: slot not reserved");
  slot.busy = false;
  --busy_;
}

void JobSlotPool::kill_node_at(std::size_t node, sim::SimTime t) {
  for (auto& s : slots_) s->rt.kill_node_at(node, t);
  fault_log_.push_back({FaultEvent::Kind::kKill, node, t, 1.0});
  simulator().schedule_at(t, [this, node] { node_state_[node].dead = true; });
}

void JobSlotPool::recover_node_at(std::size_t node, sim::SimTime t) {
  for (auto& s : slots_) s->rt.recover_node_at(node, t);
  fault_log_.push_back({FaultEvent::Kind::kRecover, node, t, 1.0});
  simulator().schedule_at(t, [this, node] { node_state_[node].dead = false; });
}

void JobSlotPool::set_node_speed_at(std::size_t node, double speed,
                                    sim::SimTime t) {
  for (auto& s : slots_) s->rt.set_node_speed_at(node, speed, t);
  fault_log_.push_back({FaultEvent::Kind::kSpeed, node, t, speed});
  simulator().schedule_at(t, [this, node, speed] { node_state_[node].speed = speed; });
}

void JobSlotPool::set_node_draining(std::size_t node, bool draining) {
  for (auto& s : slots_) s->rt.set_node_draining(node, draining);
  node_state_.at(node).draining = draining;
}

void JobSlotPool::bind_metrics(obs::MetricsRegistry& reg) {
  metrics_ = &reg;
  for (auto& s : slots_) s->rt.bind_metrics(reg);
}

DistStats JobSlotPool::aggregate_stats() const {
  DistStats sum;
  for (const auto& s : slots_) {
    const DistStats& st = s->rt.stats();
    sum.jobs_completed += st.jobs_completed;
    sum.jobs_failed += st.jobs_failed;
    sum.tasks_launched += st.tasks_launched;
    sum.tasks_completed += st.tasks_completed;
    sum.task_retries += st.task_retries;
    sum.tasks_recomputed += st.tasks_recomputed;
    sum.speculative_launched += st.speculative_launched;
    sum.speculative_won += st.speculative_won;
    sum.shuffle_fetches += st.shuffle_fetches;
    sum.shuffle_local_fetches += st.shuffle_local_fetches;
    sum.shuffle_bytes += st.shuffle_bytes;
    sum.shuffle_bytes_local += st.shuffle_bytes_local;
    sum.shuffle_bytes_remote += st.shuffle_bytes_remote;
    sum.fetch_failures += st.fetch_failures;
    sum.locality_hits += st.locality_hits;
    sum.locality_misses += st.locality_misses;
    sum.heartbeats_received += st.heartbeats_received;
    sum.executors_declared_dead += st.executors_declared_dead;
    sum.checkpoints_written += st.checkpoints_written;
    sum.checkpoint_restores += st.checkpoint_restores;
    sum.sink_writes += st.sink_writes;
    sum.stale_events_ignored += st.stale_events_ignored;
    sum.max_failures_one_task =
        std::max(sum.max_failures_one_task, st.max_failures_one_task);
  }
  return sum;
}

}  // namespace hpbdc::dist
