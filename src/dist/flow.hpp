#pragma once
// Push-based shuffle fabric (ROADMAP item 2, DFI-style). Producers stream
// map output to its consumers' nodes as fixed-size SEGMENTS over sim::Comm,
// paced by credit-based flow control; consumers find complete streams
// already resident when they start, or register a reader that wakes as the
// tail segments arrive — that is the compute/transfer overlap the pull
// registry's stage barrier forbids.
//
// Design notes (mirrors Spark's Magnet / push-based shuffle):
//   - The pushed copy is an OPTIMIZATION, never the source of truth. The
//     producer's spilled registry block remains authoritative; any stream
//     that is incomplete when a reader loses patience — loss burst, dead
//     producer, reassigned consumer — falls back to a classic origin fetch
//     (the transport layer owns that fallback; the fabric just reports
//     stream state).
//   - A stream is keyed (consumer node, stage, task, child). Segments carry
//     (seg index, nseg); arrival order is irrelevant, the stream completes
//     when all nseg distinct segments arrived. Segment PAYLOADS are not
//     materialized: like Comm collectives, only simulated sizes ride the
//     wire, and the content is copied from the producer's registry block at
//     completion time (deterministic — block content is a pure function of
//     the job spec). A producer that died before completion breaks the
//     stream instead.
//   - Unicast pushes are credit-paced per (src, dst) channel: at most
//     `credits_per_channel` segments in flight, each delivery acked by a
//     small credit-return message, excess segments queue at the producer
//     (counted as credit stalls). Lost segments or acks leak credits for
//     the remainder of the job; liveness never depends on them — the
//     reader-patience fallback covers every such hole, so no retransmit or
//     credit-timeout machinery exists.
//   - Broadcast streams use Comm::multicast_sized: ONE fabric frame fans
//     out to all consumer nodes (TX serialized once at the source), keyed
//     with the kBroadcastChild sentinel. Multicast is not credit-paced —
//     per-destination pacing of a shared frame has no single queue to push
//     back on; bounded in practice by nseg * segment_bytes per stream.
//   - Job epochs fence everything: reset() bumps the epoch, segments and
//     acks from a previous job are dropped on arrival.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/serialize.hpp"
#include "dist/options.hpp"
#include "obs/metrics.hpp"
#include "sim/comm.hpp"

namespace hpbdc::dist::flow {

struct FlowStats {
  std::uint64_t segments_pushed = 0;     // unicast segments sent (incl. queued-then-sent)
  std::uint64_t segments_delivered = 0;  // segment arrivals (unicast + multicast replicas)
  std::uint64_t segments_dropped = 0;    // arrivals discarded (dead target / stale epoch)
  std::uint64_t multicast_segments = 0;  // broadcast segments (one fabric frame each)
  std::uint64_t bytes_pushed = 0;        // body bytes handed to the fabric
  std::uint64_t credit_stalls = 0;       // segments that had to queue for credit
  std::uint64_t streams_completed = 0;
  std::uint64_t streams_broken = 0;      // completed arrival but producer was gone
  std::uint64_t waits_satisfied = 0;     // readers woken by a completing stream
  std::uint64_t waits_abandoned = 0;     // readers that hit patience / breakage
  double overlap_wait_s = 0.0;           // reader time spent blocked on in-flight streams
};

/// The per-cluster push fabric. One instance serves every job of a
/// DistRuntime; reset() re-arms it for a new job epoch. Single-threaded like
/// everything in the sim — no locking, determinism comes from the event
/// queue.
class FlowFabric {
 public:
  /// Child index used to key broadcast streams (a broadcast block is the
  /// same for every consumer task, so there is one stream per target node,
  /// not one per child partition).
  static constexpr std::uint32_t kBroadcastChild = 0xFFFFFFFFu;
  static constexpr std::size_t kNone = ~std::size_t{0};

  enum class StreamState : std::uint8_t {
    kAbsent,    // no segment seen, no reader registered
    kInFlight,  // some segments arrived (or a reader is waiting ahead of them)
    kComplete,  // all segments arrived and content resolved — data() is valid
    kBroken,    // all segments arrived but the producer died first
  };

  /// Everything the fabric needs from its host, kept as hooks so flow_test
  /// can drive it without a DistRuntime.
  struct Hooks {
    std::function<bool(std::size_t node)> node_alive;
    /// Authoritative content of (stage, task, child) at the producer `src`,
    /// or nullptr if the producer no longer holds it (dead / restarted).
    std::function<const Bytes*(std::size_t src, std::size_t stage, std::size_t task,
                               std::uint32_t child)>
        resolve_block;
  };

  FlowFabric(sim::Comm& comm, Hooks hooks);

  /// Re-arm for a new job: new epoch fences stale traffic, channels refill
  /// to opts.credits_per_channel, all buffered streams are dropped.
  void reset(const FlowOptions& opts, std::uint64_t epoch);

  const FlowOptions& options() const noexcept { return opts_; }
  const FlowStats& stats() const noexcept { return stats_; }

  /// Mirror fabric counters into the registry as dist.flow.* (idempotent;
  /// call once per registry).
  void bind_metrics(obs::MetricsRegistry& reg);

  // ---- producer side ------------------------------------------------------

  /// Stream child block `child` of (stage, task) from src to dst,
  /// credit-paced. sim_bytes is the simulated block size; it is cut into
  /// ceil(sim_bytes / segment_bytes) segments.
  void push_block(std::size_t src, std::size_t dst, std::size_t stage, std::size_t task,
                  std::uint32_t child, std::uint64_t sim_bytes);

  /// Stream one broadcast block to every node in dsts via fabric multicast
  /// (TX paid once per segment). Not credit-paced — see file header.
  void push_broadcast(std::size_t src, const std::vector<std::size_t>& dsts,
                      std::size_t stage, std::size_t task, std::uint64_t sim_bytes);

  // ---- consumer side ------------------------------------------------------

  StreamState stream_state(std::size_t node, std::size_t stage, std::size_t task,
                           std::uint32_t child) const;

  /// Content of a kComplete stream buffered at `node` (nullptr otherwise).
  /// The pointer is owned by the fabric and valid until the stream is
  /// cleared (reset / node_killed / node_recovered).
  const Bytes* stream_data(std::size_t node, std::size_t stage, std::size_t task,
                           std::uint32_t child) const;

  /// Wait for the stream to turn terminal. cb(true) on completion, cb(false)
  /// on breakage or after `patience` simulated seconds — fired exactly once,
  /// synchronously if the stream is already terminal. Registering on an
  /// absent stream is the reader-ahead-of-writer case: the reader blocks
  /// until segments catch up or patience expires.
  void await(std::size_t node, std::size_t stage, std::size_t task, std::uint32_t child,
             double patience, std::function<void(bool)> cb);

  // ---- cluster membership -------------------------------------------------

  /// Node died: its buffered streams vanish with its memory, its waiting
  /// readers are abandoned without callback (their attempts died with it),
  /// streams it was producing elsewhere will resolve broken, and its
  /// channels drop queued segments and refill credit.
  void node_killed(std::size_t node);

  /// Node rejoined with fresh memory: identical cleanup (a stream buffered
  /// across the crash would be stale state the real machine lost).
  void node_recovered(std::size_t node);

 private:
  struct Waiter {
    std::uint64_t id = 0;
    double registered_at = 0.0;
    std::function<void(bool)> cb;
  };

  struct Stream {
    std::size_t src = kNone;  // producer of the segments seen so far
    std::uint32_t nseg = 0;   // 0 until the first segment announces it
    std::uint32_t received = 0;
    StreamState state = StreamState::kInFlight;
    Bytes data;  // resolved at completion
    std::vector<Waiter> waiters;
  };

  struct PendingSeg {
    std::size_t src = 0, dst = 0;
    std::uint64_t stage = 0, task = 0;
    std::uint32_t child = 0, seg = 0, nseg = 0;
    std::uint64_t body = 0;
  };

  struct Channel {
    std::size_t credits = 0;
    std::deque<PendingSeg> queue;
  };

  static std::uint64_t key(std::size_t stage, std::size_t task, std::uint32_t child) {
    return (static_cast<std::uint64_t>(stage) << 48) |
           (static_cast<std::uint64_t>(task) << 32) | child;
  }

  Channel& chan(std::size_t src, std::size_t dst) { return chans_[src * nranks_ + dst]; }

  void send_segment(const PendingSeg& s);
  void on_message(std::size_t me, std::size_t from, const Bytes& payload);
  void on_segment(std::size_t me, std::size_t from, std::uint64_t stage,
                  std::uint64_t task, std::uint32_t child, std::uint32_t nseg);
  void complete_stream(std::size_t me, std::uint64_t k, Stream& st);
  void finish_waiters(Stream& st, bool ok);
  void drain(Channel& ch);

  sim::Comm& comm_;
  Hooks hooks_;
  FlowOptions opts_;
  std::uint64_t epoch_ = 0;
  std::size_t nranks_ = 0;
  int tag_ = 0;
  std::uint64_t next_waiter_ = 1;
  std::vector<Channel> chans_;                          // [src * nranks + dst]
  std::vector<std::map<std::uint64_t, Stream>> bufs_;   // [node][key]
  FlowStats stats_;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_stalls_ = nullptr;
  obs::Counter* m_segs_ = nullptr;
  obs::Counter* m_mcast_ = nullptr;
  obs::Counter* m_broken_ = nullptr;
  obs::Counter* m_overlap_us_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;  // unicast segments awaiting delivery/ack
};

}  // namespace hpbdc::dist::flow
