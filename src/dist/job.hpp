#pragma once
// Logical job model for the distributed dataflow runtime (src/dist): a DAG
// of stages separated by wide (shuffle) boundaries, mirroring the
// narrow/wide dependency model of src/dataflow. A stage is `ntasks`
// independent tasks; task t consumes, from every parent stage, the t-th
// output block of each parent task (a hash/range-partitioned shuffle), and
// produces one output block per child partition. Blocks are real serialized
// Bytes — the runtime moves and recomputes actual data, so results can be
// compared bit-for-bit against the shared-memory engine — while the
// *simulated* size of a block may be overridden so benches can model
// multi-GiB shuffles without allocating them (the Comm::send_sized
// convention).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::dist {

/// inputs[p][m] = block produced for this task by parent p's task m.
using TaskFn = std::function<std::vector<Bytes>(
    std::size_t task, const std::vector<std::vector<Bytes>>& inputs)>;

struct StageSpec {
  std::string name;
  std::size_t ntasks = 1;
  /// Indices of earlier stages this one shuffles from (wide dependencies).
  std::vector<std::size_t> parents;
  TaskFn run;
  /// Simulated bytes of stage-external input (DFS block / scan) charged per
  /// task before compute, even when `run` synthesizes the data itself.
  std::uint64_t input_bytes_per_task = 0;
  /// DFS file providing block-level locality: block t feeds task t. Empty =
  /// no locality preference.
  std::string input_file;
  /// Persist this stage's outputs to the DFS on completion, truncating
  /// lineage: later losses restore from the checkpoint instead of
  /// recomputing the stage's ancestors.
  bool checkpoint = false;
  /// Optional override of the simulated size of output block `child` of
  /// task `task` (the actual Bytes stay small). Unset = real byte size.
  std::function<std::uint64_t(std::size_t task, std::size_t child)> sim_out_bytes;
  /// Broadcast distribution: every output block of a task is the task's FULL
  /// row set (all children identical), so consumers take the union across
  /// parent tasks instead of a partition. The push transport moves such
  /// stages with ONE multicast stream per task instead of N unicast copies;
  /// the pull transport still fetches per-child copies (the baseline the
  /// flow bench compares against).
  bool broadcast = false;
};

struct JobSpec {
  std::string name = "job";
  /// Topologically ordered; every stage must be an ancestor of the final
  /// stage, whose output blocks are shipped to the driver as the result.
  std::vector<StageSpec> stages;
  /// Non-empty = persist the final stage's concatenated output blocks to
  /// the DFS under this name before the done callback fires, using
  /// RuntimeOptions::sink_policy for durability. Requires a Dfs; without
  /// one the sink is skipped (JobResult::sink_ok stays false).
  std::string sink_file;
};

struct JobResult {
  bool ok = false;
  /// Sink write durable in the DFS (meaningful only when the JobSpec named a
  /// sink_file and the job succeeded; false otherwise).
  bool sink_ok = false;
  sim::SimTime makespan = 0;
  /// output[t] = result-stage task t's blocks, in task order.
  std::vector<std::vector<Bytes>> output;
  /// Per-stage wall-clock (simulated): first launch to last completion.
  /// Benches read shuffle-stage makespans from here (start/end are -1 for
  /// stages that never ran, e.g. on a failed job).
  struct StageSpan {
    std::string name;
    sim::SimTime start = -1;
    sim::SimTime end = -1;
  };
  std::vector<StageSpan> stages;
};

}  // namespace hpbdc::dist
