#include "dist/transport.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpbdc::dist {

ShuffleTransport::ShuffleTransport(Env env) : env_(std::move(env)) {
  store_.resize(env_.comm->nranks());
}

void ShuffleTransport::begin_job(const JobSpec* job, std::uint64_t epoch,
                                 const RuntimeOptions& opts) {
  job_ = job;
  epoch_ = epoch;
  opts_ = opts;
  for (auto& m : store_) m.clear();
}

void ShuffleTransport::publish(std::uint64_t /*attempt_id*/, std::size_t node,
                               std::size_t stage, std::size_t task, BlockSet bs,
                               std::function<void()> announced) {
  const std::uint64_t total = bs.total_sim;
  store_[node][out_key(stage, task)] = std::move(bs);
  // Spill to the producer's local disk before announcing (pre-redesign
  // behavior, event-for-event).
  env_.disk(node).access(env_.comm->simulator(), total, std::move(announced));
}

const BlockSet* ShuffleTransport::find(std::size_t node, std::size_t stage,
                                       std::size_t task) const {
  const auto& m = store_[node];
  const auto it = m.find(out_key(stage, task));
  return it == m.end() ? nullptr : &it->second;
}

std::size_t ShuffleTransport::preferred_node(std::size_t /*stage*/,
                                             std::size_t /*task*/) const {
  return kNone;
}

void ShuffleTransport::node_killed(std::size_t node) { store_[node].clear(); }

void ShuffleTransport::node_recovered(std::size_t node) { store_[node].clear(); }

void ShuffleTransport::bind_metrics(obs::MetricsRegistry& /*reg*/) {}

ShuffleTransport::Resolved ShuffleTransport::resolve_origin(std::size_t ps,
                                                            std::size_t pt,
                                                            std::size_t near) const {
  const auto po = env_.parent_output(ps, pt);
  if (po.done && po.node != kNone && env_.node_alive(po.node) &&
      store_[po.node].contains(out_key(ps, pt))) {
    return Resolved{po.node, false};
  }
  const std::size_t cr = env_.ckpt_replica(ps, near);
  if (cr != kNone) return Resolved{cr, true};
  return Resolved{};
}

void ShuffleTransport::fail_collect(const std::shared_ptr<Ctx>& ctx, std::size_t ps,
                                    std::size_t pt) {
  if (ctx->failed) return;
  ctx->failed = true;
  ctx->req.on_missing(ps, pt);
}

void ShuffleTransport::fetch_one(const std::shared_ptr<Ctx>& ctx, std::size_t src,
                                 std::uint64_t bytes, bool from_ckpt, std::size_t pi,
                                 std::size_t ps, std::size_t pt) {
  const std::size_t dst = ctx->req.node;
  const std::size_t my_task = ctx->req.task;
  env_.count_fetch(bytes, src == dst, from_ckpt);
  auto deliver = [this, ctx, from_ckpt, src, pi, ps, pt, my_task] {
    if (env_.attempt_dead(ctx->req.attempt_id) || ctx->failed) return;
    Bytes data;
    if (from_ckpt) {
      data = env_.ckpt_block(ps, pt, my_task);
    } else {
      const BlockSet* bsp = find(src, ps, pt);
      if (!env_.node_alive(src) || bsp == nullptr) {
        // Source lost while the transfer was in flight.
        env_.count_fetch_failure();
        fail_collect(ctx, ps, pt);
        return;
      }
      data = bsp->blocks.at(my_task);
    }
    (*ctx->req.inputs)[pi][pt] = std::move(data);
    if (--ctx->pending == 0) ctx->req.on_ready(ctx->bytes);
  };
  env_.disk(src).access(env_.comm->simulator(), bytes,
                        [this, src, dst, bytes, deliver = std::move(deliver)] {
                          env_.comm->network().send(src, dst, bytes, deliver);
                        });
}

// ---------------------------------------------------------------------------
// PullTransport — the pre-redesign fetch path, verbatim
// ---------------------------------------------------------------------------

void PullTransport::collect(CollectRequest req) {
  const StageSpec& spec = job_->stages[req.stage];
  auto ctx = std::make_shared<Ctx>();
  ctx->req = std::move(req);
  auto& inputs = *ctx->req.inputs;
  inputs.resize(spec.parents.size());

  struct P {
    std::size_t src, pi, ps, pt;
    std::uint64_t bytes;
    bool ckpt;
  };
  std::vector<P> plan;
  for (std::size_t pi = 0; pi < spec.parents.size(); ++pi) {
    const std::size_t ps = spec.parents[pi];
    inputs[pi].resize(job_->stages[ps].ntasks);
    for (std::size_t pt = 0; pt < job_->stages[ps].ntasks; ++pt) {
      const auto po = env_.parent_output(ps, pt);
      if (ctx->req.task >= po.sim_sizes->size() &&
          (po.done || env_.stage_checkpointed(ps))) {
        throw std::logic_error("DistRuntime: parent stage produced too few blocks");
      }
      const Resolved r = resolve_origin(ps, pt, ctx->req.node);
      if (r.src == kNone) {
        fail_collect(ctx, ps, pt);
        return;
      }
      plan.push_back(P{r.src, pi, ps, pt, (*po.sim_sizes)[ctx->req.task], r.ckpt});
    }
  }
  ctx->pending = plan.size();
  for (const auto& p : plan) ctx->bytes += p.bytes;
  if (ctx->pending == 0) {
    ctx->req.on_ready(0);
    return;
  }
  for (const auto& p : plan) fetch_one(ctx, p.src, p.bytes, p.ckpt, p.pi, p.ps, p.pt);
}

// ---------------------------------------------------------------------------
// PushTransport — flow shuffle with origin-fetch fallback
// ---------------------------------------------------------------------------

PushTransport::PushTransport(Env env)
    : ShuffleTransport(std::move(env)),
      fabric_(*env_.comm,
              flow::FlowFabric::Hooks{
                  [this](std::size_t n) { return env_.node_alive(n); },
                  [this](std::size_t src, std::size_t stage, std::size_t task,
                         std::uint32_t child) -> const Bytes* {
                    const BlockSet* bs = find(src, stage, task);
                    if (bs == nullptr) return nullptr;
                    // Broadcast streams carry the full row set: child 0 is
                    // identical to every other child by construction.
                    const std::size_t c =
                        child == flow::FlowFabric::kBroadcastChild ? 0 : child;
                    return c < bs->blocks.size() ? &bs->blocks[c] : nullptr;
                  }}) {
  for (std::size_t r = 0; r < env_.comm->nranks(); ++r) {
    if (r != env_.driver) targets_.push_back(r);
  }
  if (targets_.empty()) targets_.push_back(env_.driver);  // single-node cluster
}

void PushTransport::begin_job(const JobSpec* job, std::uint64_t epoch,
                              const RuntimeOptions& opts) {
  ShuffleTransport::begin_job(job, epoch, opts);
  fabric_.reset(opts.flow, epoch);
}

std::size_t PushTransport::partition_target(std::size_t t) const {
  return targets_[t % targets_.size()];
}

std::size_t PushTransport::preferred_node(std::size_t stage, std::size_t task) const {
  // Only consumers (stages with shuffle parents) have a flow home.
  if (job_ == nullptr || job_->stages[stage].parents.empty()) return kNone;
  return partition_target(task);
}

void PushTransport::publish(std::uint64_t attempt_id, std::size_t node,
                            std::size_t stage, std::size_t task, BlockSet bs,
                            std::function<void()> announced) {
  const std::uint64_t total = bs.total_sim;
  store_[node][out_key(stage, task)] = std::move(bs);
  const std::uint64_t epoch = epoch_;
  env_.disk(node).access(
      env_.comm->simulator(), total,
      [this, attempt_id, node, stage, task, epoch,
       announced = std::move(announced)] {
        announced();  // self-guarding (runtime re-checks attempt liveness)
        if (epoch_ != epoch) return;
        if (stage + 1 >= job_->stages.size()) return;  // result stage: driver-bound
        if (env_.attempt_dead(attempt_id)) return;     // speculative loser etc.
        if (!env_.node_alive(node)) return;
        start_streams(node, stage, task);
      });
}

void PushTransport::start_streams(std::size_t node, std::size_t stage,
                                 std::size_t task) {
  const BlockSet* out = find(node, stage, task);
  if (out == nullptr) return;  // node cycled between spill and now
  if (job_->stages[stage].broadcast) {
    // One multicast stream shared by all children, sent to each distinct
    // target node exactly once.
    std::vector<std::size_t> dsts;
    for (std::size_t c = 0; c < out->blocks.size(); ++c) {
      const std::size_t d = partition_target(c);
      if (std::find(dsts.begin(), dsts.end(), d) == dsts.end()) dsts.push_back(d);
    }
    fabric_.push_broadcast(node, dsts, stage, task,
                           out->sim_sizes.empty() ? 0 : out->sim_sizes[0]);
    return;
  }
  for (std::size_t c = 0; c < out->blocks.size(); ++c) {
    fabric_.push_block(node, partition_target(c), stage, task,
                       static_cast<std::uint32_t>(c), out->sim_sizes[c]);
  }
}

void PushTransport::collect(CollectRequest req) {
  const StageSpec& spec = job_->stages[req.stage];
  auto ctx = std::make_shared<Ctx>();
  ctx->req = std::move(req);
  auto& inputs = *ctx->req.inputs;
  inputs.resize(spec.parents.size());

  struct Need {
    std::size_t pi, ps, pt;
    std::uint64_t bytes;
    std::uint32_t child;
  };
  std::vector<Need> waits, fallbacks;
  for (std::size_t pi = 0; pi < spec.parents.size(); ++pi) {
    const std::size_t ps = spec.parents[pi];
    inputs[pi].resize(job_->stages[ps].ntasks);
    const bool bcast = job_->stages[ps].broadcast;
    const auto child = bcast ? flow::FlowFabric::kBroadcastChild
                             : static_cast<std::uint32_t>(ctx->req.task);
    for (std::size_t pt = 0; pt < job_->stages[ps].ntasks; ++pt) {
      const auto po = env_.parent_output(ps, pt);
      if (ctx->req.task >= po.sim_sizes->size() &&
          (po.done || env_.stage_checkpointed(ps))) {
        throw std::logic_error("DistRuntime: parent stage produced too few blocks");
      }
      const std::uint64_t bytes = ctx->req.task < po.sim_sizes->size()
                                      ? (*po.sim_sizes)[ctx->req.task]
                                      : 0;
      ctx->bytes += bytes;  // compute charges input volume however it arrived
      using SS = flow::FlowFabric::StreamState;
      const SS st = fabric_.stream_state(ctx->req.node, ps, pt, child);
      if (st == SS::kComplete) {
        inputs[pi][pt] = *fabric_.stream_data(ctx->req.node, ps, pt, child);
        env_.count_fetch(bytes, /*local=*/true, /*from_ckpt=*/false);
        continue;
      }
      const Need need{pi, ps, pt, bytes, child};
      // In-flight streams — and absent ones whose producer is done and
      // presumably still streaming — are worth a bounded wait (this is the
      // compute/transfer overlap). Broken streams, and blocks whose parent
      // has no live incarnation pushing (checkpoint restore, rollback), go
      // straight to the origin fetch.
      if (st == SS::kInFlight || (st == SS::kAbsent && po.done)) {
        waits.push_back(need);
      } else {
        fallbacks.push_back(need);
      }
    }
  }

  ctx->pending = waits.size() + fallbacks.size();
  if (ctx->pending == 0) {
    ctx->req.on_ready(ctx->bytes);
    return;
  }
  for (const Need& w : waits) {
    fabric_.await(
        ctx->req.node, w.ps, w.pt, w.child, opts_.flow.reader_patience,
        [this, ctx, w](bool ok) {
          if (env_.attempt_dead(ctx->req.attempt_id) || ctx->failed) return;
          if (ok) {
            (*ctx->req.inputs)[w.pi][w.pt] =
                *fabric_.stream_data(ctx->req.node, w.ps, w.pt, w.child);
            env_.count_fetch(w.bytes, /*local=*/true, /*from_ckpt=*/false);
            if (--ctx->pending == 0) ctx->req.on_ready(ctx->bytes);
          } else {
            // Stream broke or patience ran out: classic fetch, same pending slot.
            const Resolved r = resolve_origin(w.ps, w.pt, ctx->req.node);
            if (r.src == kNone) {
              fail_collect(ctx, w.ps, w.pt);
              return;
            }
            fetch_one(ctx, r.src, w.bytes, r.ckpt, w.pi, w.ps, w.pt);
          }
        });
  }
  for (const Need& f : fallbacks) {
    const Resolved r = resolve_origin(f.ps, f.pt, ctx->req.node);
    if (r.src == kNone) {
      fail_collect(ctx, f.ps, f.pt);
      return;
    }
    fetch_one(ctx, r.src, f.bytes, r.ckpt, f.pi, f.ps, f.pt);
  }
}

void PushTransport::node_killed(std::size_t node) {
  ShuffleTransport::node_killed(node);
  fabric_.node_killed(node);
}

void PushTransport::node_recovered(std::size_t node) {
  ShuffleTransport::node_recovered(node);
  fabric_.node_recovered(node);
}

void PushTransport::bind_metrics(obs::MetricsRegistry& reg) {
  fabric_.bind_metrics(reg);
}

}  // namespace hpbdc::dist
