#pragma once
// Concurrent job slots for the distributed runtime. A DistRuntime runs ONE
// job at a time by design (its scheduling state is per-job); JobSlotPool
// turns the same simulated cluster into a K-way job executor by hosting K
// independent DistRuntime instances over one Comm. Every slot sees the same
// node ids and shares the simulated network fabric (NIC/link contention is
// real across jobs) and the optional DFS; per-slot control planes use
// distinct Comm tags, so messages never cross-deliver. Fault injection fans
// out to every slot: a node kill takes the executor down for all in-flight
// jobs at once, exactly like a machine death under a multi-job service.
//
// This is the execution backend of the serve layer (src/serve): saturation
// (`busy() == slots()`) is the backpressure signal the service propagates
// upstream, and per-job completion callbacks free the slot before they fire
// so a scheduler can dispatch the next queued job from inside the callback.
//
// The pool is ELASTIC: the fleet layer (src/fleet) grows it with add_slot()
// and shrinks it with retire_idle_slot(). Slots are never erased or
// reordered — submit callbacks capture slot indices — so a retired slot is
// a tombstone that later add_slot() calls resurrect before constructing
// anything new. Fault injection keeps fanning out to tombstones (their
// runtimes' liveness views stay current for free), and a genuinely NEW slot
// has the pool's fault history applied at creation: the current dead /
// speed / draining state of every node immediately, plus any fan-out events
// still scheduled in the future.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/runtime.hpp"

namespace hpbdc::dist {

class JobSlotPool {
 public:
  /// Slot i's runtime derives its seed from cfg.seed and i, so concurrent
  /// jobs do not share heartbeat-jitter streams but the whole pool is still
  /// pinned by one seed. cfg.node_mtbf is forced to 0: with K runtimes the
  /// per-slot injectors would each kill nodes independently — drive faults
  /// through kill_node_at/recover_node_at instead.
  JobSlotPool(sim::Comm& comm, DistConfig cfg, std::size_t slots,
              sim::Dfs* dfs = nullptr);

  /// Slots in rotation (excludes retired tombstones).
  std::size_t slots() const noexcept { return active_; }
  std::size_t busy() const noexcept { return busy_; }
  bool saturated() const noexcept { return busy_ == active_; }

  /// Grow the pool by one slot and return its index. Resurrects the most
  /// recently retired tombstone when one exists (its runtime's fault state
  /// is already current — fan-out never stopped); otherwise constructs a
  /// new runtime with the pool's fault history replayed onto it.
  std::size_t add_slot();

  /// Shrink the pool by one slot: tombstone the highest-indexed IDLE slot.
  /// Returns false when every slot is busy or only one active slot remains
  /// (the pool never shrinks to zero). Callers drain first — a retired slot
  /// holds no job, so nothing is lost.
  bool retire_idle_slot();

  /// Run `job` on a free slot; throws std::logic_error when saturated (check
  /// saturated() first — the serve layer queues instead of submitting). The
  /// slot is freed BEFORE `done` runs, so the callback may submit again.
  /// The two-arg form uses default RuntimeOptions (pull transport); the
  /// three-arg form carries per-job transport/flow knobs down to the slot's
  /// DistRuntime.
  void submit(JobSpec job, DistRuntime::JobDoneFn done);
  void submit(JobSpec job, const RuntimeOptions& opts, DistRuntime::JobDoneFn done);

  /// Take a slot out of rotation without running a batch job on it — the
  /// serve layer parks a long-lived STREAMING job here so admission control
  /// and the saturation/backpressure signals see one executor slot held for
  /// the job's whole lifetime (epochs, not a single run). Returns the slot
  /// index; throws std::logic_error when saturated. release_slot() returns
  /// it to rotation (idempotence is NOT provided; release exactly once).
  std::size_t reserve_slot();
  void release_slot(std::size_t i);

  /// Fault injection, fanned out to every slot (and the shared DFS, which
  /// tolerates the resulting duplicate fail/recover calls). Events are also
  /// logged so slots added later inherit them.
  void kill_node_at(std::size_t node, sim::SimTime t);
  void recover_node_at(std::size_t node, sim::SimTime t);
  void set_node_speed_at(std::size_t node, double speed, sim::SimTime t);

  /// Drain control, fanned out to every slot immediately: a draining node
  /// receives no NEW task attempts in any slot while running attempts
  /// finish (see DistRuntime::set_node_draining). The fleet layer's
  /// graceful half of removing a machine.
  void set_node_draining(std::size_t node, bool draining);

  /// Shared-name metrics: counters accumulate across slots, gauges reflect
  /// the most recent writer (slots agree on liveness, so this is coherent).
  /// Slots added later bind to the same registry automatically.
  void bind_metrics(obs::MetricsRegistry& reg);

  /// Element-wise sum of every slot's DistStats (tombstones included —
  /// their history happened).
  DistStats aggregate_stats() const;

  std::size_t live_executors() const { return slots_.front()->rt.live_executors(); }
  const DistConfig& config() const noexcept { return cfg_; }
  DistRuntime& slot_runtime(std::size_t i) { return slots_.at(i)->rt; }
  sim::Simulator& simulator() noexcept { return comm_.simulator(); }
  std::size_t cluster_nodes() const noexcept { return comm_.nranks(); }

 private:
  struct Slot {
    DistRuntime rt;
    bool busy = false;
    bool retired = false;
    Slot(sim::Comm& comm, const DistConfig& cfg, sim::Dfs* dfs)
        : rt(comm, cfg, dfs) {}
  };

  /// One injected fault, kept so add_slot can replay still-future events
  /// onto a new runtime (past events are summarized by node_state_).
  struct FaultEvent {
    enum class Kind : std::uint8_t { kKill, kRecover, kSpeed } kind;
    std::size_t node = 0;
    sim::SimTime t = 0;
    double speed = 1.0;
  };

  /// Pool-level mirror of each node's CURRENT fault state, maintained by
  /// events scheduled alongside the per-slot fan-out. This is what a brand
  /// new slot starts from.
  struct NodeState {
    bool dead = false;
    double speed = 1.0;
    bool draining = false;
  };

  Slot& make_slot(std::size_t index);

  sim::Comm& comm_;
  DistConfig cfg_;
  sim::Dfs* dfs_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::size_t> retired_;  // tombstone indices, LIFO
  std::size_t active_ = 0;
  std::size_t busy_ = 0;
  std::vector<FaultEvent> fault_log_;
  std::vector<NodeState> node_state_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace hpbdc::dist
