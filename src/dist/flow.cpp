#include "dist/flow.hpp"

#include <algorithm>

namespace hpbdc::dist::flow {

namespace {

// Wire format of every fabric message (body size is simulated separately;
// this payload is the small real header that rides along).
enum MsgKind : std::uint8_t { kSeg = 1, kAck = 2, kMcastSeg = 3 };

struct Header {
  std::uint8_t kind = 0;
  std::uint64_t epoch = 0;
  std::uint64_t stage = 0;
  std::uint64_t task = 0;
  std::uint32_t child = 0;
  std::uint32_t seg = 0;
  std::uint32_t nseg = 0;
};

Bytes encode(const Header& h) {
  BufWriter w(40);
  w.write_pod(h.kind);
  w.write_pod(h.epoch);
  w.write_pod(h.stage);
  w.write_pod(h.task);
  w.write_pod(h.child);
  w.write_pod(h.seg);
  w.write_pod(h.nseg);
  return w.take();
}

Header decode(const Bytes& b) {
  BufReader r(b);
  Header h;
  h.kind = r.read_pod<std::uint8_t>();
  h.epoch = r.read_pod<std::uint64_t>();
  h.stage = r.read_pod<std::uint64_t>();
  h.task = r.read_pod<std::uint64_t>();
  h.child = r.read_pod<std::uint32_t>();
  h.seg = r.read_pod<std::uint32_t>();
  h.nseg = r.read_pod<std::uint32_t>();
  return h;
}

std::uint32_t segment_count(std::uint64_t bytes, std::uint64_t seg_bytes) {
  if (bytes == 0) return 1;  // empty blocks still announce themselves
  return static_cast<std::uint32_t>((bytes + seg_bytes - 1) / seg_bytes);
}

std::uint64_t segment_body(std::uint64_t bytes, std::uint64_t seg_bytes,
                           std::uint32_t seg, std::uint32_t nseg) {
  if (nseg == 1) return bytes;
  return seg + 1 == nseg ? bytes - static_cast<std::uint64_t>(nseg - 1) * seg_bytes
                         : seg_bytes;
}

}  // namespace

FlowFabric::FlowFabric(sim::Comm& comm, Hooks hooks)
    : comm_(comm),
      hooks_(std::move(hooks)),
      nranks_(comm.nranks()),
      tag_(comm.next_tag()),
      chans_(nranks_ * nranks_),
      bufs_(nranks_) {
  for (std::size_t r = 0; r < nranks_; ++r) {
    comm_.set_handler(r, tag_, [this, r](std::size_t from, const Bytes& payload) {
      on_message(r, from, payload);
    });
  }
  for (auto& ch : chans_) ch.credits = opts_.credits_per_channel;
}

void FlowFabric::reset(const FlowOptions& opts, std::uint64_t epoch) {
  opts_ = opts;
  epoch_ = epoch;
  for (auto& ch : chans_) {
    ch.credits = opts_.credits_per_channel;
    ch.queue.clear();
  }
  for (auto& m : bufs_) m.clear();  // waiters die silently: their jobs are gone
  if (m_inflight_ != nullptr) m_inflight_->set(0);
}

void FlowFabric::bind_metrics(obs::MetricsRegistry& reg) {
  m_bytes_ = &reg.counter("dist.flow.bytes_pushed");
  m_stalls_ = &reg.counter("dist.flow.credit_stalls");
  m_segs_ = &reg.counter("dist.flow.segments_pushed");
  m_mcast_ = &reg.counter("dist.flow.multicast_segments");
  m_broken_ = &reg.counter("dist.flow.streams_broken");
  m_overlap_us_ = &reg.counter("dist.flow.overlap_wait_us");
  m_inflight_ = &reg.gauge("dist.flow.segments_in_flight");
}

void FlowFabric::push_block(std::size_t src, std::size_t dst, std::size_t stage,
                            std::size_t task, std::uint32_t child,
                            std::uint64_t sim_bytes) {
  const std::uint32_t nseg = segment_count(sim_bytes, opts_.segment_bytes);
  Channel& ch = chan(src, dst);
  for (std::uint32_t i = 0; i < nseg; ++i) {
    PendingSeg s{src, dst, stage, task, child, i, nseg,
                 segment_body(sim_bytes, opts_.segment_bytes, i, nseg)};
    if (ch.credits > 0 && ch.queue.empty()) {
      --ch.credits;
      send_segment(s);
    } else {
      ++stats_.credit_stalls;
      if (m_stalls_ != nullptr) m_stalls_->add(1);
      ch.queue.push_back(s);
    }
  }
}

void FlowFabric::push_broadcast(std::size_t src, const std::vector<std::size_t>& dsts,
                                std::size_t stage, std::size_t task,
                                std::uint64_t sim_bytes) {
  if (dsts.empty()) return;
  const std::uint32_t nseg = segment_count(sim_bytes, opts_.segment_bytes);
  for (std::uint32_t i = 0; i < nseg; ++i) {
    const std::uint64_t body = segment_body(sim_bytes, opts_.segment_bytes, i, nseg);
    Header h{kMcastSeg, epoch_, stage, task, kBroadcastChild, i, nseg};
    ++stats_.multicast_segments;
    stats_.bytes_pushed += body;
    if (m_mcast_ != nullptr) m_mcast_->add(1);
    if (m_bytes_ != nullptr) m_bytes_->add(body);
    comm_.multicast_sized(src, dsts, tag_, body, encode(h));
  }
}

void FlowFabric::send_segment(const PendingSeg& s) {
  Header h{kSeg, epoch_, s.stage, s.task, s.child, s.seg, s.nseg};
  ++stats_.segments_pushed;
  stats_.bytes_pushed += s.body;
  if (m_segs_ != nullptr) m_segs_->add(1);
  if (m_bytes_ != nullptr) m_bytes_->add(s.body);
  if (m_inflight_ != nullptr) m_inflight_->add(1);
  comm_.send_sized(s.src, s.dst, tag_, s.body, encode(h));
}

void FlowFabric::drain(Channel& ch) {
  while (ch.credits > 0 && !ch.queue.empty()) {
    PendingSeg s = ch.queue.front();
    ch.queue.pop_front();
    --ch.credits;
    send_segment(s);
  }
}

void FlowFabric::on_message(std::size_t me, std::size_t from, const Bytes& payload) {
  const Header h = decode(payload);
  if (h.epoch != epoch_) return;  // traffic from a previous job
  if (h.kind == kAck) {
    // `me` is the producer; `from` returns one credit on channel (me, from).
    Channel& ch = chan(me, from);
    if (m_inflight_ != nullptr) m_inflight_->add(-1);
    if (ch.credits < opts_.credits_per_channel) ++ch.credits;
    drain(ch);
    return;
  }
  ++stats_.segments_delivered;
  const bool unicast = h.kind == kSeg;
  if (!hooks_.node_alive(me)) {
    // Dead target: segment evaporates, no ack — the channel's credit leaks
    // until node_killed() resets it.
    ++stats_.segments_dropped;
    return;
  }
  if (unicast) {
    // Return the credit before stream bookkeeping so the ack's send time
    // never depends on resolve work.
    Header ack{kAck, epoch_, h.stage, h.task, h.child, h.seg, h.nseg};
    comm_.send_sized(me, from, tag_, opts_.ack_bytes, encode(ack));
  }
  on_segment(me, from, h.stage, h.task, h.child, h.nseg);
}

void FlowFabric::on_segment(std::size_t me, std::size_t from, std::uint64_t stage,
                            std::uint64_t task, std::uint32_t child,
                            std::uint32_t nseg) {
  const std::uint64_t k = key(stage, task, child);
  Stream& st = bufs_[me][k];
  if (st.state == StreamState::kComplete) return;  // duplicate from a re-push
  if (st.src != from || st.state == StreamState::kBroken) {
    // New producer incarnation (speculation or lineage re-run): restart the
    // stream from scratch — mixing segments of two incarnations would fake
    // completeness.
    st.src = from;
    st.nseg = nseg;
    st.received = 0;
    st.state = StreamState::kInFlight;
    st.data.clear();
  }
  ++st.received;
  if (st.received >= st.nseg) complete_stream(me, k, st);
}

void FlowFabric::complete_stream(std::size_t /*me*/, std::uint64_t k, Stream& st) {
  const std::size_t stage = k >> 48;
  const std::size_t task = (k >> 32) & 0xFFFF;
  const auto child = static_cast<std::uint32_t>(k & 0xFFFFFFFFu);
  const Bytes* content =
      hooks_.node_alive(st.src) ? hooks_.resolve_block(st.src, stage, task, child)
                                : nullptr;
  if (content != nullptr) {
    st.data = *content;
    st.state = StreamState::kComplete;
    ++stats_.streams_completed;
    finish_waiters(st, true);
  } else {
    st.state = StreamState::kBroken;
    ++stats_.streams_broken;
    if (m_broken_ != nullptr) m_broken_->add(1);
    finish_waiters(st, false);
  }
}

void FlowFabric::finish_waiters(Stream& st, bool ok) {
  std::vector<Waiter> ws;
  ws.swap(st.waiters);
  const double now = comm_.simulator().now();
  for (auto& w : ws) {
    const double waited = now - w.registered_at;
    stats_.overlap_wait_s += waited;
    if (m_overlap_us_ != nullptr) {
      m_overlap_us_->add(static_cast<std::uint64_t>(waited * 1e6));
    }
    if (ok) {
      ++stats_.waits_satisfied;
    } else {
      ++stats_.waits_abandoned;
    }
    w.cb(ok);
  }
}

FlowFabric::StreamState FlowFabric::stream_state(std::size_t node, std::size_t stage,
                                                 std::size_t task,
                                                 std::uint32_t child) const {
  const auto& m = bufs_[node];
  const auto it = m.find(key(stage, task, child));
  if (it == m.end()) return StreamState::kAbsent;
  const Stream& st = it->second;
  // A waiter-created placeholder has seen no segments yet; report it absent
  // so state queries stay side-effect-honest.
  if (st.state == StreamState::kInFlight && st.nseg == 0) return StreamState::kAbsent;
  return st.state;
}

const Bytes* FlowFabric::stream_data(std::size_t node, std::size_t stage,
                                     std::size_t task, std::uint32_t child) const {
  const auto& m = bufs_[node];
  const auto it = m.find(key(stage, task, child));
  if (it == m.end() || it->second.state != StreamState::kComplete) return nullptr;
  return &it->second.data;
}

void FlowFabric::await(std::size_t node, std::size_t stage, std::size_t task,
                       std::uint32_t child, double patience,
                       std::function<void(bool)> cb) {
  const std::uint64_t k = key(stage, task, child);
  Stream& st = bufs_[node][k];
  if (st.state == StreamState::kComplete) {
    cb(true);
    return;
  }
  if (st.state == StreamState::kBroken) {
    cb(false);
    return;
  }
  auto& sim = comm_.simulator();
  const std::uint64_t wid = next_waiter_++;
  st.waiters.push_back(Waiter{wid, sim.now(), std::move(cb)});
  sim.schedule_after(patience, [this, node, k, wid, epoch = epoch_] {
    if (epoch != epoch_) return;
    auto it = bufs_[node].find(k);
    if (it == bufs_[node].end()) return;  // stream cleared (node died)
    auto& ws = it->second.waiters;
    const auto w = std::find_if(ws.begin(), ws.end(),
                                [wid](const Waiter& x) { return x.id == wid; });
    if (w == ws.end()) return;  // already satisfied
    const double waited = comm_.simulator().now() - w->registered_at;
    stats_.overlap_wait_s += waited;
    if (m_overlap_us_ != nullptr) {
      m_overlap_us_->add(static_cast<std::uint64_t>(waited * 1e6));
    }
    ++stats_.waits_abandoned;
    auto cb2 = std::move(w->cb);
    ws.erase(w);
    cb2(false);
  });
}

void FlowFabric::node_killed(std::size_t node) {
  // Buffered streams (and their waiters) die with the node's memory.
  bufs_[node].clear();
  {
    Channel& self = chan(node, node);  // local pushes (producer == target)
    stats_.segments_dropped += self.queue.size();
    self.queue.clear();
    self.credits = opts_.credits_per_channel;
  }
  // Streams it was producing elsewhere can never complete from this
  // incarnation: break the in-flight ones now so waiting readers fall back
  // immediately instead of burning their full patience.
  for (std::size_t n = 0; n < nranks_; ++n) {
    if (n == node) continue;
    for (auto& [k, st] : bufs_[n]) {
      if (st.src == node && st.state == StreamState::kInFlight && st.nseg > 0) {
        st.state = StreamState::kBroken;
        ++stats_.streams_broken;
        if (m_broken_ != nullptr) m_broken_->add(1);
        finish_waiters(st, false);
      }
    }
    // Channels touching the node: queued segments are lost, credits refill
    // for the next incarnation.
    for (auto* ch : {&chan(node, n), &chan(n, node)}) {
      stats_.segments_dropped += ch->queue.size();
      ch->queue.clear();
      ch->credits = opts_.credits_per_channel;
    }
  }
}

void FlowFabric::node_recovered(std::size_t node) {
  bufs_[node].clear();
  for (std::size_t n = 0; n < nranks_; ++n) {
    if (n == node) continue;
    for (auto* ch : {&chan(node, n), &chan(n, node)}) {
      stats_.segments_dropped += ch->queue.size();
      ch->queue.clear();
      ch->credits = opts_.credits_per_channel;
    }
  }
}

}  // namespace hpbdc::dist::flow
