#pragma once
// Ready-made jobs for the distributed runtime: WordCount and TeraSort
// (mirroring the src/algos dataflow versions so results can be compared
// bit-for-bit against the shared-memory engine), plus a synthetic stage
// chain whose shuffle volume is simulated — used by the F10 bench and the
// checkpoint/lineage tests. Header-only; consumers link the umbrella target.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algos/terasort.hpp"
#include "algos/textgen.hpp"
#include "common/hash.hpp"
#include "common/serialize.hpp"
#include "dist/job.hpp"

namespace hpbdc {

template <>
struct Serde<algos::TeraRecord> {
  static void write(BufWriter& w, const algos::TeraRecord& r) {
    w.write_pod(r.key);
    w.write_raw(r.payload.data(), r.payload.size());
  }
  static algos::TeraRecord read(BufReader& r) {
    algos::TeraRecord rec;
    rec.key = r.read_pod<std::uint64_t>();
    r.read_raw(rec.payload.data(), rec.payload.size());
    return rec;
  }
};

}  // namespace hpbdc

namespace hpbdc::dist {

using WordCountRow = std::pair<std::string, std::uint64_t>;

/// Total ordering on records (payload breaks key ties) so both engines can
/// present results in one canonical order.
inline bool tera_less(const algos::TeraRecord& a, const algos::TeraRecord& b) {
  return a.key != b.key ? a.key < b.key : a.payload < b.payload;
}

/// Two-stage WordCount over pre-partitioned lines: map tokenizes and
/// combines locally, hash-partitions words across `nreduce` reducers; each
/// reducer emits one block holding its key-sorted (word, count) rows.
/// `input_file`, when set (with the file written to the DFS beforehand),
/// gives map task t block-t locality; `input_bytes_per_task` is the
/// simulated scan size charged per map task (0 = derive from the text).
inline JobSpec wordcount_job(
    std::shared_ptr<std::vector<std::vector<std::string>>> parts,
    std::size_t nreduce, std::string input_file = {},
    std::uint64_t input_bytes_per_task = 0) {
  if (input_bytes_per_task == 0) {
    std::uint64_t total = 0;
    for (const auto& p : *parts)
      for (const auto& line : p) total += line.size() + 1;
    input_bytes_per_task = std::max<std::uint64_t>(1, total / parts->size());
  }
  JobSpec job;
  job.name = "wordcount";
  StageSpec map;
  map.name = "wc-map";
  map.ntasks = parts->size();
  map.input_bytes_per_task = input_bytes_per_task;
  map.input_file = std::move(input_file);
  map.run = [parts, nreduce](std::size_t task,
                             const std::vector<std::vector<Bytes>>&) {
    std::unordered_map<std::string, std::uint64_t> counts;  // map-side combine
    for (const auto& line : (*parts)[task]) {
      for (auto& w : algos::tokenize(line)) ++counts[std::move(w)];
    }
    std::vector<std::vector<WordCountRow>> buckets(nreduce);
    for (auto& [w, c] : counts) buckets[hash_str(w) % nreduce].emplace_back(w, c);
    std::vector<Bytes> out(nreduce);
    for (std::size_t r = 0; r < nreduce; ++r) {
      std::sort(buckets[r].begin(), buckets[r].end());
      out[r] = to_bytes(buckets[r]);
    }
    return out;
  };
  StageSpec reduce;
  reduce.name = "wc-reduce";
  reduce.ntasks = nreduce;
  reduce.parents = {0};
  reduce.run = [](std::size_t, const std::vector<std::vector<Bytes>>& inputs) {
    std::map<std::string, std::uint64_t> merged;
    for (const auto& block : inputs[0]) {
      for (auto& [w, c] : from_bytes<std::vector<WordCountRow>>(block)) {
        merged[w] += c;
      }
    }
    std::vector<WordCountRow> rows(merged.begin(), merged.end());
    return std::vector<Bytes>{to_bytes(rows)};
  };
  job.stages = {std::move(map), std::move(reduce)};
  return job;
}

/// Merge a finished WordCount's reducer blocks into one globally key-sorted
/// row vector (partitions are hash-split, so a merge-sort is needed).
inline std::vector<WordCountRow> wordcount_collect(const JobResult& res) {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& blocks : res.output) {
    for (const auto& block : blocks) {
      for (auto& [w, c] : from_bytes<std::vector<WordCountRow>>(block)) {
        merged[w] += c;
      }
    }
  }
  return {merged.begin(), merged.end()};
}

/// Two-stage TeraSort over pre-partitioned records: range boundaries are
/// computed driver-side from the exact key population (real TeraSort
/// samples; exact quantiles keep tests deterministic), map tasks
/// range-partition, reduce tasks sort locally — reduce outputs concatenated
/// in task order are globally sorted.
inline JobSpec terasort_job(
    std::shared_ptr<std::vector<std::vector<algos::TeraRecord>>> parts,
    std::size_t nreduce) {
  std::vector<std::uint64_t> keys;
  for (const auto& p : *parts)
    for (const auto& r : p) keys.push_back(r.key);
  std::sort(keys.begin(), keys.end());
  auto bounds = std::make_shared<std::vector<std::uint64_t>>();
  for (std::size_t r = 1; r < nreduce; ++r) {
    bounds->push_back(keys[r * keys.size() / nreduce]);
  }
  JobSpec job;
  job.name = "terasort";
  StageSpec map;
  map.name = "ts-map";
  map.ntasks = parts->size();
  map.run = [parts, bounds, nreduce](std::size_t task,
                                     const std::vector<std::vector<Bytes>>&) {
    std::vector<std::vector<algos::TeraRecord>> buckets(nreduce);
    for (const auto& rec : (*parts)[task]) {
      const std::size_t b = static_cast<std::size_t>(
          std::upper_bound(bounds->begin(), bounds->end(), rec.key) -
          bounds->begin());
      buckets[b].push_back(rec);
    }
    std::vector<Bytes> out(nreduce);
    for (std::size_t r = 0; r < nreduce; ++r) out[r] = to_bytes(buckets[r]);
    return out;
  };
  StageSpec reduce;
  reduce.name = "ts-sort";
  reduce.ntasks = nreduce;
  reduce.parents = {0};
  reduce.run = [](std::size_t, const std::vector<std::vector<Bytes>>& inputs) {
    std::vector<algos::TeraRecord> recs;
    for (const auto& block : inputs[0]) {
      auto part = from_bytes<std::vector<algos::TeraRecord>>(block);
      recs.insert(recs.end(), part.begin(), part.end());
    }
    std::sort(recs.begin(), recs.end(), tera_less);
    return std::vector<Bytes>{to_bytes(recs)};
  };
  job.stages = {std::move(map), std::move(reduce)};
  return job;
}

/// Reduce outputs concatenated in task order = the globally sorted dataset.
inline std::vector<algos::TeraRecord> terasort_collect(const JobResult& res) {
  std::vector<algos::TeraRecord> recs;
  for (const auto& blocks : res.output) {
    for (const auto& block : blocks) {
      auto part = from_bytes<std::vector<algos::TeraRecord>>(block);
      recs.insert(recs.end(), part.begin(), part.end());
    }
  }
  return recs;
}

using JoinRow = std::pair<std::uint64_t, std::uint64_t>;

/// Three-stage broadcast hash join, the flow bench/test workload. Stage 0
/// (build) generates `nbuild` rows with unique keys [0, nbuild) and
/// REPLICATES its full row set to every child (StageSpec::broadcast — the
/// push transport moves it as one multicast stream per task, the pull
/// transport fetches ntasks copies). Stage 1 (probe) generates `nprobe`
/// rows with keys drawn from [0, nbuild) and hash-partitions them. Stage 2
/// joins its probe partition against the replicated build side; every probe
/// row matches exactly one build row, so the result has `nprobe` rows
/// regardless of transport. `build_sim_bytes` / `probe_sim_bytes` override
/// the simulated per-block shuffle volume (0 = real serialized size).
inline JobSpec broadcast_join_job(std::uint64_t nbuild, std::uint64_t nprobe,
                                  std::size_t ntasks, std::uint64_t seed,
                                  std::uint64_t build_sim_bytes = 0,
                                  std::uint64_t probe_sim_bytes = 0) {
  JobSpec job;
  job.name = "broadcast-join";
  StageSpec build;
  build.name = "bj-build";
  build.ntasks = ntasks;
  build.broadcast = true;
  build.input_bytes_per_task = std::max<std::uint64_t>(1, nbuild * 16 / ntasks);
  build.run = [nbuild, ntasks, seed](std::size_t task,
                                     const std::vector<std::vector<Bytes>>&) {
    std::vector<JoinRow> mine;
    for (std::uint64_t j = task; j < nbuild; j += ntasks) {
      std::uint64_t s = seed ^ (j * 0x9e3779b97f4a7c15ULL);
      mine.emplace_back(j, splitmix64(s));
    }
    return std::vector<Bytes>(ntasks, to_bytes(mine));
  };
  if (build_sim_bytes != 0) {
    build.sim_out_bytes = [build_sim_bytes](std::size_t, std::size_t) {
      return build_sim_bytes;
    };
  }
  StageSpec probe;
  probe.name = "bj-probe";
  probe.ntasks = ntasks;
  probe.input_bytes_per_task = std::max<std::uint64_t>(1, nprobe * 16 / ntasks);
  probe.run = [nbuild, nprobe, ntasks, seed](
                  std::size_t task, const std::vector<std::vector<Bytes>>&) {
    std::vector<std::vector<JoinRow>> parts(ntasks);
    for (std::uint64_t j = task; j < nprobe; j += ntasks) {
      std::uint64_t s = (seed + 1) ^ (j * 0x9e3779b97f4a7c15ULL);
      const std::uint64_t key = splitmix64(s) % nbuild;
      parts[hash_u64(key) % ntasks].emplace_back(key, splitmix64(s));
    }
    std::vector<Bytes> out(ntasks);
    for (std::size_t c = 0; c < ntasks; ++c) out[c] = to_bytes(parts[c]);
    return out;
  };
  if (probe_sim_bytes != 0) {
    probe.sim_out_bytes = [probe_sim_bytes](std::size_t, std::size_t) {
      return probe_sim_bytes;
    };
  }
  StageSpec join;
  join.name = "bj-join";
  join.ntasks = ntasks;
  join.parents = {0, 1};
  join.run = [](std::size_t, const std::vector<std::vector<Bytes>>& inputs) {
    // inputs[0] holds each build task's FULL row set: the union across
    // parent tasks is the whole build side, exactly once.
    std::map<std::uint64_t, std::uint64_t> build_by_key;
    for (const Bytes& b : inputs[0]) {
      for (auto& [k, v] : from_bytes<std::vector<JoinRow>>(b)) build_by_key[k] = v;
    }
    std::vector<JoinRow> out;
    for (const Bytes& b : inputs[1]) {
      for (auto& [k, v] : from_bytes<std::vector<JoinRow>>(b)) {
        out.emplace_back(k, v ^ build_by_key.at(k));
      }
    }
    return std::vector<Bytes>{to_bytes(out)};
  };
  job.stages = {std::move(build), std::move(probe), std::move(join)};
  return job;
}

/// Join blocks merged and canonically sorted, for cross-transport parity.
inline std::vector<JoinRow> broadcast_join_collect(const JobResult& res) {
  std::vector<JoinRow> rows;
  for (const auto& blocks : res.output) {
    for (const Bytes& b : blocks) {
      auto part = from_bytes<std::vector<JoinRow>>(b);
      rows.insert(rows.end(), part.begin(), part.end());
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Linear chain of `nstages` all-to-all shuffles with `ntasks` tasks each.
/// Real blocks are 8-byte lineage fingerprints (hash of everything consumed,
/// so recomputation correctness is content-checkable); the simulated shuffle
/// volume is `block_sim_bytes` per block. `checkpoint_every` > 0 checkpoints
/// every k-th stage. The final stage emits one block per task.
inline JobSpec synthetic_job(std::size_t nstages, std::size_t ntasks,
                             std::uint64_t block_sim_bytes,
                             std::size_t checkpoint_every = 0,
                             std::uint64_t input_bytes_per_task = 0,
                             std::string input_file = {}) {
  JobSpec job;
  job.name = "synthetic";
  for (std::size_t s = 0; s < nstages; ++s) {
    StageSpec st;
    st.name = "s" + std::to_string(s);
    st.ntasks = ntasks;
    if (s == 0) {
      st.input_bytes_per_task =
          input_bytes_per_task ? input_bytes_per_task : block_sim_bytes;
      st.input_file = input_file;
    } else {
      st.parents = {s - 1};
    }
    st.checkpoint = checkpoint_every > 0 && s + 1 < nstages &&
                    (s + 1) % checkpoint_every == 0;
    const bool last = s + 1 == nstages;
    st.run = [s, ntasks, last](std::size_t task,
                               const std::vector<std::vector<Bytes>>& inputs) {
      std::uint64_t acc = hash_combine(hash_u64(s), hash_u64(task));
      for (const auto& parent : inputs) {
        for (const auto& block : parent) {
          acc = hash_combine(acc, from_bytes<std::uint64_t>(block));
        }
      }
      const std::size_t nout = last ? 1 : ntasks;
      std::vector<Bytes> out(nout);
      for (std::size_t c = 0; c < nout; ++c) {
        out[c] = to_bytes(hash_combine(acc, hash_u64(c)));
      }
      return out;
    };
    st.sim_out_bytes = [block_sim_bytes](std::size_t, std::size_t) {
      return block_sim_bytes;
    };
    job.stages.push_back(std::move(st));
  }
  return job;
}

}  // namespace hpbdc::dist
