#include "dist/runtime.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace hpbdc::dist {

using sim::SimTime;

namespace {

// Sub-seed derivation: every stochastic component of the runtime draws from
// an Rng seeded off DistConfig::seed through here, so one seed pins the
// whole run (the determinism contract tested in dist_test.cpp).
std::uint64_t sub_seed(std::uint64_t master, std::uint64_t salt) {
  std::uint64_t s = master ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

}  // namespace

DistRuntime::DistRuntime(sim::Comm& comm, DistConfig cfg, sim::Dfs* dfs)
    : comm_(comm),
      cfg_(cfg),
      dfs_(dfs),
      tag_exec_(comm.next_tag()),
      tag_drv_(comm.next_tag()),
      jitter_rng_(sub_seed(cfg.seed, 1)),
      failure_rng_(sub_seed(cfg.seed, 2)),
      late_(cfg.speculation_threshold, 0.0) {
  const std::size_t n = comm.nranks();
  if (cfg_.driver >= n) throw std::invalid_argument("DistRuntime: bad driver rank");
  if (cfg_.slots_per_node == 0) {
    throw std::invalid_argument("DistRuntime: zero slots per node");
  }
  execs_.assign(n, ExecState(cfg_));
  // Straggler assignment: a seeded random subset runs degraded, mirroring
  // cluster::SpeculationConfig.
  if (cfg_.straggler_fraction > 0) {
    Rng srng(sub_seed(cfg_.seed, 3));
    std::vector<std::size_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = i;
    srng.shuffle(ids);
    const auto k = static_cast<std::size_t>(cfg_.straggler_fraction *
                                            static_cast<double>(n));
    for (std::size_t i = 0; i < k; ++i) execs_[ids[i]].speed = cfg_.straggler_speed;
  }
  for (std::size_t node = 0; node < n; ++node) {
    comm_.set_handler(node, tag_exec_, [this, node](std::size_t, const Bytes& p) {
      on_exec_msg(node, p);
    });
  }
  comm_.set_handler(cfg_.driver, tag_drv_,
                    [this](std::size_t src, const Bytes& p) {
                      BufReader r(p);
                      const auto type = r.read_pod<std::uint8_t>();
                      if (type == kHeartbeat) {
                        on_heartbeat(src);
                        return;
                      }
                      const auto id = r.read_pod<std::uint64_t>();
                      if (!active_ || !attempts_.contains(id)) {
                        // A task event straggling in after the job finished
                        // (or from a forgotten epoch) must not mutate state —
                        // the chaos oracle checks this counter is the only
                        // thing such events move.
                        stats_.stale_events_ignored++;
                        count(m_stale_events_);
                        return;
                      }
                      switch (type) {
                        case kTaskDone: on_task_done(id); break;
                        case kTaskFailed: on_attempt_failed(id, true); break;
                        case kFetchFailed: {
                          const auto ps = r.read_pod<std::uint64_t>();
                          const auto pt = r.read_pod<std::uint64_t>();
                          on_fetch_failed(id, ps, pt);
                          break;
                        }
                        default: break;
                      }
                    });
  // Transports are built last so tag allocation order (exec, driver, flow)
  // is fixed; the active one is selected per job in submit().
  pull_ = std::make_unique<PullTransport>(make_transport_env());
  push_ = std::make_unique<PushTransport>(make_transport_env());
  transport_ = pull_.get();
}

ShuffleTransport::Env DistRuntime::make_transport_env() {
  ShuffleTransport::Env env;
  env.comm = &comm_;
  env.driver = cfg_.driver;
  env.node_alive = [this](std::size_t n) { return execs_[n].alive; };
  env.disk = [this](std::size_t n) -> sim::Disk& { return execs_[n].disk; };
  env.attempt_dead = [this](std::uint64_t id) { return attempt_dead(id); };
  env.parent_output = [this](std::size_t ps, std::size_t pt) {
    const TaskState& t = tasks_[ps][pt];
    return ShuffleTransport::Env::ParentOutput{t.status == TStatus::Done,
                                               t.output_node, &t.out_sim_sizes};
  };
  env.stage_checkpointed = [this](std::size_t ps) { return stages_[ps].checkpointed; };
  env.ckpt_replica = [this](std::size_t ps, std::size_t near) -> std::size_t {
    if (!stages_[ps].checkpointed || !ckpt_data_.contains(ps) || dfs_ == nullptr) {
      return kNone;
    }
    std::size_t best = kNone, best_hops = ~std::size_t{0};
    for (auto r : dfs_->block_locations(ckpt_file(ps), 0)) {
      if (!execs_[r].alive) continue;
      const std::size_t h = comm_.network().hops(near, r);
      if (h < best_hops) {
        best_hops = h;
        best = r;
      }
    }
    return best;
  };
  env.ckpt_block = [this](std::size_t ps, std::size_t pt, std::size_t child) {
    return ckpt_data_.at(ps).at(pt).at(child);
  };
  env.count_fetch = [this](std::uint64_t bytes, bool local, bool from_ckpt) {
    stats_.shuffle_fetches++;
    stats_.shuffle_bytes += bytes;
    count(m_shuffle_bytes_, bytes);
    if (local) {
      stats_.shuffle_local_fetches++;
      stats_.shuffle_bytes_local += bytes;
      count(m_shuffle_local_, bytes);
    } else {
      stats_.shuffle_bytes_remote += bytes;
      count(m_shuffle_remote_, bytes);
    }
    if (from_ckpt) {
      stats_.checkpoint_restores++;
      count(m_ckpt_restores_);
    }
  };
  env.count_fetch_failure = [this] { stats_.fetch_failures++; };
  return env;
}

void DistRuntime::bind_metrics(obs::MetricsRegistry& reg) {
  metrics_ = &reg;
  m_launched_ = &reg.counter("dist.tasks_launched");
  m_retries_ = &reg.counter("dist.task_retries");
  m_recomputed_ = &reg.counter("dist.tasks_recomputed");
  m_shuffle_bytes_ = &reg.counter("dist.shuffle_bytes");
  m_shuffle_local_ = &reg.counter("dist.shuffle_bytes_local");
  m_shuffle_remote_ = &reg.counter("dist.shuffle_bytes_remote");
  m_locality_hits_ = &reg.counter("dist.locality_hits");
  m_locality_misses_ = &reg.counter("dist.locality_misses");
  m_spec_launched_ = &reg.counter("dist.speculative_launched");
  m_ckpt_restores_ = &reg.counter("dist.checkpoint_restores");
  m_stale_events_ = &reg.counter("dist.stale_events_ignored");
  g_live_execs_ = &reg.gauge("dist.executors_live");
  g_live_execs_->set(static_cast<std::int64_t>(live_executors()));
  g_max_failures_ = &reg.gauge("dist.max_failures_one_task");
  g_max_failures_->set(static_cast<std::int64_t>(stats_.max_failures_one_task));
  push_->bind_metrics(reg);  // dist.flow.* fabric counters
}

void DistRuntime::bind_trace(obs::TraceSession& session) { trace_ = &session; }

void DistRuntime::trace_span(const std::string& name, const std::string& cat,
                             SimTime start, SimTime end, std::uint32_t tid,
                             std::uint64_t items) {
  if (trace_ == nullptr) return;
  trace_->record(obs::TraceEvent{name, cat,
                                 static_cast<std::uint64_t>(start * 1e6),
                                 static_cast<std::uint64_t>((end - start) * 1e6),
                                 tid, items, items > 0});
}

std::size_t DistRuntime::live_executors() const {
  std::size_t n = 0;
  for (const auto& e : execs_) n += (e.alive && !e.dead_to_driver) ? 1 : 0;
  return n;
}

std::string DistRuntime::ckpt_file(std::size_t stage) const {
  return "/.ckpt/" + job_.name + "." + std::to_string(epoch_) + "/stage" +
         std::to_string(stage);
}

// ---------------------------------------------------------------------------
// Submission and the scheduling loop (driver side)
// ---------------------------------------------------------------------------

void DistRuntime::submit(JobSpec job, JobDoneFn done) {
  submit(std::move(job), RuntimeOptions{}, std::move(done));
}

void DistRuntime::submit(JobSpec job, const RuntimeOptions& opts, JobDoneFn done) {
  if (active_) throw std::logic_error("DistRuntime: a job is already running");
  if (job.stages.empty()) throw std::invalid_argument("DistRuntime: empty job");
  for (std::size_t s = 0; s < job.stages.size(); ++s) {
    const auto& spec = job.stages[s];
    if (spec.ntasks == 0) throw std::invalid_argument("DistRuntime: zero tasks");
    if (!spec.run) throw std::invalid_argument("DistRuntime: stage without run fn");
    for (auto p : spec.parents) {
      if (p >= s) throw std::invalid_argument("DistRuntime: stages not topo-ordered");
    }
  }
  ++epoch_;
  active_ = true;
  opts_ = opts;
  job_ = std::move(job);
  done_cb_ = std::move(done);
  submit_time_ = sim().now();
  stages_.assign(job_.stages.size(), StageState{});
  tasks_.clear();
  for (const auto& spec : job_.stages) {
    tasks_.emplace_back(spec.ntasks, TaskState{});
  }
  attempts_.clear();
  ckpt_data_.clear();
  late_ = cluster::LatePolicy(cfg_.speculation_threshold, 0.0);
  result_ = JobResult{};
  result_.output.assign(job_.stages.back().ntasks, {});
  result_received_ = 0;
  for (auto& e : execs_) {
    e.busy = 0;
    e.last_heartbeat = submit_time_;
  }
  // Fence BOTH transports into the new epoch (the inactive one must drop its
  // previous job's stores/streams too), then select the active one.
  pull_->begin_job(&job_, epoch_, opts_);
  push_->begin_job(&job_, epoch_, opts_);
  transport_ = opts_.transport == TransportKind::kPush
                   ? static_cast<ShuffleTransport*>(push_.get())
                   : static_cast<ShuffleTransport*>(pull_.get());
  const std::uint64_t epoch = epoch_;
  for (std::size_t n = 0; n < execs_.size(); ++n) {
    if (n != cfg_.driver && execs_[n].alive) heartbeat_loop(n);
    if (n != cfg_.driver && cfg_.node_mtbf > 0) schedule_next_failure(n);
  }
  sim().schedule_after(cfg_.heartbeat_interval, [this, epoch] {
    if (epoch_ == epoch) monitor_tick();
  });
  schedule();
}

bool DistRuntime::stage_available(std::size_t s) const {
  for (auto p : job_.stages[s].parents) {
    if (stages_[p].done != job_.stages[p].ntasks && !stages_[p].checkpointed) {
      return false;
    }
  }
  return true;
}

bool DistRuntime::stage_retired(std::size_t s) const {
  // Outputs of a retired stage can never be needed again: the final stage's
  // results live at the driver the moment each task completes, a durable
  // checkpoint substitutes for recompute, and otherwise every consumer (and
  // transitively *its* consumers) must be done.
  if (s + 1 == job_.stages.size()) return true;
  if (stages_[s].checkpointed) return true;
  for (std::size_t c = s + 1; c < job_.stages.size(); ++c) {
    const auto& ps = job_.stages[c].parents;
    if (std::find(ps.begin(), ps.end(), s) == ps.end()) continue;
    if (stages_[c].done != job_.stages[c].ntasks || !stage_retired(c)) return false;
  }
  return true;
}

void DistRuntime::schedule() {
  if (!active_) return;
  // Free-slot pool; refreshed lazily as launches consume slots.
  auto pick_node = [this](std::size_t stage, std::size_t task) {
    const StageSpec& spec = job_.stages[stage];
    std::size_t best = kNone, best_free = 0;
    if (!spec.input_file.empty() && dfs_ != nullptr && dfs_->exists(spec.input_file) &&
        task < dfs_->block_count(spec.input_file)) {
      for (auto r : dfs_->block_locations(spec.input_file, task)) {
        auto& e = execs_[r];
        if (e.alive && !e.dead_to_driver && !e.draining &&
            e.busy < cfg_.slots_per_node) {
          stats_.locality_hits++;
          count(m_locality_hits_);
          return r;
        }
      }
      stats_.locality_misses++;
      count(m_locality_misses_);
    }
    // Transport placement hint (push: the flow target already buffering this
    // task's input). The pull transport never hints, so its scheduling is
    // untouched.
    const std::size_t pref = transport_->preferred_node(stage, task);
    if (pref != kNone) {
      auto& e = execs_[pref];
      if (e.alive && !e.dead_to_driver && !e.draining &&
          e.busy < cfg_.slots_per_node) {
        return pref;
      }
    }
    for (std::size_t n = 0; n < execs_.size(); ++n) {
      auto& e = execs_[n];
      if (!e.alive || e.dead_to_driver || e.draining ||
          e.busy >= cfg_.slots_per_node) {
        continue;
      }
      const std::size_t free = cfg_.slots_per_node - e.busy;
      if (free > best_free) {
        best_free = free;
        best = n;
      }
    }
    return best;
  };

  for (std::size_t s = 0; s < job_.stages.size(); ++s) {
    if (stages_[s].done == job_.stages[s].ntasks) continue;
    if (!stage_available(s)) continue;
    for (std::size_t t = 0; t < job_.stages[s].ntasks; ++t) {
      TaskState& task = tasks_[s][t];
      if (task.status != TStatus::Pending) continue;
      // Genuine task failures are bounded by max_task_attempts; total launches
      // (including benign churn from node deaths and lost shuffle outputs) get
      // a generous hard cap so a pathological cluster cannot loop forever.
      if (task.failures >= cfg_.max_task_attempts ||
          task.attempts >= cfg_.max_task_attempts * 25) {
        finish(false);
        return;
      }
      const std::size_t node = pick_node(s, t);
      if (node == kNone) return;  // cluster saturated; resume on next event
      launch(s, t, node, /*spec=*/false);
    }
  }
  speculate();
}

void DistRuntime::launch(std::size_t stage, std::size_t task, std::size_t node,
                         bool spec) {
  TaskState& ts = tasks_[stage][task];
  if (stages_[stage].start < 0) stages_[stage].start = sim().now();
  const std::uint64_t id = next_attempt_id_++;
  attempts_[id] = Attempt{stage, task, node, sim().now(), spec, false};
  ts.live_attempts.push_back(id);
  ts.attempts++;
  ts.status = TStatus::Running;
  execs_[node].busy++;
  stats_.tasks_launched++;
  count(m_launched_);
  if (spec) {
    stats_.speculative_launched++;
    count(m_spec_launched_);
  } else if (ts.ever_done) {
    stats_.tasks_recomputed++;
    count(m_recomputed_);
  }
  BufWriter w;
  w.write_pod<std::uint8_t>(kLaunch);
  w.write_pod<std::uint64_t>(id);
  send_to_exec(node, w.take());
}

void DistRuntime::speculate() {
  if (!cfg_.speculate || !active_) return;
  for (std::size_t s = 0; s < job_.stages.size(); ++s) {
    // A lineage rollback can leave a child task Running (on a doomed
    // attempt) while its parent recomputes; a backup launched now would
    // only fail its fetches instantly, so wait until inputs exist again.
    if (!stage_available(s)) continue;
    for (std::size_t t = 0; t < job_.stages[s].ntasks; ++t) {
      TaskState& ts = tasks_[s][t];
      if (ts.status != TStatus::Running || ts.live_attempts.size() != 1) continue;
      const Attempt& a = attempts_.at(ts.live_attempts.front());
      if (a.speculative) continue;
      // Speculation bypasses schedule()'s attempt cap (the task is Running,
      // not Pending), so bound it here too: a task whose backups keep dying
      // would otherwise relaunch them unboundedly while the original hangs.
      if (ts.attempts >= cfg_.max_task_attempts * 25) continue;
      if (!late_.exceeds(sim().now() - a.launched)) continue;
      // Backup on the least-loaded free node other than the original's.
      std::size_t best = kNone, best_free = 0;
      for (std::size_t n = 0; n < execs_.size(); ++n) {
        auto& e = execs_[n];
        if (n == a.node || !e.alive || e.dead_to_driver || e.draining) continue;
        if (e.busy >= cfg_.slots_per_node) continue;
        const std::size_t free = cfg_.slots_per_node - e.busy;
        if (free > best_free) {
          best_free = free;
          best = n;
        }
      }
      if (best == kNone) return;
      launch(s, t, best, /*spec=*/true);
    }
  }
}

// ---------------------------------------------------------------------------
// Message plumbing
// ---------------------------------------------------------------------------

void DistRuntime::send_to_exec(std::size_t node, Bytes payload) {
  comm_.send_sized(cfg_.driver, node, tag_exec_, cfg_.rpc_bytes, std::move(payload));
}

void DistRuntime::send_to_driver(std::size_t node, std::uint64_t body,
                                 Bytes payload) {
  comm_.send_sized(node, cfg_.driver, tag_drv_, body, std::move(payload));
}

void DistRuntime::on_exec_msg(std::size_t node, const Bytes& payload) {
  BufReader r(payload);
  const auto type = r.read_pod<std::uint8_t>();
  const auto id = r.read_pod<std::uint64_t>();
  auto it = attempts_.find(id);
  if (it == attempts_.end()) return;
  switch (type) {
    case kLaunch:
      exec_start(id);
      break;
    case kCancel:
      it->second.cancelled = true;
      break;
    default:
      break;
  }
  (void)node;
}

bool DistRuntime::attempt_dead(std::uint64_t attempt_id) const {
  auto it = attempts_.find(attempt_id);
  if (!active_ || it == attempts_.end() || it->second.cancelled) return true;
  return !execs_[it->second.node].alive;
}

// ---------------------------------------------------------------------------
// Executor side: fetch -> compute -> register output -> report
// ---------------------------------------------------------------------------

void DistRuntime::exec_start(std::uint64_t attempt_id) {
  if (attempt_dead(attempt_id)) return;
  const Attempt a = attempts_.at(attempt_id);
  const StageSpec& spec = job_.stages[a.stage];
  sim::Network& net = comm_.network();

  // Joint completion state: the transport's collect() is one pending unit,
  // the stage-external input read (if any) another. Whoever finishes last
  // triggers compute with the summed input volume.
  struct JoinCtx {
    std::size_t pending = 0;
    bool failed = false;
    std::uint64_t bytes_in = 0;
    std::shared_ptr<std::vector<std::vector<Bytes>>> inputs;
  };
  auto ctx = std::make_shared<JoinCtx>();
  ctx->inputs = std::make_shared<std::vector<std::vector<Bytes>>>();

  // Stage-external input (DFS block or local scan), charged like a fetch.
  // Resolved before collect() so an unreadable input fails the attempt
  // without scheduling any shuffle traffic.
  std::size_t input_src = a.node;
  const bool have_input = spec.input_bytes_per_task > 0;
  if (have_input && !spec.input_file.empty() && dfs_ != nullptr &&
      dfs_->exists(spec.input_file) &&
      a.task < dfs_->block_count(spec.input_file)) {
    std::size_t best = kNone, best_hops = ~std::size_t{0};
    for (auto r : dfs_->block_locations(spec.input_file, a.task)) {
      if (!execs_[r].alive) continue;
      const std::size_t h = net.hops(a.node, r);
      if (h < best_hops) {
        best_hops = h;
        best = r;
      }
    }
    if (best == kNone) {
      // No live replica of the input block: the attempt fails outright.
      BufWriter w;
      w.write_pod<std::uint8_t>(kTaskFailed);
      w.write_pod<std::uint64_t>(attempt_id);
      send_to_driver(a.node, cfg_.rpc_bytes, w.take());
      return;
    }
    input_src = best;
  }

  ctx->pending = 1 + (have_input ? 1 : 0);

  ShuffleTransport::CollectRequest req;
  req.attempt_id = attempt_id;
  req.node = a.node;
  req.stage = a.stage;
  req.task = a.task;
  req.inputs = ctx->inputs;
  req.on_ready = [this, attempt_id, ctx](std::uint64_t shuffle_bytes) {
    if (attempt_dead(attempt_id) || ctx->failed) return;
    ctx->bytes_in += shuffle_bytes;
    if (--ctx->pending == 0) {
      exec_compute(attempt_id, ctx->inputs, ctx->bytes_in);
    }
  };
  req.on_missing = [this, attempt_id, ctx](std::size_t ps, std::size_t pt) {
    if (ctx->failed) return;
    ctx->failed = true;
    const Attempt& a2 = attempts_.at(attempt_id);
    BufWriter w;
    w.write_pod<std::uint8_t>(kFetchFailed);
    w.write_pod<std::uint64_t>(attempt_id);
    w.write_pod<std::uint64_t>(static_cast<std::uint64_t>(ps));
    w.write_pod<std::uint64_t>(static_cast<std::uint64_t>(pt));
    send_to_driver(a2.node, cfg_.rpc_bytes, w.take());
  };
  // May complete synchronously (no shuffle parents) or fail synchronously
  // (a parent block with no live source) — check before starting the input.
  transport_->collect(std::move(req));
  if (ctx->failed) return;

  if (have_input) {
    execs_[input_src].disk.access(
        sim(), spec.input_bytes_per_task,
        [this, input_src, attempt_id, ctx, bytes = spec.input_bytes_per_task] {
          if (attempt_dead(attempt_id) || ctx->failed) return;
          comm_.network().send(input_src, attempts_.at(attempt_id).node, bytes,
                               [this, attempt_id, ctx, bytes] {
                                 if (attempt_dead(attempt_id) || ctx->failed) return;
                                 ctx->bytes_in += bytes;
                                 if (--ctx->pending == 0) {
                                   exec_compute(attempt_id, ctx->inputs,
                                                ctx->bytes_in);
                                 }
                               });
        });
  }
}

void DistRuntime::exec_compute(
    std::uint64_t attempt_id,
    std::shared_ptr<std::vector<std::vector<Bytes>>> inputs,
    std::uint64_t bytes_in) {
  if (attempt_dead(attempt_id)) return;
  const Attempt& a = attempts_.at(attempt_id);
  ExecState& ex = execs_[a.node];
  const double delay =
      cfg_.task_overhead +
      static_cast<double>(bytes_in) / (cfg_.compute_bps * ex.speed);
  sim().schedule_after(delay, [this, attempt_id, inputs] {
    if (attempt_dead(attempt_id)) return;
    const Attempt& a2 = attempts_.at(attempt_id);
    const StageSpec& spec = job_.stages[a2.stage];
    BlockSet bs;
    bs.blocks = spec.run(a2.task, *inputs);
    bs.sim_sizes.reserve(bs.blocks.size());
    for (std::size_t c = 0; c < bs.blocks.size(); ++c) {
      const std::uint64_t sz = spec.sim_out_bytes
                                   ? spec.sim_out_bytes(a2.task, c)
                                   : bs.blocks[c].size();
      bs.sim_sizes.push_back(sz);
      bs.total_sim += sz;
    }
    const std::uint64_t total = bs.total_sim;
    const bool final_stage = a2.stage + 1 == job_.stages.size();
    // Hand the output to the transport (registry record + local-disk spill,
    // plus flow streaming under push); it announces completion afterwards.
    transport_->publish(
        attempt_id, a2.node, a2.stage, a2.task, std::move(bs),
        [this, attempt_id, total, final_stage] {
          if (attempt_dead(attempt_id)) return;
          const Attempt& a3 = attempts_.at(attempt_id);
          BufWriter w;
          w.write_pod<std::uint8_t>(kTaskDone);
          w.write_pod<std::uint64_t>(attempt_id);
          // The result stage ships its blocks to the driver in the done message.
          send_to_driver(a3.node, final_stage ? total : cfg_.rpc_bytes, w.take());
        });
  });
}

// ---------------------------------------------------------------------------
// Driver-side completion, failure, and recovery handling
// ---------------------------------------------------------------------------

void DistRuntime::on_task_done(std::uint64_t attempt_id) {
  if (!active_) return;
  Attempt& a = attempts_.at(attempt_id);
  if (a.cancelled) return;
  ExecState& ex = execs_[a.node];
  if (ex.dead_to_driver) return;  // results from declared-dead executors are dropped
  TaskState& task = tasks_[a.stage][a.task];
  const BlockSet* pub = transport_->find(a.node, a.stage, a.task);
  if (task.status != TStatus::Done && (!ex.alive || pub == nullptr)) {
    // The node died while the done-message was in flight: requeue, uncharged.
    on_attempt_failed(attempt_id, false);
    return;
  }
  auto& live = task.live_attempts;
  live.erase(std::remove(live.begin(), live.end(), attempt_id), live.end());
  a.cancelled = true;
  if (ex.busy > 0) ex.busy--;
  if (task.status == TStatus::Done) return;  // lost a speculative race

  task.status = TStatus::Done;
  task.ever_done = true;
  task.output_node = a.node;
  task.out_sim_sizes = pub->sim_sizes;
  task.total_out_sim = pub->total_sim;
  stages_[a.stage].done++;
  stats_.tasks_completed++;
  late_.record(sim().now() - a.launched);
  if (a.speculative) stats_.speculative_won++;
  trace_span(job_.stages[a.stage].name + ".t" + std::to_string(a.task) +
                 (a.speculative ? "*" : ""),
             "task", a.launched, sim().now(),
             static_cast<std::uint32_t>(a.node) + 1, task.total_out_sim);

  // Cancel losing sibling attempts, freeing their slots.
  for (auto oid : std::vector<std::uint64_t>(live)) {
    Attempt& o = attempts_.at(oid);
    o.cancelled = true;
    if (execs_[o.node].busy > 0) execs_[o.node].busy--;
    BufWriter w;
    w.write_pod<std::uint8_t>(kCancel);
    w.write_pod<std::uint64_t>(oid);
    send_to_exec(o.node, w.take());
  }
  live.clear();

  const bool final_stage = a.stage + 1 == job_.stages.size();
  if (final_stage) {
    result_.output[a.task] = pub->blocks;
    result_received_++;
  }
  if (stages_[a.stage].done == job_.stages[a.stage].ntasks) {
    stages_[a.stage].end = sim().now();
    trace_span(job_.stages[a.stage].name, "stage", stages_[a.stage].start,
               sim().now(), 0, 0);
    maybe_checkpoint(a.stage);
  }
  if (final_stage && result_received_ == job_.stages.back().ntasks) {
    finish(true);
    return;
  }
  schedule();
}

void DistRuntime::on_attempt_failed(std::uint64_t attempt_id, bool charge_budget) {
  if (!active_) return;
  Attempt& a = attempts_.at(attempt_id);
  if (a.cancelled) return;
  a.cancelled = true;
  auto& live = tasks_[a.stage][a.task].live_attempts;
  live.erase(std::remove(live.begin(), live.end(), attempt_id), live.end());
  if (execs_[a.node].busy > 0 && !execs_[a.node].dead_to_driver) execs_[a.node].busy--;
  TaskState& task = tasks_[a.stage][a.task];
  if (task.status == TStatus::Running && live.empty()) {
    task.status = TStatus::Pending;
  }
  if (charge_budget) {
    task.failures++;
    if (task.failures > stats_.max_failures_one_task) {
      stats_.max_failures_one_task = task.failures;
      if (g_max_failures_ != nullptr) {
        g_max_failures_->set(static_cast<std::int64_t>(task.failures));
      }
    }
  }
  stats_.task_retries++;
  count(m_retries_);
  schedule();
}

void DistRuntime::on_fetch_failed(std::uint64_t attempt_id, std::size_t pstage,
                                  std::size_t ptask) {
  stats_.fetch_failures++;
  // Lineage fault: the parent's map output is gone. Roll the parent task
  // back to Pending (unless a checkpoint can stand in), then retry the
  // fetching task; schedule() recomputes ancestors in topological order.
  if (!test_no_lineage_ && pstage < tasks_.size() && ptask < tasks_[pstage].size()) {
    TaskState& parent = tasks_[pstage][ptask];
    const bool source_gone =
        parent.output_node == kNone || !execs_[parent.output_node].alive ||
        transport_->find(parent.output_node, pstage, ptask) == nullptr;
    // A checkpoint normally stands in for the lost output — but only while
    // it is actually servable: some live replica (replicated) or >= k live
    // shards (erasure coded; a degraded read still counts). Otherwise drop
    // the checkpoint flag and recompute through lineage; leaving the flag up
    // would keep the child's stage "available" and spin it against the
    // unreadable checkpoint at RPC speed until its attempt budget dies.
    if (source_gone && stages_[pstage].checkpointed) {
      const bool servable = dfs_ != nullptr && ckpt_data_.contains(pstage) &&
                            dfs_->readable(ckpt_file(pstage));
      if (!servable) stages_[pstage].checkpointed = false;
    }
    if (parent.status == TStatus::Done && source_gone &&
        !stages_[pstage].checkpointed) {
      parent.status = TStatus::Pending;
      parent.output_node = kNone;
      stages_[pstage].done--;
    }
  }
  on_attempt_failed(attempt_id, false);
}

void DistRuntime::on_heartbeat(std::size_t node) {
  if (!active_ || node >= execs_.size()) return;
  ExecState& ex = execs_[node];
  stats_.heartbeats_received++;
  ex.last_heartbeat = sim().now();
  if (ex.dead_to_driver && ex.alive) {
    // A recovered node (or a false positive) re-registers as a fresh
    // executor; its pre-declaration outputs were already invalidated.
    ex.dead_to_driver = false;
    ex.busy = 0;
    if (g_live_execs_ != nullptr) {
      g_live_execs_->set(static_cast<std::int64_t>(live_executors()));
    }
    schedule();
  }
}

void DistRuntime::invalidate_outputs_on(std::size_t node) {
  if (test_no_lineage_) return;  // seeded chaos bug: lost outputs stay "done"
  for (std::size_t s = 0; s < job_.stages.size(); ++s) {
    if (stage_retired(s)) continue;
    for (std::size_t t = 0; t < job_.stages[s].ntasks; ++t) {
      TaskState& task = tasks_[s][t];
      if (task.status == TStatus::Done && task.output_node == node) {
        task.status = TStatus::Pending;
        task.output_node = kNone;
        stages_[s].done--;
      }
    }
  }
}

void DistRuntime::declare_dead(std::size_t node) {
  ExecState& ex = execs_[node];
  if (ex.dead_to_driver) return;
  ex.dead_to_driver = true;
  ex.busy = 0;
  stats_.executors_declared_dead++;
  if (g_live_execs_ != nullptr) {
    g_live_execs_->set(static_cast<std::int64_t>(live_executors()));
  }
  // Fail this node's running attempts and roll back its shuffle outputs
  // (lineage: ancestors whose outputs are still needed go back to Pending).
  for (std::size_t s = 0; s < job_.stages.size(); ++s) {
    for (std::size_t t = 0; t < job_.stages[s].ntasks; ++t) {
      TaskState& task = tasks_[s][t];
      for (auto id : std::vector<std::uint64_t>(task.live_attempts)) {
        if (attempts_.at(id).node == node) on_attempt_failed(id, false);
        if (!active_) return;
      }
    }
  }
  invalidate_outputs_on(node);
  schedule();
}

void DistRuntime::maybe_checkpoint(std::size_t s) {
  const StageSpec& spec = job_.stages[s];
  if (!spec.checkpoint || dfs_ == nullptr || s + 1 == job_.stages.size()) return;
  if (stages_[s].checkpointed || ckpt_data_.contains(s)) return;
  std::uint64_t total = 0;
  std::vector<std::vector<Bytes>> data(spec.ntasks);
  for (std::size_t t = 0; t < spec.ntasks; ++t) {
    const TaskState& task = tasks_[s][t];
    if (task.output_node == kNone) return;
    const BlockSet* bsp = transport_->find(task.output_node, s, t);
    if (bsp == nullptr) return;  // racing death
    data[t] = bsp->blocks;
    total += task.total_out_sim;
  }
  if (total == 0) return;
  ckpt_data_[s] = std::move(data);
  const std::uint64_t epoch = epoch_;
  dfs_->write(cfg_.driver, ckpt_file(s), total, opts_.checkpoint_policy,
              [this, s, epoch](bool ok) {
    if (epoch_ != epoch) return;
    if (ok) {
      stages_[s].checkpointed = true;
      stats_.checkpoints_written++;
    } else {
      ckpt_data_.erase(s);
    }
  });
}

// ---------------------------------------------------------------------------
// Heartbeats, monitoring, failure injection
// ---------------------------------------------------------------------------

void DistRuntime::heartbeat_loop(std::size_t node) {
  if (!active_ || !execs_[node].alive) return;
  BufWriter w;
  w.write_pod<std::uint8_t>(kHeartbeat);
  send_to_driver(node, cfg_.rpc_bytes, w.take());
  const double jitter = cfg_.heartbeat_jitter > 0
                            ? jitter_rng_.next_double() * cfg_.heartbeat_jitter
                            : 0.0;
  const std::uint64_t epoch = epoch_;
  sim().schedule_after(cfg_.heartbeat_interval + jitter, [this, node, epoch] {
    if (epoch_ == epoch) heartbeat_loop(node);
  });
}

void DistRuntime::monitor_tick() {
  if (!active_) return;
  const SimTime now = sim().now();
  for (std::size_t n = 0; n < execs_.size(); ++n) {
    if (n == cfg_.driver) continue;
    ExecState& ex = execs_[n];
    if (!ex.dead_to_driver && now - ex.last_heartbeat > cfg_.heartbeat_timeout) {
      declare_dead(n);
      if (!active_) return;
    }
  }
  // Hung-attempt sweep: guards liveness when control messages are lost.
  // Uncharged — a timed-out attempt is lost RPCs or congestion, not a task
  // bug; the hard launch cap in schedule() still bounds pathological churn.
  std::vector<std::uint64_t> stale;
  for (const auto& [id, a] : attempts_) {
    if (!a.cancelled && now - a.launched > cfg_.attempt_timeout) stale.push_back(id);
  }
  for (auto id : stale) {
    on_attempt_failed(id, false);
    if (!active_) return;
  }
  const std::uint64_t epoch = epoch_;
  sim().schedule_after(cfg_.heartbeat_interval, [this, epoch] {
    if (epoch_ == epoch) monitor_tick();
  });
}

void DistRuntime::schedule_next_failure(std::size_t node) {
  const double dt = failure_rng_.next_exponential(1.0 / cfg_.node_mtbf);
  const std::uint64_t epoch = epoch_;
  sim().schedule_after(dt, [this, node, epoch] {
    if (!active_ || epoch_ != epoch) return;
    if (execs_[node].alive) {
      kill_node(node);
      if (cfg_.node_downtime > 0) {
        sim().schedule_after(cfg_.node_downtime, [this, node, epoch] {
          if (!execs_[node].alive) do_recover_node(node);
          if (active_ && epoch_ == epoch) schedule_next_failure(node);
        });
        return;
      }
    }
    schedule_next_failure(node);
  });
}

void DistRuntime::kill_node(std::size_t node) {
  if (node == cfg_.driver) {
    throw std::invalid_argument("DistRuntime: the driver node is immortal");
  }
  ExecState& ex = execs_[node];
  ex.alive = false;
  ex.busy = 0;
  // transport_ is null until the first submit; a pool may fan a kill out to
  // a slot (freshly added, or simply never used) with no job history.
  if (transport_ != nullptr) {
    transport_->node_killed(node);  // published blocks + in-flight flow state
  }
  if (dfs_ != nullptr) dfs_->fail_node(node);
  // The driver only learns of the death through the heartbeat timeout.
}

void DistRuntime::do_recover_node(std::size_t node) {
  if (node == cfg_.driver) return;
  ExecState& ex = execs_[node];
  ex.alive = true;
  ex.busy = 0;
  ex.last_heartbeat = sim().now();
  if (transport_ != nullptr) transport_->node_recovered(node);  // empty memory
  if (dfs_ != nullptr) dfs_->recover_node(node);
  // dead_to_driver clears when the first heartbeat arrives (re-registration).
  if (active_) heartbeat_loop(node);
}

void DistRuntime::kill_node_at(std::size_t node, SimTime t) {
  if (node == cfg_.driver) {
    throw std::invalid_argument("DistRuntime: the driver node is immortal");
  }
  sim().schedule_at(t, [this, node] {
    if (execs_[node].alive) kill_node(node);
  });
}

void DistRuntime::recover_node_at(std::size_t node, SimTime t) {
  sim().schedule_at(t, [this, node] {
    if (!execs_[node].alive) do_recover_node(node);
  });
}

void DistRuntime::set_node_draining(std::size_t node, bool draining) {
  if (node >= execs_.size()) {
    throw std::out_of_range("DistRuntime: bad node id");
  }
  if (node == cfg_.driver && draining) {
    throw std::invalid_argument("DistRuntime: the driver node cannot drain");
  }
  execs_[node].draining = draining;
  // Undraining frees capacity the scheduler may have been waiting for.
  if (!draining && active_) schedule();
}

void DistRuntime::set_node_speed_at(std::size_t node, double speed, SimTime t) {
  if (node >= execs_.size()) {
    throw std::out_of_range("DistRuntime: bad node id");
  }
  if (speed <= 0) throw std::invalid_argument("DistRuntime: speed must be > 0");
  sim().schedule_at(t, [this, node, speed] { execs_[node].speed = speed; });
}

void DistRuntime::finish(bool ok) {
  result_.ok = ok;
  result_.makespan = sim().now() - submit_time_;
  result_.stages.clear();
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    result_.stages.push_back(
        JobResult::StageSpan{job_.stages[s].name, stages_[s].start, stages_[s].end});
  }
  active_ = false;
  if (ok) {
    stats_.jobs_completed++;
  } else {
    stats_.jobs_failed++;
  }
  trace_span(job_.name, "job", submit_time_, sim().now(), 0, 0);
  JobDoneFn cb = std::move(done_cb_);
  done_cb_ = nullptr;
  // Sink output: persist the final stage's blocks to the DFS (under the
  // job's sink_policy — kErasureCoded for cold final artifacts) BEFORE the
  // done callback, so "job completed" implies "sink durable". The result is
  // moved aside because the runtime may accept its next job while the write
  // is in flight (active_ is already false; a JobSlotPool keeps this slot
  // busy until the callback, so slot accounting stays exact).
  if (ok && !job_.sink_file.empty() && dfs_ != nullptr) {
    std::vector<std::uint8_t> content;
    for (const auto& task_blocks : result_.output) {
      for (const Bytes& b : task_blocks) {
        for (const std::byte v : b) {
          content.push_back(static_cast<std::uint8_t>(v));
        }
      }
    }
    auto res = std::make_shared<JobResult>(std::move(result_));
    result_ = JobResult{};
    stats_.sink_writes++;
    dfs_->put(cfg_.driver, job_.sink_file, std::move(content), opts_.sink_policy,
              [res, cb = std::move(cb)](bool wok) {
                res->sink_ok = wok;
                if (cb) cb(*res);
              });
    return;
  }
  if (cb) cb(result_);
}

}  // namespace hpbdc::dist
