#pragma once
// Per-job runtime options for the distributed runtime. Historically the
// shuffle transport and its knobs were implicit (there was exactly one:
// pull-from-registry); RuntimeOptions makes the choice explicit and travels
// as ONE struct through every submission path — DistRuntime::submit,
// JobSlotPool::submit, and serve::SubmitRequest — instead of growing
// positional parameters at each layer.

#include <cstddef>
#include <cstdint>

#include "sim/policy.hpp"

namespace hpbdc::dist {

/// Which ShuffleTransport implementation a job runs on (see transport.hpp
/// for the contract both satisfy).
enum class TransportKind : std::uint8_t {
  kPull = 0,  // classic: register map output, reduce-side fetch RPCs
  kPush = 1,  // DFI-style: producers stream segments to flow targets
};

inline const char* transport_name(TransportKind k) {
  return k == TransportKind::kPush ? "push" : "pull";
}

/// Knobs of the push-flow transport (ignored under kPull). Defaults are
/// sized for the simulated 10 Gbit fabric: 256 KiB segments amortize the
/// per-message header, 4 credits keep a channel's in-flight volume around
/// 1 MiB — enough to fill the pipe without unbounded receiver buffering.
struct FlowOptions {
  std::uint64_t segment_bytes = 256 * 1024;  // unit of streaming + credit
  std::size_t credits_per_channel = 4;       // in-flight segments per (src,dst)
  std::uint64_t ack_bytes = 64;              // credit-return message body
  /// A consumer finding its pushed stream incomplete waits this long
  /// (simulated seconds) for the tail segments before falling back to an
  /// origin pull fetch — the liveness valve for segments lost to loss
  /// bursts or a producer death mid-stream.
  double reader_patience = 1.0;
};

/// Everything a caller may vary per job. Plain value type; default
/// construction is the pre-redesign behavior (pull transport), which keeps
/// existing call sites and replay specs byte-identical.
struct RuntimeOptions {
  TransportKind transport = TransportKind::kPull;
  FlowOptions flow;
  /// Durability policy for stage checkpoints written to the DFS. Shuffle
  /// spill stays replicated regardless (hot, short-lived); checkpoints are
  /// the cold, large artifacts erasure coding is built for.
  sim::StoragePolicy checkpoint_policy = sim::StoragePolicy::kReplicated;
  /// Durability policy for the job's sink output (JobSpec::sink_file, when
  /// set). Sink files are final artifacts — written once, read long after
  /// the job — so they are the other natural kErasureCoded candidate.
  sim::StoragePolicy sink_policy = sim::StoragePolicy::kReplicated;
};

}  // namespace hpbdc::dist
