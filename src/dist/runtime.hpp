#pragma once
// Distributed dataflow runtime on the simulated cluster: a driver (hosted at
// rank cfg.driver) splits a stage DAG into per-partition tasks and schedules
// them onto executors on every cluster node, with
//   * DFS-block locality preference for input stages,
//   * shuffle movement delegated to a per-job ShuffleTransport
//     (transport.hpp): classic pull-from-registry, or the push-based flow
//     shuffle (flow.hpp), selected via RuntimeOptions at submit,
//   * heartbeat-based failure detection with timeout, bounded task retry,
//     lineage-based recomputation of shuffle outputs lost to a node death,
//     optional stage checkpointing to the DFS that truncates lineage, and
//     LATE-style straggler speculation (the policy object is shared with
//     src/cluster/speculation).
//
// The runtime is entirely event-driven on the single-threaded Simulator, so
// every run is deterministic: heartbeat jitter, straggler assignment, and
// random failure injection all derive sub-seeds from DistConfig::seed, and
// network loss determinism comes from NetworkConfig::loss_seed.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/speculation.hpp"
#include "common/rng.hpp"
#include "dist/job.hpp"
#include "dist/options.hpp"
#include "dist/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::dist {

struct DistConfig {
  std::size_t driver = 0;        // rank hosting the driver (never killed)
  std::size_t slots_per_node = 2;
  // Failure detection.
  double heartbeat_interval = 0.5;
  double heartbeat_timeout = 2.0;   // silence before an executor is declared dead
  double heartbeat_jitter = 0.05;   // uniform [0, jitter) added per beat
  double attempt_timeout = 120.0;   // re-queue attempts running longer than this
  std::size_t max_task_attempts = 4;
  // Cost model.
  double compute_bps = 250e6;       // task processing rate at node speed 1.0
  double task_overhead = 2e-3;      // fixed per-task startup (s)
  double disk_bandwidth_bps = 200e6;
  double disk_seek = 2e-3;
  std::uint64_t rpc_bytes = 256;    // control-plane message body size
  // Stragglers: a seeded random fraction of nodes runs at reduced speed.
  double straggler_fraction = 0.0;
  double straggler_speed = 0.25;
  // LATE-style speculation (policy shared with cluster::LatePolicy).
  bool speculate = false;
  double speculation_threshold = 1.5;
  // Random failure injection: per-node exponential failures with this mean
  // time between failures (0 = disabled); failed nodes recover after
  // node_downtime seconds (0 = stay dead).
  double node_mtbf = 0.0;
  double node_downtime = 10.0;
  /// Master seed: stragglers, heartbeat jitter, and failure times all derive
  /// sub-seeds from this single value.
  std::uint64_t seed = 1;
};

struct DistStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t tasks_launched = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t task_retries = 0;        // re-launches after attempt failure
  std::uint64_t tasks_recomputed = 0;    // re-launches of previously-done tasks
  std::uint64_t speculative_launched = 0;
  std::uint64_t speculative_won = 0;
  std::uint64_t shuffle_fetches = 0;
  std::uint64_t shuffle_local_fetches = 0;
  std::uint64_t shuffle_bytes = 0;        // simulated bytes fetched (local + remote)
  std::uint64_t shuffle_bytes_local = 0;  // same-node serves: no wire traffic
  std::uint64_t shuffle_bytes_remote = 0; // crossed the fabric (the honest number)
  std::uint64_t fetch_failures = 0;
  std::uint64_t locality_hits = 0;       // input task placed on a block replica
  std::uint64_t locality_misses = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t executors_declared_dead = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_restores = 0;  // blocks re-read from a checkpoint
  std::uint64_t sink_writes = 0;          // sink_file outputs persisted to the DFS
  // Invariant evidence for the chaos harness (src/chaos):
  std::uint64_t stale_events_ignored = 0;    // task events after job completion
  std::uint64_t max_failures_one_task = 0;   // high-water charged failures
};

class DistRuntime {
 public:
  using JobDoneFn = std::function<void(const JobResult&)>;

  /// dfs is optional: without it there is no input locality and stage
  /// checkpointing is silently disabled.
  DistRuntime(sim::Comm& comm, DistConfig cfg, sim::Dfs* dfs = nullptr);

  /// Mirror runtime counters/gauges into a registry (PR-1 obs layer).
  void bind_metrics(obs::MetricsRegistry& reg);
  /// Record per-stage and per-task spans with *simulated-time* timestamps;
  /// the session's write_chrome_json() renders them directly.
  void bind_trace(obs::TraceSession& session);

  /// Run one job to completion; `done` fires (in simulated time) with the
  /// result. One job at a time; submit again after completion. The two-arg
  /// form runs with default RuntimeOptions (pull transport — byte-identical
  /// to the pre-transport-redesign runtime).
  void submit(JobSpec job, JobDoneFn done);
  void submit(JobSpec job, const RuntimeOptions& opts, JobDoneFn done);

  /// Failure-injection hooks for tests/benches (driver node is immortal).
  void kill_node_at(std::size_t node, sim::SimTime t);
  void recover_node_at(std::size_t node, sim::SimTime t);
  /// Change a node's compute speed factor at time t (straggler injection;
  /// affects attempts whose compute starts after t).
  void set_node_speed_at(std::size_t node, double speed, sim::SimTime t);
  /// Drain control (the fleet layer's graceful-shrink half): a draining
  /// executor receives NO new task attempts — scheduling and speculation
  /// skip it — while attempts already running there finish normally and its
  /// shuffle outputs stay fetchable. Lineage recomputation covers whatever
  /// a later power-off takes with it. Takes effect immediately; idempotent.
  void set_node_draining(std::size_t node, bool draining);
  bool node_draining(std::size_t node) const { return execs_.at(node).draining; }
  /// Test hook (chaos harness): disable lineage rollback of lost map
  /// outputs, the intentionally seeded bug the harness must catch. Affected
  /// jobs spin on fetch failures until the hard attempt cap aborts them.
  void set_test_disable_lineage_recompute(bool disable) {
    test_no_lineage_ = disable;
  }

  const DistStats& stats() const noexcept { return stats_; }
  const DistConfig& config() const noexcept { return cfg_; }
  /// Options of the current (or most recent) job.
  const RuntimeOptions& options() const noexcept { return opts_; }
  /// The transport the current (or most recent) job runs on.
  const ShuffleTransport& transport() const noexcept { return *transport_; }
  /// Flow-fabric counters of the push transport (zeros until a push job ran).
  const flow::FlowStats& flow_stats() const noexcept { return push_->flow_stats(); }
  std::size_t live_executors() const;
  /// Node speed factors after straggler assignment (for tests).
  double node_speed(std::size_t node) const { return execs_[node].speed; }

 private:
  static constexpr std::size_t kNone = ~std::size_t{0};

  enum class TStatus { Pending, Running, Done };

  // Shuffle outputs live in the ShuffleTransport now (see transport.hpp for
  // the ownership contract); ExecState keeps only scheduler-visible state.
  struct ExecState {
    bool alive = true;
    double speed = 1.0;
    bool dead_to_driver = false;     // driver's (possibly stale) view
    bool draining = false;           // fleet shrink: no NEW attempts here
    std::size_t busy = 0;            // driver-side slot accounting
    sim::SimTime last_heartbeat = 0;
    sim::Disk disk;
    explicit ExecState(const DistConfig& cfg)
        : disk(cfg.disk_bandwidth_bps, cfg.disk_seek) {}
  };

  struct TaskState {
    TStatus status = TStatus::Pending;
    std::size_t attempts = 0;  // total launches, including benign requeues
    std::size_t failures = 0;  // only failures charged against max_task_attempts
    std::vector<std::uint64_t> live_attempts;
    std::size_t output_node = kNone;
    std::vector<std::uint64_t> out_sim_sizes;  // per child partition
    std::uint64_t total_out_sim = 0;
    bool ever_done = false;  // a re-launch after this is a lineage recompute
  };

  struct StageState {
    std::size_t done = 0;
    bool checkpointed = false;  // checkpoint durable in the DFS
    sim::SimTime start = -1;
    sim::SimTime end = -1;
  };

  struct Attempt {
    std::size_t stage = 0, task = 0, node = 0;
    sim::SimTime launched = 0;
    bool speculative = false;
    bool cancelled = false;
  };

  // ---- message plumbing ----------------------------------------------------
  enum MsgType : std::uint8_t {
    kLaunch = 1, kCancel, kHeartbeat, kTaskDone, kTaskFailed, kFetchFailed,
  };
  void on_exec_msg(std::size_t node, const Bytes& payload);
  void send_to_exec(std::size_t node, Bytes payload);
  void send_to_driver(std::size_t node, std::uint64_t body, Bytes payload);

  // ---- executor side (runs "at" a node, touching only its state) ----------
  void exec_start(std::uint64_t attempt_id);
  void exec_compute(std::uint64_t attempt_id,
                    std::shared_ptr<std::vector<std::vector<Bytes>>> inputs,
                    std::uint64_t bytes_in);
  bool attempt_dead(std::uint64_t attempt_id) const;

  // ---- driver side ---------------------------------------------------------
  void schedule();
  void launch(std::size_t stage, std::size_t task, std::size_t node, bool spec);
  void on_task_done(std::uint64_t attempt_id);
  // charge_budget: true when the failure is the task's own doing (an executor
  // reported it failed, or the attempt timed out). Requeues caused by executor
  // death or lost upstream map outputs are the cluster's fault and do not eat
  // into max_task_attempts — otherwise failure churn aborts healthy jobs.
  void on_attempt_failed(std::uint64_t attempt_id, bool charge_budget);
  void on_fetch_failed(std::uint64_t attempt_id, std::size_t pstage,
                       std::size_t ptask);
  void on_heartbeat(std::size_t node);
  void declare_dead(std::size_t node);
  void invalidate_outputs_on(std::size_t node);
  bool stage_retired(std::size_t s) const;
  bool stage_available(std::size_t s) const;
  void maybe_checkpoint(std::size_t s);
  void monitor_tick();
  void heartbeat_loop(std::size_t node);
  void schedule_next_failure(std::size_t node);
  void kill_node(std::size_t node);
  void do_recover_node(std::size_t node);
  void finish(bool ok);
  void speculate();

  std::string ckpt_file(std::size_t stage) const;
  ShuffleTransport::Env make_transport_env();
  sim::Simulator& sim() { return comm_.simulator(); }
  void trace_span(const std::string& name, const std::string& cat,
                  sim::SimTime start, sim::SimTime end, std::uint32_t tid,
                  std::uint64_t items);
  void count(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->add(n);
  }

  sim::Comm& comm_;
  DistConfig cfg_;
  sim::Dfs* dfs_;
  int tag_exec_, tag_drv_;

  // Both transports exist for the runtime's lifetime (handler/tag layout
  // stays deterministic); transport_ points at the active one per job.
  std::unique_ptr<PullTransport> pull_;
  std::unique_ptr<PushTransport> push_;
  ShuffleTransport* transport_ = nullptr;
  RuntimeOptions opts_;

  std::vector<ExecState> execs_;
  Rng jitter_rng_, failure_rng_;
  cluster::LatePolicy late_;

  // Active job state. epoch_ bumps per submit so that stale scheduled
  // continuations (heartbeat/monitor/failure loops, DFS callbacks) from a
  // finished job recognize themselves and stand down.
  bool active_ = false;
  std::uint64_t epoch_ = 0;
  JobSpec job_;
  JobDoneFn done_cb_;
  sim::SimTime submit_time_ = 0;
  std::vector<StageState> stages_;
  std::vector<std::vector<TaskState>> tasks_;  // [stage][task]
  std::map<std::uint64_t, Attempt> attempts_;
  std::uint64_t next_attempt_id_ = 1;
  std::map<std::size_t, std::vector<std::vector<Bytes>>> ckpt_data_;  // stage -> per-task blocks
  JobResult result_;
  std::size_t result_received_ = 0;

  DistStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSession* trace_ = nullptr;
  obs::Counter* m_launched_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_recomputed_ = nullptr;
  obs::Counter* m_shuffle_bytes_ = nullptr;
  obs::Counter* m_shuffle_local_ = nullptr;
  obs::Counter* m_shuffle_remote_ = nullptr;
  obs::Counter* m_locality_hits_ = nullptr;
  obs::Counter* m_locality_misses_ = nullptr;
  obs::Counter* m_spec_launched_ = nullptr;
  obs::Counter* m_ckpt_restores_ = nullptr;
  obs::Counter* m_stale_events_ = nullptr;
  obs::Gauge* g_live_execs_ = nullptr;
  obs::Gauge* g_max_failures_ = nullptr;
  bool test_no_lineage_ = false;
};

}  // namespace hpbdc::dist
