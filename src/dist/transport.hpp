#pragma once
// ShuffleTransport: the explicit seam between the dist runtime's scheduler
// and the mechanism that moves map output to its consumers. Before this
// redesign the contract was implicit — runtime.cpp wrote BlockSets straight
// into ExecState::outputs and hand-rolled fetch RPCs inside exec_start() —
// which made the shuffle strategy unswappable. The two implementations:
//
//   PullTransport  classic registry: publish() records the BlockSet at the
//                  producer, collect() fetches every parent block with a
//                  source-disk read + network transfer once the consumer
//                  starts. Event-for-event identical to the pre-redesign
//                  runtime — replay specs and seeded runs stay bit-exact.
//   PushTransport  flow shuffle (src/dist/flow): publish() additionally
//                  streams the blocks to the consumers' nodes as credit-
//                  paced segments, and collect() serves locally-buffered
//                  streams immediately, waits (bounded) on in-flight ones,
//                  and falls back to origin fetches for the rest.
//
// ## Ownership & lifetime contract
//
//   - The transport OWNS every published BlockSet. publish() transfers the
//     producing attempt's output in; the runtime reads it back only through
//     find(), whose pointer stays valid until the block is dropped by
//     node_killed / node_recovered (that node's memory is gone) or the next
//     begin_job (previous job's epoch is fenced off).
//   - The driver's bookkeeping (TaskState::output_node, sizes) remains the
//     runtime's; the transport never mutates scheduler state. Everything it
//     needs from the driver arrives through Env's read-only hooks, which
//     must outlive the transport's use of them (in practice: the runtime
//     owns both and destroys the transport first).
//   - collect() must deliver EXACTLY ONE terminal callback per request:
//     on_ready(bytes) once every parent block is materialized in `inputs`,
//     or on_missing(ps, pt) on the first unrecoverable block — after which
//     the transport abandons the request's remaining work. Callbacks fire
//     in simulated time, possibly synchronously inside collect() itself
//     (empty parent plan, or a sync-detected missing block).
//   - Abandonment: the transport checks Env::attempt_dead before touching a
//     request's state from a scheduled event; a request whose attempt died
//     simply evaporates (its shared input buffer keeps stragglers safe).
//   - begin_job() is the epoch fence. All stores, streams, and in-flight
//     credit state from the previous job are invalid after it; transports
//     drop them rather than let a stale event cross jobs.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/serialize.hpp"
#include "dist/flow.hpp"
#include "dist/job.hpp"
#include "dist/options.hpp"
#include "obs/metrics.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"

namespace hpbdc::dist {

/// One task attempt's shuffle output: real block content per child
/// partition plus the simulated sizes the cost model moves.
struct BlockSet {
  std::vector<Bytes> blocks;
  std::vector<std::uint64_t> sim_sizes;
  std::uint64_t total_sim = 0;
};

class ShuffleTransport {
 public:
  static constexpr std::size_t kNone = ~std::size_t{0};

  /// Read-only view of runtime state, plus accounting sinks. The single
  /// simulated process makes driver state visible "executor-side" exactly as
  /// the pre-redesign code read it; the hooks document which slices the
  /// shuffle path actually depends on.
  struct Env {
    sim::Comm* comm = nullptr;
    std::size_t driver = 0;
    std::function<bool(std::size_t node)> node_alive;
    std::function<sim::Disk&(std::size_t node)> disk;
    std::function<bool(std::uint64_t attempt_id)> attempt_dead;
    struct ParentOutput {
      bool done = false;
      std::size_t node = kNone;  // recorded holder (kNone while pending)
      const std::vector<std::uint64_t>* sim_sizes = nullptr;  // per child
    };
    std::function<ParentOutput(std::size_t stage, std::size_t task)> parent_output;
    std::function<bool(std::size_t stage)> stage_checkpointed;
    /// Closest live replica of stage's checkpoint to `near`, kNone if the
    /// checkpoint is absent/unreadable.
    std::function<std::size_t(std::size_t stage, std::size_t near)> ckpt_replica;
    std::function<Bytes(std::size_t stage, std::size_t task, std::size_t child)>
        ckpt_block;
    /// Stats sinks (DistStats + obs counters live runtime-side).
    std::function<void(std::uint64_t bytes, bool local, bool from_ckpt)> count_fetch;
    std::function<void()> count_fetch_failure;
  };

  /// One consumer attempt's input-gathering request (see contract above).
  struct CollectRequest {
    std::uint64_t attempt_id = 0;
    std::size_t node = 0;   // consumer's executor
    std::size_t stage = 0;  // consumer stage (parents come from the JobSpec)
    std::size_t task = 0;
    /// [parent index][parent task] — sized by the transport, shared so that
    /// straggling deliveries after abandonment write into harmless memory.
    std::shared_ptr<std::vector<std::vector<Bytes>>> inputs;
    std::function<void(std::uint64_t shuffle_bytes)> on_ready;
    std::function<void(std::size_t pstage, std::size_t ptask)> on_missing;
  };

  explicit ShuffleTransport(Env env);
  virtual ~ShuffleTransport() = default;

  virtual const char* name() const noexcept = 0;

  /// Fence a new job epoch; `job` must outlive it. Drops all prior state.
  virtual void begin_job(const JobSpec* job, std::uint64_t epoch,
                         const RuntimeOptions& opts);

  /// Take ownership of an attempt's output: record it for find()/collect(),
  /// spill it to the producer's local disk, then fire `announced` (the
  /// runtime's kTaskDone report, which re-checks attempt liveness itself).
  virtual void publish(std::uint64_t attempt_id, std::size_t node, std::size_t stage,
                       std::size_t task, BlockSet bs, std::function<void()> announced);

  /// Gather every parent block of req's task into req.inputs.
  virtual void collect(CollectRequest req) = 0;

  /// Published output of (stage, task) at `node`, or nullptr. Pointer valid
  /// until that node's store is dropped (see lifetime contract).
  const BlockSet* find(std::size_t node, std::size_t stage, std::size_t task) const;

  /// Scheduling hint: where this task's input will (mostly) be resident.
  /// kNone = no preference — the pull transport always says kNone, keeping
  /// the scheduler's behavior byte-identical.
  virtual std::size_t preferred_node(std::size_t stage, std::size_t task) const;

  virtual void node_killed(std::size_t node);
  virtual void node_recovered(std::size_t node);
  virtual void bind_metrics(obs::MetricsRegistry& reg);

 protected:
  struct Ctx {
    CollectRequest req;
    std::size_t pending = 0;
    bool failed = false;
    std::uint64_t bytes = 0;  // precomputed shuffle volume for on_ready
  };

  struct Resolved {
    std::size_t src = kNone;
    bool ckpt = false;
  };

  static std::uint64_t out_key(std::size_t stage, std::size_t task) {
    return (static_cast<std::uint64_t>(stage) << 32) | task;
  }

  /// Where block (ps, pt) can be fetched from right now: the recorded
  /// holder's registry copy, else a live checkpoint replica, else nowhere.
  Resolved resolve_origin(std::size_t ps, std::size_t pt, std::size_t near) const;

  /// One origin fetch: source-disk read, network transfer, then copy the
  /// real bytes out of the source store (or checkpoint) at delivery time.
  /// Decrements ctx->pending; fires on_ready at zero; routes a source lost
  /// mid-flight to fail_collect.
  void fetch_one(const std::shared_ptr<Ctx>& ctx, std::size_t src,
                 std::uint64_t bytes, bool from_ckpt, std::size_t pi, std::size_t ps,
                 std::size_t pt);

  /// First unrecoverable block wins; the rest of the request is abandoned.
  void fail_collect(const std::shared_ptr<Ctx>& ctx, std::size_t ps, std::size_t pt);

  Env env_;
  const JobSpec* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  RuntimeOptions opts_;
  std::vector<std::map<std::uint64_t, BlockSet>> store_;  // [node][stage<<32|task]
};

/// Classic pull-from-registry shuffle (the pre-redesign behavior, verbatim).
class PullTransport final : public ShuffleTransport {
 public:
  explicit PullTransport(Env env) : ShuffleTransport(std::move(env)) {}
  const char* name() const noexcept override { return "pull"; }
  void collect(CollectRequest req) override;
};

/// Push-flow shuffle over FlowFabric (see flow.hpp for the fabric's own
/// invariants). Publish streams blocks toward a deterministic per-partition
/// target node; the scheduler is nudged to place consumers there.
class PushTransport final : public ShuffleTransport {
 public:
  explicit PushTransport(Env env);
  const char* name() const noexcept override { return "push"; }
  void begin_job(const JobSpec* job, std::uint64_t epoch,
                 const RuntimeOptions& opts) override;
  void publish(std::uint64_t attempt_id, std::size_t node, std::size_t stage,
               std::size_t task, BlockSet bs, std::function<void()> announced) override;
  void collect(CollectRequest req) override;
  std::size_t preferred_node(std::size_t stage, std::size_t task) const override;
  void node_killed(std::size_t node) override;
  void node_recovered(std::size_t node) override;
  void bind_metrics(obs::MetricsRegistry& reg) override;

  const flow::FlowStats& flow_stats() const noexcept { return fabric_.stats(); }
  /// Deterministic home of consumer partition `t`: non-driver nodes round-
  /// robin. Producers stream there and the scheduler prefers to place the
  /// consumer there, so most reads are local buffer hits.
  std::size_t partition_target(std::size_t t) const;

 private:
  void start_streams(std::size_t node, std::size_t stage, std::size_t task);
  flow::FlowFabric fabric_;
  std::vector<std::size_t> targets_;  // non-driver ranks, in order
};

}  // namespace hpbdc::dist
