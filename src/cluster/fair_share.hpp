#pragma once
// Fair-share accounting shared by the HPC batch scheduler (batch_scheduler,
// experiment T3) and the multi-tenant job service (src/serve):
//
//   * UsageLedger — per-tenant accumulated usage of a single resource
//     (node-seconds for the batch scheduler). refund() is clamped at zero:
//     a task retry may refund a charge the cluster already reclaimed, and a
//     negative balance would let the tenant jump every future queue.
//   * DrfLedger — dominant-resource fairness (Ghodsi et al., NSDI'11) over a
//     fixed capacity vector: a tenant's dominant share is the maximum, over
//     resources, of its in-use fraction of capacity. Schedulers pick the
//     tenant with the smallest dominant share next.
//   * aged_priority — the shared starvation guard: a queued request earns a
//     linear credit for every second it waits, so an arbitrarily long stream
//     of fresh zero-usage tenants can only delay it for a bounded time.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hpbdc::cluster {

/// Single-resource per-tenant usage totals with clamped refunds.
class UsageLedger {
 public:
  void charge(std::uint32_t tenant, double amount);
  /// Return previously charged usage; the balance never goes below zero
  /// (double-refunds from task retries must not mint priority).
  void refund(std::uint32_t tenant, double amount);
  double usage(std::uint32_t tenant) const;

 private:
  std::unordered_map<std::uint32_t, double> usage_;
};

/// Effective fair-share priority of a queued request (lower runs first):
/// accumulated usage minus the aging credit earned while waiting.
inline double aged_priority(double usage, double wait_seconds,
                            double aging_rate) {
  return usage - aging_rate * wait_seconds;
}

/// Multi-resource dominant-share ledger. Capacities are fixed at
/// construction; acquire/release track per-tenant in-use vectors, with
/// release clamped at zero per resource (same retry rationale as
/// UsageLedger::refund).
class DrfLedger {
 public:
  explicit DrfLedger(std::vector<double> capacities);

  std::size_t resources() const noexcept { return cap_.size(); }
  const std::vector<double>& capacities() const noexcept { return cap_; }

  /// demand.size() must equal resources(); throws std::invalid_argument.
  void acquire(std::uint32_t tenant, const std::vector<double>& demand);
  void release(std::uint32_t tenant, const std::vector<double>& demand);

  /// max over resources of in_use[r] / capacity[r]; 0 for unknown tenants.
  double dominant_share(std::uint32_t tenant) const;
  /// In-use amount of one resource, summed over tenants.
  double total_in_use(std::size_t resource) const;

 private:
  std::vector<double> cap_;
  std::unordered_map<std::uint32_t, std::vector<double>> use_;
};

}  // namespace hpbdc::cluster
