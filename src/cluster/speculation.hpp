#pragma once
// Speculative execution for MapReduce-style jobs (experiment F8): a job of
// independent tasks runs on a cluster where some nodes are stragglers
// (degraded to a fraction of nominal speed). Without mitigation, job
// completion is gated by the slowest task instance; with speculation, a
// backup copy of a slow task is launched on a free node once the task's
// expected remaining time (at its node's speed) exceeds the typical task
// duration by a threshold — the MapReduce/LATE policy shape. First copy to
// finish wins; the other is killed.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hpbdc::cluster {

/// Reusable LATE-style speculation policy: tracks completed task durations
/// and decides whether a running copy deserves a backup. Shared by the
/// self-contained F8 simulation below and the distributed runtime
/// (src/dist), so both speculate with identical logic.
class LatePolicy {
 public:
  /// `default_duration` stands in for the median before any task completes;
  /// pass 0 to refuse speculation until real durations exist.
  explicit LatePolicy(double threshold, double default_duration = 0.0)
      : threshold_(threshold), default_(default_duration) {}

  void record(double duration) { durations_.push_back(duration); }

  double threshold() const noexcept { return threshold_; }

  /// Median completed duration (default_duration until one exists).
  double median() const {
    if (durations_.empty()) return default_;
    auto v = durations_;
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
  }

  /// A copy whose estimated remaining (or elapsed-beyond-expectation) time
  /// is `t` merits a backup once t exceeds threshold * median.
  bool exceeds(double t) const {
    const double med = median();
    return med > 0 && t > threshold_ * med;
  }

 private:
  double threshold_;
  double default_;
  std::vector<double> durations_;
};

struct SpeculationConfig {
  std::size_t nodes = 20;
  std::size_t tasks = 200;
  double task_work = 10.0;          // seconds at nominal speed
  double task_work_cv = 0.2;        // per-task size variation (lognormal-ish)
  double straggler_fraction = 0.1;  // fraction of nodes degraded
  double straggler_speed = 0.2;     // degraded nodes run at this speed
  bool speculate = true;
  double speculation_threshold = 1.5;  // backup when remaining > thr * median task time
  std::uint64_t seed = 1;
};

struct SpeculationResult {
  double makespan = 0;
  double total_node_seconds = 0;  // work actually executed (incl. killed copies)
  std::size_t backups_launched = 0;
  std::size_t backups_won = 0;    // backup finished before the original
  double wasted_seconds = 0;      // execution time of losing copies
};

/// Run the job to completion under the configured policy.
SpeculationResult simulate_speculation(const SpeculationConfig& cfg);

}  // namespace hpbdc::cluster
