#pragma once
// Speculative execution for MapReduce-style jobs (experiment F8): a job of
// independent tasks runs on a cluster where some nodes are stragglers
// (degraded to a fraction of nominal speed). Without mitigation, job
// completion is gated by the slowest task instance; with speculation, a
// backup copy of a slow task is launched on a free node once the task's
// expected remaining time (at its node's speed) exceeds the typical task
// duration by a threshold — the MapReduce/LATE policy shape. First copy to
// finish wins; the other is killed.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hpbdc::cluster {

struct SpeculationConfig {
  std::size_t nodes = 20;
  std::size_t tasks = 200;
  double task_work = 10.0;          // seconds at nominal speed
  double task_work_cv = 0.2;        // per-task size variation (lognormal-ish)
  double straggler_fraction = 0.1;  // fraction of nodes degraded
  double straggler_speed = 0.2;     // degraded nodes run at this speed
  bool speculate = true;
  double speculation_threshold = 1.5;  // backup when remaining > thr * median task time
  std::uint64_t seed = 1;
};

struct SpeculationResult {
  double makespan = 0;
  double total_node_seconds = 0;  // work actually executed (incl. killed copies)
  std::size_t backups_launched = 0;
  std::size_t backups_won = 0;    // backup finished before the original
  double wasted_seconds = 0;      // execution time of losing copies
};

/// Run the job to completion under the configured policy.
SpeculationResult simulate_speculation(const SpeculationConfig& cfg);

}  // namespace hpbdc::cluster
