#pragma once
// Reactive autoscaling for elastic cloud services: a target-tracking policy
// (the shape of AWS/GCP target-utilization scaling) evaluated against a
// request-rate trace. Models the pieces that make autoscaling hard in
// practice: instance boot lag, scale-up/down cooldowns, and capacity limits.
// Load that exceeds live capacity in a period is dropped and accounted.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hpbdc::cluster {

struct AutoscalerConfig {
  double capacity_per_instance = 100;  // requests/sec one instance absorbs
  double target_utilization = 0.7;     // plan for this steady-state load
  std::size_t min_instances = 1;
  std::size_t max_instances = 1000;
  double evaluation_period = 30;       // seconds between decisions
  double boot_time = 120;              // lag before a new instance serves
  double scale_up_cooldown = 60;       // min seconds between scale-ups
  double scale_down_cooldown = 300;    // min seconds between scale-downs
};

struct AutoscaleStep {
  double time = 0;
  double load = 0;          // offered requests/sec this period
  std::size_t running = 0;  // serving instances
  std::size_t booting = 0;  // provisioned, not yet serving
  double utilization = 0;   // load / live capacity (can exceed 1 = overload)
  double dropped = 0;       // requests dropped this period
};

struct AutoscaleResult {
  std::vector<AutoscaleStep> trace;
  double mean_utilization = 0;   // over periods, capped at 1 per period
  double dropped_fraction = 0;   // dropped / offered
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  double instance_seconds = 0;   // cost proxy (includes booting instances)
};

/// The reusable core of the reactive policy: target-tracking with scale
/// up/down cooldowns and instance bounds, factored out of
/// simulate_autoscaler so other control loops (the src/fleet elasticity
/// controller) make the SAME decisions the F7 experiment validated. The
/// tracker is pure decision logic — callers own booting queues, teardown,
/// and accounting; simulate_autoscaler remains byte-identical to the
/// pre-refactor implementation.
class TargetTracker {
 public:
  enum class Action : std::uint8_t { kHold, kUp, kDown };
  struct Decision {
    Action action = Action::kHold;
    std::size_t desired = 0;  // clamped target instance count
    std::size_t order = 0;    // kUp: instances to provision now
  };

  TargetTracker(double capacity_per_instance, double target_utilization,
                std::size_t min_instances, std::size_t max_instances,
                double scale_up_cooldown, double scale_down_cooldown);

  /// One evaluation at time `now` against offered `load`:
  ///   desired = clamp(ceil(load / (capacity * target)), min, max)
  /// Scale up (by desired - running - booting) when above the provisioned
  /// count and the up-cooldown allows; scale down to desired only when
  /// nothing is booting and the down-cooldown allows. Cooldown clocks
  /// advance only on the decision actually taken.
  Decision decide(double now, double load, std::size_t running,
                  std::size_t booting);

 private:
  double capacity_per_instance_;
  double target_utilization_;
  std::size_t min_instances_;
  std::size_t max_instances_;
  double up_cooldown_;
  double down_cooldown_;
  double last_up_ = -1e18;
  double last_down_ = -1e18;
};

/// Run the reactive policy over a load trace (one entry per period).
AutoscaleResult simulate_autoscaler(const AutoscalerConfig& cfg,
                                    const std::vector<double>& load);

/// Fixed-fleet baseline: n instances throughout, same accounting.
AutoscaleResult simulate_static_fleet(const AutoscalerConfig& cfg, std::size_t n,
                                      const std::vector<double>& load);

// ---- load traces -----------------------------------------------------------

struct LoadTraceConfig {
  std::size_t periods = 480;       // e.g. 4 hours at 30 s
  double base_rps = 1000;          // diurnal mean
  double diurnal_amplitude = 0.6;  // fraction of base
  double noise = 0.1;              // multiplicative noise stddev
  bool flash_crowd = true;         // 3x spike for ~20 periods mid-trace
};

/// Diurnal sine + log-normal noise + optional flash crowd.
std::vector<double> generate_load_trace(const LoadTraceConfig& cfg, Rng& rng);

}  // namespace hpbdc::cluster
