#include "cluster/placement.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace hpbdc::cluster {

const char* placement_policy_name(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kBestFit: return "best-fit";
    case PlacementPolicy::kWorstFit: return "worst-fit";
    case PlacementPolicy::kRandom: return "random";
  }
  return "?";
}

std::optional<std::size_t> Placer::choose(const std::vector<Host>& hosts,
                                          const VmSpec& vm) {
  switch (policy_) {
    case PlacementPolicy::kFirstFit: {
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (hosts[i].can_host(vm)) return i;
      }
      return std::nullopt;
    }
    case PlacementPolicy::kBestFit: {
      std::optional<std::size_t> best;
      double best_leftover = 0;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (!hosts[i].can_host(vm)) continue;
        // Leftover bottleneck capacity after hypothetical placement.
        const auto fr = hosts[i].free();
        const double cpu_left = (fr.cpu - vm.demand.cpu) /
                                std::max(1.0, hosts[i].capacity().cpu);
        const double ram_left =
            static_cast<double>(fr.ram - vm.demand.ram) /
            std::max<double>(1.0, static_cast<double>(hosts[i].capacity().ram));
        const double leftover = std::max(cpu_left, ram_left);
        if (!best || leftover < best_leftover) {
          best = i;
          best_leftover = leftover;
        }
      }
      return best;
    }
    case PlacementPolicy::kWorstFit: {
      std::optional<std::size_t> best;
      double best_leftover = -1;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (!hosts[i].can_host(vm)) continue;
        const auto fr = hosts[i].free();
        const double cpu_left = (fr.cpu - vm.demand.cpu) /
                                std::max(1.0, hosts[i].capacity().cpu);
        const double ram_left =
            static_cast<double>(fr.ram - vm.demand.ram) /
            std::max<double>(1.0, static_cast<double>(hosts[i].capacity().ram));
        const double leftover = std::min(cpu_left, ram_left);
        if (leftover > best_leftover) {
          best = i;
          best_leftover = leftover;
        }
      }
      return best;
    }
    case PlacementPolicy::kRandom: {
      std::vector<std::size_t> feasible;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (hosts[i].can_host(vm)) feasible.push_back(i);
      }
      if (feasible.empty()) return std::nullopt;
      return feasible[rng_.next_below(feasible.size())];
    }
  }
  return std::nullopt;
}

PlacementResult Placer::place_all(std::vector<Host>& hosts,
                                  const std::vector<VmSpec>& vms) {
  PlacementResult res;
  res.assignment.reserve(vms.size());
  for (const auto& vm : vms) {
    auto h = choose(hosts, vm);
    if (h) {
      hosts[*h].place(vm);
      ++res.placed;
    } else {
      ++res.rejected;
    }
    res.assignment.push_back(h);
  }
  RunningStat loads;
  RunningStat used_loads;
  for (const auto& h : hosts) {
    loads.add(h.load());
    if (!h.vms().empty()) {
      ++res.hosts_used;
      used_loads.add(h.load());
    }
  }
  res.mean_load = used_loads.mean();
  res.max_load = loads.max();
  res.load_stddev = loads.stddev();
  return res;
}

}  // namespace hpbdc::cluster
