#pragma once
// VM live-migration cost models (experiment F2). The three canonical
// strategies, with the standard analytical behaviour:
//
//   stop-and-copy — freeze the VM, transfer all RAM once.
//                   total = downtime = M/B.
//   pre-copy      — iteratively transfer dirtied pages while the VM runs
//                   (Clark et al., NSDI'05 / Xen). Round i transfers the
//                   pages dirtied during round i-1; when the remaining set
//                   drops below `stop_threshold` (or rounds are exhausted,
//                   i.e. dirty rate >= bandwidth so rounds do not converge),
//                   stop and copy the remainder. Downtime = remainder/B.
//   post-copy     — transfer minimal CPU/device state, resume on the target
//                   immediately, then pull pages in the background with
//                   demand faults. Downtime = state/B (tiny, constant);
//                   total is one full memory pass slowed by the fault
//                   round-trips on the fraction of hot pages.
//
// All sizes in bytes, rates in bytes/sec, times in seconds.

#include <cstdint>

namespace hpbdc::cluster {

struct MigrationConfig {
  std::uint64_t vm_memory = 4ULL << 30;     // resident RAM to move
  double bandwidth_bps = 1.25e9;            // migration link rate
  double dirty_rate_bps = 100e6;            // page-dirtying rate while running
  std::uint64_t stop_threshold = 64ULL << 20;  // pre-copy: stop when dirty set below this
  std::uint32_t max_rounds = 30;            // pre-copy: round cap
  std::uint64_t cpu_state_bytes = 8ULL << 20;  // post-copy: state moved during downtime
  double fault_fraction = 0.1;              // post-copy: fraction of pages demand-faulted
  double fault_rtt = 100e-6;                // post-copy: per-fault network round-trip
  std::uint64_t page_size = 4096;
};

struct MigrationResult {
  double total_time = 0;        // start of migration to source release
  double downtime = 0;          // VM unresponsive window
  std::uint64_t transferred = 0;  // total bytes moved (overhead measure)
  std::uint32_t rounds = 0;     // pre-copy iterations (1 for the others)
  bool converged = true;        // pre-copy: false if stopped by round cap
};

MigrationResult migrate_stop_and_copy(const MigrationConfig& cfg);
MigrationResult migrate_pre_copy(const MigrationConfig& cfg);
MigrationResult migrate_post_copy(const MigrationConfig& cfg);

}  // namespace hpbdc::cluster
