#include "cluster/speculation.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace hpbdc::cluster {

namespace {

struct Copy {
  std::size_t task = 0;
  std::size_t node = 0;
  double start = 0;
  double finish = 0;
  bool alive = true;
  bool is_backup = false;
};

struct TaskState {
  double work = 0;
  bool done = false;
  std::vector<std::size_t> copies;  // indices into the copy table

  std::size_t alive_copies(const std::vector<Copy>& all) const {
    std::size_t count = 0;
    for (auto idx : copies) {
      if (all[idx].alive) ++count;
    }
    return count;
  }
};

}  // namespace

SpeculationResult simulate_speculation(const SpeculationConfig& cfg) {
  if (cfg.nodes == 0 || cfg.tasks == 0) {
    throw std::invalid_argument("speculation: nodes and tasks must be >= 1");
  }
  if (cfg.straggler_speed <= 0 || cfg.straggler_speed > 1) {
    throw std::invalid_argument("speculation: straggler speed in (0, 1]");
  }
  Rng rng(cfg.seed);

  // Node speeds: a random subset runs degraded.
  std::vector<double> speed(cfg.nodes, 1.0);
  const auto n_stragglers = static_cast<std::size_t>(
      cfg.straggler_fraction * static_cast<double>(cfg.nodes));
  std::vector<std::size_t> node_ids(cfg.nodes);
  for (std::size_t i = 0; i < cfg.nodes; ++i) node_ids[i] = i;
  rng.shuffle(node_ids);
  for (std::size_t i = 0; i < n_stragglers; ++i) speed[node_ids[i]] = cfg.straggler_speed;

  // Task sizes.
  std::vector<TaskState> tasks(cfg.tasks);
  for (auto& t : tasks) {
    t.work = cfg.task_work * std::exp(cfg.task_work_cv * rng.next_gaussian());
  }

  std::vector<Copy> copies;
  auto cmp = [&copies](std::size_t a, std::size_t b) {
    return copies[a].finish > copies[b].finish;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)> pq(cmp);

  std::vector<std::size_t> free_nodes;
  for (std::size_t n = 0; n < cfg.nodes; ++n) free_nodes.push_back(n);
  std::size_t next_task = 0;
  std::size_t tasks_done = 0;
  LatePolicy policy(cfg.speculation_threshold, cfg.task_work);

  SpeculationResult res;

  auto launch = [&](std::size_t task, std::size_t node, double now, bool backup) {
    Copy c;
    c.task = task;
    c.node = node;
    c.start = now;
    c.finish = now + tasks[task].work / speed[node];
    c.is_backup = backup;
    copies.push_back(c);
    tasks[task].copies.push_back(copies.size() - 1);
    pq.push(copies.size() - 1);
    if (backup) ++res.backups_launched;
  };

  auto assign_free_nodes = [&](double now) {
    // Regular tasks first.
    while (!free_nodes.empty() && next_task < cfg.tasks) {
      const std::size_t node = free_nodes.back();
      free_nodes.pop_back();
      launch(next_task++, node, now, false);
    }
    if (!cfg.speculate) return;
    // Speculation: back up the running task with the largest remaining
    // time, if it exceeds the threshold and has no backup yet.
    while (!free_nodes.empty()) {
      std::size_t best_task = cfg.tasks;
      double best_remaining = policy.threshold() * policy.median();
      for (std::size_t t = 0; t < cfg.tasks; ++t) {
        if (tasks[t].done || tasks[t].copies.empty()) continue;
        if (tasks[t].alive_copies(copies) != 1) continue;  // already backed up
        for (auto ci : tasks[t].copies) {
          if (!copies[ci].alive) continue;
          const double remaining = copies[ci].finish - now;
          if (remaining > best_remaining) {
            best_remaining = remaining;
            best_task = t;
          }
        }
      }
      if (best_task == cfg.tasks) break;  // nothing worth speculating
      const std::size_t node = free_nodes.back();
      free_nodes.pop_back();
      launch(best_task, node, now, true);
    }
  };

  assign_free_nodes(0.0);

  while (tasks_done < cfg.tasks) {
    if (pq.empty()) throw std::logic_error("speculation: deadlock");
    const std::size_t ci = pq.top();
    pq.pop();
    Copy& c = copies[ci];
    if (!c.alive) continue;  // killed while queued
    const double now = c.finish;
    c.alive = false;
    res.total_node_seconds += now - c.start;
    free_nodes.push_back(c.node);

    TaskState& task = tasks[c.task];
    if (!task.done) {
      task.done = true;
      ++tasks_done;
      policy.record(now - c.start);
      res.makespan = std::max(res.makespan, now);
      if (c.is_backup) ++res.backups_won;
      // Kill the losing sibling copy, freeing its node now.
      for (auto other : task.copies) {
        if (other == ci || !copies[other].alive) continue;
        copies[other].alive = false;
        res.total_node_seconds += now - copies[other].start;
        res.wasted_seconds += now - copies[other].start;
        free_nodes.push_back(copies[other].node);
      }
    }
    assign_free_nodes(now);
  }
  return res;
}

}  // namespace hpbdc::cluster
