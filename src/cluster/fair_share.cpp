#include "cluster/fair_share.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpbdc::cluster {

void UsageLedger::charge(std::uint32_t tenant, double amount) {
  if (amount < 0) throw std::invalid_argument("UsageLedger: negative charge");
  usage_[tenant] += amount;
}

void UsageLedger::refund(std::uint32_t tenant, double amount) {
  if (amount < 0) throw std::invalid_argument("UsageLedger: negative refund");
  auto it = usage_.find(tenant);
  if (it == usage_.end()) return;
  it->second = std::max(0.0, it->second - amount);
}

double UsageLedger::usage(std::uint32_t tenant) const {
  auto it = usage_.find(tenant);
  return it == usage_.end() ? 0.0 : it->second;
}

DrfLedger::DrfLedger(std::vector<double> capacities) : cap_(std::move(capacities)) {
  if (cap_.empty()) throw std::invalid_argument("DrfLedger: no resources");
  for (double c : cap_) {
    if (c <= 0) throw std::invalid_argument("DrfLedger: capacity must be > 0");
  }
}

void DrfLedger::acquire(std::uint32_t tenant, const std::vector<double>& demand) {
  if (demand.size() != cap_.size()) {
    throw std::invalid_argument("DrfLedger: demand/capacity size mismatch");
  }
  auto& u = use_[tenant];
  if (u.empty()) u.assign(cap_.size(), 0.0);
  for (std::size_t r = 0; r < cap_.size(); ++r) u[r] += demand[r];
}

void DrfLedger::release(std::uint32_t tenant, const std::vector<double>& demand) {
  if (demand.size() != cap_.size()) {
    throw std::invalid_argument("DrfLedger: demand/capacity size mismatch");
  }
  auto it = use_.find(tenant);
  if (it == use_.end()) return;
  for (std::size_t r = 0; r < cap_.size(); ++r) {
    it->second[r] = std::max(0.0, it->second[r] - demand[r]);
  }
}

double DrfLedger::dominant_share(std::uint32_t tenant) const {
  auto it = use_.find(tenant);
  if (it == use_.end()) return 0.0;
  double share = 0.0;
  for (std::size_t r = 0; r < cap_.size(); ++r) {
    share = std::max(share, it->second[r] / cap_[r]);
  }
  return share;
}

double DrfLedger::total_in_use(std::size_t resource) const {
  if (resource >= cap_.size()) throw std::out_of_range("DrfLedger: bad resource");
  double total = 0.0;
  for (const auto& [tenant, u] : use_) total += u[resource];
  return total;
}

}  // namespace hpbdc::cluster
