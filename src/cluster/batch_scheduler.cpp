#include "cluster/batch_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace hpbdc::cluster {

const char* sched_policy_name(SchedPolicy p) noexcept {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kSjf: return "sjf";
    case SchedPolicy::kEasyBackfill: return "easy-backfill";
    case SchedPolicy::kFairShare: return "fair-share";
  }
  return "?";
}

namespace {

struct Running {
  double finish;          // actual completion (simulator-known)
  double est_finish;      // start + estimate (scheduler-visible)
  std::size_t nodes;
  bool operator>(const Running& o) const noexcept { return finish > o.finish; }
};

struct SimState {
  std::size_t free_nodes;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::list<Job> queue;  // pending, arrival order
  UsageLedger usage;     // fair-share node-seconds (shared accounting type)
  double aging_rate = 0.0;
  std::uint64_t backfilled = 0;
};

void start_job(SimState& st, std::vector<JobOutcome>& out, const Job& j, double t,
               double& busy_node_seconds) {
  st.free_nodes -= j.nodes;
  st.running.push(Running{t + j.runtime, t + j.estimate, j.nodes});
  st.usage.charge(j.user, static_cast<double>(j.nodes) * j.runtime);
  busy_node_seconds += static_cast<double>(j.nodes) * j.runtime;
  JobOutcome o;
  o.id = j.id;
  o.start = t;
  o.finish = t + j.runtime;
  o.wait = t - j.arrival;
  const double denom = std::max(j.runtime, 10.0);
  o.bounded_slowdown = std::max(1.0, (o.wait + j.runtime) / denom);
  out.push_back(o);
}

/// Dispatch as many queued jobs as the policy allows at time t.
void dispatch(SimState& st, SchedPolicy policy, std::vector<JobOutcome>& out,
              double t, double& busy_node_seconds) {
  switch (policy) {
    case SchedPolicy::kFifo: {
      while (!st.queue.empty() && st.queue.front().nodes <= st.free_nodes) {
        start_job(st, out, st.queue.front(), t, busy_node_seconds);
        st.queue.pop_front();
      }
      break;
    }
    case SchedPolicy::kSjf: {
      while (!st.queue.empty()) {
        auto shortest = st.queue.begin();
        for (auto it = st.queue.begin(); it != st.queue.end(); ++it) {
          if (it->estimate < shortest->estimate ||
              (it->estimate == shortest->estimate && it->arrival < shortest->arrival)) {
            shortest = it;
          }
        }
        if (shortest->nodes > st.free_nodes) break;  // strict order, no skipping
        start_job(st, out, *shortest, t, busy_node_seconds);
        st.queue.erase(shortest);
      }
      break;
    }
    case SchedPolicy::kFairShare: {
      while (!st.queue.empty()) {
        // Effective key: accumulated usage minus the aging credit earned in
        // the queue (aged_priority). aging_rate == 0 reproduces the classic
        // usage-ordered policy exactly.
        auto key = [&st, t](const Job& j) {
          return aged_priority(st.usage.usage(j.user), t - j.arrival,
                               st.aging_rate);
        };
        auto best = st.queue.begin();
        for (auto it = st.queue.begin(); it != st.queue.end(); ++it) {
          const double u_it = key(*it);
          const double u_best = key(*best);
          if (u_it < u_best || (u_it == u_best && it->arrival < best->arrival)) {
            best = it;
          }
        }
        if (best->nodes > st.free_nodes) break;
        start_job(st, out, *best, t, busy_node_seconds);
        st.queue.erase(best);
      }
      break;
    }
    case SchedPolicy::kEasyBackfill: {
      // Start FIFO prefix.
      while (!st.queue.empty() && st.queue.front().nodes <= st.free_nodes) {
        start_job(st, out, st.queue.front(), t, busy_node_seconds);
        st.queue.pop_front();
      }
      if (st.queue.empty()) break;
      // Head blocked: compute its reservation (shadow time) from the
      // scheduler-visible estimated finish times of running jobs.
      const Job& head = st.queue.front();
      std::vector<Running> running_copy;
      {
        auto pq = st.running;
        while (!pq.empty()) {
          running_copy.push_back(pq.top());
          pq.pop();
        }
      }
      std::sort(running_copy.begin(), running_copy.end(),
                [](const Running& a, const Running& b) { return a.est_finish < b.est_finish; });
      std::size_t avail = st.free_nodes;
      double shadow = std::numeric_limits<double>::infinity();
      for (const auto& r : running_copy) {
        avail += r.nodes;
        if (avail >= head.nodes) {
          shadow = r.est_finish;
          break;
        }
      }
      // Nodes spare at the shadow time after the head's reservation.
      std::size_t at_shadow = st.free_nodes;
      for (const auto& r : running_copy) {
        if (r.est_finish <= shadow) at_shadow += r.nodes;
      }
      const std::size_t extra = at_shadow >= head.nodes ? at_shadow - head.nodes : 0;
      // Backfill pass over the rest of the queue, arrival order.
      for (auto it = std::next(st.queue.begin()); it != st.queue.end();) {
        const bool fits_now = it->nodes <= st.free_nodes;
        const bool ends_before_shadow = t + it->estimate <= shadow;
        const bool within_extra = it->nodes <= extra;
        if (fits_now && (ends_before_shadow || within_extra)) {
          start_job(st, out, *it, t, busy_node_seconds);
          ++st.backfilled;
          it = st.queue.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
  }
}

}  // namespace

ScheduleResult simulate_schedule(std::size_t cluster_nodes, SchedPolicy policy,
                                 std::vector<Job> jobs,
                                 const FairShareOptions& fair) {
  if (cluster_nodes == 0) throw std::invalid_argument("simulate_schedule: empty cluster");
  for (const auto& j : jobs) {
    if (j.nodes == 0 || j.nodes > cluster_nodes) {
      throw std::invalid_argument("simulate_schedule: infeasible job node request");
    }
    if (j.runtime < 0 || j.estimate < j.runtime) {
      throw std::invalid_argument("simulate_schedule: estimate must cover runtime");
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) { return a.arrival < b.arrival; });

  SimState st;
  st.free_nodes = cluster_nodes;
  st.usage = fair.initial_usage;
  st.aging_rate = fair.aging_rate;
  std::vector<JobOutcome> out;
  out.reserve(jobs.size());
  double busy_node_seconds = 0;
  std::size_t next_arrival = 0;
  double t = 0;

  while (next_arrival < jobs.size() || !st.running.empty() || !st.queue.empty()) {
    // Advance to the next event: completion or arrival, completions first.
    const double t_complete =
        st.running.empty() ? std::numeric_limits<double>::infinity() : st.running.top().finish;
    const double t_arrive = next_arrival < jobs.size()
                                ? jobs[next_arrival].arrival
                                : std::numeric_limits<double>::infinity();
    if (!std::isfinite(t_complete) && !std::isfinite(t_arrive)) {
      throw std::logic_error("simulate_schedule: deadlock (queued job can never start)");
    }
    t = std::min(t_complete, t_arrive);
    while (!st.running.empty() && st.running.top().finish <= t) {
      st.free_nodes += st.running.top().nodes;
      st.running.pop();
    }
    while (next_arrival < jobs.size() && jobs[next_arrival].arrival <= t) {
      st.queue.push_back(jobs[next_arrival]);
      ++next_arrival;
    }
    dispatch(st, policy, out, t, busy_node_seconds);
  }

  ScheduleResult res;
  res.jobs = std::move(out);
  res.backfilled = st.backfilled;
  if (res.jobs.empty()) return res;
  std::vector<double> waits;
  waits.reserve(res.jobs.size());
  double sum_wait = 0, sum_slow = 0;
  for (const auto& o : res.jobs) {
    res.makespan = std::max(res.makespan, o.finish);
    waits.push_back(o.wait);
    sum_wait += o.wait;
    sum_slow += o.bounded_slowdown;
  }
  std::sort(waits.begin(), waits.end());
  res.mean_wait = sum_wait / static_cast<double>(res.jobs.size());
  res.p95_wait = waits[static_cast<std::size_t>(0.95 * static_cast<double>(waits.size() - 1))];
  res.mean_bounded_slowdown = sum_slow / static_cast<double>(res.jobs.size());
  res.utilization = res.makespan > 0
                        ? busy_node_seconds /
                              (static_cast<double>(cluster_nodes) * res.makespan)
                        : 0;
  return res;
}

std::vector<Job> generate_trace(const TraceConfig& cfg, Rng& rng,
                                std::size_t cluster_nodes) {
  std::vector<Job> jobs;
  jobs.reserve(cfg.jobs);
  ZipfGenerator user_gen(cfg.users, cfg.user_zipf_theta);
  double t = 0;
  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    t += rng.next_exponential(cfg.arrival_rate);
    Job j;
    j.id = i;
    j.arrival = t;
    j.runtime = std::max(1.0, rng.next_lognormal(cfg.runtime_mu, cfg.runtime_sigma));
    j.estimate = j.runtime * (1.0 + 2.0 * rng.next_double());
    const auto k = rng.next_below(cfg.max_nodes_log2 + 1);
    j.nodes = std::min<std::size_t>(cluster_nodes, 1ULL << k);
    j.user = static_cast<std::uint32_t>(user_gen.next(rng));
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace hpbdc::cluster
