#pragma once
// Host/VM capacity model used by placement and migration. Resources are
// two-dimensional (CPU cores, RAM bytes); extending to more dimensions only
// requires touching Resources.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hpbdc::cluster {

struct Resources {
  double cpu = 0;           // cores
  std::uint64_t ram = 0;    // bytes

  bool fits_in(const Resources& cap) const noexcept {
    return cpu <= cap.cpu && ram <= cap.ram;
  }
  Resources& operator+=(const Resources& o) noexcept {
    cpu += o.cpu;
    ram += o.ram;
    return *this;
  }
  Resources& operator-=(const Resources& o) noexcept {
    cpu -= o.cpu;
    ram -= o.ram;
    return *this;
  }
};

struct VmSpec {
  std::uint64_t id = 0;
  Resources demand;
};

class Host {
 public:
  Host(std::uint64_t id, Resources capacity) : id_(id), capacity_(capacity) {}

  std::uint64_t id() const noexcept { return id_; }
  const Resources& capacity() const noexcept { return capacity_; }
  const Resources& used() const noexcept { return used_; }

  Resources free() const noexcept {
    return Resources{capacity_.cpu - used_.cpu, capacity_.ram - used_.ram};
  }

  bool can_host(const VmSpec& vm) const noexcept { return vm.demand.fits_in(free()); }

  void place(const VmSpec& vm) {
    if (!can_host(vm)) throw std::runtime_error("Host: capacity exceeded");
    used_ += vm.demand;
    vms_.push_back(vm.id);
  }

  void evict(const VmSpec& vm) {
    auto it = std::find(vms_.begin(), vms_.end(), vm.id);
    if (it == vms_.end()) throw std::runtime_error("Host: VM not present");
    vms_.erase(it);
    used_ -= vm.demand;
  }

  const std::vector<std::uint64_t>& vms() const noexcept { return vms_; }

  /// Scalar load in [0,1]: max over resource dimensions (bottleneck view).
  double load() const noexcept {
    const double c = capacity_.cpu > 0 ? used_.cpu / capacity_.cpu : 0.0;
    const double r = capacity_.ram > 0
                         ? static_cast<double>(used_.ram) / static_cast<double>(capacity_.ram)
                         : 0.0;
    return c > r ? c : r;
  }

 private:
  std::uint64_t id_;
  Resources capacity_;
  Resources used_{};
  std::vector<std::uint64_t> vms_;
};

}  // namespace hpbdc::cluster
