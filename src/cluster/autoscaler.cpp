#include "cluster/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace hpbdc::cluster {

namespace {

void validate(const AutoscalerConfig& cfg) {
  if (cfg.capacity_per_instance <= 0) throw std::invalid_argument("autoscaler: capacity");
  if (cfg.target_utilization <= 0 || cfg.target_utilization > 1) {
    throw std::invalid_argument("autoscaler: target utilization in (0,1]");
  }
  if (cfg.min_instances == 0 || cfg.min_instances > cfg.max_instances) {
    throw std::invalid_argument("autoscaler: instance bounds");
  }
  if (cfg.evaluation_period <= 0) throw std::invalid_argument("autoscaler: period");
}

struct Booting {
  double ready_at;
  std::size_t count;
};

AutoscaleResult run(const AutoscalerConfig& cfg, const std::vector<double>& load,
                    bool reactive, std::size_t static_n) {
  validate(cfg);
  AutoscaleResult res;
  res.trace.reserve(load.size());

  std::size_t running = reactive ? cfg.min_instances : static_n;
  std::deque<Booting> boot_queue;
  TargetTracker tracker(cfg.capacity_per_instance, cfg.target_utilization,
                        cfg.min_instances, cfg.max_instances,
                        cfg.scale_up_cooldown, cfg.scale_down_cooldown);
  double offered_total = 0, dropped_total = 0, util_sum = 0;

  for (std::size_t p = 0; p < load.size(); ++p) {
    const double t = static_cast<double>(p) * cfg.evaluation_period;
    // Instances whose boot completed start serving.
    while (!boot_queue.empty() && boot_queue.front().ready_at <= t) {
      running += boot_queue.front().count;
      boot_queue.pop_front();
    }
    std::size_t booting = 0;
    for (const auto& b : boot_queue) booting += b.count;

    const double rps = load[p];
    const double capacity = static_cast<double>(running) * cfg.capacity_per_instance;
    const double util = capacity > 0 ? rps / capacity : (rps > 0 ? 1e9 : 0.0);
    const double dropped = std::max(0.0, rps - capacity) * cfg.evaluation_period;

    offered_total += rps * cfg.evaluation_period;
    dropped_total += dropped;
    util_sum += std::min(1.0, util);
    res.instance_seconds +=
        static_cast<double>(running + booting) * cfg.evaluation_period;

    if (reactive) {
      // Target tracking: provision for load / (capacity * target), counting
      // capacity already booting so spikes don't trigger repeated orders.
      const TargetTracker::Decision d = tracker.decide(t, rps, running, booting);
      if (d.action == TargetTracker::Action::kUp) {
        boot_queue.push_back(Booting{t + cfg.boot_time, d.order});
        ++res.scale_ups;
      } else if (d.action == TargetTracker::Action::kDown) {
        running = d.desired;  // instant teardown
        ++res.scale_downs;
      }
    }

    res.trace.push_back(AutoscaleStep{t, rps, running, booting, util, dropped});
  }

  res.mean_utilization =
      load.empty() ? 0 : util_sum / static_cast<double>(load.size());
  res.dropped_fraction = offered_total > 0 ? dropped_total / offered_total : 0;
  return res;
}

}  // namespace

TargetTracker::TargetTracker(double capacity_per_instance,
                             double target_utilization,
                             std::size_t min_instances,
                             std::size_t max_instances,
                             double scale_up_cooldown,
                             double scale_down_cooldown)
    : capacity_per_instance_(capacity_per_instance),
      target_utilization_(target_utilization),
      min_instances_(min_instances),
      max_instances_(max_instances),
      up_cooldown_(scale_up_cooldown),
      down_cooldown_(scale_down_cooldown) {
  if (capacity_per_instance_ <= 0) {
    throw std::invalid_argument("TargetTracker: capacity");
  }
  if (target_utilization_ <= 0 || target_utilization_ > 1) {
    throw std::invalid_argument("TargetTracker: target utilization in (0,1]");
  }
  if (min_instances_ == 0 || min_instances_ > max_instances_) {
    throw std::invalid_argument("TargetTracker: instance bounds");
  }
}

TargetTracker::Decision TargetTracker::decide(double now, double load,
                                              std::size_t running,
                                              std::size_t booting) {
  Decision d;
  d.desired = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::ceil(load / (capacity_per_instance_ * target_utilization_))),
      min_instances_, max_instances_);
  const std::size_t provisioned = running + booting;
  if (d.desired > provisioned && now - last_up_ >= up_cooldown_) {
    d.action = Action::kUp;
    d.order = d.desired - provisioned;
    last_up_ = now;
  } else if (d.desired < running && booting == 0 &&
             now - last_down_ >= down_cooldown_) {
    d.action = Action::kDown;
    // desired >= min by the clamp, so the teardown floor is already applied.
    last_down_ = now;
  }
  return d;
}

AutoscaleResult simulate_autoscaler(const AutoscalerConfig& cfg,
                                    const std::vector<double>& load) {
  return run(cfg, load, /*reactive=*/true, 0);
}

AutoscaleResult simulate_static_fleet(const AutoscalerConfig& cfg, std::size_t n,
                                      const std::vector<double>& load) {
  if (n == 0) throw std::invalid_argument("static fleet: n must be >= 1");
  return run(cfg, load, /*reactive=*/false, n);
}

std::vector<double> generate_load_trace(const LoadTraceConfig& cfg, Rng& rng) {
  std::vector<double> out;
  out.reserve(cfg.periods);
  constexpr double kTwoPi = 6.283185307179586;
  const std::size_t spike_start = cfg.periods / 2;
  const std::size_t spike_end = spike_start + cfg.periods / 24 + 1;
  for (std::size_t p = 0; p < cfg.periods; ++p) {
    const double phase = kTwoPi * static_cast<double>(p) / static_cast<double>(cfg.periods);
    double rps = cfg.base_rps *
                 (1.0 + cfg.diurnal_amplitude * std::sin(phase - kTwoPi / 4));
    rps *= std::exp(cfg.noise * rng.next_gaussian());
    if (cfg.flash_crowd && p >= spike_start && p < spike_end) rps *= 3.0;
    out.push_back(std::max(0.0, rps));
  }
  return out;
}

}  // namespace hpbdc::cluster
