#include "cluster/migration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hpbdc::cluster {

namespace {
void validate(const MigrationConfig& cfg) {
  if (cfg.bandwidth_bps <= 0) throw std::invalid_argument("migration: bandwidth must be > 0");
  if (cfg.dirty_rate_bps < 0) throw std::invalid_argument("migration: negative dirty rate");
  if (cfg.vm_memory == 0) throw std::invalid_argument("migration: zero VM memory");
}
}  // namespace

MigrationResult migrate_stop_and_copy(const MigrationConfig& cfg) {
  validate(cfg);
  MigrationResult r;
  r.total_time = static_cast<double>(cfg.vm_memory) / cfg.bandwidth_bps;
  r.downtime = r.total_time;
  r.transferred = cfg.vm_memory;
  r.rounds = 1;
  return r;
}

MigrationResult migrate_pre_copy(const MigrationConfig& cfg) {
  validate(cfg);
  MigrationResult r;
  double to_send = static_cast<double>(cfg.vm_memory);
  double elapsed = 0;
  double transferred = 0;
  std::uint32_t round = 0;
  // Each round sends the pages dirtied during the previous round's transfer.
  // The dirty set cannot exceed total VM memory regardless of rate.
  while (round < cfg.max_rounds) {
    ++round;
    const double round_time = to_send / cfg.bandwidth_bps;
    elapsed += round_time;
    transferred += to_send;
    const double dirtied =
        std::min(cfg.dirty_rate_bps * round_time, static_cast<double>(cfg.vm_memory));
    if (dirtied <= static_cast<double>(cfg.stop_threshold)) {
      // Final stop-and-copy of the residual dirty set.
      const double final_time = dirtied / cfg.bandwidth_bps;
      elapsed += final_time;
      transferred += dirtied;
      r.downtime = final_time;
      r.converged = true;
      break;
    }
    to_send = dirtied;
    r.converged = false;
  }
  if (!r.converged) {
    // Round cap hit (dirty rate ~>= bandwidth): forced stop-and-copy of the
    // current dirty set — downtime degenerates toward stop-and-copy.
    const double final_time = to_send / cfg.bandwidth_bps;
    elapsed += final_time;
    transferred += to_send;
    r.downtime = final_time;
  }
  r.total_time = elapsed;
  r.transferred = static_cast<std::uint64_t>(transferred);
  r.rounds = round;
  return r;
}

MigrationResult migrate_post_copy(const MigrationConfig& cfg) {
  validate(cfg);
  MigrationResult r;
  // Downtime: only CPU/device state moves while the VM is frozen.
  r.downtime = static_cast<double>(cfg.cpu_state_bytes) / cfg.bandwidth_bps;
  // Background pull: exactly one pass over memory, plus one RTT per
  // demand-faulted page (fault_fraction of all pages).
  const double pull_time = static_cast<double>(cfg.vm_memory) / cfg.bandwidth_bps;
  const double pages = static_cast<double>(cfg.vm_memory) /
                       static_cast<double>(std::max<std::uint64_t>(1, cfg.page_size));
  const double fault_time = cfg.fault_fraction * pages * cfg.fault_rtt;
  r.total_time = r.downtime + pull_time + fault_time;
  r.transferred = cfg.vm_memory + cfg.cpu_state_bytes;
  r.rounds = 1;
  return r;
}

}  // namespace hpbdc::cluster
