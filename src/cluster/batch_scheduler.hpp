#pragma once
// HPC batch-job scheduling (experiment T3). Jobs request a node count and
// run for `runtime` seconds; the scheduler sees only the user-supplied
// `estimate` (>= runtime by convention, as in real systems where jobs are
// killed at their limit). Policies:
//   FIFO          — strict arrival order; head-of-line blocking.
//   SJF           — shortest estimate first; still blocks if the shortest
//                   job does not fit (no skipping).
//   EASY backfill — FIFO with a reservation for the head job; later jobs
//                   may jump the queue iff they cannot delay the head's
//                   reservation (Lifka '95).
//   FairShare     — queue ordered by accumulated per-user usage (node-
//                   seconds), then arrival; blocks like FIFO.
// The simulation is event-driven and deterministic.

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fair_share.hpp"
#include "common/rng.hpp"

namespace hpbdc::cluster {

struct Job {
  std::uint64_t id = 0;
  double arrival = 0;     // seconds
  double runtime = 0;     // actual execution time (unknown to scheduler)
  double estimate = 0;    // user estimate (scheduler-visible)
  std::size_t nodes = 1;  // nodes requested
  std::uint32_t user = 0;
};

enum class SchedPolicy { kFifo, kSjf, kEasyBackfill, kFairShare };

const char* sched_policy_name(SchedPolicy p) noexcept;

struct JobOutcome {
  std::uint64_t id = 0;
  double start = 0;
  double finish = 0;
  double wait = 0;
  double bounded_slowdown = 1;  // max(1, (wait+run)/max(run, 10s))
};

struct ScheduleResult {
  std::vector<JobOutcome> jobs;
  double makespan = 0;
  double mean_wait = 0;
  double p95_wait = 0;
  double mean_bounded_slowdown = 0;
  double utilization = 0;  // busy node-seconds / (nodes * makespan)
  std::uint64_t backfilled = 0;  // jobs started ahead of an earlier arrival
};

/// Fair-share knobs (ignored by the other policies). Usage accounting goes
/// through cluster::UsageLedger, the accounting shared with the serve-layer
/// DRF scheduler; aging_rate > 0 turns on the starvation guard: a queued
/// job's effective key is aged_priority(usage, wait, aging_rate), so a
/// high-usage tenant stuck behind an endless stream of fresh zero-usage
/// arrivals still runs once its aging credit outweighs the usage gap.
struct FairShareOptions {
  double aging_rate = 0.0;    // usage credit per second of queue wait
  UsageLedger initial_usage;  // pre-existing per-user balances
};

/// Simulate the full trace to completion under the given policy.
ScheduleResult simulate_schedule(std::size_t cluster_nodes, SchedPolicy policy,
                                 std::vector<Job> jobs,
                                 const FairShareOptions& fair = {});

// --- Workload generation -------------------------------------------------

struct TraceConfig {
  std::size_t jobs = 1000;
  double arrival_rate = 0.02;     // jobs/sec (Poisson)
  double runtime_mu = 6.5;        // log-normal: median ~665 s
  double runtime_sigma = 1.4;     // heavy tail, as in production traces
  std::size_t max_nodes_log2 = 5; // requests are 2^k nodes, k in [0, this]
  std::uint32_t users = 8;
  double user_zipf_theta = 0.8;   // a few users submit most jobs
};

/// Deterministic synthetic trace with production-like marginals:
/// Poisson arrivals, log-normal runtimes, power-of-two node counts,
/// zipf-skewed users. estimate = runtime * U[1, 3].
std::vector<Job> generate_trace(const TraceConfig& cfg, Rng& rng,
                                std::size_t cluster_nodes);

}  // namespace hpbdc::cluster
