#pragma once
// Update-key binary min-heap with an id -> position index, built for
// schedulers that re-score a small number of entries per event while the
// total entry count grows large. The serve-layer dispatch path keeps one
// heap per SLO class over tenant head-of-queue jobs: a submit, completion,
// or usage charge touches ONE tenant, so the re-key is O(log n) instead of
// the O(n) linear scan the service started with — the difference between
// flat and linear decision latency at 10k+ tenants.
//
// Keys must be totally ordered via operator<; lower keys pop first. Ids are
// caller-chosen (the serve layer uses tenant ids) and must be unique among
// live entries. All operations are deterministic: sift order depends only
// on the sequence of calls, never on hash iteration or addresses.

#include <cstddef>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hpbdc::cluster {

template <typename Id, typename Key>
class IndexedHeap {
 public:
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  bool contains(const Id& id) const { return pos_.count(id) != 0; }

  const Id& top_id() const { return heap_.front().id; }
  const Key& top_key() const { return heap_.front().key; }

  /// Insert a new entry; throws std::logic_error if `id` is already live
  /// (re-keying an existing entry is update()'s job, and silently doing
  /// either here would hide scheduler accounting bugs).
  void push(Id id, Key key) {
    if (contains(id)) throw std::logic_error("IndexedHeap: duplicate id");
    heap_.push_back(Entry{std::move(id), std::move(key)});
    pos_[heap_.back().id] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }

  /// Re-key a live entry and restore heap order; throws if absent.
  void update(const Id& id, Key key) {
    auto it = pos_.find(id);
    if (it == pos_.end()) throw std::logic_error("IndexedHeap: update of absent id");
    const std::size_t i = it->second;
    heap_[i].key = std::move(key);
    if (!sift_up(i)) sift_down(i);
  }

  /// Insert-or-re-key, whichever applies.
  void upsert(const Id& id, Key key) {
    if (contains(id)) {
      update(id, std::move(key));
    } else {
      push(id, std::move(key));
    }
  }

  /// Remove the minimum entry and return its id.
  Id pop() {
    if (heap_.empty()) throw std::logic_error("IndexedHeap: pop on empty heap");
    Id id = heap_.front().id;
    remove_at(0);
    return id;
  }

  /// Remove `id` if live; returns whether anything was removed.
  bool erase(const Id& id) {
    auto it = pos_.find(id);
    if (it == pos_.end()) return false;
    remove_at(it->second);
    return true;
  }

  void clear() {
    heap_.clear();
    pos_.clear();
  }

 private:
  struct Entry {
    Id id;
    Key key;
  };

  void place(std::size_t i) { pos_[heap_[i].id] = i; }

  void remove_at(std::size_t i) {
    pos_.erase(heap_[i].id);
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = std::move(heap_[last]);
      heap_.pop_back();
      place(i);
      if (!sift_up(i)) sift_down(i);
    } else {
      heap_.pop_back();
    }
  }

  bool sift_up(std::size_t i) {
    bool moved = false;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[i].key < heap_[parent].key)) break;
      std::swap(heap_[i], heap_[parent]);
      place(i);
      place(parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l].key < heap_[best].key) best = l;
      if (r < n && heap_[r].key < heap_[best].key) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      place(i);
      place(best);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::unordered_map<Id, std::size_t> pos_;
};

}  // namespace hpbdc::cluster
