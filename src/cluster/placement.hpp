#pragma once
// VM placement (online vector bin packing). Policies:
//   FirstFit — lowest-id host with room (packs left, minimizes hosts used)
//   BestFit  — feasible host with least remaining bottleneck capacity
//   WorstFit — feasible host with most remaining capacity (load spreading)
//   Random   — uniformly random feasible host (baseline)
// place_all returns the assignment plus standard packing metrics.

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/vm.hpp"
#include "common/rng.hpp"

namespace hpbdc::cluster {

enum class PlacementPolicy { kFirstFit, kBestFit, kWorstFit, kRandom };

const char* placement_policy_name(PlacementPolicy p) noexcept;

struct PlacementResult {
  /// host index per VM; nullopt = rejected (no feasible host).
  std::vector<std::optional<std::size_t>> assignment;
  std::size_t placed = 0;
  std::size_t rejected = 0;
  std::size_t hosts_used = 0;       // hosts with >=1 VM
  double mean_load = 0.0;           // over used hosts
  double max_load = 0.0;
  double load_stddev = 0.0;         // imbalance measure over all hosts
};

class Placer {
 public:
  Placer(PlacementPolicy policy, std::uint64_t seed = 42)
      : policy_(policy), rng_(seed) {}

  /// Choose a host for one VM; nullopt if none fits. Does not mutate hosts.
  std::optional<std::size_t> choose(const std::vector<Host>& hosts, const VmSpec& vm);

  /// Place a stream of VMs onto hosts (mutating them), in order.
  PlacementResult place_all(std::vector<Host>& hosts, const std::vector<VmSpec>& vms);

 private:
  PlacementPolicy policy_;
  Rng rng_;
};

}  // namespace hpbdc::cluster
