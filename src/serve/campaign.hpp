#pragma once
// Service-level chaos campaign: the serve-layer analogue of the dist-layer
// harness in src/chaos. One run derives EVERYTHING — tenant plans, arrival
// times, priorities, deadlines, and the executor-kill schedule — from a
// single seed, drives a multi-tenant open-loop workload through a
// JobService backed by a JobSlotPool, kills (and recovers) executor nodes
// mid-flight via chaos::make_kill_schedule, and checks a service-level
// oracle:
//
//   exactly-once — every submission receives EXACTLY ONE terminal
//                  completion callback: no duplicates, no lost jobs, even
//                  when a kill takes an executor out from under several
//                  concurrent jobs at once and the service retries them.
//   correctness  — every kCompleted result (executor run OR cache hit) is
//                  bit-for-bit the fault-free shared-memory reference of
//                  the plan that was submitted — a cross-tenant cache
//                  collision or cross-slot interference shows up here.
//   accounting   — the service's own stats balance: submitted ==
//                  completed + failed + shed, and the DRF ledger drains to
//                  zero when the queue does.
//   liveness     — the whole day completes within the simulated horizon.
//
// The 50-seed campaign in serve_test runs this once per seed; any failure
// prints the seed, which reproduces the entire run bit-for-bit.

#include <cstdint>
#include <string>

#include "dist/runtime.hpp"
#include "serve/service.hpp"

namespace hpbdc {
class Executor;
}

namespace hpbdc::serve {

struct CampaignConfig {
  std::uint64_t seed = 1;
  std::size_t tenants = 4;
  std::size_t jobs_per_tenant = 6;
  std::size_t distinct_plans = 3;  // < total jobs, so the cache gets hits
  std::size_t plan_nodes = 4;
  std::uint64_t rows = 96;        // rows per source node
  std::size_t cluster_nodes = 6;  // node 0 hosts the drivers
  std::size_t slots = 3;          // concurrent jobs
  std::size_t kills = 2;          // executor kill/recover pairs
  double arrival_window = 6.0;    // submissions land in (0, window)
  double deadline_fraction = 0.2; // of submissions carry a tight deadline
  double horizon = 600.0;         // liveness watchdog (simulated seconds)
};

struct CampaignOutcome {
  bool passed = true;
  std::string violation;  // first failed check; empty when passed
  std::size_t submissions = 0;
  std::size_t duplicates = 0;  // submissions with > 1 terminal callback
  std::size_t lost = 0;        // submissions with no terminal callback
  std::size_t mismatches = 0;  // completed results != reference rows
  ServeStats stats;            // the service's own view of the run
  dist::DistStats dist_stats;  // aggregate over all job slots
  double makespan = 0;
};

/// One full campaign run. `pool` executes the fault-free shared-memory
/// reference for each distinct plan. Deterministic in (cfg, pool size is
/// irrelevant): rerunning with the same config reproduces the outcome.
CampaignOutcome run_serve_campaign_once(const CampaignConfig& cfg,
                                        Executor& pool);

}  // namespace hpbdc::serve
