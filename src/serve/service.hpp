#pragma once
// Multi-tenant job service: the cloud front door of the stack. JobService
// accepts Submit{tenant, LogicalPlan, deadline, priority} requests on the
// simulated clock and pushes them through a four-step pipeline:
//
//   admission — per-tenant token-bucket rate limiting, then bounded queues
//               (per-tenant and global) with load shedding; every shed
//               carries a typed Reject reason. When the executor pool is
//               saturated AND total queue depth crosses the watermark the
//               service is in BACKPRESSURE: new work is shed immediately
//               and backpressured() tells upstream producers to pause.
//   schedule  — admitted jobs wait in per-tenant FIFO queues; each time a
//               job slot frees, the head-of-queue jobs compete on
//               dominant-resource fair share (cluster::DrfLedger over
//               {job slots, task launches, source rows}) minus a linear
//               priority/aging credit, with earliest-deadline tie-breaks.
//               Jobs whose deadline already passed are shed at dispatch.
//   execute   — the winning job lowers its OPTIMIZED plan (the optimizer
//               runs once, at admission) onto a dist::JobSlotPool slot; a
//               runtime-level failure is retried at the service level up to
//               max_dist_submits, so every admitted job gets EXACTLY ONE
//               terminal completion callback.
//   cache     — successful results enter an LRU keyed by
//               plan::fingerprint(optimized plan); a later submission with
//               the same fingerprint is answered in cache_hit_latency
//               seconds without consuming a queue entry or an executor.
//
// Everything runs on the single-threaded Simulator, so a (config, seed,
// arrival schedule) triple reproduces a whole serving day bit-for-bit —
// which is what the serve-level chaos campaign (serve/campaign.hpp) leans
// on. Metrics land under serve.* (counters, queue-depth/backpressure
// gauges, global + per-tenant latency histograms).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fair_share.hpp"
#include "dist/slots.hpp"
#include "dstream/streaming.hpp"
#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "serve/cache.hpp"

namespace hpbdc::dstream {
class StreamRuntime;
}  // namespace hpbdc::dstream

namespace hpbdc::serve {

using TenantId = std::uint32_t;

enum class Reject : std::uint8_t {
  kRateLimited,      // tenant token bucket empty
  kTenantQueueFull,  // per-tenant queue at capacity
  kGlobalQueueFull,  // service-wide queue at capacity
  kBackpressure,     // executor pool saturated + queue over the watermark
  kDeadlineExpired,  // deadline passed while queued (shed at dispatch)
};
inline constexpr std::size_t kRejectKindCount = 5;
const char* reject_name(Reject r);

enum class Status : std::uint8_t {
  kCompleted,  // rows valid (from an executor run or the result cache)
  kRejected,   // shed at admission or dispatch; reject says why
  kFailed,     // runtime failed and the retry budget is spent
};

struct SubmitRequest {
  TenantId tenant = 0;
  plan::LogicalPlan plan;
  double deadline = 0;  // absolute simulated time; 0 = none
  int priority = 0;     // higher = scheduled sooner
  /// Per-job executor options (shuffle transport + flow knobs), carried
  /// through queueing/retries down to DistRuntime::submit. Defaults = pull.
  /// Streaming jobs normally select the push transport here — the credit-
  /// paced flow channels are what give the runtime real backpressure.
  dist::RuntimeOptions runtime;
  /// Present = this is a STREAMING job: the plan lowers through
  /// dstream::lower_streaming onto the service's StreamRuntime instead of a
  /// batch slot. The job holds one pool slot for its whole run (admission
  /// and backpressure see it like any tenant), skips the result cache
  /// (continuous output is not a memoizable function of the plan), and is
  /// DRF-charged per completed epoch rather than once at job end.
  std::optional<dstream::StreamingOptions> streaming;
  /// Optimize with the stats-driven cost pass (plan::cost_optimize) instead
  /// of the rule passes alone. The cost annotations fold into the plan
  /// fingerprint (non-zero stats_salt), so cost-based and rule-only
  /// submissions of one plan never alias in the result cache.
  bool cost_based = false;
};

/// The exactly-once terminal event of a submission.
struct Completion {
  std::uint64_t job_id = 0;
  TenantId tenant = 0;
  Status status = Status::kCompleted;
  Reject reject = Reject::kRateLimited;  // meaningful when kRejected
  bool cache_hit = false;
  double submit_time = 0;
  double finish_time = 0;
  std::uint64_t fingerprint = 0;
  std::size_t dist_submits = 0;  // executor runs consumed (0 for hits/sheds)
  std::uint64_t epochs = 0;      // streaming jobs: completed epochs
  std::vector<plan::Row> rows;   // kCompleted only
  double latency() const noexcept { return finish_time - submit_time; }
};

struct ServeConfig {
  // Admission.
  double bucket_rate = 4.0;   // tokens (submissions) per sim-second per tenant
  double bucket_burst = 8.0;  // bucket depth
  std::size_t tenant_queue_cap = 16;
  std::size_t global_queue_cap = 64;
  std::size_t backpressure_watermark = 32;  // queued jobs, pool saturated
  // Scheduling. A queued job's score is the tenant's instantaneous DRF
  // dominant share plus usage_weight times its accumulated dominant-share-
  // seconds (the cluster::UsageLedger), minus the aging and priority
  // credits; lowest score dispatches first. The accumulated term is what
  // keeps scheduling fair across SEQUENTIAL jobs — with a free slot the
  // instantaneous share of every tenant is zero.
  double aging_rate = 0.02;       // dominant-share credit per queued second
  double priority_weight = 0.02;  // dominant-share credit per priority unit
  double usage_weight = 0.5;      // weight of accumulated past usage
  // Execution.
  std::size_t ntasks = 4;           // tasks per lowered dist stage
  std::size_t max_dist_submits = 3; // executor runs per job before kFailed
  // DRF capacity normalization for the non-slot resources; shares only
  // compare across tenants, so scale need not match the cluster exactly.
  double drf_work_capacity = 256;        // task launches in flight
  double drf_mem_capacity = 1 << 20;     // source rows in flight
  // Result cache.
  std::size_t cache_capacity = 128;  // entries; 0 disables caching
  double cache_hit_latency = 1e-3;   // simulated service time of a hit
};

struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;  // enqueued or served from cache
  std::uint64_t shed = 0;
  std::uint64_t shed_by[kRejectKindCount] = {};
  std::uint64_t completed = 0;  // includes cache hits
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t dist_retries = 0;  // service-level resubmits after a failure
  std::uint64_t streaming_launched = 0;
  std::uint64_t streaming_epochs = 0;  // DRF charge points across all stream jobs
  std::size_t max_queue_depth = 0;
  std::size_t max_running = 0;
};

class JobService {
 public:
  using DoneFn = std::function<void(const Completion&)>;

  /// `streams` is the (single-job) streaming backend; nullptr = streaming
  /// submissions are rejected with std::invalid_argument. Batch-only callers
  /// are unchanged.
  JobService(dist::JobSlotPool& pool, ServeConfig cfg,
             dstream::StreamRuntime* streams = nullptr);

  /// serve.* counters/gauges/histograms (global + lazy per-tenant latency).
  void bind_metrics(obs::MetricsRegistry& reg);

  /// Submit at the current simulated time. Returns the job id. `done` fires
  /// exactly once per call: synchronously for sheds, after cache_hit_latency
  /// for cache hits, and at job completion otherwise.
  std::uint64_t submit(SubmitRequest req, DoneFn done);

  /// True while the executor pool is saturated and the queue is over the
  /// watermark — upstream producers should stop submitting.
  bool backpressured() const noexcept;

  std::size_t queue_depth() const noexcept { return queued_; }
  std::size_t running() const noexcept { return running_; }
  const ServeStats& stats() const noexcept { return stats_; }
  const ServeConfig& config() const noexcept { return cfg_; }

 private:
  struct PendingJob {
    std::uint64_t id = 0;
    TenantId tenant = 0;
    double deadline = 0;
    int priority = 0;
    double submit_time = 0;
    double enqueue_time = 0;  // original admission; preserved across retries
    plan::LogicalPlan optimized;
    dist::RuntimeOptions runtime;
    std::optional<dstream::StreamingOptions> streaming;
    std::uint64_t fp = 0;
    std::vector<double> demand;  // DRF resource vector
    double demand_share = 0;     // max_r demand[r] / capacity[r]
    double launch_time = 0;  // current run; streaming: last DRF charge point
    std::size_t dist_submits = 0;
    std::uint64_t epochs = 0;  // streaming: completed epochs so far
    DoneFn done;
  };

  struct TenantState {
    double tokens = 0;
    double last_refill = 0;
    bool seen = false;
    std::deque<PendingJob> queue;
    obs::LatencyHistogram* latency = nullptr;
  };

  sim::Simulator& sim() { return pool_.simulator(); }
  TenantState& tenant_state(TenantId t);
  void refill_bucket(TenantState& ts, double now);
  void shed(std::uint64_t id, TenantId tenant, double submit_time,
            std::uint64_t fp, Reject why, DoneFn& done);
  void finish(PendingJob& job, Status status, bool cache_hit,
              std::vector<plan::Row> rows);
  void dispatch();
  void launch(PendingJob job);
  void launch_streaming(PendingJob job);
  void on_job_done(const std::shared_ptr<PendingJob>& job,
                   const dist::JobResult& res);
  void update_gauges();
  void count(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->add(n);
  }

  dist::JobSlotPool& pool_;
  ServeConfig cfg_;
  dstream::StreamRuntime* streams_ = nullptr;
  cluster::DrfLedger drf_;      // in-flight resources
  cluster::UsageLedger usage_;  // accumulated dominant-share-seconds
  LruCache<std::uint64_t, std::vector<plan::Row>> cache_;
  std::map<TenantId, TenantState> tenants_;  // ordered: deterministic scans
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::uint64_t next_id_ = 1;
  ServeStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_shed_by_[kRejectKindCount] = {};
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_cache_hit_ = nullptr;
  obs::Counter* m_cache_miss_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_running_ = nullptr;
  obs::Gauge* g_backpressure_ = nullptr;
  obs::LatencyHistogram* h_latency_ = nullptr;
};

}  // namespace hpbdc::serve
