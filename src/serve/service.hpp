#pragma once
// Multi-tenant job service: the cloud front door of the stack. JobService
// accepts Submit{tenant, LogicalPlan, deadline, priority, SLO class}
// requests on the simulated clock and pushes them through a four-step
// pipeline:
//
//   admission — per-(tenant, SLO class) token-bucket rate limiting, then
//               bounded queues (per-tenant-class and global) with load
//               shedding; every shed carries a typed Reject reason. When
//               the executor pool is saturated AND total queue depth
//               crosses a CLASS-scaled watermark the class is in
//               BACKPRESSURE: new work of that class is shed immediately.
//               Batch work sheds first (half the watermark), latency work
//               last (1.5x) — the class-aware shed order of an overloaded
//               cloud front door. backpressured() (the standard-class
//               signal) tells upstream producers to pause.
//   schedule  — admitted jobs wait in per-(tenant, class) FIFO queues; each
//               time a job slot frees, head-of-queue jobs compete on
//               dominant-resource fair share (cluster::DrfLedger over
//               {job slots, task launches, source rows}) scaled by the
//               class DRF weight, minus linear priority/aging credits,
//               with earliest-deadline tie-breaks. Jobs whose deadline
//               already passed are shed at dispatch. The scheduler keeps
//               one UPDATE-KEY HEAP per class (cluster::IndexedHeap) over
//               tenant head-of-queue keys — within a class the key order
//               is time-invariant, so aging never forces a re-sort — and
//               compares only the class winners at dispatch. Decision cost
//               is O(log tenants), not O(tenants): flat from 16 tenants to
//               10k+ (ServeStats::decisions / decision_ns is the measured
//               evidence).
//   execute   — the winning job lowers its OPTIMIZED plan (the optimizer
//               runs once, at admission) onto a dist::JobSlotPool slot; a
//               runtime-level failure is retried at the service level up to
//               max_dist_submits, so every admitted job gets EXACTLY ONE
//               terminal completion callback.
//   cache     — successful results enter an LRU keyed by
//               plan::fingerprint(optimized plan); a later submission with
//               the same fingerprint is answered in cache_hit_latency
//               seconds without consuming a queue entry or an executor.
//
// Everything runs on the single-threaded Simulator, so a (config, seed,
// arrival schedule) triple reproduces a whole serving day bit-for-bit —
// which is what the serve-level chaos campaign (serve/campaign.hpp) leans
// on. Metrics land under serve.* (counters, queue-depth/backpressure
// gauges, global + per-tenant latency histograms).
//
// The executor pool may GROW AND SHRINK underneath the service (the
// src/fleet elasticity loop): saturation, backpressure, and dispatch all
// read the pool's current slot count, and notify_capacity_changed() lets
// the fleet controller trigger a dispatch sweep after adding capacity.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fair_share.hpp"
#include "cluster/indexed_heap.hpp"
#include "dist/slots.hpp"
#include "dstream/streaming.hpp"
#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "serve/cache.hpp"

namespace hpbdc::dstream {
class StreamRuntime;
}  // namespace hpbdc::dstream

namespace hpbdc::serve {

using TenantId = std::uint32_t;

enum class Reject : std::uint8_t {
  kRateLimited,      // tenant token bucket empty
  kTenantQueueFull,  // per-tenant queue at capacity
  kGlobalQueueFull,  // service-wide queue at capacity
  kBackpressure,     // executor pool saturated + queue over the watermark
  kDeadlineExpired,  // deadline passed while queued (shed at dispatch)
};
inline constexpr std::size_t kRejectKindCount = 5;
const char* reject_name(Reject r);

/// Tenant-facing service tiers. kStandard is the default and reproduces the
/// pre-SLO service exactly (all class multipliers 1.0); kLatency holds
/// admission longest under overload and schedules soonest; kBatch is the
/// first work shed and the last scheduled.
enum class SloClass : std::uint8_t {
  kLatency = 0,
  kStandard = 1,
  kBatch = 2,
};
inline constexpr std::size_t kSloClassCount = 3;
const char* slo_name(SloClass c);

enum class Status : std::uint8_t {
  kCompleted,  // rows valid (from an executor run or the result cache)
  kRejected,   // shed at admission or dispatch; reject says why
  kFailed,     // runtime failed and the retry budget is spent
};

struct SubmitRequest {
  TenantId tenant = 0;
  plan::LogicalPlan plan;
  double deadline = 0;  // absolute simulated time; 0 = none
  int priority = 0;     // higher = scheduled sooner
  /// Per-job executor options (shuffle transport + flow knobs), carried
  /// through queueing/retries down to DistRuntime::submit. Defaults = pull.
  /// Streaming jobs normally select the push transport here — the credit-
  /// paced flow channels are what give the runtime real backpressure.
  dist::RuntimeOptions runtime;
  /// Present = this is a STREAMING job: the plan lowers through
  /// dstream::lower_streaming onto the service's StreamRuntime instead of a
  /// batch slot. The job holds one pool slot for its whole run (admission
  /// and backpressure see it like any tenant), skips the result cache
  /// (continuous output is not a memoizable function of the plan), and is
  /// DRF-charged per completed epoch rather than once at job end.
  std::optional<dstream::StreamingOptions> streaming;
  /// Optimize with the stats-driven cost pass (plan::cost_optimize) instead
  /// of the rule passes alone. The cost annotations fold into the plan
  /// fingerprint (non-zero stats_salt), so cost-based and rule-only
  /// submissions of one plan never alias in the result cache.
  bool cost_based = false;
  /// Service tier (admission, shed order, and scheduling weight all key off
  /// this; see ServeConfig::slo).
  SloClass slo = SloClass::kStandard;
};

/// The exactly-once terminal event of a submission.
struct Completion {
  std::uint64_t job_id = 0;
  TenantId tenant = 0;
  Status status = Status::kCompleted;
  Reject reject = Reject::kRateLimited;  // meaningful when kRejected
  SloClass slo = SloClass::kStandard;
  bool cache_hit = false;
  double submit_time = 0;
  double finish_time = 0;
  std::uint64_t fingerprint = 0;
  std::size_t dist_submits = 0;  // executor runs consumed (0 for hits/sheds)
  std::uint64_t epochs = 0;      // streaming jobs: completed epochs
  std::vector<plan::Row> rows;   // kCompleted only
  double latency() const noexcept { return finish_time - submit_time; }
};

/// Per-class multipliers over the base ServeConfig knobs. All 1.0 =
/// byte-identical to the classless service, which is what kStandard keeps.
struct SloClassConfig {
  double rate_mult = 1.0;            // x bucket_rate
  double burst_mult = 1.0;           // x bucket_burst
  double drf_weight = 1.0;           // burden divisor: >1 schedules sooner
  double aging_mult = 1.0;           // x aging_rate
  double priority_mult = 1.0;        // x priority_weight
  double shed_watermark_mult = 1.0;  // x backpressure_watermark: <1 sheds first
};

struct ServeConfig {
  // Admission.
  double bucket_rate = 4.0;   // tokens (submissions) per sim-second per tenant
  double bucket_burst = 8.0;  // bucket depth
  std::size_t tenant_queue_cap = 16;
  std::size_t global_queue_cap = 64;
  std::size_t backpressure_watermark = 32;  // queued jobs, pool saturated
  // Scheduling. A queued job's score is the tenant's instantaneous DRF
  // dominant share plus usage_weight times its accumulated dominant-share-
  // seconds (the cluster::UsageLedger), divided by the class DRF weight,
  // minus the aging and priority credits; lowest score dispatches first.
  // The accumulated term is what keeps scheduling fair across SEQUENTIAL
  // jobs — with a free slot the instantaneous share of every tenant is zero.
  double aging_rate = 0.02;       // dominant-share credit per queued second
  double priority_weight = 0.02;  // dominant-share credit per priority unit
  double usage_weight = 0.5;      // weight of accumulated past usage
  // Execution.
  std::size_t ntasks = 4;           // tasks per lowered dist stage
  std::size_t max_dist_submits = 3; // executor runs per job before kFailed
  // DRF capacity normalization for the non-slot resources; shares only
  // compare across tenants, so scale need not match the cluster exactly.
  double drf_work_capacity = 256;        // task launches in flight
  double drf_mem_capacity = 1 << 20;     // source rows in flight
  // Result cache.
  std::size_t cache_capacity = 128;  // entries; 0 disables caching
  double cache_hit_latency = 1e-3;   // simulated service time of a hit
  // Tier policy, indexed by SloClass. kStandard MUST stay all-1.0 to keep
  // the classless behavior; the latency/batch defaults encode the intended
  // shed order (batch first, latency last) and scheduling preference.
  SloClassConfig slo[kSloClassCount] = {
      {1.0, 1.0, 2.0, 2.0, 1.0, 1.5},  // kLatency
      {1.0, 1.0, 1.0, 1.0, 1.0, 1.0},  // kStandard
      {1.0, 1.0, 0.5, 0.5, 1.0, 0.5},  // kBatch
  };
};

struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;  // enqueued or served from cache
  std::uint64_t shed = 0;
  std::uint64_t shed_by[kRejectKindCount] = {};
  std::uint64_t shed_by_slo[kSloClassCount] = {};
  std::uint64_t completed = 0;  // includes cache hits
  std::uint64_t completed_by_slo[kSloClassCount] = {};
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t dist_retries = 0;  // service-level resubmits after a failure
  std::uint64_t streaming_launched = 0;
  std::uint64_t streaming_epochs = 0;  // DRF charge points across all stream jobs
  std::size_t max_queue_depth = 0;
  std::size_t max_running = 0;
  // Scheduler decision cost, REAL wall-clock nanoseconds (everything else
  // here is simulated time): one decision = selecting the winning
  // (tenant, class) head across the class heaps. decision_ns / decisions
  // is the per-decision latency the F17 bench tracks from 16 to 10k
  // tenants.
  std::uint64_t decisions = 0;
  std::uint64_t decision_ns = 0;
};

class JobService {
 public:
  using DoneFn = std::function<void(const Completion&)>;

  /// `streams` is the (single-job) streaming backend; nullptr = streaming
  /// submissions are rejected with std::invalid_argument. Batch-only callers
  /// are unchanged.
  JobService(dist::JobSlotPool& pool, ServeConfig cfg,
             dstream::StreamRuntime* streams = nullptr);

  /// serve.* counters/gauges/histograms (global + lazy per-tenant latency).
  void bind_metrics(obs::MetricsRegistry& reg);

  /// Submit at the current simulated time. Returns the job id. `done` fires
  /// exactly once per call: synchronously for sheds, after cache_hit_latency
  /// for cache hits, and at job completion otherwise.
  std::uint64_t submit(SubmitRequest req, DoneFn done);

  /// True while the executor pool is saturated and the queue is over the
  /// standard-class watermark — upstream producers should stop submitting.
  bool backpressured() const noexcept;

  /// The fleet controller calls this after growing the executor pool:
  /// queued work may now fit, so run a dispatch sweep. Harmless to call
  /// spuriously (shrinks included) — it only re-evaluates.
  void notify_capacity_changed();

  std::size_t queue_depth() const noexcept { return queued_; }
  std::size_t running() const noexcept { return running_; }
  const ServeStats& stats() const noexcept { return stats_; }
  const ServeConfig& config() const noexcept { return cfg_; }

 private:
  struct PendingJob {
    std::uint64_t id = 0;
    TenantId tenant = 0;
    double deadline = 0;
    int priority = 0;
    SloClass slo = SloClass::kStandard;
    double submit_time = 0;
    double enqueue_time = 0;  // original admission; preserved across retries
    plan::LogicalPlan optimized;
    dist::RuntimeOptions runtime;
    std::optional<dstream::StreamingOptions> streaming;
    std::uint64_t fp = 0;
    std::vector<double> demand;  // DRF resource vector
    double demand_share = 0;     // max_r demand[r] / capacity[r]
    double launch_time = 0;  // current run; streaming: last DRF charge point
    std::size_t dist_submits = 0;
    std::uint64_t epochs = 0;  // streaming: completed epochs so far
    DoneFn done;
  };

  struct TenantState {
    double tokens[kSloClassCount] = {};
    double last_refill[kSloClassCount] = {};
    bool seen = false;
    std::deque<PendingJob> queue[kSloClassCount];
    obs::LatencyHistogram* latency = nullptr;
  };

  /// Heap key of a (tenant, class) head-of-queue job. Within one class the
  /// relative order of keys is INDEPENDENT of the current time — the aging
  /// credit shifts every key in the class by the same amount — so entries
  /// only re-key when the tenant's burden or head job changes. The actual
  /// dispatch score is key - aging_eff * now, computed only for the
  /// per-class winners.
  struct HeapKey {
    double key = 0;
    double deadline = 0;      // head deadline, +inf when none
    std::uint64_t id = 0;     // head job id (stable final tie-break)
    bool operator<(const HeapKey& o) const noexcept {
      if (key != o.key) return key < o.key;
      if (deadline != o.deadline) return deadline < o.deadline;
      return id < o.id;
    }
  };

  sim::Simulator& sim() { return pool_.simulator(); }
  TenantState& tenant_state(TenantId t);
  void refill_bucket(TenantState& ts, SloClass c, double now);
  double aging_eff(SloClass c) const noexcept {
    return cfg_.aging_rate * cfg_.slo[static_cast<std::size_t>(c)].aging_mult;
  }
  double burden(TenantId t) const {
    return drf_.dominant_share(t) + cfg_.usage_weight * usage_.usage(t);
  }
  HeapKey head_key(TenantId t, const PendingJob& head) const;
  /// Re-derive the (tenant, class) heap entry after any mutation of the
  /// tenant's queue head or burden (enqueue, dispatch pop, DRF acquire/
  /// release, usage charge, retry requeue).
  void reindex(TenantId t, SloClass c);
  void reindex_all_classes(TenantId t);
  void shed(std::uint64_t id, TenantId tenant, SloClass slo, double submit_time,
            std::uint64_t fp, Reject why, DoneFn& done);
  void finish(PendingJob& job, Status status, bool cache_hit,
              std::vector<plan::Row> rows);
  void dispatch();
  void launch(PendingJob job);
  void launch_streaming(PendingJob job);
  void on_job_done(const std::shared_ptr<PendingJob>& job,
                   const dist::JobResult& res);
  void update_gauges();
  void count(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->add(n);
  }

  dist::JobSlotPool& pool_;
  ServeConfig cfg_;
  dstream::StreamRuntime* streams_ = nullptr;
  cluster::DrfLedger drf_;      // in-flight resources
  cluster::UsageLedger usage_;  // accumulated dominant-share-seconds
  LruCache<std::uint64_t, std::vector<plan::Row>> cache_;
  std::map<TenantId, TenantState> tenants_;  // ordered: deterministic scans
  cluster::IndexedHeap<TenantId, HeapKey> heap_[kSloClassCount];
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  std::uint64_t next_id_ = 1;
  ServeStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_shed_by_[kRejectKindCount] = {};
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_cache_hit_ = nullptr;
  obs::Counter* m_cache_miss_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Gauge* g_queue_depth_ = nullptr;
  obs::Gauge* g_running_ = nullptr;
  obs::Gauge* g_backpressure_ = nullptr;
  obs::LatencyHistogram* h_latency_ = nullptr;
};

}  // namespace hpbdc::serve
