#include "serve/campaign.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "chaos/harness.hpp"
#include "chaos/plan_gen.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "dataflow/context.hpp"
#include "dist/slots.hpp"
#include "plan/lower.hpp"
#include "plan/plan.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::serve {

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a * 0x9e3779b97f4a7c15ULL + b;
  return splitmix64(s);
}

}  // namespace

CampaignOutcome run_serve_campaign_once(const CampaignConfig& cfg,
                                        Executor& pool) {
  CampaignOutcome out;
  auto fail = [&out](const std::string& msg) {
    if (out.passed) {
      out.passed = false;
      out.violation = msg;
    }
  };

  // ---- trusted side: fault-free shared-memory reference per plan ---------
  std::vector<plan::LogicalPlan> plans;
  std::vector<Bytes> refs;
  for (std::size_t p = 0; p < cfg.distinct_plans; ++p) {
    plans.push_back(
        chaos::make_plan(mix(cfg.seed, 0xA0 + p), cfg.plan_nodes, cfg.rows));
    dataflow::Context ctx(pool);
    refs.push_back(plan::canonical_bytes(plan::lower_local(plans.back(), ctx)));
  }

  // ---- system under test: JobService over a slot pool under kills --------
  sim::Simulator sim;
  sim::NetworkConfig nc;
  nc.nodes = cfg.cluster_nodes;
  nc.topology = sim::Topology::kStar;
  nc.loss_seed = mix(cfg.seed, 1);
  sim::Network net(sim, nc);
  sim::Comm comm(sim, net);
  sim::Dfs dfs(comm, sim::DfsConfig{});

  dist::DistConfig dc;
  dc.driver = 0;
  dc.slots_per_node = 2;
  dc.heartbeat_interval = 0.1;
  dc.heartbeat_timeout = 0.5;
  dc.heartbeat_jitter = 0.01;
  dc.attempt_timeout = 10.0;
  dc.max_task_attempts = 8;
  dc.speculate = true;
  dc.seed = mix(cfg.seed, 2);
  dist::JobSlotPool slots(comm, dc, cfg.slots, &dfs);

  ServeConfig sc;
  sc.bucket_rate = 4.0;
  sc.bucket_burst = 8.0;
  sc.ntasks = 3;
  sc.cache_capacity = 64;
  JobService svc(slots, sc);

  // Kill/recover pairs fan out to every slot: one machine death hits all
  // in-flight jobs at once, which is exactly the multi-tenant failure mode
  // this campaign exists to exercise.
  for (const chaos::KillEvent& ev : chaos::make_kill_schedule(
           mix(cfg.seed, 3), cfg.cluster_nodes, dc.driver, cfg.kills,
           cfg.arrival_window + 2.0)) {
    slots.kill_node_at(ev.node, ev.kill_time);
    slots.recover_node_at(ev.node, ev.recover_time);
  }

  // ---- seed-derived open-loop workload -----------------------------------
  struct Sub {
    double at = 0;
    TenantId tenant = 0;
    std::size_t plan = 0;
    double deadline = 0;
    int priority = 0;
  };
  Rng rng(mix(cfg.seed, 4));
  std::vector<Sub> subs;
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    for (std::size_t j = 0; j < cfg.jobs_per_tenant; ++j) {
      Sub s;
      s.at = rng.next_double() * cfg.arrival_window;
      s.tenant = static_cast<TenantId>(t);
      s.plan = static_cast<std::size_t>(rng.next_below(cfg.distinct_plans));
      s.priority = static_cast<int>(rng.next_below(3));
      if (rng.next_bool(cfg.deadline_fraction)) {
        s.deadline = s.at + 0.05 + rng.next_double() * 2.0;
      }
      subs.push_back(s);
    }
  }
  out.submissions = subs.size();

  std::vector<std::size_t> fired(subs.size(), 0);
  double last_finish = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    sim.schedule_at(subs[i].at, [&, i] {
      SubmitRequest req;
      req.tenant = subs[i].tenant;
      req.plan = plans[subs[i].plan];
      req.deadline = subs[i].deadline;
      req.priority = subs[i].priority;
      svc.submit(std::move(req), [&, i](const Completion& c) {
        fired[i]++;
        last_finish = std::max(last_finish, c.finish_time);
        if (c.status == Status::kCompleted &&
            plan::canonical_bytes(c.rows) != refs[subs[i].plan]) {
          out.mismatches++;
        }
      });
    });
  }

  sim.run_until(cfg.horizon);
  out.makespan = last_finish;
  if (!sim.idle()) fail("liveness: events still pending at the horizon");

  // ---- oracle ------------------------------------------------------------
  for (std::size_t f : fired) {
    if (f == 0) out.lost++;
    if (f > 1) out.duplicates++;
  }
  if (out.lost > 0) {
    fail("exactly-once: " + std::to_string(out.lost) + " submissions lost");
  }
  if (out.duplicates > 0) {
    fail("exactly-once: " + std::to_string(out.duplicates) +
         " duplicate terminal callbacks");
  }
  if (out.mismatches > 0) {
    fail("correctness: " + std::to_string(out.mismatches) +
         " completed results differ from the reference");
  }

  out.stats = svc.stats();
  out.dist_stats = slots.aggregate_stats();
  if (out.stats.submitted != subs.size()) {
    fail("accounting: service submit count != workload size");
  }
  if (out.stats.completed + out.stats.failed + out.stats.shed !=
      out.stats.submitted) {
    fail("accounting: completed + failed + shed != submitted");
  }
  if (out.stats.failed != 0) {
    fail("recovery: " + std::to_string(out.stats.failed) +
         " jobs failed under a survivable kill schedule");
  }
  if (svc.queue_depth() != 0 || svc.running() != 0) {
    fail("accounting: queue/running not drained at quiescence");
  }
  return out;
}

}  // namespace hpbdc::serve
