#pragma once
// Bounded LRU cache, header-only. The job service keys it by the 64-bit
// fingerprint of the OPTIMIZED logical plan (plan::fingerprint): every
// operator in the IR is a deterministic function of its input multiset, so
// two plans with the same fingerprint produce the same result rows and a
// hit can answer a submission without touching an executor. Kept generic
// (any hashable key, any value) — it is a plain container with no serve
// dependencies.

#include <cstddef>
#include <list>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace hpbdc::serve {

template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("LruCache: zero capacity");
  }

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// nullptr on miss; a hit promotes the entry to most-recently-used. The
  /// pointer is valid until the next put().
  const V* get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
};

}  // namespace hpbdc::serve
