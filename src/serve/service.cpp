#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "dstream/runtime.hpp"
#include "plan/lower.hpp"
#include "plan/cost.hpp"
#include "plan/optimizer.hpp"

namespace hpbdc::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Source rows the job will materialize (the DRF memory-resource estimate).
std::uint64_t source_rows_of(const plan::LogicalPlan& p) {
  std::uint64_t rows = 0;
  for (const plan::PlanNode& nd : p.nodes) {
    if (nd.op == plan::OpKind::kSource) rows += nd.rows;
    if (nd.op == plan::OpKind::kFused && !nd.steps.empty() &&
        nd.steps.front().op == plan::OpKind::kSource) {
      rows += nd.steps.front().rows;
    }
  }
  return rows;
}

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* reject_name(Reject r) {
  switch (r) {
    case Reject::kRateLimited: return "rate_limited";
    case Reject::kTenantQueueFull: return "tenant_queue_full";
    case Reject::kGlobalQueueFull: return "global_queue_full";
    case Reject::kBackpressure: return "backpressure";
    case Reject::kDeadlineExpired: return "deadline_expired";
  }
  return "invalid";
}

const char* slo_name(SloClass c) {
  switch (c) {
    case SloClass::kLatency: return "latency";
    case SloClass::kStandard: return "standard";
    case SloClass::kBatch: return "batch";
  }
  return "invalid";
}

JobService::JobService(dist::JobSlotPool& pool, ServeConfig cfg,
                       dstream::StreamRuntime* streams)
    : pool_(pool),
      cfg_(cfg),
      streams_(streams),
      drf_({static_cast<double>(pool.slots()), cfg.drf_work_capacity,
            cfg.drf_mem_capacity}),
      cache_(std::max<std::size_t>(1, cfg.cache_capacity)) {
  if (cfg_.bucket_rate <= 0 || cfg_.bucket_burst < 1) {
    throw std::invalid_argument("JobService: bucket must admit >= 1 request");
  }
  if (cfg_.ntasks == 0) throw std::invalid_argument("JobService: zero ntasks");
  if (cfg_.max_dist_submits == 0) {
    throw std::invalid_argument("JobService: need >= 1 dist submit");
  }
  for (std::size_t c = 0; c < kSloClassCount; ++c) {
    const SloClassConfig& sc = cfg_.slo[c];
    if (sc.rate_mult <= 0 || sc.burst_mult <= 0 || sc.drf_weight <= 0 ||
        sc.shed_watermark_mult <= 0) {
      throw std::invalid_argument("JobService: SLO class multipliers must be > 0");
    }
  }
}

void JobService::bind_metrics(obs::MetricsRegistry& reg) {
  metrics_ = &reg;
  m_submitted_ = &reg.counter("serve.submitted");
  m_admitted_ = &reg.counter("serve.admitted");
  m_shed_ = &reg.counter("serve.shed");
  for (std::size_t r = 0; r < kRejectKindCount; ++r) {
    m_shed_by_[r] = &reg.counter(std::string("serve.shed.") +
                                 reject_name(static_cast<Reject>(r)));
  }
  m_completed_ = &reg.counter("serve.completed");
  m_failed_ = &reg.counter("serve.failed");
  m_cache_hit_ = &reg.counter("serve.cache_hit");
  m_cache_miss_ = &reg.counter("serve.cache_miss");
  m_retries_ = &reg.counter("serve.dist_retries");
  g_queue_depth_ = &reg.gauge("serve.queue_depth");
  g_running_ = &reg.gauge("serve.running");
  g_backpressure_ = &reg.gauge("serve.backpressure");
  h_latency_ = &reg.histogram("serve.latency");
  for (auto& [tid, ts] : tenants_) {
    ts.latency = &reg.histogram("serve.latency.tenant" + std::to_string(tid));
  }
}

bool JobService::backpressured() const noexcept {
  return pool_.saturated() &&
         static_cast<double>(queued_) >=
             static_cast<double>(cfg_.backpressure_watermark);
}

void JobService::notify_capacity_changed() {
  update_gauges();
  dispatch();
}

JobService::TenantState& JobService::tenant_state(TenantId t) {
  TenantState& ts = tenants_[t];
  if (!ts.seen) {
    ts.seen = true;
    for (std::size_t c = 0; c < kSloClassCount; ++c) {
      ts.tokens[c] = cfg_.bucket_burst * cfg_.slo[c].burst_mult;
      ts.last_refill[c] = sim().now();
    }
    if (metrics_ != nullptr) {
      ts.latency = &metrics_->histogram("serve.latency.tenant" + std::to_string(t));
    }
  }
  return ts;
}

void JobService::refill_bucket(TenantState& ts, SloClass c, double now) {
  const std::size_t ci = static_cast<std::size_t>(c);
  const double rate = cfg_.bucket_rate * cfg_.slo[ci].rate_mult;
  const double burst = cfg_.bucket_burst * cfg_.slo[ci].burst_mult;
  ts.tokens[ci] =
      std::min(burst, ts.tokens[ci] + (now - ts.last_refill[ci]) * rate);
  ts.last_refill[ci] = now;
}

JobService::HeapKey JobService::head_key(TenantId t,
                                         const PendingJob& head) const {
  const std::size_t ci = static_cast<std::size_t>(head.slo);
  HeapKey k;
  // Time-invariant within the class: the dispatch-time score is
  //   key - aging_eff(class) * now
  // and `now` is common to every entry of one class heap.
  k.key = burden(t) / cfg_.slo[ci].drf_weight +
          aging_eff(head.slo) * head.enqueue_time -
          cfg_.priority_weight * cfg_.slo[ci].priority_mult *
              static_cast<double>(head.priority);
  k.deadline = head.deadline > 0 ? head.deadline : kInf;
  k.id = head.id;
  return k;
}

void JobService::reindex(TenantId t, SloClass c) {
  const std::size_t ci = static_cast<std::size_t>(c);
  auto it = tenants_.find(t);
  if (it == tenants_.end() || it->second.queue[ci].empty()) {
    heap_[ci].erase(t);
    return;
  }
  heap_[ci].upsert(t, head_key(t, it->second.queue[ci].front()));
}

void JobService::reindex_all_classes(TenantId t) {
  for (std::size_t c = 0; c < kSloClassCount; ++c) {
    reindex(t, static_cast<SloClass>(c));
  }
}

void JobService::update_gauges() {
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->set(static_cast<std::int64_t>(queued_));
  }
  if (g_running_ != nullptr) g_running_->set(static_cast<std::int64_t>(running_));
  if (g_backpressure_ != nullptr) g_backpressure_->set(backpressured() ? 1 : 0);
}

void JobService::shed(std::uint64_t id, TenantId tenant, SloClass slo,
                      double submit_time, std::uint64_t fp, Reject why,
                      DoneFn& done) {
  stats_.shed++;
  stats_.shed_by[static_cast<std::size_t>(why)]++;
  stats_.shed_by_slo[static_cast<std::size_t>(slo)]++;
  count(m_shed_);
  count(m_shed_by_[static_cast<std::size_t>(why)]);
  Completion c;
  c.job_id = id;
  c.tenant = tenant;
  c.status = Status::kRejected;
  c.reject = why;
  c.slo = slo;
  c.submit_time = submit_time;
  c.finish_time = sim().now();
  c.fingerprint = fp;
  if (done) done(c);
}

void JobService::finish(PendingJob& job, Status status, bool cache_hit,
                        std::vector<plan::Row> rows) {
  Completion c;
  c.job_id = job.id;
  c.tenant = job.tenant;
  c.status = status;
  c.cache_hit = cache_hit;
  c.slo = job.slo;
  c.submit_time = job.submit_time;
  c.finish_time = sim().now();
  c.fingerprint = job.fp;
  c.dist_submits = job.dist_submits;
  c.epochs = job.epochs;
  c.rows = std::move(rows);
  if (status == Status::kCompleted) {
    stats_.completed++;
    stats_.completed_by_slo[static_cast<std::size_t>(job.slo)]++;
    count(m_completed_);
    if (h_latency_ != nullptr) h_latency_->record(c.latency());
    TenantState& ts = tenant_state(job.tenant);
    if (ts.latency != nullptr) ts.latency->record(c.latency());
  } else {
    stats_.failed++;
    count(m_failed_);
  }
  if (job.done) job.done(c);
}

std::uint64_t JobService::submit(SubmitRequest req, DoneFn done) {
  if (req.streaming.has_value() && streams_ == nullptr) {
    throw std::invalid_argument(
        "JobService: streaming submission without a StreamRuntime backend");
  }
  const double now = sim().now();
  const std::uint64_t id = next_id_++;
  const std::size_t ci = static_cast<std::size_t>(req.slo);
  stats_.submitted++;
  count(m_submitted_);

  // 1. Per-(tenant, class) token bucket.
  TenantState& ts = tenant_state(req.tenant);
  refill_bucket(ts, req.slo, now);
  if (ts.tokens[ci] < 1.0) {
    shed(id, req.tenant, req.slo, now, 0, Reject::kRateLimited, done);
    return id;
  }
  ts.tokens[ci] -= 1.0;

  // Class-scaled backpressure: the pool is saturated and the queue crossed
  // this class's watermark. Batch crosses first (0.5x), latency last (1.5x)
  // — the shed order of an overloaded multi-tier front door.
  const auto class_backpressured = [&] {
    return pool_.saturated() &&
           static_cast<double>(queued_) >=
               static_cast<double>(cfg_.backpressure_watermark) *
                   cfg_.slo[ci].shed_watermark_mult;
  };

  // With the result cache disabled there is nothing to gain from optimizing
  // a request that is about to be shed — and at bench scale (a million
  // submissions against an overloaded service) the optimizer would dominate
  // the run. Sheds taken here report fingerprint 0, exactly like the
  // rate-limit shed above. With the cache ON the optimizer must run first
  // (the cache can absorb a submission that queue bounds would shed), so
  // the classless ordering is preserved.
  if (cfg_.cache_capacity == 0) {
    if (class_backpressured()) {
      shed(id, req.tenant, req.slo, now, 0, Reject::kBackpressure, done);
      return id;
    }
    if (ts.queue[ci].size() >= cfg_.tenant_queue_cap) {
      shed(id, req.tenant, req.slo, now, 0, Reject::kTenantQueueFull, done);
      return id;
    }
    if (queued_ >= cfg_.global_queue_cap) {
      shed(id, req.tenant, req.slo, now, 0, Reject::kGlobalQueueFull, done);
      return id;
    }
  }

  // 2. Optimize once; everything downstream (cache key, scheduling demand,
  // execution) works on the optimized plan.
  PendingJob job;
  job.id = id;
  job.tenant = req.tenant;
  job.deadline = req.deadline;
  job.priority = req.priority;
  job.slo = req.slo;
  job.submit_time = now;
  job.enqueue_time = now;
  job.optimized =
      req.cost_based ? plan::cost_optimize(req.plan) : plan::optimize(req.plan);
  job.runtime = req.runtime;
  job.streaming = req.streaming;
  job.fp = plan::fingerprint(job.optimized);
  const std::size_t job_ntasks =
      job.streaming.has_value() ? job.streaming->ntasks : cfg_.ntasks;
  job.demand = {1.0,
                static_cast<double>((job.optimized.nodes.size() + 1) * job_ntasks),
                static_cast<double>(source_rows_of(job.optimized))};
  for (std::size_t r = 0; r < job.demand.size(); ++r) {
    job.demand_share =
        std::max(job.demand_share, job.demand[r] / drf_.capacities()[r]);
  }
  job.done = std::move(done);

  // 3. Result cache: a hit consumes no queue entry and no executor.
  // Streaming jobs bypass it entirely — lookup AND insert — since a
  // continuous job's output depends on source timing and epoch cadence, not
  // just the plan fingerprint, and must never answer (or poison) a batch
  // submission of the same plan.
  if (cfg_.cache_capacity > 0 && !job.streaming.has_value()) {
    if (const auto* rows = cache_.get(job.fp)) {
      stats_.admitted++;
      stats_.cache_hits++;
      count(m_admitted_);
      count(m_cache_hit_);
      auto sp = std::make_shared<PendingJob>(std::move(job));
      sp->dist_submits = 0;
      std::vector<plan::Row> copy = *rows;
      sim().schedule_after(cfg_.cache_hit_latency,
                           [this, sp, copy = std::move(copy)]() mutable {
                             finish(*sp, Status::kCompleted, true, std::move(copy));
                           });
      return id;
    }
    stats_.cache_misses++;
    count(m_cache_miss_);
  }

  // 4. Load shedding: backpressure first (overload), then queue bounds.
  if (cfg_.cache_capacity > 0) {
    if (class_backpressured()) {
      shed(id, req.tenant, req.slo, now, job.fp, Reject::kBackpressure, job.done);
      return id;
    }
    if (ts.queue[ci].size() >= cfg_.tenant_queue_cap) {
      shed(id, req.tenant, req.slo, now, job.fp, Reject::kTenantQueueFull,
           job.done);
      return id;
    }
    if (queued_ >= cfg_.global_queue_cap) {
      shed(id, req.tenant, req.slo, now, job.fp, Reject::kGlobalQueueFull,
           job.done);
      return id;
    }
  }

  // 5. Admit and try to dispatch immediately.
  stats_.admitted++;
  count(m_admitted_);
  ts.queue[ci].push_back(std::move(job));
  queued_++;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_);
  if (ts.queue[ci].size() == 1) reindex(req.tenant, req.slo);  // new head
  update_gauges();
  dispatch();
  return id;
}

void JobService::dispatch() {
  // (tenant, class) entries whose head is a streaming job while the stream
  // backend is busy: popped for the duration of this sweep so batch work
  // behind OTHER tenants still dispatches, then re-derived at the end.
  std::vector<std::pair<TenantId, SloClass>> parked;
  while (!pool_.saturated()) {
    const double now = sim().now();
    const std::uint64_t t0 = wall_ns();
    // Compare only the per-class heap tops: within a class the heap order
    // IS the score order (the aging term is a class-wide constant shift).
    std::size_t best_class = kSloClassCount;
    double best_score = kInf, best_deadline = kInf;
    std::uint64_t best_id = 0;
    for (std::size_t c = 0; c < kSloClassCount; ++c) {
      if (heap_[c].empty()) continue;
      const HeapKey& k = heap_[c].top_key();
      const double score = k.key - aging_eff(static_cast<SloClass>(c)) * now;
      if (best_class == kSloClassCount || score < best_score ||
          (score == best_score &&
           (k.deadline < best_deadline ||
            (k.deadline == best_deadline && k.id < best_id)))) {
        best_class = c;
        best_score = score;
        best_deadline = k.deadline;
        best_id = k.id;
      }
    }
    stats_.decisions++;
    stats_.decision_ns += wall_ns() - t0;
    if (best_class == kSloClassCount) break;
    const TenantId tid = heap_[best_class].top_id();
    TenantState& ts = tenants_.at(tid);
    auto& queue = ts.queue[best_class];
    // The streaming backend runs one job at a time; a streaming head waits
    // (without blocking other tenants' batch competitors) until the previous
    // stream finishes and frees both the backend and its slot.
    if (queue.front().streaming.has_value() && streams_->busy()) {
      heap_[best_class].pop();
      parked.emplace_back(tid, static_cast<SloClass>(best_class));
      continue;
    }
    PendingJob job = std::move(queue.front());
    queue.pop_front();
    queued_--;
    reindex(tid, static_cast<SloClass>(best_class));
    if (job.deadline > 0 && now > job.deadline) {
      // Too late to be useful: shed instead of burning an executor on it.
      shed(job.id, job.tenant, job.slo, job.submit_time, job.fp,
           Reject::kDeadlineExpired, job.done);
      continue;
    }
    launch(std::move(job));
  }
  for (const auto& [tid, c] : parked) reindex(tid, c);
  update_gauges();
}

void JobService::launch(PendingJob job) {
  if (job.streaming.has_value()) {
    launch_streaming(std::move(job));
    return;
  }
  drf_.acquire(job.tenant, job.demand);
  reindex_all_classes(job.tenant);  // burden went up
  running_++;
  stats_.max_running = std::max(stats_.max_running, running_);
  job.launch_time = sim().now();
  job.dist_submits++;
  auto sp = std::make_shared<PendingJob>(std::move(job));
  pool_.submit(plan::lower_dist(sp->optimized, cfg_.ntasks), sp->runtime,
               [this, sp](const dist::JobResult& r) { on_job_done(sp, r); });
}

void JobService::launch_streaming(PendingJob job) {
  // The job holds resources for its WHOLE lifetime: one pool slot (so batch
  // admission, saturation, and backpressure all see the stream as a running
  // tenant) plus its DRF demand vector. Usage, by contrast, accrues per
  // completed epoch — a long-lived stream steadily loses scheduling priority
  // to its tenant's batch jobs instead of looking free until it ends.
  drf_.acquire(job.tenant, job.demand);
  reindex_all_classes(job.tenant);
  running_++;
  stats_.max_running = std::max(stats_.max_running, running_);
  stats_.streaming_launched++;
  job.launch_time = sim().now();
  job.dist_submits++;
  const std::size_t slot = pool_.reserve_slot();
  auto sp = std::make_shared<PendingJob>(std::move(job));
  dstream::StreamJobSpec spec =
      dstream::lower_streaming(sp->optimized, *sp->streaming);
  streams_->submit(
      std::move(spec), sp->runtime,
      [this, sp, slot](const dstream::StreamResult& r) {
        usage_.charge(sp->tenant,
                      sp->demand_share * (sim().now() - sp->launch_time));
        drf_.release(sp->tenant, sp->demand);
        reindex_all_classes(sp->tenant);
        running_--;
        pool_.release_slot(slot);
        std::vector<plan::Row> rows;
        if (r.ok) {
          rows.reserve(r.committed.size());
          for (const dstream::CommittedRow& c : r.committed) {
            rows.push_back(c.row.row);
          }
        }
        // No service-level retry: the stream runtime already recovers from
        // node deaths internally, so a terminal failure here is structural.
        finish(*sp, r.ok ? Status::kCompleted : Status::kFailed, false,
               std::move(rows));
        update_gauges();
        dispatch();
      },
      [this, sp](std::uint64_t /*epoch*/, double /*sink_watermark*/) {
        const double now = sim().now();
        usage_.charge(sp->tenant,
                      sp->demand_share * (now - sp->launch_time));
        reindex_all_classes(sp->tenant);
        sp->launch_time = now;
        sp->epochs++;
        stats_.streaming_epochs++;
      });
}

void JobService::on_job_done(const std::shared_ptr<PendingJob>& job,
                             const dist::JobResult& res) {
  drf_.release(job->tenant, job->demand);
  running_--;
  // Executor time was consumed whether or not the run succeeded: charge the
  // tenant its dominant-share-seconds so fairness holds across sequential
  // jobs, not just concurrent ones.
  usage_.charge(job->tenant,
                job->demand_share * (sim().now() - job->launch_time));
  if (res.ok) {
    std::vector<plan::Row> rows = plan::rows_from_result(res);
    if (cfg_.cache_capacity > 0) cache_.put(job->fp, rows);
    reindex_all_classes(job->tenant);
    finish(*job, Status::kCompleted, false, std::move(rows));
  } else if (job->dist_submits < cfg_.max_dist_submits) {
    // Runtime-level failure (e.g. attempt budget burned by a node death):
    // retry from the front of the tenant's queue, keeping the original
    // enqueue time so the aging credit carries over. The terminal callback
    // fires only once, after the final attempt — exactly-once is on the
    // service, not the caller.
    stats_.dist_retries++;
    count(m_retries_);
    const TenantId tid = job->tenant;
    const SloClass slo = job->slo;
    tenant_state(tid).queue[static_cast<std::size_t>(slo)].push_front(
        std::move(*job));
    queued_++;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_);
    reindex_all_classes(tid);  // burden dropped AND the head changed
  } else {
    reindex_all_classes(job->tenant);
    finish(*job, Status::kFailed, false, {});
  }
  update_gauges();
  dispatch();
}

}  // namespace hpbdc::serve
