#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "dstream/runtime.hpp"
#include "plan/lower.hpp"
#include "plan/cost.hpp"
#include "plan/optimizer.hpp"

namespace hpbdc::serve {

namespace {

/// Source rows the job will materialize (the DRF memory-resource estimate).
std::uint64_t source_rows_of(const plan::LogicalPlan& p) {
  std::uint64_t rows = 0;
  for (const plan::PlanNode& nd : p.nodes) {
    if (nd.op == plan::OpKind::kSource) rows += nd.rows;
    if (nd.op == plan::OpKind::kFused && !nd.steps.empty() &&
        nd.steps.front().op == plan::OpKind::kSource) {
      rows += nd.steps.front().rows;
    }
  }
  return rows;
}

}  // namespace

const char* reject_name(Reject r) {
  switch (r) {
    case Reject::kRateLimited: return "rate_limited";
    case Reject::kTenantQueueFull: return "tenant_queue_full";
    case Reject::kGlobalQueueFull: return "global_queue_full";
    case Reject::kBackpressure: return "backpressure";
    case Reject::kDeadlineExpired: return "deadline_expired";
  }
  return "invalid";
}

JobService::JobService(dist::JobSlotPool& pool, ServeConfig cfg,
                       dstream::StreamRuntime* streams)
    : pool_(pool),
      cfg_(cfg),
      streams_(streams),
      drf_({static_cast<double>(pool.slots()), cfg.drf_work_capacity,
            cfg.drf_mem_capacity}),
      cache_(std::max<std::size_t>(1, cfg.cache_capacity)) {
  if (cfg_.bucket_rate <= 0 || cfg_.bucket_burst < 1) {
    throw std::invalid_argument("JobService: bucket must admit >= 1 request");
  }
  if (cfg_.ntasks == 0) throw std::invalid_argument("JobService: zero ntasks");
  if (cfg_.max_dist_submits == 0) {
    throw std::invalid_argument("JobService: need >= 1 dist submit");
  }
}

void JobService::bind_metrics(obs::MetricsRegistry& reg) {
  metrics_ = &reg;
  m_submitted_ = &reg.counter("serve.submitted");
  m_admitted_ = &reg.counter("serve.admitted");
  m_shed_ = &reg.counter("serve.shed");
  for (std::size_t r = 0; r < kRejectKindCount; ++r) {
    m_shed_by_[r] = &reg.counter(std::string("serve.shed.") +
                                 reject_name(static_cast<Reject>(r)));
  }
  m_completed_ = &reg.counter("serve.completed");
  m_failed_ = &reg.counter("serve.failed");
  m_cache_hit_ = &reg.counter("serve.cache_hit");
  m_cache_miss_ = &reg.counter("serve.cache_miss");
  m_retries_ = &reg.counter("serve.dist_retries");
  g_queue_depth_ = &reg.gauge("serve.queue_depth");
  g_running_ = &reg.gauge("serve.running");
  g_backpressure_ = &reg.gauge("serve.backpressure");
  h_latency_ = &reg.histogram("serve.latency");
  for (auto& [tid, ts] : tenants_) {
    ts.latency = &reg.histogram("serve.latency.tenant" + std::to_string(tid));
  }
}

bool JobService::backpressured() const noexcept {
  return pool_.saturated() && queued_ >= cfg_.backpressure_watermark;
}

JobService::TenantState& JobService::tenant_state(TenantId t) {
  TenantState& ts = tenants_[t];
  if (!ts.seen) {
    ts.seen = true;
    ts.tokens = cfg_.bucket_burst;
    ts.last_refill = sim().now();
    if (metrics_ != nullptr) {
      ts.latency = &metrics_->histogram("serve.latency.tenant" + std::to_string(t));
    }
  }
  return ts;
}

void JobService::refill_bucket(TenantState& ts, double now) {
  ts.tokens = std::min(cfg_.bucket_burst,
                       ts.tokens + (now - ts.last_refill) * cfg_.bucket_rate);
  ts.last_refill = now;
}

void JobService::update_gauges() {
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->set(static_cast<std::int64_t>(queued_));
  }
  if (g_running_ != nullptr) g_running_->set(static_cast<std::int64_t>(running_));
  if (g_backpressure_ != nullptr) g_backpressure_->set(backpressured() ? 1 : 0);
}

void JobService::shed(std::uint64_t id, TenantId tenant, double submit_time,
                      std::uint64_t fp, Reject why, DoneFn& done) {
  stats_.shed++;
  stats_.shed_by[static_cast<std::size_t>(why)]++;
  count(m_shed_);
  count(m_shed_by_[static_cast<std::size_t>(why)]);
  Completion c;
  c.job_id = id;
  c.tenant = tenant;
  c.status = Status::kRejected;
  c.reject = why;
  c.submit_time = submit_time;
  c.finish_time = sim().now();
  c.fingerprint = fp;
  if (done) done(c);
}

void JobService::finish(PendingJob& job, Status status, bool cache_hit,
                        std::vector<plan::Row> rows) {
  Completion c;
  c.job_id = job.id;
  c.tenant = job.tenant;
  c.status = status;
  c.cache_hit = cache_hit;
  c.submit_time = job.submit_time;
  c.finish_time = sim().now();
  c.fingerprint = job.fp;
  c.dist_submits = job.dist_submits;
  c.epochs = job.epochs;
  c.rows = std::move(rows);
  if (status == Status::kCompleted) {
    stats_.completed++;
    count(m_completed_);
    if (h_latency_ != nullptr) h_latency_->record(c.latency());
    TenantState& ts = tenant_state(job.tenant);
    if (ts.latency != nullptr) ts.latency->record(c.latency());
  } else {
    stats_.failed++;
    count(m_failed_);
  }
  if (job.done) job.done(c);
}

std::uint64_t JobService::submit(SubmitRequest req, DoneFn done) {
  if (req.streaming.has_value() && streams_ == nullptr) {
    throw std::invalid_argument(
        "JobService: streaming submission without a StreamRuntime backend");
  }
  const double now = sim().now();
  const std::uint64_t id = next_id_++;
  stats_.submitted++;
  count(m_submitted_);

  // 1. Per-tenant token bucket.
  TenantState& ts = tenant_state(req.tenant);
  refill_bucket(ts, now);
  if (ts.tokens < 1.0) {
    shed(id, req.tenant, now, 0, Reject::kRateLimited, done);
    return id;
  }
  ts.tokens -= 1.0;

  // 2. Optimize once; everything downstream (cache key, scheduling demand,
  // execution) works on the optimized plan.
  PendingJob job;
  job.id = id;
  job.tenant = req.tenant;
  job.deadline = req.deadline;
  job.priority = req.priority;
  job.submit_time = now;
  job.enqueue_time = now;
  job.optimized =
      req.cost_based ? plan::cost_optimize(req.plan) : plan::optimize(req.plan);
  job.runtime = req.runtime;
  job.streaming = req.streaming;
  job.fp = plan::fingerprint(job.optimized);
  const std::size_t job_ntasks =
      job.streaming.has_value() ? job.streaming->ntasks : cfg_.ntasks;
  job.demand = {1.0,
                static_cast<double>((job.optimized.nodes.size() + 1) * job_ntasks),
                static_cast<double>(source_rows_of(job.optimized))};
  for (std::size_t r = 0; r < job.demand.size(); ++r) {
    job.demand_share =
        std::max(job.demand_share, job.demand[r] / drf_.capacities()[r]);
  }
  job.done = std::move(done);

  // 3. Result cache: a hit consumes no queue entry and no executor.
  // Streaming jobs bypass it entirely — lookup AND insert — since a
  // continuous job's output depends on source timing and epoch cadence, not
  // just the plan fingerprint, and must never answer (or poison) a batch
  // submission of the same plan.
  if (cfg_.cache_capacity > 0 && !job.streaming.has_value()) {
    if (const auto* rows = cache_.get(job.fp)) {
      stats_.admitted++;
      stats_.cache_hits++;
      count(m_admitted_);
      count(m_cache_hit_);
      auto sp = std::make_shared<PendingJob>(std::move(job));
      sp->dist_submits = 0;
      std::vector<plan::Row> copy = *rows;
      sim().schedule_after(cfg_.cache_hit_latency,
                           [this, sp, copy = std::move(copy)]() mutable {
                             finish(*sp, Status::kCompleted, true, std::move(copy));
                           });
      return id;
    }
    stats_.cache_misses++;
    count(m_cache_miss_);
  }

  // 4. Load shedding: backpressure first (overload), then queue bounds.
  if (backpressured()) {
    shed(id, req.tenant, now, job.fp, Reject::kBackpressure, job.done);
    return id;
  }
  if (ts.queue.size() >= cfg_.tenant_queue_cap) {
    shed(id, req.tenant, now, job.fp, Reject::kTenantQueueFull, job.done);
    return id;
  }
  if (queued_ >= cfg_.global_queue_cap) {
    shed(id, req.tenant, now, job.fp, Reject::kGlobalQueueFull, job.done);
    return id;
  }

  // 5. Admit and try to dispatch immediately.
  stats_.admitted++;
  count(m_admitted_);
  ts.queue.push_back(std::move(job));
  queued_++;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_);
  update_gauges();
  dispatch();
  return id;
}

void JobService::dispatch() {
  while (!pool_.saturated()) {
    const double now = sim().now();
    // Head-of-queue jobs compete on dominant share minus priority/aging
    // credit; earliest deadline breaks ties, then lowest id (stable).
    constexpr double kInf = std::numeric_limits<double>::infinity();
    TenantState* best_ts = nullptr;
    double best_score = kInf, best_deadline = kInf;
    std::uint64_t best_id = 0;
    for (auto& [tid, ts] : tenants_) {
      if (ts.queue.empty()) continue;
      const PendingJob& head = ts.queue.front();
      // The streaming backend runs one job at a time; a streaming head waits
      // (without blocking the tenant's batch competitors elsewhere) until the
      // previous stream finishes and frees both the backend and its slot.
      if (head.streaming.has_value() && streams_->busy()) continue;
      const double burden = drf_.dominant_share(tid) +
                            cfg_.usage_weight * usage_.usage(tid);
      const double score =
          cluster::aged_priority(burden, now - head.enqueue_time,
                                 cfg_.aging_rate) -
          cfg_.priority_weight * static_cast<double>(head.priority);
      const double dl = head.deadline > 0 ? head.deadline : kInf;
      if (best_ts == nullptr || score < best_score ||
          (score == best_score &&
           (dl < best_deadline || (dl == best_deadline && head.id < best_id)))) {
        best_ts = &ts;
        best_score = score;
        best_deadline = dl;
        best_id = head.id;
      }
    }
    if (best_ts == nullptr) break;
    PendingJob job = std::move(best_ts->queue.front());
    best_ts->queue.pop_front();
    queued_--;
    if (job.deadline > 0 && now > job.deadline) {
      // Too late to be useful: shed instead of burning an executor on it.
      shed(job.id, job.tenant, job.submit_time, job.fp,
           Reject::kDeadlineExpired, job.done);
      continue;
    }
    launch(std::move(job));
  }
  update_gauges();
}

void JobService::launch(PendingJob job) {
  if (job.streaming.has_value()) {
    launch_streaming(std::move(job));
    return;
  }
  drf_.acquire(job.tenant, job.demand);
  running_++;
  stats_.max_running = std::max(stats_.max_running, running_);
  job.launch_time = sim().now();
  job.dist_submits++;
  auto sp = std::make_shared<PendingJob>(std::move(job));
  pool_.submit(plan::lower_dist(sp->optimized, cfg_.ntasks), sp->runtime,
               [this, sp](const dist::JobResult& r) { on_job_done(sp, r); });
}

void JobService::launch_streaming(PendingJob job) {
  // The job holds resources for its WHOLE lifetime: one pool slot (so batch
  // admission, saturation, and backpressure all see the stream as a running
  // tenant) plus its DRF demand vector. Usage, by contrast, accrues per
  // completed epoch — a long-lived stream steadily loses scheduling priority
  // to its tenant's batch jobs instead of looking free until it ends.
  drf_.acquire(job.tenant, job.demand);
  running_++;
  stats_.max_running = std::max(stats_.max_running, running_);
  stats_.streaming_launched++;
  job.launch_time = sim().now();
  job.dist_submits++;
  const std::size_t slot = pool_.reserve_slot();
  auto sp = std::make_shared<PendingJob>(std::move(job));
  dstream::StreamJobSpec spec =
      dstream::lower_streaming(sp->optimized, *sp->streaming);
  streams_->submit(
      std::move(spec), sp->runtime,
      [this, sp, slot](const dstream::StreamResult& r) {
        usage_.charge(sp->tenant,
                      sp->demand_share * (sim().now() - sp->launch_time));
        drf_.release(sp->tenant, sp->demand);
        running_--;
        pool_.release_slot(slot);
        std::vector<plan::Row> rows;
        if (r.ok) {
          rows.reserve(r.committed.size());
          for (const dstream::CommittedRow& c : r.committed) {
            rows.push_back(c.row.row);
          }
        }
        // No service-level retry: the stream runtime already recovers from
        // node deaths internally, so a terminal failure here is structural.
        finish(*sp, r.ok ? Status::kCompleted : Status::kFailed, false,
               std::move(rows));
        update_gauges();
        dispatch();
      },
      [this, sp](std::uint64_t /*epoch*/, double /*sink_watermark*/) {
        const double now = sim().now();
        usage_.charge(sp->tenant,
                      sp->demand_share * (now - sp->launch_time));
        sp->launch_time = now;
        sp->epochs++;
        stats_.streaming_epochs++;
      });
}

void JobService::on_job_done(const std::shared_ptr<PendingJob>& job,
                             const dist::JobResult& res) {
  drf_.release(job->tenant, job->demand);
  running_--;
  // Executor time was consumed whether or not the run succeeded: charge the
  // tenant its dominant-share-seconds so fairness holds across sequential
  // jobs, not just concurrent ones.
  usage_.charge(job->tenant,
                job->demand_share * (sim().now() - job->launch_time));
  if (res.ok) {
    std::vector<plan::Row> rows = plan::rows_from_result(res);
    if (cfg_.cache_capacity > 0) cache_.put(job->fp, rows);
    finish(*job, Status::kCompleted, false, std::move(rows));
  } else if (job->dist_submits < cfg_.max_dist_submits) {
    // Runtime-level failure (e.g. attempt budget burned by a node death):
    // retry from the front of the tenant's queue, keeping the original
    // enqueue time so the aging credit carries over. The terminal callback
    // fires only once, after the final attempt — exactly-once is on the
    // service, not the caller.
    stats_.dist_retries++;
    count(m_retries_);
    tenant_state(job->tenant).queue.push_front(std::move(*job));
    queued_++;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queued_);
  } else {
    finish(*job, Status::kFailed, false, {});
  }
  update_gauges();
  dispatch();
}

}  // namespace hpbdc::serve
