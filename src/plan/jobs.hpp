#pragma once
// Named-job plan builders: the wordcount/terasort shapes from dist/jobs.hpp
// expressed in the plan IR, so the optimizer can be measured on recognizable
// workloads (bench_t11) and not just on generated chaos DAGs.
//
//   wordcount_plan : source → flat_map (tokenize) → reduce_by_key (count).
//                    The optimizer fuses source+flat_map into one stage and
//                    inserts a map-side combine ahead of the shuffle — with
//                    kKeyDomain distinct keys per task, the combine collapses
//                    the shuffled bytes to at most kKeyDomain rows per task.
//   terasort_plan  : source → map (key remix) → sort_by. The optimizer fuses
//                    source+map, removing one full hash-partitioned stage.

#include "common/hash.hpp"
#include "plan/plan.hpp"

namespace hpbdc::plan {

inline LogicalPlan wordcount_plan(std::uint64_t rows, std::uint64_t seed = 7) {
  LogicalPlan p;
  p.seed = seed;
  p.rows_per_source = rows;
  PlanNode src;
  src.op = OpKind::kSource;
  src.salt = mix64(seed * 0x9e3779b97f4a7c15ULL + 1);
  src.rows = rows;
  PlanNode tok;
  tok.op = OpKind::kFlatMap;
  tok.left = 0;
  tok.salt = mix64(seed * 0x9e3779b97f4a7c15ULL + 2);
  PlanNode cnt;
  cnt.op = OpKind::kReduceByKey;
  cnt.left = 1;
  p.nodes = {src, tok, cnt};
  p.sinks = {2};
  return p;
}

inline LogicalPlan terasort_plan(std::uint64_t rows, std::uint64_t seed = 11) {
  LogicalPlan p;
  p.seed = seed;
  p.rows_per_source = rows;
  PlanNode src;
  src.op = OpKind::kSource;
  src.salt = mix64(seed * 0x9e3779b97f4a7c15ULL + 1);
  src.rows = rows;
  PlanNode remix;
  remix.op = OpKind::kMap;
  remix.left = 0;
  remix.salt = mix64(seed * 0x9e3779b97f4a7c15ULL + 2);
  PlanNode sort;
  sort.op = OpKind::kSortBy;
  sort.left = 1;
  sort.salt = mix64(seed * 0x9e3779b97f4a7c15ULL + 3);
  p.nodes = {src, remix, sort};
  p.sinks = {2};
  return p;
}

}  // namespace hpbdc::plan
