#include "plan/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"
#include "common/sketch.hpp"

namespace hpbdc::plan {

namespace {

/// Expected distinct keys after n uniform draws over a domain of d keys
/// (coupon-collector coverage). Saturates at d, linear for n << d.
double expected_distinct(double n, double d) {
  if (d <= 0) return 0;
  if (n <= 0) return 0;
  return d * (1.0 - std::exp(-n / d));
}

void sort_hot(std::vector<HotKey>& hot, std::size_t cap) {
  std::sort(hot.begin(), hot.end(), [](const HotKey& a, const HotKey& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  if (hot.size() > cap) hot.resize(cap);
}

/// Sketch a source: HLL for NDV, CMS for heavy hitters, both over a prefix
/// sample (prefixes of source_rows_ex are themselves exact: each row
/// consumes a fixed number of RNG draws). The linear NDV scale-up
/// overestimates for sparse domains, but the key_bound cap makes it exact
/// in the saturated case — which every star-schema domain here is.
NodeStats sketch_source(std::uint64_t salt, std::uint64_t rows,
                        std::uint64_t key_domain, std::uint64_t skew,
                        bool distinct_keys, std::uint64_t key_bound,
                        const StatsOptions& opts) {
  NodeStats st;
  st.rows = static_cast<double>(rows);
  st.key_bound = key_bound;
  const std::uint64_t sample_n = std::min<std::uint64_t>(rows, opts.sample_rows);
  if (sample_n == 0) return st;
  const auto sample =
      source_rows_ex(salt, sample_n, key_domain, skew, distinct_keys);
  HyperLogLog hll(opts.hll_precision);
  CountMinSketch cms(opts.cms_epsilon, opts.cms_delta);
  for (const Row& r : sample) {
    hll.add(hash_u64(r.first));
    cms.add(hash_u64(r.first));
  }
  const double scale = static_cast<double>(rows) / static_cast<double>(sample_n);
  st.ndv = std::min(static_cast<double>(key_bound), hll.estimate() * scale);
  // Heavy hitters: every distinct sampled key whose CMS estimate clears the
  // hot threshold. CMS only overestimates, so a truly hot key is never
  // missed; a false positive only costs a wasted salt.
  const auto threshold = static_cast<std::uint64_t>(
      opts.hot_fraction * static_cast<double>(sample_n));
  std::vector<std::uint64_t> keys;
  keys.reserve(sample.size());
  for (const Row& r : sample) keys.push_back(r.first);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (std::uint64_t k : keys) {
    const std::uint64_t est = cms.estimate(hash_u64(k));
    if (est >= threshold && threshold > 0) {
      st.hot.push_back(
          {k, static_cast<std::uint64_t>(static_cast<double>(est) * scale)});
    }
  }
  sort_hot(st.hot, opts.max_hot_keys);
  return st;
}

/// Propagate stats through one narrow/wide unary operator.
NodeStats apply_op(NodeStats in, OpKind op, std::uint64_t salt,
                   const StatsOptions& opts) {
  NodeStats out = std::move(in);
  switch (op) {
    case OpKind::kMap:
    case OpKind::kFlatMap:
      // Key remix into the default domain (flat_map emits 0..2 rows per
      // input, expectation 1). Hot keys do not survive a remix.
      out.key_bound = kKeyDomain;
      out.ndv = expected_distinct(out.rows, static_cast<double>(kKeyDomain));
      out.hot.clear();
      break;
    case OpKind::kFilter: {
      // Salted hash of (key, value): an even coin per row, uniform across
      // keys — counts halve everywhere.
      out.rows *= 0.5;
      for (HotKey& h : out.hot) h.count /= 2;
      out.ndv = std::min(out.ndv, out.rows);
      break;
    }
    case OpKind::kFilterKey: {
      // The predicate reads ONLY the key, so hot keys are decided exactly;
      // the uniform half of the key space still halves.
      double hot_before = 0, hot_after = 0;
      std::vector<HotKey> kept;
      for (const HotKey& h : out.hot) {
        hot_before += static_cast<double>(h.count);
        if (filter_key_keep({h.key, 0}, salt)) {
          hot_after += static_cast<double>(h.count);
          kept.push_back(h);
        }
      }
      out.hot = std::move(kept);
      out.rows = std::max(0.0, (out.rows - hot_before) * 0.5 + hot_after);
      out.ndv = std::min(out.ndv * 0.5, out.rows);
      break;
    }
    case OpKind::kMapValues:
    case OpKind::kSortBy:
      break;  // key-preserving row-preserving
    case OpKind::kDistinct:
      // Values are salted 64-bit mixes, so (key, value) pairs are nearly
      // all distinct already — treated as row-preserving.
      break;
    case OpKind::kReduceByKey:
      out.rows = out.ndv;
      out.hot.clear();  // one row per key: no key is hot anymore
      break;
    case OpKind::kSource:
    case OpKind::kJoin:
    case OpKind::kFused:
      break;  // handled by the caller
  }
  (void)opts;
  return out;
}

NodeStats join_stats(const NodeStats& l, const NodeStats& r,
                     const StatsOptions& opts) {
  NodeStats out;
  out.key_bound = std::min(l.key_bound, r.key_bound);
  const double max_ndv = std::max({l.ndv, r.ndv, 1.0});
  out.rows = l.rows * r.rows / max_ndv;
  out.ndv = std::min({l.ndv, r.ndv, out.rows});
  // A hot key on one side fans out by the other side's average key
  // multiplicity; hot on both sides multiplies.
  const double l_mult = l.ndv > 0 ? std::max(1.0, l.rows / l.ndv) : 1.0;
  const double r_mult = r.ndv > 0 ? std::max(1.0, r.rows / r.ndv) : 1.0;
  auto count_on = [](const std::vector<HotKey>& hot, std::uint64_t k) {
    for (const HotKey& h : hot) {
      if (h.key == k) return h.count;
    }
    return std::uint64_t{0};
  };
  for (const HotKey& h : l.hot) {
    const std::uint64_t rc = count_on(r.hot, h.key);
    const double c = rc != 0 ? static_cast<double>(h.count) * static_cast<double>(rc)
                             : static_cast<double>(h.count) * r_mult;
    out.hot.push_back({h.key, static_cast<std::uint64_t>(c)});
  }
  for (const HotKey& h : r.hot) {
    if (count_on(l.hot, h.key) != 0) continue;  // merged above
    out.hot.push_back(
        {h.key, static_cast<std::uint64_t>(static_cast<double>(h.count) * l_mult)});
  }
  sort_hot(out.hot, opts.max_hot_keys);
  return out;
}

}  // namespace

std::vector<NodeStats> collect_stats(const LogicalPlan& plan,
                                     const StatsOptions& opts) {
  const std::vector<std::uint64_t> bounds = key_upper_bounds(plan);
  std::vector<NodeStats> stats(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    switch (nd.op) {
      case OpKind::kSource:
        stats[i] = sketch_source(nd.salt, nd.rows, nd.key_domain, nd.skew,
                                 nd.distinct_keys,
                                 nd.key_domain == 0 ? kKeyDomain : nd.key_domain,
                                 opts);
        break;
      case OpKind::kJoin:
        stats[i] = join_stats(stats[nd.left], stats[nd.right], opts);
        break;
      case OpKind::kFused: {
        NodeStats cur;
        std::size_t first = 0;
        if (nd.steps.front().op == OpKind::kSource) {
          const NarrowStep& s = nd.steps.front();
          cur = sketch_source(s.salt, s.rows, s.key_domain, s.skew,
                              s.distinct_keys,
                              s.key_domain == 0 ? kKeyDomain : s.key_domain,
                              opts);
          first = 1;
        } else {
          cur = stats[nd.left];
        }
        for (std::size_t s = first; s < nd.steps.size(); ++s) {
          cur = apply_op(std::move(cur), nd.steps[s].op, nd.steps[s].salt, opts);
        }
        stats[i] = std::move(cur);
        break;
      }
      default:
        stats[i] = apply_op(stats[nd.left], nd.op, nd.salt, opts);
        break;
    }
    stats[i].key_bound = bounds[i];
    stats[i].ndv = std::min(stats[i].ndv, static_cast<double>(bounds[i]));
  }
  return stats;
}

}  // namespace hpbdc::plan
