#include "plan/optimizer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace hpbdc::plan {

namespace {
constexpr std::size_t kNone = PlanNode::kNoParent;
}  // namespace

LogicalPlan optimize(const LogicalPlan& in, OptimizerStats* stats_out,
                     obs::MetricsRegistry* metrics) {
  OptimizerStats st;
  // Work on a stable-id graph: nodes keep their original indices, rewrites
  // flip `alive` flags and re-point edges, and a deterministic topological
  // renumbering happens once at emission.
  std::vector<PlanNode> g = in.nodes;
  std::vector<bool> alive(g.size(), true);
  std::vector<std::size_t> sinks = in.sinks;

  // Consumer edges are recounted on demand: plans are small (tens of nodes)
  // and recounting keeps every rewrite trivially consistent.
  auto sole_consumer = [&](std::size_t id) -> std::size_t {
    std::size_t found = kNone, edges = 0;
    for (std::size_t j = 0; j < g.size(); ++j) {
      if (!alive[j]) continue;
      if (g[j].left == id) { found = j; ++edges; }
      if (g[j].right == id) { found = j; ++edges; }
    }
    return edges == 1 ? found : kNone;
  };
  auto is_sink = [&](std::size_t id) {
    return std::find(sinks.begin(), sinks.end(), id) != sinks.end();
  };
  // Re-point every consumer edge and sink entry of `from` at `to`.
  auto repoint = [&](std::size_t from, std::size_t to) {
    for (std::size_t j = 0; j < g.size(); ++j) {
      if (!alive[j]) continue;
      if (g[j].left == from) g[j].left = to;
      if (g[j].right == from) g[j].right = to;
    }
    for (std::size_t& s : sinks) {
      if (s == from) s = to;
    }
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // ---- rule: prune_dead — non-sink nodes with no path to a sink --------
    {
      std::vector<bool> reach(g.size(), false);
      std::vector<std::size_t> stack;
      for (std::size_t s : sinks) {
        if (!reach[s]) { reach[s] = true; stack.push_back(s); }
      }
      while (!stack.empty()) {
        const std::size_t id = stack.back();
        stack.pop_back();
        for (const std::size_t p : {g[id].left, g[id].right}) {
          if (p != kNone && !reach[p]) { reach[p] = true; stack.push_back(p); }
        }
      }
      for (std::size_t id = 0; id < g.size(); ++id) {
        if (alive[id] && !reach[id]) {
          alive[id] = false;
          ++st.prune_dead;
          ++st.stages_eliminated;
          changed = true;
        }
      }
    }

    // ---- rule: shuffle_elim — identity wide ops over unique inputs -------
    // A reduce_by_key (or distinct) fed directly by a reduce_by_key sees one
    // row per key, so it is a multiset identity; distinct after distinct
    // likewise. The node's input is already hash-partitioned on the same key
    // by the upstream wide op, so dropping it removes an entire shuffle.
    for (std::size_t id = 0; id < g.size(); ++id) {
      if (!alive[id]) continue;
      const PlanNode& nd = g[id];
      if (nd.left == kNone || !alive[nd.left]) continue;
      const OpKind pop = g[nd.left].op;
      const bool identity =
          (nd.op == OpKind::kReduceByKey && pop == OpKind::kReduceByKey) ||
          (nd.op == OpKind::kDistinct &&
           (pop == OpKind::kReduceByKey || pop == OpKind::kDistinct));
      if (!identity) continue;
      repoint(id, nd.left);
      alive[id] = false;
      ++st.shuffle_elim;
      ++st.stages_eliminated;
      changed = true;
    }

    // ---- rule: push_filter — move filters toward the source --------------
    for (std::size_t id = 0; id < g.size(); ++id) {
      if (!alive[id]) continue;
      if (g[id].op != OpKind::kFilter && g[id].op != OpKind::kFilterKey) continue;
      const std::size_t p = g[id].left;
      if (p == kNone || !alive[p] || is_sink(p)) continue;
      if (sole_consumer(p) != id) continue;
      const OpKind pop = g[p].op;
      // Row-preserving ops commute with any row predicate; a key-preserving
      // map commutes with a key-only predicate.
      const bool commutes =
          pop == OpKind::kSortBy || pop == OpKind::kDistinct ||
          (g[id].op == OpKind::kFilterKey && pop == OpKind::kMapValues);
      if (!commutes || g[p].left == kNone) continue;
      const std::size_t gp = g[p].left;
      repoint(id, p);  // consumers (and sink entries) of the filter → upstream op
      g[id].left = gp;
      g[p].left = id;
      ++st.push_filter;
      changed = true;
    }

    // ---- rule: combine — map-side combine ahead of reduce_by_key ---------
    for (std::size_t id = 0; id < g.size(); ++id) {
      if (!alive[id]) continue;
      if (g[id].op != OpKind::kReduceByKey) continue;
      const std::size_t p = g[id].left;
      if (p == kNone || !alive[p] || is_sink(p)) continue;
      if (sole_consumer(p) != id) continue;
      // A reduce's output is already one row per key; pre-combining it again
      // would be a per-stage no-op cost.
      if (g[p].op == OpKind::kReduceByKey || g[p].combine_output) continue;
      g[p].combine_output = true;
      ++st.combine;
      changed = true;
    }

    // ---- rule: fuse_narrow — pipeline single-consumer narrow chains ------
    // The child may itself be an already-fused pipeline (as long as it has a
    // parent, i.e. no source head): its steps splice onto the parent's.
    for (std::size_t id = 0; id < g.size(); ++id) {
      if (!alive[id]) continue;
      if (!is_narrow(g[id].op) && g[id].op != OpKind::kFused) continue;
      const std::size_t p = g[id].left;
      if (p == kNone || !alive[p] || is_sink(p)) continue;
      if (sole_consumer(p) != id) continue;
      PlanNode& pn = g[p];
      if (!is_narrow(pn.op) && pn.op != OpKind::kSource &&
          pn.op != OpKind::kFused) {
        continue;
      }
      // combine_output marks a shuffle boundary; it is only ever set when
      // the sole consumer is a reduce, so a narrow consumer rules it out.
      if (pn.combine_output) continue;
      if (pn.op != OpKind::kFused) {
        // A source head carries its shape into the step so step_source_rows
        // reproduces the node's rows exactly.
        pn.steps = {NarrowStep{pn.op, pn.salt, pn.rows, pn.key_domain, pn.skew,
                               pn.distinct_keys}};
        pn.op = OpKind::kFused;
      }
      if (g[id].op == OpKind::kFused) {
        pn.steps.insert(pn.steps.end(), g[id].steps.begin(), g[id].steps.end());
      } else {
        pn.steps.push_back(NarrowStep{g[id].op, g[id].salt, 0});
      }
      pn.checkpoint = pn.checkpoint || g[id].checkpoint;
      pn.combine_output = g[id].combine_output;
      repoint(id, p);
      alive[id] = false;
      ++st.fuse_narrow;
      ++st.stages_eliminated;
      changed = true;
    }
  }

  // ---- emission: deterministic topological renumbering --------------------
  // Min-id Kahn order. On an already-optimized (topo-ordered) plan this is
  // the identity permutation, which together with the rules' fixpoint makes
  // optimize() idempotent.
  const std::size_t n = g.size();
  std::vector<std::size_t> order;
  std::vector<bool> emitted(n, false);
  order.reserve(n);
  for (;;) {
    std::size_t pick = kNone;
    for (std::size_t id = 0; id < n; ++id) {
      if (!alive[id] || emitted[id]) continue;
      const bool lok = g[id].left == kNone || emitted[g[id].left];
      const bool rok = g[id].right == kNone || emitted[g[id].right];
      if (lok && rok) { pick = id; break; }
    }
    if (pick == kNone) break;
    emitted[pick] = true;
    order.push_back(pick);
  }

  LogicalPlan out;
  out.seed = in.seed;
  out.rows_per_source = in.rows_per_source;
  out.stats_salt = in.stats_salt;
  std::vector<std::size_t> remap(n, kNone);
  for (std::size_t k = 0; k < order.size(); ++k) remap[order[k]] = k;
  for (const std::size_t id : order) {
    PlanNode nd = g[id];
    if (nd.left != kNone) nd.left = remap[nd.left];
    if (nd.right != kNone) nd.right = remap[nd.right];
    out.nodes.push_back(std::move(nd));
  }
  out.sinks.reserve(sinks.size());
  for (const std::size_t s : sinks) out.sinks.push_back(remap[s]);

  if (stats_out) *stats_out = st;
  if (metrics) {
    metrics->counter("plan.rules_applied.fuse_narrow").add(st.fuse_narrow);
    metrics->counter("plan.rules_applied.push_filter").add(st.push_filter);
    metrics->counter("plan.rules_applied.combine").add(st.combine);
    metrics->counter("plan.rules_applied.shuffle_elim").add(st.shuffle_elim);
    metrics->counter("plan.rules_applied.prune_dead").add(st.prune_dead);
    metrics->counter("plan.stages_eliminated").add(st.stages_eliminated);
  }
  return out;
}

}  // namespace hpbdc::plan
