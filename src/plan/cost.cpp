#include "plan/cost.hpp"

#include <algorithm>
#include <cmath>

#include "plan/optimizer.hpp"

namespace hpbdc::plan {

namespace {

bool is_filter_step(OpKind k) {
  return k == OpKind::kFilter || k == OpKind::kFilterKey;
}

/// Reorder every maximal run of consecutive filter steps inside
/// source-rooted fused chains by measured pass rate, cheapest (most
/// selective) first. Row predicates commute as multiset operators, so any
/// permutation of a filter run computes the same output — only the work
/// per surviving row changes. Chains without a source head are left alone:
/// sampling their input would mean executing the upstream plan.
std::size_t reorder_fused_filters(LogicalPlan& plan, const CostOptions& opts) {
  std::size_t reordered = 0;
  for (PlanNode& nd : plan.nodes) {
    if (nd.op != OpKind::kFused) continue;
    if (nd.steps.front().op != OpKind::kSource) continue;
    const NarrowStep& head = nd.steps.front();
    const std::uint64_t sample_n =
        std::min<std::uint64_t>(head.rows, opts.reorder_sample_rows);
    if (sample_n == 0) continue;
    // Prefixes of source_rows_ex are exact: each row consumes a fixed
    // number of RNG draws.
    std::vector<Row> rows = source_rows_ex(head.salt, sample_n, head.key_domain,
                                           head.skew, head.distinct_keys);
    std::size_t s = 1;
    while (s < nd.steps.size()) {
      if (!is_filter_step(nd.steps[s].op)) {
        // Advance the sample through the non-filter stretch so the next
        // filter run is measured on its true input distribution.
        std::size_t next = s;
        while (next < nd.steps.size() && !is_filter_step(nd.steps[next].op)) {
          ++next;
        }
        std::vector<NarrowStep> mid(
            nd.steps.begin() + static_cast<std::ptrdiff_t>(s),
            nd.steps.begin() + static_cast<std::ptrdiff_t>(next));
        rows = apply_steps(mid, 0, std::move(rows));
        s = next;
        continue;
      }
      std::size_t e = s;
      while (e < nd.steps.size() && is_filter_step(nd.steps[e].op)) ++e;
      if (e - s >= 2) {
        // Measure each filter independently on the rows entering the run.
        struct Rated {
          NarrowStep step;
          double pass;
          std::size_t orig;
        };
        std::vector<Rated> run;
        for (std::size_t f = s; f < e; ++f) {
          const NarrowStep& st = nd.steps[f];
          std::size_t kept = 0;
          for (const Row& r : rows) {
            kept += st.op == OpKind::kFilter ? filter_keep(r, st.salt)
                                             : filter_key_keep(r, st.salt);
          }
          run.push_back({st,
                         rows.empty() ? 1.0
                                      : static_cast<double>(kept) /
                                            static_cast<double>(rows.size()),
                         f});
        }
        std::stable_sort(run.begin(), run.end(),
                         [](const Rated& a, const Rated& b) {
                           return a.pass < b.pass;
                         });
        bool changed = false;
        for (std::size_t f = 0; f < run.size(); ++f) {
          changed = changed || run[f].orig != s + f;
          nd.steps[s + f] = run[f].step;
        }
        if (changed) ++reordered;
      }
      // Advance the sample through the (possibly reordered) run.
      for (std::size_t f = s; f < e; ++f) {
        const NarrowStep st = nd.steps[f];
        std::erase_if(rows, [&st](const Row& r) {
          return st.op == OpKind::kFilter ? !filter_keep(r, st.salt)
                                          : !filter_key_keep(r, st.salt);
        });
      }
      s = e;
    }
  }
  return reordered;
}

void annotate_joins(LogicalPlan& plan, const std::vector<NodeStats>& stats,
                    const CostOptions& opts, CostReport& rep) {
  for (PlanNode& nd : plan.nodes) {
    if (nd.op != OpKind::kJoin) continue;
    const NodeStats& l = stats[nd.left];
    const NodeStats& r = stats[nd.right];
    nd.build_left = l.rows <= r.rows;
    if (!nd.build_left) ++rep.joins_flipped;
    const NodeStats& probe = nd.build_left ? r : l;
    double hot_weight = 0;
    for (const HotKey& h : probe.hot) hot_weight += static_cast<double>(h.count);
    hot_weight = probe.rows > 0 ? hot_weight / probe.rows : 0;
    if (hot_weight >= opts.hot_weight_threshold && !probe.hot.empty()) {
      nd.salt_fanout = std::clamp<std::uint32_t>(
          static_cast<std::uint32_t>(std::ceil(hot_weight * 16.0)), 2,
          opts.max_fanout);
      nd.hot_keys.clear();
      nd.hot_keys.reserve(probe.hot.size());
      for (const HotKey& h : probe.hot) nd.hot_keys.push_back(h.key);
      std::sort(nd.hot_keys.begin(), nd.hot_keys.end());
      ++rep.joins_salted;
    } else {
      nd.salt_fanout = 0;
      nd.hot_keys.clear();
    }
  }
}

}  // namespace

LogicalPlan cost_optimize(const LogicalPlan& in, const CostOptions& opts,
                          CostReport* report) {
  CostReport rep;
  // Rules first: fusion builds the chains the filter reorder works on.
  LogicalPlan p = optimize(in);
  rep.filters_reordered = reorder_fused_filters(p, opts);
  // Rules again: reordering is structure-preserving, but the contract is
  // "rule passes before and after costing" and optimize() is idempotent,
  // so this is cheap insurance against future reorder rules that do expose
  // rewrites.
  p = optimize(p);
  rep.stats = collect_stats(p, opts.stats);
  annotate_joins(p, rep.stats, opts, rep);
  p.stats_salt = opts.stats.stats_salt;
  if (report) *report = rep;
  return p;
}

}  // namespace hpbdc::plan
