#include <algorithm>

#include "common/hash.hpp"
#include "dataflow/vectorized.hpp"
#include "plan/lower.hpp"

namespace hpbdc::plan {

namespace {

using dataflow::columnar::RowBlock;

/// One narrow step as a tight columnar loop over the whole block. Each step
/// is per-row, so running steps as successive block passes equals the
/// row-at-a-time pipeline on the same multiset.
RowBlock apply_step_block(Executor& ex, RowBlock b, const NarrowStep& st) {
  const std::uint64_t salt = st.salt;
  switch (st.op) {
    case OpKind::kMap:
      dataflow::columnar::transform_block(
          ex, b, [salt](std::uint64_t& k, std::uint64_t& v) {
            const Row r = map_row({k, v}, salt);
            k = r.first;
            v = r.second;
          });
      return b;
    case OpKind::kMapValues:
      dataflow::columnar::transform_block(
          ex, b, [salt](std::uint64_t& k, std::uint64_t& v) {
            v = map_value_row({k, v}, salt).second;
          });
      return b;
    case OpKind::kFilter:
      dataflow::columnar::filter_block(
          ex, b, [salt](std::uint64_t k, std::uint64_t v) {
            return filter_keep({k, v}, salt);
          });
      return b;
    case OpKind::kFilterKey:
      dataflow::columnar::filter_block(
          ex, b, [salt](std::uint64_t k, std::uint64_t) {
            return filter_key_keep({k, 0}, salt);
          });
      return b;
    case OpKind::kFlatMap:
      return dataflow::columnar::expand_block(
          ex, b, [salt](std::uint64_t k, std::uint64_t v, RowBlock& out) {
            std::vector<Row> rows;
            flat_map_row({k, v}, salt, rows);
            for (const Row& r : rows) out.push(r.first, r.second);
          });
    default:
      return b;  // source heads are materialized by the caller
  }
}

RowBlock reduce_block(Executor& ex, const RowBlock& b, std::uint64_t bound) {
  auto combine = [](std::uint64_t a, std::uint64_t c) {
    return reduce_combine(a, c);
  };
  if (bound <= kDenseReduceMaxDomain) {
    return dataflow::columnar::dense_reduce_by_key(ex, b, bound, combine);
  }
  return dataflow::columnar::sorted_reduce_by_key(ex, b, combine);
}

}  // namespace

std::vector<Row> lower_columnar(const LogicalPlan& plan, Executor& ex) {
  const std::vector<std::uint64_t> bounds = key_upper_bounds(plan);
  std::vector<RowBlock> built(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    switch (nd.op) {
      case OpKind::kSource:
        built[i] = dataflow::columnar::from_rows(node_source_rows(nd));
        break;
      case OpKind::kMap:
      case OpKind::kMapValues:
      case OpKind::kFilter:
      case OpKind::kFilterKey:
      case OpKind::kFlatMap:
        built[i] = apply_step_block(ex, built[nd.left],
                                    NarrowStep{nd.op, nd.salt, 0});
        break;
      case OpKind::kFused: {
        RowBlock b;
        std::size_t first = 0;
        if (nd.steps.front().op == OpKind::kSource) {
          b = dataflow::columnar::from_rows(step_source_rows(nd.steps.front()));
          first = 1;
        } else {
          b = built[nd.left];
        }
        for (std::size_t s = first; s < nd.steps.size(); ++s) {
          b = apply_step_block(ex, std::move(b), nd.steps[s]);
        }
        built[i] = std::move(b);
        break;
      }
      case OpKind::kReduceByKey:
        built[i] = reduce_block(ex, built[nd.left], bounds[nd.left]);
        break;
      case OpKind::kJoin: {
        // build_left is the cost model's hint; output values are oriented
        // (left, right) regardless, so both build sides emit the same
        // multiset. salt_fanout sub-splits oversized probe partitions.
        const RowBlock& l = built[nd.left];
        const RowBlock& r = built[nd.right];
        if (nd.build_left) {
          built[i] = dataflow::columnar::radix_hash_join(
              ex, l, r, nd.salt_fanout,
              [](std::uint64_t k, std::uint64_t bv, std::uint64_t pv,
                 RowBlock& out) {
                const Row j = join_rows(k, bv, pv);
                out.push(j.first, j.second);
              });
        } else {
          built[i] = dataflow::columnar::radix_hash_join(
              ex, r, l, nd.salt_fanout,
              [](std::uint64_t k, std::uint64_t bv, std::uint64_t pv,
                 RowBlock& out) {
                const Row j = join_rows(k, pv, bv);
                out.push(j.first, j.second);
              });
        }
        break;
      }
      case OpKind::kSortBy: {
        const std::uint64_t salt = nd.salt;
        auto rows = dataflow::columnar::to_rows(built[nd.left]);
        parallel_sort(ex, rows.begin(), rows.end(),
                      [salt](const Row& a, const Row& b) {
                        const auto ka = sort_key(a, salt), kb = sort_key(b, salt);
                        return ka != kb ? ka < kb : a < b;
                      });
        built[i] = dataflow::columnar::from_rows(rows);
        break;
      }
      case OpKind::kDistinct: {
        auto rows = dataflow::columnar::to_rows(built[nd.left]);
        parallel_sort(ex, rows.begin(), rows.end());
        rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
        built[i] = dataflow::columnar::from_rows(rows);
        break;
      }
    }
    // combine_output is deliberately a no-op here: the optimizer only sets
    // it when the node's sole consumer is a kReduceByKey (and the node is
    // not a sink), and the downstream reduce collapses each key completely
    // — pre-combining changes per-key row counts mid-plan but never the
    // sink multiset. The columnar reduce is already one pass, so the
    // map-side combine would be pure overhead.
  }
  RowBlock out;
  for (std::size_t s : plan.sinks) {
    dataflow::columnar::append(out, built[s]);
  }
  return dataflow::columnar::to_rows(out);
}

}  // namespace hpbdc::plan
