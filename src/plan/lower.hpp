#pragma once
// The three physical lowerings of a plan::LogicalPlan: row-at-a-time on the
// shared-memory dataflow engine (lower_local), staged on the distributed
// runtime (lower_dist), and vectorized batch-at-a-time over column blocks
// (lower_columnar). All consume raw, rule-optimized, and cost-optimized
// plans alike — fused nodes run their pipeline in one pass (map_partitions
// locally, one dist stage remotely, tight per-column loops columnar) and
// combine_output inserts a per-partition/per-task map-side combine before
// the boundary — so the chaos differential oracle can execute any plan on
// every backend and compare it bit-for-bit against the raw reference.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataflow/dataset.hpp"
#include "dist/job.hpp"
#include "exec/executor.hpp"
#include "plan/plan.hpp"

namespace hpbdc::plan {

/// Execute on the shared-memory dataflow engine and collect the sink union.
std::vector<Row> lower_local(const LogicalPlan& plan, dataflow::Context& ctx);

/// Execute on the vectorized columnar backend: every node materializes as a
/// column-major RowBlock, narrow ops run as tight in-place loops with
/// chunked compaction, joins as a radix-partitioned hash join honoring the
/// cost model's build_left/salt_fanout hints, and reduces as dense
/// direct-index aggregation when key_upper_bounds() proves the domain
/// small. Returns the sink union — the same row multiset as lower_local for
/// every plan.
std::vector<Row> lower_columnar(const LogicalPlan& plan, Executor& ex);

/// Key-domain ceiling for the dense reduce accumulator; wider domains fall
/// back to the sort-based grouped reduction.
inline constexpr std::uint64_t kDenseReduceMaxDomain = 1u << 16;

/// Physical choices for lower_dist beyond the plan itself.
struct LowerDistOptions {
  /// When > 0, a join whose LEFT input is a source-rooted node (kSource, or
  /// kFused with a source head) with at most this many source rows, feeding
  /// ONLY that join and not a sink, lowers as a BROADCAST join: the left
  /// stage replicates its full per-task row set to every child
  /// (StageSpec::broadcast) instead of hash-partitioning, and the join
  /// probes the replicated build side against its hash partition of the
  /// right side. Exact: every key's right rows still land in one task, and
  /// the build side holds ALL left rows of those keys, so each task emits
  /// precisely its partition of the reference join — in the same row order
  /// as the partitioned lowering. 0 disables (the historical lowering,
  /// byte-identical).
  std::uint64_t broadcast_join_rows = 0;
};

/// The plan as a dist-runtime job: one stage per plan node (a fused node is
/// ONE stage for its whole pipeline) plus a final collect stage over the
/// sinks. Every stage hash-partitions its output by key with a fixed task
/// count, so the key-based operators (reduce, join, distinct) are exact
/// per-partition.
dist::JobSpec lower_dist(const LogicalPlan& plan, std::size_t ntasks);
dist::JobSpec lower_dist(const LogicalPlan& plan, std::size_t ntasks,
                         const LowerDistOptions& opts);

/// Final rows of a dist run of lower_dist (unsorted).
std::vector<Row> rows_from_result(const dist::JobResult& res);

}  // namespace hpbdc::plan
