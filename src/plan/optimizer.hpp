#pragma once
// Deterministic rule-based optimizer over plan::LogicalPlan. Five rewrite
// rules, iterated to a fixpoint, so optimize() is idempotent:
//
//   prune_dead    — drop non-sink nodes with no path to a sink.
//   shuffle_elim  — drop a reduce_by_key/distinct whose input is already
//                   one-row-per-key (produced by an upstream reduce_by_key,
//                   or by distinct for distinct): the op is an identity and
//                   its hash-partitioned shuffle is pure waste.
//   push_filter   — move a filter below a commuting upstream op it is the
//                   sole consumer of: any row filter commutes with sort_by
//                   and distinct (row-preserving), and a key-only filter
//                   (kFilterKey) commutes with a key-preserving map
//                   (kMapValues).
//   combine       — set combine_output on the sole producer feeding a
//                   reduce_by_key, inserting a map-side combine before the
//                   shuffle boundary (sound: the combine is commutative and
//                   associative, so pre-aggregating partials per task/
//                   partition never changes the final per-key sum).
//   fuse_narrow   — collapse single-consumer chains of narrow ops (and a
//                   source head) into one kFused pipeline node, so the whole
//                   chain executes as a single stage with no intermediate
//                   materialization.
//
// Soundness: every operator is a function of its input row multiset
// (plan.hpp), and each rule preserves the multiset reaching every surviving
// consumer and sink, so the optimized plan's canonical_bytes equal the raw
// plan's. The chaos harness enforces exactly that on every differential run
// (src/chaos/harness.cpp) — the 20-case suite plus the seeded campaigns are
// the optimizer's regression oracle.

#include <cstdint>
#include <iosfwd>

#include "plan/plan.hpp"

namespace hpbdc::obs {
class MetricsRegistry;
}

namespace hpbdc::plan {

struct OptimizerStats {
  std::uint64_t fuse_narrow = 0;    // chain merges (one per absorbed node)
  std::uint64_t push_filter = 0;    // filter/upstream swaps
  std::uint64_t combine = 0;        // combine_output flags set
  std::uint64_t shuffle_elim = 0;   // identity wide ops dropped
  std::uint64_t prune_dead = 0;     // unreachable nodes dropped
  /// Dist stages removed versus the raw plan (every dropped or absorbed
  /// node was one hash-partitioned stage).
  std::uint64_t stages_eliminated = 0;
  std::uint64_t rules_applied() const {
    return fuse_narrow + push_filter + combine + shuffle_elim + prune_dead;
  }
};

/// Rewrite `in` to a fixpoint of the five rules. Pure and deterministic: the
/// result depends only on `in`. When `stats` is non-null the per-rule
/// application counts are written there; when `metrics` is non-null the
/// counters plan.rules_applied.<rule> and plan.stages_eliminated are bumped.
LogicalPlan optimize(const LogicalPlan& in, OptimizerStats* stats = nullptr,
                     obs::MetricsRegistry* metrics = nullptr);

}  // namespace hpbdc::plan
