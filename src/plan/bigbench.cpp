#include "plan/bigbench.hpp"

#include <algorithm>
#include <numeric>

namespace hpbdc::plan {

namespace {

/// The kFilterKey salt a filtered dimension runs with.
std::uint64_t dim_filter_salt(const DimSpec& d) { return d.salt ^ 0xf117ULL; }

/// Stats for one dimension's join input (source, optionally key-filtered),
/// computed on a two-node throwaway plan through the real stats layer.
NodeStats dim_stats(const DimSpec& d, const StatsOptions& opts) {
  LogicalPlan p;
  PlanNode src;
  src.op = OpKind::kSource;
  src.salt = d.salt;
  src.rows = d.rows;
  src.key_domain = d.domain;
  src.distinct_keys = true;
  p.nodes.push_back(src);
  if (d.filter) {
    PlanNode f;
    f.op = OpKind::kFilterKey;
    f.left = 0;
    f.salt = dim_filter_salt(d);
    p.nodes.push_back(f);
  }
  p.sinks = {p.nodes.size() - 1};
  return collect_stats(p, opts).back();
}

}  // namespace

LogicalPlan star_query(const StarSpec& spec,
                       const std::vector<std::size_t>& dim_order) {
  LogicalPlan plan;
  plan.seed = spec.fact_salt;
  plan.rows_per_source = spec.fact_rows;
  PlanNode fact;
  fact.op = OpKind::kSource;
  fact.salt = spec.fact_salt;
  fact.rows = spec.fact_rows;
  fact.key_domain = spec.fact_domain;
  fact.skew = spec.fact_skew;
  plan.nodes.push_back(fact);
  std::size_t cur = 0;
  for (std::size_t di : dim_order) {
    const DimSpec& d = spec.dims[di];
    PlanNode src;
    src.op = OpKind::kSource;
    src.salt = d.salt;
    src.rows = d.rows;
    src.key_domain = d.domain;
    src.distinct_keys = true;
    plan.nodes.push_back(src);
    std::size_t dim_node = plan.nodes.size() - 1;
    if (d.filter) {
      PlanNode f;
      f.op = OpKind::kFilterKey;
      f.left = dim_node;
      f.salt = dim_filter_salt(d);
      plan.nodes.push_back(f);
      dim_node = plan.nodes.size() - 1;
    }
    PlanNode j;
    j.op = OpKind::kJoin;
    j.left = dim_node;  // dim = build side
    j.right = cur;      // fact pipeline = probe side
    plan.nodes.push_back(j);
    cur = plan.nodes.size() - 1;
  }
  for (std::size_t u = 0; u < spec.udf_stages; ++u) {
    PlanNode m;
    m.op = OpKind::kMapValues;
    m.left = cur;
    m.salt = spec.udf_salt + u;
    plan.nodes.push_back(m);
    cur = plan.nodes.size() - 1;
  }
  if (spec.final_reduce) {
    PlanNode r;
    r.op = OpKind::kReduceByKey;
    r.left = cur;
    plan.nodes.push_back(r);
    cur = plan.nodes.size() - 1;
  }
  plan.sinks = {cur};
  return plan;
}

std::vector<std::size_t> naive_order(const StarSpec& spec) {
  std::vector<std::size_t> order(spec.dims.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<std::size_t> order_star_dims(const StarSpec& spec,
                                         const StatsOptions& opts) {
  // Sketch the fact source once, each dimension chain once.
  LogicalPlan fp;
  PlanNode fact;
  fact.op = OpKind::kSource;
  fact.salt = spec.fact_salt;
  fact.rows = spec.fact_rows;
  fact.key_domain = spec.fact_domain;
  fact.skew = spec.fact_skew;
  fp.nodes.push_back(fact);
  fp.sinks = {0};
  NodeStats cur = collect_stats(fp, opts).back();

  std::vector<NodeStats> ds;
  ds.reserve(spec.dims.size());
  for (const DimSpec& d : spec.dims) ds.push_back(dim_stats(d, opts));

  std::vector<std::size_t> remaining(spec.dims.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  std::vector<std::size_t> order;
  order.reserve(spec.dims.size());
  while (!remaining.empty()) {
    std::size_t best = 0;
    double best_rows = -1;
    for (std::size_t c = 0; c < remaining.size(); ++c) {
      const NodeStats& d = ds[remaining[c]];
      const double est =
          cur.rows * d.rows / std::max({cur.ndv, d.ndv, 1.0});
      if (best_rows < 0 || est < best_rows) {
        best_rows = est;
        best = c;
      }
    }
    const NodeStats& d = ds[remaining[best]];
    order.push_back(remaining[best]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
    cur.rows = best_rows;
    cur.ndv = std::min({cur.ndv, d.ndv, cur.rows});
  }
  return order;
}

StarSpec sales_star(std::uint64_t scale) {
  StarSpec s;
  s.fact_salt = 0x5a1e5ULL;
  s.fact_rows = 100'000 * scale;
  s.fact_domain = 16384;
  // Declared widest-first, so the naive order joins the least selective
  // dimension into the full fact table first — the cost order reverses it.
  s.dims = {
      {/*salt=*/0xd1ULL, /*rows=*/8192, /*domain=*/8192, /*filter=*/false},
      {/*salt=*/0xd2ULL, /*rows=*/2048, /*domain=*/2048, /*filter=*/false},
      {/*salt=*/0xd3ULL, /*rows=*/512, /*domain=*/512, /*filter=*/true},
  };
  s.udf_stages = 2;
  return s;
}

StarSpec clickstream_star(std::uint64_t scale) {
  StarSpec s;
  s.fact_salt = 0xc11cULL;
  s.fact_rows = 100'000 * scale;
  s.fact_domain = 4096;
  s.fact_skew = 300;  // a hot page takes ~30% of the clicks
  s.dims = {
      {/*salt=*/0xaa55ULL, /*rows=*/4096, /*domain=*/4096, /*filter=*/false},
      {/*salt=*/0xaa56ULL, /*rows=*/256, /*domain=*/256, /*filter=*/false},
  };
  s.udf_stages = 1;
  return s;
}

}  // namespace hpbdc::plan
