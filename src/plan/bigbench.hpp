#pragma once
// BigBench-flavored analytic workload family over the plan IR: generated
// sales/clickstream fact tables with skew, star-schema joins against
// distinct-key dimension tables, UDF-ish map stages, and a final grouped
// aggregate. The join ORDER is decided here, at plan construction — the
// IR's join value composition (join_rows) is order-sensitive, so reordering
// is not a legal plan rewrite; instead order_star_dims() runs the stats
// layer over the candidate inputs and greedily picks the
// smallest-intermediate order, and every backend then executes that one
// plan identically (which keeps the cross-backend differential oracle
// exact). bench_f16_columnar drives these queries raw, rule-optimized, and
// columnar + cost-based.

#include <cstdint>
#include <vector>

#include "plan/plan.hpp"
#include "plan/stats.hpp"

namespace hpbdc::plan {

/// One dimension table of a star schema: distinct keys 0..domain-1.
struct DimSpec {
  std::uint64_t salt = 0;
  std::uint64_t rows = 0;
  std::uint64_t domain = 0;
  /// Apply a kFilterKey (salt ^ 0xf117) to the dimension before the join —
  /// halves its keys, which halves the join output.
  bool filter = false;
};

struct StarSpec {
  std::uint64_t fact_salt = 1;
  std::uint64_t fact_rows = 0;
  std::uint64_t fact_domain = 0;
  std::uint64_t fact_skew = 0;  ///< permille of fact rows on one hot key
  std::vector<DimSpec> dims;
  std::size_t udf_stages = 2;      ///< kMapValues chain after the joins
  std::uint64_t udf_salt = 0xbbu;  ///< first UDF stage salt (then +1 each)
  bool final_reduce = true;        ///< group-by-key aggregate at the end
};

/// Build the star query joining dimensions in `dim_order` (indices into
/// spec.dims). Dimensions sit on the LEFT (hash-join build) side of each
/// join, the fact pipeline on the RIGHT (probe) side.
LogicalPlan star_query(const StarSpec& spec,
                       const std::vector<std::size_t>& dim_order);

/// Dimensions in declaration order — the "as written" baseline.
std::vector<std::size_t> naive_order(const StarSpec& spec);

/// Cost-based join order: sketch the fact and each (filtered) dimension
/// with collect_stats' source estimators, then greedily append the
/// dimension minimizing the estimated next-join output. Most-selective
/// joins run first, so every later join probes fewer rows.
std::vector<std::size_t> order_star_dims(const StarSpec& spec,
                                         const StatsOptions& opts = {});

/// Canonical specs used by bench_f16_columnar and tests. `scale` multiplies
/// the fact row count (scale 1 ≈ 100k fact rows).
StarSpec sales_star(std::uint64_t scale);
/// Clickstream: skewed fact (a hot page carries ~30% of clicks) joined
/// against a pages dimension — the shape whose salted join the cost model
/// exists for.
StarSpec clickstream_star(std::uint64_t scale);

}  // namespace hpbdc::plan
