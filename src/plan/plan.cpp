#include "plan/plan.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace hpbdc::plan {

static_assert(static_cast<std::size_t>(OpKind::kFused) + 1 == kOpKindCount,
              "kOpKindCount out of sync with OpKind — update it and every "
              "switch the -Wswitch warnings point at");

const char* op_name(OpKind k) {
  // No default: -Wswitch turns a forgotten kind into a build warning instead
  // of garbage in a shrink --replay line.
  switch (k) {
    case OpKind::kSource: return "source";
    case OpKind::kMap: return "map";
    case OpKind::kFilter: return "filter";
    case OpKind::kFlatMap: return "flat_map";
    case OpKind::kReduceByKey: return "reduce_by_key";
    case OpKind::kJoin: return "join";
    case OpKind::kSortBy: return "sort_by";
    case OpKind::kDistinct: return "distinct";
    case OpKind::kMapValues: return "map_values";
    case OpKind::kFilterKey: return "filter_key";
    case OpKind::kFused: return "fused";
  }
  return "invalid";  // unreachable for in-range values
}

std::string LogicalPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& nd = nodes[i];
    if (!out.empty()) out += ' ';
    out += std::to_string(i);
    out += ':';
    out += op_name(nd.op);
    if (nd.op == OpKind::kFused) {
      out += '[';
      for (std::size_t s = 0; s < nd.steps.size(); ++s) {
        if (s) out += '+';
        out += op_name(nd.steps[s].op);
      }
      out += ']';
    }
    if (nd.left != PlanNode::kNoParent) {
      out += '(';
      out += std::to_string(nd.left);
      if (nd.right != PlanNode::kNoParent) {
        out += ',';
        out += std::to_string(nd.right);
      }
      out += ')';
    }
    if (nd.checkpoint) out += '*';
    if (nd.combine_output) out += "+combine";
  }
  return out;
}

std::vector<Row> source_rows(std::uint64_t salt, std::uint64_t n) {
  std::vector<Row> out;
  out.reserve(n);
  Rng rng(salt);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.emplace_back(rng.next_below(kKeyDomain), rng());
  }
  return out;
}

Row map_row(const Row& r, std::uint64_t salt) {
  return {mix64(r.first * 0x9e3779b97f4a7c15ULL + salt) % kKeyDomain,
          r.second * 6364136223846793005ULL + salt};
}

Row map_value_row(const Row& r, std::uint64_t salt) {
  return {r.first, mix64(r.second + salt) * 6364136223846793005ULL + salt};
}

bool filter_keep(const Row& r, std::uint64_t salt) {
  return (mix64(r.first ^ (r.second * 3) ^ salt) & 1) == 0;
}

bool filter_key_keep(const Row& r, std::uint64_t salt) {
  return (mix64(r.first * 0x94d049bb133111ebULL + salt) & 1) == 0;
}

void flat_map_row(const Row& r, std::uint64_t salt, std::vector<Row>& out) {
  const std::uint64_t n = mix64(r.first ^ r.second ^ salt) % 3;  // 0..2 copies
  for (std::uint64_t j = 0; j < n; ++j) {
    out.emplace_back(mix64(r.first + j + salt) % kKeyDomain, r.second + j * salt);
  }
}

std::uint64_t reduce_combine(std::uint64_t a, std::uint64_t b) {
  return a + b;  // wrapping sum: commutative and associative
}

Row join_rows(std::uint64_t k, std::uint64_t v, std::uint64_t w) {
  return {k, v * 1000003ULL + mix64(w)};
}

std::uint64_t sort_key(const Row& r, std::uint64_t salt) {
  return mix64(r.first ^ salt);
}

bool is_narrow(OpKind k) {
  switch (k) {
    case OpKind::kMap:
    case OpKind::kMapValues:
    case OpKind::kFilter:
    case OpKind::kFilterKey:
    case OpKind::kFlatMap:
      return true;
    case OpKind::kSource:
    case OpKind::kReduceByKey:
    case OpKind::kJoin:
    case OpKind::kSortBy:
    case OpKind::kDistinct:
    case OpKind::kFused:
      return false;
  }
  return false;
}

std::vector<Row> apply_steps(const std::vector<NarrowStep>& steps,
                             std::size_t first, std::vector<Row> rows) {
  for (std::size_t s = first; s < steps.size(); ++s) {
    const std::uint64_t salt = steps[s].salt;
    switch (steps[s].op) {
      case OpKind::kMap:
        for (Row& r : rows) r = map_row(r, salt);
        break;
      case OpKind::kMapValues:
        for (Row& r : rows) r = map_value_row(r, salt);
        break;
      case OpKind::kFilter:
        std::erase_if(rows, [salt](const Row& r) { return !filter_keep(r, salt); });
        break;
      case OpKind::kFilterKey:
        std::erase_if(rows,
                      [salt](const Row& r) { return !filter_key_keep(r, salt); });
        break;
      case OpKind::kFlatMap: {
        std::vector<Row> next;
        for (const Row& r : rows) flat_map_row(r, salt, next);
        rows = std::move(next);
        break;
      }
      case OpKind::kSource:
      case OpKind::kReduceByKey:
      case OpKind::kJoin:
      case OpKind::kSortBy:
      case OpKind::kDistinct:
      case OpKind::kFused:
        // A source head is materialized by the caller; wide ops and nested
        // fused nodes never appear inside a pipeline.
        break;
    }
  }
  return rows;
}

std::vector<Row> combine_rows(std::vector<Row> rows) {
  std::map<std::uint64_t, std::uint64_t> acc;
  for (const Row& r : rows) {
    auto [it, fresh] = acc.emplace(r.first, r.second);
    if (!fresh) it->second = reduce_combine(it->second, r.second);
  }
  return {acc.begin(), acc.end()};
}

Bytes canonical_bytes(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return to_bytes(rows);
}

namespace {

/// Order-sensitive hash fold (parents and fused steps are sequences).
constexpr std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4)));
}

std::uint64_t node_fingerprint(const LogicalPlan& plan, std::size_t i,
                               std::vector<std::uint64_t>& memo) {
  if (memo[i] != 0) return memo[i];
  const PlanNode& nd = plan.nodes[i];
  std::uint64_t h = fold(0x5e97c6a1u, static_cast<std::uint64_t>(nd.op));
  h = fold(h, nd.salt);
  h = fold(h, nd.rows);
  h = fold(h, nd.combine_output ? 1 : 0);
  for (const NarrowStep& s : nd.steps) {
    h = fold(h, static_cast<std::uint64_t>(s.op));
    h = fold(h, s.salt);
    h = fold(h, s.rows);
  }
  // Distinct sentinels for "no parent" keep map(x) and map(x, phantom)
  // shapes apart; parents precede children, so the recursion terminates.
  h = fold(h, nd.left == PlanNode::kNoParent
                   ? 0x6e6f6e65u
                   : node_fingerprint(plan, nd.left, memo));
  h = fold(h, nd.right == PlanNode::kNoParent
                   ? 0x6e6f6e32u
                   : node_fingerprint(plan, nd.right, memo));
  if (h == 0) h = 1;  // 0 is the memo's "unset"
  memo[i] = h;
  return h;
}

}  // namespace

std::uint64_t fingerprint(const LogicalPlan& plan) {
  std::vector<std::uint64_t> memo(plan.nodes.size(), 0);
  std::vector<std::uint64_t> sinks;
  sinks.reserve(plan.sinks.size());
  for (std::size_t s : plan.sinks) {
    sinks.push_back(node_fingerprint(plan, s, memo));
  }
  // Sinks fold in sorted-hash order: the result is a function of the sink
  // SET, not of how the construction happened to number the nodes.
  std::sort(sinks.begin(), sinks.end());
  std::uint64_t h = fold(0x706c616eu, sinks.size());
  for (std::uint64_t s : sinks) h = fold(h, s);
  return h;
}

}  // namespace hpbdc::plan
