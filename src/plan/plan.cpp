#include "plan/plan.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace hpbdc::plan {

static_assert(static_cast<std::size_t>(OpKind::kFused) + 1 == kOpKindCount,
              "kOpKindCount out of sync with OpKind — update it and every "
              "switch the -Wswitch warnings point at");

const char* op_name(OpKind k) {
  // No default: -Wswitch turns a forgotten kind into a build warning instead
  // of garbage in a shrink --replay line.
  switch (k) {
    case OpKind::kSource: return "source";
    case OpKind::kMap: return "map";
    case OpKind::kFilter: return "filter";
    case OpKind::kFlatMap: return "flat_map";
    case OpKind::kReduceByKey: return "reduce_by_key";
    case OpKind::kJoin: return "join";
    case OpKind::kSortBy: return "sort_by";
    case OpKind::kDistinct: return "distinct";
    case OpKind::kMapValues: return "map_values";
    case OpKind::kFilterKey: return "filter_key";
    case OpKind::kFused: return "fused";
  }
  return "invalid";  // unreachable for in-range values
}

std::string LogicalPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& nd = nodes[i];
    if (!out.empty()) out += ' ';
    out += std::to_string(i);
    out += ':';
    out += op_name(nd.op);
    if (nd.op == OpKind::kFused) {
      out += '[';
      for (std::size_t s = 0; s < nd.steps.size(); ++s) {
        if (s) out += '+';
        out += op_name(nd.steps[s].op);
      }
      out += ']';
    }
    if (nd.left != PlanNode::kNoParent) {
      out += '(';
      out += std::to_string(nd.left);
      if (nd.right != PlanNode::kNoParent) {
        out += ',';
        out += std::to_string(nd.right);
      }
      out += ')';
    }
    if (nd.checkpoint) out += '*';
    if (nd.combine_output) out += "+combine";
    // Non-default source shapes and cost annotations render as suffixes so
    // every historical describe() string stays byte-identical.
    if (nd.key_domain != 0 || nd.skew != 0 || nd.distinct_keys) {
      out += "{d" + std::to_string(nd.key_domain);
      if (nd.distinct_keys) out += ",dk";
      if (nd.skew != 0) out += ",sk" + std::to_string(nd.skew);
      out += '}';
    }
    if (!nd.build_left) out += "+br";
    if (nd.salt_fanout != 0) out += "+salt" + std::to_string(nd.salt_fanout);
  }
  return out;
}

std::vector<Row> source_rows(std::uint64_t salt, std::uint64_t n) {
  return source_rows_ex(salt, n, 0, 0, false);
}

std::vector<Row> source_rows_ex(std::uint64_t salt, std::uint64_t n,
                                std::uint64_t key_domain,
                                std::uint64_t skew_permille,
                                bool distinct_keys) {
  const std::uint64_t domain = key_domain == 0 ? kKeyDomain : key_domain;
  std::vector<Row> out;
  out.reserve(n);
  Rng rng(salt);
  if (distinct_keys) {
    // Dimension-table shape: every key exactly once (cycling past n >
    // domain), values still drawn so two dims with one salt differ.
    for (std::uint64_t i = 0; i < n; ++i) {
      out.emplace_back(i % domain, rng());
    }
    return out;
  }
  // The deterministic hot key every skewed row lands on. CMS-based hot-key
  // detection in plan/stats discovers it — nothing downstream is told.
  const std::uint64_t hot = mix64(salt ^ 0x5ca1ab1eULL) % domain;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t k = rng.next_below(domain);
    const std::uint64_t v = rng();
    // The skew draw comes after the historical (key, value) draws, so
    // skew == 0 consumes exactly the legacy RNG stream.
    if (skew_permille != 0 && rng.next_below(1000) < skew_permille) k = hot;
    out.emplace_back(k, v);
  }
  return out;
}

Row map_row(const Row& r, std::uint64_t salt) {
  return {mix64(r.first * 0x9e3779b97f4a7c15ULL + salt) % kKeyDomain,
          r.second * 6364136223846793005ULL + salt};
}

Row map_value_row(const Row& r, std::uint64_t salt) {
  return {r.first, mix64(r.second + salt) * 6364136223846793005ULL + salt};
}

bool filter_keep(const Row& r, std::uint64_t salt) {
  return (mix64(r.first ^ (r.second * 3) ^ salt) & 1) == 0;
}

bool filter_key_keep(const Row& r, std::uint64_t salt) {
  return (mix64(r.first * 0x94d049bb133111ebULL + salt) & 1) == 0;
}

void flat_map_row(const Row& r, std::uint64_t salt, std::vector<Row>& out) {
  const std::uint64_t n = mix64(r.first ^ r.second ^ salt) % 3;  // 0..2 copies
  for (std::uint64_t j = 0; j < n; ++j) {
    out.emplace_back(mix64(r.first + j + salt) % kKeyDomain, r.second + j * salt);
  }
}

std::uint64_t reduce_combine(std::uint64_t a, std::uint64_t b) {
  return a + b;  // wrapping sum: commutative and associative
}

Row join_rows(std::uint64_t k, std::uint64_t v, std::uint64_t w) {
  return {k, v * 1000003ULL + mix64(w)};
}

std::uint64_t sort_key(const Row& r, std::uint64_t salt) {
  return mix64(r.first ^ salt);
}

bool is_narrow(OpKind k) {
  switch (k) {
    case OpKind::kMap:
    case OpKind::kMapValues:
    case OpKind::kFilter:
    case OpKind::kFilterKey:
    case OpKind::kFlatMap:
      return true;
    case OpKind::kSource:
    case OpKind::kReduceByKey:
    case OpKind::kJoin:
    case OpKind::kSortBy:
    case OpKind::kDistinct:
    case OpKind::kFused:
      return false;
  }
  return false;
}

std::vector<Row> apply_steps(const std::vector<NarrowStep>& steps,
                             std::size_t first, std::vector<Row> rows) {
  for (std::size_t s = first; s < steps.size(); ++s) {
    const std::uint64_t salt = steps[s].salt;
    switch (steps[s].op) {
      case OpKind::kMap:
        for (Row& r : rows) r = map_row(r, salt);
        break;
      case OpKind::kMapValues:
        for (Row& r : rows) r = map_value_row(r, salt);
        break;
      case OpKind::kFilter:
        std::erase_if(rows, [salt](const Row& r) { return !filter_keep(r, salt); });
        break;
      case OpKind::kFilterKey:
        std::erase_if(rows,
                      [salt](const Row& r) { return !filter_key_keep(r, salt); });
        break;
      case OpKind::kFlatMap: {
        std::vector<Row> next;
        for (const Row& r : rows) flat_map_row(r, salt, next);
        rows = std::move(next);
        break;
      }
      case OpKind::kSource:
      case OpKind::kReduceByKey:
      case OpKind::kJoin:
      case OpKind::kSortBy:
      case OpKind::kDistinct:
      case OpKind::kFused:
        // A source head is materialized by the caller; wide ops and nested
        // fused nodes never appear inside a pipeline.
        break;
    }
  }
  return rows;
}

std::vector<Row> combine_rows(std::vector<Row> rows) {
  std::map<std::uint64_t, std::uint64_t> acc;
  for (const Row& r : rows) {
    auto [it, fresh] = acc.emplace(r.first, r.second);
    if (!fresh) it->second = reduce_combine(it->second, r.second);
  }
  return {acc.begin(), acc.end()};
}

Bytes canonical_bytes(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return to_bytes(rows);
}

namespace {

/// Order-sensitive hash fold (parents and fused steps are sequences).
constexpr std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4)));
}

std::uint64_t node_fingerprint(const LogicalPlan& plan, std::size_t i,
                               std::vector<std::uint64_t>& memo) {
  if (memo[i] != 0) return memo[i];
  const PlanNode& nd = plan.nodes[i];
  std::uint64_t h = fold(0x5e97c6a1u, static_cast<std::uint64_t>(nd.op));
  h = fold(h, nd.salt);
  h = fold(h, nd.rows);
  h = fold(h, nd.combine_output ? 1 : 0);
  // Source shape and cost-model annotations. Defaults fold to the same
  // stream as before these fields existed only where noted; the guard on
  // the annotation block keeps all historical fingerprints stable.
  if (nd.key_domain != 0 || nd.skew != 0 || nd.distinct_keys ||
      !nd.build_left || nd.salt_fanout != 0 || !nd.hot_keys.empty()) {
    h = fold(h, 0x73686170u);  // 'shap'
    h = fold(h, nd.key_domain);
    h = fold(h, nd.skew);
    h = fold(h, nd.distinct_keys ? 1 : 0);
    h = fold(h, nd.build_left ? 1 : 0);
    h = fold(h, nd.salt_fanout);
    h = fold(h, nd.hot_keys.size());
    for (std::uint64_t k : nd.hot_keys) h = fold(h, k);
  }
  for (const NarrowStep& s : nd.steps) {
    h = fold(h, static_cast<std::uint64_t>(s.op));
    h = fold(h, s.salt);
    h = fold(h, s.rows);
    if (s.key_domain != 0 || s.skew != 0 || s.distinct_keys) {
      h = fold(h, 0x73746570u);  // 'step'
      h = fold(h, s.key_domain);
      h = fold(h, s.skew);
      h = fold(h, s.distinct_keys ? 1 : 0);
    }
  }
  // Distinct sentinels for "no parent" keep map(x) and map(x, phantom)
  // shapes apart; parents precede children, so the recursion terminates.
  h = fold(h, nd.left == PlanNode::kNoParent
                   ? 0x6e6f6e65u
                   : node_fingerprint(plan, nd.left, memo));
  h = fold(h, nd.right == PlanNode::kNoParent
                   ? 0x6e6f6e32u
                   : node_fingerprint(plan, nd.right, memo));
  if (h == 0) h = 1;  // 0 is the memo's "unset"
  memo[i] = h;
  return h;
}

}  // namespace

std::uint64_t fingerprint(const LogicalPlan& plan) {
  std::vector<std::uint64_t> memo(plan.nodes.size(), 0);
  std::vector<std::uint64_t> sinks;
  sinks.reserve(plan.sinks.size());
  for (std::size_t s : plan.sinks) {
    sinks.push_back(node_fingerprint(plan, s, memo));
  }
  // Sinks fold in sorted-hash order: the result is a function of the sink
  // SET, not of how the construction happened to number the nodes.
  std::sort(sinks.begin(), sinks.end());
  std::uint64_t h = fold(0x706c616eu, sinks.size());
  for (std::uint64_t s : sinks) h = fold(h, s);
  // stats_salt marks a cost-optimized plan; 0 (never a valid salt) keeps
  // every pre-cost fingerprint unchanged.
  if (plan.stats_salt != 0) h = fold(h, fold(0x636f7374u, plan.stats_salt));
  return h;
}

std::vector<std::uint64_t> key_upper_bounds(const LogicalPlan& plan) {
  std::vector<std::uint64_t> bound(plan.nodes.size(), kKeyDomain);
  auto step_bound = [](const NarrowStep& s, std::uint64_t in) {
    switch (s.op) {
      case OpKind::kSource:
        return s.key_domain == 0 ? kKeyDomain : s.key_domain;
      case OpKind::kMap:
      case OpKind::kFlatMap:
        return kKeyDomain;  // key remix lands in the default domain
      default:
        return in;  // key-preserving
    }
  };
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    const std::uint64_t l =
        nd.left == PlanNode::kNoParent ? kKeyDomain : bound[nd.left];
    const std::uint64_t r =
        nd.right == PlanNode::kNoParent ? kKeyDomain : bound[nd.right];
    switch (nd.op) {
      case OpKind::kSource:
        bound[i] = nd.key_domain == 0 ? kKeyDomain : nd.key_domain;
        break;
      case OpKind::kMap:
      case OpKind::kFlatMap:
        bound[i] = kKeyDomain;
        break;
      case OpKind::kJoin:
        bound[i] = std::min(l, r);  // inner join: surviving keys in both
        break;
      case OpKind::kFused: {
        std::uint64_t b = l;
        for (const NarrowStep& s : nd.steps) b = step_bound(s, b);
        bound[i] = b;
        break;
      }
      default:  // filter/filter_key/map_values/reduce/sort/distinct
        bound[i] = l;
        break;
    }
  }
  return bound;
}

}  // namespace hpbdc::plan
