#pragma once
// Statistics-driven cost pass on top of the rule optimizer. cost_optimize
// runs the rule passes, reorders commuting filter runs inside fused chains
// by measured selectivity (most-selective-first), runs the rules again, and
// then annotates every join with physical hints from collect_stats():
//
//   build_left   — hash-join build side = the smaller estimated input
//   salt_fanout  — skew-salting fanout when the probe side's CMS-detected
//                  hot keys carry a meaningful fraction of its rows
//   hot_keys     — the hot keys themselves, for the salted partitioners
//
// Every hint is PHYSICAL: row multisets are identical with or without it,
// which is what lets the chaos differential oracle check cost-optimized
// plans against the raw reference for free. Logical join REORDERING is
// deliberately absent: join_rows() value composition is order-sensitive, so
// join order is chosen at plan construction time (see plan/bigbench.hpp's
// order_star_dims) where all backends still execute the identical plan.

#include <cstdint>
#include <vector>

#include "plan/plan.hpp"
#include "plan/stats.hpp"

namespace hpbdc::plan {

struct CostOptions {
  StatsOptions stats;
  /// Annotate a join for skew salting when the probe side's hot keys carry
  /// at least this fraction of its estimated rows.
  double hot_weight_threshold = 0.10;
  std::uint32_t max_fanout = 8;
  /// Sample size for measuring filter pass rates when reordering filter
  /// runs inside source-rooted fused chains.
  std::uint64_t reorder_sample_rows = 2048;
};

struct CostReport {
  std::size_t joins_flipped = 0;      ///< joins switched to build-right
  std::size_t joins_salted = 0;       ///< joins given a skew-salt fanout
  std::size_t filters_reordered = 0;  ///< fused filter runs permuted
  std::vector<NodeStats> stats;       ///< final per-node estimates
};

/// Rule passes → selectivity-ordered filters → rule passes → join
/// annotation. The result carries opts.stats.stats_salt as its
/// LogicalPlan::stats_salt, so its fingerprint never aliases the merely
/// rule-optimized plan in the serve result cache.
LogicalPlan cost_optimize(const LogicalPlan& in, const CostOptions& opts = {},
                          CostReport* report = nullptr);

}  // namespace hpbdc::plan
