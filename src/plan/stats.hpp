#pragma once
// Per-node table/key statistics for the cost model (plan/cost.hpp). Source
// nodes are sketched at registration time — a HyperLogLog estimates the
// distinct-key count and a count-min sketch surfaces heavy-hitter keys —
// and the estimates propagate through the plan with the standard textbook
// formulas (filters halve, joins multiply and divide by the larger NDV,
// reduces collapse to one row per key). Everything here is ADVISORY: the
// stats feed physical hints (join build side, skew-salt fanout, filter
// order inside fused chains) that never change result multisets, so a bad
// estimate costs performance, never correctness.

#include <cstdint>
#include <vector>

#include "plan/plan.hpp"

namespace hpbdc::plan {

/// A CMS-detected heavy hitter: the key and its estimated row count
/// (overestimate-only, per the CMS guarantee).
struct HotKey {
  std::uint64_t key = 0;
  std::uint64_t count = 0;
  friend bool operator==(const HotKey&, const HotKey&) = default;
};

struct NodeStats {
  double rows = 0;  ///< estimated output row count
  double ndv = 0;   ///< estimated distinct keys in the output
  /// Static key bound from key_upper_bounds() — the sketches never estimate
  /// above it.
  std::uint64_t key_bound = kKeyDomain;
  /// Heavy-hitter keys (descending count). Cleared by key remixes, carried
  /// by key-preserving ops, exact-filtered by kFilterKey (the predicate
  /// reads only the key, so hot keys can be evaluated precisely).
  std::vector<HotKey> hot;
};

struct StatsOptions {
  /// Salt folded into the sampling; recorded on cost-optimized plans as
  /// LogicalPlan::stats_salt. Must be non-zero (0 means "not costed").
  std::uint64_t stats_salt = 0x57a75ULL;
  /// Per-source sketch cap: sources larger than this are sketched on a
  /// prefix sample and scaled.
  std::uint64_t sample_rows = 1 << 16;
  int hll_precision = 12;
  double cms_epsilon = 0.005;
  double cms_delta = 0.01;
  /// A key is "hot" when its CMS estimate is at least this fraction of the
  /// sketched rows.
  double hot_fraction = 0.05;
  /// Cap on the hot list per node (largest counts win).
  std::size_t max_hot_keys = 8;
};

/// Estimate rows/ndv/hot for every node. Sources are sketched (HLL + CMS
/// over up to sample_rows rows); interior nodes use propagation rules only
/// — no interior node is ever materialized, so this is cheap enough to run
/// on every submitted plan.
std::vector<NodeStats> collect_stats(const LogicalPlan& plan,
                                     const StatsOptions& opts = {});

}  // namespace hpbdc::plan
