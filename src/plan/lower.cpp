#include "plan/lower.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::plan {

namespace {

constexpr std::size_t kLocalParts = 4;

// ---- dist-stage plumbing --------------------------------------------------

/// Hash-partition rows by key into ntasks serialized blocks (the invariant
/// every plan stage maintains at its output boundary).
std::vector<Bytes> partition_rows(std::vector<Row> rows, std::size_t ntasks) {
  std::vector<std::vector<Row>> parts(ntasks);
  for (const Row& r : rows) {
    parts[hash_u64(r.first) % ntasks].push_back(r);
  }
  std::vector<Bytes> out;
  out.reserve(ntasks);
  for (auto& p : parts) out.push_back(to_bytes(p));
  return out;
}

/// Replicate rows into ntasks identical blocks: every child of a broadcast
/// stage receives the producer task's FULL row set.
std::vector<Bytes> replicate_rows(const std::vector<Row>& rows,
                                  std::size_t ntasks) {
  return std::vector<Bytes>(ntasks, to_bytes(rows));
}

// ---- skew salting ---------------------------------------------------------
// Cost-model hot keys turn a join's two input partitionings asymmetric: the
// build parent replicates its hot-key rows to EVERY task while the probe
// parent spreads its hot-key rows across tasks round-robin. Every hot probe
// row lands in exactly one task and meets the full (replicated) set of hot
// build rows for its key there, so each (build, probe) pair is emitted
// exactly once — the join output multiset is unchanged, only the per-task
// row balance improves.

enum class SkewRole : std::uint8_t { kNone, kBuild, kProbe };

struct SkewInfo {
  SkewRole role = SkewRole::kNone;
  std::vector<std::uint64_t> hot;  // the consumer join's hot_keys
};

std::vector<std::size_t> consumer_counts(const LogicalPlan& plan) {
  std::vector<std::size_t> consumers(plan.nodes.size(), 0);
  for (const PlanNode& nd : plan.nodes) {
    switch (nd.op) {
      case OpKind::kSource:
        break;
      case OpKind::kFused:
        if (nd.steps.front().op != OpKind::kSource) ++consumers[nd.left];
        break;
      case OpKind::kJoin:
        ++consumers[nd.left];
        ++consumers[nd.right];
        break;
      default:
        ++consumers[nd.left];
        break;
    }
  }
  return consumers;
}

/// Assign skew roles to the parents of every annotated join whose shape
/// makes the rewrite sound: distinct parents, each feeding ONLY this join
/// (another consumer — or a sink reader — would see the salted partitioning
/// where it expects a plain hash partition), and neither broadcast (a
/// broadcast build already replicates everything).
std::vector<SkewInfo> pick_skew_roles(const LogicalPlan& plan,
                                      const std::vector<bool>& bcast) {
  std::vector<SkewInfo> out(plan.nodes.size());
  const std::vector<std::size_t> consumers = consumer_counts(plan);
  auto is_sink = [&](std::size_t id) {
    return std::find(plan.sinks.begin(), plan.sinks.end(), id) !=
           plan.sinks.end();
  };
  for (const PlanNode& nd : plan.nodes) {
    if (nd.op != OpKind::kJoin || nd.salt_fanout == 0 || nd.hot_keys.empty()) {
      continue;
    }
    const std::size_t l = nd.left, r = nd.right;
    if (l == r) continue;  // self-join: one parent plays both roles
    if (consumers[l] != 1 || consumers[r] != 1) continue;
    if (is_sink(l) || is_sink(r)) continue;
    if (bcast[l] || bcast[r]) continue;
    const std::size_t build = nd.build_left ? l : r;
    const std::size_t probe = nd.build_left ? r : l;
    out[build] = {SkewRole::kBuild, nd.hot_keys};
    out[probe] = {SkewRole::kProbe, nd.hot_keys};
  }
  return out;
}

/// partition_rows with hot-key handling per the node's skew role. The probe
/// spread counter is deterministic: each task walks its own rows in order.
std::vector<Bytes> partition_rows_skewed(std::vector<Row> rows,
                                         std::size_t ntasks,
                                         const SkewInfo& si) {
  std::vector<std::vector<Row>> parts(ntasks);
  std::uint64_t spread = 0;
  auto hot = [&si](std::uint64_t k) {
    return std::find(si.hot.begin(), si.hot.end(), k) != si.hot.end();
  };
  for (const Row& r : rows) {
    if (hot(r.first)) {
      if (si.role == SkewRole::kBuild) {
        for (auto& p : parts) p.push_back(r);
      } else {
        parts[(hash_u64(r.first) + spread++) % ntasks].push_back(r);
      }
    } else {
      parts[hash_u64(r.first) % ntasks].push_back(r);
    }
  }
  std::vector<Bytes> out;
  out.reserve(ntasks);
  for (auto& p : parts) out.push_back(to_bytes(p));
  return out;
}

/// Source-row estimate of a source-rooted node; kNotSourceRooted when the
/// node cannot be sized without running it.
constexpr std::uint64_t kNotSourceRooted = ~0ULL;
std::uint64_t source_rooted_rows(const PlanNode& nd) {
  if (nd.op == OpKind::kSource) return nd.rows;
  if (nd.op == OpKind::kFused && nd.steps.front().op == OpKind::kSource) {
    return nd.steps.front().rows;
  }
  return kNotSourceRooted;
}

/// Marks the nodes that lower as broadcast (replicated-output) stages: the
/// left side of every eligible join under `opts`.
std::vector<bool> pick_broadcast_nodes(const LogicalPlan& plan,
                                       const LowerDistOptions& opts) {
  std::vector<bool> bcast(plan.nodes.size(), false);
  if (opts.broadcast_join_rows == 0) return bcast;
  // A broadcast node must feed exactly one node (its join): other consumers
  // would see replicated rows where they expect a hash partition.
  const std::vector<std::size_t> consumers = consumer_counts(plan);
  for (const PlanNode& nd : plan.nodes) {
    if (nd.op != OpKind::kJoin) continue;
    const std::size_t l = nd.left;
    if (consumers[l] != 1) continue;
    if (std::find(plan.sinks.begin(), plan.sinks.end(), l) != plan.sinks.end()) {
      continue;
    }
    const std::uint64_t rows = source_rooted_rows(plan.nodes[l]);
    if (rows == kNotSourceRooted || rows > opts.broadcast_join_rows) continue;
    bcast[l] = true;
  }
  return bcast;
}

/// Concatenate parent `pi`'s blocks for this task, in parent-task order
/// (deterministic regardless of fetch completion order).
std::vector<Row> gather_rows(const std::vector<std::vector<Bytes>>& inputs,
                             std::size_t pi) {
  std::vector<Row> rows;
  for (const Bytes& b : inputs.at(pi)) {
    auto part = from_bytes<std::vector<Row>>(b);
    rows.insert(rows.end(), part.begin(), part.end());
  }
  return rows;
}

std::vector<Row> local_join(const std::vector<Row>& lhs,
                            const std::vector<Row>& rhs) {
  std::multimap<std::uint64_t, std::uint64_t> left_by_key;
  for (const Row& r : lhs) left_by_key.emplace(r.first, r.second);
  std::vector<Row> out;
  for (const Row& r : rhs) {
    auto [lo, hi] = left_by_key.equal_range(r.first);
    for (auto it = lo; it != hi; ++it) {
      out.push_back(join_rows(r.first, it->second, r.second));
    }
  }
  return out;
}

}  // namespace

std::vector<Row> lower_local(const LogicalPlan& plan, dataflow::Context& ctx) {
  using DS = dataflow::Dataset<Row>;
  std::vector<DS> built(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    const std::uint64_t salt = nd.salt;
    switch (nd.op) {
      case OpKind::kSource:
        built[i] = DS::parallelize(ctx, node_source_rows(nd), kLocalParts);
        break;
      case OpKind::kMap:
        built[i] = built[nd.left].map(
            [salt](const Row& r) { return map_row(r, salt); });
        break;
      case OpKind::kMapValues:
        built[i] = built[nd.left].map(
            [salt](const Row& r) { return map_value_row(r, salt); });
        break;
      case OpKind::kFilter:
        built[i] = built[nd.left].filter(
            [salt](const Row& r) { return filter_keep(r, salt); });
        break;
      case OpKind::kFilterKey:
        built[i] = built[nd.left].filter(
            [salt](const Row& r) { return filter_key_keep(r, salt); });
        break;
      case OpKind::kFlatMap:
        built[i] = built[nd.left].flat_map([salt](const Row& r) {
          std::vector<Row> out;
          flat_map_row(r, salt, out);
          return out;
        });
        break;
      case OpKind::kFused: {
        // The whole pipeline runs in one pass over each partition; a source
        // head materializes its rows first. Per-row steps distribute over
        // disjoint partitions, so this equals the unfused node chain.
        const std::vector<NarrowStep> steps = nd.steps;
        DS head = steps.front().op == OpKind::kSource
                      ? DS::parallelize(ctx, step_source_rows(steps.front()),
                                        kLocalParts)
                      : built[nd.left];
        const std::size_t first = steps.front().op == OpKind::kSource ? 1 : 0;
        built[i] = head.map_partitions([steps, first](const std::vector<Row>& part) {
          return apply_steps(steps, first, part);
        });
        break;
      }
      case OpKind::kReduceByKey:
        built[i] = dataflow::reduce_by_key(
            built[nd.left],
            [](std::uint64_t a, std::uint64_t b) { return reduce_combine(a, b); },
            kLocalParts);
        break;
      case OpKind::kJoin:
        built[i] =
            dataflow::join(built[nd.left], built[nd.right], kLocalParts)
                .map([](const std::pair<std::uint64_t,
                                        std::pair<std::uint64_t, std::uint64_t>>&
                            r) {
                  return join_rows(r.first, r.second.first, r.second.second);
                });
        break;
      case OpKind::kSortBy:
        built[i] = built[nd.left].sort_by(
            [salt](const Row& r) { return sort_key(r, salt); }, kLocalParts);
        break;
      case OpKind::kDistinct:
        built[i] = built[nd.left].distinct(kLocalParts);
        break;
    }
    if (nd.combine_output) {
      // Map-side combine at the node's output boundary: per-partition
      // pre-aggregation, exact because the downstream reduce re-combines.
      built[i] = built[i].map_partitions(
          [](const std::vector<Row>& part) { return combine_rows(part); });
    }
  }
  DS out = built[plan.sinks.front()];
  for (std::size_t s = 1; s < plan.sinks.size(); ++s) {
    out = out.union_with(built[plan.sinks[s]]);
  }
  return out.collect();
}

dist::JobSpec lower_dist(const LogicalPlan& plan, std::size_t ntasks) {
  return lower_dist(plan, ntasks, LowerDistOptions{});
}

dist::JobSpec lower_dist(const LogicalPlan& plan, std::size_t ntasks,
                         const LowerDistOptions& opts) {
  dist::JobSpec job;
  job.name = "plan";
  const std::vector<bool> bcast = pick_broadcast_nodes(plan, opts);
  const std::vector<SkewInfo> skew = pick_skew_roles(plan, bcast);
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    const std::uint64_t salt = nd.salt;
    const bool combine = nd.combine_output;
    const bool replicate = bcast[i];
    const SkewInfo si = skew[i];
    // Every stage ends the same way: optional map-side combine, then
    // hash-partition by key — or, for a broadcast build side, replicate the
    // full row set to every child, or, for a skew-salted join input, the
    // hot-key-aware partitioning.
    auto finalize = [combine, replicate, ntasks, si](std::vector<Row> rows) {
      if (combine) rows = combine_rows(std::move(rows));
      if (replicate) return replicate_rows(rows, ntasks);
      if (si.role != SkewRole::kNone) {
        return partition_rows_skewed(std::move(rows), ntasks, si);
      }
      return partition_rows(std::move(rows), ntasks);
    };
    dist::StageSpec st;
    st.name = "n" + std::to_string(i);
    st.ntasks = ntasks;
    st.checkpoint = nd.checkpoint;
    st.broadcast = replicate;
    switch (nd.op) {
      case OpKind::kSource: {
        // Task t owns the rows with index ≡ t (mod ntasks): disjoint slices
        // whose union is exactly the reference source.
        st.run = [src = nd, ntasks, finalize](
                     std::size_t task, const std::vector<std::vector<Bytes>>&) {
          const auto all = node_source_rows(src);
          std::vector<Row> mine;
          for (std::size_t j = task; j < all.size(); j += ntasks) {
            mine.push_back(all[j]);
          }
          return finalize(std::move(mine));
        };
        st.input_bytes_per_task =
            std::max<std::uint64_t>(1, nd.rows * 16 / ntasks);
        break;
      }
      case OpKind::kMap:
        st.parents = {nd.left};
        st.run = [salt, finalize](std::size_t,
                                  const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          for (Row& r : rows) r = map_row(r, salt);
          return finalize(std::move(rows));
        };
        break;
      case OpKind::kMapValues:
        st.parents = {nd.left};
        st.run = [salt, finalize](std::size_t,
                                  const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          for (Row& r : rows) r = map_value_row(r, salt);
          return finalize(std::move(rows));
        };
        break;
      case OpKind::kFilter:
        st.parents = {nd.left};
        st.run = [salt, finalize](std::size_t,
                                  const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::erase_if(rows, [salt](const Row& r) { return !filter_keep(r, salt); });
          return finalize(std::move(rows));
        };
        break;
      case OpKind::kFilterKey:
        st.parents = {nd.left};
        st.run = [salt, finalize](std::size_t,
                                  const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::erase_if(rows,
                        [salt](const Row& r) { return !filter_key_keep(r, salt); });
          return finalize(std::move(rows));
        };
        break;
      case OpKind::kFlatMap:
        st.parents = {nd.left};
        st.run = [salt, finalize](std::size_t,
                                  const std::vector<std::vector<Bytes>>& in) {
          const auto rows = gather_rows(in, 0);
          std::vector<Row> out;
          for (const Row& r : rows) flat_map_row(r, salt, out);
          return finalize(std::move(out));
        };
        break;
      case OpKind::kFused: {
        // The whole pipeline is ONE stage — this is where fusion pays on the
        // dist runtime: each absorbed node was a full shuffle round-trip.
        const std::vector<NarrowStep> steps = nd.steps;
        if (steps.front().op == OpKind::kSource) {
          st.run = [ntasks, steps, finalize](
                       std::size_t task, const std::vector<std::vector<Bytes>>&) {
            const auto all = step_source_rows(steps.front());
            std::vector<Row> mine;
            for (std::size_t j = task; j < all.size(); j += ntasks) {
              mine.push_back(all[j]);
            }
            return finalize(apply_steps(steps, 1, std::move(mine)));
          };
          st.input_bytes_per_task =
              std::max<std::uint64_t>(1, steps.front().rows * 16 / ntasks);
        } else {
          st.parents = {nd.left};
          st.run = [steps, finalize](std::size_t,
                                     const std::vector<std::vector<Bytes>>& in) {
            return finalize(apply_steps(steps, 0, gather_rows(in, 0)));
          };
        }
        break;
      }
      case OpKind::kReduceByKey:
        st.parents = {nd.left};
        st.run = [finalize](std::size_t,
                            const std::vector<std::vector<Bytes>>& in) {
          // All rows of a key land in one task (upstream hash partitioning),
          // so the local reduce is globally exact — even when the upstream
          // stage pre-combined, this merges the per-task partials.
          std::vector<Row> rows = combine_rows(gather_rows(in, 0));
          return finalize(std::move(rows));
        };
        break;
      case OpKind::kJoin:
        st.parents = {nd.left, nd.right};
        st.run = [finalize](std::size_t,
                            const std::vector<std::vector<Bytes>>& in) {
          return finalize(local_join(gather_rows(in, 0), gather_rows(in, 1)));
        };
        break;
      case OpKind::kSortBy:
        st.parents = {nd.left};
        st.run = [salt, finalize](std::size_t,
                                  const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::sort(rows.begin(), rows.end(),
                    [salt](const Row& a, const Row& b) {
                      const auto ka = sort_key(a, salt), kb = sort_key(b, salt);
                      return ka != kb ? ka < kb : a < b;
                    });
          return finalize(std::move(rows));
        };
        break;
      case OpKind::kDistinct:
        st.parents = {nd.left};
        st.run = [finalize](std::size_t,
                            const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::sort(rows.begin(), rows.end());
          rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
          return finalize(std::move(rows));
        };
        break;
    }
    job.stages.push_back(std::move(st));
  }
  dist::StageSpec fin;
  fin.name = "collect";
  fin.ntasks = ntasks;
  fin.parents = plan.sinks;
  fin.run = [nsinks = plan.sinks.size()](
                std::size_t, const std::vector<std::vector<Bytes>>& in) {
    std::vector<Row> rows;
    for (std::size_t pi = 0; pi < nsinks; ++pi) {
      auto part = gather_rows(in, pi);
      rows.insert(rows.end(), part.begin(), part.end());
    }
    return std::vector<Bytes>{to_bytes(rows)};
  };
  job.stages.push_back(std::move(fin));
  return job;
}

std::vector<Row> rows_from_result(const dist::JobResult& res) {
  std::vector<Row> rows;
  for (const auto& blocks : res.output) {
    for (const Bytes& b : blocks) {
      auto part = from_bytes<std::vector<Row>>(b);
      rows.insert(rows.end(), part.begin(), part.end());
    }
  }
  return rows;
}

}  // namespace hpbdc::plan
