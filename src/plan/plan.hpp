#pragma once
// First-class logical-plan IR shared by every engine in the repo. A
// LogicalPlan is a DAG of (key, value)-row operators; the chaos generator
// (src/chaos/plan_gen) produces them, the rule-based optimizer
// (plan/optimizer.hpp) rewrites them, and the two lowerings
// (plan/lower.hpp) execute them on the shared-memory dataflow engine and on
// the distributed runtime. Both lowerings call the exact same per-operator
// row functions declared here, so a multiset difference between two
// executions of the same plan is a scheduling/optimizer bug, never an
// operator-semantics mismatch.
//
// Every operator is a function of the input row MULTISET only (map / filter
// / flat_map are per-row, reduce_by_key's combine is commutative and
// associative, sort_by is a multiset identity, distinct is multiset→set),
// which is what makes rewrites checkable with a canonical sorted-bytes
// comparison — see canonical_bytes().

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hpp"

namespace hpbdc::plan {

/// Every edge in a plan carries (key, value) rows, so any operator's output
/// can feed any other operator.
using Row = std::pair<std::uint64_t, std::uint64_t>;

/// Keys live in a small fixed domain so reduce_by_key and join always see
/// collisions (the interesting case) at harness row counts.
inline constexpr std::uint64_t kKeyDomain = 64;

enum class OpKind : std::uint8_t {
  kSource,       // seeded synthetic rows
  kMap,          // key and value remix (salted hash)
  kFilter,       // keep rows whose salted hash of (key, value) is even
  kFlatMap,      // 0..2 derived rows per input row
  kReduceByKey,  // wrapping-sum combine (commutative + associative)
  kJoin,         // inner join of two parents on key
  kSortBy,       // multiset identity; exercises the sort paths
  kDistinct,     // row-level dedup
  kMapValues,    // key-preserving value remix (filters on key commute past it)
  kFilterKey,    // keep rows whose salted hash of the key alone is even
  kFused,        // optimizer-built pipeline of narrow steps; one stage
};

/// Keep in sync with the enum above; op_name()'s switch has no default so
/// -Wswitch flags a missing case, and the static_assert in plan.cpp pins the
/// count — adding a kind without naming it is a compile-time error, not a
/// "?" in a shrink --replay line.
inline constexpr std::size_t kOpKindCount = 11;

const char* op_name(OpKind k);

/// One element of a kFused pipeline: a narrow op (or the source head) plus
/// the salt it runs with. `rows` and the source-shape fields are meaningful
/// only when op == kSource.
struct NarrowStep {
  OpKind op = OpKind::kMap;
  std::uint64_t salt = 0;
  std::uint64_t rows = 0;
  std::uint64_t key_domain = 0;  // source head: 0 = kKeyDomain
  std::uint64_t skew = 0;        // source head: hot-key permille
  bool distinct_keys = false;    // source head: keys are 0..n-1 (dim table)
  friend bool operator==(const NarrowStep&, const NarrowStep&) = default;
};

struct PlanNode {
  static constexpr std::size_t kNoParent = ~std::size_t{0};
  OpKind op = OpKind::kSource;
  std::size_t left = kNoParent;
  std::size_t right = kNoParent;  // joins only
  std::uint64_t salt = 0;         // per-node mixing constant
  std::uint64_t rows = 0;         // sources only: row count
  bool checkpoint = false;        // dist execution persists this stage
  // ---- source shape (kSource only; result-determining, fingerprinted) ----
  /// Key domain of the source (0 = the default kKeyDomain). BigBench-style
  /// workloads use wide fact domains and narrow dimension domains.
  std::uint64_t key_domain = 0;
  /// Skew: this permille of the rows lands on one deterministic hot key
  /// (0 = uniform). The CMS-driven skew salting in the cost model exists
  /// because of sources like these.
  std::uint64_t skew = 0;
  /// Dimension-table shape: keys are exactly 0..n-1 (mod domain) instead of
  /// uniform draws, so every key appears once — the classic star-schema
  /// build side.
  bool distinct_keys = false;
  /// kFused only: the pipelined steps, parent-first. steps[0] may be a
  /// kSource head, in which case the node has no parent.
  std::vector<NarrowStep> steps;
  /// Optimizer rule 3: pre-aggregate this node's output by key (map-side
  /// combine) before the stage boundary. Sound only because the optimizer
  /// sets it solely when the single consumer is a kReduceByKey with the
  /// same commutative+associative combine.
  bool combine_output = false;
  // ---- cost-model annotations (set by plan::cost_optimize) ---------------
  // Physical hints only: every lowering produces the same row multiset with
  // or without them. They are still folded into fingerprint() so the serve
  // result cache never aliases plans optimized under different cost
  // parameters (their JobResults differ in stages/spans even when rows
  // agree).
  /// kJoin: hash-join build side. true (default) builds from the left
  /// parent, matching the historical local_join; the cost model flips it
  /// when the right side is estimated smaller.
  bool build_left = true;
  /// kJoin: skew-salting fanout. 0 = off. When > 0 with a non-empty
  /// hot_keys list, the dist lowering replicates hot build rows to every
  /// task and spreads hot probe rows across tasks, and the columnar radix
  /// join splits oversized partitions into this many probe sub-tasks.
  std::uint32_t salt_fanout = 0;
  /// kJoin: CMS-detected heavy-hitter keys on the probe side.
  std::vector<std::uint64_t> hot_keys;
  friend bool operator==(const PlanNode&, const PlanNode&) = default;
};

struct LogicalPlan {
  std::uint64_t seed = 0;
  std::uint64_t rows_per_source = 0;
  /// Non-zero marks the plan as cost-optimized: the stats salt the cost
  /// model sampled under (plan::cost_optimize). Folded into fingerprint()
  /// so differently-costed plans never alias in the serve result cache.
  std::uint64_t stats_salt = 0;
  std::vector<PlanNode> nodes;     // parents always precede children
  std::vector<std::size_t> sinks;  // their union is the plan result
  /// One-line structure summary, e.g. "0:source 1:map(0) 2:join(0,1)".
  /// Fused nodes render their pipeline ("0:fused[source+map+filter]"), a
  /// combine_output flag renders as a "+combine" suffix, shaped sources as
  /// a "{d..}" suffix, and cost annotations as "+br" (build right) /
  /// "+saltN" (skew fanout).
  std::string describe() const;
  friend bool operator==(const LogicalPlan&, const LogicalPlan&) = default;
};

// ---- per-operator row semantics -------------------------------------------
// Single source of truth for every engine and for the optimizer's fused
// pipelines.

std::vector<Row> source_rows(std::uint64_t salt, std::uint64_t n);

/// Shaped source: `key_domain` widens/narrows the key space (0 =
/// kKeyDomain), `skew_permille` routes that fraction of rows to one
/// deterministic hot key, and `distinct_keys` emits keys 0..n-1 (mod
/// domain) in order — the dimension-table shape. With default shape
/// parameters this is bit-identical to source_rows (same RNG draw
/// sequence).
std::vector<Row> source_rows_ex(std::uint64_t salt, std::uint64_t n,
                                std::uint64_t key_domain,
                                std::uint64_t skew_permille,
                                bool distinct_keys);

/// The rows of a kSource node / fused source head, shape included.
inline std::vector<Row> node_source_rows(const PlanNode& nd) {
  return source_rows_ex(nd.salt, nd.rows, nd.key_domain, nd.skew,
                        nd.distinct_keys);
}
inline std::vector<Row> step_source_rows(const NarrowStep& s) {
  return source_rows_ex(s.salt, s.rows, s.key_domain, s.skew, s.distinct_keys);
}

Row map_row(const Row& r, std::uint64_t salt);
Row map_value_row(const Row& r, std::uint64_t salt);  // keeps r.first
bool filter_keep(const Row& r, std::uint64_t salt);
bool filter_key_keep(const Row& r, std::uint64_t salt);  // reads r.first only
void flat_map_row(const Row& r, std::uint64_t salt, std::vector<Row>& out);
std::uint64_t reduce_combine(std::uint64_t a, std::uint64_t b);
Row join_rows(std::uint64_t k, std::uint64_t v, std::uint64_t w);
std::uint64_t sort_key(const Row& r, std::uint64_t salt);

/// True for the per-row ops the fusion rule may pipeline (map, map_values,
/// filter, filter_key, flat_map).
bool is_narrow(OpKind k);

/// Run a fused pipeline's steps [first, steps.size()) over `rows` in one
/// pass. Used by both lowerings and usable on any row slice: every step is
/// per-row, so applying the pipeline to disjoint slices and uniting the
/// outputs equals applying it to the union.
std::vector<Row> apply_steps(const std::vector<NarrowStep>& steps,
                             std::size_t first, std::vector<Row> rows);

/// In-place map-side combine: collapse `rows` to one row per key with
/// reduce_combine, deterministically ordered by key.
std::vector<Row> combine_rows(std::vector<Row> rows);

/// Canonical fingerprint for differential oracles: sort the row multiset
/// and serialize — two runs agree iff these bytes are identical.
Bytes canonical_bytes(std::vector<Row> rows);

/// Strict static upper bound on the key values each node can emit (keys are
/// always < the bound). Sources are bounded by their domain, key remixes by
/// kKeyDomain, key-preserving ops by their parent, joins by the tighter
/// parent. The columnar backend keys its dense aggregation and join layouts
/// off this, and the stats layer seeds its propagation with it.
std::vector<std::uint64_t> key_upper_bounds(const LogicalPlan& plan);

/// Stable 64-bit structural fingerprint of a plan, the cache/admission key
/// of the serve layer (src/serve). Independent of node NUMBERING — each
/// node hashes from its operator kind, parameters (salt, rows, source
/// shape, fused steps, combine_output), and its parents' hashes, and the
/// plan folds the sink hashes in sorted order — so two topological
/// orderings of the same DAG fingerprint identically, while any change to
/// an op kind, parameter, or edge changes the value. The cost-model
/// parameters (stats_salt, build_left, salt_fanout, hot_keys) are folded in
/// as well: they don't change result rows, but plans optimized under
/// different cost parameters must never alias in the serve result cache.
/// The checkpoint flag and the seed/rows_per_source metadata are execution
/// hints, not result-determining structure, and are excluded. Join parents
/// stay ordered (join_rows is asymmetric).
std::uint64_t fingerprint(const LogicalPlan& plan);

}  // namespace hpbdc::plan
