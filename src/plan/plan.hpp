#pragma once
// First-class logical-plan IR shared by every engine in the repo. A
// LogicalPlan is a DAG of (key, value)-row operators; the chaos generator
// (src/chaos/plan_gen) produces them, the rule-based optimizer
// (plan/optimizer.hpp) rewrites them, and the two lowerings
// (plan/lower.hpp) execute them on the shared-memory dataflow engine and on
// the distributed runtime. Both lowerings call the exact same per-operator
// row functions declared here, so a multiset difference between two
// executions of the same plan is a scheduling/optimizer bug, never an
// operator-semantics mismatch.
//
// Every operator is a function of the input row MULTISET only (map / filter
// / flat_map are per-row, reduce_by_key's combine is commutative and
// associative, sort_by is a multiset identity, distinct is multiset→set),
// which is what makes rewrites checkable with a canonical sorted-bytes
// comparison — see canonical_bytes().

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hpp"

namespace hpbdc::plan {

/// Every edge in a plan carries (key, value) rows, so any operator's output
/// can feed any other operator.
using Row = std::pair<std::uint64_t, std::uint64_t>;

/// Keys live in a small fixed domain so reduce_by_key and join always see
/// collisions (the interesting case) at harness row counts.
inline constexpr std::uint64_t kKeyDomain = 64;

enum class OpKind : std::uint8_t {
  kSource,       // seeded synthetic rows
  kMap,          // key and value remix (salted hash)
  kFilter,       // keep rows whose salted hash of (key, value) is even
  kFlatMap,      // 0..2 derived rows per input row
  kReduceByKey,  // wrapping-sum combine (commutative + associative)
  kJoin,         // inner join of two parents on key
  kSortBy,       // multiset identity; exercises the sort paths
  kDistinct,     // row-level dedup
  kMapValues,    // key-preserving value remix (filters on key commute past it)
  kFilterKey,    // keep rows whose salted hash of the key alone is even
  kFused,        // optimizer-built pipeline of narrow steps; one stage
};

/// Keep in sync with the enum above; op_name()'s switch has no default so
/// -Wswitch flags a missing case, and the static_assert in plan.cpp pins the
/// count — adding a kind without naming it is a compile-time error, not a
/// "?" in a shrink --replay line.
inline constexpr std::size_t kOpKindCount = 11;

const char* op_name(OpKind k);

/// One element of a kFused pipeline: a narrow op (or the source head) plus
/// the salt it runs with. `rows` is meaningful only when op == kSource.
struct NarrowStep {
  OpKind op = OpKind::kMap;
  std::uint64_t salt = 0;
  std::uint64_t rows = 0;
  friend bool operator==(const NarrowStep&, const NarrowStep&) = default;
};

struct PlanNode {
  static constexpr std::size_t kNoParent = ~std::size_t{0};
  OpKind op = OpKind::kSource;
  std::size_t left = kNoParent;
  std::size_t right = kNoParent;  // joins only
  std::uint64_t salt = 0;         // per-node mixing constant
  std::uint64_t rows = 0;         // sources only: row count
  bool checkpoint = false;        // dist execution persists this stage
  /// kFused only: the pipelined steps, parent-first. steps[0] may be a
  /// kSource head, in which case the node has no parent.
  std::vector<NarrowStep> steps;
  /// Optimizer rule 3: pre-aggregate this node's output by key (map-side
  /// combine) before the stage boundary. Sound only because the optimizer
  /// sets it solely when the single consumer is a kReduceByKey with the
  /// same commutative+associative combine.
  bool combine_output = false;
  friend bool operator==(const PlanNode&, const PlanNode&) = default;
};

struct LogicalPlan {
  std::uint64_t seed = 0;
  std::uint64_t rows_per_source = 0;
  std::vector<PlanNode> nodes;     // parents always precede children
  std::vector<std::size_t> sinks;  // their union is the plan result
  /// One-line structure summary, e.g. "0:source 1:map(0) 2:join(0,1)".
  /// Fused nodes render their pipeline ("0:fused[source+map+filter]") and a
  /// combine_output flag renders as a "+combine" suffix.
  std::string describe() const;
  friend bool operator==(const LogicalPlan&, const LogicalPlan&) = default;
};

// ---- per-operator row semantics -------------------------------------------
// Single source of truth for every engine and for the optimizer's fused
// pipelines.

std::vector<Row> source_rows(std::uint64_t salt, std::uint64_t n);
Row map_row(const Row& r, std::uint64_t salt);
Row map_value_row(const Row& r, std::uint64_t salt);  // keeps r.first
bool filter_keep(const Row& r, std::uint64_t salt);
bool filter_key_keep(const Row& r, std::uint64_t salt);  // reads r.first only
void flat_map_row(const Row& r, std::uint64_t salt, std::vector<Row>& out);
std::uint64_t reduce_combine(std::uint64_t a, std::uint64_t b);
Row join_rows(std::uint64_t k, std::uint64_t v, std::uint64_t w);
std::uint64_t sort_key(const Row& r, std::uint64_t salt);

/// True for the per-row ops the fusion rule may pipeline (map, map_values,
/// filter, filter_key, flat_map).
bool is_narrow(OpKind k);

/// Run a fused pipeline's steps [first, steps.size()) over `rows` in one
/// pass. Used by both lowerings and usable on any row slice: every step is
/// per-row, so applying the pipeline to disjoint slices and uniting the
/// outputs equals applying it to the union.
std::vector<Row> apply_steps(const std::vector<NarrowStep>& steps,
                             std::size_t first, std::vector<Row> rows);

/// In-place map-side combine: collapse `rows` to one row per key with
/// reduce_combine, deterministically ordered by key.
std::vector<Row> combine_rows(std::vector<Row> rows);

/// Canonical fingerprint for differential oracles: sort the row multiset
/// and serialize — two runs agree iff these bytes are identical.
Bytes canonical_bytes(std::vector<Row> rows);

/// Stable 64-bit structural fingerprint of a plan, the cache/admission key
/// of the serve layer (src/serve). Independent of node NUMBERING — each
/// node hashes from its operator kind, parameters (salt, rows, fused steps,
/// combine_output), and its parents' hashes, and the plan folds the sink
/// hashes in sorted order — so two topological orderings of the same DAG
/// fingerprint identically, while any change to an op kind, parameter, or
/// edge changes the value. The checkpoint flag and the seed/rows_per_source
/// metadata are execution hints, not result-determining structure, and are
/// excluded. Join parents stay ordered (join_rows is asymmetric).
std::uint64_t fingerprint(const LogicalPlan& plan);

}  // namespace hpbdc::plan
