#pragma once
// Hash shuffle — the engine's wide-dependency primitive (experiment T2).
// Map side: every input partition scatters its records into nparts buckets
// by key hash, optionally pre-aggregating with a combiner (the map-side
// combine that makes reduce_by_key cheap on skewed keys). Reduce side: for
// each output partition, the matching bucket of every map task is merged.
// Both sides run data-parallel on the pool. The same key always lands in
// the same output partition (hash % nparts), which downstream joins rely on.
//
// Shuffles take the Context (not a bare Executor): record movement flows
// into the Context's MetricsRegistry and each shuffle opens a span on its
// TraceSession when attached. Counters emitted per shuffle:
//   shuffle.count              shuffles executed
//   shuffle.records_in         records leaving map tasks pre-combine
//   shuffle.records_moved      records crossing the shuffle boundary
//   shuffle.partition_records  histogram of output-partition sizes (skew)
//   shuffle.max_partition      gauge; high-water mark = worst skew seen

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "dataflow/dataset.hpp"
#include "exec/parallel.hpp"
#include "obs/trace.hpp"

namespace hpbdc::dataflow {

namespace detail {

/// Publish one shuffle's movement counters + output skew. `out` sizes feed
/// the partition-size histogram; max feeds the skew gauge.
template <typename Row>
void record_shuffle_metrics(Context& ctx, std::uint64_t records_in,
                            std::uint64_t records_moved,
                            const Partitions<Row>& out) {
  obs::MetricsRegistry* m = ctx.metrics();
  if (m == nullptr) return;
  m->counter("shuffle.count").add(1);
  m->counter("shuffle.records_in").add(records_in);
  m->counter("shuffle.records_moved").add(records_moved);
  auto& sizes = m->histogram("shuffle.partition_records");
  std::size_t largest = 0;
  for (const auto& p : out) {
    sizes.record(static_cast<double>(p.size()));
    largest = std::max(largest, p.size());
  }
  m->gauge("shuffle.max_partition").set(static_cast<std::int64_t>(largest));
}

}  // namespace detail

/// Scatter/gather without combining: the output partition p holds every
/// (k, v) with hash(k) % nparts == p, map-task order preserved within p.
template <typename K, typename V>
Partitions<std::pair<K, V>> hash_shuffle(Context& ctx,
                                         const Partitions<std::pair<K, V>>& in,
                                         std::size_t nparts) {
  obs::Span span(ctx.trace(), "hash_shuffle", "shuffle");
  Executor& pool = ctx.pool();
  std::vector<Partitions<std::pair<K, V>>> local(in.size());
  parallel_for(pool, 0, in.size(), [&](std::size_t p) {
    local[p].assign(nparts, {});
    for (const auto& kv : in[p]) {
      local[p][Hasher<K>{}(kv.first) % nparts].push_back(kv);
    }
  });
  Partitions<std::pair<K, V>> out(nparts);
  parallel_for(pool, 0, nparts, [&](std::size_t b) {
    std::size_t total = 0;
    for (const auto& l : local) total += l[b].size();
    out[b].reserve(total);
    for (auto& l : local) {
      out[b].insert(out[b].end(), std::make_move_iterator(l[b].begin()),
                    std::make_move_iterator(l[b].end()));
    }
  });
  if (ctx.metrics() != nullptr || ctx.trace() != nullptr) {
    std::uint64_t n = 0;
    for (const auto& p : in) n += p.size();
    detail::record_shuffle_metrics(ctx, n, n, out);
    span.set_items(n);
  }
  return out;
}

/// Shuffle with map-side combining: per map task, values sharing a key are
/// pre-merged with `combine` before crossing the boundary; the reduce side
/// completes the aggregation. Output: one (k, aggregate) per distinct key.
template <typename K, typename V, typename Combine>
Partitions<std::pair<K, V>> combining_shuffle(Context& ctx,
                                              const Partitions<std::pair<K, V>>& in,
                                              std::size_t nparts, Combine combine,
                                              bool map_side_combine = true) {
  obs::Span span(ctx.trace(), "combining_shuffle", "shuffle");
  Executor& pool = ctx.pool();
  std::vector<Partitions<std::pair<K, V>>> local(in.size());
  std::vector<std::uint64_t> moved(in.size(), 0);
  parallel_for(pool, 0, in.size(), [&](std::size_t p) {
    local[p].assign(nparts, {});
    if (map_side_combine) {
      std::vector<std::unordered_map<K, V, Hasher<K>>> agg(nparts);
      for (const auto& kv : in[p]) {
        auto& bucket = agg[Hasher<K>{}(kv.first) % nparts];
        auto [it, inserted] = bucket.try_emplace(kv.first, kv.second);
        if (!inserted) it->second = combine(std::move(it->second), kv.second);
      }
      for (std::size_t b = 0; b < nparts; ++b) {
        local[p][b].assign(std::make_move_iterator(agg[b].begin()),
                           std::make_move_iterator(agg[b].end()));
        moved[p] += local[p][b].size();
      }
    } else {
      for (const auto& kv : in[p]) {
        local[p][Hasher<K>{}(kv.first) % nparts].push_back(kv);
      }
      for (std::size_t b = 0; b < nparts; ++b) moved[p] += local[p][b].size();
    }
  });
  Partitions<std::pair<K, V>> out(nparts);
  parallel_for(pool, 0, nparts, [&](std::size_t b) {
    std::unordered_map<K, V, Hasher<K>> agg;
    for (auto& l : local) {
      for (auto& kv : l[b]) {
        auto [it, inserted] = agg.try_emplace(kv.first, std::move(kv.second));
        if (!inserted) it->second = combine(std::move(it->second), std::move(kv.second));
      }
    }
    out[b].assign(std::make_move_iterator(agg.begin()),
                  std::make_move_iterator(agg.end()));
  });
  if (ctx.metrics() != nullptr || ctx.trace() != nullptr) {
    std::uint64_t n = 0, m = 0;
    for (const auto& p : in) n += p.size();
    for (auto v : moved) m += v;
    detail::record_shuffle_metrics(ctx, n, m, out);
    span.set_items(m);
  }
  return out;
}

}  // namespace hpbdc::dataflow
