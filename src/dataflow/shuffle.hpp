#pragma once
// Hash shuffle — the engine's wide-dependency primitive (experiment T2).
// Map side: every input partition scatters its records into nparts buckets
// by key hash, optionally pre-aggregating with a combiner (the map-side
// combine that makes reduce_by_key cheap on skewed keys). Reduce side: for
// each output partition, the matching bucket of every map task is merged.
// Both sides run data-parallel on the pool. The same key always lands in
// the same output partition (hash % nparts), which downstream joins rely on.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "dataflow/dataset.hpp"
#include "exec/parallel.hpp"

namespace hpbdc::dataflow {

struct ShuffleStats {
  std::uint64_t records_in = 0;    // records leaving map tasks pre-combine
  std::uint64_t records_moved = 0; // records crossing the shuffle boundary
};

/// Scatter/gather without combining: the output partition p holds every
/// (k, v) with hash(k) % nparts == p, map-task order preserved within p.
template <typename K, typename V>
Partitions<std::pair<K, V>> hash_shuffle(Executor& pool,
                                         const Partitions<std::pair<K, V>>& in,
                                         std::size_t nparts,
                                         ShuffleStats* stats = nullptr) {
  std::vector<Partitions<std::pair<K, V>>> local(in.size());
  parallel_for(pool, 0, in.size(), [&](std::size_t p) {
    local[p].assign(nparts, {});
    for (const auto& kv : in[p]) {
      local[p][Hasher<K>{}(kv.first) % nparts].push_back(kv);
    }
  });
  Partitions<std::pair<K, V>> out(nparts);
  parallel_for(pool, 0, nparts, [&](std::size_t b) {
    std::size_t total = 0;
    for (const auto& l : local) total += l[b].size();
    out[b].reserve(total);
    for (auto& l : local) {
      out[b].insert(out[b].end(), std::make_move_iterator(l[b].begin()),
                    std::make_move_iterator(l[b].end()));
    }
  });
  if (stats != nullptr) {
    std::uint64_t n = 0;
    for (const auto& p : in) n += p.size();
    stats->records_in = n;
    stats->records_moved = n;
  }
  return out;
}

/// Shuffle with map-side combining: per map task, values sharing a key are
/// pre-merged with `combine` before crossing the boundary; the reduce side
/// completes the aggregation. Output: one (k, aggregate) per distinct key.
template <typename K, typename V, typename Combine>
Partitions<std::pair<K, V>> combining_shuffle(Executor& pool,
                                              const Partitions<std::pair<K, V>>& in,
                                              std::size_t nparts, Combine combine,
                                              bool map_side_combine = true,
                                              ShuffleStats* stats = nullptr) {
  std::vector<Partitions<std::pair<K, V>>> local(in.size());
  std::vector<std::uint64_t> moved(in.size(), 0);
  parallel_for(pool, 0, in.size(), [&](std::size_t p) {
    local[p].assign(nparts, {});
    if (map_side_combine) {
      std::vector<std::unordered_map<K, V, Hasher<K>>> agg(nparts);
      for (const auto& kv : in[p]) {
        auto& bucket = agg[Hasher<K>{}(kv.first) % nparts];
        auto [it, inserted] = bucket.try_emplace(kv.first, kv.second);
        if (!inserted) it->second = combine(std::move(it->second), kv.second);
      }
      for (std::size_t b = 0; b < nparts; ++b) {
        local[p][b].assign(std::make_move_iterator(agg[b].begin()),
                           std::make_move_iterator(agg[b].end()));
        moved[p] += local[p][b].size();
      }
    } else {
      for (const auto& kv : in[p]) {
        local[p][Hasher<K>{}(kv.first) % nparts].push_back(kv);
      }
      for (std::size_t b = 0; b < nparts; ++b) moved[p] += local[p][b].size();
    }
  });
  Partitions<std::pair<K, V>> out(nparts);
  parallel_for(pool, 0, nparts, [&](std::size_t b) {
    std::unordered_map<K, V, Hasher<K>> agg;
    for (auto& l : local) {
      for (auto& kv : l[b]) {
        auto [it, inserted] = agg.try_emplace(kv.first, std::move(kv.second));
        if (!inserted) it->second = combine(std::move(it->second), std::move(kv.second));
      }
    }
    out[b].assign(std::make_move_iterator(agg.begin()),
                  std::make_move_iterator(agg.end()));
  });
  if (stats != nullptr) {
    std::uint64_t n = 0, m = 0;
    for (const auto& p : in) n += p.size();
    for (auto v : moved) m += v;
    stats->records_in = n;
    stats->records_moved = m;
  }
  return out;
}

}  // namespace hpbdc::dataflow
