#pragma once
// Key-value operations over Dataset<std::pair<K, V>>: the wide
// transformations (reduce_by_key, group_by_key, joins, cogroup) built on
// hash_shuffle, plus narrow conveniences (map_values, keys, values) and
// aggregate actions (count_by_key, top_k_by_value). All are lazy except the
// actions, matching dataset.hpp semantics.

#include <optional>
#include <queue>
#include <unordered_map>

#include "dataflow/dataset.hpp"
#include "dataflow/shuffle.hpp"

namespace hpbdc::dataflow {

/// Merge all values per key with an associative combine. One output record
/// per distinct key; map-side combining is on by default.
template <typename K, typename V, typename Combine>
Dataset<std::pair<K, V>> reduce_by_key(const Dataset<std::pair<K, V>>& ds,
                                       Combine combine, std::size_t nparts = 0,
                                       bool map_side_combine = true) {
  Context& ctx = ds.context();
  const std::size_t n = nparts != 0 ? nparts : ctx.default_partitions();
  return Dataset<std::pair<K, V>>::from_thunk(ctx, [ds, combine, n, map_side_combine]() {
    obs::Span span(ds.context().trace(), "reduce_by_key", "stage");
    return combining_shuffle(ds.context(), ds.partitions(), n, combine,
                             map_side_combine);
  });
}

/// Gather all values per key: (k, [v...]). No map-side combine possible.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> group_by_key(const Dataset<std::pair<K, V>>& ds,
                                                   std::size_t nparts = 0) {
  Context& ctx = ds.context();
  const std::size_t n = nparts != 0 ? nparts : ctx.default_partitions();
  return Dataset<std::pair<K, std::vector<V>>>::from_thunk(ctx, [ds, n]() {
    obs::Span span(ds.context().trace(), "group_by_key", "stage");
    auto shuffled = hash_shuffle(ds.context(), ds.partitions(), n);
    Partitions<std::pair<K, std::vector<V>>> out(shuffled.size());
    parallel_for(ds.context().pool(), 0, shuffled.size(), [&](std::size_t p) {
      std::unordered_map<K, std::vector<V>, Hasher<K>> groups;
      for (auto& kv : shuffled[p]) {
        groups[kv.first].push_back(std::move(kv.second));
      }
      out[p].assign(std::make_move_iterator(groups.begin()),
                    std::make_move_iterator(groups.end()));
    });
    return out;
  });
}

template <typename K, typename V, typename Fn,
          typename U = std::invoke_result_t<Fn, const V&>>
Dataset<std::pair<K, U>> map_values(const Dataset<std::pair<K, V>>& ds, Fn fn) {
  return ds.map([fn](const std::pair<K, V>& kv) {
    return std::pair<K, U>(kv.first, fn(kv.second));
  });
}

template <typename K, typename V>
Dataset<K> keys(const Dataset<std::pair<K, V>>& ds) {
  return ds.map([](const std::pair<K, V>& kv) { return kv.first; });
}

template <typename K, typename V>
Dataset<V> values(const Dataset<std::pair<K, V>>& ds) {
  return ds.map([](const std::pair<K, V>& kv) { return kv.second; });
}

/// Inner hash join: one output record per matching (left, right) pair.
/// Both sides are co-partitioned by key hash, then each partition builds a
/// hash table on the right side and streams the left side through it.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<V, W>>> join(const Dataset<std::pair<K, V>>& left,
                                            const Dataset<std::pair<K, W>>& right,
                                            std::size_t nparts = 0) {
  Context& ctx = left.context();
  const std::size_t n = nparts != 0 ? nparts : ctx.default_partitions();
  using Out = std::pair<K, std::pair<V, W>>;
  return Dataset<Out>::from_thunk(ctx, [left, right, n]() {
    obs::Span span(left.context().trace(), "join", "stage");
    Context& c = left.context();
    auto l = hash_shuffle(c, left.partitions(), n);
    auto r = hash_shuffle(c, right.partitions(), n);
    Partitions<Out> out(n);
    parallel_for(c.pool(), 0, n, [&](std::size_t p) {
      std::unordered_multimap<K, W, Hasher<K>> table;
      table.reserve(r[p].size());
      for (auto& kv : r[p]) table.emplace(kv.first, std::move(kv.second));
      for (const auto& kv : l[p]) {
        auto [lo, hi] = table.equal_range(kv.first);
        for (auto it = lo; it != hi; ++it) {
          out[p].emplace_back(kv.first, std::make_pair(kv.second, it->second));
        }
      }
    });
    return out;
  });
}

/// Left outer join: right side is optional.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<V, std::optional<W>>>> left_outer_join(
    const Dataset<std::pair<K, V>>& left, const Dataset<std::pair<K, W>>& right,
    std::size_t nparts = 0) {
  Context& ctx = left.context();
  const std::size_t n = nparts != 0 ? nparts : ctx.default_partitions();
  using Out = std::pair<K, std::pair<V, std::optional<W>>>;
  return Dataset<Out>::from_thunk(ctx, [left, right, n]() {
    obs::Span span(left.context().trace(), "left_outer_join", "stage");
    Context& c = left.context();
    auto l = hash_shuffle(c, left.partitions(), n);
    auto r = hash_shuffle(c, right.partitions(), n);
    Partitions<Out> out(n);
    parallel_for(c.pool(), 0, n, [&](std::size_t p) {
      std::unordered_multimap<K, W, Hasher<K>> table;
      table.reserve(r[p].size());
      for (auto& kv : r[p]) table.emplace(kv.first, std::move(kv.second));
      for (const auto& kv : l[p]) {
        auto [lo, hi] = table.equal_range(kv.first);
        if (lo == hi) {
          out[p].emplace_back(kv.first, std::make_pair(kv.second, std::nullopt));
        } else {
          for (auto it = lo; it != hi; ++it) {
            out[p].emplace_back(kv.first,
                                std::make_pair(kv.second, std::optional<W>(it->second)));
          }
        }
      }
    });
    return out;
  });
}

/// Cogroup: (k, ([v...], [w...])) for every key present on either side.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> cogroup(
    const Dataset<std::pair<K, V>>& left, const Dataset<std::pair<K, W>>& right,
    std::size_t nparts = 0) {
  Context& ctx = left.context();
  const std::size_t n = nparts != 0 ? nparts : ctx.default_partitions();
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  return Dataset<Out>::from_thunk(ctx, [left, right, n]() {
    obs::Span span(left.context().trace(), "cogroup", "stage");
    Context& c = left.context();
    auto l = hash_shuffle(c, left.partitions(), n);
    auto r = hash_shuffle(c, right.partitions(), n);
    Partitions<Out> out(n);
    parallel_for(c.pool(), 0, n, [&](std::size_t p) {
      std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>, Hasher<K>> groups;
      for (auto& kv : l[p]) groups[kv.first].first.push_back(std::move(kv.second));
      for (auto& kv : r[p]) groups[kv.first].second.push_back(std::move(kv.second));
      out[p].assign(std::make_move_iterator(groups.begin()),
                    std::make_move_iterator(groups.end()));
    });
    return out;
  });
}

/// Sort-merge join: both sides are range-partitioned and sorted by key,
/// then each co-partition pair is merged. Same output as the hash `join`,
/// but the result is globally key-ordered and per-partition memory is
/// bounded by the run length of one key — the strategy engines pick when
/// the build side exceeds memory. Requires K to be totally ordered.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<V, W>>> sort_merge_join(
    const Dataset<std::pair<K, V>>& left, const Dataset<std::pair<K, W>>& right,
    std::size_t nparts = 0) {
  Context& ctx = left.context();
  const std::size_t n = nparts != 0 ? nparts : ctx.default_partitions();
  using Out = std::pair<K, std::pair<V, W>>;
  return Dataset<Out>::from_thunk(ctx, [left, right, n]() {
    obs::Span span(left.context().trace(), "sort_merge_join", "stage");
    Context& c = left.context();
    // Co-partition by key hash (any consistent partitioning works; hash
    // keeps the splitter logic out of the join), then sort per partition.
    auto l = hash_shuffle(c, left.partitions(), n);
    auto r = hash_shuffle(c, right.partitions(), n);
    Partitions<Out> out(n);
    parallel_for(c.pool(), 0, n, [&](std::size_t p) {
      auto by_key = [](const auto& a, const auto& b) { return a.first < b.first; };
      std::sort(l[p].begin(), l[p].end(), by_key);
      std::sort(r[p].begin(), r[p].end(), by_key);
      std::size_t i = 0, j = 0;
      while (i < l[p].size() && j < r[p].size()) {
        if (l[p][i].first < r[p][j].first) {
          ++i;
        } else if (r[p][j].first < l[p][i].first) {
          ++j;
        } else {
          // Equal-key runs: emit the cross product.
          const K& key = l[p][i].first;
          std::size_t i_end = i, j_end = j;
          while (i_end < l[p].size() && !(key < l[p][i_end].first)) ++i_end;
          while (j_end < r[p].size() && !(key < r[p][j_end].first)) ++j_end;
          for (std::size_t a = i; a < i_end; ++a) {
            for (std::size_t b = j; b < j_end; ++b) {
              out[p].emplace_back(key, std::make_pair(l[p][a].second, r[p][b].second));
            }
          }
          i = i_end;
          j = j_end;
        }
      }
    });
    return out;
  });
}

/// Skew-resistant reduce_by_key: keys are salted with a per-record suffix
/// so a single hot key spreads over `salts` reducers (phase 1), then the
/// partial aggregates are combined per original key (phase 2). Costs one
/// extra (tiny) shuffle; wins when one key dominates a partition.
template <typename K, typename V, typename Combine>
Dataset<std::pair<K, V>> salted_reduce_by_key(const Dataset<std::pair<K, V>>& ds,
                                              Combine combine, std::size_t salts = 16,
                                              std::size_t nparts = 0) {
  if (salts == 0) salts = 1;
  using Salted = std::pair<K, std::uint32_t>;
  auto salted = ds.map_partitions([salts](const std::vector<std::pair<K, V>>& part) {
    std::vector<std::pair<Salted, V>> out;
    out.reserve(part.size());
    std::uint32_t i = 0;
    for (const auto& kv : part) {
      out.emplace_back(Salted(kv.first, i++ % salts), kv.second);
    }
    return out;
  });
  auto phase1 = reduce_by_key(salted, combine, nparts);
  auto stripped = phase1.map([](const std::pair<Salted, V>& kv) {
    return std::pair<K, V>(kv.first.first, kv.second);
  });
  return reduce_by_key(stripped, combine, nparts);
}

/// Map-side (broadcast) join: the right side is collected into one hash
/// table shared by every left partition — no shuffle of the left side at
/// all. Only correct use: `right` small enough to hold in memory once.
template <typename K, typename V, typename W>
Dataset<std::pair<K, std::pair<V, W>>> broadcast_join(
    const Dataset<std::pair<K, V>>& left, const Dataset<std::pair<K, W>>& right) {
  Context& ctx = left.context();
  using Out = std::pair<K, std::pair<V, W>>;
  return Dataset<Out>::from_thunk(ctx, [left, right]() {
    obs::Span span(left.context().trace(), "broadcast_join", "stage");
    auto table = std::make_shared<std::unordered_multimap<K, W, Hasher<K>>>();
    for (const auto& part : right.partitions()) {
      for (const auto& kv : part) table->emplace(kv.first, kv.second);
    }
    const auto& in = left.partitions();
    Partitions<Out> out(in.size());
    parallel_for(left.context().pool(), 0, in.size(), [&](std::size_t p) {
      for (const auto& kv : in[p]) {
        auto [lo, hi] = table->equal_range(kv.first);
        for (auto it = lo; it != hi; ++it) {
          out[p].emplace_back(kv.first, std::make_pair(kv.second, it->second));
        }
      }
    });
    return out;
  });
}

/// Action: count occurrences of each key (map-side combined).
template <typename K, typename V>
std::vector<std::pair<K, std::size_t>> count_by_key(const Dataset<std::pair<K, V>>& ds) {
  auto counted =
      reduce_by_key(map_values(ds, [](const V&) { return std::size_t{1}; }),
                    [](std::size_t a, std::size_t b) { return a + b; });
  return counted.collect();
}

/// Action: the k records with the largest values (descending).
template <typename K, typename V>
std::vector<std::pair<K, V>> top_k_by_value(const Dataset<std::pair<K, V>>& ds,
                                            std::size_t k) {
  obs::Span span(ds.context().trace(), "top_k_by_value", "action");
  const auto& parts = ds.partitions();
  Executor& pool = ds.context().pool();
  auto cmp = [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
    return a.second > b.second;  // min-heap on value
  };
  std::vector<std::vector<std::pair<K, V>>> local(parts.size());
  parallel_for(pool, 0, parts.size(), [&](std::size_t p) {
    std::vector<std::pair<K, V>> heap;
    for (const auto& kv : parts[p]) {
      if (heap.size() < k) {
        heap.push_back(kv);
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (!heap.empty() && kv.second > heap.front().second) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = kv;
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
    local[p] = std::move(heap);
  });
  std::vector<std::pair<K, V>> all;
  for (auto& l : local) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace hpbdc::dataflow
