#pragma once
// Dataset<T>: an immutable, partitioned, lazily-evaluated collection — the
// core abstraction of the hpbdc dataflow engine (Spark-RDD-like semantics).
//
//  * Transformations (map, filter, flat_map, union_with, repartition,
//    distinct, sample, sort_by, zip_with_index) build lineage without
//    executing anything.
//  * Actions (collect, count, reduce, take, for_each_partition) force
//    evaluation; partitions evaluate in parallel on the Context's pool.
//  * Every dataset caches its partitions after first materialization
//    (std::call_once), so shared lineage never recomputes and concurrent
//    actions are safe.
//
// Key-value operations (reduce_by_key, join, ...) live in pair_ops.hpp.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "dataflow/context.hpp"
#include "exec/parallel.hpp"

namespace hpbdc::dataflow {

template <typename T>
using Partitions = std::vector<std::vector<T>>;

namespace detail {

template <typename T>
struct DatasetImpl {
  Context* ctx;
  std::function<Partitions<T>()> compute;  // cleared after materialization
  std::once_flag once;
  Partitions<T> data;

  const Partitions<T>& materialize() {
    bool computed_now = false;
    std::call_once(once, [this, &computed_now] {
      data = compute();
      compute = nullptr;  // release lineage closures (and parent refs)
      computed_now = true;
    });
    if (obs::MetricsRegistry* m = ctx->metrics()) {
      m->counter(computed_now ? "dataflow.cache.miss" : "dataflow.cache.hit").add(1);
    }
    return data;
  }
};

/// Total records across partitions — metric helper for narrow ops.
template <typename T>
std::uint64_t total_records(const Partitions<T>& parts) {
  std::uint64_t n = 0;
  for (const auto& p : parts) n += p.size();
  return n;
}

}  // namespace detail

template <typename T>
class Dataset {
 public:
  using value_type = T;

  Dataset() = default;

  /// Distribute a local vector over n partitions (contiguous slices).
  static Dataset parallelize(Context& ctx, std::vector<T> data, std::size_t n = 0) {
    if (n == 0) n = ctx.default_partitions();
    auto shared = std::make_shared<std::vector<T>>(std::move(data));
    return from_thunk(ctx, [shared, n]() {
      const std::size_t total = shared->size();
      const std::size_t parts = std::max<std::size_t>(1, n);
      Partitions<T> out(parts);
      const std::size_t base = total / parts;
      const std::size_t extra = total % parts;
      std::size_t off = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t len = base + (p < extra ? 1 : 0);
        out[p].assign(shared->begin() + static_cast<std::ptrdiff_t>(off),
                      shared->begin() + static_cast<std::ptrdiff_t>(off + len));
        off += len;
      }
      return out;
    });
  }

  /// Wrap pre-partitioned data without copying.
  static Dataset from_partitions(Context& ctx, Partitions<T> parts) {
    auto shared = std::make_shared<Partitions<T>>(std::move(parts));
    return from_thunk(ctx, [shared]() { return std::move(*shared); });
  }

  /// Generate n partitions on demand: gen(partition_index) -> partition.
  /// The generator runs in parallel at materialization time.
  static Dataset generate(Context& ctx, std::size_t n,
                          std::function<std::vector<T>(std::size_t)> gen) {
    Context* c = &ctx;
    return from_thunk(ctx, [c, n, gen = std::move(gen)]() {
      Partitions<T> out(n);
      parallel_for(c->pool(), 0, n, [&](std::size_t p) { out[p] = gen(p); });
      return out;
    });
  }

  Context& context() const { return *impl_->ctx; }

  // ---- transformations (lazy) -------------------------------------------

  template <typename Fn, typename U = std::invoke_result_t<Fn, const T&>>
  Dataset<U> map(Fn fn) const {
    auto parent = impl_;
    return Dataset<U>::from_thunk(*impl_->ctx, [parent, fn]() {
      const auto& in = parent->materialize();
      Partitions<U> out(in.size());
      parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
        out[p].reserve(in[p].size());
        for (const auto& v : in[p]) out[p].push_back(fn(v));
      });
      if (obs::MetricsRegistry* m = parent->ctx->metrics()) {
        const std::uint64_t n = detail::total_records(in);
        m->counter("dataflow.map.records_in").add(n);
        m->counter("dataflow.map.records_out").add(n);
      }
      return out;
    });
  }

  template <typename Fn>
  Dataset<T> filter(Fn pred) const {
    auto parent = impl_;
    return from_thunk(*impl_->ctx, [parent, pred]() {
      const auto& in = parent->materialize();
      Partitions<T> out(in.size());
      parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
        for (const auto& v : in[p]) {
          if (pred(v)) out[p].push_back(v);
        }
      });
      if (obs::MetricsRegistry* m = parent->ctx->metrics()) {
        m->counter("dataflow.filter.records_in").add(detail::total_records(in));
        m->counter("dataflow.filter.records_out").add(detail::total_records(out));
      }
      return out;
    });
  }

  /// fn(v) must return an iterable (e.g. std::vector<U>).
  template <typename Fn,
            typename U = typename std::invoke_result_t<Fn, const T&>::value_type>
  Dataset<U> flat_map(Fn fn) const {
    auto parent = impl_;
    return Dataset<U>::from_thunk(*impl_->ctx, [parent, fn]() {
      const auto& in = parent->materialize();
      Partitions<U> out(in.size());
      parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
        for (const auto& v : in[p]) {
          for (auto&& u : fn(v)) out[p].push_back(std::move(u));
        }
      });
      return out;
    });
  }

  /// Per-partition transformation: fn(partition) -> new partition contents.
  template <typename Fn,
            typename U = typename std::invoke_result_t<Fn, const std::vector<T>&>::value_type>
  Dataset<U> map_partitions(Fn fn) const {
    auto parent = impl_;
    return Dataset<U>::from_thunk(*impl_->ctx, [parent, fn]() {
      const auto& in = parent->materialize();
      Partitions<U> out(in.size());
      parallel_for(parent->ctx->pool(), 0, in.size(),
                   [&](std::size_t p) { out[p] = fn(in[p]); });
      return out;
    });
  }

  Dataset<T> union_with(const Dataset<T>& other) const {
    auto a = impl_;
    auto b = other.impl_;
    return from_thunk(*impl_->ctx, [a, b]() {
      const auto& pa = a->materialize();
      const auto& pb = b->materialize();
      Partitions<T> out;
      out.reserve(pa.size() + pb.size());
      out.insert(out.end(), pa.begin(), pa.end());
      out.insert(out.end(), pb.begin(), pb.end());
      return out;
    });
  }

  /// Round-robin repartition to n partitions (breaks ordering).
  Dataset<T> repartition(std::size_t n) const {
    auto parent = impl_;
    return from_thunk(*impl_->ctx, [parent, n]() {
      const auto& in = parent->materialize();
      const std::size_t parts = std::max<std::size_t>(1, n);
      Partitions<T> out(parts);
      std::size_t i = 0;
      for (const auto& part : in) {
        for (const auto& v : part) {
          out[i % parts].push_back(v);
          ++i;
        }
      }
      return out;
    });
  }

  /// Bernoulli sample with the given per-element probability. Deterministic
  /// for a fixed seed regardless of thread schedule (per-partition streams).
  Dataset<T> sample(double fraction, std::uint64_t seed = 1234) const {
    auto parent = impl_;
    return from_thunk(*impl_->ctx, [parent, fraction, seed]() {
      const auto& in = parent->materialize();
      Partitions<T> out(in.size());
      parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
        Rng rng(hash_combine(seed, p));
        for (const auto& v : in[p]) {
          if (rng.next_bool(fraction)) out[p].push_back(v);
        }
      });
      return out;
    });
  }

  /// Globally deduplicate (requires Hasher<T> and operator==).
  Dataset<T> distinct(std::size_t n = 0) const {
    auto parent = impl_;
    Context* ctx = impl_->ctx;
    const std::size_t parts = n != 0 ? n : ctx->default_partitions();
    return from_thunk(*ctx, [parent, parts]() {
      const auto& in = parent->materialize();
      // Hash-partition so duplicates co-locate, then dedup per partition.
      Partitions<T> buckets(parts);
      std::vector<Partitions<T>> local(in.size(), Partitions<T>(parts));
      parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
        for (const auto& v : in[p]) {
          local[p][Hasher<T>{}(v) % parts].push_back(v);
        }
      });
      parallel_for(parent->ctx->pool(), 0, parts, [&](std::size_t b) {
        std::vector<T> merged;
        for (const auto& l : local) {
          merged.insert(merged.end(), l[b].begin(), l[b].end());
        }
        std::sort(merged.begin(), merged.end());
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        buckets[b] = std::move(merged);
      });
      return buckets;
    });
  }

  /// Globally sort by key(v): sample-based range partitioning, then local
  /// sorts — after this, collect() returns globally sorted order.
  template <typename KeyFn>
  Dataset<T> sort_by(KeyFn key, std::size_t n = 0) const {
    auto parent = impl_;
    Context* ctx = impl_->ctx;
    const std::size_t parts = n != 0 ? n : ctx->default_partitions();
    return from_thunk(*ctx, [parent, key, parts]() {
      using K = std::invoke_result_t<KeyFn, const T&>;
      const auto& in = parent->materialize();
      // 1. Sample keys (up to ~64 per output partition).
      std::vector<K> samples;
      Rng rng(0x5eedf00dULL);
      std::size_t total = 0;
      for (const auto& p : in) total += p.size();
      const double rate =
          total == 0 ? 0.0
                     : std::min(1.0, static_cast<double>(parts * 64) /
                                         static_cast<double>(total));
      for (const auto& p : in) {
        for (const auto& v : p) {
          if (rng.next_bool(rate)) samples.push_back(key(v));
        }
      }
      std::sort(samples.begin(), samples.end());
      std::vector<K> splitters;
      for (std::size_t i = 1; i < parts; ++i) {
        if (samples.empty()) break;
        splitters.push_back(samples[i * samples.size() / parts]);
      }
      // 2. Range-partition.
      std::vector<Partitions<T>> local(in.size(), Partitions<T>(parts));
      parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
        for (const auto& v : in[p]) {
          const auto k = key(v);
          const std::size_t dst = static_cast<std::size_t>(
              std::upper_bound(splitters.begin(), splitters.end(), k) -
              splitters.begin());
          local[p][dst].push_back(v);
        }
      });
      // 3. Merge buckets and sort each output partition.
      Partitions<T> out(parts);
      parallel_for(parent->ctx->pool(), 0, parts, [&](std::size_t b) {
        for (auto& l : local) {
          out[b].insert(out[b].end(), std::make_move_iterator(l[b].begin()),
                        std::make_move_iterator(l[b].end()));
        }
        std::sort(out[b].begin(), out[b].end(),
                  [&](const T& x, const T& y) { return key(x) < key(y); });
      });
      return out;
    });
  }

  /// Pair each element with its global index (partition-major order).
  Dataset<std::pair<T, std::size_t>> zip_with_index() const {
    auto parent = impl_;
    return Dataset<std::pair<T, std::size_t>>::from_thunk(
        *impl_->ctx, [parent]() {
          const auto& in = parent->materialize();
          std::vector<std::size_t> offset(in.size(), 0);
          std::size_t acc = 0;
          for (std::size_t p = 0; p < in.size(); ++p) {
            offset[p] = acc;
            acc += in[p].size();
          }
          Partitions<std::pair<T, std::size_t>> out(in.size());
          parallel_for(parent->ctx->pool(), 0, in.size(), [&](std::size_t p) {
            out[p].reserve(in[p].size());
            for (std::size_t i = 0; i < in[p].size(); ++i) {
              out[p].emplace_back(in[p][i], offset[p] + i);
            }
          });
          return out;
        });
  }

  // ---- actions (force evaluation) ----------------------------------------
  // Each action opens a named span on the Context's TraceSession (when one
  // is attached), covering the whole lineage evaluation it forces. Spans
  // are RAII: an exception escaping a user lambda still closes the span.

  /// All elements, partition-major order.
  std::vector<T> collect() const {
    obs::Span span(impl_->ctx->trace(), "collect", "action");
    const auto& parts = impl_->materialize();
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    out.reserve(total);
    for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
    span.set_items(total);
    return out;
  }

  std::size_t count() const {
    obs::Span span(impl_->ctx->trace(), "count", "action");
    const auto& parts = impl_->materialize();
    std::size_t n = 0;
    for (const auto& p : parts) n += p.size();
    span.set_items(n);
    return n;
  }

  /// Deterministic fold with an associative combine.
  template <typename Combine>
  T reduce(T init, Combine combine) const {
    obs::Span span(impl_->ctx->trace(), "reduce", "action");
    const auto& parts = impl_->materialize();
    std::vector<T> partial(parts.size(), init);
    parallel_for(impl_->ctx->pool(), 0, parts.size(), [&](std::size_t p) {
      T acc = init;
      for (const auto& v : parts[p]) acc = combine(std::move(acc), v);
      partial[p] = std::move(acc);
    });
    T out = init;
    for (auto& v : partial) out = combine(std::move(out), std::move(v));
    return out;
  }

  std::vector<T> take(std::size_t n) const {
    obs::Span span(impl_->ctx->trace(), "take", "action");
    const auto& parts = impl_->materialize();
    std::vector<T> out;
    out.reserve(n);
    for (const auto& p : parts) {
      for (const auto& v : p) {
        if (out.size() == n) return out;
        out.push_back(v);
      }
    }
    return out;
  }

  std::size_t num_partitions() const { return impl_->materialize().size(); }

  /// Direct (read-only) access to materialized partitions.
  const Partitions<T>& partitions() const { return impl_->materialize(); }

  /// Force materialization without copying anything out.
  const Dataset& cache() const {
    obs::Span span(impl_->ctx->trace(), "cache", "action");
    impl_->materialize();
    return *this;
  }

  // Internal: build from a compute thunk. Public so that Dataset<U> (a
  // different class template instantiation) and pair_ops can construct it.
  static Dataset from_thunk(Context& ctx, std::function<Partitions<T>()> fn) {
    Dataset d;
    d.impl_ = std::make_shared<detail::DatasetImpl<T>>();
    d.impl_->ctx = &ctx;
    d.impl_->compute = std::move(fn);
    return d;
  }

 private:
  template <typename U>
  friend class Dataset;

  std::shared_ptr<detail::DatasetImpl<T>> impl_;
};

}  // namespace hpbdc::dataflow
