#pragma once
// Approximate aggregations on Datasets, built from the sketches in
// common/sketch.hpp: per-partition sketches computed in parallel, merged on
// the driver — the standard "approx_count_distinct" / heavy-hitters path of
// big-data engines, trading bounded error for constant memory.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/serialize.hpp"
#include "common/sketch.hpp"
#include "dataflow/dataset.hpp"

namespace hpbdc::dataflow {

/// Approximate number of distinct elements (HyperLogLog): relative error
/// ~1.04/sqrt(2^precision), constant memory, single pass.
template <typename T>
double approx_distinct(const Dataset<T>& ds, int precision = 12) {
  const auto& parts = ds.partitions();
  std::vector<HyperLogLog> local(parts.size(), HyperLogLog(precision));
  parallel_for(ds.context().pool(), 0, parts.size(), [&](std::size_t p) {
    for (const auto& v : parts[p]) local[p].add(Hasher<T>{}(v));
  });
  HyperLogLog merged(precision);
  for (const auto& h : local) merged.merge(h);
  return merged.estimate();
}

struct HeavyHitter {
  std::uint64_t key_hash = 0;
  std::uint64_t estimate = 0;  // upper bound on the true count
};

/// Approximate heavy hitters via count-min: every element with true count
/// >= threshold appears in the result (no false negatives); counts are
/// one-sided overestimates. Returns (key hash, estimate) pairs because the
/// sketch cannot invert hashes; callers join back against candidate keys.
template <typename T>
std::vector<HeavyHitter> approx_heavy_hitters(const Dataset<T>& ds,
                                              std::uint64_t threshold,
                                              double eps = 0.0005) {
  const auto& parts = ds.partitions();
  std::vector<CountMinSketch> local(parts.size(), CountMinSketch(eps, 0.01));
  // Candidate tracking: any element whose *local* estimate crosses the
  // scaled threshold is a candidate; exact membership is resolved on the
  // merged sketch. A per-partition candidate set bounds memory.
  std::vector<std::unordered_set<std::uint64_t>> candidates(parts.size());
  parallel_for(ds.context().pool(), 0, parts.size(), [&](std::size_t p) {
    const std::uint64_t local_thr =
        std::max<std::uint64_t>(1, threshold / (parts.size() + 1));
    for (const auto& v : parts[p]) {
      const auto h = Hasher<T>{}(v);
      local[p].add(h);
      if (local[p].estimate(h) >= local_thr) candidates[p].insert(h);
    }
  });
  CountMinSketch merged = local.empty() ? CountMinSketch(eps, 0.01) : local[0];
  for (std::size_t p = 1; p < local.size(); ++p) merged.merge(local[p]);

  std::vector<HeavyHitter> out;
  std::vector<std::uint64_t> all;
  for (auto& c : candidates) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  for (auto h : all) {
    const auto est = merged.estimate(h);
    if (est >= threshold) out.push_back(HeavyHitter{h, est});
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

/// Serialize every partition of a dataset (the spill/checkpoint path).
/// Requires Serde<T>.
template <typename T>
std::vector<Bytes> spill(const Dataset<T>& ds) {
  const auto& parts = ds.partitions();
  std::vector<Bytes> out(parts.size());
  parallel_for(ds.context().pool(), 0, parts.size(), [&](std::size_t p) {
    BufWriter w;
    Serde<std::vector<T>>::write(w, parts[p]);
    out[p] = w.take();
  });
  return out;
}

/// Rehydrate a dataset spilled with spill(). Partition structure is
/// preserved exactly.
template <typename T>
Dataset<T> restore(Context& ctx, const std::vector<Bytes>& blobs) {
  auto shared = std::make_shared<std::vector<Bytes>>(blobs);
  Context* c = &ctx;
  return Dataset<T>::from_thunk(ctx, [c, shared]() {
    Partitions<T> parts(shared->size());
    parallel_for(c->pool(), 0, shared->size(), [&](std::size_t p) {
      BufReader r((*shared)[p]);
      parts[p] = Serde<std::vector<T>>::read(r);
    });
    return parts;
  });
}

}  // namespace hpbdc::dataflow
