#include "dataflow/stream.hpp"

#include <algorithm>

namespace hpbdc::dataflow::stream {

std::vector<Window> assign_windows(const WindowSpec& spec, double t) {
  switch (spec.kind) {
    case WindowSpec::Kind::kTumbling: {
      const double start = std::floor(t / spec.size) * spec.size;
      return {Window{start, start + spec.size}};
    }
    case WindowSpec::Kind::kSliding: {
      // Windows are [k*step, k*step + size); t belongs to those whose start
      // lies in (t - size, t].
      std::vector<Window> out;
      const double first = std::floor(t / spec.step) * spec.step;
      for (double start = first; start > t - spec.size; start -= spec.step) {
        out.push_back(Window{start, start + spec.size});
      }
      // Emit oldest-first for deterministic ordering.
      std::reverse(out.begin(), out.end());
      return out;
    }
    case WindowSpec::Kind::kSession:
      throw std::invalid_argument("session windows are data-driven");
  }
  return {};
}

}  // namespace hpbdc::dataflow::stream
