#pragma once
// Vectorized (batch-at-a-time) execution kernels over column-major row
// blocks. The T9 columnar Table (dataflow/column.hpp) covers typed
// scan/aggregate over user tables; this header is the execution-engine
// counterpart the plan lowering uses: a struct-of-arrays RowBlock for the
// plan IR's (u64 key, u64 value) rows, plus the operator kernels —
// transform/filter loops with in-place compaction (the selection-vector
// effect without materializing one), a radix-partitioned hash join with
// optional skew sub-splitting, and dense/sort-based grouped reduction. All
// kernels are deterministic and generic over the row functions so the plan
// layer can instantiate them with its operator semantics without this
// header depending on plan/.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "exec/parallel.hpp"

namespace hpbdc::dataflow::columnar {

/// Column-major block of (key, value) rows. The two arrays always have the
/// same length; operators touch only the column(s) they read, which is
/// where the batch-at-a-time win over row-of-pairs iteration comes from.
struct RowBlock {
  std::vector<std::uint64_t> key;
  std::vector<std::uint64_t> val;

  std::size_t size() const noexcept { return key.size(); }
  bool empty() const noexcept { return key.empty(); }
  void reserve(std::size_t n) {
    key.reserve(n);
    val.reserve(n);
  }
  void push(std::uint64_t k, std::uint64_t v) {
    key.push_back(k);
    val.push_back(v);
  }
  void clear() noexcept {
    key.clear();
    val.clear();
  }
};

RowBlock from_rows(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& rows);
std::vector<std::pair<std::uint64_t, std::uint64_t>> to_rows(const RowBlock& b);
/// Append src's rows to dst (deterministic order).
void append(RowBlock& dst, const RowBlock& src);

/// In-place parallel transform: fn(key[i], val[i]) rewrites both cells.
/// Fn: void(std::uint64_t& k, std::uint64_t& v).
template <typename Fn>
void transform_block(Executor& ex, RowBlock& b, Fn fn) {
  auto* kp = b.key.data();
  auto* vp = b.val.data();
  parallel_for_blocked(ex, 0, b.size(), [kp, vp, fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(kp[i], vp[i]);
  });
}

/// In-place filter with chunked compaction: each chunk compacts into its own
/// range, then surviving ranges are packed left in chunk order — the output
/// order equals a sequential filter. Pred: bool(std::uint64_t k, std::uint64_t v).
template <typename Pred>
void filter_block(Executor& ex, RowBlock& b, Pred pred) {
  const std::size_t n = b.size();
  if (n == 0) return;
  const std::size_t grain = hpbdc::detail::pick_grain(n, ex.num_threads(), 0);
  const std::size_t nchunks = (n + grain - 1) / grain;
  std::vector<std::size_t> kept(nchunks, 0);
  auto* kp = b.key.data();
  auto* vp = b.val.data();
  {
    TaskGroup tg(ex);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(lo + grain, n);
      tg.run([kp, vp, pred, lo, hi, c, &kept] {
        std::size_t w = lo;
        for (std::size_t i = lo; i < hi; ++i) {
          if (pred(kp[i], vp[i])) {
            kp[w] = kp[i];
            vp[w] = vp[i];
            ++w;
          }
        }
        kept[c] = w - lo;
      });
    }
    tg.wait();
  }
  // Sequential left-pack of the surviving prefixes (pure memmove work).
  std::size_t w = kept[0];
  for (std::size_t c = 1; c < nchunks; ++c) {
    const std::size_t lo = c * grain;
    if (w != lo) {
      std::copy(kp + lo, kp + lo + kept[c], kp + w);
      std::copy(vp + lo, vp + lo + kept[c], vp + w);
    }
    w += kept[c];
  }
  b.key.resize(w);
  b.val.resize(w);
}

/// Parallel expand: fn(k, v, out) appends 0..m rows per input row to a
/// per-chunk block; chunks concatenate in order (deterministic).
/// Fn: void(std::uint64_t k, std::uint64_t v, RowBlock& out).
template <typename Fn>
RowBlock expand_block(Executor& ex, const RowBlock& b, Fn fn) {
  const std::size_t n = b.size();
  RowBlock out;
  if (n == 0) return out;
  const std::size_t grain = hpbdc::detail::pick_grain(n, ex.num_threads(), 0);
  const std::size_t nchunks = (n + grain - 1) / grain;
  std::vector<RowBlock> parts(nchunks);
  const auto* kp = b.key.data();
  const auto* vp = b.val.data();
  {
    TaskGroup tg(ex);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(lo + grain, n);
      tg.run([kp, vp, fn, lo, hi, &part = parts[c]] {
        part.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) fn(kp[i], vp[i], part);
      });
    }
    tg.wait();
  }
  std::size_t total = 0;
  for (const RowBlock& p : parts) total += p.size();
  out.reserve(total);
  for (const RowBlock& p : parts) append(out, p);
  return out;
}

/// Dense grouped reduction for key domains small enough for a direct-index
/// accumulator: per-chunk (acc, seen) arrays merged in chunk order. Output
/// is one row per present key, ascending by key. Combine must be
/// commutative and associative (the merge order across chunks is by chunk
/// index, but rows of one key may split across any chunks).
/// Combine: std::uint64_t(std::uint64_t, std::uint64_t).
template <typename Combine>
RowBlock dense_reduce_by_key(Executor& ex, const RowBlock& b,
                             std::uint64_t key_bound, Combine combine) {
  const std::size_t n = b.size();
  const auto bound = static_cast<std::size_t>(key_bound);
  const std::size_t grain =
      std::max<std::size_t>(bound, hpbdc::detail::pick_grain(n, ex.num_threads(), 0));
  const std::size_t nchunks = std::max<std::size_t>(1, (n + grain - 1) / grain);
  std::vector<std::vector<std::uint64_t>> acc(nchunks);
  std::vector<std::vector<char>> seen(nchunks);
  const auto* kp = b.key.data();
  const auto* vp = b.val.data();
  {
    TaskGroup tg(ex);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(lo + grain, n);
      tg.run([kp, vp, lo, hi, bound, combine, &a = acc[c], &s = seen[c]] {
        a.assign(bound, 0);
        s.assign(bound, 0);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(kp[i]);
          if (s[k]) {
            a[k] = combine(a[k], vp[i]);
          } else {
            a[k] = vp[i];
            s[k] = 1;
          }
        }
      });
    }
    tg.wait();
  }
  for (std::size_t c = 1; c < nchunks; ++c) {
    for (std::size_t k = 0; k < bound; ++k) {
      if (!seen[c][k]) continue;
      acc[0][k] = seen[0][k] ? combine(acc[0][k], acc[c][k]) : acc[c][k];
      seen[0][k] = 1;
    }
  }
  RowBlock out;
  for (std::size_t k = 0; k < bound; ++k) {
    if (seen[0][k]) out.push(k, acc[0][k]);
  }
  return out;
}

/// Sort-based grouped reduction for wide key domains: parallel sort by key,
/// one combining sweep. Output ascending by key.
template <typename Combine>
RowBlock sorted_reduce_by_key(Executor& ex, const RowBlock& b, Combine combine) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows = to_rows(b);
  parallel_sort(ex, rows.begin(), rows.end(),
                [](const auto& a, const auto& c) { return a.first < c.first; });
  RowBlock out;
  for (std::size_t i = 0; i < rows.size();) {
    std::uint64_t v = rows[i].second;
    const std::uint64_t k = rows[i].first;
    std::size_t j = i + 1;
    for (; j < rows.size() && rows[j].first == k; ++j) v = combine(v, rows[j].second);
    out.push(k, v);
    i = j;
  }
  return out;
}

/// Radix-partitioned hash join. Both sides scatter into kJoinRadix
/// partitions by a key hash; each partition builds a chained hash table
/// over the build side and probes with its probe rows. Partitions whose
/// probe share is oversized are split into up to `skew_fanout` probe
/// sub-ranges that share one build table — the skew-salting analogue for a
/// shared-memory backend. Emit: void(k, build_v, probe_v, RowBlock& out),
/// called once per matching pair; per-(sub)task outputs concatenate in
/// deterministic task order.
inline constexpr std::size_t kJoinRadix = 64;

template <typename Emit>
RowBlock radix_hash_join(Executor& ex, const RowBlock& build,
                         const RowBlock& probe, std::uint32_t skew_fanout,
                         Emit emit) {
  constexpr std::size_t P = kJoinRadix;
  auto part_of = [](std::uint64_t k) {
    return static_cast<std::size_t>(mix64(k) & (P - 1));
  };
  // Scatter both sides (sequential: two cache-friendly passes; the joins
  // themselves dominate).
  std::vector<RowBlock> bp(P), pp(P);
  {
    std::vector<std::size_t> bh(P, 0), ph(P, 0);
    for (std::uint64_t k : build.key) ++bh[part_of(k)];
    for (std::uint64_t k : probe.key) ++ph[part_of(k)];
    for (std::size_t p = 0; p < P; ++p) {
      bp[p].reserve(bh[p]);
      pp[p].reserve(ph[p]);
    }
    for (std::size_t i = 0; i < build.size(); ++i) {
      bp[part_of(build.key[i])].push(build.key[i], build.val[i]);
    }
    for (std::size_t i = 0; i < probe.size(); ++i) {
      pp[part_of(probe.key[i])].push(probe.key[i], probe.val[i]);
    }
  }
  // Chained hash tables per partition, built in parallel.
  struct Table {
    std::vector<std::uint32_t> head;  // slot -> first row index + 1 (0 = none)
    std::vector<std::uint32_t> next;  // row -> next row with same slot + 1
    std::size_t mask = 0;
  };
  std::vector<Table> tables(P);
  parallel_for(ex, 0, P, [&](std::size_t p) {
    const RowBlock& bb = bp[p];
    Table& t = tables[p];
    std::size_t cap = 8;
    while (cap < bb.size() * 2) cap <<= 1;
    t.mask = cap - 1;
    t.head.assign(cap, 0);
    t.next.assign(bb.size(), 0);
    for (std::size_t i = 0; i < bb.size(); ++i) {
      const std::size_t slot = mix64(bb.key[i]) >> 6 & t.mask;
      t.next[i] = t.head[slot];
      t.head[slot] = static_cast<std::uint32_t>(i + 1);
    }
  });
  // Probe task list: oversized partitions split into skew_fanout sub-ranges.
  struct ProbeTask {
    std::size_t part, lo, hi;
  };
  std::vector<ProbeTask> ptasks;
  const std::size_t avg = std::max<std::size_t>(1, probe.size() / P);
  for (std::size_t p = 0; p < P; ++p) {
    const std::size_t np = pp[p].size();
    const std::size_t fan =
        (skew_fanout > 1 && np > avg * 2) ? skew_fanout : 1;
    const std::size_t step = (np + fan - 1) / std::max<std::size_t>(fan, 1);
    for (std::size_t lo = 0; lo < np; lo += std::max<std::size_t>(step, 1)) {
      ptasks.push_back({p, lo, std::min(lo + std::max<std::size_t>(step, 1), np)});
    }
    if (np == 0) ptasks.push_back({p, 0, 0});
  }
  std::vector<RowBlock> outs(ptasks.size());
  parallel_for(ex, 0, ptasks.size(), [&](std::size_t ti) {
    const ProbeTask& pt = ptasks[ti];
    const RowBlock& bb = bp[pt.part];
    const RowBlock& qq = pp[pt.part];
    const Table& t = tables[pt.part];
    RowBlock& out = outs[ti];
    if (bb.empty()) return;
    for (std::size_t i = pt.lo; i < pt.hi; ++i) {
      const std::uint64_t k = qq.key[i];
      for (std::uint32_t j = t.head[mix64(k) >> 6 & t.mask]; j != 0;
           j = t.next[j - 1]) {
        if (bb.key[j - 1] == k) emit(k, bb.val[j - 1], qq.val[i], out);
      }
    }
  });
  RowBlock out;
  std::size_t total = 0;
  for (const RowBlock& o : outs) total += o.size();
  out.reserve(total);
  for (const RowBlock& o : outs) append(out, o);
  return out;
}

}  // namespace hpbdc::dataflow::columnar
