#pragma once
// Event-time stream processing (experiment F4): bounded-out-of-orderness
// watermarks, tumbling/sliding/session windows, keyed windowed aggregation,
// and a symmetric windowed stream join.
//
// Model: operators consume events in *processing* order; every event
// carries an *event time*. The watermark trails the maximum event time seen
// by `allowed_lateness`; a window fires (emits and frees its state) when
// the watermark passes its end. Events older than the watermark at arrival
// are dropped and counted — the standard Flink/Beam semantics.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "obs/metrics.hpp"

namespace hpbdc::dataflow::stream {

template <typename T>
struct Event {
  double time = 0;  // event time, seconds
  T payload{};
};

// ---- windows --------------------------------------------------------------

struct WindowSpec {
  enum class Kind { kTumbling, kSliding, kSession };
  Kind kind = Kind::kTumbling;
  double size = 1.0;  // tumbling/sliding length
  double step = 1.0;  // sliding hop
  double gap = 1.0;   // session inactivity gap

  static WindowSpec tumbling(double size) {
    if (size <= 0) throw std::invalid_argument("tumbling: size must be > 0");
    return WindowSpec{Kind::kTumbling, size, size, 0};
  }
  static WindowSpec sliding(double size, double step) {
    if (size <= 0 || step <= 0 || step > size) {
      throw std::invalid_argument("sliding: require 0 < step <= size");
    }
    return WindowSpec{Kind::kSliding, size, step, 0};
  }
  static WindowSpec session(double gap) {
    if (gap <= 0) throw std::invalid_argument("session: gap must be > 0");
    return WindowSpec{Kind::kSession, 0, 0, gap};
  }
};

/// Half-open window [start, end).
struct Window {
  double start = 0;
  double end = 0;
  bool operator==(const Window&) const = default;
};

/// Windows containing `t` for tumbling/sliding specs (session windows are
/// data-driven and assigned inside the operator instead).
std::vector<Window> assign_windows(const WindowSpec& spec, double t);

// ---- watermarks -------------------------------------------------------------

/// Watermark = max event time seen − allowed lateness (monotone).
class BoundedLatenessWatermark {
 public:
  explicit BoundedLatenessWatermark(double allowed_lateness)
      : lateness_(allowed_lateness) {
    if (allowed_lateness < 0) throw std::invalid_argument("negative lateness");
  }

  /// Observe an event time; returns the (possibly advanced) watermark.
  double observe(double event_time) {
    max_seen_ = std::max(max_seen_, event_time);
    return current();
  }

  double current() const {
    return max_seen_ == -std::numeric_limits<double>::infinity()
               ? -std::numeric_limits<double>::infinity()
               : max_seen_ - lateness_;
  }

 private:
  double lateness_;
  double max_seen_ = -std::numeric_limits<double>::infinity();
};

// ---- keyed windowed aggregation ---------------------------------------------

template <typename K, typename Acc>
struct WindowResult {
  Window window;
  K key{};
  Acc value{};
};

/// Incremental keyed aggregation over tumbling or sliding windows.
///   KeyFn : const T& -> K
///   AggFn : (Acc&, const T&) -> void   (in-place accumulate)
/// Results become available once the watermark passes a window's end;
/// drain results with take_results(). Late events are counted and dropped.
template <typename T, typename K, typename Acc, typename KeyFn, typename AggFn>
class WindowedAggregator {
 public:
  WindowedAggregator(WindowSpec spec, double allowed_lateness, KeyFn key_fn,
                     AggFn agg_fn, Acc init = Acc{})
      : spec_(spec),
        watermark_(allowed_lateness),
        key_fn_(std::move(key_fn)),
        agg_fn_(std::move(agg_fn)),
        init_(std::move(init)) {
    if (spec.kind == WindowSpec::Kind::kSession) {
      throw std::invalid_argument("use SessionAggregator for session windows");
    }
  }

  void on_event(const Event<T>& ev) {
    if (m_events_ != nullptr) m_events_->add(1);
    if (ev.time < watermark_.current()) {
      ++late_dropped_;
      if (m_late_ != nullptr) m_late_->add(1);
      return;
    }
    const K key = key_fn_(ev.payload);
    for (const Window& w : assign_windows(spec_, ev.time)) {
      auto& acc = state_[w.end][WindowKey{w.start, key}];
      if (!acc.initialized) {
        acc.value = init_;
        acc.initialized = true;
      }
      agg_fn_(acc.value, ev.payload);
    }
    fire_up_to(watermark_.observe(ev.time));
  }

  /// Force-close every open window (end of stream).
  void flush() { fire_up_to(std::numeric_limits<double>::infinity()); }

  /// Fire every window with end <= wm, leaving the internal bounded-lateness
  /// watermark untouched. This is the hook for EXTERNALLY driven watermarks:
  /// the distributed streaming runtime (src/dstream) constructs aggregators
  /// with allowed_lateness = +infinity (which disables the internal watermark
  /// and its late-drop path entirely) and advances them from barrier-aligned
  /// channel watermarks instead.
  void advance_watermark(double wm) { fire_up_to(wm); }

  /// Visit every open accumulator as fn(start, end, key, value) — the state a
  /// checkpoint must capture. Iteration order is unspecified beyond being
  /// grouped by ascending window end; callers needing determinism sort.
  template <typename Fn>
  void for_each_open(Fn&& fn) const {
    for (const auto& [end, per_key] : state_) {
      for (const auto& [wk, slot] : per_key) fn(wk.start, end, wk.key, slot.value);
    }
  }

  /// Re-insert one open accumulator (checkpoint restore). The window must not
  /// already have fired; restoring into a fresh aggregator is the intended use.
  void restore_open(double start, double end, const K& key, Acc value) {
    auto& slot = state_[end][WindowKey{start, key}];
    slot.value = std::move(value);
    slot.initialized = true;
  }

  std::vector<WindowResult<K, Acc>> take_results() { return std::move(results_); }
  std::uint64_t late_dropped() const noexcept { return late_dropped_; }
  std::size_t open_windows() const noexcept { return state_.size(); }
  double watermark() const { return watermark_.current(); }

  /// Mirror operator counters (stream.events, stream.late_dropped,
  /// stream.windows_fired) and a wall-clock batch-fire latency histogram
  /// (stream.fire_latency_us: time to close all windows a watermark advance
  /// releases) into `reg`. Registry must outlive the aggregator; unbound
  /// aggregators pay one null-pointer branch per event.
  void bind_metrics(obs::MetricsRegistry& reg) {
    m_events_ = &reg.counter("stream.events");
    m_late_ = &reg.counter("stream.late_dropped");
    m_fired_ = &reg.counter("stream.windows_fired");
    m_fire_latency_ = &reg.histogram("stream.fire_latency_us");
  }

 private:
  struct WindowKey {
    double start;
    K key;
    bool operator==(const WindowKey&) const = default;
  };
  struct WindowKeyHash {
    std::size_t operator()(const WindowKey& wk) const noexcept {
      std::uint64_t bits;
      static_assert(sizeof(double) == sizeof(bits));
      std::memcpy(&bits, &wk.start, sizeof(bits));
      return static_cast<std::size_t>(hash_combine(hash_u64(bits), Hasher<K>{}(wk.key)));
    }
  };
  struct AccSlot {
    Acc value{};
    bool initialized = false;
  };

  void fire_up_to(double watermark) {
    if (state_.empty() || state_.begin()->first > watermark) return;
    using clock = std::chrono::steady_clock;
    const auto t0 = m_fire_latency_ != nullptr ? clock::now() : clock::time_point{};
    std::uint64_t fired = 0;
    // state_ is keyed (ordered) by window end: fire every closed window.
    while (!state_.empty() && state_.begin()->first <= watermark) {
      auto& [end, per_key] = *state_.begin();
      for (auto& [wk, slot] : per_key) {
        results_.push_back(WindowResult<K, Acc>{Window{wk.start, end}, wk.key,
                                                std::move(slot.value)});
        ++fired;
      }
      state_.erase(state_.begin());
    }
    if (m_fired_ != nullptr) m_fired_->add(fired);
    if (m_fire_latency_ != nullptr) {
      m_fire_latency_->record(
          std::chrono::duration<double, std::micro>(clock::now() - t0).count());
    }
  }

  WindowSpec spec_;
  BoundedLatenessWatermark watermark_;
  KeyFn key_fn_;
  AggFn agg_fn_;
  Acc init_;
  // window end -> (window start, key) -> accumulator
  std::map<double, std::unordered_map<WindowKey, AccSlot, WindowKeyHash>> state_;
  std::vector<WindowResult<K, Acc>> results_;
  std::uint64_t late_dropped_ = 0;

  // Optional live metrics (see bind_metrics); null until bound.
  obs::Counter* m_events_ = nullptr;
  obs::Counter* m_late_ = nullptr;
  obs::Counter* m_fired_ = nullptr;
  obs::LatencyHistogram* m_fire_latency_ = nullptr;
};

/// Type-deduction helper.
template <typename T, typename Acc, typename KeyFn, typename AggFn>
auto make_windowed_aggregator(WindowSpec spec, double lateness, KeyFn key_fn,
                              AggFn agg_fn, Acc init = Acc{}) {
  using K = std::invoke_result_t<KeyFn, const T&>;
  return WindowedAggregator<T, K, Acc, KeyFn, AggFn>(spec, lateness, std::move(key_fn),
                                                     std::move(agg_fn), std::move(init));
}

// ---- session windows --------------------------------------------------------

/// Keyed session windows: consecutive events of a key belong to one session
/// while their gaps stay below `gap`; a session closes when the watermark
/// passes (last_event + gap).
template <typename T, typename K, typename Acc, typename KeyFn, typename AggFn>
class SessionAggregator {
 public:
  SessionAggregator(double gap, double allowed_lateness, KeyFn key_fn, AggFn agg_fn,
                    Acc init = Acc{})
      : gap_(gap),
        watermark_(allowed_lateness),
        key_fn_(std::move(key_fn)),
        agg_fn_(std::move(agg_fn)),
        init_(std::move(init)) {
    if (gap <= 0) throw std::invalid_argument("session gap must be > 0");
  }

  void on_event(const Event<T>& ev) {
    if (ev.time < watermark_.current()) {
      ++late_dropped_;
      return;
    }
    const K key = key_fn_(ev.payload);
    auto it = sessions_.find(key);
    if (it != sessions_.end() && ev.time - it->second.last_time <= gap_) {
      agg_fn_(it->second.acc, ev.payload);
      it->second.last_time = std::max(it->second.last_time, ev.time);
      it->second.first_time = std::min(it->second.first_time, ev.time);
    } else {
      if (it != sessions_.end()) emit(key, it->second);
      Session s;
      s.first_time = s.last_time = ev.time;
      s.acc = init_;
      agg_fn_(s.acc, ev.payload);
      sessions_[key] = std::move(s);
    }
    const double wm = watermark_.observe(ev.time);
    // Close idle sessions.
    for (auto sit = sessions_.begin(); sit != sessions_.end();) {
      if (sit->second.last_time + gap_ <= wm) {
        emit(sit->first, sit->second);
        sit = sessions_.erase(sit);
      } else {
        ++sit;
      }
    }
  }

  void flush() {
    for (auto& [key, s] : sessions_) emit(key, s);
    sessions_.clear();
  }

  std::vector<WindowResult<K, Acc>> take_results() { return std::move(results_); }
  std::uint64_t late_dropped() const noexcept { return late_dropped_; }
  std::size_t open_sessions() const noexcept { return sessions_.size(); }

 private:
  struct Session {
    double first_time = 0;
    double last_time = 0;
    Acc acc{};
  };

  void emit(const K& key, Session& s) {
    results_.push_back(
        WindowResult<K, Acc>{Window{s.first_time, s.last_time + gap_}, key,
                             std::move(s.acc)});
  }

  double gap_;
  BoundedLatenessWatermark watermark_;
  KeyFn key_fn_;
  AggFn agg_fn_;
  Acc init_;
  std::unordered_map<K, Session, Hasher<K>> sessions_;
  std::vector<WindowResult<K, Acc>> results_;
  std::uint64_t late_dropped_ = 0;
};

// ---- windowed stream join ---------------------------------------------------

template <typename K, typename L, typename R>
struct JoinResult {
  Window window;
  K key{};
  L left{};
  R right{};
};

/// Symmetric hash join over tumbling windows: a left and right event match
/// when they share a key and fall in the same window. State for a window is
/// freed once the watermark passes its end.
template <typename L, typename R, typename K, typename LKey, typename RKey>
class WindowJoin {
 public:
  WindowJoin(double window_size, double allowed_lateness, LKey lkey, RKey rkey)
      : spec_(WindowSpec::tumbling(window_size)),
        watermark_(allowed_lateness),
        lkey_(std::move(lkey)),
        rkey_(std::move(rkey)) {}

  void on_left(const Event<L>& ev) {
    if (drop_if_late(ev.time)) return;
    const Window w = assign_windows(spec_, ev.time)[0];
    const K key = lkey_(ev.payload);
    auto& ws = state_[w.end];
    // Probe the other side first, then insert (symmetric hash join).
    auto [lo, hi] = ws.right.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      results_.push_back(JoinResult<K, L, R>{w, key, ev.payload, it->second});
    }
    ws.left.emplace(key, ev.payload);
    expire(watermark_.observe(ev.time));
  }

  void on_right(const Event<R>& ev) {
    if (drop_if_late(ev.time)) return;
    const Window w = assign_windows(spec_, ev.time)[0];
    const K key = rkey_(ev.payload);
    auto& ws = state_[w.end];
    auto [lo, hi] = ws.left.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      results_.push_back(JoinResult<K, L, R>{w, key, it->second, ev.payload});
    }
    ws.right.emplace(key, ev.payload);
    expire(watermark_.observe(ev.time));
  }

  std::vector<JoinResult<K, L, R>> take_results() { return std::move(results_); }
  std::uint64_t late_dropped() const noexcept { return late_dropped_; }
  std::size_t open_windows() const noexcept { return state_.size(); }

  /// Expire every window with end <= wm without touching the internal
  /// watermark — the externally-driven counterpart of advance on the
  /// aggregator (see WindowedAggregator::advance_watermark); src/dstream
  /// drives this from barrier-aligned channel watermarks.
  void advance_watermark(double wm) { expire(wm); }

  /// Visit buffered build/probe events as fn(window_end, key, payload); the
  /// window start is end − size for the tumbling spec this join uses.
  template <typename Fn>
  void for_each_left(Fn&& fn) const {
    for (const auto& [end, ws] : state_) {
      for (const auto& [k, v] : ws.left) fn(end, k, v);
    }
  }
  template <typename Fn>
  void for_each_right(Fn&& fn) const {
    for (const auto& [end, ws] : state_) {
      for (const auto& [k, v] : ws.right) fn(end, k, v);
    }
  }

  /// Checkpoint restore: re-buffer one event without probing (the pairs it
  /// already produced are part of downstream state, not this operator's).
  void restore_left(double window_end, const K& key, L payload) {
    state_[window_end].left.emplace(key, std::move(payload));
  }
  void restore_right(double window_end, const K& key, R payload) {
    state_[window_end].right.emplace(key, std::move(payload));
  }

  /// Total buffered events across open windows (state-size metric for F4).
  std::size_t buffered() const noexcept {
    std::size_t n = 0;
    for (const auto& [end, ws] : state_) n += ws.left.size() + ws.right.size();
    return n;
  }

 private:
  struct WindowState {
    std::unordered_multimap<K, L, Hasher<K>> left;
    std::unordered_multimap<K, R, Hasher<K>> right;
  };

  bool drop_if_late(double t) {
    if (t < watermark_.current()) {
      ++late_dropped_;
      return true;
    }
    return false;
  }

  void expire(double watermark) {
    while (!state_.empty() && state_.begin()->first <= watermark) {
      state_.erase(state_.begin());
    }
  }

  WindowSpec spec_;
  BoundedLatenessWatermark watermark_;
  LKey lkey_;
  RKey rkey_;
  std::map<double, WindowState> state_;  // window end -> buffered events
  std::vector<JoinResult<K, L, R>> results_;
  std::uint64_t late_dropped_ = 0;
};

}  // namespace hpbdc::dataflow::stream
