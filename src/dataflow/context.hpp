#pragma once
// Execution context for the batch dataflow engine: binds datasets to an
// Executor and carries engine-wide defaults plus the observability hooks
// (metrics registry, span tracer). One Context typically lives for the
// duration of an application ("driver" in Spark terms).
//
// Observability is opt-in: both hooks default to nullptr and every
// instrumentation site in the engine guards on that pointer, so an
// unobserved Context costs one predictable branch per site.

#include <cstddef>

#include "exec/executor.hpp"
#include "exec/tuning.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hpbdc::dataflow {

class Context {
 public:
  struct Options {
    /// 0 selects kPartitionsPerThread partitions per pool thread (the
    /// contract lives in exec/tuning.hpp), giving the work-stealing
    /// scheduler enough slack to absorb skew.
    std::size_t default_partitions = 0;
    /// When set, dataflow/shuffle/exec counters and histograms flow here.
    obs::MetricsRegistry* metrics = nullptr;
    /// When set, actions and shuffles open named spans on this session.
    obs::TraceSession* trace = nullptr;
  };

  explicit Context(Executor& pool) : Context(pool, Options{}) {}

  Context(Executor& pool, Options opts)
      : pool_(pool),
        opts_(opts),
        default_partitions_(opts.default_partitions != 0
                                ? opts.default_partitions
                                : pool.num_threads() * kPartitionsPerThread) {}

  Executor& pool() const noexcept { return pool_; }
  std::size_t default_partitions() const noexcept { return default_partitions_; }

  /// Nullable: instrumentation sites must branch on this.
  obs::MetricsRegistry* metrics() const noexcept { return opts_.metrics; }
  /// Nullable: span sites must branch on this (obs::Span accepts nullptr).
  obs::TraceSession* trace() const noexcept { return opts_.trace; }

 private:
  Executor& pool_;
  Options opts_;
  std::size_t default_partitions_;
};

}  // namespace hpbdc::dataflow
