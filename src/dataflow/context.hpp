#pragma once
// Execution context for the batch dataflow engine: binds datasets to an
// Executor and carries engine-wide defaults. One Context typically lives
// for the duration of an application ("driver" in Spark terms).

#include <cstddef>

#include "exec/executor.hpp"

namespace hpbdc::dataflow {

class Context {
 public:
  /// default_partitions == 0 selects 4 partitions per pool thread, which
  /// gives the work-stealing scheduler enough slack to absorb skew.
  explicit Context(Executor& pool, std::size_t default_partitions = 0)
      : pool_(pool),
        default_partitions_(default_partitions != 0 ? default_partitions
                                                    : pool.num_threads() * 4) {}

  Executor& pool() const noexcept { return pool_; }
  std::size_t default_partitions() const noexcept { return default_partitions_; }

 private:
  Executor& pool_;
  std::size_t default_partitions_;
};

}  // namespace hpbdc::dataflow
