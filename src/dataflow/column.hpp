#pragma once
// Columnar in-memory tables and vectorized query operators — the OLAP side
// of the framework (experiment T9). Columns are typed (int64, double,
// dictionary-encoded string); queries run as: scan with conjunctive
// predicates producing a selection vector, then project / aggregate /
// group-by over selected rows. Scans and aggregations are data-parallel
// over row ranges on the Executor.
//
// Design notes:
//  * selection vectors (sorted row ids) instead of row copies — operators
//    compose without materialization, as in MonetDB/X100-style engines;
//  * strings are dictionary-encoded at append time, so predicate evaluation
//    on strings is an integer-code comparison (equality) per row;
//  * aggregation hashes group keys; SUM/MIN/MAX/COUNT/AVG supported.

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/hash.hpp"
#include "exec/parallel.hpp"

namespace hpbdc::dataflow::columnar {

enum class ColumnType { kInt64, kDouble, kString };

/// Dictionary-encoded string column: row -> code -> string.
struct DictColumn {
  std::vector<std::uint32_t> codes;
  std::vector<std::string> dict;
  std::unordered_map<std::string, std::uint32_t> index;

  void append(const std::string& value) {
    auto [it, inserted] = index.try_emplace(value, static_cast<std::uint32_t>(dict.size()));
    if (inserted) dict.push_back(value);
    codes.push_back(it->second);
  }

  std::optional<std::uint32_t> code_of(const std::string& value) const {
    auto it = index.find(value);
    if (it == index.end()) return std::nullopt;
    return it->second;
  }
};

class Column {
 public:
  static Column int64(std::vector<std::int64_t> v) { return Column(std::move(v)); }
  static Column f64(std::vector<double> v) { return Column(std::move(v)); }
  static Column string(const std::vector<std::string>& v) {
    DictColumn d;
    for (const auto& s : v) d.append(s);
    return Column(std::move(d));
  }

  ColumnType type() const noexcept {
    return static_cast<ColumnType>(data_.index());
  }
  std::size_t size() const noexcept {
    if (auto* i = std::get_if<std::vector<std::int64_t>>(&data_)) return i->size();
    if (auto* d = std::get_if<std::vector<double>>(&data_)) return d->size();
    return std::get<DictColumn>(data_).codes.size();
  }

  const std::vector<std::int64_t>& ints() const { return std::get<std::vector<std::int64_t>>(data_); }
  const std::vector<double>& doubles() const { return std::get<std::vector<double>>(data_); }
  const DictColumn& strings() const { return std::get<DictColumn>(data_); }

  /// Value as double for numeric aggregation (throws for strings).
  double as_double(std::size_t row) const {
    switch (type()) {
      case ColumnType::kInt64: return static_cast<double>(ints()[row]);
      case ColumnType::kDouble: return doubles()[row];
      case ColumnType::kString: throw std::logic_error("Column: string is not numeric");
    }
    return 0;
  }

  /// Group key for hashing: int value, double bits, or dictionary code.
  std::uint64_t group_key(std::size_t row) const {
    switch (type()) {
      case ColumnType::kInt64: return static_cast<std::uint64_t>(ints()[row]);
      case ColumnType::kDouble: {
        double v = doubles()[row];
        std::uint64_t bits;
        static_assert(sizeof(v) == sizeof(bits));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        return bits;
      }
      case ColumnType::kString: return strings().codes[row];
    }
    return 0;
  }

  /// Render a group key back to a printable string.
  std::string key_to_string(std::uint64_t key) const {
    switch (type()) {
      case ColumnType::kInt64: return std::to_string(static_cast<std::int64_t>(key));
      case ColumnType::kDouble: {
        double v;
        __builtin_memcpy(&v, &key, sizeof(v));
        return std::to_string(v);
      }
      case ColumnType::kString: return strings().dict[static_cast<std::size_t>(key)];
    }
    return {};
  }

 private:
  explicit Column(std::vector<std::int64_t> v) : data_(std::move(v)) {}
  explicit Column(std::vector<double> v) : data_(std::move(v)) {}
  explicit Column(DictColumn v) : data_(std::move(v)) {}

  std::variant<std::vector<std::int64_t>, std::vector<double>, DictColumn> data_;
};

// ---- predicates -------------------------------------------------------------

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Predicate {
  std::string column;
  CmpOp op = CmpOp::kEq;
  // Exactly one is used, matching the column type.
  std::int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;

  static Predicate eq_i(std::string col, std::int64_t v) {
    return Predicate{std::move(col), CmpOp::kEq, v, 0, {}};
  }
  static Predicate cmp_i(std::string col, CmpOp op, std::int64_t v) {
    return Predicate{std::move(col), op, v, 0, {}};
  }
  static Predicate cmp_d(std::string col, CmpOp op, double v) {
    return Predicate{std::move(col), op, 0, v, {}};
  }
  static Predicate eq_s(std::string col, std::string v) {
    return Predicate{std::move(col), CmpOp::kEq, 0, 0, std::move(v)};
  }
  static Predicate ne_s(std::string col, std::string v) {
    return Predicate{std::move(col), CmpOp::kNe, 0, 0, std::move(v)};
  }
};

// ---- table --------------------------------------------------------------------

enum class AggOp { kSum, kCount, kMin, kMax, kAvg };

struct AggResult {
  std::vector<std::uint64_t> raw_keys;   // group keys (interpret via column)
  std::vector<std::string> keys;         // printable group keys
  std::vector<double> values;
};

using Selection = std::vector<std::uint32_t>;  // sorted row ids

class Table {
 public:
  Table& add_column(std::string name, Column col) {
    if (!columns_.empty() && col.size() != rows_) {
      throw std::invalid_argument("Table: column length mismatch");
    }
    rows_ = col.size();
    order_.push_back(name);
    columns_.emplace(std::move(name), std::move(col));
    return *this;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t num_columns() const noexcept { return columns_.size(); }
  bool has_column(const std::string& name) const { return columns_.contains(name); }

  const Column& column(const std::string& name) const {
    auto it = columns_.find(name);
    if (it == columns_.end()) throw std::out_of_range("Table: no column " + name);
    return it->second;
  }

  /// Rows satisfying the conjunction of predicates, evaluated in parallel.
  Selection scan(Executor& pool, const std::vector<Predicate>& predicates) const;

  /// Aggregate `agg_column` over groups of `group_column`, restricted to a
  /// selection (pass scan() output, or all_rows() for a full-table query).
  AggResult aggregate(Executor& pool, const std::string& group_column,
                      const std::string& agg_column, AggOp op,
                      const Selection& sel) const;

  /// Ungrouped aggregate over a selection.
  double aggregate_scalar(Executor& pool, const std::string& agg_column, AggOp op,
                          const Selection& sel) const;

  Selection all_rows() const {
    Selection s(rows_);
    for (std::size_t i = 0; i < rows_; ++i) s[i] = static_cast<std::uint32_t>(i);
    return s;
  }

  /// New table containing only the named columns at the selected rows.
  Table materialize(const std::vector<std::string>& names, const Selection& sel) const;

 private:
  std::size_t rows_ = 0;
  std::vector<std::string> order_;
  std::unordered_map<std::string, Column> columns_;
};

}  // namespace hpbdc::dataflow::columnar
