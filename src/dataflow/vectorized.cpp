#include "dataflow/vectorized.hpp"

namespace hpbdc::dataflow::columnar {

RowBlock from_rows(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& rows) {
  RowBlock b;
  b.reserve(rows.size());
  for (const auto& r : rows) b.push(r.first, r.second);
  return b;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> to_rows(const RowBlock& b) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
  rows.reserve(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) rows.emplace_back(b.key[i], b.val[i]);
  return rows;
}

void append(RowBlock& dst, const RowBlock& src) {
  dst.key.insert(dst.key.end(), src.key.begin(), src.key.end());
  dst.val.insert(dst.val.end(), src.val.begin(), src.val.end());
}

}  // namespace hpbdc::dataflow::columnar
