#include "dataflow/column.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace hpbdc::dataflow::columnar {

namespace {

template <typename T>
bool compare(CmpOp op, T lhs, T rhs) {
  switch (op) {
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
  }
  return false;
}

struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t count = 0;

  void add(double v) noexcept {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++count;
  }
  void merge(const AggState& o) noexcept {
    sum += o.sum;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
    count += o.count;
  }
  double finish(AggOp op) const noexcept {
    switch (op) {
      case AggOp::kSum: return sum;
      case AggOp::kCount: return static_cast<double>(count);
      case AggOp::kMin: return count ? min : 0;
      case AggOp::kMax: return count ? max : 0;
      case AggOp::kAvg: return count ? sum / static_cast<double>(count) : 0;
    }
    return 0;
  }
};

}  // namespace

Selection Table::scan(Executor& pool, const std::vector<Predicate>& predicates) const {
  // Resolve each predicate to a typed column-wise filter ONCE, so the per-
  // row loop is a tight typed comparison over contiguous column storage
  // (the vectorized-execution property that makes columnar scans memory-
  // bound instead of dispatch-bound).
  //
  // first(lo, hi, out): append matching rows of [lo, hi) to out.
  // refine(sel): keep only matching rows of sel, in place.
  using FirstFn = std::function<void(std::uint32_t, std::uint32_t, Selection&)>;
  using RefineFn = std::function<void(Selection&)>;
  std::vector<FirstFn> firsts;
  std::vector<RefineFn> refines;

  auto make_filters = [&](const Predicate& p, bool is_first) {
    const Column& c = column(p.column);
    auto emit = [&](auto&& match) {
      using Match = std::decay_t<decltype(match)>;
      if (is_first) {
        firsts.push_back([match = Match(match)](std::uint32_t lo, std::uint32_t hi,
                                                Selection& out) {
          for (std::uint32_t row = lo; row < hi; ++row) {
            if (match(row)) out.push_back(row);
          }
        });
      } else {
        refines.push_back([match = Match(match)](Selection& sel) {
          std::size_t w = 0;
          for (std::size_t i = 0; i < sel.size(); ++i) {
            if (match(sel[i])) sel[w++] = sel[i];
          }
          sel.resize(w);
        });
      }
    };
    switch (c.type()) {
      case ColumnType::kInt64: {
        const auto* data = c.ints().data();
        const auto op = p.op;
        const auto v = p.int_value;
        emit([data, op, v](std::uint32_t row) { return compare(op, data[row], v); });
        break;
      }
      case ColumnType::kDouble: {
        const auto* data = c.doubles().data();
        const auto op = p.op;
        const auto v = p.double_value;
        emit([data, op, v](std::uint32_t row) { return compare(op, data[row], v); });
        break;
      }
      case ColumnType::kString: {
        if (p.op != CmpOp::kEq && p.op != CmpOp::kNe) {
          throw std::invalid_argument("Table: string predicates support ==/!= only");
        }
        const auto* codes = c.strings().codes.data();
        const auto code = c.strings().code_of(p.string_value);
        const bool want_eq = p.op == CmpOp::kEq;
        // Absent dictionary entry: == matches nothing, != matches all.
        const std::uint32_t target = code.value_or(~std::uint32_t{0});
        emit([codes, target, want_eq](std::uint32_t row) {
          return (codes[row] == target) == want_eq;
        });
        break;
      }
    }
  };
  for (std::size_t i = 0; i < predicates.size(); ++i) {
    make_filters(predicates[i], i == 0);
  }

  // Chunked parallel scan with per-chunk outputs, concatenated in order so
  // the selection stays sorted.
  const std::size_t n = rows_;
  const std::size_t threads = pool.num_threads();
  const std::size_t chunk = std::max<std::size_t>(4096, (n + threads * 4) / (threads * 4 + 1));
  const std::size_t nchunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  std::vector<Selection> partial(nchunks);
  parallel_for(pool, 0, nchunks, [&](std::size_t ci) {
    const auto lo = static_cast<std::uint32_t>(ci * chunk);
    const auto hi = static_cast<std::uint32_t>(std::min(ci * chunk + chunk, n));
    auto& out = partial[ci];
    if (firsts.empty()) {
      out.reserve(hi - lo);
      for (std::uint32_t row = lo; row < hi; ++row) out.push_back(row);
    } else {
      firsts[0](lo, hi, out);
      for (const auto& refine : refines) {
        if (out.empty()) break;
        refine(out);
      }
    }
  });
  Selection sel;
  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  sel.reserve(total);
  for (const auto& p : partial) sel.insert(sel.end(), p.begin(), p.end());
  return sel;
}

AggResult Table::aggregate(Executor& pool, const std::string& group_column,
                           const std::string& agg_column, AggOp op,
                           const Selection& sel) const {
  const Column& gcol = column(group_column);
  const Column* acol = op == AggOp::kCount ? nullptr : &column(agg_column);

  const std::size_t threads = pool.num_threads();
  const std::size_t nchunks = std::max<std::size_t>(1, threads * 4);
  const std::size_t chunk = (sel.size() + nchunks - 1) / std::max<std::size_t>(1, nchunks);
  std::vector<std::unordered_map<std::uint64_t, AggState>> partial(
      chunk == 0 ? 1 : (sel.size() + chunk - 1) / std::max<std::size_t>(1, chunk));
  if (!sel.empty()) {
    parallel_for(pool, 0, partial.size(), [&](std::size_t ci) {
      const std::size_t lo = ci * chunk;
      const std::size_t hi = std::min(lo + chunk, sel.size());
      auto& local = partial[ci];
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t row = sel[i];
        const double v = acol != nullptr ? acol->as_double(row) : 0.0;
        local[gcol.group_key(row)].add(v);
      }
    });
  }
  std::unordered_map<std::uint64_t, AggState> merged;
  for (const auto& local : partial) {
    for (const auto& [k, st] : local) merged[k].merge(st);
  }

  AggResult res;
  res.raw_keys.reserve(merged.size());
  for (const auto& [k, st] : merged) res.raw_keys.push_back(k);
  std::sort(res.raw_keys.begin(), res.raw_keys.end());
  res.keys.reserve(merged.size());
  res.values.reserve(merged.size());
  for (auto k : res.raw_keys) {
    res.keys.push_back(gcol.key_to_string(k));
    res.values.push_back(merged[k].finish(op));
  }
  return res;
}

double Table::aggregate_scalar(Executor& pool, const std::string& agg_column, AggOp op,
                               const Selection& sel) const {
  const Column* acol = op == AggOp::kCount ? nullptr : &column(agg_column);
  if (op == AggOp::kCount) return static_cast<double>(sel.size());
  const std::size_t nchunks = std::max<std::size_t>(1, pool.num_threads() * 4);
  const std::size_t chunk = (sel.size() + nchunks - 1) / nchunks;
  std::vector<AggState> partial(chunk == 0 ? 1 : (sel.size() + chunk - 1) / chunk);
  if (!sel.empty()) {
    parallel_for(pool, 0, partial.size(), [&](std::size_t ci) {
      const std::size_t lo = ci * chunk;
      const std::size_t hi = std::min(lo + chunk, sel.size());
      for (std::size_t i = lo; i < hi; ++i) {
        partial[ci].add(acol->as_double(sel[i]));
      }
    });
  }
  AggState all;
  for (const auto& p : partial) all.merge(p);
  return all.finish(op);
}

Table Table::materialize(const std::vector<std::string>& names,
                         const Selection& sel) const {
  Table out;
  for (const auto& name : names) {
    const Column& c = column(name);
    switch (c.type()) {
      case ColumnType::kInt64: {
        std::vector<std::int64_t> v;
        v.reserve(sel.size());
        for (auto r : sel) v.push_back(c.ints()[r]);
        out.add_column(name, Column::int64(std::move(v)));
        break;
      }
      case ColumnType::kDouble: {
        std::vector<double> v;
        v.reserve(sel.size());
        for (auto r : sel) v.push_back(c.doubles()[r]);
        out.add_column(name, Column::f64(std::move(v)));
        break;
      }
      case ColumnType::kString: {
        std::vector<std::string> v;
        v.reserve(sel.size());
        const auto& d = c.strings();
        for (auto r : sel) v.push_back(d.dict[d.codes[r]]);
        out.add_column(name, Column::string(v));
        break;
      }
    }
  }
  return out;
}

}  // namespace hpbdc::dataflow::columnar
