#include "fleet/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hpbdc::fleet {

const char* node_state_name(NodeState s) {
  switch (s) {
    case NodeState::kOff: return "off";
    case NodeState::kWarm: return "warm";
    case NodeState::kProvisioning: return "provisioning";
    case NodeState::kActive: return "active";
    case NodeState::kDraining: return "draining";
    case NodeState::kPreempted: return "preempted";
  }
  return "?";
}

namespace {

/// Resolve the 0-means-default knobs against the pool's actual cluster and
/// validate the result; the ctor runs this before any member that depends
/// on the final numbers (the tracker wants min/max at construction).
FleetConfig normalize(const dist::JobSlotPool& pool, FleetConfig cfg) {
  const std::size_t cluster = pool.cluster_nodes();
  if (cluster < 2) {
    throw std::invalid_argument("FleetController: need a driver + >= 1 worker");
  }
  const std::size_t fleet = cluster - 1;  // every node but the driver
  if (cfg.max_nodes == 0 || cfg.max_nodes > fleet) cfg.max_nodes = fleet;
  if (cfg.min_nodes == 0) cfg.min_nodes = 1;
  if (cfg.min_nodes > cfg.max_nodes) {
    throw std::invalid_argument("FleetController: min_nodes > max_nodes");
  }
  if (cfg.initial_nodes == 0) cfg.initial_nodes = cfg.min_nodes;
  cfg.initial_nodes = std::clamp(cfg.initial_nodes, cfg.min_nodes, cfg.max_nodes);
  if (cfg.jobs_per_node == 0) cfg.jobs_per_node = 1;
  if (cfg.control_interval <= 0) {
    throw std::invalid_argument("FleetController: control_interval must be > 0");
  }
  if (cfg.spot_fraction < 0 || cfg.spot_fraction > 1) {
    throw std::invalid_argument("FleetController: spot_fraction out of [0,1]");
  }
  return cfg;
}

}  // namespace

FleetController::FleetController(dist::JobSlotPool& pool, serve::JobService& svc,
                                 FleetConfig cfg)
    : pool_(pool),
      svc_(svc),
      cfg_(normalize(pool, cfg)),
      tracker_(static_cast<double>(cfg_.jobs_per_node), cfg_.target_utilization,
               cfg_.min_nodes, cfg_.max_nodes, cfg_.scale_up_cooldown,
               cfg_.scale_down_cooldown) {
  const std::size_t driver = pool_.config().driver;
  for (std::size_t n = 0; n < pool_.cluster_nodes(); ++n) {
    if (n == driver) continue;
    Node nd;
    nd.id = n;
    nodes_.push_back(nd);
  }
  // The spot tail: the highest-id machines, never eating into the always-on
  // floor (the lowest min_nodes ids stay on-demand, so a chaos schedule that
  // targets only that floor is independent of the spot market).
  std::size_t spot = static_cast<std::size_t>(cfg_.spot_fraction *
                                              static_cast<double>(cfg_.max_nodes));
  spot = std::min(spot, nodes_.size() - std::min(nodes_.size(), cfg_.min_nodes));
  for (std::size_t i = 0; i < spot; ++i) {
    nodes_[nodes_.size() - 1 - i].spot = true;
  }
}

void FleetController::bind_metrics(obs::MetricsRegistry& reg) {
  m_scale_ups_ = &reg.counter("fleet.scale_ups");
  m_scale_downs_ = &reg.counter("fleet.scale_downs");
  m_provisioned_ = &reg.counter("fleet.nodes_provisioned");
  m_warm_activations_ = &reg.counter("fleet.warm_activations");
  m_drained_ = &reg.counter("fleet.nodes_drained");
  m_powered_off_ = &reg.counter("fleet.nodes_powered_off");
  m_preemptions_ = &reg.counter("fleet.preemptions");
  m_slots_added_ = &reg.counter("fleet.slots_added");
  m_slots_retired_ = &reg.counter("fleet.slots_retired");
  g_active_ = &reg.gauge("fleet.active_nodes");
  g_warm_ = &reg.gauge("fleet.warm_nodes");
  g_provisioning_ = &reg.gauge("fleet.provisioning_nodes");
  g_draining_ = &reg.gauge("fleet.draining_nodes");
  g_slots_ = &reg.gauge("fleet.slots");
}

std::size_t FleetController::active_nodes() const noexcept {
  return count_state(NodeState::kActive);
}

NodeState FleetController::node_state(std::size_t node) const {
  for (const Node& nd : nodes_) {
    if (nd.id == node) return nd.state;
  }
  throw std::out_of_range("FleetController: not a fleet node");
}

bool FleetController::is_spot(std::size_t node) const {
  for (const Node& nd : nodes_) {
    if (nd.id == node) return nd.spot;
  }
  throw std::out_of_range("FleetController: not a fleet node");
}

void FleetController::start() {
  if (started_) throw std::logic_error("FleetController: start() called twice");
  started_ = true;
  const double now = sim().now();
  last_account_ = now;

  // Initial shape: the lowest-id initial_nodes machines are active; of the
  // rest, warm_target go to the warm pool and the remainder power off. Every
  // non-active machine is DEAD in the pool from here on — activation is what
  // revives it.
  std::size_t active = 0;
  for (Node& nd : nodes_) {
    nd.state = active < cfg_.initial_nodes ? NodeState::kActive : NodeState::kOff;
    if (nd.state == NodeState::kActive) ++active;
  }
  std::size_t warm = 0;
  for (Node& nd : nodes_) {
    if (nd.state == NodeState::kOff && warm < cfg_.warm_target) {
      nd.state = NodeState::kWarm;
      ++warm;
    }
  }
  for (Node& nd : nodes_) {
    if (nd.state != NodeState::kActive) pool_.kill_node_at(nd.id, now);
  }
  reconcile_slots();

  // Spot revocations: a chaos kill schedule over the spot tail. The schedule
  // is generated over a virtual cluster of (spot count + 1) ids with id 0
  // protected, then mapped onto the real spot machine ids — the same
  // survivability shape (one revocation at a time, bounded downtime) the
  // dist-layer chaos harness guarantees.
  if (cfg_.preempt_seed != 0 && cfg_.preemptions > 0) {
    std::vector<std::size_t> spot_idx;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].spot) spot_idx.push_back(i);
    }
    if (!spot_idx.empty()) {
      for (const chaos::KillEvent& ev : chaos::make_kill_schedule(
               cfg_.preempt_seed, spot_idx.size() + 1, 0, cfg_.preemptions,
               cfg_.preempt_horizon)) {
        const std::size_t idx = spot_idx[ev.node - 1];
        sim().schedule_at(now + ev.kill_time,
                          [this, idx, rec = now + ev.recover_time] {
                            if (!stopped_) preempt(nodes_[idx], rec);
                          });
      }
    }
  }

  update_gauges();
  sim().schedule_at(now + cfg_.control_interval, [this] { tick(); });
}

void FleetController::tick() {
  if (stopped_) return;
  const double now = sim().now();
  account(now - last_account_);
  last_account_ = now;
  ++stats_.ticks;

  // Signals: slot demand is work running plus work queued; backpressure or
  // a deadline-miss spike means the queue-depth number understates real
  // pressure (admission is already shedding), so inflate demand by a
  // fraction of current capacity to force the tracker's hand.
  double demand =
      static_cast<double>(pool_.busy()) + static_cast<double>(svc_.queue_depth());
  const serve::ServeStats& st = svc_.stats();
  const std::uint64_t misses =
      st.shed_by[static_cast<std::size_t>(serve::Reject::kDeadlineExpired)];
  const std::uint64_t dmiss = misses - last_misses_;
  const std::uint64_t ddone = st.completed - last_completions_;
  last_misses_ = misses;
  last_completions_ = st.completed;
  const double miss_rate =
      dmiss == 0 ? 0.0
                 : static_cast<double>(dmiss) / static_cast<double>(dmiss + ddone);
  if (svc_.backpressured() || miss_rate > cfg_.miss_rate_threshold) {
    demand += cfg_.backpressure_boost * static_cast<double>(pool_.slots());
  }

  const std::size_t running = count_state(NodeState::kActive);
  const std::size_t booting = count_state(NodeState::kProvisioning);
  stats_.max_active = std::max(stats_.max_active, running);
  stats_.min_active = std::min(stats_.min_active, running);

  const cluster::TargetTracker::Decision d =
      tracker_.decide(now, demand, running, booting);
  if (d.action == cluster::TargetTracker::Action::kUp) {
    ++stats_.scale_ups;
    count(m_scale_ups_);
    provision(d.order);
  } else if (d.action == cluster::TargetTracker::Action::kDown) {
    ++stats_.scale_downs;
    count(m_scale_downs_);
    drain(running - d.desired);
  }

  // Retirements that had to wait for a slot to go idle complete here.
  reconcile_slots();
  update_gauges();
  sim().schedule_at(now + cfg_.control_interval, [this] { tick(); });
}

void FleetController::account(double dt) {
  if (dt <= 0) return;
  for (const Node& nd : nodes_) {
    stats_.node_seconds += node_price(nd) * dt;
    switch (nd.state) {
      case NodeState::kActive:
      case NodeState::kProvisioning:
      case NodeState::kDraining:
        stats_.node_seconds_raw += dt;
        break;
      default:
        break;
    }
  }
}

double FleetController::node_price(const Node& nd) const {
  const double base = nd.spot ? cfg_.spot_cost_factor : 1.0;
  switch (nd.state) {
    case NodeState::kActive:
    case NodeState::kProvisioning:
    case NodeState::kDraining:
      return base;
    case NodeState::kWarm:
      return cfg_.warm_cost_factor * base;
    case NodeState::kOff:
    case NodeState::kPreempted:
      return 0.0;
  }
  return 0.0;
}

std::size_t FleetController::count_state(NodeState s) const {
  std::size_t n = 0;
  for (const Node& nd : nodes_) {
    if (nd.state == s) ++n;
  }
  return n;
}

void FleetController::provision(std::size_t n) {
  const double now = sim().now();
  // Cheapest capacity first: cancel drains (instant and free), then the warm
  // pool (fast), then cold boots.
  for (Node& nd : nodes_) {
    if (n == 0) return;
    if (nd.state != NodeState::kDraining) continue;
    ++nd.epoch;  // invalidates the pending power-off timer
    nd.state = NodeState::kActive;
    pool_.set_node_draining(nd.id, false);
    ++stats_.drain_cancels;
    --n;
  }
  for (Node& nd : nodes_) {
    if (n == 0) return;
    if (nd.state != NodeState::kWarm) continue;
    ++nd.epoch;
    nd.state = NodeState::kProvisioning;
    ++stats_.warm_activations;
    count(m_warm_activations_);
    const std::uint64_t e = nd.epoch;
    sim().schedule_at(now + cfg_.warm_activate_delay, [this, &nd, e] {
      if (!stopped_ && nd.epoch == e) activate(nd);
    });
    --n;
  }
  for (Node& nd : nodes_) {
    if (n == 0) return;
    if (nd.state != NodeState::kOff) continue;
    ++nd.epoch;
    nd.state = NodeState::kProvisioning;
    ++stats_.nodes_provisioned;
    count(m_provisioned_);
    const std::uint64_t e = nd.epoch;
    sim().schedule_at(now + cfg_.provision_delay, [this, &nd, e] {
      if (!stopped_ && nd.epoch == e) activate(nd);
    });
    --n;
  }
  // n may still be > 0 here: the rest of the fleet is preempted spot
  // capacity. Nothing to do but wait for the market to give it back.
}

void FleetController::activate(Node& nd) {
  const double now = sim().now();
  ++nd.epoch;
  nd.state = NodeState::kActive;
  // Non-active machines are dead in the pool; revive, clear any stale drain
  // flag (a drained machine keeps it while off), then let queued work in.
  pool_.recover_node_at(nd.id, now);
  pool_.set_node_draining(nd.id, false);
  reconcile_slots();
  update_gauges();
  svc_.notify_capacity_changed();
}

void FleetController::drain(std::size_t n) {
  const double now = sim().now();
  // Highest ids first: the spot tail drains before on-demand machines, and
  // the always-on floor (lowest min_nodes ids) is reached last — the tracker
  // never asks below min_nodes anyway.
  for (std::size_t i = nodes_.size(); i-- > 0 && n > 0;) {
    Node& nd = nodes_[i];
    if (nd.state != NodeState::kActive) continue;
    ++nd.epoch;
    nd.state = NodeState::kDraining;
    pool_.set_node_draining(nd.id, true);
    ++stats_.nodes_drained;
    count(m_drained_);
    const std::uint64_t e = nd.epoch;
    sim().schedule_at(now + cfg_.drain_grace, [this, &nd, e] {
      if (!stopped_ && nd.epoch == e) finish_drain(nd);
    });
    --n;
  }
}

void FleetController::finish_drain(Node& nd) {
  // The drain flag stays SET through the off state (activation clears it):
  // clearing it before the kill lands would let schedulers dispatch onto a
  // machine with an execution under it.
  pool_.kill_node_at(nd.id, sim().now());
  ++nd.epoch;
  if (count_state(NodeState::kWarm) < cfg_.warm_target) {
    nd.state = NodeState::kWarm;
  } else {
    nd.state = NodeState::kOff;
    ++stats_.nodes_powered_off;
    count(m_powered_off_);
  }
  reconcile_slots();
  update_gauges();
}

void FleetController::preempt(Node& nd, double recover_at) {
  ++stats_.preemptions;
  count(m_preemptions_);
  // Revoking a machine that was serving work IS a chaos kill: in-flight
  // attempts die and lineage/checkpoints recover them. A machine revoked
  // while off/warm/provisioning simply never had work to lose.
  if (nd.state == NodeState::kActive || nd.state == NodeState::kDraining) {
    pool_.kill_node_at(nd.id, sim().now());
  }
  ++nd.epoch;  // stands down any pending activation / power-off timer
  nd.state = NodeState::kPreempted;
  const std::uint64_t e = nd.epoch;
  sim().schedule_at(recover_at, [this, &nd, e] {
    // Back on the market: powered off, eligible for the next scale-up.
    if (nd.epoch == e) {
      ++nd.epoch;
      nd.state = NodeState::kOff;
    }
  });
  reconcile_slots();
  update_gauges();
}

void FleetController::reconcile_slots() {
  const std::size_t desired =
      std::max<std::size_t>(1, count_state(NodeState::kActive) * cfg_.jobs_per_node);
  while (pool_.slots() < desired) {
    pool_.add_slot();
    ++stats_.slots_added;
    count(m_slots_added_);
  }
  while (pool_.slots() > desired && pool_.retire_idle_slot()) {
    ++stats_.slots_retired;
    count(m_slots_retired_);
  }
}

void FleetController::update_gauges() {
  if (g_active_ == nullptr) return;
  g_active_->set(static_cast<std::int64_t>(count_state(NodeState::kActive)));
  g_warm_->set(static_cast<std::int64_t>(count_state(NodeState::kWarm)));
  g_provisioning_->set(
      static_cast<std::int64_t>(count_state(NodeState::kProvisioning)));
  g_draining_->set(static_cast<std::int64_t>(count_state(NodeState::kDraining)));
  g_slots_->set(static_cast<std::int64_t>(pool_.slots()));
}

}  // namespace hpbdc::fleet
