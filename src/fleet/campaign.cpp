#include "fleet/campaign.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "chaos/harness.hpp"
#include "chaos/plan_gen.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "dataflow/context.hpp"
#include "dist/slots.hpp"
#include "plan/lower.hpp"
#include "plan/plan.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::fleet {

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a * 0x9e3779b97f4a7c15ULL + b;
  return splitmix64(s);
}

}  // namespace

FleetCampaignOutcome run_fleet_campaign_once(const FleetCampaignConfig& cfg,
                                             Executor& pool) {
  FleetCampaignOutcome out;
  auto fail = [&out](const std::string& msg) {
    if (out.passed) {
      out.passed = false;
      out.violation = msg;
    }
  };

  // ---- trusted side: fault-free shared-memory reference per plan ---------
  std::vector<plan::LogicalPlan> plans;
  std::vector<Bytes> refs;
  for (std::size_t p = 0; p < cfg.distinct_plans; ++p) {
    plans.push_back(
        chaos::make_plan(mix(cfg.seed, 0xA0 + p), cfg.plan_nodes, cfg.rows));
    dataflow::Context ctx(pool);
    refs.push_back(plan::canonical_bytes(plan::lower_local(plans.back(), ctx)));
  }

  // ---- system under test: service + slot pool + LIVE fleet controller ----
  sim::Simulator sim;
  sim::NetworkConfig nc;
  nc.nodes = cfg.cluster_nodes;
  nc.topology = sim::Topology::kStar;
  nc.loss_seed = mix(cfg.seed, 1);
  sim::Network net(sim, nc);
  sim::Comm comm(sim, net);
  sim::Dfs dfs(comm, sim::DfsConfig{});

  dist::DistConfig dc;
  dc.driver = 0;
  dc.slots_per_node = 2;
  dc.heartbeat_interval = 0.1;
  dc.heartbeat_timeout = 0.5;
  dc.heartbeat_jitter = 0.01;
  dc.attempt_timeout = 10.0;
  dc.max_task_attempts = 8;
  dc.speculate = true;
  dc.seed = mix(cfg.seed, 2);
  const std::size_t initial_slots =
      std::max<std::size_t>(1, cfg.initial_nodes * cfg.jobs_per_node);
  dist::JobSlotPool slots(comm, dc, initial_slots, &dfs);

  serve::ServeConfig sc;
  sc.bucket_rate = 4.0;
  sc.bucket_burst = 8.0;
  sc.ntasks = 3;
  sc.cache_capacity = 64;
  serve::JobService svc(slots, sc);

  FleetConfig fc;
  fc.min_nodes = cfg.min_nodes;
  fc.max_nodes = cfg.max_nodes;
  fc.initial_nodes = cfg.initial_nodes;
  fc.jobs_per_node = cfg.jobs_per_node;
  fc.control_interval = 0.25;
  fc.target_utilization = 0.7;
  fc.scale_up_cooldown = 0.5;
  fc.scale_down_cooldown = 2.0;
  fc.provision_delay = 1.0;
  fc.warm_activate_delay = 0.25;
  fc.warm_target = 1;
  fc.drain_grace = 1.0;
  fc.spot_fraction = cfg.spot_fraction;
  fc.preempt_seed = cfg.preemptions > 0 ? mix(cfg.seed, 7) : 0;
  fc.preemptions = cfg.preemptions;
  fc.preempt_horizon = cfg.arrival_window + 2.0;
  FleetController ctrl(slots, svc, fc);

  // Chaos kills land on the always-on floor (worker ids 1..min_nodes): those
  // machines are active for the whole run, so the kill schedule composes
  // with elasticity without racing the controller's own power state. The
  // spot tail gets its faults from the controller's preemption schedule.
  if (cfg.kills > 0 && cfg.min_nodes >= 1) {
    for (const chaos::KillEvent& ev : chaos::make_kill_schedule(
             mix(cfg.seed, 3), cfg.min_nodes + 1, 0, cfg.kills,
             cfg.arrival_window + 2.0)) {
      slots.kill_node_at(ev.node, ev.kill_time);
      slots.recover_node_at(ev.node, ev.recover_time);
    }
  }

  // ---- seed-derived open-loop workload -----------------------------------
  struct Sub {
    double at = 0;
    serve::TenantId tenant = 0;
    std::size_t plan = 0;
    double deadline = 0;
    int priority = 0;
    serve::SloClass slo = serve::SloClass::kStandard;
  };
  Rng rng(mix(cfg.seed, 4));
  std::vector<Sub> subs;
  for (std::size_t t = 0; t < cfg.tenants; ++t) {
    for (std::size_t j = 0; j < cfg.jobs_per_tenant; ++j) {
      Sub s;
      s.at = rng.next_double() * cfg.arrival_window;
      s.tenant = static_cast<serve::TenantId>(t);
      s.plan = static_cast<std::size_t>(rng.next_below(cfg.distinct_plans));
      s.priority = static_cast<int>(rng.next_below(3));
      // Tier mix ~25/50/25: every class exercises its admission bucket,
      // watermark, and heap under elasticity.
      const std::uint64_t c = rng.next_below(4);
      s.slo = c == 0   ? serve::SloClass::kLatency
              : c == 3 ? serve::SloClass::kBatch
                       : serve::SloClass::kStandard;
      if (rng.next_bool(cfg.deadline_fraction)) {
        s.deadline = s.at + 0.05 + rng.next_double() * 2.0;
      }
      subs.push_back(s);
    }
  }
  out.submissions = subs.size();

  std::vector<std::size_t> fired(subs.size(), 0);
  double last_finish = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    sim.schedule_at(subs[i].at, [&, i] {
      serve::SubmitRequest req;
      req.tenant = subs[i].tenant;
      req.plan = plans[subs[i].plan];
      req.deadline = subs[i].deadline;
      req.priority = subs[i].priority;
      req.slo = subs[i].slo;
      svc.submit(std::move(req), [&, i](const serve::Completion& c) {
        fired[i]++;
        last_finish = std::max(last_finish, c.finish_time);
        if (c.status == serve::Status::kCompleted &&
            plan::canonical_bytes(c.rows) != refs[subs[i].plan]) {
          out.mismatches++;
        }
      });
    });
  }

  ctrl.start();
  // Stop the control loop mid-horizon: long after the workload drains, long
  // before the liveness watchdog — anything still keeping the simulator
  // awake at the horizon is then a real leak, not the controller's ticks.
  sim.schedule_at(cfg.horizon * 0.5, [&ctrl] { ctrl.stop(); });

  sim.run_until(cfg.horizon);
  out.makespan = last_finish;
  if (!sim.idle()) fail("liveness: events still pending at the horizon");

  // ---- oracle ------------------------------------------------------------
  for (std::size_t f : fired) {
    if (f == 0) out.lost++;
    if (f > 1) out.duplicates++;
  }
  if (out.lost > 0) {
    fail("exactly-once: " + std::to_string(out.lost) + " submissions lost");
  }
  if (out.duplicates > 0) {
    fail("exactly-once: " + std::to_string(out.duplicates) +
         " duplicate terminal callbacks");
  }
  if (out.mismatches > 0) {
    fail("correctness: " + std::to_string(out.mismatches) +
         " completed results differ from the reference");
  }

  out.stats = svc.stats();
  out.dist_stats = slots.aggregate_stats();
  out.fleet = ctrl.stats();
  if (out.stats.submitted != subs.size()) {
    fail("accounting: service submit count != workload size");
  }
  if (out.stats.completed + out.stats.failed + out.stats.shed !=
      out.stats.submitted) {
    fail("accounting: completed + failed + shed != submitted");
  }
  // Spot revocations may legitimately exhaust a retry budget, so kFailed is
  // NOT a violation here (it is in the fixed-fleet serve campaign).
  if (svc.queue_depth() != 0 || svc.running() != 0) {
    fail("accounting: queue/running not drained at quiescence");
  }
  if (initial_slots + out.fleet.slots_added !=
      slots.slots() + out.fleet.slots_retired) {
    fail("elasticity: slot arithmetic does not balance");
  }
  if (out.fleet.ticks == 0) fail("elasticity: controller never ticked");
  if (out.fleet.min_active < cfg.min_nodes) {
    fail("elasticity: active nodes dipped below the floor");
  }
  const std::size_t max_nodes =
      cfg.max_nodes == 0 ? cfg.cluster_nodes - 1 : cfg.max_nodes;
  if (out.fleet.max_active > max_nodes) {
    fail("elasticity: active nodes exceeded max_nodes");
  }
  return out;
}

std::string format_fleet_replay(const FleetCampaignConfig& cfg) {
  std::ostringstream os;
  os << "flseed=" << cfg.seed << ",tenants=" << cfg.tenants
     << ",jobs=" << cfg.jobs_per_tenant << ",plans=" << cfg.distinct_plans
     << ",pnodes=" << cfg.plan_nodes << ",rows=" << cfg.rows
     << ",cluster=" << cfg.cluster_nodes << ",minn=" << cfg.min_nodes
     << ",maxn=" << cfg.max_nodes << ",init=" << cfg.initial_nodes
     << ",jpn=" << cfg.jobs_per_node << ",kills=" << cfg.kills
     << ",preempt=" << cfg.preemptions << ",spot=" << cfg.spot_fraction
     << ",window=" << cfg.arrival_window << ",dl=" << cfg.deadline_fraction;
  return os.str();
}

FleetCampaignConfig parse_fleet_replay(const std::string& spec) {
  FleetCampaignConfig cfg;
  std::istringstream is(spec);
  std::string kv;
  while (std::getline(is, kv, ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fleet replay: bad token '" + kv + "'");
    }
    const std::string k = kv.substr(0, eq);
    const std::string v = kv.substr(eq + 1);
    if (k == "flseed") cfg.seed = std::stoull(v);
    else if (k == "tenants") cfg.tenants = std::stoull(v);
    else if (k == "jobs") cfg.jobs_per_tenant = std::stoull(v);
    else if (k == "plans") cfg.distinct_plans = std::stoull(v);
    else if (k == "pnodes") cfg.plan_nodes = std::stoull(v);
    else if (k == "rows") cfg.rows = std::stoull(v);
    else if (k == "cluster") cfg.cluster_nodes = std::stoull(v);
    else if (k == "minn") cfg.min_nodes = std::stoull(v);
    else if (k == "maxn") cfg.max_nodes = std::stoull(v);
    else if (k == "init") cfg.initial_nodes = std::stoull(v);
    else if (k == "jpn") cfg.jobs_per_node = std::stoull(v);
    else if (k == "kills") cfg.kills = std::stoull(v);
    else if (k == "preempt") cfg.preemptions = std::stoull(v);
    else if (k == "spot") cfg.spot_fraction = std::stod(v);
    else if (k == "window") cfg.arrival_window = std::stod(v);
    else if (k == "dl") cfg.deadline_fraction = std::stod(v);
    else throw std::invalid_argument("fleet replay: unknown key '" + k + "'");
  }
  return cfg;
}

FleetShrinkResult shrink_fleet(const FleetCampaignConfig& cfg0, Executor& pool) {
  FleetShrinkResult res;
  res.config = cfg0;
  res.outcome = run_fleet_campaign_once(cfg0, pool);
  res.runs = 1;

  auto attempt = [&res, &pool](FleetCampaignConfig c) {
    ++res.runs;
    FleetCampaignOutcome out = run_fleet_campaign_once(c, pool);
    if (out.passed) return false;
    res.config = c;
    res.outcome = std::move(out);
    return true;
  };

  bool progress = !res.outcome.passed;
  while (progress) {
    progress = false;
    // Fault knobs first (a repro without faults is the most surprising kind),
    // then workload size, then plan size.
    {
      FleetCampaignConfig c = res.config;
      if (c.preemptions > 0) {
        c.preemptions /= 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
    {
      FleetCampaignConfig c = res.config;
      if (c.kills > 0) {
        c.kills /= 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
    {
      FleetCampaignConfig c = res.config;
      if (c.tenants > 1) {
        c.tenants = (c.tenants + 1) / 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
    {
      FleetCampaignConfig c = res.config;
      if (c.jobs_per_tenant > 1) {
        c.jobs_per_tenant = (c.jobs_per_tenant + 1) / 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
    {
      FleetCampaignConfig c = res.config;
      if (c.distinct_plans > 1) {
        c.distinct_plans = (c.distinct_plans + 1) / 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
    {
      FleetCampaignConfig c = res.config;
      if (c.rows > 32) {
        c.rows /= 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
    {
      FleetCampaignConfig c = res.config;
      if (c.plan_nodes > 2) {
        c.plan_nodes = (c.plan_nodes + 1) / 2;
        if (attempt(c)) { progress = true; continue; }
      }
    }
  }
  res.replay = format_fleet_replay(res.config);
  return res;
}

}  // namespace hpbdc::fleet
