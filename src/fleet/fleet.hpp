#pragma once
// Closed-loop fleet elasticity for the serve stack: the piece that turns a
// fixed simulated cluster into a demand-shaped cloud deployment. A
// FleetController polls the serve layer's own signals on the sim clock —
// executor-slot utilization, queue depth, backpressure, and the
// deadline-miss rate — feeds them through the SAME target-tracking policy
// the F7 autoscaler experiment validated (cluster::TargetTracker), and
// actuates capacity in two coupled layers:
//
//   nodes — each non-driver cluster node is a machine with a lifecycle:
//           off -> (provision_delay) -> active -> draining -> off. A warm
//           pool keeps a few powered-off machines reserved (activation in
//           warm_activate_delay at warm_cost_factor standby cost); a
//           configurable tail of the fleet is SPOT capacity, billed at
//           spot_cost_factor but revocable — preemption schedules reuse
//           chaos::make_kill_schedule, and a revoked machine returns to
//           the market at its scheduled recover time. Draining stops NEW
//           task dispatch to the machine (DistRuntime executor drain) while
//           running attempts finish; the power-off after drain_grace is
//           covered by lineage recomputation and checkpoints for whatever
//           was still in flight.
//   slots — the JobSlotPool grows/shrinks to jobs_per_node slots per
//           active node (add_slot / retire_idle_slot), and the controller
//           pokes serve::JobService::notify_capacity_changed after growth
//           so queued work dispatches immediately.
//
// Cost accounting (FleetStats::node_seconds) integrates the per-state
// price of every machine over simulated time — the static-vs-elastic-vs-
// elastic+spot comparison of bench_f17. Everything is seed-deterministic:
// the controller adds no randomness of its own, and preemptions derive
// entirely from preempt_seed.

#include <cstdint>
#include <vector>

#include "chaos/harness.hpp"
#include "cluster/autoscaler.hpp"
#include "dist/slots.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace hpbdc::fleet {

/// Machine lifecycle states. kPreempted is spot-only: revoked by the
/// market, unusable until its scheduled return.
enum class NodeState : std::uint8_t {
  kOff = 0,
  kWarm,          // powered off, reserved: fast activation, standby cost
  kProvisioning,  // boot in progress (cold or warm activation)
  kActive,
  kDraining,      // no new tasks; power-off after drain_grace
  kPreempted,     // spot revoked; returns to market at recover time
};
const char* node_state_name(NodeState s);

struct FleetConfig {
  std::size_t min_nodes = 1;
  std::size_t max_nodes = 0;      // 0 = every non-driver cluster node
  std::size_t initial_nodes = 0;  // 0 = min_nodes
  /// JobSlotPool slots per active node: the capacity unit the tracker
  /// plans in (more machines = more concurrent jobs).
  std::size_t jobs_per_node = 1;
  // Control loop.
  double control_interval = 1.0;      // seconds between evaluations
  double target_utilization = 0.7;    // plan for this steady-state load
  double scale_up_cooldown = 2.0;
  double scale_down_cooldown = 8.0;
  // Node lifecycle.
  double provision_delay = 3.0;       // cold boot
  double warm_activate_delay = 0.5;   // warm-pool activation
  std::size_t warm_target = 1;        // machines kept warm after a drain
  double warm_cost_factor = 0.2;      // standby price of a warm machine
  double drain_grace = 2.0;           // drain before power-off
  // Signal shaping: when the service is backpressured or missing
  // deadlines, inflate demand by this fraction of current capacity so the
  // tracker reacts to overload the queue-depth signal alone understates.
  double backpressure_boost = 0.5;
  double miss_rate_threshold = 0.05;  // deadline sheds / completions per tick
  // Spot market: the spot_fraction highest-id machines are preemptible at
  // spot_cost_factor price. preempt_seed = 0 disables revocations.
  double spot_fraction = 0.0;
  double spot_cost_factor = 0.3;
  std::uint64_t preempt_seed = 0;
  std::size_t preemptions = 0;
  double preempt_horizon = 60.0;
};

struct FleetStats {
  std::uint64_t ticks = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t nodes_provisioned = 0;  // cold boots ordered
  std::uint64_t warm_activations = 0;
  std::uint64_t drain_cancels = 0;      // draining machine re-activated
  std::uint64_t nodes_drained = 0;
  std::uint64_t nodes_powered_off = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t slots_added = 0;
  std::uint64_t slots_retired = 0;
  double node_seconds = 0;      // state-priced cost integral (the bill)
  double node_seconds_raw = 0;  // unpriced active+boot+drain machine-seconds
  std::size_t max_active = 0;
  std::size_t min_active = ~std::size_t{0};
};

class FleetController {
 public:
  /// The controller drives `pool` and reads `svc`'s signals; both must
  /// outlive it. Node ids are the pool's cluster nodes minus the driver.
  FleetController(dist::JobSlotPool& pool, serve::JobService& svc,
                  FleetConfig cfg);

  /// fleet.* gauges/counters.
  void bind_metrics(obs::MetricsRegistry& reg);

  /// Power the fleet to its initial shape (machines beyond initial_nodes
  /// power off, the first warm_target of them to the warm pool), schedule
  /// the spot preemption schedule, and begin the control loop. Call once,
  /// before (or at) the first workload arrival.
  void start();

  /// Stop the control loop and freeze capacity in its current state; any
  /// already-scheduled lifecycle event stands down. After stop() the
  /// controller schedules nothing further, so the simulator can go idle —
  /// which is what the campaign's liveness oracle checks.
  void stop() { stopped_ = true; }

  const FleetStats& stats() const noexcept { return stats_; }
  const FleetConfig& config() const noexcept { return cfg_; }
  std::size_t active_nodes() const noexcept;
  NodeState node_state(std::size_t node) const;
  bool is_spot(std::size_t node) const;

 private:
  struct Node {
    std::size_t id = 0;  // cluster node id
    NodeState state = NodeState::kOff;
    bool spot = false;
    /// Bumped on every state transition. Scheduled lifecycle callbacks
    /// (activation after boot, power-off after drain_grace) capture the
    /// epoch at scheduling time and stand down if the node has transitioned
    /// since — a drain cancel or preemption invalidates in-flight timers
    /// without having to cancel simulator events.
    std::uint64_t epoch = 0;
  };

  sim::Simulator& sim() { return pool_.simulator(); }
  void tick();
  void account(double dt);
  std::size_t count_state(NodeState s) const;
  void provision(std::size_t n);
  void activate(Node& nd);
  void drain(std::size_t n);
  void finish_drain(Node& nd);
  void preempt(Node& nd, double recover_at);
  void reconcile_slots();
  void update_gauges();
  double node_price(const Node& nd) const;
  void count(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->add(n);
  }

  dist::JobSlotPool& pool_;
  serve::JobService& svc_;
  FleetConfig cfg_;
  cluster::TargetTracker tracker_;
  std::vector<Node> nodes_;  // fleet machines (cluster nodes minus driver)
  bool started_ = false;
  bool stopped_ = false;
  double last_account_ = 0;
  std::uint64_t last_misses_ = 0;
  std::uint64_t last_completions_ = 0;
  FleetStats stats_;

  obs::Counter* m_scale_ups_ = nullptr;
  obs::Counter* m_scale_downs_ = nullptr;
  obs::Counter* m_provisioned_ = nullptr;
  obs::Counter* m_warm_activations_ = nullptr;
  obs::Counter* m_drained_ = nullptr;
  obs::Counter* m_powered_off_ = nullptr;
  obs::Counter* m_preemptions_ = nullptr;
  obs::Counter* m_slots_added_ = nullptr;
  obs::Counter* m_slots_retired_ = nullptr;
  obs::Gauge* g_active_ = nullptr;
  obs::Gauge* g_warm_ = nullptr;
  obs::Gauge* g_provisioning_ = nullptr;
  obs::Gauge* g_draining_ = nullptr;
  obs::Gauge* g_slots_ = nullptr;
};

}  // namespace hpbdc::fleet
