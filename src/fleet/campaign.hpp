#pragma once
// Elasticity-aware chaos campaign: the serve-layer campaign (serve/campaign)
// re-run with the fleet controller LIVE. One seed derives the tenant plans,
// arrivals, SLO classes, priorities, deadlines, the executor-kill schedule
// on the always-on floor, AND the spot-preemption schedule; the controller
// grows and shrinks the slot pool underneath the service the whole time.
// The oracle is the serve oracle made elasticity-aware:
//
//   exactly-once — every submission gets exactly one terminal callback even
//                  when its executor slot was added mid-run, its node was
//                  drained mid-job, or a spot revocation killed the machine
//                  under it.
//   correctness  — every kCompleted result is bit-identical to the
//                  fault-free shared-memory reference of its plan.
//   accounting   — service stats balance AND the pool's slot arithmetic
//                  balances: initial + added - retired == final slots.
//   elasticity   — the controller actually ran (ticks > 0), never held
//                  fewer than min_nodes active, never more than max_nodes.
//   liveness     — the run quiesces within the horizon (the controller's
//                  stop() is scheduled mid-horizon; nothing may keep the
//                  simulator awake after the work drains).
//
// Unlike the fixed-fleet serve campaign, FAILED jobs are tolerated (a spot
// revocation storm can exhaust a job's retry budget — that is the contract
// of spot capacity); lost/duplicate callbacks and bit-differences are not.
//
// A failing seed shrinks to a minimal config and prints a one-line
// `flseed=...` replay spec; chaos_demo --fleet accepts it back.

#include <cstdint>
#include <string>

#include "dist/runtime.hpp"
#include "fleet/fleet.hpp"
#include "serve/service.hpp"

namespace hpbdc {
class Executor;
}

namespace hpbdc::fleet {

struct FleetCampaignConfig {
  std::uint64_t seed = 1;
  std::size_t tenants = 6;
  std::size_t jobs_per_tenant = 5;
  std::size_t distinct_plans = 3;
  std::size_t plan_nodes = 4;
  std::uint64_t rows = 96;         // rows per source node
  std::size_t cluster_nodes = 10;  // node 0 hosts the drivers
  std::size_t min_nodes = 2;       // always-on floor (chaos kills land here)
  std::size_t max_nodes = 0;       // 0 = every worker
  std::size_t initial_nodes = 2;
  std::size_t jobs_per_node = 2;   // slot pool capacity unit
  std::size_t kills = 1;           // kill/recover pairs on the floor
  std::size_t preemptions = 2;     // spot revocations
  double spot_fraction = 0.5;      // of max_nodes, the high-id tail
  double arrival_window = 8.0;
  double deadline_fraction = 0.15;
  double horizon = 600.0;          // liveness watchdog (simulated seconds)
};

struct FleetCampaignOutcome {
  bool passed = true;
  std::string violation;  // first failed check; empty when passed
  std::size_t submissions = 0;
  std::size_t duplicates = 0;
  std::size_t lost = 0;
  std::size_t mismatches = 0;
  serve::ServeStats stats;
  dist::DistStats dist_stats;
  FleetStats fleet;
  double makespan = 0;
};

/// One full elastic run. `pool` executes the fault-free shared-memory
/// reference for each distinct plan; everything else is seed-deterministic.
FleetCampaignOutcome run_fleet_campaign_once(const FleetCampaignConfig& cfg,
                                             Executor& pool);

/// One-line replay spec ("flseed=..."); round-trips through parse.
std::string format_fleet_replay(const FleetCampaignConfig& cfg);
FleetCampaignConfig parse_fleet_replay(const std::string& spec);

struct FleetShrinkResult {
  FleetCampaignConfig config;      // minimal still-failing config
  FleetCampaignOutcome outcome;    // its outcome
  std::size_t runs = 0;            // campaign runs the search consumed
  std::string replay;              // format_fleet_replay(config)
};

/// Greedy shrink of a failing config: repeatedly halve workload and fault
/// knobs, keeping any reduction that still fails, until a fixpoint.
FleetShrinkResult shrink_fleet(const FleetCampaignConfig& cfg, Executor& pool);

}  // namespace hpbdc::fleet
