#pragma once
// Engine-wide observability: a named-metric registry shared by every layer
// (exec, dataflow, kvstore, benches). Three instrument kinds:
//
//   * Counter — monotonically increasing u64, lock-free (relaxed atomics).
//   * Gauge   — last-written i64 plus a running maximum, lock-free.
//   * LatencyHistogram — the log-bucketed Histogram from common/stats.hpp,
//     striped over cache-line-separated shards so concurrent recorders on
//     different threads rarely contend; snapshot() merges the shards.
//
// The registry is instance-scoped (one per Context / bench / test), not a
// process singleton: tests stay hermetic and two pipelines never mix
// numbers. Registration is thread-safe and returns stable references that
// live as long as the registry — hot paths look a metric up once and keep
// the reference. Every instrumentation site in the engine is gated on a
// nullable registry pointer, so the disabled cost is one branch on nullptr.

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace hpbdc::obs {

/// Monotonic event count. Relaxed ordering: totals are exact once the
/// recording threads have been joined/quiesced (e.g. after TaskGroup::wait).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-set value with a high-water mark (for sizes, queue depths, skew).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  void add(std::int64_t delta) noexcept {
    update_max(v_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  std::int64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }

 private:
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Thread-striped latency/size histogram. record() locks only the calling
/// thread's shard; snapshot() merges all shards into one Histogram.
class LatencyHistogram {
 public:
  void record(double v) noexcept {
    Shard& s = shards_[shard_index()];
    std::lock_guard lk(s.mu);
    s.h.add(v);
  }

  Histogram snapshot() const {
    Histogram out;
    for (const Shard& s : shards_) {
      std::lock_guard lk(s.mu);
      out.merge(s.h);
    }
    return out;
  }

 private:
  static constexpr std::size_t kShards = 8;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    Histogram h;
  };

  static std::size_t shard_index() noexcept;

  Shard shards_[kShards];
};

/// One merged view of every metric in a registry at a point in time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;
};

/// Named-metric registry. counter()/gauge()/histogram() create on first use
/// and afterwards return the same instance; references stay valid for the
/// registry's lifetime (instruments are heap-allocated, the map only holds
/// owning pointers). Lookups take a mutex — cache the reference on hot paths.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Aligned, diff-able report of every registered metric (uses Table).
  void print(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace hpbdc::obs
