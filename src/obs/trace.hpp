#pragma once
// Low-overhead span tracer with Chrome-trace export. A TraceSession collects
// complete ("ph":"X") duration events; write_chrome_json() emits the JSON
// object format that chrome://tracing and https://ui.perfetto.dev load
// directly. Spans are RAII: they time from construction to close() (or
// destruction — including stack unwinding, so a span opened around a failing
// action still appears in the trace with the right duration).
//
// Every span operation is gated on a nullable TraceSession*: a Span built
// with nullptr is inert and its whole lifecycle costs two branches, which
// is what lets the engine leave instrumentation compiled-in everywhere.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace hpbdc::obs {

/// One completed span. Timestamps are microseconds since session start.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint64_t items = 0;  // optional "how much data" arg; emitted if set
  bool has_items = false;
};

/// Thread-safe collector of trace events for one run/session.
class TraceSession {
 public:
  TraceSession() : start_(std::chrono::steady_clock::now()) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds elapsed since the session was created.
  std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  void record(TraceEvent ev) {
    std::lock_guard lk(mu_);
    events_.push_back(std::move(ev));
  }

  std::size_t event_count() const {
    std::lock_guard lk(mu_);
    return events_.size();
  }

  std::vector<TraceEvent> events() const {
    std::lock_guard lk(mu_);
    return events_;
  }

  /// Chrome trace-event JSON ("traceEvents" object format).
  void write_chrome_json(std::ostream& os) const;

  /// Convenience: write_chrome_json to a file; returns false on I/O failure.
  bool write_chrome_json_file(const std::string& path) const;

  /// Small dense id for the calling thread, stable within the process.
  static std::uint32_t current_tid() noexcept;

 private:
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII duration span. Movable, not copyable; close() is idempotent.
class Span {
 public:
  Span() = default;

  Span(TraceSession* session, std::string name, std::string category = "stage")
      : session_(session) {
    if (session_ == nullptr) return;
    name_ = std::move(name);
    category_ = std::move(category);
    start_us_ = session_->now_us();
  }

  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      close();
      session_ = std::exchange(o.session_, nullptr);
      name_ = std::move(o.name_);
      category_ = std::move(o.category_);
      start_us_ = o.start_us_;
      items_ = o.items_;
      has_items_ = o.has_items_;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { close(); }

  /// Attach a record/element count shown in the trace viewer's args pane.
  void set_items(std::uint64_t n) noexcept {
    if (session_ == nullptr) return;
    items_ = n;
    has_items_ = true;
  }

  void close() noexcept {
    if (session_ == nullptr) return;
    TraceSession* s = std::exchange(session_, nullptr);
    const std::uint64_t end = s->now_us();
    try {
      s->record(TraceEvent{std::move(name_), std::move(category_), start_us_,
                           end - start_us_, TraceSession::current_tid(), items_,
                           has_items_});
    } catch (...) {
      // Dropping a trace event (OOM) must never take down the traced work.
    }
  }

 private:
  TraceSession* session_ = nullptr;
  std::string name_;
  std::string category_;
  std::uint64_t start_us_ = 0;
  std::uint64_t items_ = 0;
  bool has_items_ = false;
};

}  // namespace hpbdc::obs
