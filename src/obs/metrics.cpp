#include "obs/metrics.hpp"

namespace hpbdc::obs {

namespace {
// Monotonic per-thread id; spreads recorders over histogram shards without
// hashing std::thread::id on every record().
std::size_t next_thread_ordinal() noexcept {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

std::size_t LatencyHistogram::shard_index() noexcept {
  thread_local const std::size_t ordinal = next_thread_ordinal();
  return ordinal % kShards;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lk(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

void MetricsRegistry::print(std::ostream& os) const {
  const MetricsSnapshot snap = snapshot();
  Table tbl({"metric", "kind", "count/value", "mean", "p50", "p99", "max"});
  for (const auto& [name, v] : snap.counters) {
    tbl.row({name, "counter", std::to_string(v), "", "", "", ""});
  }
  for (const auto& [name, v] : snap.gauges) {
    tbl.row({name, "gauge", std::to_string(v), "", "", "", ""});
  }
  for (const auto& [name, h] : snap.histograms) {
    tbl.row({name, "histogram", std::to_string(h.count()), Table::num(h.mean()),
             Table::num(h.p50()), Table::num(h.p99()), Table::num(h.max())});
  }
  tbl.print(os);
}

}  // namespace hpbdc::obs
