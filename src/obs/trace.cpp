#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>

namespace hpbdc::obs {

namespace {

// Dense thread ids: chrome://tracing groups rows by tid, and small integers
// read better than hashed std::thread::id values.
std::uint32_t next_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint32_t TraceSession::current_tid() noexcept {
  thread_local const std::uint32_t tid = next_tid();
  return tid;
}

void TraceSession::write_chrome_json(std::ostream& os) const {
  std::vector<TraceEvent> snapshot;
  {
    std::lock_guard lk(mu_);
    snapshot = events_;
  }
  os << "{\"traceEvents\":[";
  std::string line;
  bool first = true;
  for (const TraceEvent& ev : snapshot) {
    line.clear();
    if (!first) line += ',';
    first = false;
    line += "\n{\"name\":\"";
    append_escaped(line, ev.name);
    line += "\",\"cat\":\"";
    append_escaped(line, ev.category);
    line += "\",\"ph\":\"X\",\"ts\":" + std::to_string(ev.ts_us) +
            ",\"dur\":" + std::to_string(ev.dur_us) +
            ",\"pid\":1,\"tid\":" + std::to_string(ev.tid);
    if (ev.has_items) {
      line += ",\"args\":{\"items\":" + std::to_string(ev.items) + "}";
    }
    line += '}';
    os << line;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool TraceSession::write_chrome_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_json(f);
  return static_cast<bool>(f);
}

}  // namespace hpbdc::obs
