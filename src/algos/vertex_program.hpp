#pragma once
// Pregel-style vertex-centric BSP framework over the dataflow engine: a
// VertexProgram defines how a vertex combines incoming messages, updates
// its value, and what it sends along out-edges; run_vertex_program executes
// synchronized supersteps (each one shuffle) until no vertex is active or
// the step cap is hit. PageRank/CC/SSSP-style algorithms become ~15-line
// programs; BFS below is the bundled demonstration.
//
//   struct Program {
//     using Value = ...;     // per-vertex state
//     using Message = ...;   // what flows along edges
//     static Message combine(Message a, const Message& b);   // associative
//     // Returns nullopt to stay inactive; a new value activates the vertex.
//     std::optional<Value> apply(NodeId v, const Value& current,
//                                const std::optional<Message>& incoming,
//                                std::size_t superstep);
//     // Message for neighbour `dst` of an active vertex, or nullopt.
//     std::optional<Message> scatter(NodeId src, const Value& value, NodeId dst);
//   };

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "algos/graph.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::algos {

struct VertexRunStats {
  std::size_t supersteps = 0;
  std::uint64_t messages_sent = 0;
};

/// Run `program` to quiescence (or max_supersteps). `values` holds the
/// initial per-vertex state and receives the final state. Initially-active
/// vertices are given by `frontier`.
template <typename Program>
VertexRunStats run_vertex_program(dataflow::Context& ctx, NodeId nodes,
                                  const std::vector<Edge>& edges, Program program,
                                  std::vector<typename Program::Value>& values,
                                  std::vector<NodeId> frontier,
                                  std::size_t max_supersteps = 1000) {
  using dataflow::Dataset;
  using Value = typename Program::Value;
  using Message = typename Program::Message;

  if (values.size() != nodes) {
    throw std::invalid_argument("run_vertex_program: values size != nodes");
  }
  // Adjacency, built once: (src, [dst...]).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(edges.size());
  for (const auto& e : edges) pairs.emplace_back(e.src, e.dst);
  auto adj =
      dataflow::group_by_key(
          Dataset<std::pair<NodeId, NodeId>>::parallelize(ctx, std::move(pairs)))
          .cache();

  VertexRunStats stats;
  while (!frontier.empty() && stats.supersteps < max_supersteps) {
    ++stats.supersteps;
    // Scatter: messages from active vertices along their out-edges.
    std::vector<std::pair<NodeId, Value>> active;
    active.reserve(frontier.size());
    for (NodeId v : frontier) active.emplace_back(v, values[v]);
    auto active_ds = Dataset<std::pair<NodeId, Value>>::parallelize(ctx, std::move(active));

    auto messages = dataflow::join(adj, active_ds)
                        .flat_map([&program](const std::pair<
                                      NodeId, std::pair<std::vector<NodeId>, Value>>& kv) {
                          std::vector<std::pair<NodeId, Message>> out;
                          out.reserve(kv.second.first.size());
                          for (NodeId dst : kv.second.first) {
                            if (auto m = program.scatter(kv.first, kv.second.second, dst)) {
                              out.emplace_back(dst, std::move(*m));
                            }
                          }
                          return out;
                        });
    auto combined = dataflow::reduce_by_key(messages, [](Message a, const Message& b) {
      return Program::combine(std::move(a), b);
    });

    // Apply: vertices with messages may update and re-activate.
    frontier.clear();
    const auto inbox = combined.collect();
    stats.messages_sent += inbox.size();
    for (const auto& [v, msg] : inbox) {
      if (auto next = program.apply(v, values[v], msg, stats.supersteps)) {
        values[v] = std::move(*next);
        frontier.push_back(v);
      }
    }
  }
  return stats;
}

// ---- BFS as a vertex program ------------------------------------------------

struct BfsProgram {
  using Value = std::uint32_t;    // depth (max = unreached)
  using Message = std::uint32_t;  // candidate depth

  static constexpr Value kUnreached = std::numeric_limits<Value>::max();

  static Message combine(Message a, const Message& b) { return a < b ? a : b; }

  std::optional<Value> apply(NodeId, const Value& current,
                             const std::optional<Message>& incoming, std::size_t) {
    if (incoming && *incoming < current) return *incoming;
    return std::nullopt;
  }

  std::optional<Message> scatter(NodeId, const Value& value, NodeId) {
    return value + 1;
  }
};

/// BFS depths from `source` (kUnreached for unreachable vertices).
inline std::vector<std::uint32_t> bfs_dataflow(dataflow::Context& ctx, NodeId nodes,
                                               const std::vector<Edge>& edges,
                                               NodeId source) {
  std::vector<std::uint32_t> depth(nodes, BfsProgram::kUnreached);
  depth[source] = 0;
  run_vertex_program(ctx, nodes, edges, BfsProgram{}, depth, {source});
  return depth;
}

/// Serial reference BFS.
inline std::vector<std::uint32_t> bfs_serial(NodeId nodes, const std::vector<Edge>& edges,
                                             NodeId source) {
  Csr csr(nodes, edges);
  std::vector<std::uint32_t> depth(nodes, BfsProgram::kUnreached);
  depth[source] = 0;
  std::vector<NodeId> frontier{source}, next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId u : frontier) {
      auto [lo, hi] = csr.neighbours(u);
      for (auto p = lo; p != hi; ++p) {
        if (depth[*p] == BfsProgram::kUnreached) {
          depth[*p] = depth[u] + 1;
          next.push_back(*p);
        }
      }
    }
    frontier.swap(next);
  }
  return depth;
}

}  // namespace hpbdc::algos
