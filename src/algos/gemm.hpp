#pragma once
// Dense matrix multiplication — the HPC kernel (experiment T10): a naive
// triple loop, a cache-blocked kernel with the k-loop hoisted (ikj order so
// the innermost loop streams contiguously), and a row-block-parallel
// variant on the Executor. Row-major storage throughout.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "exec/parallel.hpp"

namespace hpbdc::algos {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.next_double() * 2.0 - 1.0;
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  double& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }
  const double* row(std::size_t r) const noexcept { return data_.data() + r * cols_; }
  double* row(std::size_t r) noexcept { return data_.data() + r * cols_; }

  bool approx_equal(const Matrix& o, double tol = 1e-9) const {
    if (rows_ != o.rows_ || cols_ != o.cols_) return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      if (std::abs(data_[i] - o.data_[i]) > tol) return false;
    }
    return true;
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

namespace detail {
inline void check_shapes(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("gemm: shape mismatch");
}
}  // namespace detail

/// Textbook ijk triple loop: strides through B column-wise (cache-hostile).
inline Matrix gemm_naive(const Matrix& a, const Matrix& b) {
  detail::check_shapes(a, b);
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

/// ikj loop order: the inner j-loop streams B's and C's rows contiguously.
inline Matrix gemm_ikj(const Matrix& a, const Matrix& b) {
  detail::check_shapes(a, b);
  Matrix c(a.rows(), b.cols());
  const std::size_t n = b.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      const double* brow = b.row(k);
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

/// Cache-blocked ikj with `block`-sized tiles on every dimension.
inline Matrix gemm_blocked(const Matrix& a, const Matrix& b, std::size_t block = 64) {
  detail::check_shapes(a, b);
  if (block == 0) throw std::invalid_argument("gemm: zero block");
  Matrix c(a.rows(), b.cols());
  const std::size_t m = a.rows(), kk = a.cols(), n = b.cols();
  for (std::size_t i0 = 0; i0 < m; i0 += block) {
    const std::size_t i1 = std::min(i0 + block, m);
    for (std::size_t k0 = 0; k0 < kk; k0 += block) {
      const std::size_t k1 = std::min(k0 + block, kk);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(j0 + block, n);
        for (std::size_t i = i0; i < i1; ++i) {
          double* crow = c.row(i);
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = a.at(i, k);
            const double* brow = b.row(k);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
  return c;
}

/// Row-block-parallel blocked GEMM: independent output-row stripes on the
/// pool; no synchronization needed since stripes never overlap.
inline Matrix gemm_parallel(Executor& pool, const Matrix& a, const Matrix& b,
                            std::size_t block = 64) {
  detail::check_shapes(a, b);
  Matrix c(a.rows(), b.cols());
  const std::size_t kk = a.cols(), n = b.cols();
  parallel_for_blocked(pool, 0, a.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k0 = 0; k0 < kk; k0 += block) {
      const std::size_t k1 = std::min(k0 + block, kk);
      for (std::size_t j0 = 0; j0 < n; j0 += block) {
        const std::size_t j1 = std::min(j0 + block, n);
        for (std::size_t i = lo; i < hi; ++i) {
          double* crow = c.row(i);
          for (std::size_t k = k0; k < k1; ++k) {
            const double aik = a.at(i, k);
            const double* brow = b.row(k);
            for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  });
  return c;
}

}  // namespace hpbdc::algos
