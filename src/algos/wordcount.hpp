#pragma once
// WordCount and grep — the canonical dataflow programs, written entirely
// against the public Dataset API. Both a parallel dataflow version and a
// single-threaded baseline (for speedup measurements) are provided.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algos/textgen.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::algos {

/// (word, count) for every distinct word, via flat_map + reduce_by_key.
inline dataflow::Dataset<std::pair<std::string, std::uint64_t>> word_count(
    const dataflow::Dataset<std::string>& lines, std::size_t nparts = 0) {
  auto words = lines.flat_map([](const std::string& line) { return tokenize(line); });
  auto pairs = words.map([](const std::string& w) {
    return std::pair<std::string, std::uint64_t>(w, 1);
  });
  return dataflow::reduce_by_key(
      pairs, [](std::uint64_t a, std::uint64_t b) { return a + b; }, nparts);
}

/// Single-threaded reference implementation.
inline std::unordered_map<std::string, std::uint64_t> word_count_serial(
    const std::vector<std::string>& lines) {
  std::unordered_map<std::string, std::uint64_t> counts;
  for (const auto& line : lines) {
    for (auto& w : tokenize(line)) ++counts[std::move(w)];
  }
  return counts;
}

/// Lines containing `needle` (plain substring match).
inline dataflow::Dataset<std::string> grep(const dataflow::Dataset<std::string>& lines,
                                           std::string needle) {
  return lines.filter([needle = std::move(needle)](const std::string& line) {
    return line.find(needle) != std::string::npos;
  });
}

}  // namespace hpbdc::algos
