#pragma once
// Synthetic text workloads for WordCount/grep experiments: a deterministic
// pseudo-word dictionary sampled with zipf popularity — the same first-order
// statistics (heavy-tailed word frequency) as natural-language corpora,
// which is what makes map-side combining effective.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hpbdc::algos {

struct TextGenConfig {
  std::size_t vocabulary = 10000;
  double zipf_theta = 0.9;
  std::size_t words_per_line_min = 5;
  std::size_t words_per_line_max = 15;
};

/// Deterministic pseudo-word for a vocabulary rank (rank 0 most frequent).
std::string word_for_rank(std::size_t rank);

/// Generate `lines` lines of zipf-sampled words.
std::vector<std::string> generate_text(const TextGenConfig& cfg, std::size_t lines,
                                       Rng& rng);

/// Split a line into whitespace-delimited tokens.
std::vector<std::string> tokenize(const std::string& line);

}  // namespace hpbdc::algos
