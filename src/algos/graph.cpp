#include "algos/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpbdc::algos {

std::vector<Edge> erdos_renyi(NodeId nodes, std::size_t edges, Rng& rng) {
  if (nodes < 2) throw std::invalid_argument("erdos_renyi: need >= 2 nodes");
  std::vector<Edge> out;
  out.reserve(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(nodes));
    auto v = static_cast<NodeId>(rng.next_below(nodes - 1));
    if (v >= u) ++v;  // skip self-loop without rejection
    out.push_back(Edge{u, v});
  }
  return out;
}

std::vector<Edge> rmat(NodeId nodes, std::size_t edges, Rng& rng, RmatConfig cfg) {
  if (nodes == 0 || (nodes & (nodes - 1)) != 0) {
    throw std::invalid_argument("rmat: nodes must be a power of two");
  }
  const double d = 1.0 - cfg.a - cfg.b - cfg.c;
  if (cfg.a <= 0 || cfg.b <= 0 || cfg.c <= 0 || d <= 0) {
    throw std::invalid_argument("rmat: quadrant probabilities must be positive");
  }
  int scale = 0;
  for (NodeId n = nodes; n > 1; n >>= 1) ++scale;

  std::vector<Edge> out;
  out.reserve(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    NodeId u = 0, v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double r = rng.next_double();
      if (r < cfg.a) {
        // top-left: no bits set
      } else if (r < cfg.a + cfg.b) {
        v |= (1u << bit);
      } else if (r < cfg.a + cfg.b + cfg.c) {
        u |= (1u << bit);
      } else {
        u |= (1u << bit);
        v |= (1u << bit);
      }
    }
    if (u == v) v = (v + 1) & (nodes - 1);  // drop self-loops
    out.push_back(Edge{u, v});
  }
  return out;
}

Csr::Csr(NodeId nodes, const std::vector<Edge>& edges)
    : nodes_(nodes), offset_(static_cast<std::size_t>(nodes) + 1, 0) {
  for (const auto& e : edges) {
    if (e.src >= nodes || e.dst >= nodes) throw std::out_of_range("Csr: edge endpoint");
    ++offset_[e.src + 1];
  }
  for (std::size_t i = 1; i < offset_.size(); ++i) offset_[i] += offset_[i - 1];
  adj_.resize(edges.size());
  std::vector<std::size_t> cursor(offset_.begin(), offset_.end() - 1);
  for (const auto& e : edges) adj_[cursor[e.src]++] = e.dst;
  // Sort each adjacency list: required by the triangle-counting merge.
  for (NodeId u = 0; u < nodes_; ++u) {
    std::sort(adj_.begin() + static_cast<std::ptrdiff_t>(offset_[u]),
              adj_.begin() + static_cast<std::ptrdiff_t>(offset_[u + 1]));
  }
}

}  // namespace hpbdc::algos
