#pragma once
// Triangle counting on undirected graphs via the degree-ordered forward
// algorithm: orient each edge from the lower-rank endpoint (by degree, id
// tiebreak) to the higher; the triangle count is the number of wedge
// closures, found by intersecting sorted out-neighbour lists. Node-parallel
// over the pool; exact and duplicate-safe (edges are deduped internally).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "algos/graph.hpp"
#include "exec/parallel.hpp"

namespace hpbdc::algos {

inline std::uint64_t count_triangles(Executor& pool, NodeId nodes,
                                     const std::vector<Edge>& edges) {
  // Canonicalize to undirected unique edges (u < v).
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    canon.push_back(e.src < e.dst ? e : Edge{e.dst, e.src});
  }
  std::sort(canon.begin(), canon.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  // Degree-based rank (low-degree first): bounds per-node work.
  std::vector<std::uint32_t> degree(nodes, 0);
  for (const auto& e : canon) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  auto rank_less = [&](NodeId a, NodeId b) {
    return degree[a] != degree[b] ? degree[a] < degree[b] : a < b;
  };

  // Oriented adjacency: edge from the lower-ranked endpoint.
  std::vector<Edge> oriented;
  oriented.reserve(canon.size());
  for (const auto& e : canon) {
    oriented.push_back(rank_less(e.src, e.dst) ? e : Edge{e.dst, e.src});
  }
  Csr csr(nodes, oriented);

  std::atomic<std::uint64_t> total{0};
  parallel_for_blocked(pool, 0, nodes, [&](std::size_t lo, std::size_t hi) {
    std::uint64_t local = 0;
    for (std::size_t u = lo; u < hi; ++u) {
      auto [ub, ue] = csr.neighbours(static_cast<NodeId>(u));
      for (auto p = ub; p != ue; ++p) {
        auto [vb, ve] = csr.neighbours(*p);
        // Sorted-list intersection of N+(u) and N+(v).
        auto i = ub;
        auto j = vb;
        while (i != ue && j != ve) {
          if (*i < *j) ++i;
          else if (*j < *i) ++j;
          else {
            ++local;
            ++i;
            ++j;
          }
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

/// O(n^3)-ish reference for small graphs (adjacency-matrix closure).
inline std::uint64_t count_triangles_reference(NodeId nodes,
                                               const std::vector<Edge>& edges) {
  std::vector<std::vector<bool>> adj(nodes, std::vector<bool>(nodes, false));
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    adj[e.src][e.dst] = adj[e.dst][e.src] = true;
  }
  std::uint64_t count = 0;
  for (NodeId a = 0; a < nodes; ++a) {
    for (NodeId b = a + 1; b < nodes; ++b) {
      if (!adj[a][b]) continue;
      for (NodeId c = b + 1; c < nodes; ++c) {
        if (adj[a][c] && adj[b][c]) ++count;
      }
    }
  }
  return count;
}

}  // namespace hpbdc::algos
