#pragma once
// TeraSort-style distributed sort: fixed-size records with a random binary
// key, globally ordered via the engine's sample-based range partitioning
// (Dataset::sort_by) — the same sampling + range-shuffle + local-sort
// structure as the Hadoop TeraSort that popularized the benchmark.

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dataflow/dataset.hpp"

namespace hpbdc::algos {

struct TeraRecord {
  std::uint64_t key = 0;
  std::array<std::uint8_t, 16> payload{};  // stand-in for the 90-byte body
  bool operator==(const TeraRecord&) const = default;
};

inline std::vector<TeraRecord> generate_tera_records(std::size_t n, Rng& rng) {
  std::vector<TeraRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TeraRecord r;
    r.key = rng();
    for (auto& b : r.payload) b = static_cast<std::uint8_t>(rng());
    out.push_back(r);
  }
  return out;
}

/// Globally sort records by key; collect() on the result is sorted.
inline dataflow::Dataset<TeraRecord> terasort(dataflow::Context& ctx,
                                              std::vector<TeraRecord> records,
                                              std::size_t nparts = 0) {
  auto ds = dataflow::Dataset<TeraRecord>::parallelize(ctx, std::move(records), nparts);
  return ds.sort_by([](const TeraRecord& r) { return r.key; }, nparts);
}

}  // namespace hpbdc::algos
