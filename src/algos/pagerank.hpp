#pragma once
// PageRank two ways (experiment F1):
//  - pagerank_dataflow: the classic join/reduce_by_key formulation on the
//    Dataset API — one shuffle-heavy iteration per superstep, exactly the
//    access pattern big-data frameworks are benchmarked on.
//  - pagerank_serial: single-threaded CSR power iteration, the baseline.
// Dangling-node mass is redistributed uniformly so ranks sum to ~n in both
// implementations and results are comparable.

#include <cstdint>
#include <numeric>
#include <vector>

#include "algos/graph.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::algos {

/// Dataflow PageRank. Returns (node, rank) with sum(rank) ≈ nodes.
inline std::vector<std::pair<NodeId, double>> pagerank_dataflow(
    dataflow::Context& ctx, NodeId nodes, const std::vector<Edge>& edges,
    std::size_t iterations, double damping = 0.85, std::size_t nparts = 0) {
  using dataflow::Dataset;
  if (nparts == 0) nparts = ctx.default_partitions();

  // Adjacency as (src, [dst...]), built once and cached across iterations.
  std::vector<std::pair<NodeId, NodeId>> edge_pairs;
  edge_pairs.reserve(edges.size());
  for (const auto& e : edges) edge_pairs.emplace_back(e.src, e.dst);
  auto links = dataflow::group_by_key(
                   Dataset<std::pair<NodeId, NodeId>>::parallelize(ctx, std::move(edge_pairs),
                                                                   nparts),
                   nparts)
                   .cache();

  std::vector<std::pair<NodeId, double>> init;
  init.reserve(nodes);
  for (NodeId u = 0; u < nodes; ++u) init.emplace_back(u, 1.0);
  auto ranks = Dataset<std::pair<NodeId, double>>::parallelize(ctx, std::move(init), nparts);

  for (std::size_t it = 0; it < iterations; ++it) {
    // contributions: each page splits its rank across its out-links.
    auto joined = dataflow::join(links, ranks, nparts);
    auto contribs = joined.flat_map(
        [](const std::pair<NodeId, std::pair<std::vector<NodeId>, double>>& kv) {
          const auto& dsts = kv.second.first;
          const double share = kv.second.second / static_cast<double>(dsts.size());
          std::vector<std::pair<NodeId, double>> out;
          out.reserve(dsts.size());
          for (NodeId d : dsts) out.emplace_back(d, share);
          return out;
        });
    auto summed = dataflow::reduce_by_key(
        contribs, [](double a, double b) { return a + b; }, nparts);

    // Dangling mass: rank that had no out-links to flow through.
    const double total_contrib = dataflow::values(summed).reduce(
        0.0, [](double a, double b) { return a + b; });
    const double dangling =
        (static_cast<double>(nodes) - total_contrib) / static_cast<double>(nodes);

    // New rank for every node (including those that received nothing).
    auto received = summed.collect();
    std::vector<double> rank_vec(nodes, 0.0);
    for (const auto& [u, r] : received) rank_vec[u] = r;
    std::vector<std::pair<NodeId, double>> next;
    next.reserve(nodes);
    for (NodeId u = 0; u < nodes; ++u) {
      next.emplace_back(u, (1.0 - damping) + damping * (rank_vec[u] + dangling));
    }
    ranks = Dataset<std::pair<NodeId, double>>::parallelize(ctx, std::move(next), nparts);
  }
  auto out = ranks.collect();
  std::sort(out.begin(), out.end());
  return out;
}

/// Serial CSR power iteration with identical semantics.
inline std::vector<double> pagerank_serial(NodeId nodes, const std::vector<Edge>& edges,
                                           std::size_t iterations,
                                           double damping = 0.85) {
  Csr csr(nodes, edges);
  std::vector<double> rank(nodes, 1.0), next(nodes, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId u = 0; u < nodes; ++u) {
      const auto deg = csr.out_degree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(deg);
      auto [lo, hi] = csr.neighbours(u);
      for (auto p = lo; p != hi; ++p) next[*p] += share;
    }
    const double dangling_share = dangling / static_cast<double>(nodes);
    for (NodeId u = 0; u < nodes; ++u) {
      next[u] = (1.0 - damping) + damping * (next[u] + dangling_share);
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace hpbdc::algos
