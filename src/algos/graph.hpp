#pragma once
// Graph workloads and representations: Erdős–Rényi and R-MAT generators
// (deterministic from a seed), plus a CSR build used by the shared-memory
// algorithms (triangle counting) and as the baseline representation for
// PageRank.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hpbdc::algos {

using NodeId = std::uint32_t;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  bool operator==(const Edge&) const = default;
};

/// G(n, m)-style Erdős–Rényi: m directed edges drawn uniformly (self-loops
/// excluded, duplicates possible, as in typical big-data graph inputs).
std::vector<Edge> erdos_renyi(NodeId nodes, std::size_t edges, Rng& rng);

struct RmatConfig {
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
};

/// R-MAT (Chakrabarti et al.): recursive quadrant sampling yields a
/// power-law degree distribution. nodes must be a power of two.
std::vector<Edge> rmat(NodeId nodes, std::size_t edges, Rng& rng, RmatConfig cfg = {});

/// Compressed sparse row adjacency (out-edges).
class Csr {
 public:
  Csr(NodeId nodes, const std::vector<Edge>& edges);

  NodeId nodes() const noexcept { return nodes_; }
  std::size_t edges() const noexcept { return adj_.size(); }

  /// Out-neighbours of u.
  std::pair<const NodeId*, const NodeId*> neighbours(NodeId u) const noexcept {
    return {adj_.data() + offset_[u], adj_.data() + offset_[u + 1]};
  }
  std::size_t out_degree(NodeId u) const noexcept {
    return offset_[u + 1] - offset_[u];
  }

 private:
  NodeId nodes_;
  std::vector<std::size_t> offset_;
  std::vector<NodeId> adj_;
};

}  // namespace hpbdc::algos
