#pragma once
// Single-source shortest paths:
//  - sssp_dataflow: frontier-based Bellman–Ford on the Dataset API — each
//    superstep relaxes the out-edges of nodes whose distance improved, via
//    join + reduce_by_key(min). The BSP formulation used by Pregel-style
//    systems.
//  - sssp_serial: binary-heap Dijkstra baseline (exact, near-linear).
// Weights must be non-negative. Unreachable nodes get infinity.

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "algos/graph.hpp"
#include "common/rng.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::algos {

struct WEdge {
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 1.0;
};

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Random non-negative weights in [lo, hi] on an existing edge list.
inline std::vector<WEdge> with_random_weights(const std::vector<Edge>& edges, Rng& rng,
                                              double lo = 1.0, double hi = 10.0) {
  std::vector<WEdge> out;
  out.reserve(edges.size());
  for (const auto& e : edges) {
    out.push_back(WEdge{e.src, e.dst, lo + (hi - lo) * rng.next_double()});
  }
  return out;
}

/// Frontier Bellman–Ford on the dataflow engine.
inline std::vector<double> sssp_dataflow(dataflow::Context& ctx, NodeId nodes,
                                         const std::vector<WEdge>& edges,
                                         NodeId source) {
  using dataflow::Dataset;
  // Adjacency once: (src, [(dst, w)...]).
  std::vector<std::pair<NodeId, std::pair<NodeId, double>>> adj_pairs;
  adj_pairs.reserve(edges.size());
  for (const auto& e : edges) {
    adj_pairs.emplace_back(e.src, std::make_pair(e.dst, e.weight));
  }
  auto adj = dataflow::group_by_key(
                 Dataset<std::pair<NodeId, std::pair<NodeId, double>>>::parallelize(
                     ctx, std::move(adj_pairs)))
                 .cache();

  std::vector<double> dist(nodes, kUnreachable);
  dist[source] = 0;
  std::vector<NodeId> frontier{source};

  // Each superstep: relax the out-edges of the frontier, keep improvements.
  for (NodeId iter = 0; iter < nodes && !frontier.empty(); ++iter) {
    std::vector<std::pair<NodeId, double>> frontier_dist;
    frontier_dist.reserve(frontier.size());
    for (NodeId u : frontier) frontier_dist.emplace_back(u, dist[u]);
    auto fds = Dataset<std::pair<NodeId, double>>::parallelize(ctx, std::move(frontier_dist));

    auto relax = dataflow::join(adj, fds)
                     .flat_map([](const std::pair<
                                   NodeId, std::pair<std::vector<std::pair<NodeId, double>>,
                                                     double>>& kv) {
                       std::vector<std::pair<NodeId, double>> out;
                       out.reserve(kv.second.first.size());
                       const double base = kv.second.second;
                       for (const auto& [dst, w] : kv.second.first) {
                         out.emplace_back(dst, base + w);
                       }
                       return out;
                     });
    auto best = dataflow::reduce_by_key(
        relax, [](double a, double b) { return a < b ? a : b; });

    frontier.clear();
    for (const auto& [v, d] : best.collect()) {
      if (d < dist[v]) {
        dist[v] = d;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

/// Dijkstra with a binary heap.
inline std::vector<double> sssp_serial(NodeId nodes, const std::vector<WEdge>& edges,
                                       NodeId source) {
  // CSR-ish adjacency with weights.
  std::vector<std::vector<std::pair<NodeId, double>>> adj(nodes);
  for (const auto& e : edges) adj[e.src].emplace_back(e.dst, e.weight);

  std::vector<double> dist(nodes, kUnreachable);
  dist[source] = 0;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const auto& [v, w] : adj[u]) {
      if (d + w < dist[v]) {
        dist[v] = d + w;
        pq.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

}  // namespace hpbdc::algos
