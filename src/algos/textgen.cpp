#include "algos/textgen.hpp"

#include <stdexcept>

namespace hpbdc::algos {

std::string word_for_rank(std::size_t rank) {
  // Bijective base-26 encoding prefixed with 'w': stable, sortable-ish, and
  // collision-free across the whole vocabulary.
  std::string s;
  std::size_t v = rank + 1;
  while (v > 0) {
    --v;
    s.push_back(static_cast<char>('a' + v % 26));
    v /= 26;
  }
  return "w" + s;
}

std::vector<std::string> generate_text(const TextGenConfig& cfg, std::size_t lines,
                                       Rng& rng) {
  if (cfg.vocabulary == 0) throw std::invalid_argument("generate_text: empty vocabulary");
  if (cfg.words_per_line_min == 0 || cfg.words_per_line_min > cfg.words_per_line_max) {
    throw std::invalid_argument("generate_text: bad words_per_line range");
  }
  // Pre-render the dictionary once.
  std::vector<std::string> dict(cfg.vocabulary);
  for (std::size_t i = 0; i < cfg.vocabulary; ++i) dict[i] = word_for_rank(i);

  ZipfGenerator zipf(cfg.vocabulary, cfg.zipf_theta);
  std::vector<std::string> out;
  out.reserve(lines);
  for (std::size_t l = 0; l < lines; ++l) {
    const auto n = static_cast<std::size_t>(rng.next_in(
        static_cast<std::int64_t>(cfg.words_per_line_min),
        static_cast<std::int64_t>(cfg.words_per_line_max)));
    std::string line;
    for (std::size_t w = 0; w < n; ++w) {
      if (w > 0) line.push_back(' ');
      line += dict[zipf.next(rng)];
    }
    out.push_back(std::move(line));
  }
  return out;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace hpbdc::algos
