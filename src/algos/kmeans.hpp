#pragma once
// k-means clustering (Lloyd's algorithm) on the dataflow API, plus a serial
// baseline and a Gaussian-mixture point generator. Each iteration is one
// map (assign to nearest centroid) + one reduce_by_key (per-cluster sums),
// the standard iterative-MapReduce formulation.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::algos {

inline constexpr std::size_t kKmeansDim = 4;
using Point = std::array<double, kKmeansDim>;

inline double sq_dist(const Point& a, const Point& b) noexcept {
  double s = 0;
  for (std::size_t i = 0; i < kKmeansDim; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline std::size_t nearest_centroid(const Point& p, const std::vector<Point>& cs) noexcept {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < cs.size(); ++c) {
    const double d = sq_dist(p, cs[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

/// Points drawn from k spherical Gaussians with well-separated means.
inline std::vector<Point> generate_clustered_points(std::size_t n, std::size_t k,
                                                    Rng& rng, double spread = 0.5) {
  std::vector<Point> centers(k);
  for (std::size_t c = 0; c < k; ++c) {
    for (auto& x : centers[c]) x = rng.next_double() * 100.0;
  }
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // The first k points cover each cluster once, so the common practice of
    // seeding k-means with the first k points is well-posed on this data.
    const auto c = i < k ? i : rng.next_below(k);
    Point p;
    for (std::size_t d = 0; d < kKmeansDim; ++d) {
      p[d] = centers[c][d] + rng.next_gaussian() * spread;
    }
    out.push_back(p);
  }
  return out;
}

struct KmeansResult {
  std::vector<Point> centroids;
  std::size_t iterations = 0;
  double inertia = 0;  // sum of squared distances to assigned centroid
};

/// Dataflow k-means. Initial centroids are the first k points.
inline KmeansResult kmeans_dataflow(dataflow::Context& ctx,
                                    const std::vector<Point>& points, std::size_t k,
                                    std::size_t max_iters, double tol = 1e-6) {
  using dataflow::Dataset;
  struct Acc {
    Point sum{};
    std::uint64_t count = 0;
  };
  auto data = Dataset<Point>::parallelize(ctx, points).cache();
  std::vector<Point> centroids(points.begin(),
                               points.begin() + static_cast<std::ptrdiff_t>(
                                                    std::min(k, points.size())));
  KmeansResult res;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++res.iterations;
    auto assigned = data.map([centroids](const Point& p) {
      Acc a;
      a.sum = p;
      a.count = 1;
      return std::pair<std::size_t, Acc>(nearest_centroid(p, centroids), a);
    });
    auto merged = dataflow::reduce_by_key(assigned, [](Acc a, const Acc& b) {
      for (std::size_t d = 0; d < kKmeansDim; ++d) a.sum[d] += b.sum[d];
      a.count += b.count;
      return a;
    });
    double shift = 0;
    auto next = centroids;
    for (const auto& [c, acc] : merged.collect()) {
      Point mean;
      for (std::size_t d = 0; d < kKmeansDim; ++d) {
        mean[d] = acc.sum[d] / static_cast<double>(acc.count);
      }
      shift += std::sqrt(sq_dist(mean, centroids[c]));
      next[c] = mean;
    }
    centroids = std::move(next);
    if (shift < tol) break;
  }
  res.centroids = centroids;
  res.inertia = data.map([centroids](const Point& p) {
                      return sq_dist(p, centroids[nearest_centroid(p, centroids)]);
                    }).reduce(0.0, [](double a, double b) { return a + b; });
  return res;
}

/// Serial baseline with identical initialization and update rule.
inline KmeansResult kmeans_serial(const std::vector<Point>& points, std::size_t k,
                                  std::size_t max_iters, double tol = 1e-6) {
  std::vector<Point> centroids(points.begin(),
                               points.begin() + static_cast<std::ptrdiff_t>(
                                                    std::min(k, points.size())));
  KmeansResult res;
  for (std::size_t it = 0; it < max_iters; ++it) {
    ++res.iterations;
    std::vector<Point> sum(centroids.size(), Point{});
    std::vector<std::uint64_t> count(centroids.size(), 0);
    for (const auto& p : points) {
      const auto c = nearest_centroid(p, centroids);
      for (std::size_t d = 0; d < kKmeansDim; ++d) sum[c][d] += p[d];
      ++count[c];
    }
    double shift = 0;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (count[c] == 0) continue;
      Point mean;
      for (std::size_t d = 0; d < kKmeansDim; ++d) {
        mean[d] = sum[c][d] / static_cast<double>(count[c]);
      }
      shift += std::sqrt(sq_dist(mean, centroids[c]));
      centroids[c] = mean;
    }
    if (shift < tol) break;
  }
  res.centroids = centroids;
  for (const auto& p : points) {
    res.inertia += sq_dist(p, centroids[nearest_centroid(p, centroids)]);
  }
  return res;
}

}  // namespace hpbdc::algos
