#pragma once
// Connected components on undirected graphs, two ways:
//  - cc_dataflow: label propagation on the Dataset API — every node adopts
//    the smallest label among itself and its neighbours until a fixed point.
//  - cc_serial: union-find baseline (near-linear, exact).
// Both return one label per node; nodes share a label iff connected.

#include <cstdint>
#include <numeric>
#include <vector>

#include "algos/graph.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::algos {

/// Label propagation. Treats edges as undirected. Converges in O(diameter)
/// supersteps, each one shuffle — the standard BSP formulation.
inline std::vector<NodeId> cc_dataflow(dataflow::Context& ctx, NodeId nodes,
                                       const std::vector<Edge>& edges,
                                       std::size_t max_iters = 100) {
  using dataflow::Dataset;
  // Symmetrize once.
  std::vector<std::pair<NodeId, NodeId>> sym;
  sym.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    sym.emplace_back(e.src, e.dst);
    sym.emplace_back(e.dst, e.src);
  }
  auto adj = dataflow::group_by_key(
                 Dataset<std::pair<NodeId, NodeId>>::parallelize(ctx, std::move(sym)))
                 .cache();

  std::vector<NodeId> labels(nodes);
  std::iota(labels.begin(), labels.end(), 0);

  for (std::size_t it = 0; it < max_iters; ++it) {
    // Each node proposes its label to its neighbours; a node keeps the min
    // of its own label and all proposals.
    auto proposals = adj.flat_map(
        [&labels](const std::pair<NodeId, std::vector<NodeId>>& kv) {
          std::vector<std::pair<NodeId, NodeId>> out;
          out.reserve(kv.second.size());
          const NodeId l = labels[kv.first];
          for (NodeId nb : kv.second) out.emplace_back(nb, l);
          return out;
        });
    auto mins = dataflow::reduce_by_key(
        proposals, [](NodeId a, NodeId b) { return a < b ? a : b; });
    bool changed = false;
    for (const auto& [u, l] : mins.collect()) {
      if (l < labels[u]) {
        labels[u] = l;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return labels;
}

/// Union-find with path halving + union by size.
inline std::vector<NodeId> cc_serial(NodeId nodes, const std::vector<Edge>& edges) {
  std::vector<NodeId> parent(nodes);
  std::vector<NodeId> size(nodes, 1);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& e : edges) {
    NodeId a = find(e.src), b = find(e.dst);
    if (a == b) continue;
    if (size[a] < size[b]) std::swap(a, b);
    parent[b] = a;
    size[a] += size[b];
  }
  // Canonical label: the minimum node id in each component.
  std::vector<NodeId> label(nodes);
  std::vector<NodeId> min_of_root(nodes, nodes);
  for (NodeId u = 0; u < nodes; ++u) {
    const NodeId r = find(u);
    min_of_root[r] = std::min(min_of_root[r], u);
  }
  for (NodeId u = 0; u < nodes; ++u) label[u] = min_of_root[find(u)];
  return label;
}

}  // namespace hpbdc::algos
