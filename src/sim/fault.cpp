#include "sim/fault.hpp"

namespace hpbdc::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeKill: return "node_kill";
    case FaultKind::kNodeRecover: return "node_recover";
    case FaultKind::kLossBurstStart: return "loss_burst_start";
    case FaultKind::kLossBurstEnd: return "loss_burst_end";
    case FaultKind::kReorderBurstStart: return "reorder_burst_start";
    case FaultKind::kReorderBurstEnd: return "reorder_burst_end";
    case FaultKind::kDelayBurstStart: return "delay_burst_start";
    case FaultKind::kDelayBurstEnd: return "delay_burst_end";
    case FaultKind::kNodeSlow: return "node_slow";
    case FaultKind::kNodeSpeedRestore: return "node_speed_restore";
    case FaultKind::kDfsReplicaLoss: return "dfs_replica_loss";
    case FaultKind::kDfsShardLossAboveM: return "dfs_shard_loss_above_m";
    case FaultKind::kDfsRepairRace: return "dfs_repair_race";
  }
  return "?";
}

void FaultInjector::fire(const FaultEvent& ev) {
  auto hit = [this, &ev] { fired_[static_cast<std::size_t>(ev.kind)]++; };
  switch (ev.kind) {
    case FaultKind::kNodeKill: {
      if (!targets_.kill_node) return;
      std::size_t node = ev.node;
      if (node == kLeaderTarget) {
        if (!targets_.pick_leader) return;
        const auto l = targets_.pick_leader();
        if (!l) {
          leader_killed_.reset();  // paired recover must also stand down
          return;
        }
        node = *l;
        leader_killed_ = node;
      }
      targets_.kill_node(node);
      hit();
      break;
    }
    case FaultKind::kNodeRecover: {
      if (!targets_.recover_node) return;
      std::size_t node = ev.node;
      if (node == kLeaderTarget) {
        if (!leader_killed_) return;  // the kill never resolved
        node = *leader_killed_;
        leader_killed_.reset();
      }
      targets_.recover_node(node);
      hit();
      break;
    }
    case FaultKind::kLossBurstStart:
      if (targets_.net == nullptr) return;
      targets_.net->set_loss_probability(ev.value);
      hit();
      break;
    case FaultKind::kLossBurstEnd:
      if (targets_.net == nullptr) return;
      targets_.net->set_loss_probability(base_loss_);
      hit();
      break;
    case FaultKind::kReorderBurstStart:
      if (targets_.net == nullptr) return;
      targets_.net->set_delivery_jitter(ev.value);
      hit();
      break;
    case FaultKind::kReorderBurstEnd:
      if (targets_.net == nullptr) return;
      targets_.net->set_delivery_jitter(0);
      hit();
      break;
    case FaultKind::kDelayBurstStart:
      if (targets_.net == nullptr) return;
      targets_.net->set_extra_delay(ev.value);
      hit();
      break;
    case FaultKind::kDelayBurstEnd:
      if (targets_.net == nullptr) return;
      targets_.net->set_extra_delay(0);
      hit();
      break;
    case FaultKind::kNodeSlow:
      if (!targets_.set_node_speed) return;
      targets_.set_node_speed(ev.node, ev.value);
      hit();
      break;
    case FaultKind::kNodeSpeedRestore:
      if (!targets_.set_node_speed) return;
      targets_.set_node_speed(ev.node, 1.0);
      hit();
      break;
    case FaultKind::kDfsReplicaLoss: {
      if (targets_.dfs == nullptr) return;
      const auto files = targets_.dfs->file_names();
      if (files.empty()) return;
      const auto& name = files[rng_.next_below(files.size())];
      const std::size_t nblocks = targets_.dfs->block_count(name);
      if (nblocks == 0) return;
      const std::size_t block = rng_.next_below(nblocks);
      const auto locs = targets_.dfs->block_locations(name, block);
      if (locs.size() <= 1) return;  // never destroy the last copy
      if (targets_.dfs->lose_replica(name, block, rng_.next_below(locs.size()))) {
        hit();
      }
      break;
    }
    case FaultKind::kDfsShardLossAboveM: {
      if (targets_.dfs == nullptr) return;
      const auto files = targets_.dfs->ec_file_names();
      if (files.empty()) return;
      const auto& name = files[rng_.next_below(files.size())];
      const std::size_t nblocks = targets_.dfs->block_count(name);
      if (nblocks == 0) return;
      const std::size_t block = rng_.next_below(nblocks);
      // Drop live slots (random order) until fewer than k survive: one past
      // what RS(k, m) tolerates, so the stripe is genuinely unreadable.
      const auto stripe = targets_.dfs->stripe_locations(name, block);
      const std::size_t k = targets_.dfs->config().ec_data_shards;
      std::vector<std::size_t> live_slots;
      for (std::size_t slot = 0; slot < stripe.size(); ++slot) {
        bool alive = false;
        for (auto n : stripe[slot]) alive = alive || !targets_.dfs->node_down(n);
        if (alive) live_slots.push_back(slot);
      }
      if (live_slots.size() < k) return;  // already below tolerance
      rng_.shuffle(live_slots);
      bool any = false;
      while (live_slots.size() >= k) {
        any = targets_.dfs->lose_shard(name, block, live_slots.back()) || any;
        live_slots.pop_back();
      }
      if (any) hit();
      break;
    }
    case FaultKind::kDfsRepairRace:
      if (targets_.dfs == nullptr) return;
      targets_.dfs->re_replicate([] {});
      hit();
      break;
  }
}

}  // namespace hpbdc::sim
