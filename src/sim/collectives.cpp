#include "sim/collectives.hpp"

#include <cstdint>
#include <vector>

namespace hpbdc::sim {

namespace {

double reduce_delay(std::uint64_t bytes, const CollectiveConfig& cfg) {
  return cfg.reduce_compute_bps > 0
             ? static_cast<double>(bytes) / cfg.reduce_compute_bps
             : 0.0;
}

/// Children of virtual rank v in the binomial tree rooted at 0:
/// { v + 2^k : 2^k > v, v + 2^k < p }.
std::vector<std::size_t> binomial_children(std::size_t v, std::size_t p) {
  std::vector<std::size_t> out;
  for (std::size_t bit = 1; bit < p; bit <<= 1) {
    if (bit > v && v + bit < p) out.push_back(v + bit);
  }
  return out;
}

}  // namespace

void broadcast(Comm& comm, std::size_t root, std::uint64_t bytes, DoneFn done) {
  const std::size_t p = comm.nranks();
  if (p <= 1) {
    comm.simulator().schedule_after(0.0, [done, &comm] { done(comm.simulator().now()); });
    return;
  }
  struct State {
    std::size_t have = 0;
    int tag = 0;
    DoneFn done;
  };
  auto st = std::make_shared<State>();
  st->tag = comm.next_tag();
  st->done = std::move(done);

  auto real = [root, p](std::size_t v) { return (v + root) % p; };

  // on_have(v): rank v now holds the data; forward to its binomial children.
  // A shared callable lets handlers recurse safely after this scope exits.
  auto on_have_ptr = std::make_shared<std::function<void(std::size_t)>>();
  *on_have_ptr = [&comm, st, real, p, bytes, on_have_ptr](std::size_t v) {
    if (++st->have == p) {
      for (std::size_t r = 0; r < p; ++r) comm.clear_handler(r, st->tag);
      st->done(comm.simulator().now());
      return;
    }
    // Largest child first: matches MPI's ordering and pipelines best.
    auto children = binomial_children(v, p);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      comm.send_sized(real(v), real(*it), st->tag, bytes);
    }
  };
  for (std::size_t v = 1; v < p; ++v) {
    comm.set_handler(real(v), st->tag,
                     [on_have_ptr, v](std::size_t, const Bytes&) { (*on_have_ptr)(v); });
  }
  comm.simulator().schedule_after(0.0, [on_have_ptr] { (*on_have_ptr)(0); });
}

void reduce(Comm& comm, std::size_t root, std::uint64_t bytes, DoneFn done,
            CollectiveConfig cfg) {
  const std::size_t p = comm.nranks();
  if (p <= 1) {
    comm.simulator().schedule_after(0.0, [done, &comm] { done(comm.simulator().now()); });
    return;
  }
  struct State {
    std::vector<std::size_t> pending;  // children yet to report, per vrank
    int tag = 0;
    DoneFn done;
  };
  auto st = std::make_shared<State>();
  st->tag = comm.next_tag();
  st->done = std::move(done);
  st->pending.resize(p);
  for (std::size_t v = 0; v < p; ++v) st->pending[v] = binomial_children(v, p).size();

  auto real = [root, p](std::size_t v) { return (v + root) % p; };

  auto send_up = std::make_shared<std::function<void(std::size_t)>>();
  *send_up = [&comm, st, real, bytes, cfg, send_up](std::size_t v) {
    if (v == 0) {
      for (std::size_t r = 0; r < comm.nranks(); ++r) comm.clear_handler(r, st->tag);
      st->done(comm.simulator().now());
      return;
    }
    // Parent of v strips v's highest set bit.
    std::size_t high = 1;
    while ((high << 1) <= v) high <<= 1;
    const std::size_t parent = v - high;
    comm.send_sized(real(v), real(parent), st->tag, bytes);
  };

  for (std::size_t v = 0; v < p; ++v) {
    comm.set_handler(real(v), st->tag,
                     [&comm, st, v, bytes, cfg, send_up](std::size_t, const Bytes&) {
                       if (--st->pending[v] == 0) {
                         const double d = reduce_delay(bytes, cfg);
                         comm.simulator().schedule_after(d, [send_up, v] { (*send_up)(v); });
                       }
                     });
  }
  // Leaves start immediately.
  for (std::size_t v = 0; v < p; ++v) {
    if (st->pending[v] == 0) {
      comm.simulator().schedule_after(reduce_delay(bytes, cfg),
                                      [send_up, v] { (*send_up)(v); });
    }
  }
}

void all_reduce(Comm& comm, std::uint64_t bytes, DoneFn done, CollectiveConfig cfg) {
  const std::size_t p = comm.nranks();
  if (p <= 1) {
    comm.simulator().schedule_after(0.0, [done, &comm] { done(comm.simulator().now()); });
    return;
  }
  // Recursive doubling over the largest power-of-two subgroup; the r extra
  // ranks fold into a partner up front and get the result back at the end.
  std::size_t pow2 = 1;
  while (pow2 * 2 <= p) pow2 *= 2;
  const std::size_t extra = p - pow2;
  std::size_t rounds = 0;
  while ((1ULL << rounds) < pow2) ++rounds;

  struct State {
    int base_tag = 0;
    std::size_t rounds = 0;
    std::size_t done_count = 0;     // active ranks finished all rounds
    std::size_t finished_total = 0; // all p ranks holding the result
    std::vector<std::vector<bool>> received;  // [active_rank][round]
    std::vector<std::vector<bool>> sent;      // [active_rank][round]
    std::vector<std::size_t> at_round;        // per active rank
    DoneFn done;
  };
  auto st = std::make_shared<State>();
  st->base_tag = comm.next_tag();
  // Reserve enough tags for all rounds plus fold-in/fold-out phases.
  for (std::size_t k = 1; k < rounds + 2; ++k) comm.next_tag();
  st->rounds = rounds;
  st->done = std::move(done);
  st->received.assign(pow2, std::vector<bool>(rounds, false));
  st->sent.assign(pow2, std::vector<bool>(rounds, false));
  st->at_round.assign(pow2, 0);

  // Active rank a corresponds to real rank a + extra... mapping: the first
  // `extra` pairs are (2i, 2i+1) with 2i active; ranks >= 2*extra are active
  // as themselves. active_index -> real rank:
  auto active_real = [extra](std::size_t a) {
    return a < extra ? 2 * a : a + extra;
  };

  const int fold_in_tag = st->base_tag + static_cast<int>(rounds);
  const int fold_out_tag = st->base_tag + static_cast<int>(rounds) + 1;

  auto finish_one = std::make_shared<std::function<void()>>();
  *finish_one = [&comm, st, p] {
    if (++st->finished_total == p) {
      st->done(comm.simulator().now());
    }
  };

  auto advance = std::make_shared<std::function<void(std::size_t)>>();
  *advance = [&comm, st, active_real, pow2, bytes, cfg, advance, finish_one,
              fold_out_tag, extra](std::size_t a) {
    const std::size_t k = st->at_round[a];
    if (k == st->rounds) {
      // Finished: hand result back to folded partner if any, count self.
      if (a < extra) {
        comm.send_sized(active_real(a), active_real(a) + 1, fold_out_tag, bytes);
      }
      (*finish_one)();
      return;
    }
    const std::size_t partner = a ^ (1ULL << k);
    (void)pow2;
    st->sent[a][k] = true;
    comm.send_sized(active_real(a), active_real(partner),
                    st->base_tag + static_cast<int>(k), bytes);
    // If the partner's round-k message already arrived, complete the round
    // now; otherwise the receive handler completes it.
    if (st->received[a][k]) {
      st->at_round[a] = k + 1;
      comm.simulator().schedule_after(reduce_delay(bytes, cfg),
                                      [advance, a] { (*advance)(a); });
    }
  };

  // Round-k receive handlers for active ranks.
  for (std::size_t a = 0; a < pow2; ++a) {
    for (std::size_t k = 0; k < rounds; ++k) {
      comm.set_handler(active_real(a), st->base_tag + static_cast<int>(k),
                       [&comm, st, a, k, bytes, cfg, advance](std::size_t, const Bytes&) {
                         st->received[a][k] = true;
                         if (st->at_round[a] == k && st->sent[a][k]) {
                           st->at_round[a] = k + 1;
                           comm.simulator().schedule_after(
                               reduce_delay(bytes, cfg), [advance, a] { (*advance)(a); });
                         }
                       });
    }
  }

  if (extra == 0) {
    for (std::size_t a = 0; a < pow2; ++a) {
      comm.simulator().schedule_after(0.0, [advance, a] { (*advance)(a); });
    }
  } else {
    // Fold-in: odd partner 2a+1 sends to active rank 2a, then waits.
    for (std::size_t a = 0; a < extra; ++a) {
      comm.set_handler(active_real(a), fold_in_tag,
                       [&comm, st, a, bytes, cfg, advance](std::size_t, const Bytes&) {
                         comm.simulator().schedule_after(
                             reduce_delay(bytes, cfg), [advance, a] { (*advance)(a); });
                       });
      comm.set_handler(active_real(a) + 1, fold_out_tag,
                       [finish_one](std::size_t, const Bytes&) { (*finish_one)(); });
      comm.send_sized(active_real(a) + 1, active_real(a), fold_in_tag, bytes);
    }
    for (std::size_t a = extra; a < pow2; ++a) {
      comm.simulator().schedule_after(0.0, [advance, a] { (*advance)(a); });
    }
  }
}

void barrier(Comm& comm, DoneFn done) { all_reduce(comm, 1, std::move(done)); }

void gather(Comm& comm, std::size_t root, std::uint64_t bytes, DoneFn done) {
  const std::size_t p = comm.nranks();
  if (p <= 1) {
    comm.simulator().schedule_after(0.0, [done, &comm] { done(comm.simulator().now()); });
    return;
  }
  struct State {
    std::size_t remaining;
    int tag;
    DoneFn done;
  };
  auto st = std::make_shared<State>();
  st->remaining = p - 1;
  st->tag = comm.next_tag();
  st->done = std::move(done);
  comm.set_handler(root, st->tag, [&comm, st, root](std::size_t, const Bytes&) {
    if (--st->remaining == 0) {
      comm.clear_handler(root, st->tag);
      st->done(comm.simulator().now());
    }
  });
  for (std::size_t r = 0; r < p; ++r) {
    if (r != root) comm.send_sized(r, root, st->tag, bytes);
  }
}

void all_to_all(Comm& comm, std::uint64_t bytes_per_pair, DoneFn done) {
  const std::size_t p = comm.nranks();
  if (p <= 1) {
    comm.simulator().schedule_after(0.0, [done, &comm] { done(comm.simulator().now()); });
    return;
  }
  struct State {
    std::size_t remaining;
    int tag;
    DoneFn done;
  };
  auto st = std::make_shared<State>();
  st->remaining = p * (p - 1);
  st->tag = comm.next_tag();
  st->done = std::move(done);
  for (std::size_t r = 0; r < p; ++r) {
    comm.set_handler(r, st->tag, [&comm, st, p](std::size_t, const Bytes&) {
      if (--st->remaining == 0) {
        for (std::size_t q = 0; q < p; ++q) comm.clear_handler(q, st->tag);
        st->done(comm.simulator().now());
      }
    });
  }
  // Rank r sends to r+1, r+2, ... (rotated order avoids synchronized incast).
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t step = 1; step < p; ++step) {
      comm.send_sized(r, (r + step) % p, st->tag, bytes_per_pair);
    }
  }
}

}  // namespace hpbdc::sim
