#include "sim/dfs.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>

namespace hpbdc::sim {

const char* read_status_name(ReadStatus s) {
  switch (s) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kDegraded: return "degraded";
    case ReadStatus::kNoSuchFile: return "no_such_file";
    case ReadStatus::kUnavailable: return "unavailable";
  }
  return "?";
}

Dfs::Dfs(Comm& comm, DfsConfig cfg)
    : comm_(comm),
      cfg_(cfg),
      ring_(cfg.ring_vnodes == 0 ? 1 : cfg.ring_vnodes),
      rs_(cfg.ec_data_shards, cfg.ec_parity_shards) {
  if (cfg_.replication == 0 || cfg_.replication > comm.nranks()) {
    throw std::invalid_argument("Dfs: bad replication factor");
  }
  if (cfg_.block_size == 0) throw std::invalid_argument("Dfs: zero block size");
  if (cfg_.ec_data_shards == 0 || cfg_.ec_parity_shards == 0) {
    throw std::invalid_argument("Dfs: RS(k, m) needs k >= 1 and m >= 1");
  }
  disks_.assign(comm.nranks(), Disk(cfg_.disk_bandwidth_bps, cfg_.disk_seek));
  down_.assign(comm.nranks(), false);
  for (std::size_t n = 0; n < comm.nranks(); ++n) ring_.add_node(n);
}

std::size_t Dfs::rack_of(std::size_t node) const {
  const auto& nc = comm_.network().config();
  if (nc.topology == Topology::kFatTree) return node / nc.hosts_per_rack;
  return 0;  // flat fabrics: a single logical rack
}

std::uint64_t Dfs::file_size(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) throw std::out_of_range("Dfs: no such file");
  return it->second.size;
}

std::size_t Dfs::block_count(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) throw std::out_of_range("Dfs: no such file");
  return it->second.blocks.size();
}

StoragePolicy Dfs::file_policy(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) throw std::out_of_range("Dfs: no such file");
  return it->second.policy;
}

std::size_t Dfs::live_holder(const std::vector<std::size_t>& holders) const {
  for (auto n : holders) {
    if (!down_[n]) return n;
  }
  return comm_.nranks();  // sentinel: none
}

std::size_t Dfs::live_holder_near(std::size_t client,
                                  const std::vector<std::size_t>& holders) const {
  const std::size_t crack = rack_of(client);
  std::size_t first_live = comm_.nranks();
  for (auto n : holders) {
    if (down_[n]) continue;
    if (rack_of(n) == crack) return n;
    if (first_live == comm_.nranks()) first_live = n;
  }
  return first_live;
}

bool Dfs::block_readable(const Block& b) const {
  if (b.shards.empty()) {
    for (auto r : b.replicas) {
      if (!down_[r]) return true;
    }
    return false;
  }
  std::size_t live = 0;
  for (const auto& holders : b.shards) {
    if (live_holder(holders) != comm_.nranks()) ++live;
  }
  return live >= cfg_.ec_data_shards;
}

bool Dfs::readable(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return false;
  for (const Block& b : it->second.blocks) {
    if (!block_readable(b)) return false;
  }
  return true;
}

void Dfs::set_node_down(std::size_t node, bool down) {
  if (node >= down_.size()) throw std::out_of_range("Dfs: bad node id");
  if (down_[node] == down) return;
  down_[node] = down;
  // The placement ring tracks LIVE membership: crashed nodes take no new
  // shards, and consistent hashing keeps the reshuffle to ~1/n of keys.
  if (down && ring_.contains(node)) {
    ring_.remove_node(node);
  } else if (!down && !ring_.contains(node)) {
    ring_.add_node(node);
  }
  // Both directions are repair triggers: a crash creates missing copies, a
  // recovery can create excess ones (the trim pass).
  arm_auto_repair();
}

bool Dfs::node_down(std::size_t node) const {
  if (node >= down_.size()) throw std::out_of_range("Dfs: bad node id");
  return down_[node];
}

bool Dfs::lose_replica(const std::string& name, std::size_t block,
                       std::size_t replica_idx) {
  auto it = files_.find(name);
  if (it == files_.end() || block >= it->second.blocks.size()) return false;
  auto& b = it->second.blocks[block];
  if (!b.shards.empty()) return false;  // EC stripes lose shards, not replicas
  auto& reps = b.replicas;
  if (reps.size() <= 1 || replica_idx >= reps.size()) return false;
  reps.erase(reps.begin() + static_cast<std::ptrdiff_t>(replica_idx));
  stats_.replicas_lost++;
  arm_auto_repair();
  return true;
}

bool Dfs::lose_shard(const std::string& name, std::size_t block,
                     std::size_t shard_idx) {
  auto it = files_.find(name);
  if (it == files_.end() || block >= it->second.blocks.size()) return false;
  Block& b = it->second.blocks[block];
  if (shard_idx >= b.shards.size() || b.shards[shard_idx].empty()) return false;
  b.shards[shard_idx].clear();
  if (!b.shard_data.empty()) b.shard_data[shard_idx].clear();
  stats_.shards_lost++;
  arm_auto_repair();
  return true;
}

std::vector<std::string> Dfs::file_names() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, f] : files_) out.push_back(name);
  return out;
}

std::vector<std::string> Dfs::ec_file_names() const {
  std::vector<std::string> out;
  for (const auto& [name, f] : files_) {
    if (f.policy == StoragePolicy::kErasureCoded) out.push_back(name);
  }
  return out;
}

std::vector<std::size_t> Dfs::block_locations(const std::string& name,
                                              std::size_t index) const {
  auto it = files_.find(name);
  if (it == files_.end() || index >= it->second.blocks.size()) {
    throw std::out_of_range("Dfs: no such block");
  }
  const Block& b = it->second.blocks[index];
  if (b.shards.empty()) return b.replicas;
  std::vector<std::size_t> out;
  for (const auto& holders : b.shards) {
    for (auto n : holders) {
      if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
    }
  }
  return out;
}

std::vector<std::vector<std::size_t>> Dfs::stripe_locations(
    const std::string& name, std::size_t index) const {
  auto it = files_.find(name);
  if (it == files_.end() || index >= it->second.blocks.size()) {
    throw std::out_of_range("Dfs: no such block");
  }
  return it->second.blocks[index].shards;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

std::vector<std::size_t> Dfs::place_replicas(std::size_t writer) {
  std::vector<std::size_t> live;
  for (std::size_t n = 0; n < comm_.nranks(); ++n) {
    if (!down_[n]) live.push_back(n);
  }
  if (live.size() < cfg_.replication) return {};  // not enough datanodes

  std::vector<std::size_t> out;
  // First replica: the writer if it is a live cluster node, else random.
  const std::size_t first =
      (writer < comm_.nranks() && !down_[writer])
          ? writer
          : live[placement_rng_.next_below(live.size())];
  out.push_back(first);

  if (cfg_.rack_aware &&
      comm_.network().config().topology == Topology::kFatTree) {
    // Remaining replicas together on one remote rack (HDFS policy: survives
    // a rack loss while keeping inter-rack traffic to one hop of the tree).
    std::map<std::size_t, std::vector<std::size_t>> racks;
    for (auto n : live) {
      if (rack_of(n) != rack_of(first)) racks[rack_of(n)].push_back(n);
    }
    std::vector<std::size_t> eligible;
    for (auto& [rack, nodes] : racks) {
      if (nodes.size() >= cfg_.replication - 1) eligible.push_back(rack);
    }
    if (!eligible.empty()) {
      auto& nodes = racks[eligible[placement_rng_.next_below(eligible.size())]];
      placement_rng_.shuffle(nodes);
      for (std::size_t i = 0; i + 1 < cfg_.replication; ++i) out.push_back(nodes[i]);
      return out;
    }
    // Fall through to random placement when no rack can host the remainder.
  }
  // Random distinct live nodes.
  auto pool = live;
  placement_rng_.shuffle(pool);
  for (auto n : pool) {
    if (out.size() == cfg_.replication) break;
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out.size() == cfg_.replication ? out : std::vector<std::size_t>{};
}

std::vector<std::size_t> Dfs::place_shards(
    const std::string& name, std::size_t block, std::size_t count,
    const std::vector<std::size_t>& exclude) {
  const std::string key = name + "#" + std::to_string(block);
  if (test_collapse_ec_placement_) {
    // Planted bug: the whole stripe lands on the ring owner of the key.
    if (ring_.node_count() == 0) return {};
    return std::vector<std::size_t>(count,
                                    static_cast<std::size_t>(ring_.lookup(key)));
  }
  if (ring_.node_count() < exclude.size() + count) return {};

  // Rack-aware anti-affinity: cap shards per rack at ceil(width / racks) so
  // one rack loss never costs more than ~width/racks shards of a stripe.
  const std::size_t width = count + exclude.size();
  std::map<std::size_t, std::size_t> rack_load;
  std::set<std::size_t> live_racks;
  for (std::size_t n = 0; n < comm_.nranks(); ++n) {
    if (!down_[n]) live_racks.insert(rack_of(n));
  }
  const bool cap_racks = cfg_.rack_aware && live_racks.size() > 1;
  const std::size_t cap =
      cap_racks ? (width + live_racks.size() - 1) / live_racks.size() : width;
  for (auto n : exclude) rack_load[rack_of(n)]++;

  std::vector<std::size_t> out;
  auto taken = [&](std::size_t n) {
    return std::find(exclude.begin(), exclude.end(), n) != exclude.end() ||
           std::find(out.begin(), out.end(), n) != out.end();
  };
  ring_.walk(key, [&](std::uint64_t nid) {
    const auto n = static_cast<std::size_t>(nid);
    if (!taken(n) && rack_load[rack_of(n)] < cap) {
      out.push_back(n);
      rack_load[rack_of(n)]++;
    }
    return out.size() < count;
  });
  if (out.size() < count) {
    // Relax the rack cap: anti-affinity per NODE is the hard constraint.
    ring_.walk(key, [&](std::uint64_t nid) {
      const auto n = static_cast<std::size_t>(nid);
      if (!taken(n)) out.push_back(n);
      return out.size() < count;
    });
  }
  return out.size() == count ? out : std::vector<std::size_t>{};
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

void Dfs::write(std::size_t client, const std::string& name, std::uint64_t size,
                StoragePolicy policy, DoneFn cb) {
  Simulator& sim = comm_.simulator();
  if (size == 0 || files_.contains(name)) {
    sim.schedule_after(0.0, [cb] { cb(false); });
    return;
  }
  // Block layout and placement are decided up front (namenode metadata).
  File file;
  file.size = size;
  file.policy = policy;
  const std::size_t k = cfg_.ec_data_shards;
  const std::size_t m = cfg_.ec_parity_shards;
  for (std::uint64_t off = 0; off < size; off += cfg_.block_size) {
    Block b;
    b.size = std::min<std::uint64_t>(cfg_.block_size, size - off);
    if (policy == StoragePolicy::kReplicated) {
      b.replicas = place_replicas(client);
      if (b.replicas.empty()) {
        sim.schedule_after(0.0, [cb] { cb(false); });
        return;
      }
    } else {
      b.shard_size = (b.size + k - 1) / k;
      const auto nodes = place_shards(name, file.blocks.size(), k + m, {});
      if (nodes.empty()) {
        sim.schedule_after(0.0, [cb] { cb(false); });
        return;
      }
      b.shards.reserve(k + m);
      for (auto n : nodes) b.shards.push_back({n});
    }
    file.blocks.push_back(std::move(b));
  }
  files_[name] = std::move(file);
  start_write(client, name, std::move(cb));
}

void Dfs::put(std::size_t client, const std::string& name,
              std::vector<std::uint8_t> content, StoragePolicy policy, DoneFn cb) {
  if (files_.contains(name) || content.empty()) {
    comm_.simulator().schedule_after(0.0, [cb] { cb(false); });
    return;
  }
  const std::uint64_t size = content.size();
  write(client, name, size, policy, std::move(cb));
  auto it = files_.find(name);
  if (it == files_.end()) return;  // write rejected (no placement capacity)
  File& f = it->second;
  f.has_content = true;
  if (policy == StoragePolicy::kReplicated) {
    f.content = std::move(content);
    return;
  }
  // Stripe each block's bytes into k data + m parity shards.
  std::uint64_t off = 0;
  for (Block& b : f.blocks) {
    std::vector<std::uint8_t> blob(content.begin() + static_cast<std::ptrdiff_t>(off),
                                   content.begin() +
                                       static_cast<std::ptrdiff_t>(off + b.size));
    off += b.size;
    b.shard_data = storage::ReedSolomon::split(blob, cfg_.ec_data_shards);
    // split() pads to shard_size; keep metadata and payload widths in sync.
    for (auto& s : b.shard_data) s.resize(b.shard_size, 0);
    const auto parity = rs_.encode(b.shard_data);
    b.shard_data.insert(b.shard_data.end(), parity.begin(), parity.end());
  }
}

void Dfs::start_write(std::size_t client, const std::string& name, DoneFn cb) {
  Network& net = comm_.network();
  const File& f = files_.at(name);
  const auto nblocks = f.blocks.size();
  stats_.bytes_written += f.size;
  stats_.blocks_written += nblocks;
  if (f.policy == StoragePolicy::kErasureCoded) stats_.ec_blocks_written += nblocks;

  struct WriteState {
    std::size_t pending = 0;  // replica/shard outcomes outstanding across blocks
    bool failed = false;      // some block ended below its durability floor
    DoneFn cb;
  };
  auto st = std::make_shared<WriteState>();
  std::size_t outcomes = 0;
  for (const Block& b : f.blocks) {
    outcomes += b.shards.empty() ? b.replicas.size() : b.shards.size();
  }
  st->pending = outcomes;
  st->cb = std::move(cb);

  // Namenode RPC round-trip, then the per-block transfer fan-out.
  net.send(client, cfg_.namenode, cfg_.namenode_rpc_bytes, [this, st, client,
                                                            name] {
    comm_.network().send(cfg_.namenode, client, cfg_.namenode_rpc_bytes, [this,
                                                                          st,
                                                                          client,
                                                                          name] {
      const File& f = files_[name];
      for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
        if (f.blocks[bi].shards.empty()) {
          write_block_replicated(client, name, bi, st);
        } else {
          write_block_ec(client, name, bi, st);
        }
      }
    });
  });
}

template <typename StatePtr>
void Dfs::write_block_replicated(std::size_t client, const std::string& name,
                                 std::size_t bi, StatePtr st) {
  // Pipeline: client -> r0 -> r1 -> ...; each hop stores to disk and
  // forwards. A shared recursive step drives the chain. Nodes that fail
  // before/while the pipeline reaches them are dropped from the block's
  // replica set (the write succeeds under-replicated, exactly like an HDFS
  // pipeline shrinking); a block that loses *every* replica fails the write.
  const File& f = files_.at(name);
  auto replicas = std::make_shared<std::vector<std::size_t>>(f.blocks[bi].replicas);
  const std::uint64_t bytes = f.blocks[bi].size;

  struct BlockProg {
    std::size_t remaining = 0;
    std::size_t written = 0;
  };
  auto bp = std::make_shared<BlockProg>();
  bp->remaining = replicas->size();
  // Every planned replica resolves exactly once: stored, or lost.
  auto resolve = [st, bp](bool stored) {
    if (stored) ++bp->written;
    if (--bp->remaining == 0 && bp->written == 0) st->failed = true;
    if (--st->pending == 0) st->cb(!st->failed);
  };

  auto step = std::make_shared<std::function<void(std::size_t, std::size_t)>>();
  *step = [this, replicas, step, bytes, resolve, name, bi](std::size_t from,
                                                           std::size_t idx) {
    if (idx >= replicas->size()) return;
    const std::size_t target = (*replicas)[idx];
    if (down_[target]) {
      // Dead before the data reached it: skip, forwarding from the
      // same upstream node (pipeline recovery).
      drop_replica(name, bi, target);
      resolve(false);
      (*step)(from, idx + 1);
      return;
    }
    comm_.network().send(
        from, target, bytes,
        [this, replicas, step, bytes, resolve, name, bi, idx, target] {
          if (down_[target]) {
            // Died mid-transfer: its copy and everything downstream
            // of it in the chain are lost.
            for (std::size_t j = idx; j < replicas->size(); ++j) {
              drop_replica(name, bi, (*replicas)[j]);
              resolve(false);
            }
            replicas->resize(idx);
            return;
          }
          disks_[target].access(comm_.simulator(), bytes, [this, bytes, resolve] {
            stats_.bytes_physical += bytes;
            resolve(true);
          });
          (*step)(target, idx + 1);
        });
  };
  (*step)(client, 0);
}

template <typename StatePtr>
void Dfs::write_block_ec(std::size_t client, const std::string& name,
                         std::size_t bi, StatePtr st) {
  // Shards fan out from the writer in parallel (no pipeline: every shard is
  // distinct data). A shard whose target dies before the bytes land is
  // dropped from the stripe; the block is durable iff >= k shards stored.
  const File& f = files_.at(name);
  const Block& b = f.blocks[bi];
  const std::uint64_t sbytes = b.shard_size;
  const std::size_t k = cfg_.ec_data_shards;

  struct BlockProg {
    std::size_t remaining = 0;
    std::size_t written = 0;
  };
  auto bp = std::make_shared<BlockProg>();
  bp->remaining = b.shards.size();
  auto resolve = [this, st, bp, k](bool stored) {
    if (stored) ++bp->written;
    if (--bp->remaining == 0 && bp->written < k) st->failed = true;
    if (--st->pending == 0) st->cb(!st->failed);
  };

  for (std::size_t slot = 0; slot < b.shards.size(); ++slot) {
    const std::size_t target = b.shards[slot][0];
    auto drop = [this, name, bi, slot] {
      auto it = files_.find(name);
      if (it != files_.end() && bi < it->second.blocks.size() &&
          slot < it->second.blocks[bi].shards.size()) {
        it->second.blocks[bi].shards[slot].clear();
      }
    };
    if (down_[target]) {
      drop();
      resolve(false);
      continue;
    }
    comm_.network().send(client, target, sbytes,
                         [this, sbytes, target, resolve, drop] {
                           if (down_[target]) {
                             drop();
                             resolve(false);
                             return;
                           }
                           disks_[target].access(comm_.simulator(), sbytes,
                                                 [this, sbytes, resolve] {
                                                   stats_.bytes_physical += sbytes;
                                                   stats_.shards_written++;
                                                   resolve(true);
                                                 });
                         });
  }
}

void Dfs::drop_replica(const std::string& name, std::size_t block,
                       std::size_t node) {
  auto it = files_.find(name);
  if (it == files_.end() || block >= it->second.blocks.size()) return;
  auto& reps = it->second.blocks[block].replicas;
  reps.erase(std::remove(reps.begin(), reps.end(), node), reps.end());
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

std::size_t Dfs::pick_read_replica(std::size_t client, const Block& b) const {
  std::size_t best = comm_.nranks();  // sentinel: none
  std::size_t best_hops = ~std::size_t{0};
  for (auto r : b.replicas) {
    if (down_[r]) continue;
    const std::size_t hops = comm_.network().hops(client, r);
    if (hops < best_hops) {
      best_hops = hops;
      best = r;
    }
  }
  return best;
}

void Dfs::read(std::size_t client, const std::string& name, DoneFn cb) {
  read_ex(client, name,
          [cb](ReadStatus s, const std::vector<std::uint8_t>&) { cb(read_ok(s)); });
}

void Dfs::read_ex(std::size_t client, const std::string& name, ReadFn cb) {
  Simulator& sim = comm_.simulator();
  Network& net = comm_.network();
  auto it = files_.find(name);
  if (it == files_.end()) {
    stats_.failed_reads++;
    sim.schedule_after(0.0, [cb] { cb(ReadStatus::kNoSuchFile, {}); });
    return;
  }
  const File& f = it->second;

  struct ReadState {
    std::size_t pending = 0;
    bool unavailable = false;
    bool degraded = false;
    std::vector<std::vector<std::uint8_t>> block_bytes;
    ReadFn cb;
  };
  auto st = std::make_shared<ReadState>();
  st->pending = f.blocks.size();
  st->block_bytes.resize(f.blocks.size());
  st->cb = std::move(cb);
  auto finish = [this, st, name] {
    const ReadStatus status = st->unavailable ? ReadStatus::kUnavailable
                              : st->degraded  ? ReadStatus::kDegraded
                                              : ReadStatus::kOk;
    std::vector<std::uint8_t> data;
    if (read_ok(status)) {
      auto fit = files_.find(name);
      if (fit != files_.end() && fit->second.has_content) {
        if (!fit->second.content.empty()) {
          data = fit->second.content;  // replicated content: the single copy
        } else {
          for (auto& bb : st->block_bytes) {
            data.insert(data.end(), bb.begin(), bb.end());
          }
        }
      }
    } else {
      stats_.failed_reads++;
    }
    st->cb(status, data);
  };
  auto done_one = [st, finish](bool ok) {
    if (!ok) st->unavailable = true;
    if (--st->pending == 0) finish();
  };

  net.send(client, cfg_.namenode, cfg_.namenode_rpc_bytes, [this, st, client, name,
                                                            done_one] {
    comm_.network().send(cfg_.namenode, client, cfg_.namenode_rpc_bytes,
                         [this, st, client, name, done_one] {
      auto fit = files_.find(name);
      if (fit == files_.end()) {
        for (std::size_t i = 0; i < st->pending; ++i) done_one(false);
        return;
      }
      for (std::size_t bi = 0; bi < fit->second.blocks.size(); ++bi) {
        const Block& b = fit->second.blocks[bi];
        if (b.shards.empty()) {
          read_block_replicated(client, b, done_one);
        } else {
          read_block_ec(client, name, bi, st, done_one);
        }
      }
    });
  });
}

template <typename DoneOne>
void Dfs::read_block_replicated(std::size_t client, const Block& b,
                                DoneOne done_one) {
  Simulator& sim = comm_.simulator();
  const std::size_t replica = pick_read_replica(client, b);
  if (replica == comm_.nranks()) {
    sim.schedule_after(0.0, [done_one] { done_one(false); });
    return;
  }
  ++stats_.blocks_read;
  stats_.bytes_read += b.size;
  if (replica == client) ++stats_.local_reads;
  const std::uint64_t bytes = b.size;
  // Disk read at the replica, then the network transfer to the client.
  disks_[replica].access(sim, bytes, [this, replica, client, bytes, done_one] {
    comm_.network().send(replica, client, bytes, [done_one] { done_one(true); });
  });
}

template <typename StatePtr, typename DoneOne>
void Dfs::read_block_ec(std::size_t client, const std::string& name,
                        std::size_t bi, StatePtr st, DoneOne done_one) {
  Simulator& sim = comm_.simulator();
  const Block& b = files_.at(name).blocks[bi];
  const std::size_t k = cfg_.ec_data_shards;

  // Locality-aware survivor choice: order live slots same-rack first (slot
  // order within each class, so data still precedes parity among equals)
  // and take the first k. On flat fabrics everything is one rack and this
  // reduces to the historical data-shards-first slot order; on a fat tree a
  // rack-local parity shard beats a data shard across the core — the decode
  // below reconstructs from exactly the fetched shards either way.
  std::vector<std::size_t> live_slots;
  bool degraded = false;  // damage-based: some DATA slot has no live holder
  for (std::size_t slot = 0; slot < b.shards.size(); ++slot) {
    if (live_holder(b.shards[slot]) != comm_.nranks()) {
      live_slots.push_back(slot);
    } else if (slot < k) {
      degraded = true;
    }
  }
  if (live_slots.size() < k) {
    sim.schedule_after(0.0, [done_one] { done_one(false); });
    return;
  }
  const std::size_t crack = rack_of(client);
  std::stable_sort(live_slots.begin(), live_slots.end(),
                   [this, &b, client, crack](std::size_t a, std::size_t c) {
                     const bool ax =
                         rack_of(live_holder_near(client, b.shards[a])) != crack;
                     const bool cx =
                         rack_of(live_holder_near(client, b.shards[c])) != crack;
                     return ax != cx ? !ax : a < c;
                   });
  std::vector<std::size_t> chosen(live_slots.begin(),
                                  live_slots.begin() + static_cast<std::ptrdiff_t>(k));
  ++stats_.blocks_read;
  stats_.bytes_read += b.size;
  if (degraded) {
    ++stats_.degraded_reads;
    st->degraded = true;
  }

  struct BlockRead {
    std::size_t remaining = 0;
  };
  auto br = std::make_shared<BlockRead>();
  br->remaining = chosen.size();
  const std::uint64_t sbytes = b.shard_size;
  auto shard_done = [this, br, st, bi, name, chosen, done_one] {
    if (--br->remaining > 0) return;
    // All k shards at the client: reconstruct content-bearing blocks from
    // exactly the shards that were fetched (never a lost shard's stale
    // bytes) — the bit-identity guarantee degraded-read tests assert.
    auto fit = files_.find(name);
    if (fit != files_.end() && fit->second.has_content) {
      const Block& blk = fit->second.blocks[bi];
      std::vector<std::optional<storage::Shard>> avail(blk.shards.size());
      for (auto slot : chosen) avail[slot] = blk.shard_data[slot];
      const auto data = rs_.decode(avail);
      st->block_bytes[bi] = storage::ReedSolomon::join(data, blk.size);
    }
    done_one(true);
  };
  for (auto slot : chosen) {
    const std::size_t holder = live_holder_near(client, b.shards[slot]);
    if (rack_of(holder) == crack) {
      ++stats_.ec_shard_reads_same_rack;
    } else {
      ++stats_.ec_shard_reads_cross_rack;
    }
    disks_[holder].access(sim, sbytes, [this, holder, client, sbytes, shard_done] {
      if (holder == client) {
        shard_done();  // local shard: no fabric transfer
      } else {
        comm_.network().send(holder, client, sbytes, shard_done);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Repair
// ---------------------------------------------------------------------------

void Dfs::arm_auto_repair() {
  if (cfg_.auto_repair_delay <= 0 || repair_armed_) return;
  repair_armed_ = true;
  comm_.simulator().schedule_after(cfg_.auto_repair_delay, [this] {
    repair_armed_ = false;
    re_replicate([] {});
  });
}

void Dfs::repair_admit(std::uint64_t bytes, std::function<void()> cb) {
  Simulator& sim = comm_.simulator();
  if (cfg_.repair_bandwidth_bps <= 0) {
    cb();
    return;
  }
  const SimTime start = std::max(sim.now(), repair_free_);
  repair_free_ = start + static_cast<double>(bytes) / cfg_.repair_bandwidth_bps;
  if (start <= sim.now()) {
    cb();
  } else {
    sim.schedule_at(start, std::move(cb));
  }
}

void Dfs::re_replicate(std::function<void()> cb) {
  Simulator& sim = comm_.simulator();
  ++stats_.repair_passes;

  struct RepairState {
    std::size_t pending = 0;
    std::function<void()> cb;
  };
  auto st = std::make_shared<RepairState>();
  st->cb = std::move(cb);

  std::vector<std::function<void()>> transfers;
  for (auto& [name, file] : files_) {
    for (std::size_t bi = 0; bi < file.blocks.size(); ++bi) {
      Block& block = file.blocks[bi];
      if (!block.shards.empty()) {
        plan_ec_repair(name, bi, st, transfers);
        continue;
      }
      std::vector<std::size_t> live;
      for (auto r : block.replicas) {
        if (!down_[r]) live.push_back(r);
      }
      if (live.size() > cfg_.replication) {
        // Over-replicated: a failed node was re-replicated around, then
        // recovered with its copy intact. Trim the tail-most live copies
        // (re-replicated ones append at the tail) back down to R; dead
        // entries stay — their nodes may yet come back.
        std::size_t excess = live.size() - cfg_.replication;
        stats_.replicas_trimmed += excess;
        for (std::size_t i = block.replicas.size(); i-- > 0 && excess > 0;) {
          if (!down_[block.replicas[i]]) {
            block.replicas.erase(block.replicas.begin() +
                                 static_cast<std::ptrdiff_t>(i));
            --excess;
          }
        }
        continue;
      }
      if (live.empty() || live.size() == cfg_.replication) continue;
      // Candidates: live nodes not already holding the block.
      std::vector<std::size_t> candidates;
      for (std::size_t n = 0; n < comm_.nranks(); ++n) {
        if (!down_[n] &&
            std::find(block.replicas.begin(), block.replicas.end(), n) ==
                block.replicas.end()) {
          candidates.push_back(n);
        }
      }
      placement_rng_.shuffle(candidates);
      const std::size_t need = cfg_.replication - live.size();
      for (std::size_t i = 0; i < need && i < candidates.size(); ++i) {
        const std::size_t src = live[i % live.size()];
        const std::size_t dst = candidates[i];
        block.replicas.push_back(dst);
        ++stats_.re_replications;
        const std::uint64_t bytes = block.size;
        ++st->pending;
        transfers.push_back([this, src, dst, bytes, st] {
          repair_admit(bytes, [this, src, dst, bytes, st] {
            disks_[src].access(comm_.simulator(), bytes, [this, src, dst, bytes, st] {
              comm_.network().send(src, dst, bytes, [this, dst, bytes, st] {
                disks_[dst].access(comm_.simulator(), bytes, [this, bytes, st] {
                  stats_.bytes_physical += bytes;
                  if (--st->pending == 0) st->cb();
                });
              });
            });
          });
        });
      }
    }
  }
  if (transfers.empty()) {
    sim.schedule_after(0.0, [st] { st->cb(); });
    return;
  }
  for (auto& t : transfers) t();
}

template <typename StatePtr>
void Dfs::plan_ec_repair(const std::string& name, std::size_t bi, StatePtr st,
                         std::vector<std::function<void()>>& transfers) {
  File& file = files_.at(name);
  Block& block = file.blocks[bi];
  const std::size_t k = cfg_.ec_data_shards;

  // Trim over-repaired slots first: a recovered node brought its shard
  // back after repair already re-encoded it elsewhere. Keep the head-most
  // live holder (the original placement), drop the rest.
  for (auto& holders : block.shards) {
    std::size_t live_seen = 0;
    for (std::size_t i = 0; i < holders.size();) {
      if (!down_[holders[i]] && ++live_seen > 1) {
        holders.erase(holders.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.shards_trimmed;
      } else {
        ++i;
      }
    }
  }

  std::vector<std::size_t> lost_slots;     // no live holder
  std::vector<std::size_t> survivor_slots; // >= 1 live holder, slot order
  std::vector<std::size_t> exclude;        // nodes already holding live shards
  for (std::size_t slot = 0; slot < block.shards.size(); ++slot) {
    const std::size_t holder = live_holder(block.shards[slot]);
    if (holder == comm_.nranks()) {
      lost_slots.push_back(slot);
    } else {
      survivor_slots.push_back(slot);
      exclude.push_back(holder);
    }
  }
  if (lost_slots.empty() || survivor_slots.size() < k) return;  // healthy/unrepairable

  const auto targets = place_shards(name, bi, lost_slots.size(), exclude);
  if (targets.empty()) return;  // no anti-affine capacity right now

  // Re-encode lost content shards up front (pure metadata: the new holders
  // are only published when their disk writes land, so a concurrent
  // degraded read still reconstructs from survivors).
  if (file.has_content && !block.shard_data.empty()) {
    std::vector<std::optional<storage::Shard>> avail(block.shards.size());
    for (auto slot : survivor_slots) avail[slot] = block.shard_data[slot];
    const auto data = rs_.decode(avail);
    for (auto slot : lost_slots) {
      if (slot < k) {
        block.shard_data[slot] = data[slot];
      } else {
        block.shard_data[slot] = rs_.encode(data)[slot - k];
      }
    }
  }

  // Repair flow: k survivor shards stream to the first target (the repair
  // worker), which re-encodes and distributes the rebuilt shards.
  const std::uint64_t sbytes = block.shard_size;
  const std::size_t t0 = targets[0];
  struct StripeState {
    std::size_t fetched = 0;
  };
  auto ss = std::make_shared<StripeState>();
  st->pending += lost_slots.size();

  auto distribute = [this, st, name, bi, lost_slots, targets, sbytes, t0] {
    for (std::size_t i = 0; i < lost_slots.size(); ++i) {
      const std::size_t slot = lost_slots[i];
      const std::size_t tgt = targets[i];
      auto store = [this, st, name, bi, slot, tgt, sbytes] {
        disks_[tgt].access(comm_.simulator(), sbytes,
                           [this, st, name, bi, slot, tgt, sbytes] {
          if (!down_[tgt]) {
            auto it = files_.find(name);
            if (it != files_.end() && bi < it->second.blocks.size() &&
                slot < it->second.blocks[bi].shards.size()) {
              it->second.blocks[bi].shards[slot].push_back(tgt);
            }
            ++stats_.shards_repaired;
            stats_.repair_bytes_written += sbytes;
            stats_.bytes_physical += sbytes;
          }
          if (--st->pending == 0) st->cb();
        });
      };
      if (tgt == t0) {
        store();
      } else {
        comm_.network().send(t0, tgt, sbytes, store);
      }
    }
  };

  const std::size_t k_needed = k;
  for (std::size_t i = 0; i < k_needed; ++i) {
    const std::size_t src = exclude[i];  // live holder of survivor_slots[i]
    transfers.push_back([this, src, t0, sbytes, ss, k_needed, distribute] {
      stats_.repair_bytes_read += sbytes;
      repair_admit(sbytes, [this, src, t0, sbytes, ss, k_needed, distribute] {
        Simulator& sim = comm_.simulator();
        disks_[src].access(sim, sbytes, [this, src, t0, sbytes, ss, k_needed,
                                         distribute] {
          auto arrived = [ss, k_needed, distribute] {
            if (++ss->fetched == k_needed) distribute();
          };
          if (src == t0) {
            arrived();
          } else {
            comm_.network().send(src, t0, sbytes, arrived);
          }
        });
      });
    });
  }
}

}  // namespace hpbdc::sim
