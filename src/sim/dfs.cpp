#include "sim/dfs.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace hpbdc::sim {

Dfs::Dfs(Comm& comm, DfsConfig cfg) : comm_(comm), cfg_(cfg) {
  if (cfg_.replication == 0 || cfg_.replication > comm.nranks()) {
    throw std::invalid_argument("Dfs: bad replication factor");
  }
  if (cfg_.block_size == 0) throw std::invalid_argument("Dfs: zero block size");
  disks_.assign(comm.nranks(), Disk(cfg_.disk_bandwidth_bps, cfg_.disk_seek));
  down_.assign(comm.nranks(), false);
}

std::size_t Dfs::rack_of(std::size_t node) const {
  const auto& nc = comm_.network().config();
  if (nc.topology == Topology::kFatTree) return node / nc.hosts_per_rack;
  return 0;  // flat fabrics: a single logical rack
}

std::uint64_t Dfs::file_size(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) throw std::out_of_range("Dfs: no such file");
  return it->second.size;
}

std::size_t Dfs::block_count(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) throw std::out_of_range("Dfs: no such file");
  return it->second.blocks.size();
}

void Dfs::set_node_down(std::size_t node, bool down) {
  if (node >= down_.size()) throw std::out_of_range("Dfs: bad node id");
  down_[node] = down;
}

bool Dfs::node_down(std::size_t node) const {
  if (node >= down_.size()) throw std::out_of_range("Dfs: bad node id");
  return down_[node];
}

bool Dfs::lose_replica(const std::string& name, std::size_t block,
                       std::size_t replica_idx) {
  auto it = files_.find(name);
  if (it == files_.end() || block >= it->second.blocks.size()) return false;
  auto& reps = it->second.blocks[block].replicas;
  if (reps.size() <= 1 || replica_idx >= reps.size()) return false;
  reps.erase(reps.begin() + static_cast<std::ptrdiff_t>(replica_idx));
  stats_.replicas_lost++;
  return true;
}

std::vector<std::string> Dfs::file_names() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, f] : files_) out.push_back(name);
  return out;
}

std::vector<std::size_t> Dfs::block_locations(const std::string& name,
                                              std::size_t index) const {
  auto it = files_.find(name);
  if (it == files_.end() || index >= it->second.blocks.size()) {
    throw std::out_of_range("Dfs: no such block");
  }
  return it->second.blocks[index].replicas;
}

std::vector<std::size_t> Dfs::place_replicas(std::size_t writer) {
  std::vector<std::size_t> live;
  for (std::size_t n = 0; n < comm_.nranks(); ++n) {
    if (!down_[n]) live.push_back(n);
  }
  if (live.size() < cfg_.replication) return {};  // not enough datanodes

  std::vector<std::size_t> out;
  // First replica: the writer if it is a live cluster node, else random.
  const std::size_t first =
      (writer < comm_.nranks() && !down_[writer])
          ? writer
          : live[placement_rng_.next_below(live.size())];
  out.push_back(first);

  if (cfg_.rack_aware &&
      comm_.network().config().topology == Topology::kFatTree) {
    // Remaining replicas together on one remote rack (HDFS policy: survives
    // a rack loss while keeping inter-rack traffic to one hop of the tree).
    std::map<std::size_t, std::vector<std::size_t>> racks;
    for (auto n : live) {
      if (rack_of(n) != rack_of(first)) racks[rack_of(n)].push_back(n);
    }
    std::vector<std::size_t> eligible;
    for (auto& [rack, nodes] : racks) {
      if (nodes.size() >= cfg_.replication - 1) eligible.push_back(rack);
    }
    if (!eligible.empty()) {
      auto& nodes = racks[eligible[placement_rng_.next_below(eligible.size())]];
      placement_rng_.shuffle(nodes);
      for (std::size_t i = 0; i + 1 < cfg_.replication; ++i) out.push_back(nodes[i]);
      return out;
    }
    // Fall through to random placement when no rack can host the remainder.
  }
  // Random distinct live nodes.
  auto pool = live;
  placement_rng_.shuffle(pool);
  for (auto n : pool) {
    if (out.size() == cfg_.replication) break;
    if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
  }
  return out.size() == cfg_.replication ? out : std::vector<std::size_t>{};
}

void Dfs::write(std::size_t client, const std::string& name, std::uint64_t size,
                DoneFn cb) {
  Simulator& sim = comm_.simulator();
  Network& net = comm_.network();
  if (size == 0 || files_.contains(name)) {
    sim.schedule_after(0.0, [cb] { cb(false); });
    return;
  }
  // Block layout and placement are decided up front (namenode metadata).
  File file;
  file.size = size;
  for (std::uint64_t off = 0; off < size; off += cfg_.block_size) {
    Block b;
    b.size = std::min<std::uint64_t>(cfg_.block_size, size - off);
    b.replicas = place_replicas(client);
    if (b.replicas.empty()) {
      sim.schedule_after(0.0, [cb] { cb(false); });
      return;
    }
    file.blocks.push_back(std::move(b));
  }
  const auto nblocks = file.blocks.size();
  files_[name] = file;
  stats_.bytes_written += size;
  stats_.blocks_written += nblocks;

  struct WriteState {
    std::size_t pending = 0;  // replica outcomes outstanding across blocks
    bool failed = false;      // some block ended with zero durable replicas
    DoneFn cb;
  };
  auto st = std::make_shared<WriteState>();
  st->pending = nblocks * cfg_.replication;
  st->cb = std::move(cb);

  // Namenode RPC round-trip, then the per-block replication pipelines.
  net.send(client, cfg_.namenode, cfg_.namenode_rpc_bytes, [this, st, client,
                                                            name] {
    comm_.network().send(cfg_.namenode, client, cfg_.namenode_rpc_bytes, [this,
                                                                          st,
                                                                          client,
                                                                          name] {
      const File& f = files_[name];
      for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
        // Pipeline: client -> r0 -> r1 -> ...; each hop stores to disk and
        // forwards. A shared recursive step drives the chain. Nodes that
        // fail before/while the pipeline reaches them are dropped from the
        // block's replica set (the write succeeds under-replicated, exactly
        // like an HDFS pipeline shrinking); a block that loses *every*
        // replica fails the write.
        auto replicas =
            std::make_shared<std::vector<std::size_t>>(f.blocks[bi].replicas);
        const std::uint64_t bytes = f.blocks[bi].size;

        struct BlockProg {
          std::size_t remaining = 0;
          std::size_t written = 0;
        };
        auto bp = std::make_shared<BlockProg>();
        bp->remaining = replicas->size();
        // Every planned replica resolves exactly once: stored, or lost.
        auto resolve = [st, bp](bool stored) {
          if (stored) ++bp->written;
          if (--bp->remaining == 0 && bp->written == 0) st->failed = true;
          if (--st->pending == 0) st->cb(!st->failed);
        };

        auto step = std::make_shared<std::function<void(std::size_t, std::size_t)>>();
        *step = [this, replicas, step, bytes, resolve, name, bi](std::size_t from,
                                                                 std::size_t idx) {
          if (idx >= replicas->size()) return;
          const std::size_t target = (*replicas)[idx];
          if (down_[target]) {
            // Dead before the data reached it: skip, forwarding from the
            // same upstream node (pipeline recovery).
            drop_replica(name, bi, target);
            resolve(false);
            (*step)(from, idx + 1);
            return;
          }
          comm_.network().send(
              from, target, bytes,
              [this, replicas, step, bytes, resolve, name, bi, idx, target] {
                if (down_[target]) {
                  // Died mid-transfer: its copy and everything downstream
                  // of it in the chain are lost.
                  for (std::size_t j = idx; j < replicas->size(); ++j) {
                    drop_replica(name, bi, (*replicas)[j]);
                    resolve(false);
                  }
                  replicas->resize(idx);
                  return;
                }
                disks_[target].access(comm_.simulator(), bytes,
                                      [resolve] { resolve(true); });
                (*step)(target, idx + 1);
              });
        };
        (*step)(client, 0);
      }
    });
  });
}

void Dfs::drop_replica(const std::string& name, std::size_t block,
                       std::size_t node) {
  auto it = files_.find(name);
  if (it == files_.end() || block >= it->second.blocks.size()) return;
  auto& reps = it->second.blocks[block].replicas;
  reps.erase(std::remove(reps.begin(), reps.end(), node), reps.end());
}

std::size_t Dfs::pick_read_replica(std::size_t client, const Block& b) const {
  std::size_t best = comm_.nranks();  // sentinel: none
  std::size_t best_hops = ~std::size_t{0};
  for (auto r : b.replicas) {
    if (down_[r]) continue;
    const std::size_t hops = comm_.network().hops(client, r);
    if (hops < best_hops) {
      best_hops = hops;
      best = r;
    }
  }
  return best;
}

void Dfs::read(std::size_t client, const std::string& name, DoneFn cb) {
  Simulator& sim = comm_.simulator();
  Network& net = comm_.network();
  auto it = files_.find(name);
  if (it == files_.end()) {
    sim.schedule_after(0.0, [cb] { cb(false); });
    return;
  }
  const File& f = it->second;

  struct ReadState {
    std::size_t pending = 0;
    bool failed = false;
    DoneFn cb;
  };
  auto st = std::make_shared<ReadState>();
  st->pending = f.blocks.size();
  st->cb = std::move(cb);
  auto done_one = [st](bool ok) {
    if (!ok) st->failed = true;
    if (--st->pending == 0) st->cb(!st->failed);
  };

  net.send(client, cfg_.namenode, cfg_.namenode_rpc_bytes, [this, st, client, name,
                                                            done_one, &sim, &net] {
    net.send(cfg_.namenode, client, cfg_.namenode_rpc_bytes, [this, st, client, name,
                                                              done_one, &sim, &net] {
      auto fit = files_.find(name);
      if (fit == files_.end()) {
        for (std::size_t i = 0; i < st->pending; ++i) done_one(false);
        return;
      }
      for (const Block& b : fit->second.blocks) {
        const std::size_t replica = pick_read_replica(client, b);
        if (replica == comm_.nranks()) {
          sim.schedule_after(0.0, [done_one] { done_one(false); });
          continue;
        }
        ++stats_.blocks_read;
        stats_.bytes_read += b.size;
        if (replica == client) ++stats_.local_reads;
        const std::uint64_t bytes = b.size;
        // Disk read at the replica, then the network transfer to the client.
        disks_[replica].access(sim, bytes, [this, replica, client, bytes, done_one,
                                            &net] {
          net.send(replica, client, bytes, [done_one] { done_one(true); });
        });
      }
    });
  });
}

void Dfs::re_replicate(std::function<void()> cb) {
  Simulator& sim = comm_.simulator();
  Network& net = comm_.network();

  struct RepairState {
    std::size_t pending = 0;
    std::function<void()> cb;
  };
  auto st = std::make_shared<RepairState>();
  st->cb = std::move(cb);

  std::vector<std::function<void()>> transfers;
  for (auto& [name, file] : files_) {
    for (auto& block : file.blocks) {
      std::vector<std::size_t> live;
      for (auto r : block.replicas) {
        if (!down_[r]) live.push_back(r);
      }
      if (live.size() > cfg_.replication) {
        // Over-replicated: a failed node was re-replicated around, then
        // recovered with its copy intact. Trim the tail-most live copies
        // (re-replicated ones append at the tail) back down to R; dead
        // entries stay — their nodes may yet come back.
        std::size_t excess = live.size() - cfg_.replication;
        stats_.replicas_trimmed += excess;
        for (std::size_t i = block.replicas.size(); i-- > 0 && excess > 0;) {
          if (!down_[block.replicas[i]]) {
            block.replicas.erase(block.replicas.begin() +
                                 static_cast<std::ptrdiff_t>(i));
            --excess;
          }
        }
        continue;
      }
      if (live.empty() || live.size() == cfg_.replication) continue;
      // Candidates: live nodes not already holding the block.
      std::vector<std::size_t> candidates;
      for (std::size_t n = 0; n < comm_.nranks(); ++n) {
        if (!down_[n] &&
            std::find(block.replicas.begin(), block.replicas.end(), n) ==
                block.replicas.end()) {
          candidates.push_back(n);
        }
      }
      placement_rng_.shuffle(candidates);
      const std::size_t need = cfg_.replication - live.size();
      for (std::size_t i = 0; i < need && i < candidates.size(); ++i) {
        const std::size_t src = live[i % live.size()];
        const std::size_t dst = candidates[i];
        block.replicas.push_back(dst);
        ++stats_.re_replications;
        const std::uint64_t bytes = block.size;
        ++st->pending;
        transfers.push_back([this, src, dst, bytes, st, &sim, &net] {
          disks_[src].access(sim, bytes, [this, src, dst, bytes, st, &sim, &net] {
            net.send(src, dst, bytes, [this, dst, bytes, st, &sim] {
              disks_[dst].access(sim, bytes, [st] {
                if (--st->pending == 0) st->cb();
              });
            });
          });
        });
      }
    }
  }
  if (transfers.empty()) {
    sim.schedule_after(0.0, [st] { st->cb(); });
    return;
  }
  for (auto& t : transfers) t();
}

}  // namespace hpbdc::sim
