#pragma once
// Simulated cluster network. Cost model: each node has a full-duplex NIC
// (independent TX and RX serialization at `bandwidth` bytes/s); a message of
// s bytes from a to b occupies a's TX for s/bw, traverses the fabric with a
// topology-dependent propagation latency (hops * per_hop_latency), then
// occupies b's RX for s/bw. NIC occupancy queues FIFO, which reproduces
// endpoint congestion — the dominant contention effect for the workloads we
// model (incast at shuffle reducers, quorum fan-in at KV coordinators).
//
// Topologies differ only in hop count: full mesh (1 hop), star/single switch
// (2 hops), and a three-level fat-tree (2 hops within a rack, 4 within a
// pod, 6 across pods) — the standard k-ary fat-tree path lengths.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::sim {

enum class Topology { kFullMesh, kStar, kFatTree };

struct NetworkConfig {
  std::size_t nodes = 8;
  double bandwidth_bps = 1.25e9;    // bytes/sec (10 Gbit/s)
  double per_hop_latency = 5e-6;    // seconds
  Topology topology = Topology::kStar;
  // Fat-tree shape: nodes per rack and racks per pod (used when kFatTree).
  std::size_t hosts_per_rack = 4;
  std::size_t racks_per_pod = 4;
  // Failure injection: each non-loopback message is silently lost with this
  // probability (sender still pays TX serialization, like a real drop in
  // the fabric). Deterministic given loss_seed.
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 0x10550001;
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;
};

class Network {
 public:
  Network(Simulator& sim, NetworkConfig cfg)
      : sim_(sim),
        cfg_(cfg),
        tx_free_(cfg.nodes, 0.0),
        rx_free_(cfg.nodes, 0.0),
        loss_probability_(cfg.loss_probability),
        loss_rng_(cfg.loss_seed),
        jitter_rng_(cfg.loss_seed ^ 0x4a17e5ULL) {
    if (cfg.nodes == 0) throw std::invalid_argument("Network: zero nodes");
    if (cfg.bandwidth_bps <= 0) throw std::invalid_argument("Network: bad bandwidth");
    if (cfg.loss_probability < 0 || cfg.loss_probability >= 1) {
      throw std::invalid_argument("Network: loss probability in [0, 1)");
    }
  }

  const NetworkConfig& config() const noexcept { return cfg_; }
  std::size_t nodes() const noexcept { return cfg_.nodes; }
  const NetworkStats& stats() const noexcept { return stats_; }

  /// Mirror send/drop/byte counts into a registry (PR-1 obs layer): every
  /// send() also bumps net.msgs_sent / net.bytes_sent, drops bump
  /// net.msgs_dropped. Unbound (the default) costs one nullptr branch.
  void bind_metrics(obs::MetricsRegistry& reg) {
    m_msgs_ = &reg.counter("net.msgs_sent");
    m_bytes_ = &reg.counter("net.bytes_sent");
    m_dropped_ = &reg.counter("net.msgs_dropped");
  }

  // ---- runtime fault injection (driven by sim::FaultInjector) -------------
  // NetworkConfig::loss_probability remains the *base* rate; these setters
  // move the live values mid-run (loss/reorder/delay bursts). The base is
  // restored by the injector at burst end.

  /// Change the live message-loss probability.
  void set_loss_probability(double p) {
    if (p < 0 || p >= 1) {
      throw std::invalid_argument("Network: loss probability in [0, 1)");
    }
    loss_probability_ = p;
  }
  double loss_probability() const noexcept { return loss_probability_; }

  /// Add uniform [0, max_extra) seconds of per-message delivery delay. The
  /// NIC frees at the undelayed time, so a later message can overtake an
  /// earlier one — this is the reorder-burst mechanism.
  void set_delivery_jitter(double max_extra) {
    if (max_extra < 0) throw std::invalid_argument("Network: negative jitter");
    delivery_jitter_ = max_extra;
  }

  /// Add a fixed delay to every delivery (congested-fabric model; stalls
  /// heartbeats and control RPCs without reordering them).
  void set_extra_delay(double d) {
    if (d < 0) throw std::invalid_argument("Network: negative delay");
    extra_delay_ = d;
  }

  /// Number of fabric hops between two nodes under the configured topology.
  std::size_t hops(std::size_t src, std::size_t dst) const {
    if (src == dst) return 0;
    switch (cfg_.topology) {
      case Topology::kFullMesh:
        return 1;
      case Topology::kStar:
        return 2;
      case Topology::kFatTree: {
        const std::size_t rack_a = src / cfg_.hosts_per_rack;
        const std::size_t rack_b = dst / cfg_.hosts_per_rack;
        if (rack_a == rack_b) return 2;
        const std::size_t pod_a = rack_a / cfg_.racks_per_pod;
        const std::size_t pod_b = rack_b / cfg_.racks_per_pod;
        return pod_a == pod_b ? 4 : 6;
      }
    }
    return 2;
  }

  /// Transfer `bytes` from src to dst; `on_delivered` fires at delivery time.
  /// Local (src == dst) transfers cost only a loopback latency.
  void send(std::size_t src, std::size_t dst, std::uint64_t bytes,
            std::function<void()> on_delivered) {
    check(src);
    check(dst);
    stats_.messages++;
    stats_.bytes += bytes;
    if (m_msgs_ != nullptr) {
      m_msgs_->add(1);
      m_bytes_->add(bytes);
    }
    const SimTime now = sim_.now();
    if (src == dst) {
      sim_.schedule_at(now + kLoopbackLatency, std::move(on_delivered));
      return;
    }
    const double ser = static_cast<double>(bytes) / cfg_.bandwidth_bps;
    const SimTime tx_start = std::max(now, tx_free_[src]);
    const SimTime tx_end = tx_start + ser;
    tx_free_[src] = tx_end;
    if (loss_probability_ > 0 && loss_rng_.next_bool(loss_probability_)) {
      ++stats_.dropped;  // lost in the fabric: TX was paid, nothing arrives
      if (m_dropped_ != nullptr) m_dropped_->add(1);
      return;
    }
    const SimTime prop = static_cast<double>(hops(src, dst)) * cfg_.per_hop_latency;
    const SimTime rx_start = std::max(tx_end + prop, rx_free_[dst]);
    const SimTime rx_end = rx_start + ser;
    rx_free_[dst] = rx_end;
    SimTime deliver = rx_end + extra_delay_;
    if (delivery_jitter_ > 0) {
      deliver += jitter_rng_.next_double() * delivery_jitter_;
    }
    sim_.schedule_at(deliver, std::move(on_delivered));
  }

  /// Transfer `bytes` from src to every node in `dsts` as ONE fabric
  /// multicast: the source pays TX serialization once (switch replication —
  /// the whole point over N unicasts), each destination pays its own RX
  /// serialization, and loss/jitter roll per destination on the last hop.
  /// stats_.bytes counts the frame once; per-destination deliveries invoke
  /// on_delivered(dst). A dst equal to src costs only the loopback latency.
  void multicast(std::size_t src, const std::vector<std::size_t>& dsts,
                 std::uint64_t bytes,
                 std::function<void(std::size_t dst)> on_delivered) {
    check(src);
    stats_.messages++;
    stats_.bytes += bytes;
    if (m_msgs_ != nullptr) {
      m_msgs_->add(1);
      m_bytes_->add(bytes);
    }
    const SimTime now = sim_.now();
    const double ser = static_cast<double>(bytes) / cfg_.bandwidth_bps;
    const SimTime tx_start = std::max(now, tx_free_[src]);
    const SimTime tx_end = tx_start + ser;
    tx_free_[src] = tx_end;
    auto shared_cb =
        std::make_shared<std::function<void(std::size_t)>>(std::move(on_delivered));
    for (const std::size_t dst : dsts) {
      check(dst);
      if (dst == src) {
        sim_.schedule_at(now + kLoopbackLatency, [shared_cb, dst] { (*shared_cb)(dst); });
        continue;
      }
      if (loss_probability_ > 0 && loss_rng_.next_bool(loss_probability_)) {
        ++stats_.dropped;  // last-hop loss: this replica never arrives
        if (m_dropped_ != nullptr) m_dropped_->add(1);
        continue;
      }
      const SimTime prop = static_cast<double>(hops(src, dst)) * cfg_.per_hop_latency;
      const SimTime rx_start = std::max(tx_end + prop, rx_free_[dst]);
      const SimTime rx_end = rx_start + ser;
      rx_free_[dst] = rx_end;
      SimTime deliver = rx_end + extra_delay_;
      if (delivery_jitter_ > 0) {
        deliver += jitter_rng_.next_double() * delivery_jitter_;
      }
      sim_.schedule_at(deliver, [shared_cb, dst] { (*shared_cb)(dst); });
    }
  }

  /// Pure cost query (no event scheduled, no NIC state touched): the
  /// uncontended latency of a transfer. Used by analytical baselines.
  double uncontended_latency(std::size_t src, std::size_t dst, std::uint64_t bytes) const {
    if (src == dst) return kLoopbackLatency;
    const double ser = static_cast<double>(bytes) / cfg_.bandwidth_bps;
    return 2 * ser + static_cast<double>(hops(src, dst)) * cfg_.per_hop_latency;
  }

 private:
  static constexpr double kLoopbackLatency = 5e-7;

  void check(std::size_t node) const {
    if (node >= cfg_.nodes) throw std::out_of_range("Network: bad node id");
  }

  Simulator& sim_;
  NetworkConfig cfg_;
  std::vector<SimTime> tx_free_, rx_free_;
  NetworkStats stats_;
  double loss_probability_ = 0.0;  // live value; cfg_ holds the base
  double delivery_jitter_ = 0.0;   // max extra per-message delay (reorder)
  double extra_delay_ = 0.0;       // fixed extra delivery delay
  Rng loss_rng_;
  Rng jitter_rng_;
  obs::Counter* m_msgs_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
};

}  // namespace hpbdc::sim
