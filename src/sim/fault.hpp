#pragma once
// Scriptable fault injection for the simulated cluster. Before this layer,
// every test drove faults ad hoc: Dfs::fail_node here, a hand-rolled
// kill_node_at there, loss probability frozen in NetworkConfig. A FaultPlan
// is instead a declarative, serializable-in-spirit timeline of fault events
// (node kills/recoveries, message-loss and reorder bursts, fixed delivery
// delays that stall heartbeats, per-node slowdowns, DFS replica loss); a
// FaultInjector arms it against a Simulator and dispatches each event to a
// target set of hooks, so the same plan can drive the dist runtime, the Raft
// cluster, or any future subsystem. The chaos harness (src/chaos) generates
// FaultPlans from a seed and shrinks them by masking events; the legacy
// entry points (Dfs::fail_node, NetworkConfig::loss_probability, ...) remain
// as thin wrappers over the same runtime setters.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "sim/dfs.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::sim {

enum class FaultKind : std::uint8_t {
  kNodeKill = 0,       // crash a node (process + its DFS datanode)
  kNodeRecover,        // bring a killed node back
  kLossBurstStart,     // raise network loss probability to `value`
  kLossBurstEnd,       // restore the configured base loss probability
  kReorderBurstStart,  // random per-message delivery jitter up to `value` (s)
  kReorderBurstEnd,
  kDelayBurstStart,    // fixed extra delivery delay of `value` seconds
  kDelayBurstEnd,      //   (stalls heartbeats without reordering)
  kNodeSlow,           // run node at speed factor `value` (straggler)
  kNodeSpeedRestore,   // back to full speed
  kDfsReplicaLoss,     // silently lose one replica of a random DFS block
  kDfsShardLossAboveM, // drop shards of one random EC stripe below k live
  kDfsRepairRace,      // kick an immediate repair pass mid-run
};
inline constexpr std::size_t kFaultKindCount = 13;

const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kNodeKill;
  std::size_t node = 0;  // kill/recover/slow targets; kLeaderTarget resolves late
  double value = 0;      // loss probability / jitter / delay / speed factor
};

/// A timeline of fault events. Build with the fluent helpers; burst helpers
/// append the matching start/end pair. Events need not be time-sorted — the
/// injector schedules each independently — but generators emit them sorted
/// so event indices read chronologically in replay masks.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& kill(SimTime t, std::size_t node) {
    events.push_back({t, FaultKind::kNodeKill, node, 0});
    return *this;
  }
  FaultPlan& recover(SimTime t, std::size_t node) {
    events.push_back({t, FaultKind::kNodeRecover, node, 0});
    return *this;
  }
  FaultPlan& loss_burst(SimTime t0, SimTime t1, double p) {
    events.push_back({t0, FaultKind::kLossBurstStart, 0, p});
    events.push_back({t1, FaultKind::kLossBurstEnd, 0, 0});
    return *this;
  }
  FaultPlan& reorder_burst(SimTime t0, SimTime t1, double jitter) {
    events.push_back({t0, FaultKind::kReorderBurstStart, 0, jitter});
    events.push_back({t1, FaultKind::kReorderBurstEnd, 0, 0});
    return *this;
  }
  FaultPlan& delay_burst(SimTime t0, SimTime t1, double extra) {
    events.push_back({t0, FaultKind::kDelayBurstStart, 0, extra});
    events.push_back({t1, FaultKind::kDelayBurstEnd, 0, 0});
    return *this;
  }
  FaultPlan& slow(SimTime t, std::size_t node, double speed) {
    events.push_back({t, FaultKind::kNodeSlow, node, speed});
    return *this;
  }
  FaultPlan& restore_speed(SimTime t, std::size_t node) {
    events.push_back({t, FaultKind::kNodeSpeedRestore, node, 1.0});
    return *this;
  }
  FaultPlan& dfs_replica_loss(SimTime t) {
    events.push_back({t, FaultKind::kDfsReplicaLoss, 0, 0});
    return *this;
  }
  /// Drop shards of one random EC stripe until fewer than k live shards
  /// remain — past the m-loss tolerance, so reads of it must fail typed
  /// (and the reader must survive via lineage/regeneration, not hang).
  FaultPlan& dfs_shard_loss_above_m(SimTime t) {
    events.push_back({t, FaultKind::kDfsShardLossAboveM, 0, 0});
    return *this;
  }
  /// Fire an unsolicited repair pass, racing background repair against
  /// in-flight reads/writes and any scheduled auto-repair.
  FaultPlan& dfs_repair_race(SimTime t) {
    events.push_back({t, FaultKind::kDfsRepairRace, 0, 0});
    return *this;
  }
};

/// Where fault events land. Every hook is optional: events whose target is
/// unset are silently skipped, so one plan can drive subsystems that only
/// understand a subset of the fault classes.
struct FaultTargets {
  std::function<void(std::size_t)> kill_node;
  std::function<void(std::size_t)> recover_node;
  std::function<void(std::size_t, double)> set_node_speed;
  /// Resolves FaultInjector::kLeaderTarget kill events at fire time (Raft:
  /// "kill whoever currently leads").
  std::function<std::optional<std::size_t>()> pick_leader;
  Network* net = nullptr;  // loss / reorder / delay bursts
  Dfs* dfs = nullptr;      // replica loss
};

class FaultInjector {
 public:
  /// FaultEvent::node value meaning "resolve to the current leader when the
  /// event fires" (requires FaultTargets::pick_leader).
  static constexpr std::size_t kLeaderTarget = ~std::size_t{0};

  FaultInjector(Simulator& sim, FaultTargets targets,
                std::uint64_t seed = 0xFA017u)
      : sim_(sim), targets_(std::move(targets)), rng_(seed) {
    if (targets_.net != nullptr) {
      base_loss_ = targets_.net->config().loss_probability;
    }
  }

  /// Schedule every event of `plan` whose index bit is set in `mask` (bit i
  /// gates events[i]; indices >= 64 are always armed). The mask is the
  /// shrinker's handle: dropping a bit removes exactly one fault event.
  void arm(const FaultPlan& plan, std::uint64_t mask = ~std::uint64_t{0}) {
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      if (i < 64 && (mask & (1ULL << i)) == 0) continue;
      const FaultEvent ev = plan.events[i];
      sim_.schedule_at(std::max(ev.at, sim_.now()),
                       [this, ev] { fire(ev); });
    }
  }

  /// Per-kind count of events that actually took effect (campaign stats:
  /// "distinct fault classes hit").
  const std::array<std::uint64_t, kFaultKindCount>& fired() const noexcept {
    return fired_;
  }
  std::size_t distinct_kinds_fired() const noexcept {
    std::size_t n = 0;
    for (auto c : fired_) n += c > 0 ? 1 : 0;
    return n;
  }

 private:
  void fire(const FaultEvent& ev);

  Simulator& sim_;
  FaultTargets targets_;
  Rng rng_;  // deterministic fire-time choices (DFS replica picks)
  double base_loss_ = 0.0;
  std::optional<std::size_t> leader_killed_;  // pairs leader-kill with recover
  std::array<std::uint64_t, kFaultKindCount> fired_{};
};

}  // namespace hpbdc::sim
