#pragma once
// Distributed file system on the simulated cluster (HDFS-like), the storage
// substrate big-data jobs read from and write to. Every file carries a
// StoragePolicy chosen at write time:
//
//   kReplicated (default, hot data — shuffle spill, job input):
//   * files are split into fixed-size blocks,
//   * each block is replicated R ways with the HDFS rack-aware policy
//     (first replica on the writer when it is a cluster node, the remaining
//     replicas on a single remote rack),
//   * writes stream through a replication pipeline (client -> r1 -> r2 ->
//     r3, store-and-forward) with every replica also paying a disk write,
//   * reads pick the closest live replica (fewest fabric hops) and pay a
//     disk read plus the network transfer.
//
//   kErasureCoded (cold/large durable data — checkpoints, sink output):
//   * each block is striped into RS(k, m) shards (k data + m parity,
//     shard_size = ceil(block/k)) — (k+m)/k storage overhead instead of R,
//   * shards are placed via a consistent-hash ring over the LIVE nodes
//     (storage::HashRing) with anti-affinity: never two shards of a stripe
//     on one node, and a per-rack cap on fat-trees so a rack loss costs at
//     most ~(k+m)/racks shards,
//   * reads prefer the k data shards; when data shards are unavailable they
//     DEGRADE: any k survivors are fetched and the block is reconstructed
//     (storage::ReedSolomon) instead of failing — the typed kUnavailable
//     error fires only below k survivors, never a hang,
//   * repair re-encodes lost shards from k survivors onto fresh
//     anti-affine nodes, charging k reads + per-lost-shard writes of
//     repair traffic, optionally paced by a repair-bandwidth throttle.
//
// re_replicate() is the policy-dispatching repair planner: replicated blocks
// re-copy and trim exactly as before; EC stripes re-encode and trim
// over-repaired shards. With auto_repair_delay set, damage (node failure,
// replica/shard loss) arms a one-shot background repair pass — the
// "namenode repair loop" — which re-arms while damage remains.
//
// Files written through write() are size-only (pure cost model). put() is
// the content-bearing variant: bytes are stored (encoded per-shard for EC
// files) and read_ex() returns them, so tests can assert that degraded
// reads reconstruct bit-identical data. Metadata is held in-process (the
// "namenode"), charged as a small RPC.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/comm.hpp"
#include "sim/network.hpp"
#include "sim/policy.hpp"
#include "sim/simulator.hpp"
#include "storage/hash_ring.hpp"
#include "storage/reed_solomon.hpp"

namespace hpbdc::sim {

/// One storage device: seek latency plus serialized bandwidth. Concurrent
/// requests queue FIFO, like a real spindle/SSD channel.
class Disk {
 public:
  Disk(double bandwidth_bps, double seek_time)
      : bandwidth_bps_(bandwidth_bps), seek_time_(seek_time) {}

  /// Schedule an access of `bytes`; cb fires at completion time.
  void access(Simulator& sim, std::uint64_t bytes, std::function<void()> cb) {
    const SimTime start = std::max(sim.now(), free_);
    const SimTime end = start + seek_time_ + static_cast<double>(bytes) / bandwidth_bps_;
    free_ = end;
    sim.schedule_at(end, std::move(cb));
  }

  SimTime busy_until() const noexcept { return free_; }

 private:
  double bandwidth_bps_;
  double seek_time_;
  SimTime free_ = 0;
};

struct DfsConfig {
  std::size_t replication = 3;
  std::uint64_t block_size = 64ULL << 20;
  bool rack_aware = true;          // HDFS default placement
  double disk_bandwidth_bps = 200e6;
  double disk_seek = 2e-3;
  std::uint64_t namenode_rpc_bytes = 256;
  std::size_t namenode = 0;
  // Erasure-coding profile for kErasureCoded files: RS(k, m).
  std::size_t ec_data_shards = 4;    // k
  std::size_t ec_parity_shards = 2;  // m
  /// Repair pacing: total bytes/s the repair planner may move (0 =
  /// unthrottled). Throttled repair still pays disk + network costs; the
  /// throttle only serializes when transfers START, modelling a namenode
  /// that caps recovery traffic so foreground I/O keeps its share.
  double repair_bandwidth_bps = 0;
  /// Background repair: when > 0, any damage event (node failure, replica
  /// or shard loss) arms a one-shot repair pass this many simulated seconds
  /// later; the pass re-arms itself while damage remains. 0 keeps repair
  /// manual (call re_replicate()).
  double auto_repair_delay = 0;
  std::size_t ring_vnodes = 64;  // consistent-hash ring smoothing
};

/// Typed outcome of read_ex(). kOk and kDegraded both return data (degraded
/// means at least one block had a DATA shard with no live holder, so parity
/// had to stand in; a healthy block served partly from rack-local parity —
/// the locality-aware choice — is still kOk); kNoSuchFile and kUnavailable
/// are errors — kUnavailable fires when some block has no live replica
/// (replicated) or fewer than k live shards (EC).
enum class ReadStatus : std::uint8_t {
  kOk = 0,
  kDegraded,
  kNoSuchFile,
  kUnavailable,
};
const char* read_status_name(ReadStatus s);
inline bool read_ok(ReadStatus s) noexcept {
  return s == ReadStatus::kOk || s == ReadStatus::kDegraded;
}

struct DfsStats {
  std::uint64_t blocks_written = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_written = 0;   // logical (pre-replication/encoding)
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_physical = 0;  // durable bytes on disk (replicas + shards)
  std::uint64_t local_reads = 0;     // served from the client's own node
  std::uint64_t re_replications = 0;
  std::uint64_t replicas_trimmed = 0;  // excess copies dropped after recovery
  std::uint64_t replicas_lost = 0;     // injected single-replica losses
  // Erasure-coded path.
  std::uint64_t ec_blocks_written = 0;
  std::uint64_t shards_written = 0;
  std::uint64_t shards_lost = 0;       // injected shard losses
  std::uint64_t degraded_reads = 0;    // blocks with a lost data shard
  // Locality of EC shard fetches: a fetch is same-rack when the chosen
  // holder shares the client's rack (always true on flat fabrics, where
  // everything is one logical rack). read_block_ec prefers same-rack
  // survivors, so cross_rack counts only shards that HAD to cross the core.
  std::uint64_t ec_shard_reads_same_rack = 0;
  std::uint64_t ec_shard_reads_cross_rack = 0;
  std::uint64_t failed_reads = 0;      // typed kUnavailable/kNoSuchFile reads
  std::uint64_t shards_repaired = 0;
  std::uint64_t shards_trimmed = 0;    // over-repaired copies dropped
  std::uint64_t repair_bytes_read = 0;     // survivor shards fetched by repair
  std::uint64_t repair_bytes_written = 0;  // re-encoded shards written out
  std::uint64_t repair_passes = 0;     // re_replicate() planner invocations
};

class Dfs {
 public:
  using DoneFn = std::function<void(bool ok)>;
  using ReadFn = std::function<void(ReadStatus, const std::vector<std::uint8_t>&)>;

  Dfs(Comm& comm, DfsConfig cfg);

  /// Write a file of `size` bytes from `client` under `policy`. cb(ok)
  /// fires when the last durable byte hits disk: for replicated files when
  /// every block's replication pipeline drains, for EC files when every
  /// stripe holds at least k shards (a stripe ending below k fails the
  /// write, mirroring a pipeline that loses every replica).
  void write(std::size_t client, const std::string& name, std::uint64_t size,
             DoneFn cb) {
    write(client, name, size, StoragePolicy::kReplicated, std::move(cb));
  }
  void write(std::size_t client, const std::string& name, std::uint64_t size,
             StoragePolicy policy, DoneFn cb);

  /// Content-bearing write: same cost model as write(), but the bytes are
  /// stored (per-shard for EC files) and returned by read_ex — the handle
  /// for bit-identity assertions on degraded reads.
  void put(std::size_t client, const std::string& name,
           std::vector<std::uint8_t> content, StoragePolicy policy, DoneFn cb);

  /// Read a whole file back to `client`; ok iff every block had a live
  /// replica (replicated) or at least k live shards (EC; reconstructing
  /// from parity still succeeds, flagged degraded in stats).
  void read(std::size_t client, const std::string& name, DoneFn cb);

  /// Typed read: resolves with a ReadStatus instead of a bool, plus the
  /// stored bytes for content-bearing files (empty for size-only files).
  /// Never hangs: unavailable blocks resolve kUnavailable promptly.
  void read_ex(std::size_t client, const std::string& name, ReadFn cb);

  bool exists(const std::string& name) const { return files_.contains(name); }
  std::uint64_t file_size(const std::string& name) const;
  std::size_t block_count(const std::string& name) const;
  StoragePolicy file_policy(const std::string& name) const;

  /// Whether every block of `name` is currently servable: >= 1 live replica
  /// (replicated) or >= k live shards (EC). The availability predicate the
  /// runtimes consult before trusting a checkpoint.
  bool readable(const std::string& name) const;

  /// Crash / recover a datanode. Crashed nodes serve nothing and leave the
  /// placement ring. Thin wrappers over set_node_down so a sim::FaultPlan
  /// and ad-hoc call sites share one code path.
  void fail_node(std::size_t node) { set_node_down(node, true); }
  void recover_node(std::size_t node) { set_node_down(node, false); }
  void set_node_down(std::size_t node, bool down);
  bool node_down(std::size_t node) const;

  /// Silently lose one replica of a block (disk corruption / lost volume, as
  /// opposed to a whole-node crash). Refuses to destroy the last copy;
  /// returns whether a replica was dropped. re_replicate() restores it.
  bool lose_replica(const std::string& name, std::size_t block,
                    std::size_t replica_idx);

  /// Silently lose shard `shard_idx` of an EC stripe (all its holders).
  /// Unlike lose_replica this WILL take a stripe below k live shards —
  /// the shard-loss-above-m chaos fault depends on it — because EC readers
  /// fail typed rather than silently, and checkpoints regenerate upstream.
  bool lose_shard(const std::string& name, std::size_t block,
                  std::size_t shard_idx);

  /// Names of all stored files (fault injection picks targets from this).
  std::vector<std::string> file_names() const;
  /// Names of erasure-coded files only (shard-fault targets).
  std::vector<std::string> ec_file_names() const;

  /// Policy-dispatching repair planner. Replicated blocks: copy from a
  /// surviving replica to a new node until the factor is restored; trim
  /// over-replication after recoveries. EC stripes: fetch k survivor
  /// shards, re-encode, write lost shards to fresh anti-affine nodes; trim
  /// over-repaired shards. cb fires when all transfers finish (immediately
  /// if nothing is damaged).
  void re_replicate(std::function<void()> cb);

  /// Replica locations of block `index` (replicated files), or the distinct
  /// holder nodes across all shards (EC files) — the locality hint set.
  std::vector<std::size_t> block_locations(const std::string& name,
                                           std::size_t index) const;

  /// EC introspection: holders per shard slot (k data then m parity) of
  /// stripe `index`. A slot's holders are usually one node; transiently
  /// more after an over-repair, empty when the shard is lost.
  std::vector<std::vector<std::size_t>> stripe_locations(const std::string& name,
                                                         std::size_t index) const;

  std::size_t ec_stripe_width() const noexcept {
    return cfg_.ec_data_shards + cfg_.ec_parity_shards;
  }

  const DfsStats& stats() const noexcept { return stats_; }
  const DfsConfig& config() const noexcept { return cfg_; }
  std::size_t rack_of(std::size_t node) const;

  /// Seeded-bug hook for the chaos harness: collapse EC placement onto a
  /// single node (every shard of a stripe on the ring owner), violating
  /// anti-affinity — the planted bug the ec= replay round-trip shrinks to.
  void set_test_collapse_ec_placement(bool on) noexcept {
    test_collapse_ec_placement_ = on;
  }

 private:
  struct Block {
    std::uint64_t size = 0;
    std::vector<std::size_t> replicas;  // kReplicated
    // kErasureCoded: holders per shard slot; slot i < k is data shard i.
    std::vector<std::vector<std::size_t>> shards;
    std::uint64_t shard_size = 0;
    std::vector<storage::Shard> shard_data;  // content files only (k+m slots)
  };
  struct File {
    std::uint64_t size = 0;
    StoragePolicy policy = StoragePolicy::kReplicated;
    bool has_content = false;
    std::vector<std::uint8_t> content;  // replicated content files
    std::vector<Block> blocks;
  };

  std::vector<std::size_t> place_replicas(std::size_t writer);
  /// Choose `count` distinct live nodes for stripe (name, block): ring walk
  /// from the stripe's key, skipping `exclude` (current holders) and capping
  /// per-rack load; the rack cap relaxes when capacity runs short but
  /// node-level anti-affinity never does.
  std::vector<std::size_t> place_shards(const std::string& name, std::size_t block,
                                        std::size_t count,
                                        const std::vector<std::size_t>& exclude);
  std::size_t pick_read_replica(std::size_t client, const Block& b) const;
  void drop_replica(const std::string& name, std::size_t block, std::size_t node);
  bool block_readable(const Block& b) const;
  std::size_t live_holder(const std::vector<std::size_t>& holders) const;
  /// live_holder with locality: the first live holder in the client's rack
  /// when one exists, else the first live holder anywhere.
  std::size_t live_holder_near(std::size_t client,
                               const std::vector<std::size_t>& holders) const;
  void start_write(std::size_t client, const std::string& name, DoneFn cb);
  template <typename StatePtr>
  void write_block_replicated(std::size_t client, const std::string& name,
                              std::size_t bi, StatePtr st);
  template <typename StatePtr>
  void write_block_ec(std::size_t client, const std::string& name,
                      std::size_t bi, StatePtr st);
  template <typename DoneOne>
  void read_block_replicated(std::size_t client, const Block& b, DoneOne done_one);
  template <typename StatePtr, typename DoneOne>
  void read_block_ec(std::size_t client, const std::string& name, std::size_t bi,
                     StatePtr st, DoneOne done_one);
  void arm_auto_repair();
  /// Pace `bytes` through the repair throttle; cb fires when the transfer
  /// may start (immediately when unthrottled).
  void repair_admit(std::uint64_t bytes, std::function<void()> cb);
  template <typename StatePtr>
  void plan_ec_repair(const std::string& name, std::size_t bi, StatePtr st,
                      std::vector<std::function<void()>>& transfers);

  Comm& comm_;
  DfsConfig cfg_;
  std::vector<Disk> disks_;
  std::vector<bool> down_;
  std::map<std::string, File> files_;
  DfsStats stats_;
  Rng placement_rng_{0xDF5u};
  storage::HashRing ring_;
  storage::ReedSolomon rs_;
  SimTime repair_free_ = 0;    // repair-throttle timeline cursor
  bool repair_armed_ = false;  // one-shot auto-repair pending
  bool test_collapse_ec_placement_ = false;
};

}  // namespace hpbdc::sim
