#pragma once
// Distributed file system on the simulated cluster (HDFS-like), the storage
// substrate big-data jobs read from and write to:
//   * files are split into fixed-size blocks,
//   * each block is replicated R ways with the HDFS rack-aware policy
//     (first replica on the writer when it is a cluster node, the remaining
//     replicas on a single remote rack),
//   * writes stream through a replication pipeline (client -> r1 -> r2 ->
//     r3, store-and-forward) with every replica also paying a disk write,
//   * reads pick the closest live replica (fewest fabric hops) and pay a
//     disk read plus the network transfer,
//   * failed nodes drop traffic; re_replicate() restores the replication
//     factor of under-replicated blocks, like the HDFS namenode does.
// Metadata is held in-process (the "namenode"), charged as a small RPC.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/comm.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::sim {

/// One storage device: seek latency plus serialized bandwidth. Concurrent
/// requests queue FIFO, like a real spindle/SSD channel.
class Disk {
 public:
  Disk(double bandwidth_bps, double seek_time)
      : bandwidth_bps_(bandwidth_bps), seek_time_(seek_time) {}

  /// Schedule an access of `bytes`; cb fires at completion time.
  void access(Simulator& sim, std::uint64_t bytes, std::function<void()> cb) {
    const SimTime start = std::max(sim.now(), free_);
    const SimTime end = start + seek_time_ + static_cast<double>(bytes) / bandwidth_bps_;
    free_ = end;
    sim.schedule_at(end, std::move(cb));
  }

  SimTime busy_until() const noexcept { return free_; }

 private:
  double bandwidth_bps_;
  double seek_time_;
  SimTime free_ = 0;
};

struct DfsConfig {
  std::size_t replication = 3;
  std::uint64_t block_size = 64ULL << 20;
  bool rack_aware = true;          // HDFS default placement
  double disk_bandwidth_bps = 200e6;
  double disk_seek = 2e-3;
  std::uint64_t namenode_rpc_bytes = 256;
  std::size_t namenode = 0;
};

struct DfsStats {
  std::uint64_t blocks_written = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_written = 0;   // logical (pre-replication)
  std::uint64_t bytes_read = 0;
  std::uint64_t local_reads = 0;     // served from the client's own node
  std::uint64_t re_replications = 0;
  std::uint64_t replicas_trimmed = 0;  // excess copies dropped after recovery
  std::uint64_t replicas_lost = 0;     // injected single-replica losses
};

class Dfs {
 public:
  using DoneFn = std::function<void(bool ok)>;

  Dfs(Comm& comm, DfsConfig cfg);

  /// Write a file of `size` bytes from `client`. cb(ok) fires when every
  /// block's replication pipeline has fully drained to disk.
  void write(std::size_t client, const std::string& name, std::uint64_t size,
             DoneFn cb);

  /// Read a whole file back to `client`; fails if any block has no live
  /// replica.
  void read(std::size_t client, const std::string& name, DoneFn cb);

  bool exists(const std::string& name) const { return files_.contains(name); }
  std::uint64_t file_size(const std::string& name) const;
  std::size_t block_count(const std::string& name) const;

  /// Crash / recover a datanode. Crashed nodes serve nothing. Thin wrappers
  /// over set_node_down so a sim::FaultPlan and ad-hoc call sites share one
  /// code path.
  void fail_node(std::size_t node) { set_node_down(node, true); }
  void recover_node(std::size_t node) { set_node_down(node, false); }
  void set_node_down(std::size_t node, bool down);
  bool node_down(std::size_t node) const;

  /// Silently lose one replica of a block (disk corruption / lost volume, as
  /// opposed to a whole-node crash). Refuses to destroy the last copy;
  /// returns whether a replica was dropped. re_replicate() restores it.
  bool lose_replica(const std::string& name, std::size_t block,
                    std::size_t replica_idx);

  /// Names of all stored files (fault injection picks targets from this).
  std::vector<std::string> file_names() const;

  /// Restore the replication factor of blocks that lost replicas, copying
  /// from a surviving replica to a new node. cb fires when all transfers
  /// finish (immediately if nothing is under-replicated).
  void re_replicate(std::function<void()> cb);

  /// Replica locations of block `index` of a file (for tests).
  std::vector<std::size_t> block_locations(const std::string& name,
                                           std::size_t index) const;

  const DfsStats& stats() const noexcept { return stats_; }
  std::size_t rack_of(std::size_t node) const;

 private:
  struct Block {
    std::uint64_t size = 0;
    std::vector<std::size_t> replicas;
  };
  struct File {
    std::uint64_t size = 0;
    std::vector<Block> blocks;
  };

  std::vector<std::size_t> place_replicas(std::size_t writer);
  std::size_t pick_read_replica(std::size_t client, const Block& b) const;
  void drop_replica(const std::string& name, std::size_t block, std::size_t node);

  Comm& comm_;
  DfsConfig cfg_;
  std::vector<Disk> disks_;
  std::vector<bool> down_;
  std::map<std::string, File> files_;
  DfsStats stats_;
  Rng placement_rng_{0xDF5u};
};

}  // namespace hpbdc::sim
