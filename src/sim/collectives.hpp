#pragma once
// Collective communication algorithms over the simulated network, mirroring
// the classic MPI implementations:
//   broadcast  — binomial tree, log2(p) rounds
//   reduce     — binomial tree toward the root (same cost shape)
//   all_reduce — recursive doubling, log2(p) rounds of pairwise exchange
//   barrier    — zero-byte all_reduce
//   gather     — direct fan-in to the root
//   all_to_all — p-1 direct pairwise transfers per rank
// Each call runs asynchronously in the simulator and fires `done(t)` with
// the completion time. Payload contents are not interpreted; only sizes
// matter for the cost model (reduction compute time is modelled via a
// per-byte compute rate).

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/comm.hpp"

namespace hpbdc::sim {

using DoneFn = std::function<void(SimTime finish)>;

struct CollectiveConfig {
  /// Bytes/sec a rank can combine during reduction steps (0 = free).
  double reduce_compute_bps = 0.0;
};

/// Binomial-tree broadcast of `bytes` from root to all ranks.
void broadcast(Comm& comm, std::size_t root, std::uint64_t bytes, DoneFn done);

/// Binomial-tree reduction of `bytes` per rank toward root.
void reduce(Comm& comm, std::size_t root, std::uint64_t bytes, DoneFn done,
            CollectiveConfig cfg = {});

/// Recursive-doubling all-reduce; requires nothing of p (non-powers of two
/// are handled with the standard pre/post folding step).
void all_reduce(Comm& comm, std::uint64_t bytes, DoneFn done,
                CollectiveConfig cfg = {});

/// Barrier = 1-byte all-reduce.
void barrier(Comm& comm, DoneFn done);

/// Every rank sends `bytes` directly to root.
void gather(Comm& comm, std::size_t root, std::uint64_t bytes, DoneFn done);

/// Every rank sends `bytes` to every other rank (shuffle traffic pattern).
void all_to_all(Comm& comm, std::uint64_t bytes_per_pair, DoneFn done);

}  // namespace hpbdc::sim
