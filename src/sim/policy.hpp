#pragma once
// Per-file durability policy of the simulated DFS. Kept in its own tiny
// header so lightweight option structs (dist::RuntimeOptions,
// dstream::StreamingOptions) can name the policy without pulling in the full
// Dfs machinery.

#include <cstdint>

namespace hpbdc::sim {

/// How a Dfs file survives node loss:
///   kReplicated   — R full copies through the HDFS-style pipeline (hot
///                   data: shuffle spill, job input),
///   kErasureCoded — RS(k, m) shards placed via the consistent-hash ring
///                   with anti-affinity (cold/large durable data:
///                   checkpoints, sink output). ~(k+m)/k storage overhead
///                   instead of R, at the price of degraded reads and
///                   re-encoding repair when shards are lost.
enum class StoragePolicy : std::uint8_t {
  kReplicated = 0,
  kErasureCoded = 1,
};

inline const char* storage_policy_name(StoragePolicy p) {
  return p == StoragePolicy::kErasureCoded ? "erasure_coded" : "replicated";
}

}  // namespace hpbdc::sim
