#pragma once
// Rank-based message passing over the simulated network — an MPI-flavoured
// layer: each node is a rank, messages carry a tag and opaque payload, and
// each (rank, tag) pair has a registered handler. Collectives and the
// distributed KV store are built on this.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/hash.hpp"
#include "common/serialize.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::sim {

class Comm {
 public:
  /// Handler invoked at the destination rank when a message is delivered.
  using Handler = std::function<void(std::size_t src, const Bytes& payload)>;

  Comm(Simulator& sim, Network& net) : sim_(sim), net_(net) {}

  Simulator& simulator() noexcept { return sim_; }
  Network& network() noexcept { return net_; }
  std::size_t nranks() const noexcept { return net_.nodes(); }

  /// Allocate a tag unique within this Comm (used by collectives so that
  /// concurrent operations never cross-deliver).
  int next_tag() noexcept { return tag_counter_++; }

  /// Register the handler for (rank, tag). Overwrites any previous handler.
  void set_handler(std::size_t rank, int tag, Handler h) {
    handlers_[key(rank, tag)] = std::move(h);
  }

  void clear_handler(std::size_t rank, int tag) { handlers_.erase(key(rank, tag)); }

  /// Send payload from src to dst; delivery invokes the (dst, tag) handler.
  /// The simulated wire size is payload.size() + a fixed header.
  void send(std::size_t src, std::size_t dst, int tag, Bytes payload) {
    send_sized(src, dst, tag, static_cast<std::uint64_t>(payload.size()),
               std::move(payload));
  }

  /// Send with an explicit simulated body size, independent of the actual
  /// payload carried (typically empty). Collectives use this: their cost
  /// model only needs sizes, and allocating real multi-MiB buffers for
  /// thousands of simulated messages would dominate the run.
  void send_sized(std::size_t src, std::size_t dst, int tag, std::uint64_t body_bytes,
                  Bytes payload = {}) {
    const auto wire = body_bytes + kHeaderBytes;
    net_.send(src, dst, wire,
              [this, src, dst, tag, p = std::move(payload)]() mutable {
                auto it = handlers_.find(key(dst, tag));
                if (it == handlers_.end()) {
                  ++dropped_;
                  return;
                }
                // Copy out before invoking: handlers may clear/replace
                // themselves (collectives do on completion), which would
                // otherwise destroy the std::function mid-call.
                Handler h = it->second;
                h(src, p);
              });
  }

  /// Multicast with an explicit simulated body size: one fabric frame from
  /// src fans out to every rank in `dsts` (see Network::multicast), invoking
  /// each destination's (dst, tag) handler with the shared payload. The
  /// push-flow shuffle uses this for broadcast distribution.
  void multicast_sized(std::size_t src, const std::vector<std::size_t>& dsts,
                       int tag, std::uint64_t body_bytes, Bytes payload = {}) {
    const auto wire = body_bytes + kHeaderBytes;
    net_.multicast(src, dsts, wire,
                   [this, src, tag, p = std::move(payload)](std::size_t dst) {
                     auto it = handlers_.find(key(dst, tag));
                     if (it == handlers_.end()) {
                       ++dropped_;
                       return;
                     }
                     Handler h = it->second;
                     h(src, p);
                   });
  }

  /// Messages delivered to a (rank, tag) with no registered handler.
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  static constexpr std::uint64_t kHeaderBytes = 64;

  static std::uint64_t key(std::size_t rank, int tag) noexcept {
    return (static_cast<std::uint64_t>(rank) << 32) |
           static_cast<std::uint32_t>(tag);
  }

  Simulator& sim_;
  Network& net_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
  int tag_counter_ = 1;
  std::uint64_t dropped_ = 0;
};

}  // namespace hpbdc::sim
