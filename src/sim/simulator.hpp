#pragma once
// Discrete-event simulation core. Events are (time, sequence) ordered, so
// simultaneous events fire in schedule order and every run is deterministic.
// Time is double seconds; the simulator makes no reference to wall-clock
// time, so simulated hours execute in milliseconds.

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace hpbdc::sim {

using SimTime = double;

class Simulator {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  /// Schedule fn to run at absolute time t (>= now).
  void schedule_at(SimTime t, Action fn) {
    if (t < now_) throw std::invalid_argument("Simulator: scheduling in the past");
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedule fn to run after the given delay (>= 0).
  void schedule_after(SimTime delay, Action fn) {
    if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains. Returns the final simulated time.
  SimTime run() {
    while (!queue_.empty()) step();
    return now_;
  }

  /// Run until the queue drains or simulated time would exceed `limit`.
  /// Events scheduled past the limit remain queued.
  SimTime run_until(SimTime limit) {
    while (!queue_.empty() && queue_.top().time <= limit) step();
    if (now_ < limit) now_ = limit;
    return now_;
  }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Event& o) const noexcept {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void step() {
    // priority_queue::top returns const&; const_cast is safe because the
    // element is popped immediately and never reordered after the move.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hpbdc::sim
