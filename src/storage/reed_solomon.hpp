#pragma once
// Systematic Reed–Solomon erasure coding RS(k, m): k data shards, m parity
// shards, any k of the k+m suffice to reconstruct. The encoding matrix is
// [ I_k ; C ] with C an m×k Cauchy matrix, whose every square submatrix is
// nonsingular — the standard MDS construction (as in Jerasure). Used for
// experiment T4 and by the block store.

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/gf256.hpp"

namespace hpbdc::storage {

using Shard = std::vector<std::uint8_t>;

class ReedSolomon {
 public:
  /// Requires 1 <= k, 0 <= m, k + m <= 256.
  ReedSolomon(std::size_t k, std::size_t m);

  std::size_t data_shards() const noexcept { return k_; }
  std::size_t parity_shards() const noexcept { return m_; }

  /// Compute m parity shards from k equal-length data shards.
  std::vector<Shard> encode(const std::vector<Shard>& data) const;

  /// Reconstruct the original k data shards from any k survivors.
  /// `shards[i]` is shard i (0..k-1 data, k..k+m-1 parity) or nullopt if
  /// lost. Throws std::invalid_argument if fewer than k survive.
  std::vector<Shard> decode(const std::vector<std::optional<Shard>>& shards) const;

  /// Split a byte blob into k padded data shards (shard_len = ceil(n/k)).
  static std::vector<Shard> split(const std::vector<std::uint8_t>& blob, std::size_t k);

  /// Inverse of split: reassemble the first `original_size` bytes.
  static std::vector<std::uint8_t> join(const std::vector<Shard>& data,
                                        std::size_t original_size);

 private:
  std::size_t k_, m_;
  GFMatrix parity_rows_;  // m x k Cauchy block
};

}  // namespace hpbdc::storage
