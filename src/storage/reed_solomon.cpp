#include "storage/reed_solomon.hpp"

#include <cstring>
#include <stdexcept>

namespace hpbdc::storage {

ReedSolomon::ReedSolomon(std::size_t k, std::size_t m)
    : k_(k), m_(m), parity_rows_(m, k) {
  if (k == 0) throw std::invalid_argument("ReedSolomon: k must be >= 1");
  if (k + m > 256) throw std::invalid_argument("ReedSolomon: k + m must be <= 256");
  // Cauchy block: C[i][j] = 1 / (x_i ^ y_j), x_i = k + i, y_j = j.
  // x and y ranges are disjoint subsets of GF(256), so x_i ^ y_j != 0.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      parity_rows_.at(i, j) =
          GF256::inv(static_cast<std::uint8_t>((k + i) ^ j));
    }
  }
}

std::vector<Shard> ReedSolomon::encode(const std::vector<Shard>& data) const {
  if (data.size() != k_) throw std::invalid_argument("ReedSolomon: need k data shards");
  const std::size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& s : data) {
    if (s.size() != len) throw std::invalid_argument("ReedSolomon: ragged shards");
  }
  std::vector<Shard> parity(m_, Shard(len, 0));
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint8_t c = parity_rows_.at(i, j);
      if (c == 0) continue;
      const auto& src = data[j];
      auto& dst = parity[i];
      for (std::size_t b = 0; b < len; ++b) dst[b] ^= GF256::mul(c, src[b]);
    }
  }
  return parity;
}

std::vector<Shard> ReedSolomon::decode(
    const std::vector<std::optional<Shard>>& shards) const {
  if (shards.size() != k_ + m_) {
    throw std::invalid_argument("ReedSolomon: expected k+m shard slots");
  }
  // Fast path: all data shards intact.
  bool all_data = true;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!shards[i]) {
      all_data = false;
      break;
    }
  }
  if (all_data) {
    std::vector<Shard> out;
    out.reserve(k_);
    for (std::size_t i = 0; i < k_; ++i) out.push_back(*shards[i]);
    return out;
  }
  // Collect the first k survivors and the matching encode-matrix rows.
  std::vector<std::size_t> rows;
  rows.reserve(k_);
  std::size_t len = 0;
  for (std::size_t i = 0; i < k_ + m_ && rows.size() < k_; ++i) {
    if (shards[i]) {
      rows.push_back(i);
      len = shards[i]->size();
    }
  }
  if (rows.size() < k_) {
    throw std::invalid_argument("ReedSolomon: fewer than k shards survive");
  }
  for (std::size_t i : rows) {
    if (shards[i]->size() != len) throw std::invalid_argument("ReedSolomon: ragged shards");
  }
  GFMatrix sub(k_, k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const std::size_t src = rows[r];
    for (std::size_t c = 0; c < k_; ++c) {
      sub.at(r, c) = src < k_ ? static_cast<std::uint8_t>(src == c ? 1 : 0)
                              : parity_rows_.at(src - k_, c);
    }
  }
  const GFMatrix inv = sub.inverse();
  // data[j] = sum_r inv[j][r] * survivor[r]
  std::vector<Shard> out(k_, Shard(len, 0));
  for (std::size_t j = 0; j < k_; ++j) {
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint8_t c = inv.at(j, r);
      if (c == 0) continue;
      const Shard& src = *shards[rows[r]];
      auto& dst = out[j];
      for (std::size_t b = 0; b < len; ++b) dst[b] ^= GF256::mul(c, src[b]);
    }
  }
  return out;
}

std::vector<Shard> ReedSolomon::split(const std::vector<std::uint8_t>& blob,
                                      std::size_t k) {
  if (k == 0) throw std::invalid_argument("ReedSolomon::split: k must be >= 1");
  const std::size_t shard_len = (blob.size() + k - 1) / k;
  std::vector<Shard> out(k, Shard(shard_len, 0));
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t lo = i * shard_len;
    if (lo >= blob.size()) break;
    const std::size_t n = std::min(shard_len, blob.size() - lo);
    std::memcpy(out[i].data(), blob.data() + lo, n);
  }
  return out;
}

std::vector<std::uint8_t> ReedSolomon::join(const std::vector<Shard>& data,
                                            std::size_t original_size) {
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  for (const auto& s : data) {
    for (std::uint8_t b : s) {
      if (out.size() == original_size) return out;
      out.push_back(b);
    }
  }
  if (out.size() != original_size) {
    throw std::invalid_argument("ReedSolomon::join: shards shorter than original_size");
  }
  return out;
}

}  // namespace hpbdc::storage
