#pragma once
// Deduplicating object store: objects are chunked (caller-chosen strategy),
// chunks are fingerprinted, and identical chunks are stored once with
// reference counting. put() returns a recipe from which get() reassembles
// the object bit-exactly. Tracks logical vs physical bytes for dedup-ratio
// experiments (T5).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "storage/chunker.hpp"

namespace hpbdc::storage {

/// Chunk fingerprint: 64-bit content hash + length. The length component
/// turns most hash collisions into mismatches; a production system would
/// use a cryptographic hash instead.
struct Fingerprint {
  std::uint64_t hash = 0;
  std::uint64_t length = 0;
  bool operator==(const Fingerprint&) const = default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const noexcept {
    return static_cast<std::size_t>(hash_combine(f.hash, f.length));
  }
};

struct Recipe {
  std::vector<Fingerprint> chunks;
  std::uint64_t logical_size = 0;
};

struct DedupStats {
  std::uint64_t logical_bytes = 0;   // sum of all object sizes ingested
  std::uint64_t physical_bytes = 0;  // unique chunk bytes stored
  std::uint64_t chunks_seen = 0;
  std::uint64_t chunks_unique = 0;
  double ratio() const noexcept {
    return physical_bytes == 0 ? 1.0
                               : static_cast<double>(logical_bytes) /
                                     static_cast<double>(physical_bytes);
  }
};

class DedupStore {
 public:
  /// Ingest one object using the given chunk boundaries.
  template <typename Chunker>
  Recipe put(std::span<const std::uint8_t> data, const Chunker& chunker) {
    Recipe recipe;
    recipe.logical_size = data.size();
    stats_.logical_bytes += data.size();
    for (const ChunkRef& c : chunker.chunk(data)) {
      const auto* p = data.data() + c.offset;
      Fingerprint fp{hash_bytes(reinterpret_cast<const char*>(p), c.length), c.length};
      ++stats_.chunks_seen;
      auto [it, inserted] = chunks_.try_emplace(fp);
      if (inserted) {
        it->second.bytes.assign(p, p + c.length);
        stats_.physical_bytes += c.length;
        ++stats_.chunks_unique;
      }
      ++it->second.refcount;
      recipe.chunks.push_back(fp);
    }
    return recipe;
  }

  /// Reassemble an object from its recipe.
  std::vector<std::uint8_t> get(const Recipe& recipe) const {
    std::vector<std::uint8_t> out;
    out.reserve(recipe.logical_size);
    for (const auto& fp : recipe.chunks) {
      auto it = chunks_.find(fp);
      if (it == chunks_.end()) throw std::out_of_range("DedupStore: missing chunk");
      out.insert(out.end(), it->second.bytes.begin(), it->second.bytes.end());
    }
    return out;
  }

  /// Drop one reference per chunk of the recipe; frees chunks at zero refs.
  void remove(const Recipe& recipe) {
    for (const auto& fp : recipe.chunks) {
      auto it = chunks_.find(fp);
      if (it == chunks_.end()) throw std::out_of_range("DedupStore: missing chunk");
      if (--it->second.refcount == 0) {
        stats_.physical_bytes -= it->second.bytes.size();
        --stats_.chunks_unique;
        chunks_.erase(it);
      }
    }
  }

  const DedupStats& stats() const noexcept { return stats_; }
  std::size_t unique_chunks() const noexcept { return chunks_.size(); }

 private:
  struct Stored {
    std::vector<std::uint8_t> bytes;
    std::uint64_t refcount = 0;
  };
  std::unordered_map<Fingerprint, Stored, FingerprintHash> chunks_;
  DedupStats stats_;
};

}  // namespace hpbdc::storage
