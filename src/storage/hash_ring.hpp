#pragma once
// Consistent-hash ring with virtual nodes (Karger-style). Keys and nodes
// hash onto a 64-bit ring; a key is owned by the first vnode clockwise.
// lookup_n returns the next n *distinct* physical nodes — the replica set
// used by the KV store. Virtual nodes smooth key distribution: with v
// vnodes per node the load imbalance is O(sqrt(log n / v)).

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace hpbdc::storage {

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes_per_node = 64) : vnodes_(vnodes_per_node) {
    if (vnodes_ == 0) throw std::invalid_argument("HashRing: vnodes must be >= 1");
  }

  void add_node(std::uint64_t node_id) {
    if (!nodes_.insert(node_id).second) {
      throw std::invalid_argument("HashRing: duplicate node");
    }
    for (std::size_t v = 0; v < vnodes_; ++v) {
      ring_.emplace(vnode_hash(node_id, v), node_id);
    }
  }

  void remove_node(std::uint64_t node_id) {
    if (nodes_.erase(node_id) == 0) {
      throw std::invalid_argument("HashRing: unknown node");
    }
    for (std::size_t v = 0; v < vnodes_; ++v) {
      ring_.erase(vnode_hash(node_id, v));
    }
  }

  bool contains(std::uint64_t node_id) const noexcept { return nodes_.contains(node_id); }
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Owner of the given key hash.
  std::uint64_t lookup_hash(std::uint64_t key_hash) const {
    if (ring_.empty()) throw std::logic_error("HashRing: empty ring");
    auto it = ring_.lower_bound(key_hash);
    if (it == ring_.end()) it = ring_.begin();  // wrap
    return it->second;
  }

  std::uint64_t lookup(std::string_view key) const { return lookup_hash(hash_str(key)); }

  /// First n distinct nodes clockwise from the key — the replica set.
  /// n is clamped to the number of physical nodes.
  std::vector<std::uint64_t> lookup_n(std::string_view key, std::size_t n) const {
    if (ring_.empty()) throw std::logic_error("HashRing: empty ring");
    n = std::min(n, nodes_.size());
    std::vector<std::uint64_t> out;
    out.reserve(n);
    auto it = ring_.lower_bound(hash_str(key));
    while (out.size() < n) {
      if (it == ring_.end()) it = ring_.begin();
      if (std::find(out.begin(), out.end(), it->second) == out.end()) {
        out.push_back(it->second);
      }
      ++it;
    }
    return out;
  }

  /// Visit every distinct physical node clockwise from the key's ring
  /// position, in ring order, until `visit` returns false or the ring is
  /// exhausted. The generalization of lookup_n that placement policies with
  /// per-node constraints (e.g. the DFS rack-aware shard anti-affinity)
  /// build on: a caller can skip a node and keep walking.
  template <typename Visitor>
  void walk(std::string_view key, Visitor&& visit) const {
    if (ring_.empty()) throw std::logic_error("HashRing: empty ring");
    auto it = ring_.lower_bound(hash_str(key));
    std::set<std::uint64_t> seen;
    while (seen.size() < nodes_.size()) {
      if (it == ring_.end()) it = ring_.begin();
      if (seen.insert(it->second).second && !visit(it->second)) return;
      ++it;
    }
  }

 private:
  static std::uint64_t vnode_hash(std::uint64_t node_id, std::size_t vnode) {
    return hash_combine(hash_u64(node_id), hash_u64(vnode + 0x5bd1e995));
  }

  std::size_t vnodes_;
  std::map<std::uint64_t, std::uint64_t> ring_;  // position -> node id
  std::set<std::uint64_t> nodes_;
};

}  // namespace hpbdc::storage
