#include "storage/compression.hpp"

#include <cstring>
#include <stdexcept>

namespace hpbdc::storage {

// ---- RLE --------------------------------------------------------------------
// Format: (count: u8 >= 1, byte) pairs.

ByteVec Rle::compress(std::span<const std::uint8_t> in) {
  ByteVec out;
  out.reserve(in.size() / 2 + 8);
  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(in[i]);
    i += run;
  }
  return out;
}

ByteVec Rle::decompress(std::span<const std::uint8_t> in) {
  if (in.size() % 2 != 0) throw std::runtime_error("Rle: truncated input");
  ByteVec out;
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const std::size_t run = in[i];
    if (run == 0) throw std::runtime_error("Rle: zero-length run");
    out.insert(out.end(), run, in[i + 1]);
  }
  return out;
}

// ---- LZSS -------------------------------------------------------------------
// Stream: [flags u8][8 items...] repeated. Flag bit i (LSB first) describes
// item i: 0 = literal byte, 1 = match (offset u16 little-endian, len u8 with
// actual length = len + kMinMatch). Offsets are distances back from the
// current position (1..kWindow). A trailing partial group is allowed.

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1 << kHashBits;
constexpr std::size_t kMaxChain = 32;  // match-finder effort bound

inline std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

ByteVec Lzss::compress(std::span<const std::uint8_t> in) {
  ByteVec out;
  out.reserve(in.size() / 2 + 16);

  // head[h]: most recent position with hash h; prev[i]: previous position
  // with the same hash as i (chained, bounded by kMaxChain probes).
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(in.size(), -1);

  std::size_t flag_pos = 0;  // index of the current flag byte in `out`
  int flag_bit = 8;          // 8 = need a new flag byte

  auto begin_item = [&](bool is_match) {
    if (flag_bit == 8) {
      flag_pos = out.size();
      out.push_back(0);
      flag_bit = 0;
    }
    if (is_match) out[flag_pos] |= static_cast<std::uint8_t>(1u << flag_bit);
    ++flag_bit;
  };

  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= in.size()) {
      const std::uint32_t h = hash4(in.data() + i);
      std::int64_t cand = head[h];
      std::size_t probes = 0;
      const std::size_t max_len = std::min(kMaxMatch, in.size() - i);
      while (cand >= 0 && probes < kMaxChain) {
        const std::size_t dist = i - static_cast<std::size_t>(cand);
        if (dist > kWindow) break;  // chain only gets older
        std::size_t len = 0;
        const std::uint8_t* a = in.data() + i;
        const std::uint8_t* b = in.data() + cand;
        while (len < max_len && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == max_len) break;
        }
        cand = prev[static_cast<std::size_t>(cand)];
        ++probes;
      }
    }

    if (best_len >= kMinMatch) {
      begin_item(true);
      out.push_back(static_cast<std::uint8_t>(best_dist & 0xff));
      out.push_back(static_cast<std::uint8_t>(best_dist >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      // Index every position the match covers so later matches can refer in.
      const std::size_t end = i + best_len;
      for (; i < end; ++i) {
        if (i + 4 <= in.size()) {
          const std::uint32_t h = hash4(in.data() + i);
          prev[i] = head[h];
          head[h] = static_cast<std::int64_t>(i);
        }
      }
    } else {
      begin_item(false);
      out.push_back(in[i]);
      if (i + 4 <= in.size()) {
        const std::uint32_t h = hash4(in.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }
  return out;
}

ByteVec Lzss::decompress(std::span<const std::uint8_t> in) {
  ByteVec out;
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t flags = in[i++];
    for (int bit = 0; bit < 8 && i < in.size(); ++bit) {
      if (flags & (1u << bit)) {
        if (i + 3 > in.size()) throw std::runtime_error("Lzss: truncated match");
        const std::size_t dist = in[i] | (static_cast<std::size_t>(in[i + 1]) << 8);
        const std::size_t len = static_cast<std::size_t>(in[i + 2]) + kMinMatch;
        i += 3;
        if (dist == 0 || dist > out.size()) {
          throw std::runtime_error("Lzss: invalid back-reference");
        }
        // Byte-by-byte copy: overlapping references (dist < len) replicate.
        std::size_t src = out.size() - dist;
        for (std::size_t n = 0; n < len; ++n) out.push_back(out[src + n]);
      } else {
        out.push_back(in[i++]);
      }
    }
  }
  return out;
}

}  // namespace hpbdc::storage
