#pragma once
// Byte-oriented compression codecs for the storage substrate:
//   Rle  — run-length encoding; trivial, wins only on long byte runs.
//   Lzss — LZ77-family codec with a 64 KiB window and a hash-chain match
//          finder (greedy). The format is flag-grouped: every control byte
//          covers 8 items, each item a literal byte or an
//          (offset: u16, length: u8) back-reference of 4..258 bytes.
// Both decompress bit-exactly and reject corrupt input with exceptions.

#include <cstdint>
#include <span>
#include <vector>

namespace hpbdc::storage {

using ByteVec = std::vector<std::uint8_t>;

struct CompressionStats {
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  double ratio() const noexcept {
    return output_bytes == 0 ? 1.0
                             : static_cast<double>(input_bytes) /
                                   static_cast<double>(output_bytes);
  }
};

class Rle {
 public:
  static ByteVec compress(std::span<const std::uint8_t> in);
  static ByteVec decompress(std::span<const std::uint8_t> in);
};

class Lzss {
 public:
  static ByteVec compress(std::span<const std::uint8_t> in);
  static ByteVec decompress(std::span<const std::uint8_t> in);

  // Max distance encodable in the u16 offset field (not 1<<16: a distance
  // of exactly 65536 would wrap to 0 on the wire).
  static constexpr std::size_t kWindow = (1 << 16) - 1;
  static constexpr std::size_t kMinMatch = 4;
  static constexpr std::size_t kMaxMatch = kMinMatch + 254;  // len byte: match-4
};

}  // namespace hpbdc::storage
