#pragma once
// GF(2^8) arithmetic for Reed–Solomon coding, over the AES-standard
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d). Multiplication is
// exp/log table based; tables are built once at static-init time.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace hpbdc::storage {

class GF256 {
 public:
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) noexcept {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  static std::uint8_t div(std::uint8_t a, std::uint8_t b) {
    if (b == 0) throw std::domain_error("GF256: division by zero");
    if (a == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + 255 - t.log[b]];
  }

  static std::uint8_t inv(std::uint8_t a) { return div(1, a); }

  static std::uint8_t add(std::uint8_t a, std::uint8_t b) noexcept {
    return a ^ b;  // characteristic 2
  }

  static std::uint8_t exp(int e) noexcept { return tables().exp[((e % 255) + 255) % 255]; }

 private:
  struct Tables {
    std::array<std::uint8_t, 512> exp{};  // doubled to skip the mod-255
    std::array<int, 256> log{};
    Tables() {
      int x = 1;
      for (int i = 0; i < 255; ++i) {
        exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
        log[static_cast<std::size_t>(x)] = i;
        x <<= 1;
        if (x & 0x100) x ^= 0x11d;
      }
      for (int i = 255; i < 512; ++i) exp[static_cast<std::size_t>(i)] = exp[static_cast<std::size_t>(i - 255)];
      log[0] = 0;  // never consulted: mul/div guard zero operands
    }
  };

  static const Tables& tables() noexcept {
    static const Tables t;
    return t;
  }
};

/// Dense matrix over GF(2^8); just enough linear algebra for RS coding.
class GFMatrix {
 public:
  GFMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  std::uint8_t& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  std::uint8_t at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  static GFMatrix identity(std::size_t n) {
    GFMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
    return m;
  }

  GFMatrix mul(const GFMatrix& o) const {
    if (cols_ != o.rows_) throw std::invalid_argument("GFMatrix: shape mismatch");
    GFMatrix out(rows_, o.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const std::uint8_t a = at(i, k);
        if (a == 0) continue;
        for (std::size_t j = 0; j < o.cols_; ++j) {
          out.at(i, j) ^= GF256::mul(a, o.at(k, j));
        }
      }
    }
    return out;
  }

  /// Gauss–Jordan inverse. Throws std::domain_error if singular.
  GFMatrix inverse() const {
    if (rows_ != cols_) throw std::invalid_argument("GFMatrix: not square");
    const std::size_t n = rows_;
    GFMatrix a(*this);
    GFMatrix inv = identity(n);
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t pivot = col;
      while (pivot < n && a.at(pivot, col) == 0) ++pivot;
      if (pivot == n) throw std::domain_error("GFMatrix: singular");
      if (pivot != col) {
        for (std::size_t j = 0; j < n; ++j) {
          std::swap(a.at(pivot, j), a.at(col, j));
          std::swap(inv.at(pivot, j), inv.at(col, j));
        }
      }
      const std::uint8_t d = GF256::inv(a.at(col, col));
      for (std::size_t j = 0; j < n; ++j) {
        a.at(col, j) = GF256::mul(a.at(col, j), d);
        inv.at(col, j) = GF256::mul(inv.at(col, j), d);
      }
      for (std::size_t r = 0; r < n; ++r) {
        if (r == col) continue;
        const std::uint8_t f = a.at(r, col);
        if (f == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
          a.at(r, j) ^= GF256::mul(f, a.at(col, j));
          inv.at(r, j) ^= GF256::mul(f, inv.at(col, j));
        }
      }
    }
    return inv;
  }

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace hpbdc::storage
