#pragma once
// Two-tier block store: a bounded hot tier (fast, e.g. DRAM/NVMe) backed by
// an unbounded cold tier (e.g. disk/object store). Reads promote to hot;
// writes land hot; the hot tier evicts LRU to cold when over capacity.
// Hit-rate accounting feeds cache-behaviour tests and the log-analytics
// example. Capacity is in bytes, not blocks, since blocks vary in size.

#include <cstdint>
#include <list>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace hpbdc::storage {

struct TierStats {
  std::uint64_t hot_hits = 0;
  std::uint64_t cold_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  double hot_hit_rate() const noexcept {
    const auto total = hot_hits + cold_hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hot_hits) / static_cast<double>(total);
  }
};

class TieredStore {
 public:
  using Block = std::vector<std::uint8_t>;

  explicit TieredStore(std::uint64_t hot_capacity_bytes)
      : hot_capacity_(hot_capacity_bytes) {}

  /// Insert or overwrite. New data always lands in the hot tier.
  void put(const std::string& key, Block data) {
    erase(key);
    hot_bytes_ += data.size();
    lru_.push_front(key);
    hot_[key] = Entry{std::move(data), lru_.begin()};
    evict_if_needed();
  }

  /// Read through both tiers; cold hits are promoted to hot.
  std::optional<Block> get(const std::string& key) {
    if (auto it = hot_.find(key); it != hot_.end()) {
      ++stats_.hot_hits;
      lru_.erase(it->second.lru_pos);
      lru_.push_front(key);
      it->second.lru_pos = lru_.begin();
      return it->second.data;
    }
    if (auto it = cold_.find(key); it != cold_.end()) {
      ++stats_.cold_hits;
      ++stats_.promotions;
      Block data = std::move(it->second);
      cold_.erase(it);
      hot_bytes_ += data.size();
      lru_.push_front(key);
      hot_[key] = Entry{data, lru_.begin()};
      evict_if_needed();
      return data;
    }
    ++stats_.misses;
    return std::nullopt;
  }

  bool erase(const std::string& key) {
    if (auto it = hot_.find(key); it != hot_.end()) {
      hot_bytes_ -= it->second.data.size();
      lru_.erase(it->second.lru_pos);
      hot_.erase(it);
      return true;
    }
    return cold_.erase(key) > 0;
  }

  bool contains(const std::string& key) const {
    return hot_.contains(key) || cold_.contains(key);
  }

  std::uint64_t hot_bytes() const noexcept { return hot_bytes_; }
  std::size_t hot_blocks() const noexcept { return hot_.size(); }
  std::size_t cold_blocks() const noexcept { return cold_.size(); }
  const TierStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    Block data;
    std::list<std::string>::iterator lru_pos;
  };

  void evict_if_needed() {
    while (hot_bytes_ > hot_capacity_ && hot_.size() > 1) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      auto it = hot_.find(victim);
      hot_bytes_ -= it->second.data.size();
      cold_[victim] = std::move(it->second.data);
      hot_.erase(it);
      ++stats_.demotions;
    }
  }

  std::uint64_t hot_capacity_;
  std::uint64_t hot_bytes_ = 0;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> hot_;
  std::unordered_map<std::string, Block> cold_;
  TierStats stats_;
};

}  // namespace hpbdc::storage
