#include "storage/chunker.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace hpbdc::storage {

std::vector<ChunkRef> FixedChunker::chunk(std::span<const std::uint8_t> data) const {
  std::vector<ChunkRef> out;
  out.reserve(data.size() / size_ + 1);
  for (std::size_t off = 0; off < data.size(); off += size_) {
    out.push_back(ChunkRef{off, std::min(size_, data.size() - off)});
  }
  return out;
}

namespace {
/// 256-entry gear table: fixed pseudo-random 64-bit values, generated
/// deterministically so chunk boundaries are stable across runs and builds.
const std::array<std::uint64_t, 256>& gear_table() {
  static const auto table = [] {
    std::array<std::uint64_t, 256> t{};
    std::uint64_t seed = 0x1d8af8dd04c9ab77ULL;
    for (auto& v : t) v = hpbdc::splitmix64(seed);
    return t;
  }();
  return table;
}
}  // namespace

CdcChunker::CdcChunker(std::size_t avg, std::size_t min, std::size_t max)
    : min_(min), max_(max) {
  if (avg == 0 || (avg & (avg - 1)) != 0) {
    throw std::invalid_argument("CdcChunker: avg must be a power of two");
  }
  if (min == 0 || min > avg || avg > max) {
    throw std::invalid_argument("CdcChunker: require 0 < min <= avg <= max");
  }
  // Gear hash concentrates entropy in the high bits; mask there.
  std::uint64_t bits = 0;
  for (std::size_t a = avg; a > 1; a >>= 1) ++bits;
  mask_ = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1) << (64 - bits);
}

std::vector<ChunkRef> CdcChunker::chunk(std::span<const std::uint8_t> data) const {
  std::vector<ChunkRef> out;
  const auto& gear = gear_table();
  std::size_t start = 0;
  while (start < data.size()) {
    const std::size_t limit = std::min(data.size(), start + max_);
    std::size_t cut = limit;  // default: max-size (or end-of-input) cut
    std::uint64_t h = 0;
    // Skip the first min_ bytes: no boundary may fall inside them.
    for (std::size_t i = start; i < limit; ++i) {
      h = (h << 1) + gear[data[i]];
      if (i - start + 1 < min_) continue;
      if ((h & mask_) == 0) {
        cut = i + 1;
        break;
      }
    }
    out.push_back(ChunkRef{start, cut - start});
    start = cut;
  }
  return out;
}

}  // namespace hpbdc::storage
