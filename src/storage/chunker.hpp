#pragma once
// Chunking for deduplication (experiment T5). Two strategies:
//   FixedChunker — cut every `size` bytes. Fast, but a single inserted byte
//                  shifts every later boundary, destroying dedup.
//   CdcChunker   — content-defined chunking with a gear rolling hash
//                  (FastCDC-style): a boundary is declared where the rolled
//                  hash matches a mask, so boundaries move with content and
//                  survive insertions. min/max bounds prevent pathological
//                  chunk sizes; `avg` must be a power of two.

#include <cstdint>
#include <span>
#include <vector>

namespace hpbdc::storage {

struct ChunkRef {
  std::size_t offset = 0;
  std::size_t length = 0;
};

class FixedChunker {
 public:
  explicit FixedChunker(std::size_t size) : size_(size == 0 ? 1 : size) {}
  std::vector<ChunkRef> chunk(std::span<const std::uint8_t> data) const;

 private:
  std::size_t size_;
};

class CdcChunker {
 public:
  /// avg must be a power of two; defaults give 2KiB..64KiB around an 8KiB avg.
  explicit CdcChunker(std::size_t avg = 8192, std::size_t min = 2048,
                      std::size_t max = 65536);
  std::vector<ChunkRef> chunk(std::span<const std::uint8_t> data) const;

 private:
  std::size_t min_, max_;
  std::uint64_t mask_;
};

}  // namespace hpbdc::storage
