#pragma once
// Replicated key-value state machine on Raft — the consensus-backed
// alternative to the quorum store in kv_cluster.hpp. Every write is a log
// command; once committed it is applied, in log order, identically at every
// node (the state-machine-replication guarantee the quorum store cannot
// give: no conflicting versions, no read repair, linearizable writes).
// Reads are served from a node's applied state: reading the leader gives
// linearizable-at-commit semantics; reading a follower may lag.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"
#include "kvstore/raft.hpp"

namespace hpbdc::kvstore {

class RaftKv {
 public:
  using PutCallback = std::function<void(bool committed)>;

  explicit RaftKv(RaftCluster& raft) : raft_(raft) {}

  /// Propose `key = value`; the callback fires once the write is committed
  /// (applied everywhere eventually) or lost to a leadership change.
  void put(const std::string& key, const std::string& value, PutCallback cb) {
    BufWriter w;
    w.write_string(key);
    w.write_string(value);
    const auto& bytes = w.bytes();
    std::string command(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    raft_.propose(std::move(command), [cb = std::move(cb)](bool ok, std::uint64_t) {
      if (cb) cb(ok);
    });
  }

  /// Value of `key` in the committed state of `node` (nullopt if unset).
  std::optional<std::string> get(std::size_t node, const std::string& key) {
    apply_committed(node);
    auto& st = applied_[node];
    auto it = st.map.find(key);
    if (it == st.map.end()) return std::nullopt;
    return it->second;
  }

  /// Number of committed commands applied at `node`.
  std::uint64_t applied_count(std::size_t node) {
    apply_committed(node);
    return applied_[node].next_index - 1;
  }

 private:
  struct Applied {
    std::unordered_map<std::string, std::string> map;
    std::uint64_t next_index = 1;  // next committed log index to apply
  };

  void apply_committed(std::size_t node) {
    auto& st = applied_[node];
    const auto log = raft_.committed_commands(node);
    while (st.next_index <= log.size()) {
      const std::string& cmd = log[st.next_index - 1];
      BufReader r(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(cmd.data()), cmd.size()));
      std::string key = r.read_string();
      std::string value = r.read_string();
      st.map[std::move(key)] = std::move(value);
      ++st.next_index;
    }
  }

  RaftCluster& raft_;
  std::unordered_map<std::size_t, Applied> applied_;
};

}  // namespace hpbdc::kvstore
