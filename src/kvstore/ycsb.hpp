#pragma once
// YCSB-style workload driver for the KV cluster (experiment F3). Implements
// the standard core-workload shapes over a zipfian key popularity curve:
//   A  update-heavy   50% read / 50% update
//   B  read-mostly    95% read /  5% update
//   C  read-only     100% read
//   D  read-latest    95% read /  5% insert, reads skew to recent inserts
//   F  read-modify-write  50% read / 50% RMW
// Clients run closed-loop: each issues its next operation when the previous
// completes, which is how YCSB drives target-less throughput runs.

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "kvstore/kv_cluster.hpp"

namespace hpbdc::kvstore {

enum class YcsbWorkload { kA, kB, kC, kD, kF };

const char* ycsb_name(YcsbWorkload w) noexcept;

struct YcsbConfig {
  YcsbWorkload workload = YcsbWorkload::kA;
  std::uint64_t records = 10000;   // preloaded keys
  std::uint64_t operations = 20000;
  std::size_t clients = 4;         // concurrent closed-loop clients
  std::size_t value_size = 100;    // bytes
  double zipf_theta = 0.99;
  std::uint64_t seed = 7;
  /// Client-side retries per op after a timeout/failure (for lossy-network
  /// experiments). 0 = fail fast.
  std::size_t max_retries = 0;
};

struct YcsbResult {
  double load_seconds = 0;   // simulated time to preload
  double run_seconds = 0;    // simulated time for the op phase
  double throughput_ops = 0; // operations / simulated second
  std::uint64_t retries = 0; // client-side retries issued (run phase)
  std::uint64_t ops_failed_final = 0;  // ops that failed after all retries
  KvStats stats;             // latency histograms and counters (run phase)
};

/// Preload `records` keys, then execute `operations` ops across `clients`
/// closed-loop clients, all inside the supplied simulated cluster. The
/// simulator is run to completion; the cluster must be otherwise idle.
YcsbResult run_ycsb(sim::Simulator& sim, KvCluster& kv, const YcsbConfig& cfg);

}  // namespace hpbdc::kvstore
