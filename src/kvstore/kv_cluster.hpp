#pragma once
// Dynamo-style replicated key-value store running on the simulated cluster
// (experiment F3). Keys map to a replica set of N nodes via the consistent-
// hash ring; the first live replica coordinates. Writes wait for W replica
// acks, reads for R replica responses; R + W > N gives read-your-writes.
// Versions carry vector clocks; on read, the coordinator returns the
// dominant version (ties broken last-writer-wins on coordinator timestamp)
// and issues asynchronous read-repair to stale replicas. Nodes can be
// marked down: they silently drop traffic and coordinators rely on a
// timeout to fail or degrade the operation.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "kvstore/vector_clock.hpp"
#include "obs/metrics.hpp"
#include "sim/comm.hpp"
#include "storage/hash_ring.hpp"

namespace hpbdc::kvstore {

struct KvConfig {
  std::size_t replication = 3;  // N
  std::size_t read_quorum = 2;  // R
  std::size_t write_quorum = 2; // W
  double op_timeout = 0.05;     // seconds before the coordinator gives up
  double service_time = 5e-6;   // per-request CPU time at a replica
  std::size_t ring_vnodes = 64;
};

struct KvStats {
  std::uint64_t puts_ok = 0, puts_failed = 0;
  std::uint64_t gets_ok = 0, gets_not_found = 0, gets_failed = 0;
  std::uint64_t read_repairs = 0;
  Histogram put_latency_us;
  Histogram get_latency_us;
};

/// Outcome handed to client callbacks.
struct GetResult {
  bool ok = false;          // quorum reached
  bool found = false;       // a value exists
  std::string value;
};

class KvCluster {
 public:
  using PutCallback = std::function<void(bool ok)>;
  using GetCallback = std::function<void(const GetResult&)>;

  KvCluster(sim::Comm& comm, KvConfig cfg);

  /// Issue a put from `client` (any node id, typically a non-replica).
  void client_put(std::size_t client, std::string key, std::string value,
                  PutCallback cb);

  /// Issue a get from `client`.
  void client_get(std::size_t client, std::string key, GetCallback cb);

  /// Simulate a crash: the node drops all incoming traffic.
  void fail_node(std::size_t node);
  void recover_node(std::size_t node);
  bool is_down(std::size_t node) const { return down_[node]; }

  const KvStats& stats() const noexcept { return stats_; }
  KvStats& mutable_stats() noexcept { return stats_; }

  /// Mirror operation counters and put/get latency histograms (microseconds
  /// of simulated time) into `reg` under kv.*. Registry must outlive the
  /// cluster; unbound clusters pay one null-pointer branch per site.
  void bind_metrics(obs::MetricsRegistry& reg);
  std::size_t nranks() const noexcept { return store_.size(); }

  /// Direct inspection for tests: the version a replica currently holds.
  std::optional<std::string> peek(std::size_t node, const std::string& key) const;

 private:
  struct Versioned {
    std::string value;
    VectorClock clock;
    double timestamp = 0;  // coordinator wall time, LWW tiebreak
  };

  struct PendingPut {
    std::size_t acks = 0;
    std::size_t responses = 0;
    bool done = false;
    double start = 0;
    std::size_t nreplicas = 0;
    PutCallback cb;
  };

  struct PendingGet {
    std::vector<std::pair<std::size_t, std::optional<Versioned>>> replies;
    bool done = false;
    double start = 0;
    std::size_t nreplicas = 0;
    std::string key;
    GetCallback cb;
  };

  void handle_replica_put(std::size_t src, const Bytes& payload, std::size_t self);
  void handle_replica_get(std::size_t src, const Bytes& payload, std::size_t self);
  void handle_put_ack(const Bytes& payload);
  void handle_get_reply(std::size_t src, const Bytes& payload);
  void finish_get(std::uint64_t req_id, PendingGet& pg);
  std::vector<std::size_t> replicas_for(const std::string& key) const;
  std::size_t pick_coordinator(const std::vector<std::size_t>& replicas) const;

  sim::Comm& comm_;
  KvConfig cfg_;
  storage::HashRing ring_;
  std::vector<std::unordered_map<std::string, Versioned>> store_;  // per node
  std::vector<bool> down_;
  KvStats stats_;

  // Optional live metrics (see bind_metrics); null until bound.
  obs::Counter* m_puts_ok_ = nullptr;
  obs::Counter* m_puts_failed_ = nullptr;
  obs::Counter* m_gets_ok_ = nullptr;
  obs::Counter* m_gets_not_found_ = nullptr;
  obs::Counter* m_gets_failed_ = nullptr;
  obs::Counter* m_read_repairs_ = nullptr;
  obs::LatencyHistogram* m_put_latency_ = nullptr;
  obs::LatencyHistogram* m_get_latency_ = nullptr;

  // In-flight coordinator state, keyed by request id.
  std::unordered_map<std::uint64_t, PendingPut> pending_puts_;
  std::unordered_map<std::uint64_t, PendingGet> pending_gets_;
  std::uint64_t next_req_ = 1;

  // Message tags.
  int tag_put_req_, tag_put_ack_, tag_get_req_, tag_get_rep_, tag_repair_;
};

}  // namespace hpbdc::kvstore
