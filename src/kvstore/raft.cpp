#include "kvstore/raft.hpp"

#include <algorithm>
#include <memory>

namespace hpbdc::kvstore {

namespace {

struct VoteReq {
  std::uint64_t term;
  std::uint64_t candidate;
  std::uint64_t last_log_index;
  std::uint64_t last_log_term;
};

struct VoteRep {
  std::uint64_t term;
  std::uint8_t granted;
};

struct AppendRep {
  std::uint64_t term;
  std::uint8_t success;
  std::uint64_t match_or_hint;  // success: match index; failure: follower's last index
};

template <typename T>
Bytes pack_pod(const T& v) {
  BufWriter w;
  w.write_pod(v);
  return w.take();
}

template <typename T>
T unpack_pod(const Bytes& b) {
  BufReader r(b);
  return r.read_pod<T>();
}

}  // namespace

RaftCluster::RaftCluster(sim::Comm& comm, RaftConfig cfg)
    : comm_(comm), cfg_(cfg), rng_(cfg.seed), nodes_(comm.nranks()) {
  for (auto& nd : nodes_) nd.log.push_back(LogEntry{0, ""});  // index-0 sentinel
  tag_vote_req_ = comm_.next_tag();
  tag_vote_rep_ = comm_.next_tag();
  tag_append_req_ = comm_.next_tag();
  tag_append_rep_ = comm_.next_tag();
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    comm_.set_handler(n, tag_vote_req_, [this, n](std::size_t, const Bytes& p) {
      if (!nodes_[n].down) on_vote_request(n, p);
    });
    comm_.set_handler(n, tag_vote_rep_, [this, n](std::size_t, const Bytes& p) {
      if (!nodes_[n].down) on_vote_reply(n, p);
    });
    comm_.set_handler(n, tag_append_req_, [this, n](std::size_t from, const Bytes& p) {
      if (!nodes_[n].down) on_append_request(n, from, p);
    });
    comm_.set_handler(n, tag_append_rep_, [this, n](std::size_t from, const Bytes& p) {
      if (!nodes_[n].down) on_append_reply(n, from, p);
    });
  }
}

void RaftCluster::bind_metrics(obs::MetricsRegistry& reg) {
  m_elections_ = &reg.counter("raft.elections_started");
  m_leaders_ = &reg.counter("raft.leaders_elected");
  m_appends_ = &reg.counter("raft.append_rpcs");
  m_commits_ = &reg.counter("raft.entries_committed");
}

void RaftCluster::start() {
  for (std::size_t n = 0; n < nodes_.size(); ++n) arm_election_timer(n);
}

void RaftCluster::stop() { stopped_ = true; }

std::optional<std::size_t> RaftCluster::leader() const {
  std::optional<std::size_t> best;
  std::uint64_t best_term = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].down && nodes_[n].role == RaftRole::kLeader &&
        nodes_[n].current_term >= best_term) {
      best = n;
      best_term = nodes_[n].current_term;
    }
  }
  return best;
}

std::vector<std::string> RaftCluster::committed_commands(std::size_t node) const {
  const Node& nd = nodes_[node];
  std::vector<std::string> out;
  for (std::uint64_t i = 1; i <= nd.commit_index; ++i) {
    out.push_back(nd.log[i].command);
  }
  return out;
}

void RaftCluster::arm_election_timer(std::size_t n) {
  Node& nd = nodes_[n];
  const std::uint64_t epoch = ++nd.timer_epoch;
  const double delay = cfg_.election_timeout_min +
                       (cfg_.election_timeout_max - cfg_.election_timeout_min) *
                           rng_.next_double();
  comm_.simulator().schedule_after(delay, [this, n, epoch] {
    Node& node = nodes_[n];
    if (stopped_ || node.down || epoch != node.timer_epoch) return;
    if (node.role != RaftRole::kLeader) start_election(n);
  });
}

void RaftCluster::become_follower(std::size_t n, std::uint64_t term) {
  Node& nd = nodes_[n];
  nd.role = RaftRole::kFollower;
  if (term > nd.current_term) {
    nd.current_term = term;
    nd.voted_for = -1;
  }
  arm_election_timer(n);
}

void RaftCluster::start_election(std::size_t n) {
  Node& nd = nodes_[n];
  nd.role = RaftRole::kCandidate;
  ++nd.current_term;
  nd.voted_for = static_cast<std::int64_t>(n);
  nd.votes = 1;
  ++stats_.elections_started;
  if (m_elections_ != nullptr) m_elections_->add(1);
  arm_election_timer(n);  // retry if the election stalls

  if (nd.votes >= majority()) {  // single-node cluster
    become_leader(n);
    return;
  }
  VoteReq req{nd.current_term, n, last_log_index(nd), last_log_term(nd)};
  for (std::size_t peer = 0; peer < nodes_.size(); ++peer) {
    if (peer != n) comm_.send(n, peer, tag_vote_req_, pack_pod(req));
  }
}

void RaftCluster::on_vote_request(std::size_t self, const Bytes& payload) {
  const auto req = unpack_pod<VoteReq>(payload);
  Node& nd = nodes_[self];
  if (req.term > nd.current_term) become_follower(self, req.term);
  bool grant = false;
  if (req.term == nd.current_term &&
      (nd.voted_for == -1 || nd.voted_for == static_cast<std::int64_t>(req.candidate))) {
    // Election restriction: candidate's log must be at least as up-to-date.
    const bool up_to_date =
        req.last_log_term > last_log_term(nd) ||
        (req.last_log_term == last_log_term(nd) && req.last_log_index >= last_log_index(nd));
    if (up_to_date) {
      grant = true;
      nd.voted_for = static_cast<std::int64_t>(req.candidate);
      arm_election_timer(self);  // granting a vote defers our own candidacy
    }
  }
  comm_.send(self, static_cast<std::size_t>(req.candidate), tag_vote_rep_,
             pack_pod(VoteRep{nd.current_term, static_cast<std::uint8_t>(grant)}));
}

void RaftCluster::on_vote_reply(std::size_t self, const Bytes& payload) {
  const auto rep = unpack_pod<VoteRep>(payload);
  Node& nd = nodes_[self];
  if (rep.term > nd.current_term) {
    become_follower(self, rep.term);
    return;
  }
  if (nd.role != RaftRole::kCandidate || rep.term != nd.current_term || !rep.granted) {
    return;
  }
  if (++nd.votes >= majority()) become_leader(self);
}

void RaftCluster::become_leader(std::size_t n) {
  Node& nd = nodes_[n];
  nd.role = RaftRole::kLeader;
  nd.next_index.assign(nodes_.size(), last_log_index(nd) + 1);
  nd.match_index.assign(nodes_.size(), 0);
  nd.match_index[n] = last_log_index(nd);
  ++stats_.leaders_elected;
  if (m_leaders_ != nullptr) m_leaders_->add(1);
  const std::uint64_t epoch = ++nd.timer_epoch;  // cancel the election timer

  // Heartbeat loop; cancelled when the epoch moves (role change/crash).
  auto beat = std::make_shared<std::function<void()>>();
  *beat = [this, n, epoch, beat] {
    Node& node = nodes_[n];
    if (stopped_ || node.down || epoch != node.timer_epoch ||
        node.role != RaftRole::kLeader) {
      return;
    }
    send_heartbeats(n);
    comm_.simulator().schedule_after(cfg_.heartbeat_interval, [beat] { (*beat)(); });
  };
  (*beat)();
}

void RaftCluster::send_heartbeats(std::size_t n) {
  for (std::size_t peer = 0; peer < nodes_.size(); ++peer) {
    if (peer != n) send_append(n, peer);
  }
}

void RaftCluster::send_append(std::size_t leader, std::size_t peer) {
  Node& nd = nodes_[leader];
  const std::uint64_t next = nd.next_index[peer];
  const std::uint64_t prev = next - 1;
  BufWriter w;
  w.write_pod(nd.current_term);
  w.write_pod(prev);
  w.write_pod(nd.log[prev].term);
  w.write_pod(nd.commit_index);
  const std::uint64_t count = last_log_index(nd) >= next
                                  ? last_log_index(nd) - next + 1
                                  : 0;
  w.write_varint(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    w.write_pod(nd.log[next + i].term);
    w.write_string(nd.log[next + i].command);
  }
  ++stats_.append_rpcs;
  if (m_appends_ != nullptr) m_appends_->add(1);
  comm_.send(leader, peer, tag_append_req_, w.take());
}

void RaftCluster::on_append_request(std::size_t self, std::size_t from,
                                    const Bytes& payload) {
  BufReader r(payload);
  const auto term = r.read_pod<std::uint64_t>();
  const auto prev_index = r.read_pod<std::uint64_t>();
  const auto prev_term = r.read_pod<std::uint64_t>();
  const auto leader_commit = r.read_pod<std::uint64_t>();
  const auto count = r.read_varint();

  Node& nd = nodes_[self];
  if (term < nd.current_term) {
    comm_.send(self, from, tag_append_rep_,
               pack_pod(AppendRep{nd.current_term, 0, last_log_index(nd)}));
    return;
  }
  if (term > nd.current_term || nd.role != RaftRole::kFollower) {
    become_follower(self, term);
  } else {
    arm_election_timer(self);  // heartbeat received: defer elections
  }

  if (prev_index > last_log_index(nd) || nd.log[prev_index].term != prev_term) {
    comm_.send(self, from, tag_append_rep_,
               pack_pod(AppendRep{nd.current_term, 0, last_log_index(nd)}));
    return;
  }
  // Append entries, truncating on the first conflict.
  std::uint64_t idx = prev_index;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto e_term = r.read_pod<std::uint64_t>();
    std::string cmd = r.read_string();
    ++idx;
    if (idx <= last_log_index(nd)) {
      if (nd.log[idx].term != e_term) {
        nd.log.resize(idx);  // truncate the conflicting suffix
        nd.log.push_back(LogEntry{e_term, std::move(cmd)});
      }
    } else {
      nd.log.push_back(LogEntry{e_term, std::move(cmd)});
    }
  }
  const std::uint64_t match = idx;
  if (leader_commit > nd.commit_index) {
    nd.commit_index = std::min(leader_commit, last_log_index(nd));
    apply_commits(self);
  }
  comm_.send(self, from, tag_append_rep_,
             pack_pod(AppendRep{nd.current_term, 1, match}));
}

void RaftCluster::on_append_reply(std::size_t self, std::size_t from,
                                  const Bytes& payload) {
  const auto rep = unpack_pod<AppendRep>(payload);
  Node& nd = nodes_[self];
  if (rep.term > nd.current_term) {
    become_follower(self, rep.term);
    return;
  }
  if (nd.role != RaftRole::kLeader || rep.term != nd.current_term) return;
  if (rep.success) {
    nd.match_index[from] = std::max(nd.match_index[from], rep.match_or_hint);
    nd.next_index[from] = nd.match_index[from] + 1;
    advance_commit(self);
  } else {
    // Back up toward the follower's log end and retry immediately.
    const std::uint64_t hint_next = rep.match_or_hint + 1;
    nd.next_index[from] = std::max<std::uint64_t>(
        1, std::min(nd.next_index[from] - 1, hint_next));
    send_append(self, from);
  }
}

void RaftCluster::advance_commit(std::size_t leader) {
  Node& nd = nodes_[leader];
  for (std::uint64_t idx = last_log_index(nd); idx > nd.commit_index; --idx) {
    if (nd.log[idx].term != nd.current_term) break;  // figure-8 rule
    std::size_t matched = 0;
    for (std::size_t p = 0; p < nodes_.size(); ++p) {
      if (nd.match_index[p] >= idx) ++matched;
    }
    if (matched >= majority()) {
      stats_.entries_committed += idx - nd.commit_index;
      if (m_commits_ != nullptr) m_commits_->add(idx - nd.commit_index);
      nd.commit_index = idx;
      apply_commits(leader);
      break;
    }
  }
}

void RaftCluster::apply_commits(std::size_t n) {
  Node& nd = nodes_[n];
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->node != n) {
      ++it;
      continue;
    }
    if (it->index <= last_log_index(nd) && nd.log[it->index].term != it->term) {
      // Overwritten by a new leader: lost.
      auto cb = std::move(it->cb);
      it = pending_.erase(it);
      if (cb) cb(false, 0);
      continue;
    }
    if (it->index <= nd.commit_index && nd.log[it->index].term == it->term) {
      auto cb = std::move(it->cb);
      const auto idx = it->index;
      it = pending_.erase(it);
      if (cb) cb(true, idx);
      continue;
    }
    ++it;
  }
}

void RaftCluster::propose(std::string command, CommitCallback cb) {
  const auto l = leader();
  if (!l) {
    comm_.simulator().schedule_after(0.0, [cb] {
      if (cb) cb(false, 0);
    });
    return;
  }
  const std::size_t n = *l;
  // Client RPC hop to the leader, then append + replicate.
  comm_.network().send(n, n, 256, [this, n, command = std::move(command), cb]() {
    Node& nd = nodes_[n];
    if (nd.down || nd.role != RaftRole::kLeader || stopped_) {
      if (cb) cb(false, 0);
      return;
    }
    nd.log.push_back(LogEntry{nd.current_term, command});
    const std::uint64_t idx = last_log_index(nd);
    nd.match_index[n] = idx;
    pending_.push_back(Pending{n, nd.current_term, idx, cb});
    if (nodes_.size() == 1) {
      advance_commit(n);
    } else {
      send_heartbeats(n);  // replicate immediately
    }
  });
}

void RaftCluster::fail_node(std::size_t node) {
  Node& nd = nodes_[node];
  nd.down = true;
  ++nd.timer_epoch;  // cancel timers and heartbeat loops
}

void RaftCluster::recover_node(std::size_t node) {
  Node& nd = nodes_[node];
  nd.down = false;
  nd.role = RaftRole::kFollower;  // restart as follower with persisted state
  arm_election_timer(node);
}

}  // namespace hpbdc::kvstore
