#include "kvstore/kv_cluster.hpp"

#include <algorithm>

namespace hpbdc::kvstore {

namespace {

struct WireVersion {
  std::string value;
  VectorClock clock;
  double timestamp = 0;
};

void write_version(BufWriter& w, const std::string& value, const VectorClock& clock,
                   double ts) {
  w.write_string(value);
  Serde<VectorClock>::write(w, clock);
  w.write_pod(ts);
}

WireVersion read_version(BufReader& r) {
  WireVersion v;
  v.value = r.read_string();
  v.clock = Serde<VectorClock>::read(r);
  v.timestamp = r.read_pod<double>();
  return v;
}

}  // namespace

KvCluster::KvCluster(sim::Comm& comm, KvConfig cfg)
    : comm_(comm),
      cfg_(cfg),
      ring_(cfg.ring_vnodes),
      store_(comm.nranks()),
      down_(comm.nranks(), false) {
  if (cfg_.replication == 0 || cfg_.replication > comm.nranks()) {
    throw std::invalid_argument("KvCluster: bad replication factor");
  }
  if (cfg_.read_quorum == 0 || cfg_.read_quorum > cfg_.replication ||
      cfg_.write_quorum == 0 || cfg_.write_quorum > cfg_.replication) {
    throw std::invalid_argument("KvCluster: quorum outside [1, N]");
  }
  for (std::size_t n = 0; n < comm.nranks(); ++n) ring_.add_node(n);

  tag_put_req_ = comm_.next_tag();
  tag_put_ack_ = comm_.next_tag();
  tag_get_req_ = comm_.next_tag();
  tag_get_rep_ = comm_.next_tag();
  tag_repair_ = comm_.next_tag();

  for (std::size_t n = 0; n < comm.nranks(); ++n) {
    comm_.set_handler(n, tag_put_req_, [this, n](std::size_t src, const Bytes& p) {
      handle_replica_put(src, p, n);
    });
    comm_.set_handler(n, tag_get_req_, [this, n](std::size_t src, const Bytes& p) {
      handle_replica_get(src, p, n);
    });
    comm_.set_handler(n, tag_put_ack_, [this, n](std::size_t, const Bytes& p) {
      if (!down_[n]) handle_put_ack(p);
    });
    comm_.set_handler(n, tag_get_rep_, [this, n](std::size_t src, const Bytes& p) {
      if (!down_[n]) handle_get_reply(src, p);
    });
    comm_.set_handler(n, tag_repair_, [this, n](std::size_t src, const Bytes& p) {
      handle_replica_put(src, p, n);  // repairs are unacked puts
    });
  }
}

std::vector<std::size_t> KvCluster::replicas_for(const std::string& key) const {
  std::vector<std::size_t> out;
  for (auto id : ring_.lookup_n(key, cfg_.replication)) {
    out.push_back(static_cast<std::size_t>(id));
  }
  return out;
}

std::size_t KvCluster::pick_coordinator(const std::vector<std::size_t>& replicas) const {
  // First live replica coordinates; if all appear down, fall back to the
  // primary (the op will fail by timeout).
  for (auto r : replicas) {
    if (!down_[r]) return r;
  }
  return replicas.front();
}

void KvCluster::fail_node(std::size_t node) { down_[node] = true; }
void KvCluster::recover_node(std::size_t node) { down_[node] = false; }

std::optional<std::string> KvCluster::peek(std::size_t node, const std::string& key) const {
  auto it = store_[node].find(key);
  if (it == store_[node].end()) return std::nullopt;
  return it->second.value;
}

// ---- put ------------------------------------------------------------------

void KvCluster::bind_metrics(obs::MetricsRegistry& reg) {
  m_puts_ok_ = &reg.counter("kv.puts_ok");
  m_puts_failed_ = &reg.counter("kv.puts_failed");
  m_gets_ok_ = &reg.counter("kv.gets_ok");
  m_gets_not_found_ = &reg.counter("kv.gets_not_found");
  m_gets_failed_ = &reg.counter("kv.gets_failed");
  m_read_repairs_ = &reg.counter("kv.read_repairs");
  m_put_latency_ = &reg.histogram("kv.put_latency_us");
  m_get_latency_ = &reg.histogram("kv.get_latency_us");
}

void KvCluster::client_put(std::size_t client, std::string key, std::string value,
                           PutCallback cb) {
  const auto replicas = replicas_for(key);
  const std::size_t coord = pick_coordinator(replicas);
  const std::uint64_t req_id = next_req_++;

  auto& pp = pending_puts_[req_id];
  pp.start = comm_.simulator().now();
  pp.cb = std::move(cb);
  pp.nreplicas = replicas.size();

  // Build the new version at the coordinator: merge its current clock for
  // the key, then advance the coordinator's entry.
  VectorClock clock;
  double ts = comm_.simulator().now();
  {
    auto it = store_[coord].find(key);
    if (it != store_[coord].end()) clock = it->second.clock;
    clock.increment(coord);
  }

  BufWriter w;
  w.write_pod(req_id);
  w.write_pod(static_cast<std::uint64_t>(client));
  w.write_string(key);
  write_version(w, value, clock, ts);
  const Bytes msg = w.take();

  // Coordinator fans out to all replicas (including itself via loopback).
  // We model the client->coordinator hop by routing the fan-out through
  // the coordinator's NIC: client sends one message to coordinator, which
  // re-sends on delivery.
  comm_.network().send(
      client, coord,
      static_cast<std::uint64_t>(msg.size()) + 64,
      [this, coord, replicas, msg]() {
        if (down_[coord]) return;  // dead coordinator: client times out
        for (auto r : replicas) {
          comm_.send(coord, r, tag_put_req_, msg);
        }
      });

  // Client-side timeout covers a dead coordinator and lost quorums alike.
  comm_.simulator().schedule_after(cfg_.op_timeout, [this, req_id] {
    auto it = pending_puts_.find(req_id);
    if (it == pending_puts_.end() || it->second.done) return;
    it->second.done = true;
    ++stats_.puts_failed;
    if (m_puts_failed_ != nullptr) m_puts_failed_->add(1);
    auto cb = std::move(it->second.cb);
    pending_puts_.erase(it);
    if (cb) cb(false);
  });
}

void KvCluster::handle_replica_put(std::size_t, const Bytes& payload, std::size_t self) {
  if (down_[self]) return;
  BufReader r(payload);
  const auto req_id = r.read_pod<std::uint64_t>();
  const auto client = r.read_pod<std::uint64_t>();
  const std::string key = r.read_string();
  WireVersion wire = read_version(r);

  // Apply: newest-causality wins; concurrent resolves last-writer-wins.
  auto& slot = store_[self][key];
  const auto order = wire.clock.compare(slot.clock);
  const bool apply = slot.clock.empty() || order == ClockOrder::kAfter ||
                     (order == ClockOrder::kConcurrent && wire.timestamp >= slot.timestamp);
  if (apply) {
    slot.value = wire.value;
    VectorClock merged = slot.clock;
    merged.merge(wire.clock);
    slot.clock = merged;
    slot.timestamp = wire.timestamp;
  }

  if (req_id == 0) return;  // read-repair writes are fire-and-forget

  // Ack to the coordinator-side bookkeeping after local service time. The
  // ack is addressed to the client rank purely so the completion latency
  // includes the reply hop; the pending map is process-global.
  comm_.simulator().schedule_after(cfg_.service_time, [this, self, client, req_id] {
    if (down_[self]) return;
    BufWriter w;
    w.write_pod(req_id);
    comm_.send(self, static_cast<std::size_t>(client), tag_put_ack_, w.take());
  });
}

void KvCluster::handle_put_ack(const Bytes& payload) {
  BufReader r(payload);
  const auto req_id = r.read_pod<std::uint64_t>();
  auto it = pending_puts_.find(req_id);
  if (it == pending_puts_.end() || it->second.done) return;
  auto& pp = it->second;
  ++pp.acks;
  ++pp.responses;
  if (pp.acks >= cfg_.write_quorum) {
    pp.done = true;
    ++stats_.puts_ok;
    const double put_us = (comm_.simulator().now() - pp.start) * 1e6;
    stats_.put_latency_us.add(put_us);
    if (m_puts_ok_ != nullptr) m_puts_ok_->add(1);
    if (m_put_latency_ != nullptr) m_put_latency_->record(put_us);
    auto cb = std::move(pp.cb);
    pending_puts_.erase(it);
    if (cb) cb(true);
  }
}

// ---- get ------------------------------------------------------------------

void KvCluster::client_get(std::size_t client, std::string key, GetCallback cb) {
  const auto replicas = replicas_for(key);
  const std::size_t coord = pick_coordinator(replicas);
  const std::uint64_t req_id = next_req_++;

  auto& pg = pending_gets_[req_id];
  pg.start = comm_.simulator().now();
  pg.cb = std::move(cb);
  pg.key = key;
  pg.nreplicas = replicas.size();

  BufWriter w;
  w.write_pod(req_id);
  w.write_pod(static_cast<std::uint64_t>(client));
  w.write_string(key);
  const Bytes msg = w.take();

  comm_.network().send(client, coord, static_cast<std::uint64_t>(msg.size()) + 64,
                       [this, coord, replicas, msg]() {
                         if (down_[coord]) return;
                         for (auto r : replicas) {
                           comm_.send(coord, r, tag_get_req_, msg);
                         }
                       });

  comm_.simulator().schedule_after(cfg_.op_timeout, [this, req_id] {
    auto it = pending_gets_.find(req_id);
    if (it == pending_gets_.end() || it->second.done) return;
    it->second.done = true;
    ++stats_.gets_failed;
    if (m_gets_failed_ != nullptr) m_gets_failed_->add(1);
    auto cb = std::move(it->second.cb);
    pending_gets_.erase(it);
    if (cb) cb(GetResult{});
  });
}

void KvCluster::handle_replica_get(std::size_t, const Bytes& payload, std::size_t self) {
  if (down_[self]) return;
  BufReader r(payload);
  const auto req_id = r.read_pod<std::uint64_t>();
  const auto client = r.read_pod<std::uint64_t>();
  const std::string key = r.read_string();

  comm_.simulator().schedule_after(cfg_.service_time, [this, self, client, req_id, key] {
    if (down_[self]) return;
    BufWriter w;
    w.write_pod(req_id);
    auto it = store_[self].find(key);
    w.write_pod(static_cast<std::uint8_t>(it != store_[self].end() ? 1 : 0));
    if (it != store_[self].end()) {
      write_version(w, it->second.value, it->second.clock, it->second.timestamp);
    }
    comm_.send(self, static_cast<std::size_t>(client), tag_get_rep_, w.take());
  });
}

void KvCluster::handle_get_reply(std::size_t src, const Bytes& payload) {
  BufReader r(payload);
  const auto req_id = r.read_pod<std::uint64_t>();
  auto it = pending_gets_.find(req_id);
  if (it == pending_gets_.end() || it->second.done) return;
  auto& pg = it->second;

  const bool found = r.read_pod<std::uint8_t>() != 0;
  std::optional<Versioned> version;
  if (found) {
    WireVersion wire = read_version(r);
    version = Versioned{std::move(wire.value), std::move(wire.clock), wire.timestamp};
  }
  pg.replies.emplace_back(src, std::move(version));
  if (pg.replies.size() >= cfg_.read_quorum) {
    finish_get(req_id, pg);
  }
}

void KvCluster::finish_get(std::uint64_t req_id, PendingGet& pg) {
  pg.done = true;
  // Pick the winning version: causally dominant, LWW on concurrency.
  const Versioned* winner = nullptr;
  for (const auto& [node, v] : pg.replies) {
    if (!v) continue;
    if (winner == nullptr) {
      winner = &*v;
      continue;
    }
    const auto order = v->clock.compare(winner->clock);
    if (order == ClockOrder::kAfter ||
        (order == ClockOrder::kConcurrent && v->timestamp > winner->timestamp)) {
      winner = &*v;
    }
  }
  GetResult res;
  res.ok = true;
  if (winner != nullptr) {
    res.found = true;
    res.value = winner->value;
    // Read repair: push the winner to any replica that answered stale.
    for (const auto& [node, v] : pg.replies) {
      const bool stale = !v || !v->clock.dominates(winner->clock);
      if (stale) {
        BufWriter w;
        w.write_pod(std::uint64_t{0});  // repair: no request id
        w.write_pod(std::uint64_t{node});
        w.write_string(pg.key);
        write_version(w, winner->value, winner->clock, winner->timestamp);
        comm_.send(node, node, tag_repair_, w.take());
        ++stats_.read_repairs;
        if (m_read_repairs_ != nullptr) m_read_repairs_->add(1);
      }
    }
    ++stats_.gets_ok;
    if (m_gets_ok_ != nullptr) m_gets_ok_->add(1);
  } else {
    ++stats_.gets_not_found;
    if (m_gets_not_found_ != nullptr) m_gets_not_found_->add(1);
  }
  const double get_us = (comm_.simulator().now() - pg.start) * 1e6;
  stats_.get_latency_us.add(get_us);
  if (m_get_latency_ != nullptr) m_get_latency_->record(get_us);
  auto cb = std::move(pg.cb);
  pending_gets_.erase(req_id);
  if (cb) cb(res);
}

}  // namespace hpbdc::kvstore
