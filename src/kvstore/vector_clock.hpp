#pragma once
// Vector clocks for causality tracking in the replicated KV store.
// Comparison yields one of: equal, a-dominates, b-dominates, concurrent.
// Concurrent versions indicate a conflict; the store resolves them with
// last-writer-wins on the coordinator timestamp (documented simplification
// of Dynamo's application-level reconciliation).

#include <cstdint>
#include <map>

#include "common/serialize.hpp"

namespace hpbdc::kvstore {

enum class ClockOrder { kEqual, kBefore, kAfter, kConcurrent };

class VectorClock {
 public:
  void increment(std::uint64_t node) { ++entries_[node]; }

  void set(std::uint64_t node, std::uint64_t value) {
    if (value == 0) entries_.erase(node);
    else entries_[node] = value;
  }

  std::uint64_t get(std::uint64_t node) const {
    auto it = entries_.find(node);
    return it == entries_.end() ? 0 : it->second;
  }

  /// Pointwise maximum.
  void merge(const VectorClock& o) {
    for (const auto& [n, c] : o.entries_) {
      auto& mine = entries_[n];
      if (c > mine) mine = c;
    }
  }

  /// Order of *this relative to o.
  ClockOrder compare(const VectorClock& o) const {
    bool less = false, greater = false;
    auto a = entries_.begin();
    auto b = o.entries_.begin();
    while (a != entries_.end() || b != o.entries_.end()) {
      if (b == o.entries_.end() || (a != entries_.end() && a->first < b->first)) {
        if (a->second > 0) greater = true;
        ++a;
      } else if (a == entries_.end() || b->first < a->first) {
        if (b->second > 0) less = true;
        ++b;
      } else {
        if (a->second > b->second) greater = true;
        if (a->second < b->second) less = true;
        ++a;
        ++b;
      }
    }
    if (less && greater) return ClockOrder::kConcurrent;
    if (greater) return ClockOrder::kAfter;
    if (less) return ClockOrder::kBefore;
    return ClockOrder::kEqual;
  }

  bool dominates(const VectorClock& o) const {
    const auto c = compare(o);
    return c == ClockOrder::kAfter || c == ClockOrder::kEqual;
  }

  bool empty() const noexcept { return entries_.empty(); }
  const std::map<std::uint64_t, std::uint64_t>& entries() const noexcept { return entries_; }

 private:
  std::map<std::uint64_t, std::uint64_t> entries_;
};

}  // namespace hpbdc::kvstore

namespace hpbdc {

template <>
struct Serde<kvstore::VectorClock> {
  static void write(BufWriter& w, const kvstore::VectorClock& vc) {
    w.write_varint(vc.entries().size());
    for (const auto& [n, c] : vc.entries()) {
      w.write_varint(n);
      w.write_varint(c);
    }
  }
  static kvstore::VectorClock read(BufReader& r) {
    kvstore::VectorClock vc;
    const auto n = r.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto node = r.read_varint();
      const auto count = r.read_varint();
      vc.set(node, count);
    }
    return vc;
  }
};

}  // namespace hpbdc
