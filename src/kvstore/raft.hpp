#pragma once
// Raft consensus on the simulated cluster — the coordination substrate
// cloud storage systems build their metadata and configuration services on.
// Implements the core protocol of Ongaro & Ousterhout's Raft:
//   * leader election with randomized timeouts and term numbers,
//   * log replication via AppendEntries with the prev-index/term
//     consistency check and follower log truncation,
//   * commit advancement on majority match, restricted to current-term
//     entries (figure 8 rule),
//   * crash/recover of nodes (state survives, as with persisted terms/logs).
// Not implemented (documented scope cut): snapshots/compaction, membership
// changes, and client session deduplication.
//
// Because leaders emit heartbeats forever, the event queue never drains:
// drive the simulator with run_until(t), and call stop() before tearing
// down. All timing is simulated; runs are deterministic per seed.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/comm.hpp"

namespace hpbdc::kvstore {

enum class RaftRole { kFollower, kCandidate, kLeader };

struct RaftConfig {
  double election_timeout_min = 0.150;  // seconds
  double election_timeout_max = 0.300;
  double heartbeat_interval = 0.050;
  std::uint64_t seed = 1;
};

struct RaftStats {
  std::uint64_t elections_started = 0;
  std::uint64_t leaders_elected = 0;
  std::uint64_t append_rpcs = 0;
  std::uint64_t entries_committed = 0;  // on the leader at commit time
};

class RaftCluster {
 public:
  using CommitCallback = std::function<void(bool committed, std::uint64_t index)>;

  RaftCluster(sim::Comm& comm, RaftConfig cfg = {});

  /// Arm the initial election timers. Call once before running the sim.
  void start();

  /// Cease all future timers/heartbeats so the event queue can drain.
  void stop();

  /// Propose a command. It is forwarded to the node currently believed to
  /// lead (fails immediately if none); the callback fires when the entry
  /// commits, or with false if it was lost to a leadership change.
  void propose(std::string command, CommitCallback cb);

  /// Crash a node: it drops all traffic and its timers go dormant.
  /// State (term, vote, log) is retained, modelling persistence.
  void fail_node(std::size_t node);
  void recover_node(std::size_t node);

  /// The node currently acting as leader with the highest term, if any.
  std::optional<std::size_t> leader() const;

  // --- introspection (tests/benches) ---
  RaftRole role(std::size_t node) const { return nodes_[node].role; }
  std::uint64_t term(std::size_t node) const { return nodes_[node].current_term; }
  std::uint64_t commit_index(std::size_t node) const { return nodes_[node].commit_index; }
  /// Commands applied (committed) at a node, in log order.
  std::vector<std::string> committed_commands(std::size_t node) const;
  const RaftStats& stats() const noexcept { return stats_; }

  /// Mirror protocol counters into `reg` (raft.elections_started,
  /// raft.leaders_elected, raft.append_rpcs, raft.entries_committed),
  /// incremented live as the protocol runs. Registry must outlive the
  /// cluster; unbound clusters pay one null-pointer branch per site.
  void bind_metrics(obs::MetricsRegistry& reg);

 private:
  struct LogEntry {
    std::uint64_t term = 0;
    std::string command;
  };

  struct Node {
    RaftRole role = RaftRole::kFollower;
    std::uint64_t current_term = 0;
    std::int64_t voted_for = -1;
    std::vector<LogEntry> log;  // 1-based indexing: log[0] unused sentinel
    std::uint64_t commit_index = 0;
    bool down = false;

    // Candidate state.
    std::size_t votes = 0;

    // Leader state.
    std::vector<std::uint64_t> next_index;
    std::vector<std::uint64_t> match_index;

    // Timer invalidation: bumping the epoch cancels outstanding timers.
    std::uint64_t timer_epoch = 0;
  };

  void arm_election_timer(std::size_t n);
  void become_follower(std::size_t n, std::uint64_t term);
  void start_election(std::size_t n);
  void become_leader(std::size_t n);
  void send_heartbeats(std::size_t n);
  void send_append(std::size_t leader, std::size_t peer);
  void advance_commit(std::size_t leader);
  void apply_commits(std::size_t n);

  void on_vote_request(std::size_t self, const Bytes& payload);
  void on_vote_reply(std::size_t self, const Bytes& payload);
  void on_append_request(std::size_t self, std::size_t from, const Bytes& payload);
  void on_append_reply(std::size_t self, std::size_t from, const Bytes& payload);

  std::uint64_t last_log_index(const Node& nd) const { return nd.log.size() - 1; }
  std::uint64_t last_log_term(const Node& nd) const {
    return nd.log.empty() ? 0 : nd.log.back().term;
  }
  std::size_t majority() const { return comm_.nranks() / 2 + 1; }

  sim::Comm& comm_;
  RaftConfig cfg_;
  Rng rng_;
  std::vector<Node> nodes_;
  bool stopped_ = false;
  RaftStats stats_;

  // Optional live counters (see bind_metrics); null until bound.
  obs::Counter* m_elections_ = nullptr;
  obs::Counter* m_leaders_ = nullptr;
  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_commits_ = nullptr;

  // Pending client proposals: (leader, term, index) -> callback.
  struct Pending {
    std::size_t node;
    std::uint64_t term;
    std::uint64_t index;
    CommitCallback cb;
  };
  std::vector<Pending> pending_;

  int tag_vote_req_, tag_vote_rep_, tag_append_req_, tag_append_rep_;
};

}  // namespace hpbdc::kvstore
