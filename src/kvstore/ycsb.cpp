#include "kvstore/ycsb.hpp"

#include <memory>

namespace hpbdc::kvstore {

const char* ycsb_name(YcsbWorkload w) noexcept {
  switch (w) {
    case YcsbWorkload::kA: return "A(50r/50u)";
    case YcsbWorkload::kB: return "B(95r/5u)";
    case YcsbWorkload::kC: return "C(100r)";
    case YcsbWorkload::kD: return "D(read-latest)";
    case YcsbWorkload::kF: return "F(rmw)";
  }
  return "?";
}

namespace {

struct DriverState {
  YcsbConfig cfg;
  Rng rng;
  ZipfGenerator zipf;
  std::uint64_t issued = 0;     // ops handed to clients
  std::uint64_t completed = 0;  // ops finished
  std::uint64_t retries = 0;    // failed attempts re-issued
  std::uint64_t ops_failed_final = 0;  // gave up after exhausting retries
  std::uint64_t key_count = 0;  // grows under workload D inserts
  double finish_time = 0;

  DriverState(const YcsbConfig& c)
      : cfg(c), rng(c.seed), zipf(c.records, c.zipf_theta), key_count(c.records) {}

  std::string key_for(std::uint64_t id) const { return "user" + std::to_string(id); }

  std::string make_value() {
    std::string v(cfg.value_size, 'x');
    // A little per-value entropy so dedup/compression paths can't cheat.
    const auto r = rng();
    for (std::size_t i = 0; i < sizeof(r) && i < v.size(); ++i) {
      v[i] = static_cast<char>('a' + ((r >> (8 * i)) & 0x0f));
    }
    return v;
  }

  std::uint64_t pick_key() {
    if (cfg.workload == YcsbWorkload::kD) {
      // Read-latest: zipf over recency rank from the newest key.
      const auto rank = zipf.next(rng);
      return key_count > rank ? key_count - 1 - rank : 0;
    }
    return zipf.next(rng);
  }
};

/// Issue the next operation for one closed-loop client; reschedules itself
/// from the completion callback until the op budget is exhausted.
void client_step(const std::shared_ptr<DriverState>& st, KvCluster& kv,
                 sim::Simulator& sim, std::size_t client_rank) {
  if (st->issued >= st->cfg.operations) return;
  ++st->issued;

  auto complete = [st, &kv, &sim, client_rank] {
    ++st->completed;
    if (st->completed == st->cfg.operations) {
      st->finish_time = sim.now();
    } else {
      client_step(st, kv, sim, client_rank);
    }
  };

  const double p = st->rng.next_double();
  const auto w = st->cfg.workload;
  const bool is_insert = (w == YcsbWorkload::kD) && p >= 0.95;
  bool is_read;
  switch (w) {
    case YcsbWorkload::kA: is_read = p < 0.50; break;
    case YcsbWorkload::kB: is_read = p < 0.95; break;
    case YcsbWorkload::kC: is_read = true; break;
    case YcsbWorkload::kD: is_read = !is_insert; break;
    case YcsbWorkload::kF: is_read = p < 0.50; break;
    default: is_read = true; break;
  }

  // Retrying wrappers: re-issue an op after a failure, up to max_retries.
  auto retried_put = [st, &kv, client_rank](std::string key, std::string value,
                                            std::function<void()> done) {
    auto attempt = std::make_shared<std::function<void(std::size_t)>>();
    *attempt = [st, &kv, client_rank, key = std::move(key), value = std::move(value),
                done = std::move(done), attempt](std::size_t tries) {
      kv.client_put(client_rank, key, value,
                    [st, done, attempt, tries](bool ok) {
                      if (!ok && tries < st->cfg.max_retries) {
                        ++st->retries;
                        (*attempt)(tries + 1);
                      } else {
                        if (!ok) ++st->ops_failed_final;
                        done();
                      }
                    });
    };
    (*attempt)(0);
  };
  auto retried_get = [st, &kv, client_rank](std::string key,
                                            std::function<void()> done) {
    auto attempt = std::make_shared<std::function<void(std::size_t)>>();
    *attempt = [st, &kv, client_rank, key = std::move(key), done = std::move(done),
                attempt](std::size_t tries) {
      kv.client_get(client_rank, key,
                    [st, done, attempt, tries](const GetResult& r) {
                      if (!r.ok && tries < st->cfg.max_retries) {
                        ++st->retries;
                        (*attempt)(tries + 1);
                      } else {
                        if (!r.ok) ++st->ops_failed_final;
                        done();
                      }
                    });
    };
    (*attempt)(0);
  };

  if (is_insert) {
    const auto id = st->key_count++;
    retried_put(st->key_for(id), st->make_value(), complete);
    return;
  }
  if (is_read) {
    retried_get(st->key_for(st->pick_key()), complete);
    return;
  }
  if (w == YcsbWorkload::kF) {
    // Read-modify-write: chained get then put, counted as one operation.
    const auto id = st->pick_key();
    retried_get(st->key_for(id), [st, retried_put, id, complete] {
      retried_put(st->key_for(id), st->make_value(), complete);
    });
    return;
  }
  // Plain update.
  retried_put(st->key_for(st->pick_key()), st->make_value(), complete);
}

}  // namespace

YcsbResult run_ycsb(sim::Simulator& sim, KvCluster& kv, const YcsbConfig& cfg) {
  YcsbResult res;
  auto st = std::make_shared<DriverState>(cfg);

  // ---- Load phase: one closed-loop loader inserts all records. -----------
  const double load_start = sim.now();
  auto load_next = std::make_shared<std::function<void(std::uint64_t)>>();
  *load_next = [st, &kv, load_next](std::uint64_t i) {
    if (i >= st->cfg.records) return;
    kv.client_put(0, st->key_for(i), st->make_value(),
                  [load_next, i](bool) { (*load_next)(i + 1); });
  };
  (*load_next)(0);
  sim.run();
  res.load_seconds = sim.now() - load_start;
  kv.mutable_stats() = KvStats{};  // run-phase stats only

  // ---- Run phase: closed-loop clients spread over the cluster ranks. -----
  const double run_start = sim.now();
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    const std::size_t rank = c % kv.nranks();
    sim.schedule_after(0.0, [st, &kv, &sim, rank] { client_step(st, kv, sim, rank); });
  }
  sim.run();
  const double end = st->finish_time > 0 ? st->finish_time : sim.now();
  res.run_seconds = end - run_start;
  res.throughput_ops =
      res.run_seconds > 0 ? static_cast<double>(cfg.operations) / res.run_seconds : 0;
  res.retries = st->retries;
  res.ops_failed_final = st->ops_failed_final;
  res.stats = kv.stats();
  return res;
}

}  // namespace hpbdc::kvstore
