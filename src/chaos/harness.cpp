#include "chaos/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "dataflow/context.hpp"
#include "obs/metrics.hpp"
#include "plan/cost.hpp"
#include "plan/lower.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::chaos {

namespace {

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

}  // namespace

std::string format_replay(const ChaosConfig& cfg) {
  char mask[32];
  std::snprintf(mask, sizeof(mask), "0x%llx",
                static_cast<unsigned long long>(cfg.fault_mask));
  std::string out;
  out += "pseed=" + std::to_string(cfg.plan_seed);
  out += ",fseed=" + std::to_string(cfg.fault_seed);
  out += ",nodes=" + std::to_string(cfg.plan_nodes);
  out += ",rows=" + std::to_string(cfg.rows);
  out += ",tasks=" + std::to_string(cfg.ntasks);
  out += ",cluster=" + std::to_string(cfg.cluster_nodes);
  out += ",mask=" + std::string(mask);
  out += ",bug=" + std::to_string(cfg.inject_lineage_bug ? 1 : 0);
  if (cfg.transport != dist::TransportKind::kPull) out += ",tp=1";
  if (cfg.ec_checkpoints) out += ",ec=1";
  if (cfg.inject_ec_placement_bug) out += ",ecbug=1";
  if (cfg.cost_based) out += ",cb=1";
  return out;
}

ChaosConfig parse_replay(const std::string& spec) {
  ChaosConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
      throw std::invalid_argument("chaos replay: malformed token '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    std::uint64_t num = 0;
    try {
      num = std::stoull(val, nullptr, 0);  // base 0: mask accepts 0x...
    } catch (const std::exception&) {
      throw std::invalid_argument("chaos replay: bad value in '" + tok + "'");
    }
    if (key == "pseed") {
      cfg.plan_seed = num;
    } else if (key == "fseed") {
      cfg.fault_seed = num;
    } else if (key == "nodes") {
      cfg.plan_nodes = static_cast<std::size_t>(num);
    } else if (key == "rows") {
      cfg.rows = num;
    } else if (key == "tasks") {
      cfg.ntasks = static_cast<std::size_t>(num);
    } else if (key == "cluster") {
      cfg.cluster_nodes = static_cast<std::size_t>(num);
    } else if (key == "mask") {
      cfg.fault_mask = num;
    } else if (key == "bug") {
      cfg.inject_lineage_bug = num != 0;
    } else if (key == "tp") {
      cfg.transport =
          num != 0 ? dist::TransportKind::kPush : dist::TransportKind::kPull;
    } else if (key == "ec") {
      cfg.ec_checkpoints = num != 0;
    } else if (key == "ecbug") {
      cfg.inject_ec_placement_bug = num != 0;
    } else if (key == "cb") {
      cfg.cost_based = num != 0;
    } else {
      throw std::invalid_argument("chaos replay: unknown key '" + key + "'");
    }
  }
  if (cfg.plan_nodes == 0 || cfg.ntasks == 0 || cfg.cluster_nodes < 2) {
    throw std::invalid_argument("chaos replay: degenerate configuration");
  }
  return cfg;
}

sim::FaultPlan make_fault_plan(std::uint64_t seed, const FaultGenOptions& opt) {
  Rng rng(mix_seed(seed, 0xFA017));
  sim::FaultPlan plan;
  auto pick_node = [&rng, &opt] {
    std::size_t n = rng.next_below(opt.nodes);
    while (n == opt.protect) n = rng.next_below(opt.nodes);
    return n;
  };
  // Kill/recover pairs in strictly sequential windows: at most one node down
  // at any time, and every kill recovers after a bounded downtime — the
  // survivability contract the differential oracle's success check rests on.
  if (opt.nodes >= 2 && opt.max_kills > 0) {
    const auto kills = rng.next_below(opt.max_kills + 1);
    double cursor = 0.15;
    for (std::uint64_t i = 0; i < kills; ++i) {
      const double start =
          cursor + rng.next_double() * (opt.horizon / static_cast<double>(kills + 1));
      const double down = opt.min_downtime +
                          rng.next_double() * (opt.max_downtime - opt.min_downtime);
      std::size_t node;
      if (opt.target_leader && rng.next_bool(0.6)) {
        node = sim::FaultInjector::kLeaderTarget;
      } else {
        node = pick_node();
      }
      plan.kill(start, node).recover(start + down, node);
      cursor = start + down + 0.2;
    }
  }
  if (rng.next_bool(0.7)) {
    const double t0 = 0.05 + rng.next_double() * opt.horizon * 0.7;
    const double p = 0.05 + rng.next_double() * (opt.max_loss - 0.05);
    plan.loss_burst(t0, t0 + 0.2 + rng.next_double() * 1.0, p);
  }
  if (rng.next_bool(0.6)) {
    const double t0 = 0.05 + rng.next_double() * opt.horizon * 0.7;
    const double jitter = 0.0005 + rng.next_double() * opt.max_jitter;
    plan.reorder_burst(t0, t0 + 0.2 + rng.next_double() * 1.0, jitter);
  }
  if (rng.next_bool(0.5)) {
    const double t0 = 0.05 + rng.next_double() * opt.horizon * 0.7;
    const double extra = 0.02 + rng.next_double() * (opt.max_extra_delay - 0.02);
    plan.delay_burst(t0, t0 + 0.2 + rng.next_double() * 0.8, extra);
  }
  if (opt.nodes >= 2 && opt.max_stragglers > 0) {
    const auto slows = rng.next_below(opt.max_stragglers + 1);
    for (std::uint64_t i = 0; i < slows; ++i) {
      const std::size_t node = pick_node();
      const double t0 = 0.05 + rng.next_double() * opt.horizon * 0.6;
      const double speed =
          opt.min_speed + rng.next_double() * (opt.max_speed - opt.min_speed);
      plan.slow(t0, node, speed).restore_speed(t0 + 1.0 + rng.next_double() * 2.0,
                                               node);
    }
  }
  if (opt.max_dfs_losses > 0) {
    const auto losses = rng.next_below(opt.max_dfs_losses + 1);
    for (std::uint64_t i = 0; i < losses; ++i) {
      plan.dfs_replica_loss(0.1 + rng.next_double() * opt.horizon);
    }
  }
  // EC draws come LAST: plans generated with the knobs off consume exactly
  // the historical RNG stream, keeping archived replay masks valid.
  if (opt.max_shard_losses > 0) {
    const auto losses = rng.next_below(opt.max_shard_losses + 1);
    for (std::uint64_t i = 0; i < losses; ++i) {
      plan.dfs_shard_loss_above_m(0.3 + rng.next_double() * opt.horizon);
    }
  }
  if (opt.max_repair_kicks > 0) {
    const auto kicks = rng.next_below(opt.max_repair_kicks + 1);
    for (std::uint64_t i = 0; i < kicks; ++i) {
      plan.dfs_repair_race(0.3 + rng.next_double() * opt.horizon);
    }
  }
  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const sim::FaultEvent& a, const sim::FaultEvent& b) { return a.at < b.at; });
  return plan;
}

std::vector<KillEvent> make_kill_schedule(std::uint64_t seed, std::size_t nodes,
                                          std::size_t protect, std::size_t kills,
                                          double horizon, double min_downtime,
                                          double max_downtime) {
  if (nodes < 2 || protect >= nodes) {
    throw std::invalid_argument("make_kill_schedule: need >= 2 nodes, protect in range");
  }
  if (min_downtime <= 0 || max_downtime < min_downtime || horizon <= 0) {
    throw std::invalid_argument("make_kill_schedule: degenerate window");
  }
  Rng rng(mix_seed(seed, 0x5EACF));
  std::vector<KillEvent> out;
  double cursor = 0.15;
  for (std::size_t i = 0; i < kills; ++i) {
    KillEvent ev;
    ev.node = rng.next_below(nodes);
    while (ev.node == protect) ev.node = rng.next_below(nodes);
    ev.kill_time =
        cursor + rng.next_double() * (horizon / static_cast<double>(kills + 1));
    ev.recover_time = ev.kill_time + min_downtime +
                      rng.next_double() * (max_downtime - min_downtime);
    cursor = ev.recover_time + 0.2;  // sequential windows: one node down max
    out.push_back(ev);
  }
  return out;
}

ChaosOutcome run_chaos_once(const ChaosConfig& cfg, Executor& pool,
                            obs::MetricsRegistry* plan_metrics) {
  ChaosOutcome out;
  auto fail = [&out](const std::string& msg) {
    if (out.passed) {
      out.passed = false;
      out.violation = msg;
    }
  };

  const LogicalPlan raw = make_plan(cfg.plan_seed, cfg.plan_nodes, cfg.rows);
  out.plan = raw.describe();

  // ---- trusted side: fault-free shared-memory run + conservation checks --
  // The RAW plan is the reference; the optimizer never touches it.
  obs::MetricsRegistry ref_metrics;
  dataflow::Context::Options ctx_opts;
  ctx_opts.metrics = &ref_metrics;
  dataflow::Context ctx(pool, ctx_opts);
  const std::vector<Row> expected_rows = run_reference(raw, ctx);
  const Bytes expected = canonical_bytes(expected_rows);
  out.result_rows = expected_rows.size();

  const auto cval = [&ref_metrics](const char* name) {
    return ref_metrics.counter(name).value();
  };
  if (cval("dataflow.map.records_in") != cval("dataflow.map.records_out")) {
    fail("conservation: map records_in != records_out");
  }
  if (cval("dataflow.filter.records_out") > cval("dataflow.filter.records_in")) {
    fail("conservation: filter emitted more records than it read");
  }
  if (cval("shuffle.records_moved") > cval("shuffle.records_in")) {
    fail("conservation: shuffle moved more records than entered it");
  }

  // ---- optimizer under test: every backend executes the OPTIMIZED plan ---
  // Fault-free local run first: a mismatch here is an unsound rewrite,
  // isolated from any scheduling/recovery effect. A plain Context (no
  // metrics) keeps the conservation counters above untouched. With
  // cost_based set the plan under test additionally carries the stats
  // layer's physical hints (plan::cost_optimize).
  const LogicalPlan opt = plan::optimize(raw, &out.opt_stats, plan_metrics);
  const LogicalPlan plan = cfg.cost_based ? plan::cost_optimize(raw) : opt;
  out.optimized = plan.describe();
  dataflow::Context opt_ctx(pool);
  if (canonical_bytes(plan::lower_local(plan, opt_ctx)) != expected) {
    fail("optimizer: optimized plan differs from the raw reference locally");
  }
  // Columnar backend oracle: the vectorized lowering of the plan under test
  // must reproduce the row reference bit-for-bit on every run.
  if (canonical_bytes(plan::lower_columnar(plan, pool)) != expected) {
    fail("columnar: vectorized result differs from the row reference");
  }

  // ---- system under test: dist runtime under the fault schedule ----------
  sim::Simulator sim;
  sim::NetworkConfig nc;
  nc.nodes = cfg.cluster_nodes;
  nc.topology = sim::Topology::kStar;
  nc.loss_seed = mix_seed(cfg.fault_seed, 1);
  sim::Network net(sim, nc);
  sim::Comm comm(sim, net);
  sim::DfsConfig dfc;
  if (cfg.ec_checkpoints) {
    // RS(3, 2) fits the default 6-node cluster with one node down; repair
    // runs in the background, throttled, so it races reads and the
    // dfs_repair_race fault meaningfully.
    dfc.ec_data_shards = 3;
    dfc.ec_parity_shards = 2;
    dfc.auto_repair_delay = 0.5;
    dfc.repair_bandwidth_bps = 100e6;
  }
  sim::Dfs dfs(comm, dfc);
  if (cfg.inject_ec_placement_bug) dfs.set_test_collapse_ec_placement(true);

  dist::DistConfig dc;
  dc.driver = 0;
  dc.slots_per_node = 2;
  dc.heartbeat_interval = 0.1;
  dc.heartbeat_timeout = 0.5;
  dc.heartbeat_jitter = 0.01;
  dc.attempt_timeout = 10.0;  // >> any genuine attempt at chaos sizes
  dc.max_task_attempts = 8;
  dc.speculate = true;  // injected stragglers should race speculative copies
  dc.seed = mix_seed(cfg.plan_seed, cfg.fault_seed);
  dist::DistRuntime rt(comm, dc, &dfs);
  if (cfg.inject_lineage_bug) rt.set_test_disable_lineage_recompute(true);

  FaultGenOptions fo;
  fo.nodes = cfg.cluster_nodes;
  fo.protect = dc.driver;
  if (cfg.ec_checkpoints) {
    fo.max_shard_losses = 2;
    fo.max_repair_kicks = 1;
  }
  const sim::FaultPlan faults = make_fault_plan(cfg.fault_seed, fo);
  out.fault_events = faults.events.size();

  sim::FaultTargets targets;
  targets.kill_node = [&rt, &sim](std::size_t n) { rt.kill_node_at(n, sim.now()); };
  targets.recover_node = [&rt, &sim](std::size_t n) {
    rt.recover_node_at(n, sim.now());
  };
  targets.set_node_speed = [&rt, &sim](std::size_t n, double s) {
    rt.set_node_speed_at(n, s, sim.now());
  };
  targets.net = &net;
  targets.dfs = &dfs;
  sim::FaultInjector injector(sim, targets, mix_seed(cfg.fault_seed, 2));
  injector.arm(faults, cfg.fault_mask);

  bool done = false;
  dist::JobResult res;
  dist::DistStats at_done;
  // Push runs also flip eligible joins to broadcast lowering so the fault
  // schedule covers multicast streams; pull runs keep the historical
  // lowering and default options — the event stream stays bit-identical.
  dist::RuntimeOptions ro;
  ro.transport = cfg.transport;
  if (cfg.ec_checkpoints) {
    ro.checkpoint_policy = sim::StoragePolicy::kErasureCoded;
  }
  plan::LowerDistOptions lo;
  if (cfg.transport == dist::TransportKind::kPush) lo.broadcast_join_rows = 4096;
  rt.submit(make_dist_job(plan, cfg.ntasks, lo), ro,
            [&](const dist::JobResult& r) {
              res = r;
              done = true;
              at_done = rt.stats();
            });
  // Drive in slices so a finished job doesn't burn the whole horizon on
  // idle heartbeats; after completion, a short grace window surfaces any
  // straggling task events for the quiescence check.
  while (!done && sim.now() < cfg.horizon) {
    sim.run_until(std::min(cfg.horizon, sim.now() + 5.0));
  }
  if (done) sim.run_until(sim.now() + 2.0);
  out.fired = injector.fired();
  out.dist_stats = rt.stats();

  // EC placement oracle (checked even when the job hung: the invariant is
  // about storage state, not completion): no node may hold live shards of
  // two different slots of one stripe — the anti-affinity guarantee the
  // (k, m) loss tolerance rests on.
  if (cfg.ec_checkpoints) {
    for (const auto& name : dfs.ec_file_names()) {
      for (std::size_t b = 0; b < dfs.block_count(name) && out.passed; ++b) {
        std::vector<std::size_t> live_nodes;
        for (const auto& holders : dfs.stripe_locations(name, b)) {
          for (auto n : holders) {
            if (dfs.node_down(n)) continue;
            if (std::find(live_nodes.begin(), live_nodes.end(), n) !=
                live_nodes.end()) {
              fail("ec_placement: two live shards of a stripe share a node");
            }
            live_nodes.push_back(n);
          }
        }
      }
    }
  }

  if (!done) {
    fail("liveness: job not done within the simulated horizon");
    return out;
  }
  out.makespan = res.makespan;
  if (!res.ok) {
    fail("success: survivable fault schedule aborted the job");
  } else if (canonical_bytes(rows_from_result(res)) != expected) {
    fail("differential: dist result differs from the fault-free reference");
  }
  if (at_done.max_failures_one_task > dc.max_task_attempts) {
    fail("budget: a task exceeded max_task_attempts charged failures");
  }
  // Quiescence: completion freezes the task counters; late events may only
  // move stale_events_ignored.
  if (out.dist_stats.tasks_launched != at_done.tasks_launched ||
      out.dist_stats.tasks_completed != at_done.tasks_completed) {
    fail("quiescence: task activity after job completion");
  }
  return out;
}

ShrinkResult shrink(const ChaosConfig& failing, Executor& pool) {
  ShrinkResult sr;
  ChaosConfig cur = failing;
  ChaosOutcome cur_out = run_chaos_once(cur, pool);
  sr.runs++;
  if (cur_out.passed) {
    throw std::logic_error("chaos::shrink: the input configuration passes");
  }

  // Phase 1: smallest plan-node count that still fails (plans are
  // prefix-stable, so this prunes DAG suffix nodes).
  for (std::size_t n = 1; n < cur.plan_nodes; ++n) {
    ChaosConfig c = cur;
    c.plan_nodes = n;
    ChaosOutcome o = run_chaos_once(c, pool);
    sr.runs++;
    if (!o.passed) {
      cur = c;
      cur_out = o;
      break;
    }
  }

  // Phase 2: delta-debug the fault schedule — drop one event at a time,
  // keep any removal that still fails, iterate to a fixpoint.
  constexpr std::size_t kRunBudget = 96;
  bool changed = true;
  while (changed && sr.runs < kRunBudget) {
    changed = false;
    const std::size_t nev = std::min<std::size_t>(cur_out.fault_events, 64);
    for (std::size_t i = 0; i < nev && sr.runs < kRunBudget; ++i) {
      if ((cur.fault_mask & (1ULL << i)) == 0) continue;
      ChaosConfig c = cur;
      c.fault_mask &= ~(1ULL << i);
      ChaosOutcome o = run_chaos_once(c, pool);
      sr.runs++;
      if (!o.passed) {
        cur = c;
        cur_out = o;
        changed = true;
      }
    }
  }
  // Normalize: bits above the schedule length arm nothing.
  if (cur_out.fault_events < 64) {
    cur.fault_mask &= (1ULL << cur_out.fault_events) - 1;
  }
  sr.minimal = cur;
  sr.outcome = cur_out;
  sr.replay = format_replay(cur);
  return sr;
}

}  // namespace hpbdc::chaos
