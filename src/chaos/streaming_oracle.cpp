#include "chaos/streaming_oracle.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "chaos/harness.hpp"
#include "chaos/plan_gen.hpp"
#include "dstream/runtime.hpp"
#include "dstream/streaming.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::chaos {

namespace {

/// Windowing knobs shared by every oracle run: a ~4 s stream (rows / rate)
/// of tumbling half-second windows, so a kill schedule over (0, 3) always
/// lands mid-stream and usually mid-window.
dstream::StreamingOptions stream_opts(const StreamChaosConfig& cfg) {
  dstream::StreamingOptions o;
  o.ntasks = cfg.ntasks;
  o.rate = 48.0;
  o.window = 0.5;
  if (cfg.ec_checkpoints) o.checkpoint_policy = sim::StoragePolicy::kErasureCoded;
  return o;
}

struct RunResult {
  bool done = false;
  dstream::StreamResult result;
  dstream::StreamStats stats;
};

/// One distributed execution on a fresh simulated cluster, with an optional
/// kill schedule applied through the runtime's ground-truth fault hooks.
RunResult run_distributed(const StreamChaosConfig& cfg,
                          const dstream::StreamJobSpec& spec,
                          const std::vector<KillEvent>& kills) {
  sim::Simulator sim;
  sim::NetworkConfig nc;
  nc.nodes = cfg.cluster_nodes;
  nc.topology = sim::Topology::kStar;
  sim::Network net(sim, nc);
  sim::Comm comm(sim, net);
  sim::DfsConfig dfc;
  if (cfg.ec_checkpoints) {
    // RS(3, 2): anti-affine placement over >= 5 live nodes means a single
    // node outage costs at most one shard per stripe — well inside the
    // m = 2 tolerance, so recovery reads degrade instead of failing.
    dfc.ec_data_shards = 3;
    dfc.ec_parity_shards = 2;
    dfc.auto_repair_delay = 0.5;
    dfc.repair_bandwidth_bps = 100e6;
  }
  sim::Dfs dfs(comm, dfc);
  dstream::StreamConfig sc;
  sc.buggy_restore = cfg.inject_restore_bug;
  dstream::StreamRuntime rt(comm, sc, &dfs);
  for (const KillEvent& k : kills) {
    rt.kill_node_at(k.node, k.kill_time);
    rt.recover_node_at(k.node, k.recover_time);
  }
  dist::RuntimeOptions ro;
  ro.transport = cfg.transport;
  RunResult rr;
  rt.submit(spec, ro, [&](const dstream::StreamResult& r) {
    rr.result = r;
    rr.done = true;
    rr.stats = rt.stats();
  });
  sim.run_until(cfg.horizon);
  if (!rr.done) rr.stats = rt.stats();
  return rr;
}

}  // namespace

std::string format_stream_replay(const StreamChaosConfig& cfg) {
  std::string out;
  out += "spseed=" + std::to_string(cfg.plan_seed);
  out += ",skseed=" + std::to_string(cfg.kill_seed);
  out += ",nodes=" + std::to_string(cfg.plan_nodes);
  out += ",rows=" + std::to_string(cfg.rows);
  out += ",tasks=" + std::to_string(cfg.ntasks);
  out += ",cluster=" + std::to_string(cfg.cluster_nodes);
  out += ",kills=" + std::to_string(cfg.kills);
  if (cfg.inject_restore_bug) out += ",bug=1";
  if (cfg.transport != dist::TransportKind::kPush) out += ",tp=0";
  if (cfg.ec_checkpoints) out += ",ec=1";
  return out;
}

StreamChaosConfig parse_stream_replay(const std::string& spec) {
  StreamChaosConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
      throw std::invalid_argument("stream replay: malformed token '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    std::uint64_t num = 0;
    try {
      num = std::stoull(tok.substr(eq + 1), nullptr, 0);
    } catch (const std::exception&) {
      throw std::invalid_argument("stream replay: bad value in '" + tok + "'");
    }
    if (key == "spseed") {
      cfg.plan_seed = num;
    } else if (key == "skseed") {
      cfg.kill_seed = num;
    } else if (key == "nodes") {
      cfg.plan_nodes = static_cast<std::size_t>(num);
    } else if (key == "rows") {
      cfg.rows = num;
    } else if (key == "tasks") {
      cfg.ntasks = static_cast<std::size_t>(num);
    } else if (key == "cluster") {
      cfg.cluster_nodes = static_cast<std::size_t>(num);
    } else if (key == "kills") {
      cfg.kills = static_cast<std::size_t>(num);
    } else if (key == "bug") {
      cfg.inject_restore_bug = num != 0;
    } else if (key == "tp") {
      cfg.transport =
          num != 0 ? dist::TransportKind::kPush : dist::TransportKind::kPull;
    } else if (key == "ec") {
      cfg.ec_checkpoints = num != 0;
    } else {
      throw std::invalid_argument("stream replay: unknown key '" + key + "'");
    }
  }
  if (cfg.plan_nodes == 0 || cfg.ntasks == 0 || cfg.cluster_nodes < 2) {
    throw std::invalid_argument("stream replay: degenerate configuration");
  }
  return cfg;
}

StreamChaosOutcome run_stream_chaos_once(const StreamChaosConfig& cfg) {
  StreamChaosOutcome out;
  const LogicalPlan plan = make_plan(cfg.plan_seed, cfg.plan_nodes, cfg.rows);
  out.plan = plan.describe();
  const dstream::StreamJobSpec spec = lower_streaming(plan, stream_opts(cfg));

  const Bytes want =
      dstream::canonical_stream_bytes(dstream::reference_streaming(spec));

  // Fault-free distributed run: catches lowering/runtime bugs independent of
  // recovery, and doubles as the bit-identical baseline for the faulted run.
  const RunResult clean = run_distributed(cfg, spec, {});
  if (!clean.done) {
    out.passed = false;
    out.violation = "liveness: fault-free run exceeded the horizon";
    return out;
  }
  const Bytes clean_bytes = dstream::canonical_stream_bytes(clean.result.rows());
  if (clean_bytes != want) {
    out.passed = false;
    out.violation = "fault-free distributed output differs from reference";
    return out;
  }

  // Kills land in (0, 3): the stream runs ~4 s, so every kill hits a live
  // window. Downtimes use the harness defaults (min 0.8 s), which keep each
  // outage comfortably above the runtime's heartbeat timeout.
  const std::vector<KillEvent> kills = make_kill_schedule(
      cfg.kill_seed, cfg.cluster_nodes, /*protect=*/0, cfg.kills, /*horizon=*/3.0);
  out.kills_scheduled = kills.size();
  const RunResult faulted = run_distributed(cfg, spec, kills);
  out.epochs_completed = faulted.stats.epochs_completed;
  out.recoveries = faulted.stats.recoveries;
  out.makespan = faulted.result.makespan;
  out.result_rows = faulted.result.committed.size();
  if (!faulted.done) {
    out.passed = false;
    out.violation = "liveness: faulted run exceeded the horizon";
    return out;
  }
  if (faulted.stats.epochs_completed == 0) {
    out.passed = false;
    out.violation = "progress: faulted run completed zero epochs";
    return out;
  }
  const Bytes faulted_bytes =
      dstream::canonical_stream_bytes(faulted.result.rows());
  if (faulted_bytes != want) {
    out.passed = false;
    out.violation = "faulted output differs from reference (exactly-once broken)";
    return out;
  }
  if (faulted_bytes != clean_bytes) {
    out.passed = false;
    out.violation = "faulted output not bit-identical to the fault-free run";
    return out;
  }
  return out;
}

StreamShrinkResult shrink_stream(const StreamChaosConfig& failing) {
  StreamShrinkResult sr;
  StreamChaosConfig cur = failing;
  StreamChaosOutcome cur_out = run_stream_chaos_once(cur);
  ++sr.runs;
  if (cur_out.passed) {
    throw std::logic_error("shrink_stream: input configuration passes");
  }
  // Pass 1: prune plan suffix nodes (make_plan is prefix-stable).
  while (cur.plan_nodes > 1) {
    StreamChaosConfig cand = cur;
    --cand.plan_nodes;
    const StreamChaosOutcome o = run_stream_chaos_once(cand);
    ++sr.runs;
    if (!o.passed) {
      cur = cand;
      cur_out = o;
    } else {
      break;
    }
  }
  // Pass 2: drop kills one at a time.
  while (cur.kills > 0) {
    StreamChaosConfig cand = cur;
    --cand.kills;
    const StreamChaosOutcome o = run_stream_chaos_once(cand);
    ++sr.runs;
    if (!o.passed) {
      cur = cand;
      cur_out = o;
    } else {
      break;
    }
  }
  sr.minimal = cur;
  sr.outcome = std::move(cur_out);
  sr.replay = format_stream_replay(sr.minimal);
  return sr;
}

}  // namespace hpbdc::chaos
