#pragma once
// The chaos harness proper: ties a random logical plan (plan_gen) to a
// random fault schedule (sim::FaultPlan) on a simulated cluster, runs the
// dist runtime under fire, and checks a differential oracle against the
// fault-free shared-memory execution. Every run also exercises the plan
// optimizer (plan/optimizer.hpp): the UNOPTIMIZED plan on the shared-memory
// engine is the trusted reference, and the OPTIMIZED plan executes on every
// backend — locally fault-free (any mismatch is an unsound rewrite), on the
// vectorized columnar backend (plan::lower_columnar; a mismatch is a
// columnar kernel bug), and on the dist runtime under faults (a mismatch is
// a rewrite or recovery bug). With cost_based set, the plan under test is
// plan::cost_optimize's output instead, so the stats/cost layer's physical
// hints (build side, skew salting, filter reorder) face the same oracles.
// The checks, in order:
//   * liveness — the job completes within a generous simulated horizon,
//   * success  — the survivable fault schedule never aborts the job,
//   * equality — the result row multiset is bit-for-bit the reference's,
//   * budget   — no task consumed more than max_task_attempts charged
//                failures,
//   * quiescence — tasks_launched/completed freeze at job completion (late
//                events only move the stale_events_ignored counter),
//   * conservation — on the reference run, map records_in == records_out,
//                filters never grow, shuffles never move more records than
//                entered them.
// On violation the shrinker prunes DAG suffix nodes, then delta-debugs the
// fault-event mask, and emits a one-line replay spec that chaos_test and
// chaos_demo accept for exact reproduction.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan_gen.hpp"
#include "dist/runtime.hpp"
#include "plan/optimizer.hpp"
#include "sim/fault.hpp"

namespace hpbdc::chaos {

/// Everything one chaos run derives from; (plan_seed, fault_seed, sizes,
/// fault_mask) is the whole replay state — see format_replay/parse_replay.
struct ChaosConfig {
  std::uint64_t plan_seed = 1;
  std::uint64_t fault_seed = 1;
  std::size_t plan_nodes = 5;
  std::uint64_t rows = 256;       // rows per source node
  std::size_t ntasks = 4;         // tasks per dist stage
  std::size_t cluster_nodes = 6;  // node 0 hosts the driver
  std::uint64_t fault_mask = ~std::uint64_t{0};  // bit i arms fault event i
  double horizon = 600.0;  // liveness watchdog (simulated seconds)
  /// Seeded-bug hook: disable lineage recompute in the runtime so the
  /// harness has a known-broken target to catch and shrink.
  bool inject_lineage_bug = false;
  /// Shuffle transport for the dist side. Push runs additionally lower
  /// eligible joins as broadcast (plan::LowerDistOptions) so kills land on
  /// nodes holding in-flight flow segments, unicast and multicast both.
  dist::TransportKind transport = dist::TransportKind::kPull;
  /// Store stage checkpoints erasure coded (RS(3,2), background repair on)
  /// and extend the fault schedule with shard-loss-above-m and repair-race
  /// events. Adds the EC placement oracle: no two live shards of a stripe
  /// may ever share a node.
  bool ec_checkpoints = false;
  /// Seeded-bug hook: collapse EC shard placement onto a single node
  /// (Dfs::set_test_collapse_ec_placement), the known-broken target the
  /// ec= replay round-trip catches and shrinks. Implies ec_checkpoints
  /// semantics only when ec_checkpoints is also set.
  bool inject_ec_placement_bug = false;
  /// Run plan::cost_optimize instead of plan::optimize as the plan under
  /// test: its stats-driven physical hints (join build side, skew-salt
  /// fanout, selectivity-ordered filters) must be invisible to every
  /// backend's result multiset.
  bool cost_based = false;
};

/// One line, e.g. "pseed=3,fseed=9,nodes=5,rows=256,tasks=4,cluster=6,
/// mask=0xffffffffffffffff,bug=0". Trailing ",tp=1" / ",ec=1" / ",ecbug=1"
/// / ",cb=1" are appended ONLY for non-default configs (push transport, EC
/// checkpoints, planted EC placement bug, cost-based plan), so archived
/// replay specs stay
/// byte-identical. parse_replay throws std::invalid_argument on malformed
/// specs; format/parse round-trip exactly.
std::string format_replay(const ChaosConfig& cfg);
ChaosConfig parse_replay(const std::string& spec);

struct FaultGenOptions {
  std::size_t nodes = 6;
  std::size_t protect = 0;  // never killed/slowed (the driver)
  double horizon = 5.0;     // events land in (0, horizon)
  std::size_t max_kills = 2;
  double min_downtime = 0.8, max_downtime = 3.0;
  double max_loss = 0.3;             // loss-burst probability ceiling
  double max_jitter = 0.004;         // reorder-burst delivery jitter (s)
  double max_extra_delay = 0.12;     // heartbeat-delay burst (s); keep well
                                     // under the detector timeout
  std::size_t max_stragglers = 2;
  double min_speed = 0.2, max_speed = 0.6;
  std::size_t max_dfs_losses = 2;
  /// Kill the current leader instead of a fixed node (Raft harness).
  bool target_leader = false;
  /// EC fault classes; both default 0 so legacy plans (and their replay
  /// masks) stay byte-identical — the generator draws for these AFTER every
  /// pre-existing draw.
  std::size_t max_shard_losses = 0;  // dfs_shard_loss_above_m events
  std::size_t max_repair_kicks = 0;  // dfs_repair_race events
};

/// Seed-deterministic fault schedule. Survivability guarantees baked into
/// the generator (the oracle depends on them): at most one node down at a
/// time, every kill paired with a bounded-downtime recovery, loss bursts
/// bounded in rate and duration, delay bursts below the failure-detector
/// timeout, and DFS losses never dropping a block's last replica (enforced
/// at fire time). At most 64 events so the shrink mask covers them all.
sim::FaultPlan make_fault_plan(std::uint64_t seed, const FaultGenOptions& opt);

/// One executor kill with its paired recovery, as plain data.
struct KillEvent {
  std::size_t node = 0;
  double kill_time = 0;
  double recover_time = 0;
};

/// Seed-deterministic executor-kill schedule for service-level campaigns
/// (src/serve): exactly `kills` kill/recover pairs in strictly sequential
/// windows (at most one node down at any time), never touching `protect`,
/// spread over (0, horizon). Same survivability contract as the kill pairs
/// of make_fault_plan, but returned as data so callers driving a
/// dist::JobSlotPool — where a kill must fan out across every slot — can
/// apply it through kill_node_at/recover_node_at.
std::vector<KillEvent> make_kill_schedule(std::uint64_t seed, std::size_t nodes,
                                          std::size_t protect, std::size_t kills,
                                          double horizon,
                                          double min_downtime = 0.8,
                                          double max_downtime = 3.0);

struct ChaosOutcome {
  bool passed = true;
  std::string violation;  // first failed check; empty when passed
  std::string plan;       // LogicalPlan::describe() of the raw plan
  std::string optimized;  // describe() of the optimized plan actually run
  plan::OptimizerStats opt_stats;  // per-rule application counts
  std::size_t fault_events = 0;    // schedule size before masking
  std::array<std::uint64_t, sim::kFaultKindCount> fired{};
  dist::DistStats dist_stats;
  std::size_t result_rows = 0;
  double makespan = 0;
};

/// One full differential run. `pool` executes the reference side. When
/// `plan_metrics` is non-null the optimizer bumps its
/// plan.rules_applied.<rule> / plan.stages_eliminated counters there.
ChaosOutcome run_chaos_once(const ChaosConfig& cfg, Executor& pool,
                            obs::MetricsRegistry* plan_metrics = nullptr);

struct ShrinkResult {
  ChaosConfig minimal;    // smallest configuration that still fails
  ChaosOutcome outcome;   // its outcome (passed == false)
  std::size_t runs = 0;   // shrink attempts spent
  std::string replay;     // format_replay(minimal)
};

/// Shrink a failing config to a minimal repro: first prune plan suffix
/// nodes (plans are prefix-stable), then delta-debug the fault-event mask
/// one event at a time to a fixpoint. The input must fail; throws
/// std::logic_error if it passes.
ShrinkResult shrink(const ChaosConfig& failing, Executor& pool);

}  // namespace hpbdc::chaos
