#pragma once
// Linearizability checking for the replicated kvstore under chaos.
//
// The checker is the Wing & Gong algorithm on a per-key register history:
// search for a total order of operations consistent with (a) real-time
// precedence (op A before op B whenever A responded before B invoked) and
// (b) register semantics (every read returns the most recently linearized
// write, or 0 if none). Incomplete writes (invoked, never acknowledged) may
// be linearized at any point after invocation or dropped entirely;
// incomplete reads are ignored. The search memoizes (linearized-set mask,
// register value) states, which keeps the bounded histories the harness
// produces cheap to check.
//
// run_raft_chaos drives a RaftCluster with a leader-targeting FaultPlan,
// issues writes and reads as log commands (reads are proposed as unique
// marker entries so a read's value is derived from its committed log
// position — naive leader-local reads are NOT linearizable under leader
// churn and would make the checker fail the protocol unfairly), then checks
// the resulting history plus the committed-prefix agreement invariant.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.hpp"

namespace hpbdc::chaos {

enum class KvOpKind : std::uint8_t { kWrite, kRead };

struct KvOp {
  KvOpKind kind = KvOpKind::kWrite;
  std::uint64_t key = 0;
  std::uint64_t value = 0;  // written value, or the value the read returned
  double invoke = 0;        // invocation time (seconds)
  double respond = 0;       // response time; meaningful only when complete
  bool complete = false;
};

/// True iff `history` is linearizable as a set of independent per-key
/// registers initialized to 0. On failure, `why` (if non-null) names the
/// offending key. Throws std::invalid_argument if any single key carries
/// more than 64 operations (the memo mask width).
bool linearizable(const std::vector<KvOp>& history, std::string* why = nullptr);

struct RaftChaosOptions {
  std::uint64_t seed = 1;
  std::size_t nodes = 5;
  std::size_t ops = 24;      // client operations to issue
  std::uint64_t keys = 4;    // key domain
  double horizon = 40.0;     // simulated seconds to run
  double op_gap = 0.35;      // mean gap between client ops (exponential)
};

struct RaftChaosOutcome {
  bool passed = true;
  std::string violation;
  std::size_t ops_complete = 0;
  std::size_t ops_incomplete = 0;
  std::array<std::uint64_t, sim::kFaultKindCount> fired{};
  std::vector<KvOp> history;
};

/// One seeded Raft chaos run: leader kills/recoveries plus message-level
/// faults while clients write and read. Checks (1) committed-prefix
/// agreement across all nodes and (2) linearizability of the client history.
RaftChaosOutcome run_raft_chaos(const RaftChaosOptions& opt);

}  // namespace hpbdc::chaos
