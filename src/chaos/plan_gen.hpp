#pragma once
// Random logical-plan generation for the chaos harness: seed-deterministic
// DAGs of map / filter / flat_map / reduce_by_key / join / sort_by /
// distinct operators over synthetic (key, value) rows, executable on BOTH
// the shared-memory dataflow engine (the trusted oracle) and the
// distributed runtime (the system under test). The two executions share the
// exact same per-operator row functions, so any multiset difference in the
// final rows is a scheduling/recovery bug, not an operator-semantics
// mismatch.
//
// Plans are PREFIX-STABLE: node i is derived only from (seed, i), so
// make_plan(seed, n - 1) is make_plan(seed, n) minus its last node. The
// shrinker leans on this — reducing the node count prunes DAG suffixes
// without perturbing the remaining plan.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/serialize.hpp"
#include "dataflow/dataset.hpp"
#include "dist/job.hpp"

namespace hpbdc::chaos {

/// Every edge in a chaos plan carries (key, value) rows, so any operator's
/// output can feed any other operator.
using Row = std::pair<std::uint64_t, std::uint64_t>;

enum class OpKind : std::uint8_t {
  kSource,       // seeded synthetic rows
  kMap,          // key and value remix (salted hash)
  kFilter,       // keep rows whose salted hash is even
  kFlatMap,      // 0..2 derived rows per input row
  kReduceByKey,  // wrapping-sum combine (commutative + associative)
  kJoin,         // inner join of two parents on key
  kSortBy,       // multiset identity; exercises the sort paths
  kDistinct,     // row-level dedup
};

const char* op_name(OpKind k);

struct PlanNode {
  static constexpr std::size_t kNoParent = ~std::size_t{0};
  OpKind op = OpKind::kSource;
  std::size_t left = kNoParent;
  std::size_t right = kNoParent;  // joins only
  std::uint64_t salt = 0;         // per-node mixing constant
  std::uint64_t rows = 0;         // sources only: row count
  bool checkpoint = false;        // dist execution persists this stage
};

struct LogicalPlan {
  std::uint64_t seed = 0;
  std::uint64_t rows_per_source = 0;
  std::vector<PlanNode> nodes;     // parents always precede children
  std::vector<std::size_t> sinks;  // childless nodes; their union is the result
  /// One-line structure summary, e.g. "0:source 1:map(0) 2:join(0,1)".
  std::string describe() const;
};

LogicalPlan make_plan(std::uint64_t seed, std::size_t nnodes,
                      std::uint64_t rows_per_source);

/// Fault-free execution on the shared-memory dataflow engine.
std::vector<Row> run_reference(const LogicalPlan& plan, dataflow::Context& ctx);

/// The same plan as a dist-runtime job: one stage per plan node plus a final
/// collect stage over the sinks. Every stage hash-partitions its output by
/// key with a fixed task count, so the key-based operators (reduce, join,
/// distinct) are exact per-partition.
dist::JobSpec make_dist_job(const LogicalPlan& plan, std::size_t ntasks);

/// Final rows of a dist run of make_dist_job (unsorted).
std::vector<Row> rows_from_result(const dist::JobResult& res);

/// Canonical fingerprint for the differential oracle: sort the row multiset
/// and serialize — two runs agree iff these bytes are identical.
Bytes canonical_bytes(std::vector<Row> rows);

}  // namespace hpbdc::chaos
