#pragma once
// Random logical-plan generation for the chaos harness. The plan IR itself
// now lives in src/plan (plan::LogicalPlan and friends) — this header only
// keeps the seeded generator plus aliases and thin forwarders, so existing
// chaos call sites and --replay specs keep working unchanged.
//
// Plans are PREFIX-STABLE: node i is derived only from (seed, i), so
// make_plan(seed, n - 1) is make_plan(seed, n) minus its last node. The
// shrinker leans on this — reducing the node count prunes DAG suffixes
// without perturbing the remaining plan.

#include <cstdint>
#include <vector>

#include "plan/lower.hpp"
#include "plan/plan.hpp"

namespace hpbdc::chaos {

// The IR, re-exported: src/chaos defines no plan types of its own anymore.
using Row = plan::Row;
using OpKind = plan::OpKind;
using PlanNode = plan::PlanNode;
using LogicalPlan = plan::LogicalPlan;
using plan::canonical_bytes;
using plan::op_name;
using plan::rows_from_result;

LogicalPlan make_plan(std::uint64_t seed, std::size_t nnodes,
                      std::uint64_t rows_per_source);

/// Fault-free execution on the shared-memory dataflow engine.
inline std::vector<Row> run_reference(const LogicalPlan& p,
                                      dataflow::Context& ctx) {
  return plan::lower_local(p, ctx);
}

/// The plan as a dist-runtime job (see plan::lower_dist). `opts` selects
/// physical lowering choices (e.g. broadcast joins for push-transport runs);
/// the default is the historical hash-partitioned lowering.
inline dist::JobSpec make_dist_job(const LogicalPlan& p, std::size_t ntasks,
                                   const plan::LowerDistOptions& opts = {}) {
  return plan::lower_dist(p, ntasks, opts);
}

}  // namespace hpbdc::chaos
