#pragma once
// Streaming differential oracle: the chaos harness's counterpart of
// run_chaos_once for the distributed streaming runtime (src/dstream). One
// run takes a seeded logical plan, lowers it to a streaming job, and
// executes it three ways:
//
//   1. reference_streaming — trusted timing-free local evaluation,
//   2. a fault-free distributed run on a fresh simulated cluster,
//   3. a faulted distributed run under a seeded executor-kill schedule
//      (make_kill_schedule: kills land mid-stream, i.e. mid-window, and
//      every kill pairs with a recovery),
//
// and requires all three committed multisets to be BIT-IDENTICAL under
// canonical_stream_bytes — the exactly-once guarantee: a node killed
// mid-window must not lose, duplicate, or re-time a single committed row.
// Liveness (completion within the horizon) and progress (>= 1 completed
// epoch) are checked on both distributed runs. On violation,
// shrink_stream() prunes plan suffix nodes, then drops kills, to a minimal
// one-line replay spec.

#include <cstdint>
#include <string>

#include "dist/options.hpp"

namespace hpbdc::chaos {

/// Whole replay state of one streaming chaos run. Field meanings mirror
/// ChaosConfig; kill_seed drives make_kill_schedule instead of a full
/// FaultPlan (the streaming runtime injects kills through its own
/// kill_node_at/recover_node_at, same as the serve campaigns).
struct StreamChaosConfig {
  std::uint64_t plan_seed = 1;
  std::uint64_t kill_seed = 1;
  std::size_t plan_nodes = 4;
  std::uint64_t rows = 192;       // events per source stage
  std::size_t ntasks = 2;         // tasks per streaming stage
  std::size_t cluster_nodes = 6;  // node 0 hosts coordinator + sink
  std::size_t kills = 1;
  double horizon = 600.0;  // liveness watchdog (simulated seconds)
  /// Streaming is push-shaped; pull is kept for differential coverage.
  dist::TransportKind transport = dist::TransportKind::kPush;
  /// Seeded-bug hook: arm StreamConfig::buggy_restore (sources resume one
  /// event past the checkpointed offset) so the oracle has a known-broken
  /// target to catch and shrink.
  bool inject_restore_bug = false;
  /// Store epoch checkpoints erasure coded (RS(3,2), background repair on)
  /// on both distributed runs; recovery during a one-node outage then rides
  /// on degraded reads instead of replica choice.
  bool ec_checkpoints = false;
};

/// One line, e.g. "spseed=3,skseed=9,nodes=4,rows=192,tasks=2,cluster=6,
/// kills=1". The "spseed" prefix keeps streaming specs distinguishable from
/// batch ones (chaos_demo --replay dispatches on it). ",bug=1", ",tp=0" and
/// ",ec=1" are appended only when armed/non-default, so minimal specs stay
/// short.
std::string format_stream_replay(const StreamChaosConfig& cfg);
StreamChaosConfig parse_stream_replay(const std::string& spec);

struct StreamChaosOutcome {
  bool passed = true;
  std::string violation;  // first failed check; empty when passed
  std::string plan;       // LogicalPlan::describe()
  std::size_t result_rows = 0;
  std::uint64_t epochs_completed = 0;  // faulted run
  std::uint64_t recoveries = 0;        // faulted run
  std::uint64_t kills_scheduled = 0;
  double makespan = 0;  // faulted run
};

/// One full differential run (reference, fault-free, faulted).
StreamChaosOutcome run_stream_chaos_once(const StreamChaosConfig& cfg);

struct StreamShrinkResult {
  StreamChaosConfig minimal;
  StreamChaosOutcome outcome;  // its outcome (passed == false)
  std::size_t runs = 0;
  std::string replay;  // format_stream_replay(minimal)
};

/// Shrink a failing config: prune plan suffix nodes (plans are
/// prefix-stable), then drop kills, to a fixpoint. The input must fail;
/// throws std::logic_error if it passes.
StreamShrinkResult shrink_stream(const StreamChaosConfig& failing);

}  // namespace hpbdc::chaos
