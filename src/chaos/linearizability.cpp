#include "chaos/linearizability.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "chaos/harness.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "kvstore/raft.hpp"
#include "sim/comm.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace hpbdc::chaos {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RegisterOp {
  bool write = false;
  std::uint64_t value = 0;
  double invoke = 0;
  double respond = kInf;  // infinity for incomplete (unacknowledged) writes
};

/// Wing–Gong search over one key's history. An op is eligible next iff no
/// other unlinearized op responded before it was invoked; the search
/// succeeds once every COMPLETE op is linearized (incomplete writes may be
/// dropped, i.e. left unlinearized forever).
class KeyChecker {
 public:
  explicit KeyChecker(std::vector<RegisterOp> ops) : ops_(std::move(ops)) {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].respond < kInf) complete_mask_ |= 1ULL << i;
    }
  }

  bool linearizable() { return search(0, 0); }

 private:
  bool search(std::uint64_t mask, std::uint64_t reg) {
    if ((mask & complete_mask_) == complete_mask_) return true;
    if (!visited_.insert({mask, reg}).second) return false;
    // Real-time frontier: nothing may be linearized after an op that has
    // already responded among the remaining ones.
    double frontier = kInf;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((mask >> i) & 1) continue;
      frontier = std::min(frontier, ops_[i].respond);
    }
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((mask >> i) & 1) continue;
      if (ops_[i].invoke > frontier) continue;  // someone responded earlier
      const RegisterOp& op = ops_[i];
      if (op.write) {
        if (search(mask | (1ULL << i), op.value)) return true;
      } else if (op.value == reg) {
        if (search(mask | (1ULL << i), reg)) return true;
      }
    }
    return false;
  }

  std::vector<RegisterOp> ops_;
  std::uint64_t complete_mask_ = 0;
  std::unordered_set<std::pair<std::uint64_t, std::uint64_t>,
                     Hasher<std::pair<std::uint64_t, std::uint64_t>>>
      visited_;
};

}  // namespace

bool linearizable(const std::vector<KvOp>& history, std::string* why) {
  std::map<std::uint64_t, std::vector<RegisterOp>> per_key;
  for (const KvOp& op : history) {
    if (op.kind == KvOpKind::kRead && !op.complete) continue;  // no effect
    RegisterOp r;
    r.write = op.kind == KvOpKind::kWrite;
    r.value = op.value;
    r.invoke = op.invoke;
    r.respond = op.complete ? op.respond : kInf;
    per_key[op.key].push_back(r);
  }
  for (auto& [key, ops] : per_key) {
    if (ops.size() > 64) {
      throw std::invalid_argument("linearizable: >64 ops on one key");
    }
    if (!KeyChecker(std::move(ops)).linearizable()) {
      if (why != nullptr) {
        *why = "history of key " + std::to_string(key) + " is not linearizable";
      }
      return false;
    }
  }
  return true;
}

namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// "W|<key>|<value>" / "R|<key>|<opid>" command codecs.
std::string write_cmd(std::uint64_t key, std::uint64_t value) {
  return "W|" + std::to_string(key) + "|" + std::to_string(value);
}
std::string read_cmd(std::uint64_t key, std::size_t opid) {
  return "R|" + std::to_string(key) + "|" + std::to_string(opid);
}
bool parse_write(const std::string& cmd, std::uint64_t* key, std::uint64_t* value) {
  if (cmd.size() < 4 || cmd[0] != 'W' || cmd[1] != '|') return false;
  const std::size_t bar = cmd.find('|', 2);
  if (bar == std::string::npos) return false;
  *key = std::stoull(cmd.substr(2, bar - 2));
  *value = std::stoull(cmd.substr(bar + 1));
  return true;
}

}  // namespace

RaftChaosOutcome run_raft_chaos(const RaftChaosOptions& opt) {
  RaftChaosOutcome out;
  auto fail = [&out](const std::string& msg) {
    if (out.passed) {
      out.passed = false;
      out.violation = msg;
    }
  };

  sim::Simulator sim;
  sim::NetworkConfig nc;
  nc.nodes = opt.nodes;
  nc.topology = sim::Topology::kFullMesh;
  nc.loss_seed = mix(opt.seed, 1);
  sim::Network net(sim, nc);
  sim::Comm comm(sim, net);

  kvstore::RaftConfig rc;
  rc.seed = mix(opt.seed, 2);
  kvstore::RaftCluster cluster(comm, rc);
  cluster.start();

  FaultGenOptions fo;
  fo.nodes = opt.nodes;
  fo.protect = opt.nodes;  // out of range: every node is fair game
  fo.horizon = opt.horizon * 0.6;
  fo.target_leader = true;
  fo.max_stragglers = 0;  // Raft has no compute-speed knob
  fo.max_dfs_losses = 0;
  const sim::FaultPlan faults = make_fault_plan(mix(opt.seed, 3), fo);

  sim::FaultTargets targets;
  targets.kill_node = [&cluster](std::size_t n) { cluster.fail_node(n); };
  targets.recover_node = [&cluster](std::size_t n) { cluster.recover_node(n); };
  targets.pick_leader = [&cluster] { return cluster.leader(); };
  targets.net = &net;
  sim::FaultInjector injector(sim, targets, mix(opt.seed, 4));
  injector.arm(faults);

  struct Rec {
    KvOp op;
    std::string marker;  // reads only: the unique log entry proposed
    bool committed = false;
  };
  std::vector<Rec> recs(opt.ops);

  Rng rng(mix(opt.seed, 5));
  double t = 0.6;  // let the first election settle
  for (std::size_t i = 0; i < opt.ops; ++i) {
    Rec& rec = recs[i];
    rec.op.key = rng.next_below(opt.keys);
    const bool is_write = rng.next_bool(0.5);
    if (is_write) {
      rec.op.kind = KvOpKind::kWrite;
      rec.op.value = i + 1;  // unique, nonzero
    } else {
      rec.op.kind = KvOpKind::kRead;
      rec.marker = read_cmd(rec.op.key, i);
    }
    sim.schedule_at(t, [&sim, &cluster, &rec] {
      rec.op.invoke = sim.now();
      const std::string cmd = rec.op.kind == KvOpKind::kWrite
                                  ? write_cmd(rec.op.key, rec.op.value)
                                  : rec.marker;
      cluster.propose(cmd, [&sim, &rec](bool ok, std::uint64_t) {
        if (!ok) return;  // conservatively incomplete (maybe applied)
        rec.committed = true;
        rec.op.respond = sim.now();
        rec.op.complete = true;
      });
    });
    t += rng.next_exponential(1.0 / opt.op_gap);
  }

  sim.run_until(opt.horizon);
  cluster.stop();
  sim.run();  // drain in-flight messages and callbacks
  out.fired = injector.fired();

  // Invariant: all nodes agree on the committed prefix. Checking everyone
  // against the longest prefix catches any pairwise disagreement.
  std::vector<std::string> canon;
  for (std::size_t n = 0; n < opt.nodes; ++n) {
    auto cmds = cluster.committed_commands(n);
    if (cmds.size() > canon.size()) canon = std::move(cmds);
  }
  for (std::size_t n = 0; n < opt.nodes; ++n) {
    const auto cmds = cluster.committed_commands(n);
    if (!std::equal(cmds.begin(), cmds.end(), canon.begin())) {
      fail("agreement: node " + std::to_string(n) +
           " committed a prefix diverging from the cluster's");
    }
  }

  // Derive each committed read's value from its position in the committed
  // log: the last write to its key among the entries before the marker.
  for (Rec& rec : recs) {
    if (rec.op.kind != KvOpKind::kRead || !rec.committed) continue;
    const auto it = std::find(canon.begin(), canon.end(), rec.marker);
    if (it == canon.end()) {
      fail("durability: committed read marker missing from the final log");
      rec.op.complete = false;
      continue;
    }
    std::uint64_t value = 0;
    for (auto p = canon.begin(); p != it; ++p) {
      std::uint64_t k = 0, v = 0;
      if (parse_write(*p, &k, &v) && k == rec.op.key) value = v;
    }
    rec.op.value = value;
  }

  out.history.reserve(recs.size());
  for (const Rec& rec : recs) {
    out.history.push_back(rec.op);
    if (rec.op.complete) {
      out.ops_complete++;
    } else {
      out.ops_incomplete++;
    }
  }

  std::string why;
  if (!linearizable(out.history, &why)) fail("linearizability: " + why);
  return out;
}

}  // namespace hpbdc::chaos
