#include "chaos/plan_gen.hpp"

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace hpbdc::chaos {

namespace {

std::uint64_t node_seed(std::uint64_t plan_seed, std::uint64_t i) {
  std::uint64_t s = plan_seed ^ ((i + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

}  // namespace

LogicalPlan make_plan(std::uint64_t seed, std::size_t nnodes,
                      std::uint64_t rows_per_source) {
  LogicalPlan plan;
  plan.seed = seed;
  plan.rows_per_source = rows_per_source;
  if (nnodes == 0) nnodes = 1;
  for (std::size_t i = 0; i < nnodes; ++i) {
    // Fixed draw order (salt, op, parents, checkpoint, variant) from a
    // per-node rng: node i never depends on nnodes, which is what makes
    // plans prefix-stable.
    Rng rng(node_seed(seed, i));
    PlanNode nd;
    nd.salt = rng();
    if (i == 0) {
      nd.op = OpKind::kSource;
      nd.rows = rows_per_source;
    } else {
      const auto roll = rng.next_below(100);
      if (roll < 12) {
        nd.op = OpKind::kSource;
        nd.rows = rows_per_source;
      } else if (roll < 28) {
        nd.op = OpKind::kMap;
      } else if (roll < 40) {
        nd.op = OpKind::kFilter;
      } else if (roll < 52) {
        nd.op = OpKind::kFlatMap;
      } else if (roll < 68) {
        nd.op = OpKind::kReduceByKey;
      } else if (roll < 82) {
        nd.op = i >= 2 ? OpKind::kJoin : OpKind::kMap;
      } else if (roll < 91) {
        nd.op = OpKind::kSortBy;
      } else {
        nd.op = OpKind::kDistinct;
      }
      if (nd.op != OpKind::kSource) {
        nd.left = rng.next_below(i);
        if (nd.op == OpKind::kJoin) nd.right = rng.next_below(i);
      }
    }
    nd.checkpoint = rng.next_bool(0.25);
    // Trailing variant draw (added with the optimizer): half the maps become
    // key-preserving and half the filters key-only, so the pushdown rule has
    // commuting pairs to find. A trailing draw keeps every earlier draw —
    // and thus the DAG shape — bit-identical, preserving prefix stability.
    const bool variant = rng.next_bool(0.5);
    if (variant && nd.op == OpKind::kMap) nd.op = OpKind::kMapValues;
    if (variant && nd.op == OpKind::kFilter) nd.op = OpKind::kFilterKey;
    plan.nodes.push_back(nd);
  }
  std::vector<bool> consumed(plan.nodes.size(), false);
  for (const PlanNode& nd : plan.nodes) {
    if (nd.left != PlanNode::kNoParent) consumed[nd.left] = true;
    if (nd.right != PlanNode::kNoParent) consumed[nd.right] = true;
  }
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    if (!consumed[i]) plan.sinks.push_back(i);
  }
  return plan;
}

}  // namespace hpbdc::chaos
