#include "chaos/plan_gen.hpp"

#include <algorithm>
#include <map>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "dataflow/pair_ops.hpp"

namespace hpbdc::chaos {

namespace {

// Keys live in a small fixed domain so reduce_by_key and join always see
// collisions (the interesting case) at chaos-harness row counts.
constexpr std::uint64_t kKeyDomain = 64;

std::uint64_t node_seed(std::uint64_t plan_seed, std::uint64_t i) {
  std::uint64_t s = plan_seed ^ ((i + 1) * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

// ---- per-operator row semantics -------------------------------------------
// Single source of truth: the reference execution and the dist job both call
// exactly these, so the differential oracle compares scheduling, not
// operator definitions.

std::vector<Row> source_rows(std::uint64_t salt, std::uint64_t n) {
  std::vector<Row> out;
  out.reserve(n);
  Rng rng(salt);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.emplace_back(rng.next_below(kKeyDomain), rng());
  }
  return out;
}

Row map_row(const Row& r, std::uint64_t salt) {
  return {mix64(r.first * 0x9e3779b97f4a7c15ULL + salt) % kKeyDomain,
          r.second * 6364136223846793005ULL + salt};
}

bool filter_keep(const Row& r, std::uint64_t salt) {
  return (mix64(r.first ^ (r.second * 3) ^ salt) & 1) == 0;
}

void flat_map_row(const Row& r, std::uint64_t salt, std::vector<Row>& out) {
  const std::uint64_t n = mix64(r.first ^ r.second ^ salt) % 3;  // 0..2 copies
  for (std::uint64_t j = 0; j < n; ++j) {
    out.emplace_back(mix64(r.first + j + salt) % kKeyDomain, r.second + j * salt);
  }
}

std::uint64_t reduce_combine(std::uint64_t a, std::uint64_t b) {
  return a + b;  // wrapping sum: commutative and associative
}

Row join_rows(std::uint64_t k, std::uint64_t v, std::uint64_t w) {
  return {k, v * 1000003ULL + mix64(w)};
}

std::uint64_t sort_key(const Row& r, std::uint64_t salt) {
  return mix64(r.first ^ salt);
}

// ---- dist-stage plumbing --------------------------------------------------

/// Hash-partition rows by key into ntasks serialized blocks (the invariant
/// every chaos stage maintains at its output boundary).
std::vector<Bytes> partition_rows(std::vector<Row> rows, std::size_t ntasks) {
  std::vector<std::vector<Row>> parts(ntasks);
  for (const Row& r : rows) {
    parts[hash_u64(r.first) % ntasks].push_back(r);
  }
  std::vector<Bytes> out;
  out.reserve(ntasks);
  for (auto& p : parts) out.push_back(to_bytes(p));
  return out;
}

/// Concatenate parent `pi`'s blocks for this task, in parent-task order
/// (deterministic regardless of fetch completion order).
std::vector<Row> gather_rows(const std::vector<std::vector<Bytes>>& inputs,
                             std::size_t pi) {
  std::vector<Row> rows;
  for (const Bytes& b : inputs.at(pi)) {
    auto part = from_bytes<std::vector<Row>>(b);
    rows.insert(rows.end(), part.begin(), part.end());
  }
  return rows;
}

std::vector<Row> local_join(const std::vector<Row>& lhs,
                            const std::vector<Row>& rhs) {
  std::multimap<std::uint64_t, std::uint64_t> left_by_key;
  for (const Row& r : lhs) left_by_key.emplace(r.first, r.second);
  std::vector<Row> out;
  for (const Row& r : rhs) {
    auto [lo, hi] = left_by_key.equal_range(r.first);
    for (auto it = lo; it != hi; ++it) {
      out.push_back(join_rows(r.first, it->second, r.second));
    }
  }
  return out;
}

}  // namespace

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kSource: return "source";
    case OpKind::kMap: return "map";
    case OpKind::kFilter: return "filter";
    case OpKind::kFlatMap: return "flat_map";
    case OpKind::kReduceByKey: return "reduce_by_key";
    case OpKind::kJoin: return "join";
    case OpKind::kSortBy: return "sort_by";
    case OpKind::kDistinct: return "distinct";
  }
  return "?";
}

std::string LogicalPlan::describe() const {
  std::string out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& nd = nodes[i];
    if (!out.empty()) out += ' ';
    out += std::to_string(i);
    out += ':';
    out += op_name(nd.op);
    if (nd.left != PlanNode::kNoParent) {
      out += '(';
      out += std::to_string(nd.left);
      if (nd.right != PlanNode::kNoParent) {
        out += ',';
        out += std::to_string(nd.right);
      }
      out += ')';
    }
    if (nd.checkpoint) out += '*';
  }
  return out;
}

LogicalPlan make_plan(std::uint64_t seed, std::size_t nnodes,
                      std::uint64_t rows_per_source) {
  LogicalPlan plan;
  plan.seed = seed;
  plan.rows_per_source = rows_per_source;
  if (nnodes == 0) nnodes = 1;
  for (std::size_t i = 0; i < nnodes; ++i) {
    // Fixed draw order (salt, op, parents, checkpoint) from a per-node rng:
    // node i never depends on nnodes, which is what makes plans prefix-stable.
    Rng rng(node_seed(seed, i));
    PlanNode nd;
    nd.salt = rng();
    if (i == 0) {
      nd.op = OpKind::kSource;
      nd.rows = rows_per_source;
    } else {
      const auto roll = rng.next_below(100);
      if (roll < 12) {
        nd.op = OpKind::kSource;
        nd.rows = rows_per_source;
      } else if (roll < 28) {
        nd.op = OpKind::kMap;
      } else if (roll < 40) {
        nd.op = OpKind::kFilter;
      } else if (roll < 52) {
        nd.op = OpKind::kFlatMap;
      } else if (roll < 68) {
        nd.op = OpKind::kReduceByKey;
      } else if (roll < 82) {
        nd.op = i >= 2 ? OpKind::kJoin : OpKind::kMap;
      } else if (roll < 91) {
        nd.op = OpKind::kSortBy;
      } else {
        nd.op = OpKind::kDistinct;
      }
      if (nd.op != OpKind::kSource) {
        nd.left = rng.next_below(i);
        if (nd.op == OpKind::kJoin) nd.right = rng.next_below(i);
      }
    }
    nd.checkpoint = rng.next_bool(0.25);
    plan.nodes.push_back(nd);
  }
  std::vector<bool> consumed(plan.nodes.size(), false);
  for (const PlanNode& nd : plan.nodes) {
    if (nd.left != PlanNode::kNoParent) consumed[nd.left] = true;
    if (nd.right != PlanNode::kNoParent) consumed[nd.right] = true;
  }
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    if (!consumed[i]) plan.sinks.push_back(i);
  }
  return plan;
}

std::vector<Row> run_reference(const LogicalPlan& plan, dataflow::Context& ctx) {
  using DS = dataflow::Dataset<Row>;
  std::vector<DS> built(plan.nodes.size());
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    const std::uint64_t salt = nd.salt;
    switch (nd.op) {
      case OpKind::kSource:
        built[i] = DS::parallelize(ctx, source_rows(salt, nd.rows), 4);
        break;
      case OpKind::kMap:
        built[i] = built[nd.left].map(
            [salt](const Row& r) { return map_row(r, salt); });
        break;
      case OpKind::kFilter:
        built[i] = built[nd.left].filter(
            [salt](const Row& r) { return filter_keep(r, salt); });
        break;
      case OpKind::kFlatMap:
        built[i] = built[nd.left].flat_map([salt](const Row& r) {
          std::vector<Row> out;
          flat_map_row(r, salt, out);
          return out;
        });
        break;
      case OpKind::kReduceByKey:
        built[i] = dataflow::reduce_by_key(
            built[nd.left],
            [](std::uint64_t a, std::uint64_t b) { return reduce_combine(a, b); },
            4);
        break;
      case OpKind::kJoin:
        built[i] =
            dataflow::join(built[nd.left], built[nd.right], 4)
                .map([](const std::pair<std::uint64_t,
                                        std::pair<std::uint64_t, std::uint64_t>>&
                            r) {
                  return join_rows(r.first, r.second.first, r.second.second);
                });
        break;
      case OpKind::kSortBy:
        built[i] = built[nd.left].sort_by(
            [salt](const Row& r) { return sort_key(r, salt); }, 4);
        break;
      case OpKind::kDistinct:
        built[i] = built[nd.left].distinct(4);
        break;
    }
  }
  DS out = built[plan.sinks.front()];
  for (std::size_t s = 1; s < plan.sinks.size(); ++s) {
    out = out.union_with(built[plan.sinks[s]]);
  }
  return out.collect();
}

dist::JobSpec make_dist_job(const LogicalPlan& plan, std::size_t ntasks) {
  dist::JobSpec job;
  job.name = "chaos";
  for (std::size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& nd = plan.nodes[i];
    const std::uint64_t salt = nd.salt;
    dist::StageSpec st;
    st.name = "n" + std::to_string(i);
    st.ntasks = ntasks;
    st.checkpoint = nd.checkpoint;
    switch (nd.op) {
      case OpKind::kSource: {
        const std::uint64_t rows = nd.rows;
        // Task t owns the rows with index ≡ t (mod ntasks): disjoint slices
        // whose union is exactly the reference source.
        st.run = [salt, rows, ntasks](std::size_t task,
                                      const std::vector<std::vector<Bytes>>&) {
          const auto all = source_rows(salt, rows);
          std::vector<Row> mine;
          for (std::size_t j = task; j < all.size(); j += ntasks) {
            mine.push_back(all[j]);
          }
          return partition_rows(std::move(mine), ntasks);
        };
        st.input_bytes_per_task = std::max<std::uint64_t>(1, rows * 16 / ntasks);
        break;
      }
      case OpKind::kMap:
        st.parents = {nd.left};
        st.run = [salt, ntasks](std::size_t,
                                const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          for (Row& r : rows) r = map_row(r, salt);
          return partition_rows(std::move(rows), ntasks);
        };
        break;
      case OpKind::kFilter:
        st.parents = {nd.left};
        st.run = [salt, ntasks](std::size_t,
                                const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::erase_if(rows, [salt](const Row& r) { return !filter_keep(r, salt); });
          return partition_rows(std::move(rows), ntasks);
        };
        break;
      case OpKind::kFlatMap:
        st.parents = {nd.left};
        st.run = [salt, ntasks](std::size_t,
                                const std::vector<std::vector<Bytes>>& in) {
          const auto rows = gather_rows(in, 0);
          std::vector<Row> out;
          for (const Row& r : rows) flat_map_row(r, salt, out);
          return partition_rows(std::move(out), ntasks);
        };
        break;
      case OpKind::kReduceByKey:
        st.parents = {nd.left};
        st.run = [ntasks](std::size_t,
                          const std::vector<std::vector<Bytes>>& in) {
          // All rows of a key land in one task (upstream hash partitioning),
          // so the local reduce is globally exact.
          std::map<std::uint64_t, std::uint64_t> acc;
          for (const Row& r : gather_rows(in, 0)) {
            auto [it, fresh] = acc.emplace(r.first, r.second);
            if (!fresh) it->second = reduce_combine(it->second, r.second);
          }
          std::vector<Row> rows(acc.begin(), acc.end());
          return partition_rows(std::move(rows), ntasks);
        };
        break;
      case OpKind::kJoin:
        st.parents = {nd.left, nd.right};
        st.run = [ntasks](std::size_t,
                          const std::vector<std::vector<Bytes>>& in) {
          return partition_rows(local_join(gather_rows(in, 0), gather_rows(in, 1)),
                                ntasks);
        };
        break;
      case OpKind::kSortBy:
        st.parents = {nd.left};
        st.run = [salt, ntasks](std::size_t,
                                const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::sort(rows.begin(), rows.end(),
                    [salt](const Row& a, const Row& b) {
                      const auto ka = sort_key(a, salt), kb = sort_key(b, salt);
                      return ka != kb ? ka < kb : a < b;
                    });
          return partition_rows(std::move(rows), ntasks);
        };
        break;
      case OpKind::kDistinct:
        st.parents = {nd.left};
        st.run = [ntasks](std::size_t,
                          const std::vector<std::vector<Bytes>>& in) {
          auto rows = gather_rows(in, 0);
          std::sort(rows.begin(), rows.end());
          rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
          return partition_rows(std::move(rows), ntasks);
        };
        break;
    }
    job.stages.push_back(std::move(st));
  }
  dist::StageSpec fin;
  fin.name = "collect";
  fin.ntasks = ntasks;
  fin.parents = plan.sinks;
  fin.run = [nsinks = plan.sinks.size()](
                std::size_t, const std::vector<std::vector<Bytes>>& in) {
    std::vector<Row> rows;
    for (std::size_t pi = 0; pi < nsinks; ++pi) {
      auto part = gather_rows(in, pi);
      rows.insert(rows.end(), part.begin(), part.end());
    }
    return std::vector<Bytes>{to_bytes(rows)};
  };
  job.stages.push_back(std::move(fin));
  return job;
}

std::vector<Row> rows_from_result(const dist::JobResult& res) {
  std::vector<Row> rows;
  for (const auto& blocks : res.output) {
    for (const Bytes& b : blocks) {
      auto part = from_bytes<std::vector<Row>>(b);
      rows.insert(rows.end(), part.begin(), part.end());
    }
  }
  return rows;
}

Bytes canonical_bytes(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return to_bytes(rows);
}

}  // namespace hpbdc::chaos
