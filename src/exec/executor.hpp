#pragma once
// Executor interface implemented by both the work-stealing ThreadPool and
// the CentralQueuePool ablation. TaskGroup layers structured fork/join on
// top, with cooperative helping: a thread that waits on a group executes
// pending tasks instead of blocking, which makes nested parallelism safe
// even on a single hardware thread.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <utility>

namespace hpbdc {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueue fn for asynchronous execution. Never blocks on task execution.
  virtual void submit(std::function<void()> fn) = 0;

  /// Execute one pending task on the calling thread if any is available.
  /// Used by waiters to help instead of blocking. Returns false if no task
  /// was found (which does not imply the pool is idle).
  virtual bool try_run_one() = 0;

  virtual std::size_t num_threads() const noexcept = 0;
};

/// Structured fork/join scope over an Executor. Propagates the first
/// exception thrown by any spawned task out of wait().
class TaskGroup {
 public:
  explicit TaskGroup(Executor& ex) noexcept : ex_(ex) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup() { wait_no_throw(); }

  template <typename Fn>
  void run(Fn&& fn) {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    ex_.submit([this, f = std::forward<Fn>(fn)]() mutable {
      try {
        f();
      } catch (...) {
        std::lock_guard lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lk(mu_);
        cv_.notify_all();
      }
    });
  }

  /// Block (helping the pool) until every spawned task has finished, then
  /// rethrow the first captured exception, if any.
  void wait() {
    wait_no_throw();
    std::lock_guard lk(mu_);
    if (error_) {
      auto e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Help-loop iterations executed by waiters of this group (each iteration
  /// either ran one task or fell back to a timed wait).
  std::uint64_t help_iterations() const noexcept {
    return help_iterations_.load(std::memory_order_relaxed);
  }
  /// Tasks a waiter actually executed while helping instead of blocking.
  std::uint64_t tasks_helped() const noexcept {
    return tasks_helped_.load(std::memory_order_relaxed);
  }

 private:
  void wait_no_throw() {
    using namespace std::chrono_literals;
    while (outstanding_.load(std::memory_order_acquire) > 0) {
      help_iterations_.fetch_add(1, std::memory_order_relaxed);
      if (ex_.try_run_one()) {
        tasks_helped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::unique_lock lk(mu_);
        cv_.wait_for(lk, 200us, [&] {
          return outstanding_.load(std::memory_order_acquire) == 0;
        });
      }
    }
  }

  Executor& ex_;
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::uint64_t> help_iterations_{0};
  std::atomic<std::uint64_t> tasks_helped_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

}  // namespace hpbdc
