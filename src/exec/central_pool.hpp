#pragma once
// CentralQueuePool: the no-work-stealing ablation baseline for experiment
// T6. Identical Executor interface to ThreadPool, but every worker contends
// on one shared FIFO queue — the classic thread-pool design whose lock and
// cache-line contention work stealing exists to avoid.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/executor.hpp"

namespace hpbdc {

class CentralQueuePool final : public Executor {
 public:
  explicit CentralQueuePool(std::size_t threads = 0) {
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this](std::stop_token st) { worker_loop(st); });
    }
  }

  ~CentralQueuePool() override {
    for (auto& w : workers_) w.request_stop();
    cv_.notify_all();
    workers_.clear();  // joins
  }

  CentralQueuePool(const CentralQueuePool&) = delete;
  CentralQueuePool& operator=(const CentralQueuePool&) = delete;

  void submit(std::function<void()> fn) override {
    {
      std::lock_guard lk(mu_);
      q_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  bool try_run_one() override {
    std::function<void()> fn;
    {
      std::lock_guard lk(mu_);
      if (q_.empty()) return false;
      fn = std::move(q_.front());
      q_.pop_front();
    }
    fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t num_threads() const noexcept override { return workers_.size(); }

  std::uint64_t tasks_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::stop_token stop) {
    using namespace std::chrono_literals;
    while (!stop.stop_requested()) {
      std::function<void()> fn;
      {
        std::unique_lock lk(mu_);
        cv_.wait_for(lk, 500us, [&] { return stop.stop_requested() || !q_.empty(); });
        if (q_.empty()) continue;
        fn = std::move(q_.front());
        q_.pop_front();
      }
      fn();
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> q_;
  std::vector<std::jthread> workers_;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace hpbdc
