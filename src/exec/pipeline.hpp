#pragma once
// Bounded staged pipeline for streaming ETL: one source thread, N parallel
// transform workers, one sink thread, connected by bounded MPMC queues
// (backpressure by blocking). This is the push-based counterpart to the
// pull-based Dataset engine — use it when data arrives incrementally or
// does not fit in memory at once.
//
//   PipelineResult r = run_pipeline<int, std::string>(
//       source,     // () -> std::optional<int>; nullopt ends the stream
//       transform,  // (int) -> std::string, called concurrently
//       sink,       // (std::string) -> void, called from one thread
//       {.workers = 4, .queue_capacity = 1024});

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace hpbdc {

struct PipelineOptions {
  std::size_t workers = 2;
  std::size_t queue_capacity = 1024;
};

struct PipelineResult {
  std::uint64_t items_in = 0;
  std::uint64_t items_out = 0;
};

template <typename In, typename Out, typename Source, typename Transform, typename Sink>
PipelineResult run_pipeline(Source source, Transform transform, Sink sink,
                            PipelineOptions opts = {}) {
  if (opts.workers == 0) opts.workers = 1;
  MpmcQueue<In> in_q(opts.queue_capacity);
  MpmcQueue<Out> out_q(opts.queue_capacity);
  PipelineResult res;
  std::atomic<std::uint64_t> items_in{0};
  std::atomic<std::size_t> live_workers{opts.workers};

  std::thread producer([&] {
    while (auto item = source()) {
      items_in.fetch_add(1, std::memory_order_relaxed);
      if (!in_q.push(std::move(*item))) break;  // closed early
    }
    in_q.close();
  });

  std::vector<std::thread> workers;
  workers.reserve(opts.workers);
  for (std::size_t w = 0; w < opts.workers; ++w) {
    workers.emplace_back([&] {
      while (auto item = in_q.pop()) {
        out_q.push(transform(std::move(*item)));
      }
      // Last worker out closes the downstream queue.
      if (live_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        out_q.close();
      }
    });
  }

  std::uint64_t items_out = 0;
  while (auto item = out_q.pop()) {
    sink(std::move(*item));
    ++items_out;
  }

  producer.join();
  for (auto& t : workers) t.join();
  res.items_in = items_in.load();
  res.items_out = items_out;
  return res;
}

}  // namespace hpbdc
