#pragma once
// Chase–Lev work-stealing deque, after Le et al., "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13). The owner pushes and
// pops at the bottom; thieves steal from the top. The backing array grows
// geometrically; retired arrays are kept until destruction so a concurrent
// thief never reads freed memory (simple and safe reclamation).
//
// Slots are relaxed atomics (the paper's formulation): an in-flight thief
// may read a slot the owner is overwriting, and the subsequent CAS on top
// decides whose value counts. T must be trivially copyable — in practice a
// pointer — which is also what makes the racy read well-defined under TSan.

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace hpbdc {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque slots are atomics; T must be trivially copyable");

 public:
  explicit WsDeque(std::int64_t initial_capacity = 64) {
    auto buf = std::make_unique<Buffer>(round_up(initial_capacity));
    buffer_.store(buf.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(buf));
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner-only: push one item at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, std::move(item));
    // Release store publishes the slot (and what it points to) to any thief
    // that acquires this bottom value. A release fence + relaxed store is
    // the paper's formulation, but TSan cannot see fence-based ordering.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pop the most recently pushed item (LIFO).
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buf->get(b);
      if (t == b) {
        // Last element: race with thieves via CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return false;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;  // empty
  }

  /// Thief: steal the oldest item (FIFO). Returns false on empty or when it
  /// lost a race (caller should treat both as "try elsewhere").
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      T item = buf->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return false;  // lost the race
      }
      out = std::move(item);
      return true;
    }
    return false;
  }

  /// Approximate size; safe to call from any thread.
  std::int64_t size_hint() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(static_cast<std::size_t>(cap))) {}
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i & mask)].store(v, std::memory_order_relaxed);
    }
    std::int64_t capacity;
    std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  static std::int64_t round_up(std::int64_t v) {
    std::int64_t c = 2;
    while (c < v) c <<= 1;
    return c;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto next = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) next->put(i, old->get(i));
    Buffer* raw = next.get();
    buffer_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(next));  // owner-only; old buffers outlive thieves
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only
};

}  // namespace hpbdc
