#include "exec/thread_pool.hpp"

#include <chrono>

#include "common/rng.hpp"

namespace hpbdc {

namespace {
// Identifies the pool (and slot) owning the current thread, so submit() from
// a worker can go to its own deque and try_run_one() can steal.
struct WorkerTls {
  const void* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerTls t_worker;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  slots_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    auto w = std::make_unique<Worker>();
    w->rng_state = 0x2545f4914f6cdd1dULL + i;
    slots_.push_back(std::move(w));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i](std::stop_token st) { worker_loop(i, st); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_) w.request_stop();
  sleep_cv_.notify_all();
  workers_.clear();  // joins
  // Delete any tasks that were never claimed (abnormal shutdown only).
  for (auto& slot : slots_) {
    Task* t = nullptr;
    while (slot->deque.pop(t)) delete t;
  }
  std::lock_guard lk(inject_mu_);
  for (Task* t : inject_) delete t;
  inject_.clear();
}

int ThreadPool::current_worker_index() const noexcept {
  return t_worker.pool == this ? static_cast<int>(t_worker.index) : -1;
}

void ThreadPool::submit(std::function<void()> fn) {
  auto* task = new Task(std::move(fn));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const int idx = current_worker_index();
  if (idx >= 0) {
    slots_[static_cast<std::size_t>(idx)]->deque.push(task);
  } else {
    std::lock_guard lk(inject_mu_);
    inject_.push_back(task);
  }
  notify_one();
}

void ThreadPool::notify_one() { sleep_cv_.notify_one(); }

ThreadPool::Task* ThreadPool::pop_injected() {
  std::lock_guard lk(inject_mu_);
  if (inject_.empty()) return nullptr;
  Task* t = inject_.front();
  inject_.pop_front();
  return t;
}

ThreadPool::Task* ThreadPool::find_task(std::size_t idx) {
  Worker& self = *slots_[idx];
  Task* t = nullptr;
  if (self.deque.pop(t)) return t;
  if ((t = pop_injected()) != nullptr) return t;
  // Random-victim stealing: 2N probes is enough for load balance whp.
  const std::size_t n = slots_.size();
  for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
    const std::size_t victim = splitmix64(self.rng_state) % n;
    if (victim == idx) continue;
    if (slots_[victim]->deque.steal(t)) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  return nullptr;
}

void ThreadPool::run_task(Task* t, bool) {
  // Count before invoking: the task body may signal a TaskGroup waiter, and
  // counting after would let that waiter observe completion (wait() returns)
  // while this task is still missing from the executed totals.
  executed_.fetch_add(1, std::memory_order_relaxed);
  const int idx = current_worker_index();
  if (idx >= 0) {
    slots_[static_cast<std::size_t>(idx)]->executed.fetch_add(
        1, std::memory_order_relaxed);
  } else {
    external_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  (*t)();
  delete t;
}

std::vector<std::uint64_t> ThreadPool::per_thread_executed() const {
  std::vector<std::uint64_t> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    out.push_back(slot->executed.load(std::memory_order_relaxed));
  }
  return out;
}

void ThreadPool::export_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) const {
  reg.gauge(prefix + ".threads").set(static_cast<std::int64_t>(workers_.size()));
  reg.gauge(prefix + ".executed").set(static_cast<std::int64_t>(tasks_executed()));
  reg.gauge(prefix + ".stolen").set(static_cast<std::int64_t>(tasks_stolen()));
  reg.gauge(prefix + ".submitted").set(static_cast<std::int64_t>(tasks_submitted()));
  reg.gauge(prefix + ".parked").set(static_cast<std::int64_t>(times_parked()));
  reg.gauge(prefix + ".external_executed")
      .set(static_cast<std::int64_t>(external_executed_.load(std::memory_order_relaxed)));
  const auto per_thread = per_thread_executed();
  for (std::size_t i = 0; i < per_thread.size(); ++i) {
    reg.gauge(prefix + ".thread" + std::to_string(i) + ".executed")
        .set(static_cast<std::int64_t>(per_thread[i]));
  }
}

void ThreadPool::worker_loop(std::size_t idx, std::stop_token stop) {
  t_worker.pool = this;
  t_worker.index = idx;
  using namespace std::chrono_literals;
  while (!stop.stop_requested()) {
    Task* t = find_task(idx);
    if (t != nullptr) {
      run_task(t, false);
      continue;
    }
    parked_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lk(sleep_mu_);
    if (stop.stop_requested()) break;
    // Timed wait bounds the cost of any missed notification to 500us.
    sleep_cv_.wait_for(lk, 500us);
  }
  t_worker.pool = nullptr;
}

bool ThreadPool::try_run_one() {
  Task* t = nullptr;
  const int idx = current_worker_index();
  if (idx >= 0) {
    t = find_task(static_cast<std::size_t>(idx));
  } else {
    t = pop_injected();
    if (t == nullptr) {
      // External waiter may also steal so that helping works from any thread.
      for (auto& slot : slots_) {
        if (slot->deque.steal(t)) {
          stolen_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        t = nullptr;
      }
    }
  }
  if (t == nullptr) return false;
  run_task(t, false);
  return true;
}

}  // namespace hpbdc
