#pragma once
// Structured parallel primitives in the spirit of OpenMP worksharing
// constructs, expressed over an Executor: parallel_for (+ blocked variant),
// parallel_reduce, parallel_sort (block sort + parallel pairwise merges),
// and parallel_inclusive_scan (two-pass blocked scan). All primitives are
// deterministic: the result never depends on task interleaving.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <vector>

#include "exec/executor.hpp"
#include "exec/tuning.hpp"

namespace hpbdc {

namespace detail {
// grain == 0 selects the engine default documented in exec/tuning.hpp:
// ~kGrainChunksPerThread chunks per thread so stealing can balance skew.
inline std::size_t pick_grain(std::size_t n, std::size_t threads, std::size_t grain) {
  if (grain > 0) return grain;
  const std::size_t chunks = std::max<std::size_t>(1, threads * kGrainChunksPerThread);
  return std::max<std::size_t>(1, (n + chunks - 1) / chunks);
}
}  // namespace detail

/// Invoke fn(lo, hi) over disjoint subranges covering [begin, end).
template <typename Fn>
void parallel_for_blocked(Executor& ex, std::size_t begin, std::size_t end, Fn fn,
                          std::size_t grain = 0) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t g = detail::pick_grain(n, ex.num_threads(), grain);
  if (n <= g) {
    fn(begin, end);
    return;
  }
  TaskGroup tg(ex);
  for (std::size_t lo = begin; lo < end; lo += g) {
    const std::size_t hi = std::min(lo + g, end);
    tg.run([fn, lo, hi] { fn(lo, hi); });
  }
  tg.wait();
}

/// Invoke fn(i) for every i in [begin, end).
template <typename Fn>
void parallel_for(Executor& ex, std::size_t begin, std::size_t end, Fn fn,
                  std::size_t grain = 0) {
  parallel_for_blocked(
      ex, begin, end,
      [fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

/// Deterministic reduction: out = reduce(init, map(begin)..map(end-1)).
/// `map` maps an index to a value, `combine` must be associative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(Executor& ex, std::size_t begin, std::size_t end, T init, Map map,
                  Combine combine, std::size_t grain = 0) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  const std::size_t g = detail::pick_grain(n, ex.num_threads(), grain);
  const std::size_t nchunks = (n + g - 1) / g;
  std::vector<T> partial(nchunks, init);
  {
    TaskGroup tg(ex);
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t lo = begin + c * g;
      const std::size_t hi = std::min(lo + g, end);
      tg.run([&partial, c, lo, hi, map, combine, init] {
        T acc = init;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(std::move(acc), map(i));
        partial[c] = std::move(acc);
      });
    }
    tg.wait();
  }
  // Combine partials in fixed (chunk-index) order: deterministic even for
  // non-commutative combine.
  T out = init;
  for (auto& p : partial) out = combine(std::move(out), std::move(p));
  return out;
}

/// Stable-result parallel sort: sort B blocks in parallel, then log(B)
/// rounds of parallel pairwise merges through a temporary buffer.
/// `grain` follows the parallel_for convention (exec/tuning.hpp): 0 picks
/// the engine default (floored at 1024 elements so tiny blocks never pay
/// merge-round overhead), > 0 sets the exact block length.
template <typename RandomIt, typename Compare = std::less<>>
void parallel_sort(Executor& ex, RandomIt first, RandomIt last, Compare comp = {},
                   std::size_t grain = 0) {
  using T = typename std::iterator_traits<RandomIt>::value_type;
  const std::size_t n = static_cast<std::size_t>(std::distance(first, last));
  const std::size_t threads = ex.num_threads();
  if (n < 2048 || threads <= 1) {
    std::sort(first, last, comp);
    return;
  }
  const std::size_t block =
      grain > 0 ? grain
                : std::max<std::size_t>(1024, detail::pick_grain(n, threads, 0));
  const std::size_t nblocks = (n + block - 1) / block;

  {
    TaskGroup tg(ex);
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(lo + block, n);
      tg.run([first, lo, hi, comp] { std::sort(first + lo, first + hi, comp); });
    }
    tg.wait();
  }

  std::vector<T> buf(n);
  bool in_src = true;  // true: data in [first,last), false: data in buf
  for (std::size_t width = block; width < n; width *= 2) {
    TaskGroup tg(ex);
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      if (in_src) {
        tg.run([first, &buf, lo, mid, hi, comp] {
          std::merge(first + lo, first + mid, first + mid, first + hi,
                     buf.begin() + static_cast<std::ptrdiff_t>(lo), comp);
        });
      } else {
        tg.run([first, &buf, lo, mid, hi, comp] {
          auto b = buf.begin();
          std::merge(b + static_cast<std::ptrdiff_t>(lo), b + static_cast<std::ptrdiff_t>(mid),
                     b + static_cast<std::ptrdiff_t>(mid), b + static_cast<std::ptrdiff_t>(hi),
                     first + lo, comp);
        });
      }
    }
    tg.wait();
    in_src = !in_src;
  }
  if (!in_src) std::move(buf.begin(), buf.end(), first);
}

/// Two-pass blocked inclusive scan. `op` must be associative. `grain`
/// follows the parallel_for convention (exec/tuning.hpp): 0 picks the
/// engine default (floored at 1024 — a scan pass is too cheap to split
/// finer), > 0 sets the exact block length.
template <typename T, typename Op>
void parallel_inclusive_scan(Executor& ex, const std::vector<T>& in, std::vector<T>& out,
                             Op op, T identity = T{}, std::size_t grain = 0) {
  const std::size_t n = in.size();
  out.resize(n);
  if (n == 0) return;
  const std::size_t threads = ex.num_threads();
  if (n < 4096 || threads <= 1) {
    T acc = identity;
    for (std::size_t i = 0; i < n; ++i) out[i] = acc = op(acc, in[i]);
    return;
  }
  const std::size_t block =
      grain > 0 ? grain
                : std::max<std::size_t>(1024, detail::pick_grain(n, threads, 0));
  const std::size_t actual_blocks = (n + block - 1) / block;
  std::vector<T> block_sum(actual_blocks, identity);

  // Pass 1: local scans + per-block totals.
  {
    TaskGroup tg(ex);
    for (std::size_t b = 0; b < actual_blocks; ++b) {
      tg.run([&, b] {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(lo + block, n);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) out[i] = acc = op(acc, in[i]);
        block_sum[b] = acc;
      });
    }
    tg.wait();
  }
  // Serial exclusive scan of block totals (tiny).
  std::vector<T> offset(actual_blocks, identity);
  T acc = identity;
  for (std::size_t b = 0; b < actual_blocks; ++b) {
    offset[b] = acc;
    acc = op(acc, block_sum[b]);
  }
  // Pass 2: add offsets.
  {
    TaskGroup tg(ex);
    for (std::size_t b = 1; b < actual_blocks; ++b) {
      tg.run([&, b] {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(lo + block, n);
        for (std::size_t i = lo; i < hi; ++i) out[i] = op(offset[b], out[i]);
      });
    }
    tg.wait();
  }
}

}  // namespace hpbdc
