#include "exec/task_graph.hpp"

#include <algorithm>

namespace hpbdc {

TaskGraph::NodeId TaskGraph::add(std::function<void()> fn,
                                 const std::vector<NodeId>& deps) {
  const NodeId id = nodes_.size();
  for (NodeId d : deps) {
    if (d >= id) throw std::invalid_argument("TaskGraph: dependency on future node");
  }
  nodes_.push_back(std::make_unique<Node>(std::move(fn), deps.size()));
  for (NodeId d : deps) nodes_[d]->successors.push_back(id);
  return id;
}

void TaskGraph::schedule(Executor& ex, TaskGroup& tg, NodeId id) {
  tg.run([this, &ex, &tg, id] {
    Node& node = *nodes_[id];
    node.fn();
    for (NodeId s : node.successors) {
      if (nodes_[s]->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        schedule(ex, tg, s);
      }
    }
  });
}

void TaskGraph::run(Executor& ex) {
  for (auto& n : nodes_) n->pending.store(n->indegree, std::memory_order_relaxed);
  TaskGroup tg(ex);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id]->indegree == 0) schedule(ex, tg, id);
  }
  tg.wait();
}

std::size_t TaskGraph::critical_path_length() const {
  std::vector<std::size_t> depth(nodes_.size(), 1);
  std::size_t best = nodes_.empty() ? 0 : 1;
  // Nodes are already in topological order (deps point backwards).
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId s : nodes_[id]->successors) {
      depth[s] = std::max(depth[s], depth[id] + 1);
      best = std::max(best, depth[s]);
    }
  }
  return best;
}

}  // namespace hpbdc
