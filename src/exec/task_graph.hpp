#pragma once
// Task DAG scheduler: nodes carry arbitrary work, edges are completion
// dependencies. Acyclicity is guaranteed by construction (a node may only
// depend on already-added nodes). run() executes the graph wavefront-style
// on an Executor, releasing each successor the instant its last predecessor
// retires; the first task exception is rethrown after the graph drains.

#include <atomic>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

#include "exec/executor.hpp"

namespace hpbdc {

class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// Add a task depending on `deps` (each must be a previously added node).
  NodeId add(std::function<void()> fn, const std::vector<NodeId>& deps = {});

  std::size_t size() const noexcept { return nodes_.size(); }

  /// Execute all tasks respecting dependencies. Reusable: run() resets
  /// per-run state first. Throws the first task exception encountered.
  void run(Executor& ex);

  /// Length (node count) of the longest dependency chain — the graph's
  /// critical path assuming unit task cost.
  std::size_t critical_path_length() const;

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<NodeId> successors;
    std::size_t indegree = 0;
    std::atomic<std::size_t> pending{0};

    Node(std::function<void()> f, std::size_t deg) : fn(std::move(f)), indegree(deg) {}
  };

  void schedule(Executor& ex, TaskGroup& tg, NodeId id);

  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace hpbdc
