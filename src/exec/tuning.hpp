#pragma once
// The engine's granularity contract, in one place.
//
// Two different units of decomposition exist in the stack and they are
// deliberately NOT the same number:
//
//   * Scheduling grain — how parallel_for/parallel_reduce/parallel_sort/
//     parallel_inclusive_scan split an index range into tasks. With
//     `grain == 0` (the default everywhere) a primitive targets
//     kGrainChunksPerThread chunks per pool thread: fine enough that
//     work-stealing can rebalance a skewed range, coarse enough that
//     per-task overhead stays amortized. Passing `grain > 0` overrides the
//     heuristic with an exact element count per task.
//
//   * Data partitions — how a dataflow Context splits Datasets.
//     Context::default_partitions() picks kPartitionsPerThread partitions
//     per pool thread. Partitions are coarser than grains because each one
//     carries materialized state (vectors, hash tables, shuffle buckets):
//     more partitions mean more memory and merge fan-in, so we take only
//     the slack needed to absorb partition-level skew.
//
// Keep the ratio grains-per-thread >= partitions-per-thread: a partition is
// processed as >= 1 task, so the scheduler always has at least as many
// steal targets as the data layout has skew units.

#include <cstddef>

namespace hpbdc {

/// parallel_* primitives split a range into ~this many chunks per thread
/// when the caller passes grain == 0.
inline constexpr std::size_t kGrainChunksPerThread = 8;

/// Context::default_partitions() = pool threads * this.
inline constexpr std::size_t kPartitionsPerThread = 4;

}  // namespace hpbdc
