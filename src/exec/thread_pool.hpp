#pragma once
// Work-stealing thread pool: one Chase–Lev deque per worker plus a shared
// injection queue for external submissions. Workers pop their own deque
// LIFO (cache locality), steal FIFO from random victims (load balance), and
// park with a bounded timed wait when idle so no wakeup can be lost.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "exec/ws_deque.hpp"
#include "obs/metrics.hpp"

namespace hpbdc {

class ThreadPool final : public Executor {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> fn) override;
  bool try_run_one() override;
  std::size_t num_threads() const noexcept override { return workers_.size(); }

  /// Total tasks executed / tasks obtained by stealing (monotonic counters).
  std::uint64_t tasks_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_stolen() const noexcept {
    return stolen_.load(std::memory_order_relaxed);
  }
  /// Tasks handed to submit() since construction.
  std::uint64_t tasks_submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }
  /// Times a worker found no task anywhere and entered a timed park.
  std::uint64_t times_parked() const noexcept {
    return parked_.load(std::memory_order_relaxed);
  }
  /// Tasks executed per worker thread (index = worker slot). Tasks run by
  /// external helpers (TaskGroup::wait on a non-pool thread) are not in any
  /// slot; tasks_executed() minus the sum of this vector gives that count.
  std::vector<std::uint64_t> per_thread_executed() const;

  /// Publish this pool's counters into `reg` as gauges under `prefix`
  /// (exec.pool.executed, .stolen, .submitted, .parked, .thread<i>.executed).
  /// Call at any quiescent point; values are a snapshot, not live handles.
  void export_metrics(obs::MetricsRegistry& reg,
                      const std::string& prefix = "exec.pool") const;

  /// Index of the calling worker within this pool, or -1 for external threads.
  int current_worker_index() const noexcept;

 private:
  using Task = std::function<void()>;

  struct Worker {
    WsDeque<Task*> deque;
    std::uint64_t rng_state;
    // Owner-thread task count; padded out of the deque's way by alignas.
    alignas(64) std::atomic<std::uint64_t> executed{0};
  };

  void worker_loop(std::size_t idx, std::stop_token stop);
  Task* find_task(std::size_t idx);
  Task* pop_injected();
  void run_task(Task* t, bool stolen);
  void notify_one();

  std::vector<std::unique_ptr<Worker>> slots_;
  std::vector<std::jthread> workers_;

  std::mutex inject_mu_;
  std::deque<Task*> inject_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> parked_{0};
  // Tasks run by external (non-worker) helper threads via try_run_one().
  std::atomic<std::uint64_t> external_executed_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace hpbdc
