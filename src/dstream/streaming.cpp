#include "dstream/streaming.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "common/hash.hpp"
#include "dataflow/stream.hpp"

namespace hpbdc::dstream {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t double_bits(double d) {
  std::uint64_t b;
  static_assert(sizeof(b) == sizeof(d));
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

/// Uniform [0, 1) from a hash, deterministic across platforms.
double u01(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

}  // namespace

StreamJobSpec lower_streaming(const plan::LogicalPlan& plan,
                              const StreamingOptions& opts) {
  if (plan.nodes.empty()) throw std::invalid_argument("lower_streaming: empty plan");
  if (opts.ntasks == 0) throw std::invalid_argument("lower_streaming: zero ntasks");
  if (opts.disorder >= opts.lateness) {
    throw std::invalid_argument(
        "lower_streaming: disorder must stay under the lateness bound "
        "(otherwise ordinary jitter is dropped as late)");
  }
  StreamJobSpec spec;
  spec.opts = opts;
  spec.stages.reserve(plan.nodes.size() + 1);
  for (const plan::PlanNode& nd : plan.nodes) {
    StreamStage st;
    switch (nd.op) {
      case plan::OpKind::kSource:
        st.kind = StreamStage::Kind::kSource;
        st.salt = nd.salt;
        st.rows = nd.rows;
        break;
      case plan::OpKind::kFused:
        if (!nd.steps.empty() && nd.steps.front().op == plan::OpKind::kSource) {
          st.kind = StreamStage::Kind::kSource;
          st.salt = nd.steps.front().salt;
          st.rows = nd.steps.front().rows;
          st.steps.assign(nd.steps.begin() + 1, nd.steps.end());
        } else {
          st.kind = StreamStage::Kind::kStateless;
          st.steps = nd.steps;
          st.parents.push_back(nd.left);
        }
        break;
      case plan::OpKind::kMap:
      case plan::OpKind::kMapValues:
      case plan::OpKind::kFilter:
      case plan::OpKind::kFilterKey:
      case plan::OpKind::kFlatMap:
        st.kind = StreamStage::Kind::kStateless;
        st.steps.push_back(plan::NarrowStep{nd.op, nd.salt, 0});
        st.parents.push_back(nd.left);
        break;
      case plan::OpKind::kSortBy:
        // Streams are unordered multisets; sort_by is the identity here just
        // as it is for the batch canonical comparison.
        st.kind = StreamStage::Kind::kStateless;
        st.parents.push_back(nd.left);
        break;
      case plan::OpKind::kReduceByKey:
        st.kind = StreamStage::Kind::kAggregate;
        st.parents.push_back(nd.left);
        break;
      case plan::OpKind::kDistinct:
        st.kind = StreamStage::Kind::kDistinct;
        st.parents.push_back(nd.left);
        break;
      case plan::OpKind::kJoin:
        st.kind = StreamStage::Kind::kJoin;
        st.parents.push_back(nd.left);
        st.parents.push_back(nd.right);
        break;
    }
    spec.stages.push_back(std::move(st));
  }
  StreamStage sink;
  sink.kind = StreamStage::Kind::kSink;
  sink.parents = plan.sinks;
  spec.stages.push_back(std::move(sink));
  return spec;
}

std::vector<SourceItem> source_partition_items(const StreamStage& stage,
                                               const StreamingOptions& opts,
                                               std::size_t part, std::size_t nparts,
                                               std::uint64_t* late_dropped) {
  if (stage.kind != StreamStage::Kind::kSource) {
    throw std::invalid_argument("source_partition_items: not a source stage");
  }
  const std::vector<plan::Row> rows = plan::source_rows(stage.salt, stage.rows);
  std::vector<SourceItem> items;
  double max_seen = -kInf;
  for (std::uint64_t j = part; j < stage.rows; j += nparts) {
    const double base = static_cast<double>(j) / opts.rate;
    const std::uint64_t h = mix64(stage.salt ^ (j * 0x9e3779b97f4a7c15ULL));
    const bool very_late = mix64(h ^ 0xd1b54a32d192ed03ULL) % 1000 < opts.late_permille;
    const double t = std::max(
        0.0, very_late ? base - opts.very_late : base - opts.disorder * u01(h));
    // The per-partition watermark gate. Dropping here (not at the operators)
    // is what makes lateness deterministic: the decision depends only on this
    // partition's own deterministic stream, never on cross-node timing.
    if (t < max_seen - opts.lateness) {
      if (late_dropped != nullptr) ++*late_dropped;
      continue;
    }
    max_seen = std::max(max_seen, t);
    SourceItem it;
    it.time = t;
    it.emit_at = base;
    it.wm_after = max_seen - opts.lateness;
    it.rows = plan::apply_steps(stage.steps, 0, {rows[j]});
    items.push_back(std::move(it));
  }
  return items;
}

std::vector<TimedRow> reference_streaming(const StreamJobSpec& spec) {
  using dataflow::stream::WindowSpec;
  using dataflow::stream::assign_windows;
  const WindowSpec wspec = WindowSpec::tumbling(spec.opts.window);

  std::vector<std::vector<TimedRow>> outs(spec.stages.size());
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    const StreamStage& st = spec.stages[s];
    std::vector<TimedRow>& out = outs[s];
    switch (st.kind) {
      case StreamStage::Kind::kSource: {
        for (std::size_t p = 0; p < spec.opts.ntasks; ++p) {
          for (const SourceItem& it :
               source_partition_items(st, spec.opts, p, spec.opts.ntasks)) {
            for (const plan::Row& r : it.rows) out.push_back({it.time, r});
          }
        }
        break;
      }
      case StreamStage::Kind::kStateless: {
        for (const TimedRow& ev : outs[st.parents[0]]) {
          for (const plan::Row& r : plan::apply_steps(st.steps, 0, {ev.row})) {
            out.push_back({ev.time, r});
          }
        }
        break;
      }
      case StreamStage::Kind::kAggregate: {
        // (window end, key) -> running combine; ordered map for determinism.
        std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> acc;
        std::map<std::pair<std::uint64_t, std::uint64_t>, double> ends;
        for (const TimedRow& ev : outs[st.parents[0]]) {
          const auto w = assign_windows(wspec, ev.time)[0];
          const auto k = std::pair{double_bits(w.end), ev.row.first};
          // Combine into a zero accumulator even for the first value — the
          // distributed WindowedAggregator starts from Acc{} and combines, so
          // the reference must fold identically.
          auto [it, fresh] = acc.try_emplace(k, std::uint64_t{0});
          it->second = plan::reduce_combine(it->second, ev.row.second);
          ends[k] = w.end;
        }
        for (const auto& [k, v] : acc) {
          out.push_back({ends[k], plan::Row{k.second, v}});
        }
        break;
      }
      case StreamStage::Kind::kDistinct: {
        std::set<std::pair<std::uint64_t, plan::Row>> seen;
        for (const TimedRow& ev : outs[st.parents[0]]) {
          const auto w = assign_windows(wspec, ev.time)[0];
          if (seen.insert({double_bits(w.end), ev.row}).second) {
            out.push_back({w.end, ev.row});
          }
        }
        break;
      }
      case StreamStage::Kind::kJoin: {
        std::map<std::pair<std::uint64_t, std::uint64_t>,
                 std::pair<std::vector<TimedRow>, std::vector<TimedRow>>>
            buckets;
        for (const TimedRow& ev : outs[st.parents[0]]) {
          const auto w = assign_windows(wspec, ev.time)[0];
          buckets[{double_bits(w.end), ev.row.first}].first.push_back(ev);
        }
        for (const TimedRow& ev : outs[st.parents[1]]) {
          const auto w = assign_windows(wspec, ev.time)[0];
          buckets[{double_bits(w.end), ev.row.first}].second.push_back(ev);
        }
        for (const auto& [k, lr] : buckets) {
          for (const TimedRow& l : lr.first) {
            for (const TimedRow& r : lr.second) {
              out.push_back({std::max(l.time, r.time),
                             plan::join_rows(k.second, l.row.second, r.row.second)});
            }
          }
        }
        break;
      }
      case StreamStage::Kind::kSink: {
        for (std::size_t p : st.parents) {
          out.insert(out.end(), outs[p].begin(), outs[p].end());
        }
        break;
      }
    }
  }
  return std::move(outs.back());
}

Bytes canonical_stream_bytes(std::vector<TimedRow> rows) {
  std::sort(rows.begin(), rows.end(), [](const TimedRow& a, const TimedRow& b) {
    const auto ab = double_bits(a.time), bb = double_bits(b.time);
    return ab != bb ? ab < bb : a.row < b.row;
  });
  BufWriter w(rows.size() * 24 + 8);
  w.write_varint(rows.size());
  for (const TimedRow& r : rows) {
    w.write_pod(double_bits(r.time));
    w.write_pod(r.row.first);
    w.write_pod(r.row.second);
  }
  return w.take();
}

}  // namespace hpbdc::dstream
