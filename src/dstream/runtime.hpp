#pragma once
// Distributed streaming runtime over the simulated cluster: the continuous
// counterpart of dist::DistRuntime. One StreamRuntime runs ONE streaming job
// at a time on a sim::Comm fabric (+ optional sim::Dfs for checkpoint
// durability), with the coordinator (JobManager) on a protected node and
// every other node hosting stage tasks.
//
// Data plane — push-based, credit-paced (the flow-shuffle idiom from
// src/dist/flow applied to a continuous stream): producers buffer events per
// hash-partitioned channel, seal segments of `segment_bytes`-derived size,
// and send them the moment credits allow; consumers return a credit only
// after PROCESSING a segment, so a slow operator starves its producers of
// credits and the stall cascades upstream until the sources pause — real,
// measurable backpressure (stats().backpressure_pauses, the F14 onset
// metric). Per-channel sequence numbers give FIFO delivery; a generation
// fence on every message drops cross-recovery strays.
//
// Control plane — aligned-barrier (Chandy–Lamport with channel blocking)
// epochs:
//
//   coordinator --trigger(n)--> sources: seal buffers, enqueue barrier(n)
//       carrying the source watermark BEHIND all buffered data
//   operator: first barrier(n) on a channel BLOCKS it (segments buffer,
//       credits withheld); when barrier(n) has arrived on every input:
//         W_n := min over inputs of the barrier watermarks
//         fire windows with end <= W_n (results are epoch-n data,
//         emitted BEFORE the forwarded barrier)
//         snapshot operator state -> ack(coordinator), forward barrier(n, W_n)
//         unblock channels, replay buffered segments
//   coordinator: all acks in -> checkpoint state+offsets to the Dfs; on
//       durable write, epoch n COMPLETES: the sink's buffered epochs <= n
//       commit to the job output exactly once, then epoch n+1 triggers.
//
// Exactly-once recovery: heartbeat timeout declares a node dead, bumps the
// generation fence, reassigns its tasks to live nodes, restores EVERY task
// from the last completed checkpoint (sources rewind to recorded offsets),
// and discards the sink's uncommitted epoch buffers; re-fired windows land
// in re-buffered epochs, so the committed multiset is bit-identical to a
// fault-free run — the invariant the streaming chaos oracle
// (src/chaos/streaming_oracle) enforces.

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/stream.hpp"
#include "dist/options.hpp"
#include "dstream/streaming.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/plan.hpp"
#include "sim/comm.hpp"
#include "sim/dfs.hpp"

namespace hpbdc::dstream {

struct StreamConfig {
  std::size_t coordinator = 0;     // JobManager + sink host; never killed
  double epoch_interval = 0.5;     // barrier cadence, simulated seconds
  double heartbeat_interval = 0.15;
  double heartbeat_timeout = 0.6;  // silence before a worker is declared dead
  double event_cost = 4e-6;        // operator compute per event, seconds
  double retry_delay = 0.25;       // checkpoint-read retry backoff
  std::size_t max_buffered_segments = 8;  // per-channel cap before sources pause
  std::uint64_t ctrl_bytes = 96;   // heartbeat/trigger/ack wire body
  std::uint64_t seed = 1;          // heartbeat phase jitter
  /// Seeded-bug hook for the streaming chaos harness (mirrors
  /// DistConfig-style fault seeding): a recovery restores each source one
  /// event PAST its recorded offset, silently losing an event — the exact
  /// class of off-by-one the differential oracle exists to catch.
  bool buggy_restore = false;
};

struct StreamStats {
  std::uint64_t events_emitted = 0;       // source rows put on channels
  std::uint64_t events_processed = 0;     // rows applied at operators/sink
  std::uint64_t events_late_dropped = 0;  // source-side watermark drops
  std::uint64_t segments_sent = 0;
  std::uint64_t segment_acks = 0;
  std::uint64_t credit_stalls = 0;        // channel pump blocked on credits
  std::uint64_t backpressure_pauses = 0;  // source generation pauses
  std::uint64_t barriers_forwarded = 0;
  std::uint64_t epochs_triggered = 0;
  std::uint64_t epochs_completed = 0;
  std::uint64_t epochs_aborted = 0;       // rewound by recoveries
  std::uint64_t checkpoints_written = 0;
  std::uint64_t ckpt_write_failures = 0;
  std::uint64_t windows_fired = 0;
  std::uint64_t rows_committed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t restores_sent = 0;
  std::uint64_t stale_dropped = 0;        // generation-fenced messages
  std::uint64_t nodes_declared_dead = 0;
  std::uint64_t heartbeats = 0;
};

/// One exactly-once committed output row, stamped with its commit time (per-
/// window latency for F14 = committed_at − row.time, since aggregate rows
/// are timed at their window end).
struct CommittedRow {
  TimedRow row;
  double committed_at = 0;
};

struct StreamResult {
  bool ok = false;
  std::string error;
  double makespan = 0;
  std::vector<CommittedRow> committed;
  std::vector<TimedRow> rows() const {
    std::vector<TimedRow> out;
    out.reserve(committed.size());
    for (const CommittedRow& c : committed) out.push_back(c.row);
    return out;
  }
};

class StreamRuntime {
 public:
  using DoneFn = std::function<void(const StreamResult&)>;
  /// Fires at every epoch completion (serve charges per-epoch DRF usage here).
  using EpochFn = std::function<void(std::uint64_t epoch, double sink_watermark)>;

  StreamRuntime(sim::Comm& comm, StreamConfig cfg, sim::Dfs* dfs = nullptr);

  /// Start a streaming job; throws std::logic_error while one is running.
  /// `opts` supplies the data-plane knobs: kPush runs the credit-paced flow
  /// channels as configured; kPull degrades to effectively unbounded credits
  /// (segmented, unpaced) — streaming is inherently push-shaped, so serve
  /// submits streaming jobs with the push transport selected.
  void submit(StreamJobSpec spec, const dist::RuntimeOptions& opts, DoneFn done,
              EpochFn on_epoch = nullptr);

  bool busy() const noexcept { return running_; }

  /// Ground-truth fault injection (same contract as DistRuntime): the
  /// coordinator only learns about a kill through heartbeat silence.
  void kill_node_at(std::size_t node, sim::SimTime t);
  void recover_node_at(std::size_t node, sim::SimTime t);

  /// dstream.* metrics: watermark_lag_ms gauge, epochs_completed /
  /// events_late_dropped / events_emitted / rows_committed / recoveries /
  /// backpressure_pauses counters.
  void bind_metrics(obs::MetricsRegistry& reg);

  /// Epoch + recovery spans on the SIMULATED clock (ts_us = sim seconds
  /// * 1e6), mirroring dist::DistRuntime's trace convention.
  void set_trace(obs::TraceSession* trace) noexcept { trace_ = trace; }

  const StreamStats& stats() const noexcept { return stats_; }
  const StreamConfig& config() const noexcept { return cfg_; }
  std::uint64_t epochs_completed() const noexcept { return stats_.epochs_completed; }
  double sink_watermark() const noexcept { return sink_wm_; }

 private:
  // ---- operator instantiations over the shared dataflow::stream logic ----
  struct RowKeyFn {
    std::uint64_t operator()(const plan::Row& r) const noexcept { return r.first; }
  };
  struct RowCombineFn {
    void operator()(std::uint64_t& a, const plan::Row& r) const noexcept {
      a = plan::reduce_combine(a, r.second);
    }
  };
  struct RowIdentityFn {
    plan::Row operator()(const plan::Row& r) const noexcept { return r; }
  };
  struct RowCountFn {
    void operator()(std::uint64_t& a, const plan::Row&) const noexcept { ++a; }
  };
  struct TimedRowKeyFn {
    std::uint64_t operator()(const TimedRow& t) const noexcept { return t.row.first; }
  };
  using SumAggregator =
      dataflow::stream::WindowedAggregator<plan::Row, std::uint64_t, std::uint64_t,
                                           RowKeyFn, RowCombineFn>;
  using DistinctAggregator =
      dataflow::stream::WindowedAggregator<plan::Row, plan::Row, std::uint64_t,
                                           RowIdentityFn, RowCountFn>;
  using RowWindowJoin = dataflow::stream::WindowJoin<TimedRow, TimedRow, std::uint64_t,
                                                     TimedRowKeyFn, TimedRowKeyFn>;

  struct Edge {
    std::size_t src_stage = 0;
    std::size_t dst_stage = 0;
    std::size_t side = 0;      // parent index at dst (join: 0 = left, 1 = right)
    std::size_t ch_base = 0;   // first channel index of this edge's grid
  };

  /// One in-flight channel item: a sealed data segment or a barrier.
  struct QItem {
    bool barrier = false;
    std::uint64_t epoch = 0;
    double wm = 0;
    std::vector<TimedRow> events;
  };

  struct Channel {
    std::size_t edge = 0;
    std::size_t src_gid = 0, dst_gid = 0;
    // Sender side.
    std::vector<TimedRow> open;    // accumulating segment
    std::deque<QItem> queue;       // sealed, awaiting credits
    std::size_t credits = 0;
    std::uint64_t next_seq = 0;
    // Receiver side.
    std::uint64_t expect_seq = 0;
    std::map<std::uint64_t, QItem> stash;  // defensive reorder buffer
    bool blocked = false;                  // barrier-aligned, epoch boundary
    std::uint64_t barrier_epoch = 0;
    double barrier_wm = 0;
    std::deque<QItem> backlog;             // segments held while blocked
  };

  struct Task {
    std::size_t stage = 0, local = 0, gid = 0;
    std::size_t node = 0;
    double busy_until = 0;    // serialized operator compute timeline
    std::size_t aligned = 0;  // input channels blocked on the current barrier
    std::vector<std::size_t> in_channels;
    // Source state.
    std::vector<SourceItem> items;
    std::size_t offset = 0;
    double src_wm = -std::numeric_limits<double>::infinity();
    bool paused = false;
    // Operator state (at most one non-null, by stage kind).
    std::unique_ptr<SumAggregator> agg;
    std::unique_ptr<DistinctAggregator> dis;
    std::unique_ptr<RowWindowJoin> join;
    // Sink state.
    std::vector<TimedRow> epoch_buf;
    std::map<std::uint64_t, std::vector<TimedRow>> pending;  // uncommitted epochs
  };

  sim::Simulator& sim() noexcept { return comm_.simulator(); }
  std::size_t stage_ntasks(std::size_t stage) const;
  std::size_t first_gid(std::size_t stage) const { return stage_first_gid_[stage]; }
  std::size_t ch_index(const Edge& e, std::size_t src_local,
                       std::size_t dst_local) const;
  bool fence_ok(std::uint64_t fence) const noexcept { return fence == fence_; }

  // Data plane.
  void emit(Task& t, const TimedRow& ev);
  void seal(Channel& ch);
  void pump(std::size_t ch_idx);
  void send_item(std::size_t ch_idx, QItem item);
  void on_data(std::size_t rank, const Bytes& payload);
  void deliver(std::size_t ch_idx, QItem item);
  void enqueue_work(std::size_t ch_idx, QItem item);
  void service(std::size_t ch_idx, QItem& item);
  void apply_segment(Task& t, std::size_t side, const std::vector<TimedRow>& events);
  void maybe_resume_source(std::size_t src_gid);
  void source_pump(std::size_t gid);
  void enqueue_barrier(Task& t, std::uint64_t epoch, double wm);

  // Barriers, snapshots, epochs.
  void complete_barrier(Task& t);
  Bytes snapshot(const Task& t) const;
  void restore_task(Task& t, const Bytes& state);
  void trigger_epoch(std::uint64_t epoch);
  void on_task_ack(std::uint64_t epoch, std::size_t gid, double wm, Bytes state);
  void complete_epoch(std::uint64_t epoch);
  void schedule_next_trigger();
  void finish_job(bool ok, std::string error);

  // Failure detection and recovery.
  void on_ctrl(std::size_t rank, std::size_t src, const Bytes& payload);
  void heartbeat_loop(std::size_t node);
  void monitor_tick();
  void start_recovery();
  void send_restores();
  void on_restore_ack(std::size_t gid);

  void count(obs::Counter* c, std::uint64_t n = 1) {
    if (c != nullptr) c->add(n);
  }

  sim::Comm& comm_;
  StreamConfig cfg_;
  sim::Dfs* dfs_;
  int tag_data_ = 0, tag_ctrl_ = 0;

  // Job state (valid while running_).
  bool running_ = false;
  StreamJobSpec spec_;
  dist::RuntimeOptions opts_;
  DoneFn done_;
  EpochFn on_epoch_;
  double start_ = 0;
  std::size_t events_per_segment_ = 64;
  std::size_t init_credits_ = 4;
  std::uint64_t fence_ = 0;  // bumped per submit AND per recovery
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<Channel> channels_;
  std::vector<std::size_t> stage_first_gid_;
  std::vector<std::vector<std::size_t>> stage_out_edges_;
  std::size_t sink_gid_ = 0;

  // Coordinator state.
  bool recovering_ = false;
  std::uint64_t epoch_ = 0;          // last triggered epoch
  std::uint64_t last_completed_ = 0; // 0 = the implicit initial checkpoint
  double epoch_t0_ = 0;              // trigger time of the current epoch
  double sink_wm_ = -std::numeric_limits<double>::infinity();
  double sink_wm_pending_ = -std::numeric_limits<double>::infinity();
  std::map<std::size_t, Bytes> acks_;        // gid -> state, current epoch
  std::map<std::size_t, Bytes> ckpt_state_;  // last COMPLETED checkpoint
  std::string ckpt_file_;
  std::size_t restore_acks_ = 0;
  std::vector<CommittedRow> committed_;
  std::vector<bool> alive_;          // ground truth
  std::vector<bool> believed_dead_;  // coordinator's failure-detector view
  std::vector<double> last_hb_;
  std::size_t reassign_rr_ = 0;

  StreamStats stats_;
  obs::TraceSession* trace_ = nullptr;
  obs::Gauge* g_wm_lag_ = nullptr;
  obs::Counter* m_epochs_ = nullptr;
  obs::Counter* m_late_ = nullptr;
  obs::Counter* m_emitted_ = nullptr;
  obs::Counter* m_committed_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_pauses_ = nullptr;
};

}  // namespace hpbdc::dstream
