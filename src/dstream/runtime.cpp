#include "dstream/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"

namespace hpbdc::dstream {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Message type bytes. Data plane (tag_data_) and control plane (tag_ctrl_)
// each carry a one-byte discriminator so every rank needs exactly two
// handlers regardless of how many tasks it hosts.
enum : std::uint8_t {
  kMsgSegment = 1,
  kMsgAck = 2,
};
enum : std::uint8_t {
  kMsgTrigger = 1,
  kMsgHeartbeat = 2,
  kMsgTaskAck = 3,
  kMsgRestore = 4,
  kMsgRestoreAck = 5,
};

}  // namespace

StreamRuntime::StreamRuntime(sim::Comm& comm, StreamConfig cfg, sim::Dfs* dfs)
    : comm_(comm), cfg_(cfg), dfs_(dfs) {
  if (cfg_.coordinator >= comm_.nranks()) {
    throw std::invalid_argument("StreamRuntime: coordinator rank out of range");
  }
  tag_data_ = comm_.next_tag();
  tag_ctrl_ = comm_.next_tag();
  alive_.assign(comm_.nranks(), true);
  believed_dead_.assign(comm_.nranks(), false);
  last_hb_.assign(comm_.nranks(), 0.0);
  for (std::size_t r = 0; r < comm_.nranks(); ++r) {
    comm_.set_handler(r, tag_data_,
                      [this, r](std::size_t, const Bytes& p) { on_data(r, p); });
    comm_.set_handler(
        r, tag_ctrl_,
        [this, r](std::size_t src, const Bytes& p) { on_ctrl(r, src, p); });
  }
}

std::size_t StreamRuntime::stage_ntasks(std::size_t stage) const {
  return spec_.stages[stage].kind == StreamStage::Kind::kSink ? 1
                                                              : spec_.opts.ntasks;
}

std::size_t StreamRuntime::ch_index(const Edge& e, std::size_t src_local,
                                    std::size_t dst_local) const {
  return e.ch_base + src_local * stage_ntasks(e.dst_stage) + dst_local;
}

void StreamRuntime::submit(StreamJobSpec spec, const dist::RuntimeOptions& opts,
                           DoneFn done, EpochFn on_epoch) {
  if (running_) throw std::logic_error("StreamRuntime: a streaming job is running");
  if (comm_.nranks() < 2) {
    throw std::invalid_argument("StreamRuntime: need >= 2 ranks (coordinator + worker)");
  }
  if (spec.stages.empty() || spec.stages.back().kind != StreamStage::Kind::kSink) {
    throw std::invalid_argument("StreamRuntime: spec must end with a sink stage");
  }
  running_ = true;
  recovering_ = false;
  spec_ = std::move(spec);
  opts_ = opts;
  done_ = std::move(done);
  on_epoch_ = std::move(on_epoch);
  start_ = sim().now();
  ++fence_;
  stats_ = StreamStats{};
  committed_.clear();
  ckpt_state_.clear();
  ckpt_file_.clear();
  acks_.clear();
  epoch_ = 0;
  last_completed_ = 0;
  sink_wm_ = kNegInf;
  reassign_rr_ = 0;

  // Segment sizing + credits from the per-job transport options. Streaming
  // events are tiny (~24 wire bytes), so segment_bytes maps to an event
  // count; under the pull transport the data plane degrades to uncredited
  // push (segments flow, nothing paces them) — serve always selects kPush
  // for streaming jobs, and the F14 backpressure sweep depends on it.
  events_per_segment_ = std::clamp<std::size_t>(opts_.flow.segment_bytes / 4096, 1, 4096);
  init_credits_ = opts_.transport == dist::TransportKind::kPush
                      ? opts_.flow.credits_per_channel
                      : (std::size_t{1} << 30);

  // Placement: the sink rides the coordinator (its output is the job result);
  // every other stage spreads ntasks round-robin over the worker ranks.
  std::vector<std::size_t> workers;
  for (std::size_t r = 0; r < comm_.nranks(); ++r) {
    if (r != cfg_.coordinator) workers.push_back(r);
  }
  tasks_.clear();
  stage_first_gid_.assign(spec_.stages.size(), 0);
  std::size_t rr = 0;
  for (std::size_t s = 0; s < spec_.stages.size(); ++s) {
    stage_first_gid_[s] = tasks_.size();
    for (std::size_t l = 0; l < stage_ntasks(s); ++l) {
      Task t;
      t.stage = s;
      t.local = l;
      t.gid = tasks_.size();
      t.busy_until = sim().now();
      const StreamStage& st = spec_.stages[s];
      if (st.kind == StreamStage::Kind::kSink) {
        t.node = cfg_.coordinator;
        sink_gid_ = t.gid;
      } else {
        t.node = workers[rr++ % workers.size()];
      }
      if (st.kind == StreamStage::Kind::kSource) {
        std::uint64_t dropped = 0;
        t.items = source_partition_items(st, spec_.opts, l, stage_ntasks(s), &dropped);
        stats_.events_late_dropped += dropped;
        count(m_late_, dropped);
      }
      switch (st.kind) {
        case StreamStage::Kind::kAggregate:
          t.agg = std::make_unique<SumAggregator>(
              dataflow::stream::WindowSpec::tumbling(spec_.opts.window), kInf,
              RowKeyFn{}, RowCombineFn{});
          break;
        case StreamStage::Kind::kDistinct:
          t.dis = std::make_unique<DistinctAggregator>(
              dataflow::stream::WindowSpec::tumbling(spec_.opts.window), kInf,
              RowIdentityFn{}, RowCountFn{});
          break;
        case StreamStage::Kind::kJoin:
          t.join = std::make_unique<RowWindowJoin>(spec_.opts.window, kInf,
                                                   TimedRowKeyFn{}, TimedRowKeyFn{});
          break;
        default:
          break;
      }
      tasks_.push_back(std::move(t));
    }
  }

  // Channel grids, one per (edge, src task, dst task).
  edges_.clear();
  channels_.clear();
  stage_out_edges_.assign(spec_.stages.size(), {});
  for (std::size_t s = 0; s < spec_.stages.size(); ++s) {
    const StreamStage& st = spec_.stages[s];
    for (std::size_t side = 0; side < st.parents.size(); ++side) {
      Edge e;
      e.src_stage = st.parents[side];
      e.dst_stage = s;
      e.side = side;
      e.ch_base = channels_.size();
      const std::size_t eidx = edges_.size();
      stage_out_edges_[e.src_stage].push_back(eidx);
      for (std::size_t sl = 0; sl < stage_ntasks(e.src_stage); ++sl) {
        for (std::size_t dl = 0; dl < stage_ntasks(s); ++dl) {
          Channel ch;
          ch.edge = eidx;
          ch.src_gid = first_gid(e.src_stage) + sl;
          ch.dst_gid = first_gid(s) + dl;
          ch.credits = init_credits_;
          channels_.push_back(std::move(ch));
          tasks_[first_gid(s) + dl].in_channels.push_back(channels_.size() - 1);
        }
      }
      edges_.push_back(e);
    }
  }

  believed_dead_.assign(comm_.nranks(), false);
  last_hb_.assign(comm_.nranks(), sim().now());

  // Start the machinery: source generators, worker heartbeats, the failure
  // monitor, and the first barrier epoch.
  const std::uint64_t f = fence_;
  for (const Task& t : tasks_) {
    if (spec_.stages[t.stage].kind == StreamStage::Kind::kSource) {
      const std::size_t gid = t.gid;
      sim().schedule_after(0, [this, gid, f] {
        if (running_ && fence_ == f) source_pump(gid);
      });
    }
  }
  for (std::size_t r = 0; r < comm_.nranks(); ++r) {
    if (r == cfg_.coordinator) continue;
    const double phase =
        cfg_.heartbeat_interval *
        (static_cast<double>(mix64(cfg_.seed ^ r) % 1000) / 1000.0);
    sim().schedule_after(phase, [this, r] { heartbeat_loop(r); });
  }
  sim().schedule_after(cfg_.heartbeat_interval, [this] { monitor_tick(); });
  sim().schedule_after(cfg_.epoch_interval, [this, f] {
    if (running_ && fence_ == f && !recovering_) trigger_epoch(1);
  });
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void StreamRuntime::emit(Task& t, const TimedRow& ev) {
  for (std::size_t eidx : stage_out_edges_[t.stage]) {
    const Edge& e = edges_[eidx];
    const std::size_t dst_local =
        static_cast<std::size_t>(hash_u64(ev.row.first)) % stage_ntasks(e.dst_stage);
    Channel& ch = channels_[ch_index(e, t.local, dst_local)];
    ch.open.push_back(ev);
    if (ch.open.size() >= events_per_segment_) {
      seal(ch);
      pump(ch_index(e, t.local, dst_local));
    }
  }
}

void StreamRuntime::seal(Channel& ch) {
  if (ch.open.empty()) return;
  QItem q;
  q.events = std::move(ch.open);
  ch.open.clear();
  ch.queue.push_back(std::move(q));
}

void StreamRuntime::pump(std::size_t ch_idx) {
  Channel& ch = channels_[ch_idx];
  if (!alive_[tasks_[ch.src_gid].node]) return;
  while (!ch.queue.empty()) {
    // FIFO: a barrier needs no credit but still waits behind stalled
    // segments — barrier overtaking would tear the consistent cut.
    if (!ch.queue.front().barrier && ch.credits == 0) {
      ++stats_.credit_stalls;
      return;
    }
    QItem item = std::move(ch.queue.front());
    ch.queue.pop_front();
    if (!item.barrier) --ch.credits;
    send_item(ch_idx, std::move(item));
  }
  maybe_resume_source(ch.src_gid);
}

void StreamRuntime::send_item(std::size_t ch_idx, QItem item) {
  Channel& ch = channels_[ch_idx];
  BufWriter w(item.events.size() * 24 + 32);
  w.write_pod(std::uint8_t{kMsgSegment});
  w.write_pod(fence_);
  w.write_varint(ch_idx);
  w.write_varint(ch.next_seq++);
  w.write_pod(static_cast<std::uint8_t>(item.barrier ? 1 : 0));
  w.write_varint(item.epoch);
  w.write_pod(item.wm);
  Serde<std::vector<TimedRow>>::write(w, item.events);
  if (!item.barrier) ++stats_.segments_sent;
  comm_.send(tasks_[ch.src_gid].node, tasks_[ch.dst_gid].node, tag_data_, w.take());
}

void StreamRuntime::on_data(std::size_t rank, const Bytes& payload) {
  if (!running_ || !alive_[rank]) return;
  BufReader r(payload);
  const auto type = r.read_pod<std::uint8_t>();
  const auto fence = r.read_pod<std::uint64_t>();
  if (!fence_ok(fence)) {
    ++stats_.stale_dropped;
    return;
  }
  const std::size_t ch_idx = r.read_varint();
  Channel& ch = channels_[ch_idx];
  if (type == kMsgAck) {
    if (tasks_[ch.src_gid].node != rank) return;  // reassigned mid-flight
    ++ch.credits;
    ++stats_.segment_acks;
    pump(ch_idx);
    return;
  }
  if (tasks_[ch.dst_gid].node != rank) return;
  const std::uint64_t seq = r.read_varint();
  QItem item;
  item.barrier = r.read_pod<std::uint8_t>() != 0;
  item.epoch = r.read_varint();
  item.wm = r.read_pod<double>();
  item.events = Serde<std::vector<TimedRow>>::read(r);
  if (seq != ch.expect_seq) {
    ch.stash.emplace(seq, std::move(item));  // defensive; fabric is FIFO
    return;
  }
  deliver(ch_idx, std::move(item));
  while (true) {
    auto it = ch.stash.find(ch.expect_seq);
    if (it == ch.stash.end()) break;
    QItem next = std::move(it->second);
    ch.stash.erase(it);
    deliver(ch_idx, std::move(next));
  }
}

void StreamRuntime::deliver(std::size_t ch_idx, QItem item) {
  Channel& ch = channels_[ch_idx];
  ++ch.expect_seq;
  if (item.barrier) {
    // Alignment: block the channel AT DELIVERY (segments that slip in behind
    // the barrier must not be applied before the snapshot) and queue the
    // zero-cost alignment accounting behind any in-service segments.
    ch.blocked = true;
    ch.barrier_epoch = item.epoch;
    ch.barrier_wm = item.wm;
    enqueue_work(ch_idx, std::move(item));
    return;
  }
  if (ch.blocked) {
    ch.backlog.push_back(std::move(item));  // epoch n+1 data; ack withheld
    return;
  }
  enqueue_work(ch_idx, std::move(item));
}

void StreamRuntime::enqueue_work(std::size_t ch_idx, QItem item) {
  Channel& ch = channels_[ch_idx];
  Task& t = tasks_[ch.dst_gid];
  const double start = std::max(sim().now(), t.busy_until);
  const double cost =
      item.barrier ? 0.0 : static_cast<double>(item.events.size()) * cfg_.event_cost;
  t.busy_until = start + cost;
  const std::uint64_t f = fence_;
  sim().schedule_at(t.busy_until, [this, ch_idx, f, it = std::move(item)]() mutable {
    if (!running_ || fence_ != f) return;
    service(ch_idx, it);
  });
}

void StreamRuntime::service(std::size_t ch_idx, QItem& item) {
  Channel& ch = channels_[ch_idx];
  Task& t = tasks_[ch.dst_gid];
  if (!alive_[t.node]) return;
  if (item.barrier) {
    ++t.aligned;
    if (t.aligned == t.in_channels.size()) complete_barrier(t);
    return;
  }
  apply_segment(t, edges_[ch.edge].side, item.events);
  // Processing done: return the credit (this is what makes backpressure
  // propagate — a busy or barrier-blocked consumer sits on its credits).
  BufWriter w(16);
  w.write_pod(std::uint8_t{kMsgAck});
  w.write_pod(fence_);
  w.write_varint(ch_idx);
  comm_.send_sized(t.node, tasks_[ch.src_gid].node, tag_data_, opts_.flow.ack_bytes,
                   w.take());
}

void StreamRuntime::apply_segment(Task& t, std::size_t side,
                                  const std::vector<TimedRow>& events) {
  const StreamStage& st = spec_.stages[t.stage];
  stats_.events_processed += events.size();
  switch (st.kind) {
    case StreamStage::Kind::kStateless:
      for (const TimedRow& ev : events) {
        if (st.steps.empty()) {
          emit(t, ev);
        } else {
          for (const plan::Row& r : plan::apply_steps(st.steps, 0, {ev.row})) {
            emit(t, TimedRow{ev.time, r});
          }
        }
      }
      break;
    case StreamStage::Kind::kAggregate:
      for (const TimedRow& ev : events) {
        t.agg->on_event(dataflow::stream::Event<plan::Row>{ev.time, ev.row});
      }
      break;
    case StreamStage::Kind::kDistinct:
      for (const TimedRow& ev : events) {
        t.dis->on_event(dataflow::stream::Event<plan::Row>{ev.time, ev.row});
      }
      break;
    case StreamStage::Kind::kJoin: {
      for (const TimedRow& ev : events) {
        if (side == 0) {
          t.join->on_left(dataflow::stream::Event<TimedRow>{ev.time, ev});
        } else {
          t.join->on_right(dataflow::stream::Event<TimedRow>{ev.time, ev});
        }
      }
      // Pairs surface incrementally (probe-then-insert): they are epoch-n
      // data and must travel ahead of this operator's barrier n.
      for (auto& jr : t.join->take_results()) {
        emit(t, TimedRow{std::max(jr.left.time, jr.right.time),
                         plan::join_rows(jr.key, jr.left.row.second,
                                         jr.right.row.second)});
      }
      break;
    }
    case StreamStage::Kind::kSink:
      t.epoch_buf.insert(t.epoch_buf.end(), events.begin(), events.end());
      break;
    case StreamStage::Kind::kSource:
      break;  // sources have no inputs
  }
}

void StreamRuntime::maybe_resume_source(std::size_t src_gid) {
  Task& t = tasks_[src_gid];
  if (!t.paused || spec_.stages[t.stage].kind != StreamStage::Kind::kSource) return;
  for (std::size_t eidx : stage_out_edges_[t.stage]) {
    const Edge& e = edges_[eidx];
    for (std::size_t dl = 0; dl < stage_ntasks(e.dst_stage); ++dl) {
      if (channels_[ch_index(e, t.local, dl)].queue.size() >=
          cfg_.max_buffered_segments) {
        return;
      }
    }
  }
  t.paused = false;
  const std::uint64_t f = fence_;
  const std::size_t gid = t.gid;
  sim().schedule_after(0, [this, gid, f] {
    if (running_ && fence_ == f) source_pump(gid);
  });
}

void StreamRuntime::source_pump(std::size_t gid) {
  Task& t = tasks_[gid];
  if (!alive_[t.node] || t.paused) return;
  const std::uint64_t f = fence_;
  while (t.offset < t.items.size()) {
    const SourceItem& it = t.items[t.offset];
    const double target = start_ + it.emit_at;
    if (sim().now() < target) {
      sim().schedule_at(target, [this, gid, f] {
        if (running_ && fence_ == f) source_pump(gid);
      });
      return;
    }
    // Backpressure gate: with every outgoing channel already holding a full
    // queue of unsendable segments, generating more would only grow memory —
    // pause until credits drain a queue (maybe_resume_source).
    for (std::size_t eidx : stage_out_edges_[t.stage]) {
      const Edge& e = edges_[eidx];
      for (std::size_t dl = 0; dl < stage_ntasks(e.dst_stage); ++dl) {
        if (channels_[ch_index(e, t.local, dl)].queue.size() >=
            cfg_.max_buffered_segments) {
          t.paused = true;
          ++stats_.backpressure_pauses;
          count(m_pauses_);
          return;
        }
      }
    }
    for (const plan::Row& r : it.rows) {
      emit(t, TimedRow{it.time, r});
      ++stats_.events_emitted;
      count(m_emitted_);
    }
    t.src_wm = it.wm_after;
    ++t.offset;
  }
  t.src_wm = kInf;  // stream exhausted: the next barrier flushes everything
}

// ---------------------------------------------------------------------------
// Barriers, snapshots, epochs
// ---------------------------------------------------------------------------

void StreamRuntime::enqueue_barrier(Task& t, std::uint64_t epoch, double wm) {
  for (std::size_t eidx : stage_out_edges_[t.stage]) {
    const Edge& e = edges_[eidx];
    for (std::size_t dl = 0; dl < stage_ntasks(e.dst_stage); ++dl) {
      const std::size_t ci = ch_index(e, t.local, dl);
      Channel& ch = channels_[ci];
      seal(ch);  // the barrier rides BEHIND everything emitted so far
      QItem q;
      q.barrier = true;
      q.epoch = epoch;
      q.wm = wm;
      ch.queue.push_back(std::move(q));
      pump(ci);
    }
  }
  ++stats_.barriers_forwarded;
}

void StreamRuntime::complete_barrier(Task& t) {
  const StreamStage& st = spec_.stages[t.stage];
  double wm = kInf;
  std::uint64_t epoch = 0;
  for (std::size_t ci : t.in_channels) {
    wm = std::min(wm, channels_[ci].barrier_wm);
    epoch = channels_[ci].barrier_epoch;
  }
  // Fire-then-snapshot-then-forward: closed windows are epoch data emitted
  // BEFORE the forwarded barrier, so downstream snapshots absorb them while
  // this snapshot no longer carries them.
  switch (st.kind) {
    case StreamStage::Kind::kAggregate: {
      t.agg->advance_watermark(wm);
      auto results = t.agg->take_results();
      stats_.windows_fired += results.size();
      for (auto& r : results) {
        emit(t, TimedRow{r.window.end, plan::Row{r.key, r.value}});
      }
      break;
    }
    case StreamStage::Kind::kDistinct: {
      t.dis->advance_watermark(wm);
      auto results = t.dis->take_results();
      stats_.windows_fired += results.size();
      for (auto& r : results) emit(t, TimedRow{r.window.end, r.key});
      break;
    }
    case StreamStage::Kind::kJoin:
      t.join->advance_watermark(wm);  // pairs already emitted; just expire
      break;
    case StreamStage::Kind::kSink:
      t.pending[epoch] = std::move(t.epoch_buf);
      t.epoch_buf.clear();
      break;
    default:
      break;
  }
  Bytes state = snapshot(t);
  BufWriter w(state.size() + 48);
  w.write_pod(std::uint8_t{kMsgTaskAck});
  w.write_pod(fence_);
  w.write_varint(epoch);
  w.write_varint(t.gid);
  w.write_pod(wm);
  w.write_bytes(state);
  comm_.send_sized(t.node, cfg_.coordinator, tag_ctrl_,
                   cfg_.ctrl_bytes + state.size(), w.take());
  if (st.kind != StreamStage::Kind::kSink) enqueue_barrier(t, epoch, wm);
  // Unblock and drain the alignment backlog (epoch n+1 data).
  t.aligned = 0;
  for (std::size_t ci : t.in_channels) {
    Channel& ch = channels_[ci];
    ch.blocked = false;
    while (!ch.backlog.empty()) {
      QItem q = std::move(ch.backlog.front());
      ch.backlog.pop_front();
      enqueue_work(ci, std::move(q));
    }
  }
}

Bytes StreamRuntime::snapshot(const Task& t) const {
  BufWriter w;
  switch (spec_.stages[t.stage].kind) {
    case StreamStage::Kind::kSource:
      w.write_varint(t.offset);
      break;
    case StreamStage::Kind::kAggregate:
      // Count, then (start, end, key, acc) tuples. Iteration order of the
      // per-window hash maps is unspecified — irrelevant, restore_open is
      // order-independent and all result comparisons are canonical multisets.
      {
        std::uint64_t n = 0;
        t.agg->for_each_open([&](double, double, std::uint64_t, std::uint64_t) { ++n; });
        w.write_varint(n);
        t.agg->for_each_open([&](double s, double e, std::uint64_t k, std::uint64_t v) {
          w.write_pod(s);
          w.write_pod(e);
          w.write_pod(k);
          w.write_pod(v);
        });
      }
      break;
    case StreamStage::Kind::kDistinct: {
      std::uint64_t n = 0;
      t.dis->for_each_open([&](double, double, const plan::Row&, std::uint64_t) { ++n; });
      w.write_varint(n);
      t.dis->for_each_open([&](double s, double e, const plan::Row& k, std::uint64_t v) {
        w.write_pod(s);
        w.write_pod(e);
        w.write_pod(k.first);
        w.write_pod(k.second);
        w.write_pod(v);
      });
      break;
    }
    case StreamStage::Kind::kJoin: {
      for (int pass = 0; pass < 2; ++pass) {
        std::uint64_t n = 0;
        const auto counter = [&](double, std::uint64_t, const TimedRow&) { ++n; };
        if (pass == 0) {
          t.join->for_each_left(counter);
        } else {
          t.join->for_each_right(counter);
        }
        w.write_varint(n);
        const auto writer = [&](double end, std::uint64_t k, const TimedRow& v) {
          w.write_pod(end);
          w.write_pod(k);
          Serde<TimedRow>::write(w, v);
        };
        if (pass == 0) {
          t.join->for_each_left(writer);
        } else {
          t.join->for_each_right(writer);
        }
      }
      break;
    }
    default:
      break;  // stateless and sink tasks carry no checkpointable state
  }
  return w.take();
}

void StreamRuntime::restore_task(Task& t, const Bytes& state) {
  const StreamStage& st = spec_.stages[t.stage];
  switch (st.kind) {
    case StreamStage::Kind::kSource: {
      t.offset = state.empty() ? 0 : static_cast<std::size_t>(BufReader(state).read_varint());
      if (cfg_.buggy_restore && t.offset > 0 && t.offset < t.items.size()) {
        ++t.offset;  // seeded bug: resume one event PAST the recorded offset
      }
      t.src_wm = t.offset > 0 ? t.items[t.offset - 1].wm_after : kNegInf;
      if (t.offset >= t.items.size()) t.src_wm = kInf;
      t.paused = false;
      break;
    }
    case StreamStage::Kind::kAggregate: {
      if (state.empty()) break;
      BufReader r(state);
      for (std::uint64_t n = r.read_varint(); n > 0; --n) {
        const double s = r.read_pod<double>();
        const double e = r.read_pod<double>();
        const auto k = r.read_pod<std::uint64_t>();
        const auto v = r.read_pod<std::uint64_t>();
        t.agg->restore_open(s, e, k, v);
      }
      break;
    }
    case StreamStage::Kind::kDistinct: {
      if (state.empty()) break;
      BufReader r(state);
      for (std::uint64_t n = r.read_varint(); n > 0; --n) {
        const double s = r.read_pod<double>();
        const double e = r.read_pod<double>();
        plan::Row row{r.read_pod<std::uint64_t>(), r.read_pod<std::uint64_t>()};
        const auto v = r.read_pod<std::uint64_t>();
        t.dis->restore_open(s, e, row, v);
      }
      break;
    }
    case StreamStage::Kind::kJoin: {
      if (state.empty()) break;
      BufReader r(state);
      for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t n = r.read_varint(); n > 0; --n) {
          const double end = r.read_pod<double>();
          const auto k = r.read_pod<std::uint64_t>();
          TimedRow v = Serde<TimedRow>::read(r);
          if (pass == 0) {
            t.join->restore_left(end, k, std::move(v));
          } else {
            t.join->restore_right(end, k, std::move(v));
          }
        }
      }
      break;
    }
    default:
      break;
  }
}

void StreamRuntime::trigger_epoch(std::uint64_t epoch) {
  epoch_ = epoch;
  epoch_t0_ = sim().now();
  acks_.clear();
  ++stats_.epochs_triggered;
  for (const Task& t : tasks_) {
    if (spec_.stages[t.stage].kind != StreamStage::Kind::kSource) continue;
    BufWriter w(32);
    w.write_pod(std::uint8_t{kMsgTrigger});
    w.write_pod(fence_);
    w.write_varint(epoch);
    w.write_varint(t.gid);
    comm_.send_sized(cfg_.coordinator, t.node, tag_ctrl_, cfg_.ctrl_bytes, w.take());
  }
}

void StreamRuntime::on_task_ack(std::uint64_t epoch, std::size_t gid, double wm,
                                Bytes state) {
  if (recovering_ || epoch != epoch_ || acks_.contains(gid)) return;
  acks_.emplace(gid, std::move(state));
  if (gid == sink_gid_) sink_wm_pending_ = wm;
  if (acks_.size() < tasks_.size()) return;

  // Every task snapshotted epoch `epoch`; make the checkpoint durable, then
  // complete. The state bytes stay in coordinator memory (the namenode role);
  // the Dfs write provides the replication cost and availability semantics.
  std::uint64_t bytes = 64 * tasks_.size();
  for (const auto& [g, st] : acks_) bytes += st.size();
  const std::string file = "stream-ckpt-" + std::to_string(epoch);
  const std::uint64_t f = fence_;
  const double sink_w = sink_wm_pending_;
  const auto finish = [this, epoch, f, file, sink_w](bool ok) {
    if (!running_ || fence_ != f) return;
    if (!ok) {
      // Not durable: epoch stays uncompleted (nothing commits), but the
      // pipeline keeps running — a later epoch's checkpoint supersedes it
      // and commits are cumulative.
      ++stats_.ckpt_write_failures;
      schedule_next_trigger();
      return;
    }
    ++stats_.checkpoints_written;
    ckpt_state_ = std::move(acks_);
    acks_.clear();
    ckpt_file_ = file;
    sink_wm_ = sink_w;
    complete_epoch(epoch);
  };
  if (dfs_ != nullptr) {
    dfs_->write(cfg_.coordinator, file, bytes, spec_.opts.checkpoint_policy, finish);
  } else {
    finish(true);
  }
}

void StreamRuntime::complete_epoch(std::uint64_t epoch) {
  last_completed_ = epoch;
  Task& sink = tasks_[sink_gid_];
  std::uint64_t committed_now = 0;
  while (!sink.pending.empty() && sink.pending.begin()->first <= epoch) {
    for (TimedRow& row : sink.pending.begin()->second) {
      committed_.push_back(CommittedRow{std::move(row), sim().now()});
      ++committed_now;
    }
    sink.pending.erase(sink.pending.begin());
  }
  stats_.rows_committed += committed_now;
  count(m_committed_, committed_now);
  ++stats_.epochs_completed;
  count(m_epochs_);
  if (g_wm_lag_ != nullptr && std::isfinite(sink_wm_)) {
    g_wm_lag_->set(static_cast<std::int64_t>((sim().now() - sink_wm_) * 1000.0));
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.name = "epoch-" + std::to_string(epoch);
    ev.category = "dstream";
    ev.ts_us = static_cast<std::uint64_t>(epoch_t0_ * 1e6);
    ev.dur_us = static_cast<std::uint64_t>((sim().now() - epoch_t0_) * 1e6);
    ev.items = committed_now;
    ev.has_items = true;
    trace_->record(ev);
  }
  if (on_epoch_) on_epoch_(epoch, sink_wm_);
  if (sink_wm_ == kInf) {
    finish_job(true, {});
    return;
  }
  schedule_next_trigger();
}

void StreamRuntime::schedule_next_trigger() {
  const std::uint64_t f = fence_;
  const std::uint64_t next = epoch_ + 1;
  const double at = std::max(sim().now(), epoch_t0_ + cfg_.epoch_interval);
  sim().schedule_at(at, [this, f, next] {
    if (running_ && fence_ == f && !recovering_) trigger_epoch(next);
  });
}

void StreamRuntime::finish_job(bool ok, std::string error) {
  running_ = false;
  ++fence_;  // invalidate every outstanding scheduled callback
  StreamResult res;
  res.ok = ok;
  res.error = std::move(error);
  res.makespan = sim().now() - start_;
  res.committed = std::move(committed_);
  committed_.clear();
  tasks_.clear();
  channels_.clear();
  edges_.clear();
  if (done_) {
    DoneFn d = std::move(done_);
    done_ = nullptr;
    d(res);
  }
}

// ---------------------------------------------------------------------------
// Control plane: heartbeats, failure detection, recovery
// ---------------------------------------------------------------------------

void StreamRuntime::on_ctrl(std::size_t rank, std::size_t src, const Bytes& payload) {
  if (!running_ || !alive_[rank]) return;
  BufReader r(payload);
  const auto type = r.read_pod<std::uint8_t>();
  if (type == kMsgHeartbeat) {
    // Deliberately NOT fenced: a heartbeat proves liveness across recoveries;
    // fencing it would make freshly-recovered nodes look permanently dead.
    if (rank != cfg_.coordinator) return;
    last_hb_[src] = sim().now();
    believed_dead_[src] = false;
    return;
  }
  const auto fence = r.read_pod<std::uint64_t>();
  if (!fence_ok(fence)) {
    ++stats_.stale_dropped;
    return;
  }
  switch (type) {
    case kMsgTrigger: {
      const std::uint64_t epoch = r.read_varint();
      const std::size_t gid = r.read_varint();
      Task& t = tasks_[gid];
      if (t.node != rank) return;
      // The source barrier: everything emitted so far is epoch data ahead of
      // it, and the snapshot (the replay offset) is taken at this exact cut.
      enqueue_barrier(t, epoch, t.src_wm);
      Bytes state = snapshot(t);
      BufWriter w(state.size() + 48);
      w.write_pod(std::uint8_t{kMsgTaskAck});
      w.write_pod(fence_);
      w.write_varint(epoch);
      w.write_varint(t.gid);
      w.write_pod(t.src_wm);
      w.write_bytes(state);
      comm_.send_sized(rank, cfg_.coordinator, tag_ctrl_,
                       cfg_.ctrl_bytes + state.size(), w.take());
      break;
    }
    case kMsgTaskAck: {
      if (rank != cfg_.coordinator) return;
      const std::uint64_t epoch = r.read_varint();
      const std::size_t gid = r.read_varint();
      const double wm = r.read_pod<double>();
      on_task_ack(epoch, gid, wm, r.read_bytes());
      break;
    }
    case kMsgRestore: {
      const std::size_t gid = r.read_varint();
      Task& t = tasks_[gid];
      if (t.node != rank) return;
      restore_task(t, r.read_bytes());
      BufWriter w(16);
      w.write_pod(std::uint8_t{kMsgRestoreAck});
      w.write_pod(fence_);
      w.write_varint(gid);
      comm_.send_sized(rank, cfg_.coordinator, tag_ctrl_, cfg_.ctrl_bytes, w.take());
      break;
    }
    case kMsgRestoreAck: {
      if (rank != cfg_.coordinator) return;
      on_restore_ack(r.read_varint());
      break;
    }
    default:
      break;
  }
}

void StreamRuntime::heartbeat_loop(std::size_t node) {
  if (!running_) return;
  if (alive_[node]) {
    BufWriter w(8);
    w.write_pod(std::uint8_t{kMsgHeartbeat});
    comm_.send_sized(node, cfg_.coordinator, tag_ctrl_, cfg_.ctrl_bytes, w.take());
    ++stats_.heartbeats;
  }
  // Keep ticking while dead: ground-truth recovery resumes the beat, which
  // is how the coordinator learns the node is back.
  sim().schedule_after(cfg_.heartbeat_interval, [this, node] { heartbeat_loop(node); });
}

void StreamRuntime::monitor_tick() {
  if (!running_) return;
  bool need_recovery = false;
  for (std::size_t n = 0; n < comm_.nranks(); ++n) {
    if (n == cfg_.coordinator || believed_dead_[n]) continue;
    if (sim().now() - last_hb_[n] < cfg_.heartbeat_timeout) continue;
    believed_dead_[n] = true;
    ++stats_.nodes_declared_dead;
    for (const Task& t : tasks_) {
      if (t.node == n) {
        need_recovery = true;
        break;
      }
    }
  }
  if (need_recovery) start_recovery();
  sim().schedule_after(cfg_.heartbeat_interval, [this] { monitor_tick(); });
}

void StreamRuntime::start_recovery() {
  // A death detected DURING a recovery lands here again: the fence bump
  // orphans the in-flight restore round and a fresh one starts.
  ++fence_;
  recovering_ = true;
  ++stats_.recoveries;
  count(m_recoveries_);
  const double rec_t0 = sim().now();

  std::vector<std::size_t> live;
  for (std::size_t r = 0; r < comm_.nranks(); ++r) {
    if (r != cfg_.coordinator && !believed_dead_[r]) live.push_back(r);
  }
  const std::uint64_t f = fence_;
  if (live.empty()) {
    sim().schedule_after(cfg_.retry_delay, [this, f] {
      if (running_ && fence_ == f) start_recovery();
    });
    return;
  }
  for (Task& t : tasks_) {
    if (spec_.stages[t.stage].kind == StreamStage::Kind::kSink) continue;
    if (believed_dead_[t.node]) t.node = live[reassign_rr_++ % live.size()];
  }

  // Global rollback to the last completed epoch: wipe every channel and every
  // task's volatile state; the restore round rebuilds it from the checkpoint.
  if (epoch_ > last_completed_) stats_.epochs_aborted += epoch_ - last_completed_;
  epoch_ = last_completed_;
  acks_.clear();
  for (Channel& ch : channels_) {
    ch.open.clear();
    ch.queue.clear();
    ch.credits = init_credits_;
    ch.next_seq = 0;
    ch.expect_seq = 0;
    ch.stash.clear();
    ch.blocked = false;
    ch.backlog.clear();
  }
  for (Task& t : tasks_) {
    t.busy_until = sim().now();
    t.aligned = 0;
    t.paused = false;
    t.offset = 0;
    t.src_wm = kNegInf;
    t.epoch_buf.clear();
    t.pending.clear();  // uncommitted epochs replay; committed_ is untouched
    const StreamStage& st = spec_.stages[t.stage];
    if (st.kind == StreamStage::Kind::kAggregate) {
      t.agg = std::make_unique<SumAggregator>(
          dataflow::stream::WindowSpec::tumbling(spec_.opts.window), kInf,
          RowKeyFn{}, RowCombineFn{});
    } else if (st.kind == StreamStage::Kind::kDistinct) {
      t.dis = std::make_unique<DistinctAggregator>(
          dataflow::stream::WindowSpec::tumbling(spec_.opts.window), kInf,
          RowIdentityFn{}, RowCountFn{});
    } else if (st.kind == StreamStage::Kind::kJoin) {
      t.join = std::make_unique<RowWindowJoin>(spec_.opts.window, kInf,
                                               TimedRowKeyFn{}, TimedRowKeyFn{});
    }
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.name = "recovery";
    ev.category = "dstream";
    ev.ts_us = static_cast<std::uint64_t>(rec_t0 * 1e6);
    ev.dur_us = 0;
    trace_->record(ev);
  }

  if (last_completed_ == 0 || dfs_ == nullptr) {
    send_restores();  // nothing durable yet: restart from scratch
    return;
  }
  // Read the checkpoint back (availability + I/O realism; the bytes live in
  // coordinator memory). Retry through transient Dfs unavailability.
  const std::string file = ckpt_file_;
  auto attempt = std::make_shared<std::function<void()>>();
  *attempt = [this, f, file, attempt] {
    if (!running_ || fence_ != f) return;
    dfs_->read(cfg_.coordinator, file, [this, f, attempt](bool ok) {
      if (!running_ || fence_ != f) return;
      if (ok) {
        send_restores();
        return;
      }
      sim().schedule_after(cfg_.retry_delay, [attempt] { (*attempt)(); });
    });
  };
  (*attempt)();
}

void StreamRuntime::send_restores() {
  restore_acks_ = 0;
  for (const Task& t : tasks_) {
    Bytes state;
    if (last_completed_ > 0) {
      auto it = ckpt_state_.find(t.gid);
      if (it != ckpt_state_.end()) state = it->second;
    }
    BufWriter w(state.size() + 32);
    w.write_pod(std::uint8_t{kMsgRestore});
    w.write_pod(fence_);
    w.write_varint(t.gid);
    w.write_bytes(state);
    comm_.send_sized(cfg_.coordinator, t.node, tag_ctrl_,
                     cfg_.ctrl_bytes + state.size(), w.take());
    ++stats_.restores_sent;
  }
}

void StreamRuntime::on_restore_ack(std::size_t gid) {
  (void)gid;
  if (!recovering_) return;
  if (++restore_acks_ < tasks_.size()) return;
  recovering_ = false;
  // Everything restored under the new fence: restart the source generators
  // (they replay from the restored offsets) and trigger the next epoch.
  const std::uint64_t f = fence_;
  for (const Task& t : tasks_) {
    if (spec_.stages[t.stage].kind != StreamStage::Kind::kSource) continue;
    const std::size_t gid2 = t.gid;
    sim().schedule_after(0, [this, gid2, f] {
      if (running_ && fence_ == f) source_pump(gid2);
    });
  }
  epoch_t0_ = sim().now();
  const std::uint64_t next = last_completed_ + 1;
  sim().schedule_after(0, [this, f, next] {
    if (running_ && fence_ == f && !recovering_) trigger_epoch(next);
  });
}

// ---------------------------------------------------------------------------
// Fault injection and observability
// ---------------------------------------------------------------------------

void StreamRuntime::kill_node_at(std::size_t node, sim::SimTime t) {
  if (node == cfg_.coordinator) {
    throw std::invalid_argument("StreamRuntime: cannot kill the coordinator");
  }
  sim().schedule_at(t, [this, node] {
    alive_[node] = false;
    if (dfs_ != nullptr) dfs_->fail_node(node);
  });
}

void StreamRuntime::recover_node_at(std::size_t node, sim::SimTime t) {
  sim().schedule_at(t, [this, node] {
    alive_[node] = true;
    if (dfs_ != nullptr) dfs_->recover_node(node);
  });
}

void StreamRuntime::bind_metrics(obs::MetricsRegistry& reg) {
  g_wm_lag_ = &reg.gauge("dstream.watermark_lag_ms");
  m_epochs_ = &reg.counter("dstream.epochs_completed");
  m_late_ = &reg.counter("dstream.events_late_dropped");
  m_emitted_ = &reg.counter("dstream.events_emitted");
  m_committed_ = &reg.counter("dstream.rows_committed");
  m_recoveries_ = &reg.counter("dstream.recoveries");
  m_pauses_ = &reg.counter("dstream.backpressure_pauses");
}

}  // namespace hpbdc::dstream
