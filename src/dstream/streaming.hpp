#pragma once
// Streaming job model for the distributed streaming runtime (src/dstream).
// A plan::LogicalPlan lowers onto a streaming STAGE DAG: one stage per plan
// node plus a single-task sink stage, every stage running `ntasks` parallel
// tasks with hash-partitioned channels between them. Stateful operators are
// WINDOWED versions of the batch semantics over tumbling event-time windows:
//
//   kReduceByKey -> per-(window, key) reduce_combine sum, emitted at window
//                   close as a row {key, sum} timed at the window end
//   kDistinct    -> per-window row dedup, each distinct row emitted once at
//                   window close, timed at the window end
//   kJoin        -> symmetric hash join per tumbling window; each (left,
//                   right) pair emits join_rows(...) timed at
//                   max(left.time, right.time)
//   narrow ops   -> stateless per-event pipelines (plan::apply_steps)
//   kSortBy      -> multiset identity (streams are unordered multisets)
//
// Sources are SEEDED and PARTITIONED: partition p of P owns the global event
// indices j ≡ p (mod P) of a plan::source_rows stream, with a deterministic
// bounded event-time jitter plus occasional deliberately very-late events.
// Each partition runs its own bounded-lateness watermark and drops events
// older than it AT THE SOURCE; because the drop decision is a pure function
// of (salt, partition stream), two runs — fault-free or killed-and-recovered
// — drop exactly the same events. The emit-check also establishes the
// completeness invariant the barrier protocol needs: an event emitted after
// a barrier carrying watermark W always has time >= W, so a window fired at
// a barrier can never see another contribution.
//
// reference_streaming() evaluates the same spec as plain local code —
// timing-free, window semantics only — and is the trusted side of the
// streaming differential oracle (src/chaos/streaming_oracle).

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "plan/plan.hpp"
#include "sim/policy.hpp"

namespace hpbdc::dstream {

/// One event on a streaming channel: an event time plus a (key, value) row.
struct TimedRow {
  double time = 0;
  plan::Row row{};
  friend bool operator==(const TimedRow&, const TimedRow&) = default;
};

/// Windowing + source-shape knobs of a streaming job. Defaults keep the
/// source jitter strictly inside the lateness bound, so only the
/// deliberately very-late events (late_permille) are ever dropped.
struct StreamingOptions {
  std::size_t ntasks = 2;      // parallel tasks per stage (and source partitions)
  double rate = 64.0;          // source events per simulated second (per source)
  double window = 1.0;         // tumbling window size, event-time seconds
  double lateness = 0.3;       // bounded-lateness watermark bound at sources
  double disorder = 0.2;       // max backward event-time jitter (< lateness)
  std::uint64_t late_permille = 31;  // odds/1000 of a very-late (dropped) event
  double very_late = 2.0;      // backward jump of a very-late event
  /// Durability policy for epoch checkpoints written to the DFS (window
  /// semantics are unaffected — only the storage cost/failure model of the
  /// checkpoint files changes).
  sim::StoragePolicy checkpoint_policy = sim::StoragePolicy::kReplicated;
  friend bool operator==(const StreamingOptions&, const StreamingOptions&) = default;
};

/// One streaming stage. `steps` is a pure narrow pipeline (plan::apply_steps
/// with first = 0); for source stages it runs on each generated row, for
/// stateless stages on each input event. kJoin stages have parents
/// {left, right}; every other kind has at most one parent.
struct StreamStage {
  enum class Kind : std::uint8_t {
    kSource,     // seeded partitioned generator (+ optional narrow steps)
    kStateless,  // per-event narrow pipeline (identity when steps is empty)
    kAggregate,  // windowed keyed reduce_combine
    kDistinct,   // windowed row dedup
    kJoin,       // windowed symmetric hash join
    kSink,       // single-task collector on the coordinator
  };
  Kind kind = Kind::kStateless;
  std::vector<std::size_t> parents;  // stage indices, upstream of this one
  std::uint64_t salt = 0;            // kSource: generator salt
  std::uint64_t rows = 0;            // kSource: events in the stream
  std::vector<plan::NarrowStep> steps;
};

/// A lowered streaming job: stages.back() is always the sink.
struct StreamJobSpec {
  std::string name = "stream";
  StreamingOptions opts;
  std::vector<StreamStage> stages;
};

/// Lower a logical plan to a streaming stage DAG: stage i mirrors plan node
/// i (narrow chains stay per-event, stateful ops become their windowed
/// counterparts above), plus an appended sink stage fed by the plan sinks.
/// combine_output hints are ignored — map-side combine is a batch shuffle
/// optimization and a semantic no-op here.
StreamJobSpec lower_streaming(const plan::LogicalPlan& plan,
                              const StreamingOptions& opts);

/// One source emission: the (possibly multi-row, after flat_map steps)
/// output of a single surviving raw event.
struct SourceItem {
  double time = 0;      // event time of every row in `rows`
  double emit_at = 0;   // earliest relative sim time to emit (rate pacing)
  double wm_after = 0;  // partition watermark after this emission
  std::vector<plan::Row> rows;
};

/// Deterministic event stream of partition `part` of `nparts` for a source
/// stage: applies the per-partition bounded-lateness drop and the stage's
/// narrow steps. `late_dropped`, when non-null, accumulates the source-side
/// drops (the dstream.events_late_dropped metric).
std::vector<SourceItem> source_partition_items(const StreamStage& stage,
                                               const StreamingOptions& opts,
                                               std::size_t part, std::size_t nparts,
                                               std::uint64_t* late_dropped = nullptr);

/// Timing-free local evaluation of the whole spec: the reference side of the
/// streaming differential oracle. Exact — window contents are a pure
/// function of the (deterministic) source streams, never of arrival timing.
std::vector<TimedRow> reference_streaming(const StreamJobSpec& spec);

/// Canonical fingerprint of a streamed result multiset: sort by (time bits,
/// row) and serialize. Two runs agree iff these bytes are identical.
Bytes canonical_stream_bytes(std::vector<TimedRow> rows);

}  // namespace hpbdc::dstream

namespace hpbdc {

template <>
struct Serde<dstream::TimedRow> {
  static void write(BufWriter& w, const dstream::TimedRow& v) {
    w.write_pod(v.time);
    Serde<plan::Row>::write(w, v.row);
  }
  static dstream::TimedRow read(BufReader& r) {
    dstream::TimedRow v;
    v.time = r.read_pod<double>();
    v.row = Serde<plan::Row>::read(r);
    return v;
  }
};

}  // namespace hpbdc
