#pragma once
// Wall-clock stopwatch for benchmarks and examples.

#include <chrono>

namespace hpbdc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_sec() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const noexcept { return elapsed_sec() * 1e3; }
  double elapsed_us() const noexcept { return elapsed_sec() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hpbdc
