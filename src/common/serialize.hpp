#pragma once
// Compact binary serialization used by the shuffle spill path, the simulated
// network payloads, and the storage substrate. Little-endian, varint-coded
// lengths. The format is framework-internal (not a wire standard), but is
// stable within a build, which is all the simulator and tests require.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hpbdc {

using Bytes = std::vector<std::byte>;

/// Append-only binary writer.
class BufWriter {
 public:
  BufWriter() = default;
  explicit BufWriter(std::size_t reserve) { buf_.reserve(reserve); }

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

  void write_raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_pod(const T& v) {
    write_raw(&v, sizeof(T));
  }

  /// LEB128 unsigned varint.
  void write_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<std::byte>(v));
  }

  void write_string(std::string_view s) {
    write_varint(s.size());
    write_raw(s.data(), s.size());
  }

  void write_bytes(std::span<const std::byte> b) {
    write_varint(b.size());
    write_raw(b.data(), b.size());
  }

 private:
  Bytes buf_;
};

/// Bounds-checked binary reader over a borrowed byte span.
class BufReader {
 public:
  explicit BufReader(std::span<const std::byte> data) noexcept : data_(data) {}
  explicit BufReader(const Bytes& data) noexcept : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

  void read_raw(void* out, std::size_t len) {
    require(len);
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read_pod() {
    T v;
    read_raw(&v, sizeof(T));
    return v;
  }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      require(1);
      const auto b = static_cast<std::uint8_t>(data_[pos_++]);
      if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0)) {
        throw std::runtime_error("varint overflow");
      }
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::string read_string() {
    const auto len = read_varint();
    require(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  Bytes read_bytes() {
    const auto len = read_varint();
    require(len);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return b;
  }

 private:
  void require(std::uint64_t len) const {
    if (len > remaining()) throw std::runtime_error("BufReader: truncated input");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Generic Serde<T>: the dataflow engine serializes records through this trait
// when they cross a (simulated) machine boundary or a shuffle spill. Users
// extend it by specializing Serde for their record types.
// ---------------------------------------------------------------------------

template <typename T, typename Enable = void>
struct Serde;  // undefined primary: specializations below

template <typename T>
struct Serde<T, std::enable_if_t<std::is_arithmetic_v<T> || std::is_enum_v<T>>> {
  static void write(BufWriter& w, const T& v) { w.write_pod(v); }
  static T read(BufReader& r) { return r.read_pod<T>(); }
};

template <>
struct Serde<std::string> {
  static void write(BufWriter& w, const std::string& v) { w.write_string(v); }
  static std::string read(BufReader& r) { return r.read_string(); }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void write(BufWriter& w, const std::pair<A, B>& v) {
    Serde<A>::write(w, v.first);
    Serde<B>::write(w, v.second);
  }
  static std::pair<A, B> read(BufReader& r) {
    A a = Serde<A>::read(r);
    B b = Serde<B>::read(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void write(BufWriter& w, const std::vector<T>& v) {
    w.write_varint(v.size());
    for (const auto& e : v) Serde<T>::write(w, e);
  }
  static std::vector<T> read(BufReader& r) {
    const auto n = r.read_varint();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(Serde<T>::read(r));
    return v;
  }
};

/// Serialize one value to a fresh byte buffer.
template <typename T>
Bytes to_bytes(const T& v) {
  BufWriter w;
  Serde<T>::write(w, v);
  return w.take();
}

/// Deserialize one value that occupies the entire buffer.
template <typename T>
T from_bytes(std::span<const std::byte> b) {
  BufReader r(b);
  T v = Serde<T>::read(r);
  if (!r.done()) throw std::runtime_error("from_bytes: trailing garbage");
  return v;
}

}  // namespace hpbdc
