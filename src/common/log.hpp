#pragma once
// Minimal leveled logger. Thread-safe line-at-a-time output; level filtering
// is a relaxed atomic load so disabled log sites cost one branch.

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace hpbdc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) noexcept { level_.store(static_cast<int>(lvl), std::memory_order_relaxed); }
  LogLevel level() const noexcept { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  bool enabled(LogLevel lvl) const noexcept { return static_cast<int>(lvl) >= level_.load(std::memory_order_relaxed); }

  void log(LogLevel lvl, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mu_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_at(LogLevel lvl, std::string_view component, Args&&... args) {
  auto& lg = Logger::instance();
  if (lg.enabled(lvl)) lg.log(lvl, component, detail::concat(std::forward<Args>(args)...));
}

#define HPBDC_LOG_DEBUG(component, ...) ::hpbdc::log_at(::hpbdc::LogLevel::kDebug, component, __VA_ARGS__)
#define HPBDC_LOG_INFO(component, ...) ::hpbdc::log_at(::hpbdc::LogLevel::kInfo, component, __VA_ARGS__)
#define HPBDC_LOG_WARN(component, ...) ::hpbdc::log_at(::hpbdc::LogLevel::kWarn, component, __VA_ARGS__)
#define HPBDC_LOG_ERROR(component, ...) ::hpbdc::log_at(::hpbdc::LogLevel::kError, component, __VA_ARGS__)

}  // namespace hpbdc
