#pragma once
// Hashing utilities shared across the framework: a fast 64-bit byte-string
// hash (FNV-1a with an avalanche finalizer), integer mixing, and combinators.
// These hashes drive shuffle partitioning, the consistent-hash ring, and the
// dedup fingerprint index, so they must be stable across runs and platforms.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hpbdc {

/// 64-bit finalizer from MurmurHash3: full avalanche on a 64-bit value.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over raw bytes, finalized with mix64 for better bucket dispersion.
constexpr std::uint64_t hash_bytes(const char* data, std::size_t len,
                                   std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

constexpr std::uint64_t hash_str(std::string_view s) noexcept {
  return hash_bytes(s.data(), s.size());
}

constexpr std::uint64_t hash_u64(std::uint64_t x) noexcept { return mix64(x); }

/// boost-style combinator for aggregating field hashes.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Generic dispatch used by templated containers/partitioners.
template <typename T>
struct Hasher {
  std::uint64_t operator()(const T& v) const noexcept {
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      return hash_u64(static_cast<std::uint64_t>(v));
    } else if constexpr (std::is_convertible_v<const T&, std::string_view>) {
      return hash_str(std::string_view(v));
    } else {
      return static_cast<std::uint64_t>(std::hash<T>{}(v));
    }
  }
};

template <typename A, typename B>
struct Hasher<std::pair<A, B>> {
  std::uint64_t operator()(const std::pair<A, B>& p) const noexcept {
    return hash_combine(Hasher<A>{}(p.first), Hasher<B>{}(p.second));
  }
};

}  // namespace hpbdc
