#include "common/log.hpp"

#include <chrono>
#include <cstdio>

namespace hpbdc {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel lvl, std::string_view component, std::string_view msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard lk(mu_);
  std::fprintf(stderr, "[%10lld.%03lld] %-5s %.*s: %.*s\n",
               static_cast<long long>(now / 1000), static_cast<long long>(now % 1000),
               kNames[static_cast<int>(lvl)], static_cast<int>(component.size()),
               component.data(), static_cast<int>(msg.size()), msg.data());
}

}  // namespace hpbdc
