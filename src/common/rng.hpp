#pragma once
// Deterministic pseudo-random number generation for hpbdc.
//
// All randomness in the library flows through Rng so that every experiment,
// test, and simulation is reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, which passes BigCrush and is far
// cheaper than std::mt19937_64.

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <limits>
#include <vector>

namespace hpbdc {

/// splitmix64 step; used for seeding and as a standalone mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator. Satisfies
/// std::uniform_random_bit_generator so it can feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Standard normal variate (Box–Muller, one value per call).
  double next_gaussian() noexcept {
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double next_exponential(double rate) noexcept {
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -std::log(u) / rate;
  }

  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  double next_lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * next_gaussian());
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf-distributed integers over [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^theta. Uses the Gray–Jacobson rejection-inversion
/// style approximation from the YCSB generator, O(1) per draw after O(1)
/// setup (no n-sized tables).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    if (n_ == 0) throw std::invalid_argument("ZipfGenerator: n must be >= 1");
    // theta == 1 makes alpha = 1/(1-theta) singular; nudge into the valid
    // range (indistinguishable in distribution at this resolution).
    if (theta_ > 0.999999 && theta_ < 1.000001) theta_ = 0.999999;
    zetan_ = zeta(n);
    zeta2_ = zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

  /// Draw one sample in [0, n); rank 0 is the most popular.
  std::uint64_t next(Rng& rng) const noexcept {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto r = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= n_ ? n_ - 1 : r;
  }

 private:
  double zeta(std::uint64_t n) const {
    // Exact for small n, Euler–Maclaurin style approximation for large n.
    if (n <= 10000) {
      double sum = 0.0;
      for (std::uint64_t i = 1; i <= n; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta_);
      return sum;
    }
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= 10000; ++i) sum += std::pow(1.0 / static_cast<double>(i), theta_);
    // Integral tail from 10000 to n of x^-theta dx.
    sum += (std::pow(static_cast<double>(n), 1.0 - theta_) -
            std::pow(10000.0, 1.0 - theta_)) /
           (1.0 - theta_);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_{}, zeta2_{}, alpha_{}, eta_{};
};

}  // namespace hpbdc
