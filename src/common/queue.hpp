#pragma once
// Concurrent queues used by the execution engine and streaming sources:
//  - MpmcQueue: bounded blocking multi-producer/multi-consumer queue
//    (mutex+condvar; the contended fallback path of the scheduler).
//  - SpscRing: lock-free single-producer/single-consumer ring buffer with
//    acquire/release publication, used on hot streaming paths.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace hpbdc {

/// Bounded blocking MPMC queue. close() wakes all waiters; pop() returns
/// nullopt once the queue is closed and drained.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks while full (if bounded). Returns false if the queue was closed.
  bool push(T v) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || capacity_ == 0 || q_.size() < capacity_; });
    if (closed_) return false;
    q_.push_back(std::move(v));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T v) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || (capacity_ != 0 && q_.size() >= capacity_)) return false;
      q_.push_back(std::move(v));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  std::optional<T> try_pop() {
    std::unique_lock lk(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return v;
  }

  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_, not_full_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Lock-free SPSC ring. Capacity is rounded up to a power of two; one slot
/// is sacrificed to distinguish full from empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  bool try_push(T v) {
    const auto head = head_.load(std::memory_order_relaxed);
    const auto next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;  // full
    buf_[head] = std::move(v);
    head_.store(next, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const auto tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;  // empty
    T v = std::move(buf_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return v;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return buf_.size() - 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace hpbdc
