#pragma once
// Sharded concurrent hash map. Striped locking over S shards bounds
// contention to 1/S of a single global lock; shard choice reuses the same
// stable hash the shuffle partitioner uses so keys that collide here would
// also co-locate in a shuffle (useful when reasoning about skew tests).

#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"

namespace hpbdc {

template <typename K, typename V, std::size_t Shards = 16>
class ConcurrentMap {
  static_assert((Shards & (Shards - 1)) == 0, "Shards must be a power of two");

 public:
  /// Insert or overwrite.
  void put(const K& k, V v) {
    auto& s = shard(k);
    std::unique_lock lk(s.mu);
    s.map[k] = std::move(v);
  }

  /// Insert only if absent; returns true on insert.
  bool put_if_absent(const K& k, V v) {
    auto& s = shard(k);
    std::unique_lock lk(s.mu);
    return s.map.emplace(k, std::move(v)).second;
  }

  std::optional<V> get(const K& k) const {
    const auto& s = shard(k);
    std::shared_lock lk(s.mu);
    auto it = s.map.find(k);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool contains(const K& k) const {
    const auto& s = shard(k);
    std::shared_lock lk(s.mu);
    return s.map.contains(k);
  }

  bool erase(const K& k) {
    auto& s = shard(k);
    std::unique_lock lk(s.mu);
    return s.map.erase(k) > 0;
  }

  /// Read-modify-write under the shard lock. fn receives a reference to the
  /// (default-constructed if absent) mapped value.
  template <typename Fn>
  void update(const K& k, Fn&& fn) {
    auto& s = shard(k);
    std::unique_lock lk(s.mu);
    fn(s.map[k]);
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::shared_lock lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

  /// Snapshot all entries (consistent per shard, not globally atomic).
  std::vector<std::pair<K, V>> entries() const {
    std::vector<std::pair<K, V>> out;
    for (const auto& s : shards_) {
      std::shared_lock lk(s.mu);
      out.insert(out.end(), s.map.begin(), s.map.end());
    }
    return out;
  }

  void clear() {
    for (auto& s : shards_) {
      std::unique_lock lk(s.mu);
      s.map.clear();
    }
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<K, V> map;
  };

  Shard& shard(const K& k) { return shards_[Hasher<K>{}(k) & (Shards - 1)]; }
  const Shard& shard(const K& k) const { return shards_[Hasher<K>{}(k) & (Shards - 1)]; }

  mutable std::vector<Shard> shards_{Shards};
};

}  // namespace hpbdc
