#pragma once
// Probabilistic sketches — the standard approximate-aggregation toolkit of
// big-data engines:
//   BloomFilter     — approximate membership, no false negatives.
//   HyperLogLog     — cardinality estimation in O(2^p) bytes (~1.04/sqrt(m)
//                     relative error), with merge.
//   CountMinSketch  — frequency estimation with one-sided error, with merge.
//   ReservoirSample — uniform k-sample over a stream (Vitter's algorithm R).
// All are deterministic given their inputs (hash-based, no hidden RNG except
// the reservoir, which takes an explicit Rng).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace hpbdc {

/// Bloom filter sized for `expected_items` at `fp_rate` false positives.
class BloomFilter {
 public:
  BloomFilter(std::size_t expected_items, double fp_rate = 0.01) {
    if (expected_items == 0 || fp_rate <= 0 || fp_rate >= 1) {
      throw std::invalid_argument("BloomFilter: bad parameters");
    }
    // Optimal sizing: m = -n ln(p) / ln(2)^2, k = (m/n) ln(2).
    const double n = static_cast<double>(expected_items);
    const double m = -n * std::log(fp_rate) / (std::log(2.0) * std::log(2.0));
    bits_.assign(static_cast<std::size_t>(m / 64.0) + 1, 0);
    hashes_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::round(m / n * std::log(2.0))));
  }

  void add(std::uint64_t item_hash) {
    for (std::size_t i = 0; i < hashes_; ++i) {
      set_bit(nth_hash(item_hash, i));
    }
    ++count_;
  }
  void add(std::string_view item) { add(hash_str(item)); }

  /// False negatives never occur; false positives at ~the configured rate.
  bool may_contain(std::uint64_t item_hash) const {
    for (std::size_t i = 0; i < hashes_; ++i) {
      if (!get_bit(nth_hash(item_hash, i))) return false;
    }
    return true;
  }
  bool may_contain(std::string_view item) const { return may_contain(hash_str(item)); }

  std::size_t bit_count() const noexcept { return bits_.size() * 64; }
  std::size_t hash_count() const noexcept { return hashes_; }
  std::uint64_t items_added() const noexcept { return count_; }

 private:
  // Kirsch–Mitzenmacher double hashing: h_i = h1 + i*h2.
  std::size_t nth_hash(std::uint64_t h, std::size_t i) const noexcept {
    const std::uint64_t h1 = h;
    const std::uint64_t h2 = mix64(h) | 1;
    return static_cast<std::size_t>((h1 + i * h2) % bit_count());
  }
  void set_bit(std::size_t b) noexcept { bits_[b >> 6] |= 1ULL << (b & 63); }
  bool get_bit(std::size_t b) const noexcept { return (bits_[b >> 6] >> (b & 63)) & 1; }

  std::vector<std::uint64_t> bits_;
  std::size_t hashes_ = 0;
  std::uint64_t count_ = 0;
};

/// HyperLogLog with 2^precision registers (precision in [4, 18]).
class HyperLogLog {
 public:
  explicit HyperLogLog(int precision = 12) : p_(precision) {
    if (precision < 4 || precision > 18) {
      throw std::invalid_argument("HyperLogLog: precision in [4, 18]");
    }
    registers_.assign(std::size_t{1} << p_, 0);
  }

  void add(std::uint64_t item_hash) {
    const std::size_t idx = static_cast<std::size_t>(item_hash >> (64 - p_));
    const std::uint64_t rest = item_hash << p_;
    // Rank: position of the leftmost 1 in the remaining bits, 1-based.
    const std::uint8_t rank =
        rest == 0 ? static_cast<std::uint8_t>(64 - p_ + 1)
                  : static_cast<std::uint8_t>(__builtin_clzll(rest) + 1);
    registers_[idx] = std::max(registers_[idx], rank);
  }
  void add(std::string_view item) { add(hash_str(item)); }

  double estimate() const {
    const double m = static_cast<double>(registers_.size());
    double sum = 0;
    std::size_t zeros = 0;
    for (auto r : registers_) {
      sum += std::pow(2.0, -static_cast<double>(r));
      zeros += (r == 0);
    }
    const double alpha = m == 16 ? 0.673
                         : m == 32 ? 0.697
                         : m == 64 ? 0.709
                                   : 0.7213 / (1.0 + 1.079 / m);
    double e = alpha * m * m / sum;
    // Small-range correction (linear counting).
    if (e <= 2.5 * m && zeros != 0) {
      e = m * std::log(m / static_cast<double>(zeros));
    }
    return e;
  }

  /// Theoretical relative standard error for this precision.
  double relative_error() const noexcept {
    return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
  }

  /// Union: pointwise max of registers. Both sketches must share precision.
  void merge(const HyperLogLog& o) {
    if (o.p_ != p_) throw std::invalid_argument("HyperLogLog: precision mismatch");
    for (std::size_t i = 0; i < registers_.size(); ++i) {
      registers_[i] = std::max(registers_[i], o.registers_[i]);
    }
  }

  std::size_t memory_bytes() const noexcept { return registers_.size(); }

 private:
  int p_;
  std::vector<std::uint8_t> registers_;
};

/// Count-min sketch: freq(x) <= estimate(x) <= freq(x) + eps*N whp.
class CountMinSketch {
 public:
  /// eps: additive error fraction of total count; delta: failure probability.
  CountMinSketch(double eps = 0.001, double delta = 0.01) {
    if (eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1) {
      throw std::invalid_argument("CountMinSketch: bad parameters");
    }
    width_ = static_cast<std::size_t>(std::ceil(std::exp(1.0) / eps));
    depth_ = static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
    table_.assign(width_ * depth_, 0);
  }

  void add(std::uint64_t item_hash, std::uint64_t count = 1) {
    for (std::size_t d = 0; d < depth_; ++d) {
      table_[d * width_ + slot(item_hash, d)] += count;
    }
    total_ += count;
  }
  void add(std::string_view item, std::uint64_t count = 1) {
    add(hash_str(item), count);
  }

  std::uint64_t estimate(std::uint64_t item_hash) const {
    std::uint64_t best = ~0ULL;
    for (std::size_t d = 0; d < depth_; ++d) {
      best = std::min(best, table_[d * width_ + slot(item_hash, d)]);
    }
    return best;
  }
  std::uint64_t estimate(std::string_view item) const { return estimate(hash_str(item)); }

  void merge(const CountMinSketch& o) {
    if (o.width_ != width_ || o.depth_ != depth_) {
      throw std::invalid_argument("CountMinSketch: shape mismatch");
    }
    for (std::size_t i = 0; i < table_.size(); ++i) table_[i] += o.table_[i];
    total_ += o.total_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::size_t memory_bytes() const noexcept { return table_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t slot(std::uint64_t h, std::size_t d) const noexcept {
    return static_cast<std::size_t>(hash_combine(hash_u64(d + 1), h) % width_);
  }

  std::size_t width_ = 0, depth_ = 0;
  std::vector<std::uint64_t> table_;
  std::uint64_t total_ = 0;
};

/// Uniform k-sample over a stream (algorithm R). Every element seen so far
/// is in the sample with probability k/n.
template <typename T>
class ReservoirSample {
 public:
  explicit ReservoirSample(std::size_t k, std::uint64_t seed = 99)
      : k_(k), rng_(seed) {
    if (k == 0) throw std::invalid_argument("ReservoirSample: k must be >= 1");
  }

  void add(T item) {
    ++seen_;
    if (sample_.size() < k_) {
      sample_.push_back(std::move(item));
      return;
    }
    const std::uint64_t j = rng_.next_below(seen_);
    if (j < k_) sample_[static_cast<std::size_t>(j)] = std::move(item);
  }

  const std::vector<T>& sample() const noexcept { return sample_; }
  std::uint64_t seen() const noexcept { return seen_; }

 private:
  std::size_t k_;
  Rng rng_;
  std::vector<T> sample_;
  std::uint64_t seen_ = 0;
};

}  // namespace hpbdc
