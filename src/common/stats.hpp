#pragma once
// Statistics primitives used by every benchmark and by the simulator's
// metric collection: Welford running moments, an HdrHistogram-style
// log-bucketed histogram for latency percentiles, and a tiny fixed-format
// table printer so bench binaries emit aligned, diff-able rows.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace hpbdc {

/// Numerically stable running mean/variance (Welford) with min/max.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStat& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / n;
    mean_ += delta * static_cast<double>(o.n_) / n;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0, sum_ = 0.0;
};

/// Log-bucketed histogram for non-negative values (latencies, sizes).
/// Buckets are powers of two subdivided into 16 linear sub-buckets, giving
/// ~6% relative error on percentile queries over a 2^0..2^62 range.
class Histogram {
 public:
  void add(double v) noexcept {
    if (v < 0) v = 0;
    stat_.add(v);
    buckets_[index(v)]++;
  }

  std::uint64_t count() const noexcept { return stat_.count(); }
  double mean() const noexcept { return stat_.mean(); }
  double max() const noexcept { return stat_.max(); }
  double min() const noexcept { return stat_.min(); }

  /// Value at quantile q in [0,1]; returns bucket upper bound.
  double quantile(double q) const noexcept {
    if (stat_.count() == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(stat_.count())));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= target && buckets_[i] > 0) return upper_bound(i);
    }
    return stat_.max();
  }

  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }

  void merge(const Histogram& o) noexcept {
    stat_.merge(o.stat_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  }

 private:
  static constexpr int kSubBits = 4;                      // 16 sub-buckets
  static constexpr int kExpBuckets = 63;
  static constexpr std::size_t kNumBuckets = kExpBuckets << kSubBits;

  // Bucket layout: values < 2^kSubBits map directly (idx = value); a value
  // with most-significant bit `msb` lands in the 16-slot group for octave
  // [2^msb, 2^(msb+1)), subdivided linearly. Group g >= 1 starts at index
  // g << kSubBits with msb = g + kSubBits - 1.
  static std::size_t index(double v) noexcept {
    const auto u = static_cast<std::uint64_t>(v);
    if (u < (1ULL << kSubBits)) return static_cast<std::size_t>(u);
    const int msb = 63 - __builtin_clzll(u);
    const int shift = msb - kSubBits;
    const auto sub = static_cast<std::size_t>((u >> shift) & ((1ULL << kSubBits) - 1));
    const auto group = static_cast<std::size_t>(msb - kSubBits + 1);
    return std::min((group << kSubBits) | sub, kNumBuckets - 1);
  }

  static double upper_bound(std::size_t idx) noexcept {
    const auto group = idx >> kSubBits;
    const auto sub = idx & ((1ULL << kSubBits) - 1);
    if (group == 0) return static_cast<double>(sub);
    const int msb = static_cast<int>(group) + kSubBits - 1;
    const std::uint64_t base = 1ULL << msb;
    const std::uint64_t step = base >> kSubBits;
    return static_cast<double>(base + (sub + 1) * step - 1);
  }

  RunningStat stat_;
  std::array<std::uint64_t, kNumBuckets> buckets_{};
};

/// Minimal aligned-column table printer for benchmark reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Format a double with fixed precision — convenience for row building.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << (c < cells.size() ? cells[c] : "");
      }
      os << '\n';
    };
    line(headers_);
    std::string sep;
    for (auto w : widths) sep += std::string(w, '-') + "  ";
    os << sep << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpbdc
