// F5 — Collective communication cost model (DESIGN.md): completion time of
// broadcast / reduce / all-reduce / all-to-all on a simulated fat-tree, for
// node counts 8-64 and message sizes 1 KiB - 16 MiB. Expected shape under
// this endpoint-contention model: tree collectives scale ~log2(p) per
// doubling; binomial-tree reduce and recursive-doubling all-reduce cost the
// SAME (both are log2(p) uncontended rounds of one transfer), while
// broadcast is costlier because the binomial root serializes log2(p)
// sequential TX sends; all-to-all grows ~linearly in p (p-1 transfers per
// rank) and dominates at scale — the shuffle-traffic wall.

#include <functional>
#include <iostream>

#include "common/stats.hpp"
#include "sim/collectives.hpp"

int main() {
  using namespace hpbdc;
  using namespace hpbdc::sim;

  std::cout << "F5: collectives on a simulated fat-tree (10 Gbit/s NICs)\n\n";

  using Runner = std::function<void(Comm&, std::uint64_t, DoneFn)>;
  struct Op {
    const char* name;
    Runner run;
  };
  const Op ops[] = {
      {"broadcast", [](Comm& c, std::uint64_t b, DoneFn d) { broadcast(c, 0, b, std::move(d)); }},
      {"reduce", [](Comm& c, std::uint64_t b, DoneFn d) { reduce(c, 0, b, std::move(d)); }},
      {"all-reduce", [](Comm& c, std::uint64_t b, DoneFn d) { all_reduce(c, b, std::move(d)); }},
      {"all-to-all", [](Comm& c, std::uint64_t b, DoneFn d) { all_to_all(c, b, std::move(d)); }},
  };

  Table tbl({"op", "nodes", "1 KiB (us)", "64 KiB (us)", "1 MiB (ms)", "16 MiB (ms)"});
  for (const auto& op : ops) {
    for (std::size_t nodes : {8, 16, 32, 64}) {
      std::vector<std::string> row{op.name, std::to_string(nodes)};
      for (std::uint64_t bytes : {1ULL << 10, 64ULL << 10, 1ULL << 20, 16ULL << 20}) {
        Simulator sim;
        NetworkConfig nc;
        nc.nodes = nodes;
        nc.topology = Topology::kFatTree;
        Network net(sim, nc);
        Comm comm(sim, net);
        double done_at = -1;
        op.run(comm, bytes, [&](SimTime t) { done_at = t; });
        sim.run();
        if (bytes <= (64ULL << 10)) {
          row.push_back(Table::num(done_at * 1e6, 1));
        } else {
          row.push_back(Table::num(done_at * 1e3, 2));
        }
      }
      tbl.row(std::move(row));
    }
  }
  tbl.print(std::cout);
  std::cout << "\nexpected shape: trees grow ~log2(p) per doubling; reduce "
               "== all-reduce in this model (both log2(p) uncontended "
               "rounds); broadcast pays the root's serialized sends; "
               "all-to-all grows ~linearly with p and dwarfs the trees at 64 "
               "nodes.\n";
  return 0;
}
