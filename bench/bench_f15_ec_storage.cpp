// F15 — Erasure-coded vs replicated storage (DESIGN.md): storage overhead,
// recovery makespan, and repair traffic for RS(4,2) / RS(8,3) stripes vs 3x
// replication, under IDENTICAL node-kill schedules on a 16-node fat-tree
// (64 MiB blocks, 200 MB/s disks). Expected shape: EC cuts the durable-byte
// overhead from 3.0x to 1.5x / ~1.4x, while repair moves MORE bytes per
// lost shard (k survivor reads per reconstruction vs 1 for a re-copy) and
// degraded reads pay a reconstruction detour — the classic storage/recovery
// trade the paper's storage sections quantify.

#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/stats.hpp"
#include "sim/dfs.hpp"

namespace {

using namespace hpbdc;
using namespace hpbdc::sim;

constexpr std::uint64_t MiB = 1ULL << 20;
constexpr int kFiles = 12;
constexpr std::uint64_t kFileBytes = 128 * MiB;

NetworkConfig fat_tree_16() {
  NetworkConfig nc;
  nc.nodes = 16;
  nc.topology = Topology::kFatTree;
  nc.hosts_per_rack = 4;
  nc.racks_per_pod = 2;
  return nc;
}

struct Scheme {
  const char* label;
  StoragePolicy policy;
  std::size_t k, m;  // EC profile (ignored for replication)
};

struct Result {
  double write_s = 0;
  double overhead = 0;     // durable bytes / logical bytes
  double recovery_s = 0;   // re_replicate makespan after the kills
  double repair_gb = 0;    // network bytes moved by repair
  std::uint64_t repaired = 0;  // shards re-encoded or replicas re-copied
  double read_s = 0;           // healthy read of one file
  double degraded_read_s = 0;  // same read during the outage
  int readable_during = 0;     // files readable while both nodes are down
  std::uint64_t degraded_blocks = 0;  // blocks reconstructed from parity
};

Result run_scheme(const Scheme& s) {
  Result r;
  Simulator sim;
  Network net(sim, fat_tree_16());
  Comm comm(sim, net);
  DfsConfig cfg;
  cfg.ec_data_shards = s.k;
  cfg.ec_parity_shards = s.m;
  Dfs dfs(comm, cfg);

  // Bulk load: writers spread across the cluster, like stage checkpoints
  // landing from different drivers.
  int ok = 0;
  for (int i = 0; i < kFiles; ++i) {
    dfs.write(static_cast<std::size_t>(i) % 16, "/f" + std::to_string(i),
              kFileBytes, s.policy, [&ok](bool w) { ok += w; });
  }
  sim.run();
  r.write_s = sim.now();
  if (ok != kFiles) std::cerr << "  WARNING: only " << ok << "/" << kFiles
                              << " writes succeeded\n";
  r.overhead = static_cast<double>(dfs.stats().bytes_physical) /
               static_cast<double>(dfs.stats().bytes_written);

  // Healthy read baseline from a node that holds no data of /f0.
  double t0 = sim.now(), t1 = -1;
  dfs.read(15, "/f0", [&](bool) { t1 = sim.now(); });
  sim.run();
  r.read_s = t1 - t0;

  // Identical kill schedule for every scheme: nodes 2 and 6 go down (two
  // different racks, so rack-aware replication also loses copies).
  dfs.fail_node(2);
  dfs.fail_node(6);
  const std::uint64_t degraded_before = dfs.stats().degraded_reads;
  for (int i = 0; i < kFiles; ++i) {
    dfs.read(15, "/f" + std::to_string(i),
             [&r](bool w) { r.readable_during += w; });
  }
  sim.run();

  // Degraded read during the outage (EC reconstructs; replication just
  // picks another copy).
  t0 = sim.now();
  t1 = -1;
  dfs.read(15, "/f0", [&](bool) { t1 = sim.now(); });
  sim.run();
  r.degraded_read_s = t1 - t0;
  r.degraded_blocks = dfs.stats().degraded_reads - degraded_before;

  // Repair: re-protect everything while the nodes stay down.
  const std::uint64_t net_before = net.stats().bytes;
  const auto stats_before = dfs.stats();
  t0 = sim.now();
  bool done = false;
  dfs.re_replicate([&done] { done = true; });
  sim.run();
  r.recovery_s = sim.now() - t0;
  if (!done) std::cerr << "  WARNING: repair did not complete\n";
  r.repair_gb = static_cast<double>(net.stats().bytes - net_before) / 1e9;
  r.repaired = (dfs.stats().shards_repaired - stats_before.shards_repaired) +
               (dfs.stats().re_replications - stats_before.re_replications);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonWriter json("f15_ec_storage", argc, argv);
  std::cout << "F15: EC vs replicated storage, 16-node fat-tree, " << kFiles
            << " x 128 MiB files, kill nodes {2, 6}, repair while down\n\n";

  const std::vector<Scheme> schemes = {
      {"3x replication", StoragePolicy::kReplicated, 4, 2},
      {"EC(4,2)", StoragePolicy::kErasureCoded, 4, 2},
      {"EC(8,3)", StoragePolicy::kErasureCoded, 8, 3},
  };

  Table t({"scheme", "overhead", "write (s)", "read (s)", "degraded read (s)",
           "readable @2 down", "degraded blocks", "recovery (s)", "repair GB",
           "units repaired"});
  for (const Scheme& s : schemes) {
    const Result r = run_scheme(s);
    t.row({s.label, Table::num(r.overhead, 3), Table::num(r.write_s, 2),
           Table::num(r.read_s, 3), Table::num(r.degraded_read_s, 3),
           std::to_string(r.readable_during) + "/" + std::to_string(kFiles),
           std::to_string(r.degraded_blocks), Table::num(r.recovery_s, 2),
           Table::num(r.repair_gb, 2), std::to_string(r.repaired)});
    const bench::JsonWriter::Labels l = {{"scheme", s.label}};
    json.metric("storage_overhead", r.overhead, l);
    json.metric("write_s", r.write_s, l);
    json.metric("read_s", r.read_s, l);
    json.metric("degraded_read_s", r.degraded_read_s, l);
    json.metric("recovery_s", r.recovery_s, l);
    json.metric("repair_gb", r.repair_gb, l);
  }
  t.print(std::cout);

  std::cout << "\nexpected shape: overhead 3.0x (replication) vs 1.5x / ~1.4x "
               "(EC); every file stays readable through the 2-node kill under "
               "all three schemes (m >= 2); EC repair reads k survivor shards "
               "per lost shard so it moves more network bytes per failure, "
               "and degraded reads pay the reconstruction fan-in.\n";
  return 0;
}
