// F8 — Speculative execution vs stragglers (DESIGN.md extension): job
// makespan with and without backup tasks, swept over straggler fraction
// and severity, in both the single-wave regime (tasks == nodes, where one
// slow task gates the job) and the multi-wave regime (tasks >> nodes,
// where only the final wave can be rescued). Expected shape: dramatic
// (>2x) wins single-wave, tail-sized (~10%) wins multi-wave, at a small
// wasted-work cost.

#include <iostream>

#include "cluster/speculation.hpp"
#include "common/stats.hpp"

int main() {
  using namespace hpbdc;
  using namespace hpbdc::cluster;

  std::cout << "F8: speculative execution, 20 nodes, stragglers at 0.2x speed\n\n";
  Table tbl({"regime", "straggler %", "makespan off (s)", "makespan on (s)",
             "speedup", "backups", "wasted %"});
  struct Regime {
    const char* name;
    std::size_t tasks;
  };
  for (const auto& regime : {Regime{"single-wave", 20}, Regime{"multi-wave", 200}}) {
    for (double frac : {0.05, 0.15, 0.30}) {
      SpeculationConfig cfg;
      cfg.nodes = 20;
      cfg.tasks = regime.tasks;
      cfg.task_work = 10.0;
      cfg.straggler_fraction = frac;
      cfg.straggler_speed = 0.2;
      cfg.speculate = false;
      const auto off = simulate_speculation(cfg);
      cfg.speculate = true;
      const auto on = simulate_speculation(cfg);
      tbl.row({regime.name, Table::num(100 * frac, 0), Table::num(off.makespan, 1),
               Table::num(on.makespan, 1), Table::num(off.makespan / on.makespan, 2),
               std::to_string(on.backups_launched),
               Table::num(100 * on.wasted_seconds / on.total_node_seconds, 1)});
    }
  }
  tbl.print(std::cout);
  std::cout << "\nexpected shape: single-wave speedup ~2-2.5x (50 s straggler "
               "task cut to ~20 s); multi-wave ~1.1x (only the tail is "
               "rescuable); waste stays under a few percent of node-seconds.\n";
  return 0;
}
