// F10 — Distributed dataflow runtime (DESIGN.md extension): makespan of a
// synthetic shuffle-heavy DAG on the simulated cluster, swept over (1) node
// count, (2) node failure rate with and without stage checkpointing, and
// (3) checkpoint interval at a fixed failure rate. Expected shape: near-linear
// makespan reduction with nodes until shuffle fan-in dominates; failures
// inflate makespan via lineage recomputation, and checkpoints cap that
// inflation at the cost of extra DFS writes.
//
// `--trace=FILE` additionally records one failure-injected run as a Chrome
// trace (simulated time) loadable in chrome://tracing or ui.perfetto.dev.

#include <cstring>
#include <iostream>
#include <string>

#include "common/stats.hpp"
#include "dist/jobs.hpp"
#include "dist/runtime.hpp"
#include "obs/trace.hpp"

namespace {

using namespace hpbdc;
using namespace hpbdc::dist;

constexpr std::uint64_t MiB = 1ULL << 20;

struct RunOut {
  JobResult result;
  DistStats stats;
};

RunOut run_job(std::size_t nodes, double mtbf, std::size_t checkpoint_every,
               std::size_t ntasks, obs::TraceSession* trace = nullptr) {
  sim::Simulator s;
  sim::NetworkConfig nc;
  nc.nodes = nodes;
  nc.topology = sim::Topology::kStar;
  sim::Network net(s, nc);
  sim::Comm comm(s, net);
  sim::Dfs dfs(comm, {});
  DistConfig dc;
  dc.seed = 42;
  dc.slots_per_node = 2;
  dc.node_mtbf = mtbf;
  // Outages must outlast the heartbeat timeout to be detectable; attempts
  // stuck on silently-restarted executors are swept well before that.
  dc.node_downtime = 2.0;
  dc.heartbeat_interval = 0.1;
  dc.heartbeat_timeout = 0.5;
  dc.attempt_timeout = 8.0;
  DistRuntime rt(comm, dc, &dfs);
  if (trace != nullptr) rt.bind_trace(*trace);
  JobResult out;
  rt.submit(synthetic_job(3, ntasks, MiB, checkpoint_every),
            [&](const JobResult& r) { out = r; });
  s.run();
  return RunOut{out, rt.stats()};
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }

  std::cout << "F10: distributed dataflow runtime, 3-stage shuffle DAG, "
               "1 MiB blocks, seed 42\n\n";

  std::cout << "Table 1: makespan vs cluster size (64 tasks/stage, no failures)\n";
  Table t1({"nodes", "makespan (s)", "speedup", "shuffle GB"});
  double base = 0;
  for (std::size_t nodes : {4, 8, 16, 32}) {
    const auto r = run_job(nodes, 0.0, 0, 64);
    if (base == 0) base = r.result.makespan;
    t1.row({std::to_string(nodes), Table::num(r.result.makespan, 2),
            Table::num(base / r.result.makespan, 2),
            Table::num(static_cast<double>(r.stats.shuffle_bytes) / 1e9, 2)});
  }
  t1.print(std::cout);

  std::cout << "\nTable 2: failure rate sweep (16 nodes, 32 tasks/stage; "
               "ckpt = checkpoint every stage)\n";
  Table t2({"node MTBF (s)", "deaths", "makespan (s)", "recomputes", "retries",
            "ckpt makespan (s)", "ckpt recomputes"});
  for (double mtbf : {0.0, 60.0, 30.0, 15.0}) {
    const auto plain = run_job(16, mtbf, 0, 32);
    const auto ckpt = run_job(16, mtbf, 1, 32);
    t2.row({mtbf == 0.0 ? "inf" : Table::num(mtbf, 0),
            std::to_string(plain.stats.executors_declared_dead),
            Table::num(plain.result.makespan, 2),
            std::to_string(plain.stats.tasks_recomputed),
            std::to_string(plain.stats.task_retries),
            Table::num(ckpt.result.makespan, 2),
            std::to_string(ckpt.stats.tasks_recomputed)});
  }
  t2.print(std::cout);

  std::cout << "\nTable 3: checkpoint interval sweep (16 nodes, 32 tasks/stage, "
               "MTBF 20 s)\n";
  Table t3({"ckpt every k stages", "makespan (s)", "recomputes",
            "ckpts written", "ckpt restores"});
  for (std::size_t k : {0, 1, 2, 4}) {
    const auto r = run_job(16, 20.0, k, 32);
    t3.row({k == 0 ? "off" : std::to_string(k), Table::num(r.result.makespan, 2),
            std::to_string(r.stats.tasks_recomputed),
            std::to_string(r.stats.checkpoints_written),
            std::to_string(r.stats.checkpoint_restores)});
  }
  t3.print(std::cout);

  std::cout << "\nexpected shape: table 1 speedup flattens once per-node slots "
               "outnumber tasks; table 2 recomputes (and makespan) climb as "
               "MTBF shrinks while the checkpointed column climbs slower; "
               "table 3 shows a sweet spot — frequent checkpoints cut "
               "recomputes but pay DFS write time.\n";

  if (!trace_path.empty()) {
    obs::TraceSession session;
    run_job(16, 20.0, 1, 32, &session);
    if (session.write_chrome_json_file(trace_path)) {
      std::cout << "\nwrote Chrome trace (simulated time) to " << trace_path
                << "\n";
    } else {
      std::cerr << "\nfailed to write trace to " << trace_path << "\n";
      return 1;
    }
  }
  return 0;
}
