// T2 — Shuffle throughput vs partition count; effect of map-side combine
// (DESIGN.md). Workload: 1M zipf-keyed records, reduce_by_key-style
// aggregation. Expected shape: records_moved collapses when combining on a
// skewed key distribution; runtime peaks near partitions ~= threads.
//
// Record movement comes from the Context's MetricsRegistry (counter deltas
// around each shuffle). Pass --trace=FILE to also dump a Chrome-trace JSON
// of every shuffle span (load in chrome://tracing or ui.perfetto.dev).
//
//   $ ./bench_t2_shuffle [--trace=FILE]

#include <cstring>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "dataflow/shuffle.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  using namespace hpbdc;
  constexpr std::size_t kRecords = 1'000'000;
  constexpr std::size_t kKeys = 10'000;
  constexpr double kTheta = 0.99;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }

  ThreadPool pool;
  obs::MetricsRegistry reg;
  obs::TraceSession trace;
  dataflow::Context ctx{pool, {.metrics = &reg,
                               .trace = trace_path.empty() ? nullptr : &trace}};
  std::cout << "T2: shuffle of " << kRecords << " records, " << kKeys
            << " zipf(" << kTheta << ") keys, " << pool.num_threads()
            << " threads\n\n";

  // Pre-generate input partitions (8 map tasks).
  Rng rng(1);
  ZipfGenerator zipf(kKeys, kTheta);
  dataflow::Partitions<std::pair<std::uint64_t, std::uint64_t>> input(8);
  for (std::size_t i = 0; i < kRecords; ++i) {
    input[i % 8].emplace_back(zipf.next(rng), 1);
  }

  obs::Counter& moved_ctr = reg.counter("shuffle.records_moved");
  obs::Counter& in_ctr = reg.counter("shuffle.records_in");
  Table tbl({"partitions", "combine", "time (ms)", "Mrec/s", "records moved",
             "reduction"});
  for (std::size_t parts : {1, 2, 4, 8, 16, 32}) {
    for (bool combine : {false, true}) {
      const std::uint64_t moved0 = moved_ctr.value();
      const std::uint64_t in0 = in_ctr.value();
      Stopwatch sw;
      auto out = dataflow::combining_shuffle(
          ctx, input, parts, [](std::uint64_t a, std::uint64_t b) { return a + b; },
          combine);
      const double ms = sw.elapsed_ms();
      const std::uint64_t moved = moved_ctr.value() - moved0;
      const std::uint64_t records_in = in_ctr.value() - in0;
      // Correctness guard: total count preserved.
      std::uint64_t total = 0;
      for (const auto& p : out) {
        for (const auto& kv : p) total += kv.second;
      }
      if (total != kRecords) {
        std::cerr << "BUG: lost records in shuffle\n";
        return 1;
      }
      tbl.row({std::to_string(parts), combine ? "yes" : "no", Table::num(ms),
               Table::num(static_cast<double>(kRecords) / ms / 1e3),
               std::to_string(moved),
               Table::num(static_cast<double>(records_in) /
                          static_cast<double>(moved), 1) + "x"});
    }
  }
  tbl.print(std::cout);

  // Hot-key ablation: one key holds half the records. Salting spreads its
  // reduction over many reducers; with map-side combine already collapsing
  // per-map duplicates the benefit is pipeline balance, measured here as
  // the size of the largest reduce partition — which is exactly what the
  // shuffle.max_partition skew gauge reports.
  std::cout << "\nhot-key ablation (50% of records share one key, combine off):\n\n";
  dataflow::Partitions<std::pair<std::uint64_t, std::uint64_t>> hot(8);
  for (std::size_t i = 0; i < kRecords; ++i) {
    const std::uint64_t key = (i % 2 == 0) ? 0 : 1 + zipf.next(rng);
    hot[i % 8].emplace_back(key, 1);
  }
  obs::Gauge& skew_gauge = reg.gauge("shuffle.max_partition");
  {
    Table skew({"strategy", "time (ms)", "largest reduce input"});
    Stopwatch sw;
    dataflow::hash_shuffle(ctx, hot, 8);
    skew.row({"plain shuffle", Table::num(sw.elapsed_ms()),
              std::to_string(skew_gauge.value())});
    // Salted: add an 8-way salt to the key before shuffling.
    dataflow::Partitions<std::pair<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t>>
        salted(8);
    Stopwatch sw2;
    for (std::size_t p = 0; p < 8; ++p) {
      std::uint32_t i = 0;
      for (const auto& kv : hot[p]) {
        salted[p].emplace_back(std::make_pair(kv.first, i++ % 32), kv.second);
      }
    }
    dataflow::hash_shuffle(ctx, salted, 8);
    skew.row({"salted (32 salts)", Table::num(sw2.elapsed_ms()),
              std::to_string(skew_gauge.value())});
    skew.print(std::cout);
  }
  std::cout << "\nexpected shape: map-side combine cuts records moved by >10x "
               "on this skew; throughput flattens once partitions >= threads; "
               "salting shrinks the largest reduce input by ~salts x on the "
               "hot-key workload.\n";

  if (!trace_path.empty()) {
    if (trace.write_chrome_json_file(trace_path)) {
      std::cout << "\nwrote " << trace.event_count() << " trace events to "
                << trace_path << " (load in chrome://tracing)\n";
    } else {
      std::cerr << "\nfailed to write trace to " << trace_path << "\n";
      return 1;
    }
  }
  return 0;
}
