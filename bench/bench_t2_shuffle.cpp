// T2 — Shuffle throughput vs partition count; effect of map-side combine
// (DESIGN.md). Workload: 1M zipf-keyed records, reduce_by_key-style
// aggregation. Expected shape: records_moved collapses when combining on a
// skewed key distribution; runtime peaks near partitions ~= threads.

#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "dataflow/shuffle.hpp"
#include "exec/thread_pool.hpp"

int main() {
  using namespace hpbdc;
  constexpr std::size_t kRecords = 1'000'000;
  constexpr std::size_t kKeys = 10'000;
  constexpr double kTheta = 0.99;

  ThreadPool pool;
  std::cout << "T2: shuffle of " << kRecords << " records, " << kKeys
            << " zipf(" << kTheta << ") keys, " << pool.num_threads()
            << " threads\n\n";

  // Pre-generate input partitions (8 map tasks).
  Rng rng(1);
  ZipfGenerator zipf(kKeys, kTheta);
  dataflow::Partitions<std::pair<std::uint64_t, std::uint64_t>> input(8);
  for (std::size_t i = 0; i < kRecords; ++i) {
    input[i % 8].emplace_back(zipf.next(rng), 1);
  }

  Table tbl({"partitions", "combine", "time (ms)", "Mrec/s", "records moved",
             "reduction"});
  for (std::size_t parts : {1, 2, 4, 8, 16, 32}) {
    for (bool combine : {false, true}) {
      dataflow::ShuffleStats stats;
      Stopwatch sw;
      auto out = dataflow::combining_shuffle(
          pool, input, parts, [](std::uint64_t a, std::uint64_t b) { return a + b; },
          combine, &stats);
      const double ms = sw.elapsed_ms();
      // Correctness guard: total count preserved.
      std::uint64_t total = 0;
      for (const auto& p : out) {
        for (const auto& kv : p) total += kv.second;
      }
      if (total != kRecords) {
        std::cerr << "BUG: lost records in shuffle\n";
        return 1;
      }
      tbl.row({std::to_string(parts), combine ? "yes" : "no", Table::num(ms),
               Table::num(static_cast<double>(kRecords) / ms / 1e3),
               std::to_string(stats.records_moved),
               Table::num(static_cast<double>(stats.records_in) /
                          static_cast<double>(stats.records_moved), 1) + "x"});
    }
  }
  tbl.print(std::cout);

  // Hot-key ablation: one key holds half the records. Salting spreads its
  // reduction over many reducers; with map-side combine already collapsing
  // per-map duplicates the benefit is pipeline balance, measured here as
  // the size of the largest reduce partition.
  std::cout << "\nhot-key ablation (50% of records share one key, combine off):\n\n";
  dataflow::Partitions<std::pair<std::uint64_t, std::uint64_t>> hot(8);
  for (std::size_t i = 0; i < kRecords; ++i) {
    const std::uint64_t key = (i % 2 == 0) ? 0 : 1 + zipf.next(rng);
    hot[i % 8].emplace_back(key, 1);
  }
  auto largest_partition = [](const auto& parts) {
    std::size_t best = 0;
    for (const auto& p : parts) best = std::max(best, p.size());
    return best;
  };
  {
    Table skew({"strategy", "time (ms)", "largest reduce input"});
    Stopwatch sw;
    auto plain = dataflow::hash_shuffle(pool, hot, 8);
    skew.row({"plain shuffle", Table::num(sw.elapsed_ms()),
              std::to_string(largest_partition(plain))});
    // Salted: add an 8-way salt to the key before shuffling.
    dataflow::Partitions<std::pair<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t>>
        salted(8);
    Stopwatch sw2;
    for (std::size_t p = 0; p < 8; ++p) {
      std::uint32_t i = 0;
      for (const auto& kv : hot[p]) {
        salted[p].emplace_back(std::make_pair(kv.first, i++ % 32), kv.second);
      }
    }
    auto spread = dataflow::hash_shuffle(pool, salted, 8);
    skew.row({"salted (32 salts)", Table::num(sw2.elapsed_ms()),
              std::to_string(largest_partition(spread))});
    skew.print(std::cout);
  }
  std::cout << "\nexpected shape: map-side combine cuts records moved by >10x "
               "on this skew; throughput flattens once partitions >= threads; "
               "salting shrinks the largest reduce input by ~salts x on the "
               "hot-key workload.\n";
  return 0;
}
