// F3 — KV-store throughput/latency vs quorum configuration and workload
// skew (DESIGN.md). YCSB A/B/C over an 8-node simulated cluster for
// (N,R,W) in {(1,1,1),(3,1,1),(3,2,2),(3,3,1)}. Throughput is simulated
// ops/sec (wall time is irrelevant: the simulator compresses time).
// Expected shape: throughput falls and latency rises as R+W grows; the
// read-heavy mixes are hurt most by large R; zipf hotspots concentrate
// load on the hot keys' replica sets.

#include <iostream>

#include "common/stats.hpp"
#include "kvstore/ycsb.hpp"

int main() {
  using namespace hpbdc;
  using namespace hpbdc::kvstore;

  std::cout << "F3: YCSB on an 8-node simulated cluster (zipf 0.99 keys)\n\n";
  Table tbl({"workload", "(N,R,W)", "ops/s (sim)", "get p50 (us)", "get p99 (us)",
             "put p50 (us)", "put p99 (us)", "read repairs"});

  struct Quorum {
    std::size_t n, r, w;
  };
  for (auto workload : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC}) {
    for (const auto& q :
         {Quorum{1, 1, 1}, Quorum{3, 1, 1}, Quorum{3, 2, 2}, Quorum{3, 3, 1}}) {
      sim::Simulator sim;
      sim::NetworkConfig nc;
      nc.nodes = 8;
      sim::Network net(sim, nc);
      sim::Comm comm(sim, net);
      KvConfig cfg;
      cfg.replication = q.n;
      cfg.read_quorum = q.r;
      cfg.write_quorum = q.w;
      KvCluster kv(comm, cfg);

      YcsbConfig ycfg;
      ycfg.workload = workload;
      ycfg.records = 2000;
      ycfg.operations = 10000;
      ycfg.clients = 8;
      const auto res = run_ycsb(sim, kv, ycfg);
      tbl.row({ycsb_name(workload),
               "(" + std::to_string(q.n) + "," + std::to_string(q.r) + "," +
                   std::to_string(q.w) + ")",
               Table::num(res.throughput_ops, 0),
               Table::num(res.stats.get_latency_us.p50(), 1),
               Table::num(res.stats.get_latency_us.p99(), 1),
               Table::num(res.stats.put_latency_us.p50(), 1),
               Table::num(res.stats.put_latency_us.p99(), 1),
               std::to_string(res.stats.read_repairs)});
    }
  }
  tbl.print(std::cout);
  std::cout << "\nexpected shape: (1,1,1) fastest; latency grows with max(R,W) "
               "fan-in; (3,3,1) hurts reads but keeps writes cheap.\n";
  return 0;
}
