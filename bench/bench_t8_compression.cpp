// T8 — Compression codecs (DESIGN.md extension): ratio and throughput of
// RLE and LZSS across data shapes (random, text-like, zipf words, zeroed,
// versioned binary). Expected shape: LZSS dominates on structured data,
// RLE only wins on long runs; both near-1.0x (slightly worse) on random.

#include <iostream>
#include <string>

#include "algos/textgen.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "storage/compression.hpp"

namespace {

using hpbdc::storage::ByteVec;

ByteVec random_bytes(std::size_t n) {
  hpbdc::Rng rng(1);
  ByteVec v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

ByteVec zipf_text(std::size_t approx) {
  hpbdc::Rng rng(2);
  hpbdc::algos::TextGenConfig cfg;
  ByteVec v;
  while (v.size() < approx) {
    for (const auto& line : hpbdc::algos::generate_text(cfg, 64, rng)) {
      v.insert(v.end(), line.begin(), line.end());
      v.push_back('\n');
    }
  }
  v.resize(approx);
  return v;
}

ByteVec sparse_zeros(std::size_t n) {
  hpbdc::Rng rng(3);
  ByteVec v(n, 0);
  for (std::size_t i = 0; i < n / 50; ++i) {
    v[rng.next_below(n)] = static_cast<std::uint8_t>(rng());
  }
  return v;
}

ByteVec versioned_binary(std::size_t n) {
  // Two near-identical halves: long-range redundancy within the window.
  hpbdc::Rng rng(4);
  ByteVec half(n / 2);
  for (auto& b : half) b = static_cast<std::uint8_t>(rng());
  ByteVec v = half;
  for (std::size_t i = 0; i < 20; ++i) half[rng.next_below(half.size())] ^= 0xff;
  v.insert(v.end(), half.begin(), half.end());
  return v;
}

}  // namespace

int main() {
  using namespace hpbdc;
  using namespace hpbdc::storage;

  constexpr std::size_t kSize = 4 << 20;
  struct DataSet {
    const char* name;
    ByteVec data;
  };
  const DataSet sets[] = {
      {"random", random_bytes(kSize)},
      {"zipf text", zipf_text(kSize)},
      {"sparse zeros", sparse_zeros(kSize)},
      // Halves of 56 KiB: the duplicate sits at distance 56K, inside the
      // 64K-1 window (at exactly 64K it would be unreachable).
      {"versioned binary (64K window)", versioned_binary(112 << 10)},
  };

  std::cout << "T8: compression codecs, 4 MiB inputs (except versioned: 112 KiB)\n\n";
  Table tbl({"data", "codec", "ratio", "compress MB/s", "decompress MB/s"});
  for (const auto& set : sets) {
    struct Codec {
      const char* name;
      ByteVec (*compress)(std::span<const std::uint8_t>);
      ByteVec (*decompress)(std::span<const std::uint8_t>);
    };
    const Codec codecs[] = {
        {"rle", &Rle::compress, &Rle::decompress},
        {"lzss", &Lzss::compress, &Lzss::decompress},
    };
    for (const auto& codec : codecs) {
      Stopwatch cw;
      auto compressed = codec.compress(set.data);
      const double c_sec = cw.elapsed_sec();
      Stopwatch dw;
      auto restored = codec.decompress(compressed);
      const double d_sec = dw.elapsed_sec();
      if (restored != set.data) {
        std::cerr << "BUG: round-trip mismatch on " << set.name << "\n";
        return 1;
      }
      const double mb = static_cast<double>(set.data.size()) / 1e6;
      tbl.row({set.name, codec.name,
               Table::num(static_cast<double>(set.data.size()) /
                              static_cast<double>(compressed.size())),
               Table::num(mb / c_sec, 0), Table::num(mb / d_sec, 0)});
    }
  }
  tbl.print(std::cout);
  std::cout << "\nexpected shape: lzss ~2-4x on text, ~2x on the versioned "
               "pair (second copy collapses to back-references), ~0.9x on "
               "random; rle only wins on the zero-dominated input.\n";
  return 0;
}
