// T5 — Deduplication ratio: content-defined vs fixed-size chunking on a
// versioned corpus (DESIGN.md). Workload: 10 generations of a 4 MiB
// object, each derived from the last by scattered in-place edits plus one
// small insertion (the insertion is what shifts fixed-size boundaries).
// Expected shape: CDC ratio near the theoretical maximum, fixed-size near
// 1.0 once an insertion occurs.

#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "storage/chunker.hpp"
#include "storage/dedup.hpp"

int main() {
  using namespace hpbdc;
  using namespace hpbdc::storage;

  constexpr std::size_t kObject = 4ULL << 20;
  constexpr int kGenerations = 10;

  // Build the generation chain once.
  Rng rng(6);
  std::vector<std::vector<std::uint8_t>> generations;
  generations.emplace_back(kObject);
  for (auto& b : generations.back()) b = static_cast<std::uint8_t>(rng());
  for (int g = 1; g < kGenerations; ++g) {
    auto next = generations.back();
    for (int e = 0; e < 30; ++e) {  // scattered in-place edits
      next[rng.next_below(next.size())] ^= 0x5a;
    }
    // One small insertion: shifts all later offsets.
    const std::size_t pos = rng.next_below(next.size());
    next.insert(next.begin() + static_cast<std::ptrdiff_t>(pos),
                {1, 2, 3, 4, 5});
    generations.push_back(std::move(next));
  }

  std::cout << "T5: " << kGenerations << " generations of a "
            << (kObject >> 20) << " MiB object (30 edits + 1 insert each)\n\n";

  Table tbl({"chunking", "dedup ratio", "unique chunks", "ingest MB/s"});
  auto run = [&](const char* name, auto&& chunker) {
    DedupStore store;
    Stopwatch sw;
    std::uint64_t logical = 0;
    for (const auto& gen : generations) {
      auto recipe = store.put(gen, chunker);
      logical += gen.size();
      // Round-trip correctness on every generation.
      if (store.get(recipe) != gen) {
        std::cerr << "BUG: dedup round-trip mismatch\n";
        std::exit(1);
      }
    }
    const double sec = sw.elapsed_sec();
    tbl.row({name, Table::num(store.stats().ratio()),
             std::to_string(store.stats().chunks_unique),
             Table::num(static_cast<double>(logical) / 1e6 / sec, 0)});
  };

  run("fixed 4K", FixedChunker(4096));
  run("fixed 8K", FixedChunker(8192));
  run("CDC avg 4K", CdcChunker(4096, 1024, 16384));
  run("CDC avg 8K", CdcChunker(8192, 2048, 32768));
  tbl.print(std::cout);
  std::cout << "\nexpected shape: CDC ratio approaches " << kGenerations
            << "x (every generation shares almost all chunks); fixed-size "
               "collapses to ~1x after the first insertion.\n";
  return 0;
}
