#pragma once
// Machine-readable results for the bench_* binaries. Every bench keeps its
// human-readable tables on stdout; passing --json=FILE additionally dumps
// the headline numbers as one JSON document so CI and notebooks can track
// them across commits without scraping tables:
//
//   {
//     "bench": "f12_job_service",
//     "metrics": [
//       {"name": "p99_latency_s", "value": 1.25,
//        "labels": {"tenants": "8", "load": "2x"}},
//       ...
//     ]
//   }
//
// Usage:
//   int main(int argc, char** argv) {
//     bench::JsonWriter json("f12_job_service", argc, argv);
//     ...
//     json.metric("p99_latency_s", p99, {{"tenants", "8"}, {"load", "2x"}});
//   }  // written at scope exit; no-op when --json was not passed
//
// Header-only and dependency-free: values are doubles, labels are strings,
// and the writer escapes strings itself.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace hpbdc::bench {

class JsonWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  JsonWriter(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool enabled() const noexcept { return !path_.empty(); }

  void metric(const std::string& name, double value, Labels labels = {}) {
    metrics_.push_back({name, value, std::move(labels)});
  }

  /// Write the document now (idempotent; also runs at destruction).
  void flush() {
    if (path_.empty() || flushed_) return;
    flushed_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"metrics\": [",
                 quoted(bench_).c_str());
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "%s\n    {\"name\": %s, \"value\": %.17g",
                   i == 0 ? "" : ",", quoted(m.name).c_str(), m.value);
      if (!m.labels.empty()) {
        std::fprintf(f, ", \"labels\": {");
        for (std::size_t l = 0; l < m.labels.size(); ++l) {
          std::fprintf(f, "%s%s: %s", l == 0 ? "" : ", ",
                       quoted(m.labels[l].first).c_str(),
                       quoted(m.labels[l].second).c_str());
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

  ~JsonWriter() { flush(); }

 private:
  struct Metric {
    std::string name;
    double value;
    Labels labels;
  };

  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<Metric> metrics_;
  bool flushed_ = false;
};

}  // namespace hpbdc::bench
